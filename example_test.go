package simdram_test

import (
	"fmt"
	"log"

	"simdram"
)

// The canonical flow: allocate, store (auto-transposed to the vertical
// layout), compute in DRAM, load back.
func Example() {
	cfg := simdram.DefaultConfig()
	cfg.DRAM.Cols = 256
	cfg.DRAM.Banks = 1
	cfg.DRAM.SubarraysPerBank = 1
	sys, err := simdram.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := sys.AllocVector(4, 16)
	b, _ := sys.AllocVector(4, 16)
	dst, _ := sys.AllocVector(4, 16)
	a.Store([]uint64{10, 20, 30, 40})
	b.Store([]uint64{1, 2, 3, 4})
	if _, err := sys.Run("addition", dst, a, b); err != nil {
		log.Fatal(err)
	}
	sum, _ := dst.Load()
	fmt.Println(sum)
	// Output: [11 22 33 44]
}

// Relational operations produce 1-bit predicates that feed predication
// (if_else) — the paper's branch-free conditional execution.
func ExampleSystem_Run_predication() {
	cfg := simdram.DefaultConfig()
	cfg.DRAM.Cols = 256
	cfg.DRAM.Banks = 1
	cfg.DRAM.SubarraysPerBank = 1
	sys, err := simdram.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	vals, _ := sys.AllocVector(4, 16)
	limit, _ := sys.AllocVector(4, 16)
	pred, _ := sys.AllocVector(4, 1)
	out, _ := sys.AllocVector(4, 16)
	vals.Store([]uint64{5, 300, 7, 900})
	limit.Store([]uint64{255, 255, 255, 255})
	// out = vals > 255 ? 255 : vals  (saturate)
	sys.Run("greater", pred, vals, limit)
	sys.Run("if_else", out, limit, vals, pred)
	clamped, _ := out.Load()
	fmt.Println(clamped)
	// Output: [5 255 7 255]
}

// Views alias rows: reading a vector's bits from row k upward divides
// every element by 2^k with zero DRAM commands (paper §2's free shift).
func ExampleVector_View() {
	cfg := simdram.DefaultConfig()
	cfg.DRAM.Cols = 256
	cfg.DRAM.Banks = 1
	cfg.DRAM.SubarraysPerBank = 1
	sys, err := simdram.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := sys.AllocVector(4, 16)
	v.Store([]uint64{8, 100, 256, 1000})
	quarter, _ := v.View(2, 14) // divide by 4
	vals, _ := quarter.Load()
	fmt.Println(vals)
	// Output: [2 25 64 250]
}
