package simdram

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// relClose reports |a−b| ≤ tol·max(|a|,|b|) — energy and busy-time
// sums accumulate the same per-job values in different orders, so
// exact float equality is not expected across aggregation paths.
func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*m
}

// TestServerDeviceAttributionSums is the acceptance check for the
// attribution pipeline: per-tenant energy bills must equal the sum of
// the tenants' own batch stats, channel bills must sum to the tenant
// bills, and the per-channel/per-bank series must be in the registry.
func TestServerDeviceAttributionSums(t *testing.T) {
	srv := testServer(t, 2, nil)
	rng := rand.New(rand.NewSource(21))
	wantEnergy := map[string]float64{}
	wantDRAM := map[string]float64{}
	for i := 0; i < 10; i++ {
		tenant := "alice"
		if i%2 == 1 {
			tenant = "bob"
		}
		a, b := randData(rng, 96, 8), randData(rng, 96, 8)
		fut, err := srv.SubmitLazy(context.Background(), tenant, Input(a, 8).Add(Input(b, 8)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := fut.Wait()
		if err != nil {
			t.Fatal(err)
		}
		wantEnergy[tenant] += res.Batch.EnergyPJ
		wantDRAM[tenant] += res.Batch.CriticalPathNs
	}

	dev := srv.DeviceStats()
	var tenantEnergy, tenantDRAM float64
	for name, want := range wantEnergy {
		bill, ok := dev.Tenants[name]
		if !ok {
			t.Fatalf("tenant %s has no device bill", name)
		}
		if !relClose(bill.EnergyPJ, want, 1e-9) {
			t.Errorf("tenant %s billed %v pJ, batches reported %v", name, bill.EnergyPJ, want)
		}
		if !relClose(bill.DRAMNs, wantDRAM[name], 1e-9) {
			t.Errorf("tenant %s billed %v DRAM-ns, batches reported %v", name, bill.DRAMNs, wantDRAM[name])
		}
		tenantEnergy += bill.EnergyPJ
		tenantDRAM += bill.DRAMNs
	}
	var chanEnergy, chanBusy float64
	var chanCmds uint64
	for _, ch := range dev.Channels {
		chanEnergy += ch.EnergyPJ
		chanBusy += ch.BusyNs
		chanCmds += ch.Commands
	}
	if !relClose(chanEnergy, tenantEnergy, 1e-9) {
		t.Errorf("channel energy sum %v != tenant energy sum %v", chanEnergy, tenantEnergy)
	}
	if !relClose(chanBusy, tenantDRAM, 1e-9) {
		t.Errorf("channel busy sum %v != tenant DRAM sum %v", chanBusy, tenantDRAM)
	}
	if chanCmds == 0 {
		t.Error("channels executed jobs but report zero commands")
	}

	// The server-level stats expose the same bills per tenant, and the
	// billed DRAM time tracks the scheduler's modeled time (same
	// quantity, independent pipeline).
	st := srv.Stats()
	for name := range wantEnergy {
		ts := st.Tenants[name]
		if !relClose(ts.BilledEnergyPJ, wantEnergy[name], 1e-9) {
			t.Errorf("Stats tenant %s BilledEnergyPJ %v, want %v", name, ts.BilledEnergyPJ, wantEnergy[name])
		}
		if !relClose(ts.BilledNs, ts.ModeledNs, 1e-9) {
			t.Errorf("Stats tenant %s BilledNs %v diverges from ModeledNs %v", name, ts.BilledNs, ts.ModeledNs)
		}
	}

	// Registry series: per-channel and per-bank attribution must be
	// scrapeable by name.
	byName := map[string]MetricPoint{}
	for _, p := range srv.Metrics() {
		byName[p.Name] = p
	}
	var busySeries float64
	for _, name := range []string{"channel.busy_ns{channel=0}", "channel.busy_ns{channel=1}"} {
		p, ok := byName[name]
		if !ok {
			t.Fatalf("series %s missing from registry", name)
		}
		busySeries += p.Value
	}
	if !relClose(busySeries, chanBusy, 1e-9) {
		t.Errorf("channel.busy_ns series sum %v != DeviceStats busy sum %v", busySeries, chanBusy)
	}
	for _, name := range []string{
		"channel.energy_pj{channel=0}",
		"channel.commands{channel=0}",
		"channel.util_ppm{channel=0}",
		"bank.busy_ns{bank=0,channel=0}",
		"bank.energy_pj{bank=0,channel=0}",
		"bank.commands{bank=0,channel=0}",
		"tenant.energy_pj{tenant=alice}",
		"tenant.dram_ns{tenant=bob}",
		"device.energy_pj",
		"cluster.energy_pj{channel=0}",
		"cluster.commands{channel=0}",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("series %s missing from registry", name)
		}
	}
	// Bank bills roll up to the device total.
	var bankEnergy float64
	for name, p := range byName {
		if strings.HasPrefix(name, "bank.energy_pj{") {
			bankEnergy += p.Value
		}
	}
	if !relClose(bankEnergy, byName["device.energy_pj"].Value, 1e-9) {
		t.Errorf("bank energy sum %v != device.energy_pj %v", bankEnergy, byName["device.energy_pj"].Value)
	}
}

// TestServerRawSubmitAttribution: raw jobs bill at channel granularity
// from the unit's exec-stats delta and feed the scheduler's modeled
// time like lazy jobs do.
func TestServerRawSubmitAttribution(t *testing.T) {
	srv := testServer(t, 1, nil)
	fut, err := srv.Submit(context.Background(), "raw", func(sys *System, cancel <-chan struct{}) error {
		a, err := sys.AllocVector(32, 8)
		if err != nil {
			return err
		}
		dst, err := sys.AllocVector(32, 8)
		if err != nil {
			return err
		}
		_, err = sys.Run("addition", dst, a, a)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	dev := srv.DeviceStats()
	bill, ok := dev.Tenants["raw"]
	if !ok || bill.EnergyPJ <= 0 || bill.DRAMNs <= 0 {
		t.Fatalf("raw tenant bill missing or zero: %+v", bill)
	}
	if !relClose(dev.Channels[0].EnergyPJ, bill.EnergyPJ, 1e-9) {
		t.Errorf("channel energy %v != raw tenant bill %v", dev.Channels[0].EnergyPJ, bill.EnergyPJ)
	}
	ts := srv.Stats().Tenants["raw"]
	if !relClose(ts.BilledNs, ts.ModeledNs, 1e-9) || ts.ModeledNs <= 0 {
		t.Errorf("raw tenant BilledNs %v / ModeledNs %v must match and be positive", ts.BilledNs, ts.ModeledNs)
	}
}

func TestServerSLOBreachEmitsEvent(t *testing.T) {
	srv := obsServer(t, 1, func(cfg *ServerConfig) {
		cfg.SLOs = []SLO{
			// 1 ns run target: every real job breaches immediately.
			{Tenant: "slow", Metric: "run_p99", TargetNs: 1, Window: 30 * time.Second},
			// Generous global target: never breaches.
			{Metric: "queue_p50", TargetNs: int64(time.Hour)},
		}
	})
	fut, err := srv.SubmitLazy(context.Background(), "slow", Input([]uint64{1, 2, 3, 4}, 8).Add(Scalar(2, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	sts := srv.SLOStatus()
	if len(sts) != 2 {
		t.Fatalf("SLOStatus returned %d entries, want 2", len(sts))
	}
	breach := sts[0]
	if !breach.Breaching || breach.BurnRate <= 1 || breach.Samples == 0 {
		t.Fatalf("1ns SLO must breach: %+v", breach)
	}
	if breach.BadFraction != 1 {
		t.Errorf("every sample is above 1ns, BadFraction = %v", breach.BadFraction)
	}
	if !relClose(breach.Budget, 0.01, 1e-9) {
		t.Errorf("p99 budget = %v, want 0.01", breach.Budget)
	}
	if ok := sts[1]; ok.Breaching || ok.BurnRate != 0 {
		t.Fatalf("1h SLO must not breach: %+v", ok)
	}
	var sloEvents int
	for _, ev := range srv.Events() {
		if ev.Kind == "slo" {
			sloEvents++
			if !strings.Contains(ev.Detail, "slow") || !strings.Contains(ev.Detail, "run_p99") {
				t.Errorf("slo event lacks tenant/metric: %q", ev.Detail)
			}
		}
	}
	if sloEvents != 1 {
		t.Fatalf("want exactly 1 edge-triggered slo event, got %d", sloEvents)
	}
	// Re-evaluating a sustained breach must not emit another event.
	srv.SLOStatus()
	var again int
	for _, ev := range srv.Events() {
		if ev.Kind == "slo" {
			again++
		}
	}
	if again != 1 {
		t.Fatalf("sustained breach re-emitted events: %d", again)
	}
}

func TestServerSLOConfigValidation(t *testing.T) {
	for _, bad := range []SLO{
		{Metric: "latency_p99", TargetNs: 1},          // unknown phase
		{Metric: "run_pxx", TargetNs: 1},              // non-numeric quantile
		{Metric: "run", TargetNs: 1},                  // no quantile
		{Metric: "run_p99"},                           // no target
		{Tenant: "t", Metric: "job_p99", TargetNs: 1}, // job_pN is global-only
	} {
		cfg := DefaultServerConfig(1)
		cfg.Channel.DRAM.Cols = 128
		cfg.Channel.DRAM.Banks = 2
		cfg.Channel.DRAM.SubarraysPerBank = 2
		cfg.SLOs = []SLO{bad}
		if srv, err := NewServer(cfg); err == nil {
			srv.Close()
			t.Errorf("SLO %+v must be rejected", bad)
		}
	}
}

func TestServerWindowedRates(t *testing.T) {
	srv := testServer(t, 1, nil)
	// Deterministic baseline sample, then work, then read: the rings
	// dedup to one sample per slice, so racing the background pump is
	// harmless.
	srv.telemetryTick(srv.nowNs())
	for i := 0; i < 4; i++ {
		fut, err := srv.SubmitLazy(context.Background(), "rt", Input([]uint64{9, 8, 7}, 8).Add(Scalar(1, 8)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if len(st.Rates) != len(rateWindows) {
		t.Fatalf("Stats reports %d rate windows, want %d", len(st.Rates), len(rateWindows))
	}
	for i, r := range st.Rates {
		if r.Window != rateWindows[i] {
			t.Errorf("rate %d window %v, want %v", i, r.Window, rateWindows[i])
		}
		if r.JobsPerSec <= 0 {
			t.Errorf("window %v: jobs completed but JobsPerSec = %v", r.Window, r.JobsPerSec)
		}
		if r.EnergyPJPerSec <= 0 {
			t.Errorf("window %v: energy attributed but EnergyPJPerSec = %v", r.Window, r.EnergyPJPerSec)
		}
		if r.RejectedPerSec != 0 {
			t.Errorf("window %v: nothing rejected but RejectedPerSec = %v", r.Window, r.RejectedPerSec)
		}
	}
}

func TestServerDebugHandlerHardening(t *testing.T) {
	srv := testServer(t, 1, nil)
	h := srv.DebugHandler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/debug/simdram", nil))
	if rr.Code != 405 {
		t.Fatalf("POST status %d, want 405", rr.Code)
	}
	if allow := rr.Header().Get("Allow"); !strings.Contains(allow, "GET") {
		t.Fatalf("405 must advertise Allow: GET, got %q", allow)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/simdram?kind=metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("kind=metrics status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("kind=metrics content-type %q", ct)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["metrics"]; !ok || len(doc) != 1 {
		t.Fatalf("kind=metrics must return exactly the metrics key, got %d keys", len(doc))
	}

	for _, kind := range []string{"traces", "events"} {
		rr = httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/simdram?kind="+kind, nil))
		if rr.Code != 200 {
			t.Fatalf("kind=%s status %d", kind, rr.Code)
		}
		doc = nil
		if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		if _, ok := doc[kind]; !ok || len(doc) != 1 {
			t.Fatalf("kind=%s must return exactly that key", kind)
		}
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/simdram?kind=bogus", nil))
	if rr.Code != 400 {
		t.Fatalf("unknown kind status %d, want 400", rr.Code)
	}

	// HEAD is allowed (ServeMux-style probes).
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("HEAD", "/debug/simdram", nil))
	if rr.Code != 200 {
		t.Fatalf("HEAD status %d, want 200", rr.Code)
	}
}

func TestServerMetricsHandlerExposition(t *testing.T) {
	srv := testServer(t, 1, nil)
	fut, err := srv.SubmitLazy(context.Background(), "expo", Input([]uint64{1, 2, 3}, 8).Add(Scalar(1, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type %q, want text/plain exposition", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"# TYPE simdram_channel_busy_ns counter",
		`simdram_channel_busy_ns{channel="0"} `,
		`simdram_tenant_energy_pj{tenant="expo"} `,
		"# TYPE simdram_channel_util_ppm gauge",
		"# TYPE simdram_sched_run_ns summary",
		`simdram_sched_run_ns{quantile="0.99"} `,
		"simdram_sched_run_ns_count 1",
		`simdram_bank_busy_ns{bank="0",channel="0"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every non-comment line is "name{labels} value" with a parseable
	// float — the wire-format sanity the CI smoke also curls for.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		if _, err := json.Number(line[sp+1:]).Float64(); err != nil {
			t.Fatalf("line %q: value not a float: %v", line, err)
		}
	}

	rr = httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("POST", "/metrics", nil))
	if rr.Code != 405 {
		t.Fatalf("POST /metrics status %d, want 405", rr.Code)
	}
}
