package simdram

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"simdram/internal/ctrl"
	"simdram/internal/isa"
	"simdram/internal/ops"
)

// testClusterConfig shrinks the per-channel geometry the way testSystem
// does, with enough rows for multi-vector hazard programs.
func testClusterConfig(channels int) ClusterConfig {
	cfg := DefaultConfig()
	cfg.DRAM.Cols = 256
	cfg.DRAM.RowsPerSubarray = 256
	cfg.DRAM.Banks = 2
	cfg.DRAM.SubarraysPerBank = 2
	return ClusterConfig{Channels: channels, Channel: cfg, Placement: PlaceRoundRobin}
}

func testCluster(t testing.TB, channels int) *Cluster {
	t.Helper()
	c, err := NewCluster(testClusterConfig(channels))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func clusterBbop(code ops.Code, dst, a, b *ShardedVector) isa.Instruction {
	return isa.Instruction{
		Op:    isa.FromOp(code),
		Dst:   dst.Handle(),
		Src:   [3]uint16{a.Handle(), b.Handle()},
		Size:  uint32(dst.Len()),
		Width: uint8(a.Width()),
	}
}

func TestClusterScatterGatherRoundtrip(t *testing.T) {
	c := testCluster(t, 3)
	rng := rand.New(rand.NewSource(31))
	// Deliberately uneven: spans of different sizes on every channel.
	n, w := 2*256+41, 16
	v, err := c.AllocShardedVector(n, w)
	if err != nil {
		t.Fatal(err)
	}
	data := randVals(rng, n, w)
	if err := v.Store(data); err != nil {
		t.Fatal(err)
	}
	got, err := v.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("element %d: got %d, want %d", i, got[i], data[i])
		}
	}
	v.Free()
	if _, err := v.Load(); err == nil {
		t.Error("load from freed sharded vector must fail")
	}
}

// TestClusterDifferential runs a hazard-rich program on a 3-channel
// cluster and on one System holding all the data; the results must be
// bit-identical.
func TestClusterDifferential(t *testing.T) {
	ccfg := testClusterConfig(3)
	n, w := 3*256+41, 16
	rng := rand.New(rand.NewSource(33))
	av, bv := randVals(rng, n, w), randVals(rng, n, w)

	// Single-System reference.
	sys, err := New(ccfg.Channel)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	salloc := func() *Vector {
		v, err := sys.AllocVector(n, w)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	sa, sb := salloc(), salloc()
	s1, s2, s3, s4 := salloc(), salloc(), salloc(), salloc()
	if err := sa.Store(av); err != nil {
		t.Fatal(err)
	}
	if err := sb.Store(bv); err != nil {
		t.Fatal(err)
	}
	sbbop := func(code ops.Code, dst, x, y *Vector) isa.Instruction {
		return isa.Instruction{Op: isa.FromOp(code), Dst: dst.Handle(),
			Src: [3]uint16{x.Handle(), y.Handle()}, Size: uint32(n), Width: uint8(w)}
	}
	sprog := isa.Program{
		sbbop(ops.OpAdd, s1, sa, sb),
		sbbop(ops.OpSub, s2, sa, sb),
		sbbop(ops.OpAdd, s3, s1, s2),
		sbbop(ops.OpSub, s4, s3, sa),
		sbbop(ops.OpAdd, s1, s4, sb), // WAW/WAR on s1
	}
	if _, err := sys.ExecBatch(sprog); err != nil {
		t.Fatal(err)
	}

	// Sharded execution of the same program shape.
	c, err := NewCluster(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	calloc := func() *ShardedVector {
		v, err := c.AllocShardedVector(n, w)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	ca, cb := calloc(), calloc()
	c1, c2, c3, c4 := calloc(), calloc(), calloc(), calloc()
	if err := ca.Store(av); err != nil {
		t.Fatal(err)
	}
	if err := cb.Store(bv); err != nil {
		t.Fatal(err)
	}
	cprog := isa.Program{
		clusterBbop(ops.OpAdd, c1, ca, cb),
		clusterBbop(ops.OpSub, c2, ca, cb),
		clusterBbop(ops.OpAdd, c3, c1, c2),
		clusterBbop(ops.OpSub, c4, c3, ca),
		clusterBbop(ops.OpAdd, c1, c4, cb),
	}
	st, err := c.ExecBatch(cprog)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != int64(len(cprog)*3) {
		t.Errorf("Instructions = %d, want %d (every channel executes its shard of each instruction)",
			st.Instructions, len(cprog)*3)
	}
	if st.CriticalPathNs <= 0 || st.BusyNs < st.CriticalPathNs {
		t.Errorf("latency accounting broken: busy %f, critical path %f", st.BusyNs, st.CriticalPathNs)
	}
	if len(st.ChannelUtilization) != 3 {
		t.Fatalf("utilization has %d entries, want 3", len(st.ChannelUtilization))
	}
	maxUtil := 0.0
	for _, u := range st.ChannelUtilization {
		if u > maxUtil {
			maxUtil = u
		}
	}
	if math.Abs(maxUtil-1) > 1e-12 {
		t.Errorf("the bounding channel must have utilization 1, got max %f", maxUtil)
	}

	for i, pair := range [][2]interface{ Load() ([]uint64, error) }{
		{c1, s1}, {c2, s2}, {c3, s3}, {c4, s4},
	} {
		got, err := pair[0].Load()
		if err != nil {
			t.Fatal(err)
		}
		want, err := pair[1].Load()
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("output %d element %d: cluster %d, single-system %d", i, j, got[j], want[j])
			}
		}
	}
}

// TestClusterTimingMergeSemantics checks the honest-merge rules on a
// bank-disjoint workload: busy time adds across channels, the makespan
// is the per-channel critical path (not the sum), and a balanced shard
// reports zero utilization skew.
func TestClusterTimingMergeSemantics(t *testing.T) {
	c := testCluster(t, 2)
	dcfg := c.Config().Channel.DRAM
	n, w := dcfg.Cols*2, 8 // exactly one segment per channel
	rng := rand.New(rand.NewSource(35))
	var prog isa.Program
	for bank := 0; bank < dcfg.Banks; bank++ {
		for sub := 0; sub < dcfg.SubarraysPerBank; sub++ {
			alloc := func() *ShardedVector {
				v, err := c.AllocShardedVectorAt(n, w, bank, sub)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
			a, b, dst := alloc(), alloc(), alloc()
			if err := a.Store(randVals(rng, n, w)); err != nil {
				t.Fatal(err)
			}
			if err := b.Store(randVals(rng, n, w)); err != nil {
				t.Fatal(err)
			}
			prog = append(prog, clusterBbop(ops.OpAdd, dst, a, b))
		}
	}
	st, err := c.ExecBatch(prog)
	if err != nil {
		t.Fatal(err)
	}
	// 4 instructions per channel over 2 banks: critical path 2 slots,
	// serial equivalent 4 slots per channel × 2 channels = 8 slots.
	if got, want := st.Speedup(), 4.0; math.Abs(got-want) > 0.01 {
		t.Errorf("bank-disjoint 2-channel speedup = %f, want %f", got, want)
	}
	if st.UtilizationSkew() > 1e-9 {
		t.Errorf("balanced shard must have zero skew, got %f (utilization %v)",
			st.UtilizationSkew(), st.ChannelUtilization)
	}
}

func TestClusterShardAlignment(t *testing.T) {
	c := testCluster(t, 2)
	n, w := 100, 8
	a, err := c.AllocShardedVector(n, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AllocShardedVectorOn(n, w, []int{1}) // different plan
	if err != nil {
		t.Fatal(err)
	}
	dst, err := c.AllocShardedVector(n, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Store(make([]uint64, n)); err != nil {
		t.Fatal(err)
	}
	if err := b.Store(make([]uint64, n)); err != nil {
		t.Fatal(err)
	}
	_, err = c.Run("addition", dst, a, b)
	if err == nil || !strings.Contains(err.Error(), "shard-aligned") {
		t.Errorf("misaligned operands must be rejected, got: %v", err)
	}

	// Affinity-allocated groups with matching plans do work.
	a2, _ := c.AllocShardedVectorOn(n, w, []int{1})
	dst2, _ := c.AllocShardedVectorOn(n, w, []int{1})
	if err := a2.Store(make([]uint64, n)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run("addition", dst2, a2, b); err != nil {
		t.Errorf("affinity-aligned operands must execute: %v", err)
	}

	if _, err := c.AllocShardedVectorOn(n, w, []int{5}); err == nil {
		t.Error("out-of-range affinity channel must be rejected")
	}
}

// TestClusterRunRejectsFreedOperands guards the handle-recycling
// hazard: a freed vector's handle may already name a newer object, so
// Run must reject the stale pointer instead of resolving its handle.
func TestClusterRunRejectsFreedOperands(t *testing.T) {
	c := testCluster(t, 2)
	n, w := 64, 8
	stale, err := c.AllocShardedVector(n, w)
	if err != nil {
		t.Fatal(err)
	}
	stale.Free()
	// Once the fresh handle range runs out, a stale handle can name a
	// newer object — the pointer-level freed guard must catch it first.
	b, err := c.AllocShardedVector(n, w)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := c.AllocShardedVector(n, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Store(make([]uint64, n)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run("addition", dst, stale, b); err == nil || !strings.Contains(err.Error(), "freed") {
		t.Errorf("freed source must be rejected, got: %v", err)
	}
	if _, err := c.Run("addition", stale, b, b); err == nil || !strings.Contains(err.Error(), "freed") {
		t.Errorf("freed destination must be rejected, got: %v", err)
	}

	// Handles are also scoped per cluster: a vector from another
	// cluster would resolve to whatever object shares its handle here.
	other := testCluster(t, 2)
	foreign, err := other.AllocShardedVector(n, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run("addition", dst, foreign, b); err == nil || !strings.Contains(err.Error(), "different cluster") {
		t.Errorf("foreign source must be rejected, got: %v", err)
	}
	if _, err := c.Run("addition", foreign, b, b); err == nil || !strings.Contains(err.Error(), "different cluster") {
		t.Errorf("foreign destination must be rejected, got: %v", err)
	}
}

func TestClusterLeastLoadedPlacement(t *testing.T) {
	cfg := testClusterConfig(2)
	cfg.Placement = PlaceLeastLoaded
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Preload channel 0 so channel 1 is the least loaded.
	if _, err := c.Channel(0).AllocVector(16, 32); err != nil {
		t.Fatal(err)
	}
	v, err := c.AllocShardedVector(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.plan.Spans[0].Channel; got != 1 {
		t.Errorf("least-loaded placement put the first span on channel %d, want 1", got)
	}
	if v.plan.CountOn(1) < v.plan.CountOn(0) {
		t.Errorf("least-loaded channel must absorb the larger chunk: %v", v.plan.Spans)
	}

	// Individual least-loaded allocations shift the load they order by
	// and can diverge; AllocShardedGroup plans the whole operand group
	// from one load snapshot, so its members always meet in operations.
	n, w := 513, 8 // odd split: the first channel in order gets the bigger chunk
	group, err := c.AllocShardedGroup(n, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range group[1:] {
		if !v.plan.Equal(group[0].plan) {
			t.Fatalf("group member %d has plan %v, member 0 has %v", i+1, v.plan.Spans, group[0].plan.Spans)
		}
	}
	a, b, dst := group[0], group[1], group[2]
	if err := a.Store(make([]uint64, n)); err != nil {
		t.Fatal(err)
	}
	if err := b.Store(make([]uint64, n)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run("addition", dst, a, b); err != nil {
		t.Errorf("group-allocated operands must execute under least-loaded placement: %v", err)
	}
	if _, err := c.AllocShardedGroup(n, w, 0); err == nil {
		t.Error("empty group must be rejected")
	}
}

// TestClusterFailureCancelsSiblings induces a single-channel failure
// (exhausted scratch rows on channel 1) and checks the contract: the
// joined error names the failing channel, the failing channel's shard
// is untouched, and every other element is either untouched or carries
// the bit-exact result — nothing in between.
func TestClusterFailureCancelsSiblings(t *testing.T) {
	c := testCluster(t, 3)
	dcfg := c.Config().Channel.DRAM
	cols := dcfg.Cols
	n, w := 3*cols, 8 // one full segment per channel, spans hardcoded below
	rng := rand.New(rand.NewSource(37))
	alloc := func() *ShardedVector {
		v, err := c.AllocShardedVector(n, w)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a, b, dst := alloc(), alloc(), alloc()
	av, bv := randVals(rng, n, w), randVals(rng, n, w)
	sentinel := make([]uint64, n)
	for i := range sentinel {
		sentinel[i] = uint64(i) & 0xFF
	}
	if err := a.Store(av); err != nil {
		t.Fatal(err)
	}
	if err := b.Store(bv); err != nil {
		t.Fatal(err)
	}
	if err := dst.Store(sentinel); err != nil {
		t.Fatal(err)
	}

	// Exhaust the scratch tail of (0,0) on channel 1, where its shards
	// live: subtraction's μProgram needs scratch rows there, so that
	// channel cannot be prepared.
	failing := c.Channel(1)
	for {
		if _, err := failing.AllocVectorAt(cols, 1, 0, 0); err != nil {
			break
		}
	}

	_, err := c.Run("subtraction", dst, a, b)
	if err == nil {
		t.Fatal("single-channel failure must surface")
	}
	if !strings.Contains(err.Error(), "channel 1") {
		t.Errorf("error must name the failing channel, got: %v", err)
	}
	if !strings.Contains(err.Error(), "scratch") {
		t.Errorf("error must carry the channel's own failure, got: %v", err)
	}

	got, err := dst.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := (av[i] - bv[i]) & 0xFF
		switch {
		case i >= cols && i < 2*cols: // channel 1's shard
			if got[i] != sentinel[i] {
				t.Fatalf("failing channel's element %d changed: got %d, sentinel %d", i, got[i], sentinel[i])
			}
		case got[i] != want && got[i] != sentinel[i]:
			t.Fatalf("element %d is neither the result (%d) nor untouched (%d): got %d",
				i, want, sentinel[i], got[i])
		}
	}
}

// TestExecBatchCancelFacade drives the facade-level cancellation path
// the cluster relies on: a pre-closed cancel signal makes execBatch
// skip every instruction and report ErrCanceled, leaving DRAM
// untouched.
func TestExecBatchCancelFacade(t *testing.T) {
	sys := testSystem(t)
	n, w := 64, 8
	rng := rand.New(rand.NewSource(41))
	a, _ := sys.AllocVector(n, w)
	b, _ := sys.AllocVector(n, w)
	dst, _ := sys.AllocVector(n, w)
	if err := a.Store(randVals(rng, n, w)); err != nil {
		t.Fatal(err)
	}
	if err := b.Store(randVals(rng, n, w)); err != nil {
		t.Fatal(err)
	}
	sentinel := randVals(rng, n, w)
	if err := dst.Store(sentinel); err != nil {
		t.Fatal(err)
	}
	prog := isa.Program{{
		Op:    isa.FromOp(ops.OpAdd),
		Dst:   dst.Handle(),
		Src:   [3]uint16{a.Handle(), b.Handle()},
		Size:  uint32(n),
		Width: uint8(w),
	}}
	cancel := make(chan struct{})
	close(cancel)
	_, err := sys.execBatch(prog, cancel)
	if !errors.Is(err, ctrl.ErrCanceled) {
		t.Fatalf("pre-canceled batch must report ErrCanceled, got: %v", err)
	}
	got, err := dst.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != sentinel[i] {
			t.Fatalf("canceled batch must not touch the destination: element %d changed", i)
		}
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Channels: 0, Channel: DefaultConfig()}); err == nil {
		t.Error("zero channels must be rejected")
	}
	cfg := testClusterConfig(1)
	cfg.Placement = PlacementPolicy(99)
	if _, err := NewCluster(cfg); err == nil {
		t.Error("unknown placement policy must be rejected")
	}
	bad := testClusterConfig(2)
	bad.Channel.DRAM.Banks = 0
	if _, err := NewCluster(bad); err == nil {
		t.Error("invalid channel geometry must be rejected")
	}
}
