package simdram

import (
	"math/rand"
	"testing"

	"simdram/internal/isa"
	"simdram/internal/ops"
)

// testGraphSystem builds a geometry tall enough for naive per-node
// lowering of 30+-node DAGs: naive allocation claims one fresh
// temporary per node, and every vector of one expression shares a
// placement group, so the whole naive footprint lands in the same
// subarrays.
func testGraphSystem(t testing.TB) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DRAM.Cols = 256
	cfg.DRAM.RowsPerSubarray = 1024
	cfg.DRAM.Banks = 2
	cfg.DRAM.SubarraysPerBank = 2
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func testGraphCluster(t testing.TB, channels int) *Cluster {
	t.Helper()
	cfg := DefaultClusterConfig(channels)
	cfg.Channel.DRAM.Cols = 64
	cfg.Channel.DRAM.RowsPerSubarray = 1024
	cfg.Channel.DRAM.Banks = 2
	cfg.Channel.DRAM.SubarraysPerBank = 2
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func storeRand(t testing.TB, rng *rand.Rand, v interface {
	Store([]uint64) error
	Len() int
	Width() int
}) []uint64 {
	t.Helper()
	data := make([]uint64, v.Len())
	mask := uint64(1)<<uint(v.Width()) - 1
	for i := range data {
		data[i] = rng.Uint64() & mask
	}
	if err := v.Store(data); err != nil {
		t.Fatal(err)
	}
	return data
}

// buildRandomDAG grows a randomized expression DAG of exactly nOps
// operation nodes over the given leaves: same-width binary operations,
// occasional 3-ary reductions, scalar constants, and deliberate
// structural duplicates (distinct *Expr trees with identical shape) so
// CSE has real work. Returns the roots to materialize.
func buildRandomDAG(rng *rand.Rand, leaves []*Expr, width, nOps int) []*Expr {
	binOps := []string{"addition", "subtraction", "max", "min"}
	pool := append([]*Expr(nil), leaves...)
	type rec struct {
		op   string
		args []*Expr
	}
	var made []rec
	emit := func(op string, args ...*Expr) *Expr {
		made = append(made, rec{op, args})
		e := args[0].Apply(op, args[1:]...)
		pool = append(pool, e)
		return e
	}
	for i := 0; i < nOps; i++ {
		switch {
		case len(made) > 0 && rng.Intn(5) == 0:
			// Structural duplicate of an earlier operation: a fresh tree
			// CSE must recognize.
			r := made[rng.Intn(len(made))]
			e := r.args[0].Apply(r.op, r.args[1:]...)
			pool = append(pool, e)
		case rng.Intn(8) == 0:
			a := pool[rng.Intn(len(pool))]
			emit(binOps[rng.Intn(len(binOps))], a, Scalar(rng.Uint64(), width))
		case rng.Intn(10) == 0:
			emit("xor_red", pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))])
		default:
			emit(binOps[rng.Intn(len(binOps))], pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))])
		}
	}
	// Roots: every sink operation (no expression consumes it), so the
	// whole randomized DAG reaches the IR. CSE-merged duplicates still
	// leave dead originals behind for DCE.
	used := map[*Expr]bool{}
	for _, e := range pool {
		for _, a := range e.args {
			used[a] = true
		}
	}
	var roots []*Expr
	for _, e := range pool[len(leaves):] {
		if !used[e] {
			roots = append(roots, e)
		}
	}
	return roots
}

// TestGraphDifferentialRandomDAG is the acceptance differential: a
// randomized 30+-node DAG materialized with every pass on must be
// bit-identical to serially Exec-ing the naive per-node program.
func TestGraphDifferentialRandomDAG(t *testing.T) {
	sys := testGraphSystem(t)
	defer sys.Close()
	sys.SetVerifyPlans(true) // every plan in the differential must verify clean
	rng := rand.New(rand.NewSource(7))
	const n, width = 300, 16 // two segments: exercises multi-subarray lowering

	leaves := make([]*Expr, 4)
	for i := range leaves {
		v, err := sys.AllocVector(n, width)
		if err != nil {
			t.Fatal(err)
		}
		storeRand(t, rng, v)
		leaves[i] = sys.Lazy(v)
	}
	roots := buildRandomDAG(rng, leaves, width, 34)
	baseRows := sys.usedRows()

	// Naive baseline: one instruction and one fresh temporary per node,
	// issued serially through Exec.
	ncp, err := sys.CompileWith(NaiveCompile, roots...)
	if err != nil {
		t.Fatal(err)
	}
	if got := ncp.Stats().Instructions; got < 30 {
		t.Fatalf("naive program has %d instructions, want a 30+-node DAG", got)
	}
	for _, in := range ncp.Program() {
		if _, err := sys.Exec(in); err != nil {
			t.Fatalf("serial exec of %v: %v", in, err)
		}
	}
	naive := make([][]uint64, len(roots))
	for i, r := range roots {
		if naive[i], err = r.Result().Load(); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range roots {
		r.Result().Free()
	}
	ncp.Free()
	if got := sys.usedRows(); got != baseRows {
		t.Fatalf("naive cleanup leaked rows: %d used, want %d", got, baseRows)
	}

	// Optimized: all passes, batched execution.
	cp, err := sys.Compile(roots...)
	if err != nil {
		t.Fatal(err)
	}
	st := cp.Stats()
	if st.CSEEliminated == 0 {
		t.Error("randomized DAG with structural duplicates produced no CSE merges")
	}
	if st.TempRowsPooled >= st.TempRowsNaive {
		t.Errorf("lifetime reuse saved nothing: pooled %d rows, naive %d", st.TempRowsPooled, st.TempRowsNaive)
	}
	if st.Instructions >= ncp.Stats().Instructions {
		t.Errorf("optimized program has %d instructions, naive %d", st.Instructions, ncp.Stats().Instructions)
	}
	if _, err := cp.Execute(); err != nil {
		t.Fatal(err)
	}
	for i, r := range roots {
		got, err := r.Result().Load()
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != naive[i][j] {
				t.Fatalf("root %d element %d: optimized %d, naive serial %d", i, j, got[j], naive[i][j])
			}
		}
	}
	for _, r := range roots {
		r.Result().Free()
	}
	cp.Free()
	if got := sys.usedRows(); got != baseRows {
		t.Fatalf("optimized cleanup leaked rows: %d used, want %d", got, baseRows)
	}
	if got := sys.VerifiedPlans(); got == 0 {
		t.Fatal("verification was on but no plan was checked")
	}
}

// TestGraphDifferentialCluster runs the same differential on a
// 4-channel cluster: Materialize must match issuing the naive program
// one instruction at a time.
func TestGraphDifferentialCluster(t *testing.T) {
	c := testGraphCluster(t, 4)
	defer c.Close()
	c.SetVerifyPlans(true) // every plan in the differential must verify clean
	rng := rand.New(rand.NewSource(11))
	const n, width = 256, 16 // one 64-lane segment per channel

	leaves := make([]*Expr, 4)
	for i := range leaves {
		v, err := c.AllocShardedVector(n, width)
		if err != nil {
			t.Fatal(err)
		}
		storeRand(t, rng, v)
		leaves[i] = c.Lazy(v)
	}
	roots := buildRandomDAG(rng, leaves, width, 32)

	ncp, err := c.CompileWith(NaiveCompile, roots...)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ncp.Program() {
		if _, err := c.ExecBatch(isa.Program{in}); err != nil {
			t.Fatalf("serial exec of %v: %v", in, err)
		}
	}
	naive := make([][]uint64, len(roots))
	for i, r := range roots {
		if naive[i], err = r.ShardedResult().Load(); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range roots {
		r.ShardedResult().Free()
	}
	ncp.Free()

	if _, err := c.Materialize(roots...); err != nil {
		t.Fatal(err)
	}
	for i, r := range roots {
		got, err := r.ShardedResult().Load()
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != naive[i][j] {
				t.Fatalf("root %d element %d: optimized %d, naive serial %d", i, j, got[j], naive[i][j])
			}
		}
	}
	// Roots merged by CSE share one result vector; free after all loads.
	for _, r := range roots {
		r.ShardedResult().Free()
	}
}

// TestGraphEveryOpDifferential lowers every operation in the catalog
// through the graph compiler and checks the materialized result against
// the operation's golden model element by element.
func TestGraphEveryOpDifferential(t *testing.T) {
	sys := testGraphSystem(t)
	defer sys.Close()
	sys.SetVerifyPlans(true) // every lowered catalog op must verify clean
	rng := rand.New(rand.NewSource(3))
	const n, width = 64, 8
	for _, d := range ops.Catalog() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			arity := d.Arity
			if arity < 0 {
				arity = 3 // exercise an N-ary reduction at full ISA fan-in
			}
			widths := d.SourceWidths(width, arity)
			exprs := make([]*Expr, arity)
			data := make([][]uint64, arity)
			var vecs []*Vector
			for k := 0; k < arity; k++ {
				v, err := sys.AllocVector(n, widths[k])
				if err != nil {
					t.Fatal(err)
				}
				vecs = append(vecs, v)
				data[k] = storeRand(t, rng, v)
				exprs[k] = sys.Lazy(v)
			}
			e := exprs[0].Apply(d.Name, exprs[1:]...)
			if _, err := sys.Materialize(e); err != nil {
				t.Fatal(err)
			}
			got, err := e.Result().Load()
			if err != nil {
				t.Fatal(err)
			}
			args := make([]uint64, arity)
			for j := 0; j < n; j++ {
				for k := range args {
					args[k] = data[k][j]
				}
				if want := d.Golden(args, width); got[j] != want {
					t.Fatalf("element %d: got %d, golden %d (args %v)", j, got[j], want, args)
				}
			}
			e.Result().Free()
			for _, v := range vecs {
				v.Free()
			}
		})
	}
}

// TestGraphCustomBuilderOp registers a user operation through
// DefineOperation and materializes it through the graph compiler — the
// paper's extensibility story carried end to end: Builder circuit →
// μProgram → bbop opcode → lazy expression.
func TestGraphCustomBuilderOp(t *testing.T) {
	err := DefineOperation(OperationSpec{
		Name:  "graph_test_nand",
		Arity: 2,
		Build: func(b *Builder, width int) error {
			x := b.Operand("x", width)
			y := b.Operand("y", width)
			out := make(Bus, width)
			for i := range out {
				out[i] = b.Not(b.And(x[i], y[i]))
			}
			b.Output(out, "out")
			return nil
		},
		Golden: func(args []uint64, width int) uint64 {
			mask := uint64(1)<<uint(width) - 1
			return ^(args[0] & args[1]) & mask
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := testGraphSystem(t)
	defer sys.Close()
	rng := rand.New(rand.NewSource(5))
	const n, width = 80, 8
	va, _ := sys.AllocVector(n, width)
	vb, _ := sys.AllocVector(n, width)
	da := storeRand(t, rng, va)
	db := storeRand(t, rng, vb)
	// Mix the custom op with built-ins so it flows through scheduling,
	// CSE, and slot assignment like any catalog operation.
	a, b := sys.Lazy(va), sys.Lazy(vb)
	e := a.Apply("graph_test_nand", b).Min(a.Apply("graph_test_nand", b).Max(a))
	if _, err := sys.Materialize(e); err != nil {
		t.Fatal(err)
	}
	got, err := e.Result().Load()
	if err != nil {
		t.Fatal(err)
	}
	mask := uint64(1)<<width - 1
	for j := range got {
		nand := ^(da[j] & db[j]) & mask
		want := nand
		if mx := max64(nand, da[j]); mx < want {
			want = mx
		}
		if got[j] != want {
			t.Fatalf("element %d: got %d, want %d", j, got[j], want)
		}
	}
	e.Result().Free()
	va.Free()
	vb.Free()
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// TestGraphConstantsAndFolding checks Scalar handling: all-constant
// subtrees fold at compile time, surviving constants splat as shared
// vectors, and values come out right.
func TestGraphConstantsAndFolding(t *testing.T) {
	sys := testGraphSystem(t)
	defer sys.Close()
	const n, width = 64, 16
	v, _ := sys.AllocVector(n, width)
	rng := rand.New(rand.NewSource(9))
	data := storeRand(t, rng, v)
	a := sys.Lazy(v)
	// (3+4)*nothing folds to const 7; a + 7 consumes the splat. The
	// second use of Scalar 7 dedups onto the same constant vector.
	e := a.Add(Scalar(3, width).Add(Scalar(4, width))).Max(a.Add(Scalar(7, width)))
	cp, err := sys.Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	st := cp.Stats()
	if st.Folded != 1 {
		t.Errorf("folded %d nodes, want 1 (3+4)", st.Folded)
	}
	if st.ConstVectors != 1 {
		t.Errorf("allocated %d constant vectors, want 1 (7 deduplicated)", st.ConstVectors)
	}
	if st.CSEEliminated == 0 {
		t.Error("a+7 appears twice; CSE merged nothing")
	}
	if _, err := cp.Execute(); err != nil {
		t.Fatal(err)
	}
	got, err := e.Result().Load()
	if err != nil {
		t.Fatal(err)
	}
	for j := range got {
		want := (data[j] + 7) & 0xFFFF // max(x, x) = x
		if got[j] != want {
			t.Fatalf("element %d: got %d, want %d", j, got[j], want)
		}
	}
	cp.Free()
	e.Result().Free()
	v.Free()
}

// TestGraphLeafRoot materializes a bare leaf: no program runs and the
// result is the leaf vector itself.
func TestGraphLeafRoot(t *testing.T) {
	sys := testGraphSystem(t)
	defer sys.Close()
	v, _ := sys.AllocVector(32, 8)
	e := sys.Lazy(v)
	st, err := sys.Materialize(e)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 0 {
		t.Errorf("leaf root executed %d instructions, want 0", st.Instructions)
	}
	if e.Result() != v {
		t.Error("leaf root result is not the leaf vector")
	}
}

func TestGraphErrors(t *testing.T) {
	sys := testGraphSystem(t)
	defer sys.Close()
	sys2 := testGraphSystem(t)
	defer sys2.Close()
	c := testGraphCluster(t, 2)
	defer c.Close()

	v8, _ := sys.AllocVector(32, 8)
	v16, _ := sys.AllocVector(32, 16)
	vOther, _ := sys2.AllocVector(32, 8)
	vShort, _ := sys.AllocVector(16, 8)
	sv, _ := c.AllocShardedVector(32, 8)

	cases := []struct {
		name string
		run  func() error
	}{
		{"no expressions", func() error { _, err := sys.Materialize(); return err }},
		{"pure constant", func() error { _, err := sys.Materialize(Scalar(1, 8)); return err }},
		{"unknown op", func() error { _, err := sys.Materialize(sys.Lazy(v8).Apply("bogus", sys.Lazy(v8))); return err }},
		{"width mismatch", func() error { _, err := sys.Materialize(sys.Lazy(v8).Add(sys.Lazy(v16))); return err }},
		{"length mismatch", func() error { _, err := sys.Materialize(sys.Lazy(v8).Add(sys.Lazy(vShort))); return err }},
		{"foreign system leaf", func() error { _, err := sys.Materialize(sys.Lazy(v8).Add(sys.Lazy(vOther))); return err }},
		{"cluster leaf on system", func() error { _, err := sys.Materialize(sys.Lazy(v8).Add(c.Lazy(sv))); return err }},
		{"system leaf on cluster", func() error { _, err := c.Materialize(c.Lazy(sv).Add(sys.Lazy(v8))); return err }},
		{"nil expression", func() error { _, err := sys.Materialize(sys.Lazy(v8).Add(nil)); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.run(); err == nil {
				t.Error("accepted, want error")
			}
		})
	}

	t.Run("failed compile publishes no results", func(t *testing.T) {
		// A cramped geometry: naive per-node lowering of this chain
		// cannot fit its temporaries, so CompileWith fails mid-
		// allocation. The expression must come out untouched — no
		// result pointer at a freed vector — and no rows may leak.
		small := DefaultConfig()
		small.DRAM.Cols = 256
		small.DRAM.RowsPerSubarray = 128
		small.DRAM.Banks = 2
		small.DRAM.SubarraysPerBank = 2
		ssys, err := New(small)
		if err != nil {
			t.Fatal(err)
		}
		defer ssys.Close()
		va, _ := ssys.AllocVector(32, 16)
		vb, _ := ssys.AllocVector(32, 16)
		base := ssys.usedRows()
		e := ssys.Lazy(va)
		for i := 0; i < 10; i++ {
			e = e.Add(ssys.Lazy(vb))
		}
		if _, err := ssys.CompileWith(NaiveCompile, e); err == nil {
			t.Fatal("naive lowering of a 10-temp chain fit in 116 data rows")
		}
		if e.Result() != nil {
			t.Error("failed compile left a result pointer on the expression")
		}
		if got := ssys.usedRows(); got != base {
			t.Errorf("failed compile leaked rows: %d used, want %d", got, base)
		}
	})

	t.Run("root duplicate with DCE off", func(t *testing.T) {
		// CSE merges a root that duplicates an earlier subexpression;
		// the orphaned duplicate must lose its root mark or, with DCE
		// disabled, it schedules as a root without result storage.
		va, _ := sys.AllocVector(32, 8)
		vb, _ := sys.AllocVector(32, 8)
		rng := rand.New(rand.NewSource(21))
		da := storeRand(t, rng, va)
		db := storeRand(t, rng, vb)
		a, b := sys.Lazy(va), sys.Lazy(vb)
		whole := a.Add(b).Max(a)
		dupRoot := a.Add(b) // duplicates whole's first link
		cp, err := sys.CompileWith(CompileOptions{NoDCE: true}, whole, dupRoot)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cp.Execute(); err != nil {
			t.Fatal(err)
		}
		got, err := dupRoot.Result().Load()
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if want := (da[j] + db[j]) & 0xFF; got[j] != want {
				t.Fatalf("element %d: got %d, want %d", j, got[j], want)
			}
		}
		cp.Free()
		whole.Result().Free()
		dupRoot.Result().Free()
		va.Free()
		vb.Free()
	})

	t.Run("freed leaf", func(t *testing.T) {
		vf, _ := sys.AllocVector(32, 8)
		e := sys.Lazy(vf).Not()
		vf.Free()
		if _, err := sys.Materialize(e); err == nil {
			t.Error("freed leaf accepted")
		}
	})
}
