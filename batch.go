package simdram

import (
	"simdram/internal/ctrl"
	"simdram/internal/isa"
	"simdram/internal/obs"
)

// BatchStats describes the cost of an ExecBatch call. It mirrors
// ctrl.BatchStats the way Stats mirrors ctrl.ExecStats — the facade
// keeps internal types out of the public surface; keep the fields in
// sync.
type BatchStats struct {
	Instructions int64
	Commands     int64
	// BusyNs is the serial-equivalent latency: what issuing the same
	// program through Exec one instruction at a time would accumulate.
	BusyNs float64
	// CriticalPathNs is the overlap-aware latency: instructions whose
	// segments share a bank serialize, bank-disjoint instructions
	// overlap, and the batch completes when the last bank goes idle.
	CriticalPathNs float64
	EnergyPJ       float64
}

// Speedup returns the modeled gain of batched over serial issue:
// BusyNs / CriticalPathNs. A zero critical path makes the ratio
// undefined; an all-zero batch (nothing executed) reports 1 — no work,
// no gain — while a zero path with nonzero busy time reports 0, so
// inconsistent stats surface as an impossible speedup instead of
// masquerading as neutral.
func (s BatchStats) Speedup() float64 {
	if s.CriticalPathNs == 0 {
		if s.BusyNs == 0 {
			return 1
		}
		return 0
	}
	return s.BusyNs / s.CriticalPathNs
}

// ExecBatch executes a program of bbop instructions as one batch. The
// ISA layer extracts the data-hazard graph (read-after-write,
// write-after-write, write-after-read over object handles), and the
// control unit's scheduler issues instructions whose hazards are
// resolved concurrently on its persistent worker pool — instructions
// touching disjoint (bank, subarray) sets overlap, dependent or
// bank-sharing instructions serialize. Results are indistinguishable
// from issuing the program through Exec in order; the returned stats
// report both the serial-equivalent and the overlap-aware latency.
//
// On error the batch stops issuing: instructions already in flight
// complete, later ones are skipped, and all failures are reported in one
// joined error annotated with the instruction that caused them.
func (s *System) ExecBatch(prog isa.Program) (BatchStats, error) {
	st, err := s.execBatch(prog, nil)
	if err != nil {
		return BatchStats{}, err
	}
	return toBatchStats(st), nil
}

// DeviceUsage attributes one executed batch to the hardware that did
// the work: per-bank modeled busy time, DRAM command counts, and
// measured energy, indexed by bank. Bank sums equal the batch's
// aggregate stats (EnergyPJ exactly; BusyNs equals the batch's
// serial-equivalent BusyNs), so usage from many batches can be summed
// into per-tenant or per-channel bills without double counting.
type DeviceUsage struct {
	BusyNs   []float64
	Commands []int64
	EnergyPJ []float64
}

// TotalEnergyPJ sums the per-bank energy bills.
func (u DeviceUsage) TotalEnergyPJ() float64 {
	var t float64
	for _, v := range u.EnergyPJ {
		t += v
	}
	return t
}

// TotalBusyNs sums the per-bank busy bills.
func (u DeviceUsage) TotalBusyNs() float64 {
	var t float64
	for _, v := range u.BusyNs {
		t += v
	}
	return t
}

// ExecBatchUsage is ExecBatch surfacing the per-bank device usage the
// batch was billed — the attribution a resource accountant (or the
// serving layer's tenant bills) consumes.
func (s *System) ExecBatchUsage(prog isa.Program) (BatchStats, DeviceUsage, error) {
	pp, err := s.prepareProgram(prog)
	if err != nil {
		return BatchStats{}, DeviceUsage{}, err
	}
	var at ctrl.Attribution
	st, _, err := s.runPreparedAttr(pp, nil, &at)
	if err != nil {
		return BatchStats{}, DeviceUsage{}, err
	}
	return toBatchStats(st), DeviceUsage{BusyNs: at.BusyNs, Commands: at.Commands, EnergyPJ: at.EnergyPJ}, nil
}

// toBatchStats converts the control unit's stats to the public mirror
// — the single conversion point the "keep the fields in sync" contract
// (and its reflection test) protects.
func toBatchStats(st ctrl.BatchStats) BatchStats {
	return BatchStats{
		Instructions:   st.Instructions,
		Commands:       st.Commands,
		BusyNs:         st.BusyNs,
		CriticalPathNs: st.CriticalPathNs,
		EnergyPJ:       st.EnergyPJ,
	}
}

// execBatch is ExecBatch's engine, shared with the cluster facade: it
// reports the control unit's own stats type (so per-channel results can
// be merged without converting) and honors an external cancellation
// signal (closed when a sibling channel fails — issuing stops, in-flight
// instructions complete, later ones are skipped).
func (s *System) execBatch(prog isa.Program, cancel <-chan struct{}) (ctrl.BatchStats, error) {
	st, _, err := s.execBatchProfile(prog, cancel)
	return st, err
}

// execBatchProfile is execBatch surfacing the per-instruction modeled
// latencies: opNs[i] is the measured busy time of prog[i] (0 for
// bbop_trsp_init, which executes nothing). This is what the
// profile-guided plan management aggregates per shape; opNs is nil
// when the batch errors.
func (s *System) execBatchProfile(prog isa.Program, cancel <-chan struct{}) (ctrl.BatchStats, []float64, error) {
	pp, err := s.prepareProgram(prog)
	if err != nil {
		return ctrl.BatchStats{}, nil, err
	}
	return s.runPrepared(pp, cancel)
}

// preparedProgram is a bbop program bound once for repeated execution:
// the control unit's prepared batch (schedule plus resolved command
// streams) and enough context to verify on every run that the objects
// it was resolved against are still the live ones. Compiled graphs
// cache one of these so steady-state Execute calls skip instruction
// resolution, binding validation, and scheduling entirely.
type preparedProgram struct {
	prep   *ctrl.Prepared // nil for a program of only trsp_init instructions
	jobOf  []int          // instruction index → job index, -1 for trsp_init
	nInstr int
	// binds pins every referenced handle to the Vector it resolved to:
	// a run after the vector was freed (or its handle recycled) must
	// fail loudly instead of computing on reallocated rows.
	binds []objBind
	// scratch records each touched subarray's scratch-row requirement,
	// re-verified per run because later allocations can claim the tail
	// rows the binding's scratch region resolved to.
	scratch []scratchNeed
}

type objBind struct {
	h uint16
	v *Vector
}

type scratchNeed struct {
	bank, sub, need int
}

// prepareProgram validates and resolves a bbop program down to a
// control-unit prepared batch — the bind-once half of execution.
func (s *System) prepareProgram(prog isa.Program) (*preparedProgram, error) {
	return s.prepareProgramTraced(prog, nil, 0)
}

// prepareProgramTraced is prepareProgram with the serving layer's
// per-job trace threaded through: the control unit's command-stream
// resolution (the bind-once cost a cache hit amortizes) is accounted to
// a "resolve" span under parent. tr may be nil.
func (s *System) prepareProgramTraced(prog isa.Program, tr *obs.Trace, parent int) (*preparedProgram, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	deps := prog.Deps()
	if err := s.maybeVerify(prog, deps, nil); err != nil {
		return nil, err
	}
	jobs := make([]ctrl.Job, 0, len(prog))
	pp := &preparedProgram{jobOf: make([]int, len(prog)), nInstr: len(prog)}
	bound := map[uint16]bool{}
	scratch := map[[2]int]int{}
	bind := func(v *Vector) {
		if !bound[v.handle] {
			bound[v.handle] = true
			pp.binds = append(pp.binds, objBind{h: v.handle, v: v})
		}
	}
	for i, in := range prog {
		if in.Op == isa.OpTrspInit {
			v, ok := s.objects[in.Src[0]]
			if !ok {
				return nil, errorf("instruction %d: bbop_trsp_init: unknown object %d", i, in.Src[0])
			}
			bind(v)
			// trsp_init only validates the object (see Exec): it writes
			// nothing, so dropping it from the job graph loses no hazard.
			pp.jobOf[i] = -1
			continue
		}
		d, dst, srcs, err := s.resolve(in)
		if err != nil {
			return nil, errorf("instruction %d (%s): %w", i, in, err)
		}
		p, segs, err := s.prepareOp(d, dst, srcs)
		if err != nil {
			return nil, errorf("instruction %d (%s): %w", i, in, err)
		}
		bind(dst)
		for _, src := range srcs {
			bind(src)
		}
		for _, seg := range dst.segs {
			key := [2]int{seg.bank, seg.sub}
			if p.NumScratch > scratch[key] {
				scratch[key] = p.NumScratch
			}
		}
		var jdeps []int
		for _, dep := range deps[i] {
			if j := pp.jobOf[dep]; j >= 0 {
				jdeps = append(jdeps, j)
			}
		}
		pp.jobOf[i] = len(jobs)
		jobs = append(jobs, ctrl.Job{Program: p, Segments: segs, Deps: jdeps})
	}
	for key, need := range scratch {
		pp.scratch = append(pp.scratch, scratchNeed{bank: key[0], sub: key[1], need: need})
	}
	if len(jobs) == 0 {
		return pp, nil // program of only trsp_init instructions
	}
	rspan := tr.Begin("resolve", parent)
	prep, err := s.cu.Prepare(jobs)
	tr.End(rspan)
	if err != nil {
		return nil, err
	}
	pp.prep = prep
	return pp, nil
}

// runPrepared executes a prepared program — the run-many half. It
// re-verifies object liveness and scratch headroom (the only state that
// can legally drift between runs), then dispatches the prepared batch.
func (s *System) runPrepared(pp *preparedProgram, cancel <-chan struct{}) (ctrl.BatchStats, []float64, error) {
	return s.runPreparedAttr(pp, cancel, nil)
}

// runPreparedAttr is runPrepared with an optional device-attribution
// sink: on success the run's per-bank busy time, commands, and energy
// are accumulated into at (see ctrl.Attribution). A nil sink keeps the
// run allocation-free.
func (s *System) runPreparedAttr(pp *preparedProgram, cancel <-chan struct{}, at *ctrl.Attribution) (ctrl.BatchStats, []float64, error) {
	for _, b := range pp.binds {
		if v, ok := s.objects[b.h]; !ok || v != b.v || b.v.freed {
			return ctrl.BatchStats{}, nil, errorf("prepared program is stale: object %d was freed or replaced", b.h)
		}
	}
	for _, sc := range pp.scratch {
		if s.rows[sc.bank][sc.sub].tailFree() < sc.need {
			return ctrl.BatchStats{}, nil, errorf("prepared program is stale: subarray (%d,%d) lacks %d scratch rows", sc.bank, sc.sub, sc.need)
		}
	}
	if pp.prep == nil {
		return ctrl.BatchStats{}, nil, nil // program of only trsp_init instructions
	}
	st, durNs, err := s.cu.ExecutePreparedAttr(pp.prep, cancel, at)
	if err != nil {
		return st, nil, err
	}
	opNs := make([]float64, pp.nInstr)
	for i, j := range pp.jobOf {
		if j >= 0 {
			opNs[i] = durNs[j]
		}
	}
	return st, opNs, nil
}
