package simdram

import (
	"simdram/internal/logic"
	"simdram/internal/ops"
)

// Builder constructs the gate-level circuit of a user-defined operation.
// It is the public face of SIMDRAM Step 1's front end: describe the
// function with AND/OR/XOR/NOT/MAJ/MUX over little-endian buses, and the
// framework lowers it to an optimized MAJ/NOT graph and an in-DRAM
// μProgram — the paper's "implement arbitrary operations as required"
// without hardware changes.
//
// Gate methods fold constants and share identical subexpressions
// automatically; three-input Xor lowers to the 3-MAJ full-adder form.
type Builder struct {
	c *logic.Circuit
}

// Wire is a node of the circuit under construction.
type Wire int

// Bus is a little-endian group of wires (bit 0 first).
type Bus []Wire

// Operand returns the width-bit bus of source operand k (the order
// operands are passed to Run). Call once per operand, in order.
func (b *Builder) Operand(name string, width int) Bus {
	raw := b.c.InputBus(name, width)
	return wires(raw)
}

// OperandBit returns a 1-bit operand (e.g. a predicate produced by a
// relational operation).
func (b *Builder) OperandBit(name string) Wire {
	return Wire(b.c.Input(name))
}

// Const returns the constant wire v.
func (b *Builder) Const(v bool) Wire { return Wire(b.c.Const(v)) }

// And returns the conjunction of wires.
func (b *Builder) And(ws ...Wire) Wire { return Wire(b.c.And(ints(ws)...)) }

// Or returns the disjunction of wires.
func (b *Builder) Or(ws ...Wire) Wire { return Wire(b.c.Or(ints(ws)...)) }

// Xor returns the exclusive-or of wires.
func (b *Builder) Xor(ws ...Wire) Wire { return Wire(b.c.Xor(ints(ws)...)) }

// Not returns the complement.
func (b *Builder) Not(w Wire) Wire { return Wire(b.c.Not(int(w))) }

// Maj returns the three-input majority — the substrate-native gate.
func (b *Builder) Maj(x, y, z Wire) Wire { return Wire(b.c.Maj(int(x), int(y), int(z))) }

// Mux returns sel ? t : f.
func (b *Builder) Mux(sel, t, f Wire) Wire { return Wire(b.c.Mux(int(sel), int(t), int(f))) }

// Output declares the result bus (call exactly once).
func (b *Builder) Output(bus Bus, name string) {
	b.c.OutputBus(ints(bus), name)
}

// OutputBit declares a 1-bit result.
func (b *Builder) OutputBit(w Wire, name string) {
	b.c.Output(int(w), name)
}

// --- word-level helpers ---

// Add returns a + b (mod 2^len) over equal-length buses.
func (b *Builder) Add(x, y Bus) Bus {
	sum, _ := b.AddCarry(x, y, b.Const(false))
	return sum
}

// AddCarry returns x + y + cin and the carry-out.
func (b *Builder) AddCarry(x, y Bus, cin Wire) (Bus, Wire) {
	carry := cin
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.Xor(x[i], y[i], carry)
		carry = b.Maj(x[i], y[i], carry)
	}
	return out, carry
}

// Sub returns x - y (mod 2^len).
func (b *Builder) Sub(x, y Bus) Bus {
	ny := make(Bus, len(y))
	for i := range y {
		ny[i] = b.Not(y[i])
	}
	diff, _ := b.AddCarry(x, ny, b.Const(true))
	return diff
}

// GreaterEq returns the 1-bit result of unsigned x >= y.
func (b *Builder) GreaterEq(x, y Bus) Wire {
	carry := b.Const(true)
	for i := range x {
		carry = b.Maj(x[i], b.Not(y[i]), carry)
	}
	return carry
}

// Select returns sel ? x : y element-wise over equal-length buses.
func (b *Builder) Select(sel Wire, x, y Bus) Bus {
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.Mux(sel, x[i], y[i])
	}
	return out
}

func wires(raw []int) Bus {
	out := make(Bus, len(raw))
	for i, r := range raw {
		out[i] = Wire(r)
	}
	return out
}

func ints(ws []Wire) []int {
	out := make([]int, len(ws))
	for i, w := range ws {
		out[i] = int(w)
	}
	return out
}

// OperationSpec describes a user-defined operation for DefineOperation.
type OperationSpec struct {
	Name  string
	Arity int // number of source operands
	// DstWidth returns the result width for a given source width; nil
	// means same-width.
	DstWidth func(width int) int
	// SrcWidths returns per-operand widths; nil means all equal to the
	// requested width.
	SrcWidths func(width int) []int
	// Build describes the circuit: declare exactly Arity operands (in
	// order) and one output.
	Build func(b *Builder, width int) error
	// Golden computes the reference result for one element; it doubles
	// as the CPU-side oracle in tests and verification.
	Golden func(args []uint64, width int) uint64
}

// DefineOperation registers a new SIMDRAM operation. Once registered it
// behaves exactly like a built-in: System.Run(spec.Name, …) synthesizes
// (and caches) its μProgram per width and executes it in DRAM.
func DefineOperation(spec OperationSpec) error {
	if spec.Build == nil {
		return errorf("DefineOperation: missing Build")
	}
	dstWidth := spec.DstWidth
	if dstWidth == nil {
		dstWidth = func(w int) int { return w }
	}
	d := ops.Def{
		Name:      spec.Name,
		Arity:     spec.Arity,
		DstWidth:  dstWidth,
		SrcWidths: spec.SrcWidths,
		Golden:    spec.Golden,
		Build: func(w, n int) (*logic.Circuit, error) {
			b := &Builder{c: logic.New()}
			if err := spec.Build(b, w); err != nil {
				return nil, err
			}
			if err := b.c.Validate(); err != nil {
				return nil, err
			}
			return b.c, nil
		},
	}
	_, err := ops.RegisterCustom(d)
	return err
}
