package simdram

import (
	"math/rand"
	"testing"
)

// defineAbsDiff registers |a-b| once for the test binary.
func defineAbsDiff(t *testing.T) {
	t.Helper()
	err := DefineOperation(OperationSpec{
		Name:  "test_absdiff",
		Arity: 2,
		Build: func(b *Builder, width int) error {
			a := b.Operand("a", width)
			c := b.Operand("b", width)
			ge := b.GreaterEq(a, c)
			// |a-b| = a>=b ? a-b : b-a
			b.Output(b.Select(ge, b.Sub(a, c), b.Sub(c, a)), "y")
			return nil
		},
		Golden: func(args []uint64, width int) uint64 {
			mask := uint64(1)<<uint(width) - 1
			a, c := args[0]&mask, args[1]&mask
			if a >= c {
				return a - c
			}
			return c - a
		},
	})
	if err != nil && err.Error() != `ops: operation "test_absdiff" already registered` {
		t.Fatal(err)
	}
}

func TestDefineOperationEndToEnd(t *testing.T) {
	defineAbsDiff(t)
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(61))
	n, w := 300, 12
	a, _ := sys.AllocVector(n, w)
	b, _ := sys.AllocVector(n, w)
	dst, _ := sys.AllocVector(n, w)
	av := randVals(rng, n, w)
	bv := randVals(rng, n, w)
	a.Store(av)
	b.Store(bv)
	st, err := sys.Run("test_absdiff", dst, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Commands == 0 {
		t.Error("custom op must account commands")
	}
	got, err := dst.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want, err := Golden("test_absdiff", w, av[i], bv[i])
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("element %d: |%d-%d| = %d, want %d", i, av[i], bv[i], got[i], want)
		}
	}
	// The fused op must be listed like a built-in.
	found := false
	for _, name := range Operations() {
		if name == "test_absdiff" {
			found = true
		}
	}
	if !found {
		t.Error("custom operation missing from Operations()")
	}
}

func TestDefineOperationValidation(t *testing.T) {
	if err := DefineOperation(OperationSpec{Name: "x", Arity: 1}); err == nil {
		t.Error("missing Build must error")
	}
	err := DefineOperation(OperationSpec{
		Name: "", Arity: 1,
		Build:  func(b *Builder, w int) error { return nil },
		Golden: func(args []uint64, w int) uint64 { return 0 },
	})
	if err == nil {
		t.Error("empty name must error")
	}
	defineAbsDiff(t)
	err = DefineOperation(OperationSpec{
		Name: "test_absdiff", Arity: 2,
		Build: func(b *Builder, w int) error {
			b.Output(b.Operand("a", w), "y")
			_ = b.Operand("b", w)
			return nil
		},
		Golden: func(args []uint64, w int) uint64 { return args[0] },
	})
	if err == nil {
		t.Error("duplicate name must error")
	}
}

func TestBuilderHelpers(t *testing.T) {
	// A clamp(a, lo, hi) built purely from helpers.
	err := DefineOperation(OperationSpec{
		Name:  "test_clamp",
		Arity: 3,
		Build: func(b *Builder, width int) error {
			a := b.Operand("a", width)
			lo := b.Operand("lo", width)
			hi := b.Operand("hi", width)
			belowLo := b.Not(b.GreaterEq(a, lo)) // a < lo
			aboveHi := b.Not(b.GreaterEq(hi, a)) // a > hi
			clamped := b.Select(belowLo, lo, b.Select(aboveHi, hi, a))
			b.Output(clamped, "y")
			return nil
		},
		Golden: func(args []uint64, width int) uint64 {
			mask := uint64(1)<<uint(width) - 1
			a, lo, hi := args[0]&mask, args[1]&mask, args[2]&mask
			if a < lo {
				return lo
			}
			if a > hi {
				return hi
			}
			return a
		},
	})
	if err != nil && err.Error() != `ops: operation "test_clamp" already registered` {
		t.Fatal(err)
	}
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(62))
	n, w := 200, 8
	a, _ := sys.AllocVector(n, w)
	lo, _ := sys.AllocVector(n, w)
	hi, _ := sys.AllocVector(n, w)
	dst, _ := sys.AllocVector(n, w)
	av := randVals(rng, n, w)
	lov := make([]uint64, n)
	hiv := make([]uint64, n)
	for i := range lov {
		lov[i] = 50
		hiv[i] = 200
	}
	a.Store(av)
	lo.Store(lov)
	hi.Store(hiv)
	if _, err := sys.Run("test_clamp", dst, a, lo, hi); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Load()
	for i := range got {
		want := av[i]
		if want < 50 {
			want = 50
		}
		if want > 200 {
			want = 200
		}
		if got[i] != want {
			t.Fatalf("clamp(%d) = %d, want %d", av[i], got[i], want)
		}
	}
}
