package simdram

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"simdram/internal/obs"
)

// This file is the server's observability facade: public mirrors of
// the internal/obs types (the facade never exposes internal packages),
// snapshot accessors for traces, events, and metrics, and the
// expvar-style HTTP debug handler. See docs/observability.md for the
// span model and metric names.

// TraceSpan is one timed stage of a traced job. Spans form a tree via
// Parent (an index into JobTrace.Spans; the root "job" span is index 0
// with Parent -1); times are nanoseconds relative to the trace start.
type TraceSpan struct {
	Name string `json:"name"`
	// Parent is the index of the enclosing span in JobTrace.Spans, -1
	// for the root.
	Parent int `json:"parent"`
	// Channel is the cluster channel the stage ran on, -1 when the
	// stage is not channel-bound.
	Channel int   `json:"channel"`
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
}

// DurNs returns the span's duration (0 if it never closed).
func (s TraceSpan) DurNs() int64 {
	if s.EndNs <= s.StartNs {
		return 0
	}
	return s.EndNs - s.StartNs
}

// JobTrace is one sampled job's completed span tree, as retained by
// the flight recorder.
type JobTrace struct {
	// ID matches JobResult.TraceID of the job that produced this trace.
	ID uint64 `json:"id"`
	// StartUnixNs anchors the spans' relative times to the wall clock.
	StartUnixNs int64 `json:"start_unix_ns"`
	// Err is the job's failure message, "" on success.
	Err string `json:"err,omitempty"`
	// Spans is the span tree in creation order; Spans[0] is the root
	// "job" span covering admission to completion.
	Spans []TraceSpan `json:"spans"`
}

// ObsEvent is one notable incident from the flight recorder's event
// ring: kinds are "error" (a job failed), "evict" (the plan cache
// evicted a compiled plan), and "recompile" (profile feedback rebuilt
// a plan).
type ObsEvent struct {
	AtUnixNs int64  `json:"at_unix_ns"`
	Kind     string `json:"kind"`
	Detail   string `json:"detail"`
}

// MetricPoint is one series from the server's metrics registry. For
// histograms the quantiles are filled from the log-scale buckets
// (relative error bounded at 1/8) and Value is the observation count;
// for counters and gauges only Value is meaningful.
type MetricPoint struct {
	Name string `json:"name"`
	// Kind is "counter", "gauge", or "histogram".
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
	// Histogram-only fields.
	Sum  int64   `json:"sum,omitempty"`
	Mean float64 `json:"mean,omitempty"`
	P50  int64   `json:"p50,omitempty"`
	P90  int64   `json:"p90,omitempty"`
	P99  int64   `json:"p99,omitempty"`
	P999 int64   `json:"p999,omitempty"`
}

func toMetricPoints(ms []obs.Metric) []MetricPoint {
	out := make([]MetricPoint, 0, len(ms))
	for _, m := range ms {
		p := MetricPoint{Name: m.Name, Kind: m.Kind.String(), Value: m.Value}
		if m.Hist != nil {
			p.Sum = m.Hist.Sum
			p.Mean = m.Hist.Mean()
			p.P50 = m.Hist.Quantile(0.50)
			p.P90 = m.Hist.Quantile(0.90)
			p.P99 = m.Hist.Quantile(0.99)
			p.P999 = m.Hist.Quantile(0.999)
		}
		out = append(out, p)
	}
	return out
}

func toJobTrace(t *obs.Trace) JobTrace {
	if t == nil {
		return JobTrace{}
	}
	spans := t.Spans()
	jt := JobTrace{ID: t.ID, StartUnixNs: t.StartUnixNs, Err: t.Err(), Spans: make([]TraceSpan, len(spans))}
	for i, s := range spans {
		jt.Spans[i] = TraceSpan{Name: s.Name, Parent: s.Parent, Channel: s.Channel, StartNs: s.StartNs, EndNs: s.EndNs}
	}
	return jt
}

// Traces returns the flight recorder's retained span trees, oldest
// first — the last TraceDepth completed sampled jobs.
func (s *Server) Traces() []JobTrace {
	ts := s.rec.Traces()
	out := make([]JobTrace, len(ts))
	for i, t := range ts {
		out[i] = toJobTrace(t)
	}
	return out
}

// Events returns the flight recorder's retained incidents (errors,
// plan-cache evictions, profile-guided recompiles), oldest first.
func (s *Server) Events() []ObsEvent {
	es := s.rec.Events()
	out := make([]ObsEvent, len(es))
	for i, e := range es {
		out[i] = ObsEvent{AtUnixNs: e.AtUnixNs, Kind: e.Kind, Detail: e.Detail}
	}
	return out
}

// TraceRing reports the flight recorder's occupancy: retained traces,
// total ever recorded, and ring capacity.
func (s *Server) TraceRing() (retained int, total uint64, depth int) {
	return len(s.rec.Traces()), s.rec.TraceCount(), s.rec.Depth()
}

// ResetTraces clears the flight recorder's trace and event rings —
// e.g. to discard warmup history so a measurement window starts clean.
// In-flight jobs are unaffected; their traces land in the emptied ring
// as they complete.
func (s *Server) ResetTraces() { s.rec.Reset() }

// Metrics returns every series from the serving stack's metrics
// registry — scheduler counters and depth gauges, global and
// per-tenant latency histograms, plan-eviction counters, and the
// cluster's per-channel dispatch histograms — sorted by kind then
// name.
func (s *Server) Metrics() []MetricPoint {
	out := toMetricPoints(s.metrics.Snapshot())
	out = append(out, s.cl.Metrics()...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Metrics returns the cluster's dispatch series: the "cluster.batches"
// counter and one "cluster.dispatch_ns{channel=N}" histogram of
// modeled per-batch critical paths per channel.
func (c *Cluster) Metrics() []MetricPoint {
	return toMetricPoints(c.metrics.Snapshot())
}

// DebugHandler returns an expvar-style HTTP handler serving one JSON
// document with the server's point-in-time observability state:
//
//	{
//	  "stats":   ServerStats,
//	  "metrics": []MetricPoint,
//	  "traces":  []JobTrace,
//	  "events":  []ObsEvent
//	}
//
// A `?kind=metrics|traces|events` query serves just that section
// (still as a one-key document, so consumers parse one shape). Only
// GET and HEAD are allowed; other methods get 405, unknown kinds 400.
// Mount it wherever the deployment exposes debug endpoints:
//
//	http.Handle("/debug/simdram", srv.DebugHandler())
func (s *Server) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		doc := map[string]any{}
		switch kind := r.URL.Query().Get("kind"); kind {
		case "":
			doc["stats"] = s.Stats()
			doc["metrics"] = s.Metrics()
			doc["traces"] = s.Traces()
			doc["events"] = s.Events()
		case "metrics":
			doc["metrics"] = s.Metrics()
		case "traces":
			doc["traces"] = s.Traces()
		case "events":
			doc["events"] = s.Events()
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			http.Error(w, "unknown kind "+strconv.Quote(kind)+" (want metrics, traces, or events)", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// MetricsHandler returns a Prometheus-style text exposition handler
// for every registry series: counters and gauges as single samples,
// histograms as summaries (quantile-labeled samples plus _sum and
// _count). Series names map to metric families by replacing dots with
// underscores under a "simdram_" prefix, and the registry's
// base{label=value} convention becomes label syntax proper — e.g.
// channel.busy_ns{channel=2} is exposed as
//
//	simdram_channel_busy_ns{channel="2"} 1.23e+06
//
// Mount it next to DebugHandler:
//
//	http.Handle("/metrics", srv.MetricsHandler())
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeExposition(w, s.Metrics())
	})
}

// expoFamily groups the samples of one exposition metric family.
type expoFamily struct {
	name    string // simdram_-prefixed family name
	kind    string // "counter", "gauge", or "summary"
	samples []string
}

// expoName maps a registry base name to its exposition family name.
func expoName(base string) string {
	return "simdram_" + strings.ReplaceAll(base, ".", "_")
}

// expoLabels renders parsed label pairs (plus an optional extra pair)
// in exposition syntax: {k1="v1",k2="v2"} or "" when empty.
func expoLabels(labels [][2]string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteByte('=')
		b.WriteString(strconv.Quote(kv[1]))
	}
	if extraK != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(extraV))
	}
	b.WriteByte('}')
	return b.String()
}

func expoFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeExposition renders the metric points grouped into families, each
// preceded by its # TYPE line, families and samples sorted by name.
func writeExposition(w io.Writer, points []MetricPoint) {
	fams := map[string]*expoFamily{}
	order := []string{}
	add := func(name, kind, sample string) {
		f := fams[name]
		if f == nil {
			f = &expoFamily{name: name, kind: kind}
			fams[name] = f
			order = append(order, name)
		}
		f.samples = append(f.samples, sample)
	}
	for _, p := range points {
		base, labels := obs.ParseSeries(p.Name)
		name := expoName(base)
		switch p.Kind {
		case "histogram":
			// Exposed as a summary: pre-extracted quantiles, exact sum
			// and count.
			for _, q := range [...]struct {
				q string
				v int64
			}{{"0.5", p.P50}, {"0.9", p.P90}, {"0.99", p.P99}, {"0.999", p.P999}} {
				add(name, "summary", name+expoLabels(labels, "quantile", q.q)+" "+strconv.FormatInt(q.v, 10))
			}
			add(name, "summary", name+"_sum"+expoLabels(labels, "", "")+" "+strconv.FormatInt(p.Sum, 10))
			add(name, "summary", name+"_count"+expoLabels(labels, "", "")+" "+expoFloat(p.Value))
		case "gauge":
			add(name, "gauge", name+expoLabels(labels, "", "")+" "+expoFloat(p.Value))
		default:
			add(name, "counter", name+expoLabels(labels, "", "")+" "+expoFloat(p.Value))
		}
	}
	sort.Strings(order)
	for _, name := range order {
		f := fams[name]
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		sort.Strings(f.samples)
		for _, s := range f.samples {
			fmt.Fprintln(w, s)
		}
	}
}
