package simdram

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestSubmitJobWrapperEquivalence checks the deprecated SubmitLazy
// wrapper is bit-identical to the JobSpec path it delegates to.
func TestSubmitJobWrapperEquivalence(t *testing.T) {
	srv := testServer(t, 2, nil)
	rng := rand.New(rand.NewSource(11))
	const n = 64
	a, b := randData(rng, n, 8), randData(rng, n, 8)

	build := func() *Expr { return Input(a, 8).Add(Input(b, 8)).Max(Scalar(17, 8)) }
	oldFut, err := srv.SubmitLazy(context.Background(), "compat", build())
	if err != nil {
		t.Fatal(err)
	}
	newFut, err := srv.SubmitJob(context.Background(), JobSpec{Tenant: "compat"}, build())
	if err != nil {
		t.Fatal(err)
	}
	oldRes, err := oldFut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := newFut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(oldRes.Values) != 1 || len(newRes.Values) != 1 {
		t.Fatalf("result counts: old=%d new=%d", len(oldRes.Values), len(newRes.Values))
	}
	for i := range oldRes.Values[0] {
		if oldRes.Values[0][i] != newRes.Values[0][i] {
			t.Fatalf("element %d differs between wrapper and JobSpec path: %d vs %d",
				i, oldRes.Values[0][i], newRes.Values[0][i])
		}
	}
	// Both paths price admission the same way: the wrapper is the
	// JobSpec path, so it carries the estimate too.
	if oldRes.Admission.ModeledNs <= 0 || newRes.Admission.ModeledNs <= 0 {
		t.Fatalf("both paths must carry an admission estimate: old=%+v new=%+v",
			oldRes.Admission, newRes.Admission)
	}
}

// blockedTierServer wedges a 1-channel server's worker so later
// submissions queue (or reject) deterministically.
func blockedTierServer(t *testing.T, tune func(*ServerConfig)) (*Server, chan struct{}, *Future) {
	t.Helper()
	srv := testServer(t, 1, tune)
	gate := make(chan struct{})
	blocker, err := srv.Submit(context.Background(), "blocker", func(sys *System, cancel <-chan struct{}) error {
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if srv.Stats().Running == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("worker never started the blocker job")
		}
		time.Sleep(time.Millisecond)
	}
	return srv, gate, blocker
}

// TestServerDeadlineRejection checks an infeasible deadline rejects at
// admission with the typed error — never queued — and that a feasible
// deadline admits with the estimate surfaced in the JobResult.
func TestServerDeadlineRejection(t *testing.T) {
	srv, gate, _ := blockedTierServer(t, func(cfg *ServerConfig) {
		cfg.QueueDepth = 32
	})
	var gateOnce sync.Once
	releaseGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer releaseGate()
	rng := rand.New(rand.NewSource(5))
	data := randData(rng, 256, 16)
	expr := func() *Expr { return Input(data, 16).Add(Scalar(3, 16)).Max(Scalar(9, 16)) }

	// Back the queue up behind the blocker so any new arrival sees a
	// non-trivial estimated wait.
	for i := 0; i < 8; i++ {
		if _, err := srv.SubmitJob(context.Background(), JobSpec{Tenant: "bulk"}, expr()); err != nil {
			t.Fatal(err)
		}
	}
	depthBefore := srv.Stats().QueueDepth
	_, err := srv.SubmitJob(context.Background(), JobSpec{
		Tenant: "dl", Deadline: time.Now().Add(time.Nanosecond),
	}, expr())
	if !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("want ErrDeadlineInfeasible, got %v", err)
	}
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("want *AdmissionError, got %T", err)
	}
	if adm.Tenant != "dl" || adm.ModeledNs <= 0 {
		t.Fatalf("admission error must carry tenant and modeled cost: %+v", adm)
	}
	if got := srv.Stats().QueueDepth; got != depthBefore {
		t.Fatalf("rejected job must never be queued: depth %d → %d", depthBefore, got)
	}
	// A generous deadline admits, and the future's result carries the
	// admission estimate for auditing.
	fut, err := srv.SubmitJob(context.Background(), JobSpec{
		Tenant: "dl", Deadline: time.Now().Add(time.Hour),
	}, expr())
	if err != nil {
		t.Fatal(err)
	}
	releaseGate()
	res, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Admission.ModeledNs <= 0 {
		t.Fatalf("admitted job must carry its modeled-cost estimate: %+v", res.Admission)
	}
}

// TestServerTierStats checks ServerStats.Tiers: declared tiers appear,
// tenants land in their tiers, shares sum to 1, and single-tier merged
// quantiles equal the whole population's.
func TestServerTierStats(t *testing.T) {
	srv := testServer(t, 2, func(cfg *ServerConfig) {
		cfg.Tiers = []Tier{
			{Name: "gold", Weight: 4, Priority: 1},
			{Name: "bronze", Weight: 1},
		}
	})
	rng := rand.New(rand.NewSource(7))
	const jobs = 12
	var futs []*Future
	for i := 0; i < jobs; i++ {
		data := randData(rng, 128, 8)
		spec := JobSpec{Tenant: "g1", Tier: "gold"}
		if i%3 == 0 {
			spec = JobSpec{Tenant: "b1", Tier: "bronze"}
		}
		fut, err := srv.SubmitJob(context.Background(), spec, Input(data, 8).Add(Scalar(1, 8)))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	for _, fut := range futs {
		if _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	gold, ok := st.Tiers["gold"]
	if !ok {
		t.Fatalf("gold tier missing: %+v", st.Tiers)
	}
	bronze := st.Tiers["bronze"]
	if gold.Weight != 4 || gold.Priority != 1 || gold.Tenants != 1 {
		t.Fatalf("gold tier config/membership: %+v", gold)
	}
	if gold.Dispatched+bronze.Dispatched != jobs {
		t.Fatalf("tier dispatch counts %d+%d, want %d", gold.Dispatched, bronze.Dispatched, jobs)
	}
	var share float64
	for _, tier := range st.Tiers {
		share += tier.ShareOfDevice
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("tier shares must sum to 1, got %.4f", share)
	}
	if ts, ok := st.Tenants["g1"]; !ok || ts.Submitted == 0 {
		t.Fatalf("tenant g1 stats missing: %+v", st.Tenants)
	}
}

// TestServerSingleTierQuantilesMatchPopulation checks the tier-merge
// identity at the serving layer: with every tenant in the (implicit)
// default tier, the tier's quantiles equal the scheduler's global
// histogram quantiles exactly.
func TestServerSingleTierQuantilesMatchPopulation(t *testing.T) {
	srv := testServer(t, 2, nil)
	rng := rand.New(rand.NewSource(13))
	var futs []*Future
	for i := 0; i < 16; i++ {
		data := randData(rng, 64, 8)
		tenant := "ta"
		if i%2 == 1 {
			tenant = "tb"
		}
		fut, err := srv.SubmitJob(context.Background(), JobSpec{Tenant: tenant}, Input(data, 8).Add(Scalar(2, 8)))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	for _, fut := range futs {
		if _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	tier, ok := srv.Stats().Tiers["default"]
	if !ok {
		t.Fatal("implicit default tier must appear once traffic ran")
	}
	global := srv.Metrics()
	var p50, p99 int64
	for _, mp := range global {
		if mp.Name == "sched.run_ns" {
			p50, p99 = mp.P50, mp.P99
		}
	}
	if tier.RunP50Ns != p50 || tier.RunP99Ns != p99 {
		t.Fatalf("single-tier merged quantiles (p50=%d p99=%d) must equal population (p50=%d p99=%d)",
			tier.RunP50Ns, tier.RunP99Ns, p50, p99)
	}
}
