package simdram

import (
	"time"

	"simdram/internal/graph"
	"simdram/internal/isa"
	"simdram/internal/obs"
	"simdram/internal/ops"
)

// Expr is a lazy vector expression: a node of a dataflow DAG that
// nothing executes until Materialize (or Compile + Execute) lowers the
// whole graph to one batched bbop program. Combinators build new
// expressions without touching DRAM:
//
//	a, b, c := sys.Lazy(va), sys.Lazy(vb), sys.Lazy(vc)
//	e := a.Add(b).Mul(c.Sub(a))
//	stats, _ := sys.Materialize(e)
//	out, _ := e.Result().Load()
//
// The compiler folds constant subexpressions, merges common
// subexpressions, drops dead nodes, orders instructions with a
// cost-model-driven list schedule, and packs intermediates into a
// small pool of reused temporary-row vectors instead of allocating one
// per node. Expressions are cheap immutable trees: sharing an *Expr
// between two larger expressions shares the computation, and even
// structurally duplicated subtrees are merged by CSE at compile time.
type Expr struct {
	kind   exprKind
	opName string
	args   []*Expr
	leaf   *Vector
	sleaf  *ShardedVector
	data   []uint64
	val    uint64
	width  int

	result  *Vector
	sresult *ShardedVector
}

type exprKind uint8

const (
	exprLeaf exprKind = iota
	exprShardLeaf
	exprData
	exprConst
	exprOp
)

// Lazy wraps a vector as a lazy expression leaf. The vector must
// belong to this System and stay live until the expression is
// materialized.
func (s *System) Lazy(v *Vector) *Expr { return &Expr{kind: exprLeaf, leaf: v} }

// Input returns a data leaf: a vector the compiler allocates, stores,
// and owns, holding the given elements at the given width. Data leaves
// make an expression self-contained — no pre-allocated Vector, no
// binding to a particular System or Cluster until compile time — which
// is what lets a Server dispatch the same expression shape onto
// whichever channel is free, and what lets the plan cache treat two
// requests with different payloads as the same shape. A data leaf used
// only as an operand is released with the compiler's temporaries; a
// data leaf that is itself a materialization root keeps its storage as
// that root's result. The data slice must stay unmodified until the
// expression is materialized.
func Input(data []uint64, width int) *Expr {
	return &Expr{kind: exprData, data: data, width: width}
}

// Scalar returns a constant expression: the value splatted across
// every lane at the given width. Operations whose arguments are all
// constants fold at compile time through the operation's golden model;
// constants that survive folding materialize as one stored vector each
// (deduplicated by CSE), never as DRAM compute.
func Scalar(val uint64, width int) *Expr {
	return &Expr{kind: exprConst, val: val, width: width}
}

// Apply builds the expression op(e, more...) for any operation in the
// catalog — built-in or registered through DefineOperation. The
// receiver is operand 0. Unknown names and arity or width mismatches
// are reported at compile time.
func (e *Expr) Apply(opName string, more ...*Expr) *Expr {
	return &Expr{kind: exprOp, opName: opName, args: append([]*Expr{e}, more...)}
}

// Add returns e + o (mod 2^w).
func (e *Expr) Add(o *Expr) *Expr { return e.Apply("addition", o) }

// Sub returns e - o (mod 2^w).
func (e *Expr) Sub(o *Expr) *Expr { return e.Apply("subtraction", o) }

// Mul returns e × o; the result carries the full product width (2w
// capped at 64).
func (e *Expr) Mul(o *Expr) *Expr { return e.Apply("multiplication", o) }

// Div returns e / o (unsigned; x/0 = all-ones).
func (e *Expr) Div(o *Expr) *Expr { return e.Apply("division", o) }

// Mod returns e mod o (unsigned; x mod 0 = x).
func (e *Expr) Mod(o *Expr) *Expr { return e.Apply("modulo", o) }

// Max returns the unsigned maximum of e and o.
func (e *Expr) Max(o *Expr) *Expr { return e.Apply("max", o) }

// Min returns the unsigned minimum of e and o.
func (e *Expr) Min(o *Expr) *Expr { return e.Apply("min", o) }

// Equal returns the 1-bit predicate e == o.
func (e *Expr) Equal(o *Expr) *Expr { return e.Apply("equal", o) }

// Greater returns the 1-bit predicate e > o (unsigned).
func (e *Expr) Greater(o *Expr) *Expr { return e.Apply("greater", o) }

// GreaterEqual returns the 1-bit predicate e >= o (unsigned).
func (e *Expr) GreaterEqual(o *Expr) *Expr { return e.Apply("greater_equal", o) }

// Abs returns |e| under the signed two's-complement reading.
func (e *Expr) Abs() *Expr { return e.Apply("abs") }

// Not returns ~e.
func (e *Expr) Not() *Expr { return e.Apply("not") }

// ReLU returns e < 0 ? 0 : e under the signed reading.
func (e *Expr) ReLU() *Expr { return e.Apply("relu") }

// BitCount returns the population count of e (ceil(log2(w+1)) bits).
func (e *Expr) BitCount() *Expr { return e.Apply("bitcount") }

// ShiftLeft returns e << 1 with zero fill.
func (e *Expr) ShiftLeft() *Expr { return e.Apply("shift_left") }

// ShiftRight returns e >> 1 with zero fill.
func (e *Expr) ShiftRight() *Expr { return e.Apply("shift_right") }

// IfElse returns onTrue or onFalse per lane, selected by e, which must
// be a 1-bit predicate (e.g. the result of Greater).
func (e *Expr) IfElse(onTrue, onFalse *Expr) *Expr {
	return onTrue.Apply("if_else", onFalse, e)
}

// Result returns the vector holding this expression's value after a
// System materialization. For a root that is itself a plain leaf it is
// the leaf vector; otherwise it is a fresh vector the caller owns and
// should Free. Nil before the first Materialize/Compile.
func (e *Expr) Result() *Vector { return e.result }

// ShardedResult is Result for cluster materializations.
func (e *Expr) ShardedResult() *ShardedVector { return e.sresult }

// CompileOptions disables individual compiler passes — the knobs the
// differential tests and the naive-lowering baseline use. The zero
// value runs every pass.
type CompileOptions struct {
	NoFold     bool // keep constant subexpressions as DRAM compute
	NoCSE      bool // keep structurally duplicated subexpressions
	NoDCE      bool // emit unreachable nodes too
	NoReuse    bool // one fresh temporary per intermediate, no lifetime reuse
	NoSchedule bool // construction order instead of the cost-driven list schedule
}

// NaiveCompile disables every pass: one instruction and one fresh
// temporary per expression node, in construction order — the per-node
// baseline the optimized compiler is measured against.
var NaiveCompile = CompileOptions{NoFold: true, NoCSE: true, NoDCE: true, NoReuse: true, NoSchedule: true}

// CompileStats reports what the graph compiler did with an expression
// DAG.
type CompileStats struct {
	// Nodes is the operation-node count before any pass ran.
	Nodes int
	// Folded is how many operation nodes constant folding replaced.
	Folded int
	// CSEEliminated is how many duplicate nodes merged onto their first
	// occurrence.
	CSEEliminated int
	// DCEEliminated is how many unreachable operation/constant nodes
	// were dropped.
	DCEEliminated int
	// Instructions is the emitted bbop instruction count.
	Instructions int
	// TempRowsNaive is the DRAM rows per subarray that one fresh
	// temporary per intermediate would claim.
	TempRowsNaive int
	// TempRowsPooled is the rows the lifetime-reuse slot pool claims.
	TempRowsPooled int
	// TempSlots is the number of pooled temporary vectors allocated.
	TempSlots int
	// ConstVectors is the number of splatted constant vectors.
	ConstVectors int
	// CacheHit reports that this compilation reused a cached plan:
	// folding, CSE, DCE, scheduling, and slot assignment were all
	// skipped and only operand binding ran. The pass counters above
	// then describe what the original cold compile did.
	CacheHit bool
	// Recompiled reports that this compilation rebuilt the shape's plan
	// from its measured profile: the shape's observed per-op latencies
	// had diverged from the static cost model beyond the profile
	// threshold, so the scheduler re-ran with observed costs and the
	// cached plan was replaced.
	Recompiled bool
	// ProfiledPlan reports that the plan used (freshly rebuilt or
	// cached) was scheduled with observed per-op costs rather than the
	// static model — the jobs that benefit from a past recompile.
	ProfiledPlan bool
	// ProfileJobs is how many executed jobs had been folded into this
	// shape's profile when the plan was resolved (0 when no profile
	// feedback is active for the shape).
	ProfileJobs int
}

// TempRowsSaved returns the fraction of temporary rows lifetime reuse
// avoided allocating (0 when there are no intermediates).
func (s CompileStats) TempRowsSaved() float64 {
	if s.TempRowsNaive == 0 {
		return 0
	}
	return 1 - float64(s.TempRowsPooled)/float64(s.TempRowsNaive)
}

// compileEnv is the shared expression-to-IR front end: it memoizes
// *Expr pointers onto graph nodes (so shared subtrees become shared
// nodes before CSE even runs) and records which leaf backs each input
// node.
type compileEnv struct {
	sys *System // exactly one of sys/cl is set
	cl  *Cluster

	g          *graph.Graph
	memo       map[*Expr]graph.NodeID
	leafOf     map[graph.NodeID]*Expr
	first      *Expr // first leaf of any kind: defines n
	firstVec   *Expr // first Vector leaf: defines System placement
	firstShard *Expr // first ShardedVector leaf: defines Cluster placement
	n          int
	key        string // plan-cache shape key, set by planExprs
}

func (env *compileEnv) node(e *Expr) (graph.NodeID, error) {
	if e == nil {
		return 0, errorf("graph: nil expression")
	}
	if id, ok := env.memo[e]; ok {
		return id, nil
	}
	var id graph.NodeID
	var err error
	switch e.kind {
	case exprLeaf:
		if env.cl != nil {
			return 0, errorf("graph: plain Vector leaf in a Cluster expression (use Cluster.Lazy)")
		}
		v := e.leaf
		if v == nil || v.freed {
			return 0, errorf("graph: leaf vector is nil or freed")
		}
		if v.sys != env.sys {
			return 0, errorf("graph: leaf vector belongs to a different System")
		}
		if env.first == nil {
			env.first, env.n = e, v.n
		} else if v.n != env.n {
			return 0, errorf("graph: leaf has %d elements, expression has %d", v.n, env.n)
		}
		if env.firstVec == nil {
			env.firstVec = e
		} else if !v.aligned(env.firstVec.leaf) {
			return 0, errorf("graph: leaf vectors are not segment-aligned (allocate them with the same length and placement)")
		}
		if id, err = env.g.Input(v.width); err != nil {
			return 0, err
		}
		env.leafOf[id] = e
	case exprShardLeaf:
		if env.sys != nil {
			return 0, errorf("graph: ShardedVector leaf in a System expression (use System.Lazy)")
		}
		v := e.sleaf
		if v == nil || v.freed {
			return 0, errorf("graph: leaf sharded vector is nil or freed")
		}
		if v.cl != env.cl {
			return 0, errorf("graph: leaf sharded vector belongs to a different Cluster")
		}
		if env.first == nil {
			env.first, env.n = e, v.n
		} else if v.n != env.n {
			return 0, errorf("graph: leaf has %d elements, expression has %d", v.n, env.n)
		}
		if env.firstShard == nil {
			env.firstShard = e
		} else if !v.plan.Equal(env.firstShard.sleaf.plan) {
			return 0, errorf("graph: leaf sharded vectors are not shard-aligned (allocate operand groups with the same length and placement)")
		}
		if id, err = env.g.Input(v.width); err != nil {
			return 0, err
		}
		env.leafOf[id] = e
	case exprData:
		if len(e.data) == 0 {
			return 0, errorf("graph: data leaf is empty")
		}
		if env.first == nil {
			env.first, env.n = e, len(e.data)
		} else if len(e.data) != env.n {
			return 0, errorf("graph: data leaf has %d elements, expression has %d", len(e.data), env.n)
		}
		if id, err = env.g.Input(e.width); err != nil {
			return 0, err
		}
		env.leafOf[id] = e
	case exprConst:
		if id, err = env.g.Const(e.val, e.width); err != nil {
			return 0, err
		}
	case exprOp:
		d, err := ops.ByName(e.opName)
		if err != nil {
			return 0, err
		}
		argIDs := make([]graph.NodeID, len(e.args))
		for k, a := range e.args {
			if argIDs[k], err = env.node(a); err != nil {
				return 0, err
			}
		}
		if id, err = env.g.Op(d, argIDs...); err != nil {
			return 0, err
		}
	default:
		return 0, errorf("graph: unknown expression kind %d", e.kind)
	}
	env.memo[e] = id
	return id, nil
}

// optsKey encodes the pass switches into the plan-cache key: the same
// shape compiled under different options yields a different plan, so
// the options are part of the shape's identity.
func optsKey(opts CompileOptions) string {
	bits := 0
	for i, b := range []bool{opts.NoFold, opts.NoCSE, opts.NoDCE, opts.NoReuse, opts.NoSchedule} {
		if b {
			bits |= 1 << i
		}
	}
	return string(rune('0'+bits)) + "|"
}

// planExprs runs the backend-independent half of compilation: build the
// IR from the expression trees, then either reuse a cached plan for
// this shape or run the enabled passes, schedule, and assign
// temporaries to slots. On a cache hit env.g is swapped for the cached
// optimized graph — the fresh graph and the cached one are structurally
// identical by construction (the cache key is the exact pre-pass
// serialization, and passes never renumber nodes), so the node IDs in
// env.leafOf remain valid. Concurrent cold compiles of one shape are
// deduplicated by the cache (PlanCache.Do): one caller compiles, the
// rest wait for its plan. cache may be nil (no caching).
//
// When profiles is non-nil and the shape's measured per-op latencies
// have diverged from the static cost model (ProfileStore.TakeRecompile),
// the cached plan is invalidated and rebuilt with observed costs —
// exactly one caller per diverged shape performs the recompile.
// Profile feedback only reprices the schedule, so it is disabled when
// opts.NoSchedule pins construction order.
//
// tr, when non-nil, receives "cache-lookup" and (on a cold compile or
// recompile) "schedule" spans under parent — the serving layer's
// per-job trace. Pass a nil trace (and any parent) when not tracing.
func planExprs(sys *System, cl *Cluster, opts CompileOptions, exprs []*Expr, cache *graph.PlanCache, profiles *graph.ProfileStore, tr *obs.Trace, parent int) (*compileEnv, *graph.Plan, CompileStats, error) {
	var stats CompileStats
	env, err := buildEnv(sys, cl, exprs)
	if err != nil {
		return nil, nil, stats, err
	}
	for id := 0; id < env.g.Len(); id++ {
		if env.g.Node(graph.NodeID(id)).Kind == graph.KindOp {
			stats.Nodes++
		}
	}
	key := optsKey(opts) + env.g.CanonicalKey()
	env.key = key
	if opts.NoSchedule {
		profiles = nil
	}
	model := modelCost(planCfg(sys, cl))
	var plan *graph.Plan
	look := tr.Begin("cache-lookup", parent)
	if profiles.TakeRecompile(key) {
		tr.End(look)
		sspan := tr.Begin("schedule", parent)
		start := time.Now()
		observed := profiles.ScheduleCost(key, model)
		plan = buildPlan(env.g, opts, observed)
		// The list scheduler is a heuristic: re-pricing can, on some
		// DAGs, reorder priorities unfavorably. Price both candidate
		// schedules under the observed costs and keep the better one,
		// so a recompile can never install a worse schedule than the
		// one it replaces.
		cfg := planCfg(sys, cl)
		staticSched := plan.Graph.Schedule(model)
		if plan.Graph.EstimateMakespanNs(staticSched, observed, cfg.DRAM.Banks) <
			plan.Graph.EstimateMakespanNs(plan.Sched, observed, cfg.DRAM.Banks) {
			plan.Sched = staticSched
			plan.Asg = graph.Assign(plan.Graph, plan.Sched, !opts.NoReuse)
		}
		plan.Profiled = true
		cache.Replace(key, plan, float64(time.Since(start).Nanoseconds()))
		stats.Recompiled = true
		tr.End(sspan)
	} else {
		var hit bool
		plan, hit = cache.Do(key, func() *graph.Plan {
			// This caller lost the lookup and is the one compiling: close
			// the lookup span here so it measures the decision, not the
			// build, and account the build to "schedule".
			tr.End(look)
			sspan := tr.Begin("schedule", parent)
			defer tr.End(sspan)
			return buildPlan(env.g, opts, model)
		})
		tr.End(look)
		if hit {
			env.g = plan.Graph
			stats.CacheHit = true
		}
	}
	stats.ProfiledPlan = plan.Profiled
	stats.ProfileJobs = profiles.Jobs(key)
	stats.Folded = plan.Folded
	stats.CSEEliminated = plan.CSEEliminated
	stats.DCEEliminated = plan.DCEEliminated
	stats.Instructions = len(plan.Sched)
	stats.TempRowsNaive = plan.Asg.NaiveRows
	stats.TempRowsPooled = plan.Asg.PooledRows
	stats.TempSlots = len(plan.Asg.SlotWidths)
	for id := 0; id < env.g.Len(); id++ {
		n := env.g.Node(graph.NodeID(id))
		if n.Kind == graph.KindConst && env.g.Alive(graph.NodeID(id)) && !n.Root {
			stats.ConstVectors++
		}
	}
	return env, plan, stats, nil
}

// buildEnv constructs the IR graph from the expression trees — the
// pure front half of planExprs, shared with admission-time cost
// estimation (which needs the graph's canonical key and a makespan
// estimate but must not touch the plan cache's statistics).
func buildEnv(sys *System, cl *Cluster, exprs []*Expr) (*compileEnv, error) {
	if len(exprs) == 0 {
		return nil, errorf("graph: nothing to materialize")
	}
	env := &compileEnv{
		sys: sys, cl: cl,
		g:      graph.New(),
		memo:   map[*Expr]graph.NodeID{},
		leafOf: map[graph.NodeID]*Expr{},
	}
	for _, e := range exprs {
		id, err := env.node(e)
		if err != nil {
			return nil, err
		}
		env.g.MarkRoot(id)
	}
	if env.first == nil {
		return nil, errorf("graph: expression has no vector or data leaf, element count unknown (combine constants with at least one Lazy vector or Input data leaf)")
	}
	return env, nil
}

// planCfg returns the channel geometry scheduling costs come from.
func planCfg(sys *System, cl *Cluster) Config {
	if sys != nil {
		return sys.cfg
	}
	return cl.cfg.Channel
}

// modelCost returns the static cost model for one channel geometry:
// the per-op μProgram latency under the system's own timing constants
// — what the scheduler prices with before any profile feedback exists,
// and the baseline measured profiles are compared against.
func modelCost(cfg Config) graph.CostFn {
	return func(d ops.Def, w, n int) float64 {
		c, err := ops.CostNs(d, w, n, cfg.Variant, cfg.DRAM.Timing)
		if err != nil {
			return 1 // synthesis failures resurface with context at execution
		}
		return c
	}
}

// buildPlan runs the optimization passes, the scheduler, and the slot
// assigner over a freshly built graph — the cold-compile path the plan
// cache memoizes. cost prices the list schedule: the static model on a
// cold compile, observed per-op latencies on a profile-guided
// recompile.
func buildPlan(g *graph.Graph, opts CompileOptions, cost graph.CostFn) *graph.Plan {
	plan := &graph.Plan{Graph: g}
	if !opts.NoFold {
		plan.Folded = g.FoldConstants()
	}
	if !opts.NoCSE {
		plan.CSEEliminated = g.CSE()
	}
	if !opts.NoDCE {
		plan.DCEEliminated = g.DCE()
	}
	if opts.NoSchedule {
		plan.Sched = g.ProgramOrder()
	} else {
		plan.Sched = g.Schedule(cost)
	}
	plan.Asg = graph.Assign(g, plan.Sched, !opts.NoReuse)
	return plan
}

// splat returns n copies of val.
func splat(val uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = val
	}
	return out
}

// graphObj is the slice of the Vector/ShardedVector surface the
// shared lowering back end needs: one implementation of the slot,
// constant, and result bookkeeping serves both the System and the
// Cluster compiler. Load is what the serving path gathers results
// with before releasing a job's storage.
type graphObj interface {
	Handle() uint16
	Store([]uint64) error
	Load() ([]uint64, error)
	Free()
}

// lowered is a compiled graph bound to storage: the bbop program plus
// the temporary, constant, and result objects it runs against.
type lowered struct {
	prog    isa.Program
	temps   []graphObj // pooled slots and constant splats
	results []compiledResult
	// defined records, per handle the program references, whether its
	// object holds data before the program runs (stored inputs and
	// splatted constants do; pooled slots and op-root results are
	// written by the program itself). The IR verifier consumes this for
	// its def-before-use check.
	defined map[uint16]bool
}

type compiledResult struct {
	expr  *Expr
	obj   graphObj
	owned bool // allocated by the compiler (as opposed to a leaf)
}

// lowerPlan binds a planned graph to storage and lowers it: pooled
// slot objects for intermediates, dedicated objects for roots (a node
// rooted twice shares one), splat-stored objects for surviving
// constants, allocated-and-stored objects for data leaves, then the
// bbop program over their handles. alloc is the backend's
// placement-aligned allocator; leafObj resolves an input node to its
// caller-provided storage; leafData resolves an input node to payload
// data the compiler must allocate and store itself (an Input leaf). On
// any failure everything allocated so far is released. Result pointers
// on the expressions are NOT set here — callers publish them only
// after the whole compilation succeeds, so a failed Compile never
// leaves an expression pointing at a freed vector.
func lowerPlan(env *compileEnv, plan *graph.Plan, exprs []*Expr,
	alloc func(width int) (graphObj, error),
	leafObj func(id graph.NodeID) graphObj,
	leafData func(id graph.NodeID) ([]uint64, bool),
) (*lowered, error) {
	lw := &lowered{}
	// Root data-leaf storage lives here between its allocation in the
	// input loop and its adoption as an owned result in the roots
	// loop; fail() frees whatever has not been adopted yet, so a
	// failure in between cannot leak rows.
	pendingRoots := map[graph.NodeID]graphObj{}
	fail := func(err error) (*lowered, error) {
		for _, o := range pendingRoots {
			o.Free()
		}
		for _, o := range lw.temps {
			o.Free()
		}
		for _, r := range lw.results {
			if r.owned {
				r.obj.Free()
			}
		}
		return nil, err
	}
	g, asg, n := env.g, plan.Asg, env.n

	slotObj := make([]graphObj, len(asg.SlotWidths))
	for i, w := range asg.SlotWidths {
		o, err := alloc(w)
		if err != nil {
			return fail(errorf("graph: temporary slot %d: %w", i, err))
		}
		slotObj[i] = o
		lw.temps = append(lw.temps, o)
	}

	// Storage for every live input: the caller's vector for Lazy
	// leaves; an allocated, payload-stored vector for Input data
	// leaves. A non-root data leaf is released with the temporaries; a
	// root one becomes that root's owned result below.
	inputObj := map[graph.NodeID]graphObj{}
	inputOwned := map[graph.NodeID]bool{}
	for id := 0; id < g.Len(); id++ {
		nid := graph.NodeID(id)
		node := g.Node(nid)
		if node.Kind != graph.KindInput || !g.Alive(nid) {
			continue
		}
		data, isData := leafData(nid)
		if !isData {
			inputObj[nid] = leafObj(nid)
			continue
		}
		o, err := alloc(node.Width)
		if err != nil {
			return fail(errorf("graph: data leaf: %w", err))
		}
		if node.Root {
			pendingRoots[nid] = o
		} else {
			lw.temps = append(lw.temps, o)
		}
		if err := o.Store(data); err != nil {
			return fail(err)
		}
		inputObj[nid] = o
		inputOwned[nid] = node.Root
	}

	// Dedicated storage for the roots, allocated before the shared
	// constant pool so a root constant gets caller-owned storage.
	rootObj := map[graph.NodeID]graphObj{}
	for i, rid := range g.Roots() {
		var obj graphObj
		owned := false
		if o, ok := rootObj[rid]; ok {
			obj, owned = o, true // same node rooted twice shares one result
		} else {
			node := g.Node(rid)
			switch node.Kind {
			case graph.KindInput:
				obj = inputObj[rid]
				if inputOwned[rid] {
					owned = true
					rootObj[rid] = obj
					delete(pendingRoots, rid) // ownership moves to results
				}
			default:
				o, err := alloc(node.Width)
				if err != nil {
					return fail(errorf("graph: result %d: %w", i, err))
				}
				if node.Kind == graph.KindConst {
					if err := o.Store(splat(node.Val, n)); err != nil {
						o.Free()
						return fail(err)
					}
				}
				obj, owned = o, true
				rootObj[rid] = o
			}
		}
		lw.results = append(lw.results, compiledResult{expr: exprs[i], obj: obj, owned: owned})
	}

	// Splat-stored objects for live non-root constants.
	constObj := map[graph.NodeID]graphObj{}
	for id := 0; id < g.Len(); id++ {
		nid := graph.NodeID(id)
		node := g.Node(nid)
		if node.Kind != graph.KindConst || !g.Alive(nid) || node.Root {
			continue
		}
		o, err := alloc(node.Width)
		if err != nil {
			return fail(errorf("graph: constant vector: %w", err))
		}
		lw.temps = append(lw.temps, o)
		if err := o.Store(splat(node.Val, n)); err != nil {
			return fail(err)
		}
		constObj[nid] = o
	}

	handle := func(id graph.NodeID) (uint16, error) {
		if o, ok := rootObj[id]; ok {
			return o.Handle(), nil
		}
		node := g.Node(id)
		switch node.Kind {
		case graph.KindInput:
			o, ok := inputObj[id]
			if !ok {
				return 0, errorf("graph: input node %d has no storage", id)
			}
			return o.Handle(), nil
		case graph.KindConst:
			return constObj[id].Handle(), nil
		default:
			slot, ok := asg.SlotOf[id]
			if !ok {
				return 0, errorf("graph: intermediate node %d has no slot", id)
			}
			return slotObj[slot].Handle(), nil
		}
	}
	lw.defined = map[uint16]bool{}
	for _, o := range slotObj {
		lw.defined[o.Handle()] = false
	}
	for _, o := range inputObj {
		lw.defined[o.Handle()] = true // caller vector or stored data leaf
	}
	for _, o := range constObj {
		lw.defined[o.Handle()] = true // splat-stored before execution
	}
	for rid, o := range rootObj {
		switch g.Node(rid).Kind {
		case graph.KindConst, graph.KindInput:
			lw.defined[o.Handle()] = true // splat-stored / stored data leaf
		default:
			lw.defined[o.Handle()] = false // op root: the program writes it
		}
	}

	prog, err := graph.Lower(g, plan.Sched, handle, uint32(n))
	if err != nil {
		return fail(err)
	}
	lw.prog = prog
	return lw, nil
}

// publish points each root expression at its result storage — called
// once compilation has fully succeeded.
func (lw *lowered) publish() {
	for _, r := range lw.results {
		switch v := r.obj.(type) {
		case *Vector:
			r.expr.result, r.expr.sresult = v, nil
		case *ShardedVector:
			r.expr.sresult, r.expr.result = v, nil
		}
	}
}

// freeTemps releases the pooled slots and constant splats.
func (lw *lowered) freeTemps() {
	for _, o := range lw.temps {
		o.Free()
	}
	lw.temps = nil
}

// discardResults releases compiler-owned result storage and clears the
// expressions' result pointers — the cleanup path when execution fails
// and the results never became valid.
func (lw *lowered) discardResults() {
	for _, r := range lw.results {
		if r.owned {
			r.obj.Free()
		}
		switch v := r.obj.(type) {
		case *Vector:
			if r.expr.result == v {
				r.expr.result = nil
			}
		case *ShardedVector:
			if r.expr.sresult == v {
				r.expr.sresult = nil
			}
		}
	}
	lw.results = nil
}

// planFeedback carries what an execution needs to fold its measured
// per-op latencies back into the shape's profile: the store, the shape
// key, the plan (for op identities, aligned with the lowered program),
// and the static cost model the observations are compared against. A
// nil feedback records nothing.
type planFeedback struct {
	profiles *graph.ProfileStore
	key      string
	plan     *graph.Plan
	model    graph.CostFn
}

// record folds one executed batch's per-op latencies into the profile.
func (f *planFeedback) record(opNs []float64) {
	if f == nil {
		return
	}
	f.profiles.Record(f.key, f.plan, opNs, f.model)
}

// feedbackFor builds the execution→profile feedback for one planned
// compilation, or nil when profile feedback is off for it (no store,
// or the schedule was pinned to construction order).
func feedbackFor(profiles *graph.ProfileStore, env *compileEnv, plan *graph.Plan, opts CompileOptions, cfg Config) *planFeedback {
	if profiles == nil || opts.NoSchedule {
		return nil
	}
	return &planFeedback{profiles: profiles, key: env.key, plan: plan, model: modelCost(cfg)}
}

// Compiled is a lazily built expression graph lowered for one System:
// the batched bbop program plus the temporary, constant, and result
// vectors it runs against. Execute may be called repeatedly (results
// are recomputed in place); Free releases the pooled temporaries and
// constants while the result vectors stay with the caller.
type Compiled struct {
	sys   *System
	lw    *lowered
	stats CompileStats
	fb    *planFeedback
	freed bool
	// pp is the prepared (bind-once) form of lw.prog, built on first
	// Execute: later runs skip resolution, validation, and scheduling.
	pp *preparedProgram
}

// Compile lowers the expressions with every optimization pass enabled.
func (s *System) Compile(exprs ...*Expr) (*Compiled, error) {
	return s.CompileWith(CompileOptions{}, exprs...)
}

// CompileWith lowers the expressions with selected passes disabled —
// primarily for differential testing and baseline measurement; regular
// callers want Compile or Materialize.
func (s *System) CompileWith(opts CompileOptions, exprs ...*Expr) (*Compiled, error) {
	env, plan, stats, err := planExprs(s, nil, opts, exprs, s.plans, s.profiles, nil, 0)
	if err != nil {
		return nil, err
	}
	origin := 0
	if env.firstVec != nil {
		origin = env.firstVec.leaf.origin()
	}
	lw, err := lowerPlan(env, plan, exprs,
		func(width int) (graphObj, error) { return s.allocVector(env.n, width, origin) },
		func(id graph.NodeID) graphObj { return env.leafOf[id].leaf },
		leafDataOf(env),
	)
	if err != nil {
		return nil, err
	}
	if err := s.verifyLowered(lw); err != nil {
		lw.freeTemps()
		lw.discardResults()
		return nil, err
	}
	lw.publish()
	return &Compiled{sys: s, lw: lw, stats: stats, fb: feedbackFor(s.profiles, env, plan, opts, s.cfg)}, nil
}

// leafDataOf resolves Input data leaves to their payloads for
// lowerPlan; Lazy vector leaves return false and bind through leafObj.
func leafDataOf(env *compileEnv) func(graph.NodeID) ([]uint64, bool) {
	return func(id graph.NodeID) ([]uint64, bool) {
		if e := env.leafOf[id]; e != nil && e.kind == exprData {
			return e.data, true
		}
		return nil, false
	}
}

// PlanCacheStats reports the System's compiled-plan cache counters. A
// disabled cache reports the zero value (no counter churn, no policy).
type PlanCacheStats struct {
	Hits, Misses, Evicted uint64
	// EvictedHot counts evicted plans that had been hit at least once —
	// warm shapes lost to capacity pressure. The cost-LRU policy keeps
	// this low under cold-shape churn; a rising value means the cache
	// is genuinely too small for the live shape population.
	EvictedHot uint64
	// Coalesced counts lookups that waited for a concurrent compile of
	// the same shape instead of compiling their own plan.
	Coalesced      uint64
	Size, Capacity int
	// Policy names the eviction policy ("cost-lru"; empty when caching
	// is disabled).
	Policy string
}

// HitRate returns hits / lookups, or 0 before the first lookup.
func (s PlanCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func cacheStats(c *graph.PlanCache) PlanCacheStats {
	st := c.Stats()
	return PlanCacheStats{
		Hits: st.Hits, Misses: st.Misses,
		Evicted: st.Evicted, EvictedHot: st.EvictedHot, Coalesced: st.Coalesced,
		Size: st.Size, Capacity: st.Capacity, Policy: st.Policy,
	}
}

// PlanCacheStats reports the hit/miss counters of the System's
// compiled-plan cache, which Compile/CompileWith/Materialize consult.
func (s *System) PlanCacheStats() PlanCacheStats { return cacheStats(s.plans) }

// ProfileStats reports a profile store's aggregation counters.
type ProfileStats struct {
	// Shapes is the number of request shapes with at least one recorded
	// execution.
	Shapes int
	// Jobs is the total executed jobs folded into profiles.
	Jobs uint64
	// Recompiles counts profile-guided plan rebuilds: shapes whose
	// measured per-op latencies diverged from the static cost model far
	// enough that the plan was re-scheduled with observed costs.
	Recompiles uint64
}

func profileStats(p *graph.ProfileStore) ProfileStats {
	st := p.Stats()
	return ProfileStats{Shapes: st.Shapes, Jobs: st.Jobs, Recompiles: st.Recompiles}
}

// ProfileStats reports the System's shape-profile counters: executed
// Materialize/Execute batches fold their measured per-op latencies
// into per-shape profiles, and divergent shapes are recompiled with
// observed costs on their next Compile.
func (s *System) ProfileStats() ProfileStats { return profileStats(s.profiles) }

// Materialize compiles and executes the expressions as one batch,
// releasing every temporary afterwards. Each expression's value is then
// available through Result; result vectors are owned by the caller
// (Free them when done). On error no results are retained.
func (s *System) Materialize(exprs ...*Expr) (BatchStats, error) {
	cp, err := s.Compile(exprs...)
	if err != nil {
		return BatchStats{}, err
	}
	st, err := cp.Execute()
	cp.Free()
	if err != nil {
		cp.discardResults()
		return BatchStats{}, err
	}
	return st, nil
}

// Stats reports what the compiler did with the graph.
func (cp *Compiled) Stats() CompileStats { return cp.stats }

// Program returns a copy of the lowered bbop program — what Execute
// hands to ExecBatch, and what a serial baseline can feed through Exec
// one instruction at a time.
func (cp *Compiled) Program() isa.Program {
	return append(isa.Program(nil), cp.lw.prog...)
}

// Execute runs the compiled batch. Results become valid once it
// returns; calling it again recomputes them in place. The first run
// binds the program once (instruction resolution, binding validation,
// scheduling, resolved command streams); repeated runs reuse that
// prepared form and pay only the execution loop. Each successful run
// folds its measured per-op latencies into the System's shape profile,
// feeding the profile-guided recompile loop.
func (cp *Compiled) Execute() (BatchStats, error) {
	if cp.freed {
		return BatchStats{}, errorf("graph: compiled program already freed")
	}
	if len(cp.lw.prog) == 0 {
		// Every root was a leaf or a folded constant: the results are
		// already materialized by allocation/splat alone.
		return BatchStats{}, nil
	}
	if cp.pp == nil {
		pp, err := cp.sys.prepareProgram(cp.lw.prog)
		if err != nil {
			return BatchStats{}, err
		}
		cp.pp = pp
	}
	st, opNs, err := cp.sys.runPrepared(cp.pp, nil)
	if err != nil {
		return BatchStats{}, err
	}
	cp.fb.record(opNs)
	return toBatchStats(st), nil
}

// Free releases the compiler-allocated temporaries and constant splats.
// Result vectors are untouched — they belong to the caller.
func (cp *Compiled) Free() {
	if cp.freed {
		return
	}
	cp.freed = true
	cp.lw.freeTemps()
}

// discardResults releases compiler-owned result vectors and clears the
// expressions' result pointers — the cleanup path when execution fails
// and the results never became valid.
func (cp *Compiled) discardResults() { cp.lw.discardResults() }

// origin returns the bank-major segment origin of the vector's first
// segment — the placement a compiler-allocated temporary must share
// with the expression's leaves to be segment-aligned with them.
func (v *Vector) origin() int {
	seg := v.segs[0]
	return seg.bank + seg.sub*v.sys.cfg.DRAM.Banks
}
