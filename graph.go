package simdram

import (
	"simdram/internal/graph"
	"simdram/internal/isa"
	"simdram/internal/ops"
)

// Expr is a lazy vector expression: a node of a dataflow DAG that
// nothing executes until Materialize (or Compile + Execute) lowers the
// whole graph to one batched bbop program. Combinators build new
// expressions without touching DRAM:
//
//	a, b, c := sys.Lazy(va), sys.Lazy(vb), sys.Lazy(vc)
//	e := a.Add(b).Mul(c.Sub(a))
//	stats, _ := sys.Materialize(e)
//	out, _ := e.Result().Load()
//
// The compiler folds constant subexpressions, merges common
// subexpressions, drops dead nodes, orders instructions with a
// cost-model-driven list schedule, and packs intermediates into a
// small pool of reused temporary-row vectors instead of allocating one
// per node. Expressions are cheap immutable trees: sharing an *Expr
// between two larger expressions shares the computation, and even
// structurally duplicated subtrees are merged by CSE at compile time.
type Expr struct {
	kind   exprKind
	opName string
	args   []*Expr
	leaf   *Vector
	sleaf  *ShardedVector
	val    uint64
	width  int

	result  *Vector
	sresult *ShardedVector
}

type exprKind uint8

const (
	exprLeaf exprKind = iota
	exprShardLeaf
	exprConst
	exprOp
)

// Lazy wraps a vector as a lazy expression leaf. The vector must
// belong to this System and stay live until the expression is
// materialized.
func (s *System) Lazy(v *Vector) *Expr { return &Expr{kind: exprLeaf, leaf: v} }

// Scalar returns a constant expression: the value splatted across
// every lane at the given width. Operations whose arguments are all
// constants fold at compile time through the operation's golden model;
// constants that survive folding materialize as one stored vector each
// (deduplicated by CSE), never as DRAM compute.
func Scalar(val uint64, width int) *Expr {
	return &Expr{kind: exprConst, val: val, width: width}
}

// Apply builds the expression op(e, more...) for any operation in the
// catalog — built-in or registered through DefineOperation. The
// receiver is operand 0. Unknown names and arity or width mismatches
// are reported at compile time.
func (e *Expr) Apply(opName string, more ...*Expr) *Expr {
	return &Expr{kind: exprOp, opName: opName, args: append([]*Expr{e}, more...)}
}

// Add returns e + o (mod 2^w).
func (e *Expr) Add(o *Expr) *Expr { return e.Apply("addition", o) }

// Sub returns e - o (mod 2^w).
func (e *Expr) Sub(o *Expr) *Expr { return e.Apply("subtraction", o) }

// Mul returns e × o; the result carries the full product width (2w
// capped at 64).
func (e *Expr) Mul(o *Expr) *Expr { return e.Apply("multiplication", o) }

// Div returns e / o (unsigned; x/0 = all-ones).
func (e *Expr) Div(o *Expr) *Expr { return e.Apply("division", o) }

// Mod returns e mod o (unsigned; x mod 0 = x).
func (e *Expr) Mod(o *Expr) *Expr { return e.Apply("modulo", o) }

// Max returns the unsigned maximum of e and o.
func (e *Expr) Max(o *Expr) *Expr { return e.Apply("max", o) }

// Min returns the unsigned minimum of e and o.
func (e *Expr) Min(o *Expr) *Expr { return e.Apply("min", o) }

// Equal returns the 1-bit predicate e == o.
func (e *Expr) Equal(o *Expr) *Expr { return e.Apply("equal", o) }

// Greater returns the 1-bit predicate e > o (unsigned).
func (e *Expr) Greater(o *Expr) *Expr { return e.Apply("greater", o) }

// GreaterEqual returns the 1-bit predicate e >= o (unsigned).
func (e *Expr) GreaterEqual(o *Expr) *Expr { return e.Apply("greater_equal", o) }

// Abs returns |e| under the signed two's-complement reading.
func (e *Expr) Abs() *Expr { return e.Apply("abs") }

// Not returns ~e.
func (e *Expr) Not() *Expr { return e.Apply("not") }

// ReLU returns e < 0 ? 0 : e under the signed reading.
func (e *Expr) ReLU() *Expr { return e.Apply("relu") }

// BitCount returns the population count of e (ceil(log2(w+1)) bits).
func (e *Expr) BitCount() *Expr { return e.Apply("bitcount") }

// ShiftLeft returns e << 1 with zero fill.
func (e *Expr) ShiftLeft() *Expr { return e.Apply("shift_left") }

// ShiftRight returns e >> 1 with zero fill.
func (e *Expr) ShiftRight() *Expr { return e.Apply("shift_right") }

// IfElse returns onTrue or onFalse per lane, selected by e, which must
// be a 1-bit predicate (e.g. the result of Greater).
func (e *Expr) IfElse(onTrue, onFalse *Expr) *Expr {
	return onTrue.Apply("if_else", onFalse, e)
}

// Result returns the vector holding this expression's value after a
// System materialization. For a root that is itself a plain leaf it is
// the leaf vector; otherwise it is a fresh vector the caller owns and
// should Free. Nil before the first Materialize/Compile.
func (e *Expr) Result() *Vector { return e.result }

// ShardedResult is Result for cluster materializations.
func (e *Expr) ShardedResult() *ShardedVector { return e.sresult }

// CompileOptions disables individual compiler passes — the knobs the
// differential tests and the naive-lowering baseline use. The zero
// value runs every pass.
type CompileOptions struct {
	NoFold     bool // keep constant subexpressions as DRAM compute
	NoCSE      bool // keep structurally duplicated subexpressions
	NoDCE      bool // emit unreachable nodes too
	NoReuse    bool // one fresh temporary per intermediate, no lifetime reuse
	NoSchedule bool // construction order instead of the cost-driven list schedule
}

// NaiveCompile disables every pass: one instruction and one fresh
// temporary per expression node, in construction order — the per-node
// baseline the optimized compiler is measured against.
var NaiveCompile = CompileOptions{NoFold: true, NoCSE: true, NoDCE: true, NoReuse: true, NoSchedule: true}

// CompileStats reports what the graph compiler did with an expression
// DAG.
type CompileStats struct {
	// Nodes is the operation-node count before any pass ran.
	Nodes int
	// Folded is how many operation nodes constant folding replaced.
	Folded int
	// CSEEliminated is how many duplicate nodes merged onto their first
	// occurrence.
	CSEEliminated int
	// DCEEliminated is how many unreachable operation/constant nodes
	// were dropped.
	DCEEliminated int
	// Instructions is the emitted bbop instruction count.
	Instructions int
	// TempRowsNaive is the DRAM rows per subarray that one fresh
	// temporary per intermediate would claim.
	TempRowsNaive int
	// TempRowsPooled is the rows the lifetime-reuse slot pool claims.
	TempRowsPooled int
	// TempSlots is the number of pooled temporary vectors allocated.
	TempSlots int
	// ConstVectors is the number of splatted constant vectors.
	ConstVectors int
}

// TempRowsSaved returns the fraction of temporary rows lifetime reuse
// avoided allocating (0 when there are no intermediates).
func (s CompileStats) TempRowsSaved() float64 {
	if s.TempRowsNaive == 0 {
		return 0
	}
	return 1 - float64(s.TempRowsPooled)/float64(s.TempRowsNaive)
}

// compileEnv is the shared expression-to-IR front end: it memoizes
// *Expr pointers onto graph nodes (so shared subtrees become shared
// nodes before CSE even runs) and records which leaf backs each input
// node.
type compileEnv struct {
	sys *System // exactly one of sys/cl is set
	cl  *Cluster

	g      *graph.Graph
	memo   map[*Expr]graph.NodeID
	leafOf map[graph.NodeID]*Expr
	first  *Expr // first vector leaf: defines n and placement
	n      int
}

func (env *compileEnv) node(e *Expr) (graph.NodeID, error) {
	if e == nil {
		return 0, errorf("graph: nil expression")
	}
	if id, ok := env.memo[e]; ok {
		return id, nil
	}
	var id graph.NodeID
	var err error
	switch e.kind {
	case exprLeaf:
		if env.cl != nil {
			return 0, errorf("graph: plain Vector leaf in a Cluster expression (use Cluster.Lazy)")
		}
		v := e.leaf
		if v == nil || v.freed {
			return 0, errorf("graph: leaf vector is nil or freed")
		}
		if v.sys != env.sys {
			return 0, errorf("graph: leaf vector belongs to a different System")
		}
		if env.first == nil {
			env.first, env.n = e, v.n
		} else if v.n != env.n {
			return 0, errorf("graph: leaf has %d elements, expression has %d", v.n, env.n)
		} else if !v.aligned(env.first.leaf) {
			return 0, errorf("graph: leaf vectors are not segment-aligned (allocate them with the same length and placement)")
		}
		if id, err = env.g.Input(v.width); err != nil {
			return 0, err
		}
		env.leafOf[id] = e
	case exprShardLeaf:
		if env.sys != nil {
			return 0, errorf("graph: ShardedVector leaf in a System expression (use System.Lazy)")
		}
		v := e.sleaf
		if v == nil || v.freed {
			return 0, errorf("graph: leaf sharded vector is nil or freed")
		}
		if v.cl != env.cl {
			return 0, errorf("graph: leaf sharded vector belongs to a different Cluster")
		}
		if env.first == nil {
			env.first, env.n = e, v.n
		} else if v.n != env.n {
			return 0, errorf("graph: leaf has %d elements, expression has %d", v.n, env.n)
		} else if !v.plan.Equal(env.first.sleaf.plan) {
			return 0, errorf("graph: leaf sharded vectors are not shard-aligned (allocate operand groups with the same length and placement)")
		}
		if id, err = env.g.Input(v.width); err != nil {
			return 0, err
		}
		env.leafOf[id] = e
	case exprConst:
		if id, err = env.g.Const(e.val, e.width); err != nil {
			return 0, err
		}
	case exprOp:
		d, err := ops.ByName(e.opName)
		if err != nil {
			return 0, err
		}
		argIDs := make([]graph.NodeID, len(e.args))
		for k, a := range e.args {
			if argIDs[k], err = env.node(a); err != nil {
				return 0, err
			}
		}
		if id, err = env.g.Op(d, argIDs...); err != nil {
			return 0, err
		}
	default:
		return 0, errorf("graph: unknown expression kind %d", e.kind)
	}
	env.memo[e] = id
	return id, nil
}

// planExprs runs the backend-independent half of compilation: build the
// IR from the expression trees, run the enabled passes, schedule, and
// assign temporaries to slots.
func planExprs(sys *System, cl *Cluster, opts CompileOptions, exprs []*Expr) (*compileEnv, graph.Assignment, []graph.NodeID, CompileStats, error) {
	var stats CompileStats
	if len(exprs) == 0 {
		return nil, graph.Assignment{}, nil, stats, errorf("graph: nothing to materialize")
	}
	env := &compileEnv{
		sys: sys, cl: cl,
		g:      graph.New(),
		memo:   map[*Expr]graph.NodeID{},
		leafOf: map[graph.NodeID]*Expr{},
	}
	for _, e := range exprs {
		id, err := env.node(e)
		if err != nil {
			return nil, graph.Assignment{}, nil, stats, err
		}
		env.g.MarkRoot(id)
	}
	if env.first == nil {
		return nil, graph.Assignment{}, nil, stats, errorf("graph: expression has no vector leaf, element count unknown (combine constants with at least one Lazy vector)")
	}
	for id := 0; id < env.g.Len(); id++ {
		if env.g.Node(graph.NodeID(id)).Kind == graph.KindOp {
			stats.Nodes++
		}
	}
	if !opts.NoFold {
		stats.Folded = env.g.FoldConstants()
	}
	if !opts.NoCSE {
		stats.CSEEliminated = env.g.CSE()
	}
	if !opts.NoDCE {
		stats.DCEEliminated = env.g.DCE()
	}
	var cfg Config
	if sys != nil {
		cfg = sys.cfg
	} else {
		cfg = cl.cfg.Channel
	}
	var sched []graph.NodeID
	if opts.NoSchedule {
		sched = env.g.ProgramOrder()
	} else {
		sched = env.g.Schedule(func(d ops.Def, w, n int) float64 {
			c, err := ops.CostNs(d, w, n, cfg.Variant, cfg.DRAM.Timing)
			if err != nil {
				return 1 // synthesis failures resurface with context at execution
			}
			return c
		})
	}
	asg := graph.Assign(env.g, sched, !opts.NoReuse)
	stats.Instructions = len(sched)
	stats.TempRowsNaive = asg.NaiveRows
	stats.TempRowsPooled = asg.PooledRows
	stats.TempSlots = len(asg.SlotWidths)
	for id := 0; id < env.g.Len(); id++ {
		n := env.g.Node(graph.NodeID(id))
		if n.Kind == graph.KindConst && env.g.Alive(graph.NodeID(id)) && !n.Root {
			stats.ConstVectors++
		}
	}
	return env, asg, sched, stats, nil
}

// splat returns n copies of val.
func splat(val uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = val
	}
	return out
}

// graphObj is the slice of the Vector/ShardedVector surface the
// shared lowering back end needs: one implementation of the slot,
// constant, and result bookkeeping serves both the System and the
// Cluster compiler.
type graphObj interface {
	Handle() uint16
	Store([]uint64) error
	Free()
}

// lowered is a compiled graph bound to storage: the bbop program plus
// the temporary, constant, and result objects it runs against.
type lowered struct {
	prog    isa.Program
	temps   []graphObj // pooled slots and constant splats
	results []compiledResult
}

type compiledResult struct {
	expr  *Expr
	obj   graphObj
	owned bool // allocated by the compiler (as opposed to a leaf)
}

// lowerPlan binds a planned graph to storage and lowers it: pooled
// slot objects for intermediates, dedicated objects for roots (a node
// rooted twice shares one), splat-stored objects for surviving
// constants, then the bbop program over their handles. alloc is the
// backend's placement-aligned allocator; leafObj resolves an input
// node to its caller-provided storage. On any failure everything
// allocated so far is released. Result pointers on the expressions are
// NOT set here — callers publish them only after the whole compilation
// succeeds, so a failed Compile never leaves an expression pointing at
// a freed vector.
func lowerPlan(env *compileEnv, asg graph.Assignment, sched []graph.NodeID, exprs []*Expr,
	alloc func(width int) (graphObj, error),
	leafObj func(id graph.NodeID) graphObj,
) (*lowered, error) {
	lw := &lowered{}
	fail := func(err error) (*lowered, error) {
		for _, o := range lw.temps {
			o.Free()
		}
		for _, r := range lw.results {
			if r.owned {
				r.obj.Free()
			}
		}
		return nil, err
	}
	g, n := env.g, env.n

	slotObj := make([]graphObj, len(asg.SlotWidths))
	for i, w := range asg.SlotWidths {
		o, err := alloc(w)
		if err != nil {
			return fail(errorf("graph: temporary slot %d: %w", i, err))
		}
		slotObj[i] = o
		lw.temps = append(lw.temps, o)
	}

	// Dedicated storage for the roots, allocated before the shared
	// constant pool so a root constant gets caller-owned storage.
	rootObj := map[graph.NodeID]graphObj{}
	for i, rid := range g.Roots() {
		var obj graphObj
		owned := false
		if o, ok := rootObj[rid]; ok {
			obj, owned = o, true // same node rooted twice shares one result
		} else {
			node := g.Node(rid)
			switch node.Kind {
			case graph.KindInput:
				obj = leafObj(rid)
			default:
				o, err := alloc(node.Width)
				if err != nil {
					return fail(errorf("graph: result %d: %w", i, err))
				}
				if node.Kind == graph.KindConst {
					if err := o.Store(splat(node.Val, n)); err != nil {
						o.Free()
						return fail(err)
					}
				}
				obj, owned = o, true
				rootObj[rid] = o
			}
		}
		lw.results = append(lw.results, compiledResult{expr: exprs[i], obj: obj, owned: owned})
	}

	// Splat-stored objects for live non-root constants.
	constObj := map[graph.NodeID]graphObj{}
	for id := 0; id < g.Len(); id++ {
		nid := graph.NodeID(id)
		node := g.Node(nid)
		if node.Kind != graph.KindConst || !g.Alive(nid) || node.Root {
			continue
		}
		o, err := alloc(node.Width)
		if err != nil {
			return fail(errorf("graph: constant vector: %w", err))
		}
		lw.temps = append(lw.temps, o)
		if err := o.Store(splat(node.Val, n)); err != nil {
			return fail(err)
		}
		constObj[nid] = o
	}

	handle := func(id graph.NodeID) (uint16, error) {
		if o, ok := rootObj[id]; ok {
			return o.Handle(), nil
		}
		node := g.Node(id)
		switch node.Kind {
		case graph.KindInput:
			return leafObj(id).Handle(), nil
		case graph.KindConst:
			return constObj[id].Handle(), nil
		default:
			slot, ok := asg.SlotOf[id]
			if !ok {
				return 0, errorf("graph: intermediate node %d has no slot", id)
			}
			return slotObj[slot].Handle(), nil
		}
	}
	prog, err := graph.Lower(g, sched, handle, uint32(n))
	if err != nil {
		return fail(err)
	}
	lw.prog = prog
	return lw, nil
}

// publish points each root expression at its result storage — called
// once compilation has fully succeeded.
func (lw *lowered) publish() {
	for _, r := range lw.results {
		switch v := r.obj.(type) {
		case *Vector:
			r.expr.result, r.expr.sresult = v, nil
		case *ShardedVector:
			r.expr.sresult, r.expr.result = v, nil
		}
	}
}

// freeTemps releases the pooled slots and constant splats.
func (lw *lowered) freeTemps() {
	for _, o := range lw.temps {
		o.Free()
	}
	lw.temps = nil
}

// discardResults releases compiler-owned result storage and clears the
// expressions' result pointers — the cleanup path when execution fails
// and the results never became valid.
func (lw *lowered) discardResults() {
	for _, r := range lw.results {
		if r.owned {
			r.obj.Free()
		}
		switch v := r.obj.(type) {
		case *Vector:
			if r.expr.result == v {
				r.expr.result = nil
			}
		case *ShardedVector:
			if r.expr.sresult == v {
				r.expr.sresult = nil
			}
		}
	}
	lw.results = nil
}

// Compiled is a lazily built expression graph lowered for one System:
// the batched bbop program plus the temporary, constant, and result
// vectors it runs against. Execute may be called repeatedly (results
// are recomputed in place); Free releases the pooled temporaries and
// constants while the result vectors stay with the caller.
type Compiled struct {
	sys   *System
	lw    *lowered
	stats CompileStats
	freed bool
}

// Compile lowers the expressions with every optimization pass enabled.
func (s *System) Compile(exprs ...*Expr) (*Compiled, error) {
	return s.CompileWith(CompileOptions{}, exprs...)
}

// CompileWith lowers the expressions with selected passes disabled —
// primarily for differential testing and baseline measurement; regular
// callers want Compile or Materialize.
func (s *System) CompileWith(opts CompileOptions, exprs ...*Expr) (*Compiled, error) {
	env, asg, sched, stats, err := planExprs(s, nil, opts, exprs)
	if err != nil {
		return nil, err
	}
	origin := env.first.leaf.origin()
	lw, err := lowerPlan(env, asg, sched, exprs,
		func(width int) (graphObj, error) { return s.allocVector(env.n, width, origin) },
		func(id graph.NodeID) graphObj { return env.leafOf[id].leaf },
	)
	if err != nil {
		return nil, err
	}
	lw.publish()
	return &Compiled{sys: s, lw: lw, stats: stats}, nil
}

// Materialize compiles and executes the expressions as one batch,
// releasing every temporary afterwards. Each expression's value is then
// available through Result; result vectors are owned by the caller
// (Free them when done). On error no results are retained.
func (s *System) Materialize(exprs ...*Expr) (BatchStats, error) {
	cp, err := s.Compile(exprs...)
	if err != nil {
		return BatchStats{}, err
	}
	st, err := cp.Execute()
	cp.Free()
	if err != nil {
		cp.discardResults()
		return BatchStats{}, err
	}
	return st, nil
}

// Stats reports what the compiler did with the graph.
func (cp *Compiled) Stats() CompileStats { return cp.stats }

// Program returns a copy of the lowered bbop program — what Execute
// hands to ExecBatch, and what a serial baseline can feed through Exec
// one instruction at a time.
func (cp *Compiled) Program() isa.Program {
	return append(isa.Program(nil), cp.lw.prog...)
}

// Execute runs the compiled batch. Results become valid once it
// returns; calling it again recomputes them in place.
func (cp *Compiled) Execute() (BatchStats, error) {
	if cp.freed {
		return BatchStats{}, errorf("graph: compiled program already freed")
	}
	if len(cp.lw.prog) == 0 {
		// Every root was a leaf or a folded constant: the results are
		// already materialized by allocation/splat alone.
		return BatchStats{}, nil
	}
	return cp.sys.ExecBatch(cp.lw.prog)
}

// Free releases the compiler-allocated temporaries and constant splats.
// Result vectors are untouched — they belong to the caller.
func (cp *Compiled) Free() {
	if cp.freed {
		return
	}
	cp.freed = true
	cp.lw.freeTemps()
}

// discardResults releases compiler-owned result vectors and clears the
// expressions' result pointers — the cleanup path when execution fails
// and the results never became valid.
func (cp *Compiled) discardResults() { cp.lw.discardResults() }

// origin returns the bank-major segment origin of the vector's first
// segment — the placement a compiler-allocated temporary must share
// with the expression's leaves to be segment-aligned with them.
func (v *Vector) origin() int {
	seg := v.segs[0]
	return seg.bank + seg.sub*v.sys.cfg.DRAM.Banks
}
