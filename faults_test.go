package simdram

import (
	"math/rand"
	"testing"

	"simdram/internal/reliability"
)

// TestFaultInjectionEndToEnd connects the reliability model to the
// functional system: TRA failure rates from the Monte Carlo model are
// injected as bit flips into a destination row, and the application-level
// mismatch count must reflect exactly the injected faults — the
// verification loop an integrator would run when qualifying a device.
func TestFaultInjectionEndToEnd(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(71))
	n, w := 256, 8 // one full segment on the test geometry
	a, _ := sys.AllocVector(n, w)
	b, _ := sys.AllocVector(n, w)
	dst, _ := sys.AllocVector(n, w)
	av := randVals(rng, n, w)
	bv := randVals(rng, n, w)
	a.Store(av)
	b.Store(bv)
	if _, err := sys.Run("addition", dst, a, b); err != nil {
		t.Fatal(err)
	}

	// Draw a fault pattern from the reliability model at heavy variation:
	// the per-TRA failure probability at 25% cell-capacitance σ.
	tech := reliability.Nodes()[3]
	res := reliability.SimulateTRA(tech, reliability.Variation{CellSigma: 0.25, SASigmaMV: 5}, 20000, 3)
	p := res.FailureRate()
	if p <= 0 {
		t.Fatal("expected a nonzero failure rate at extreme variation")
	}

	// Inject flips into bit 0 of the result: each lane flips with the
	// per-operation failure probability for the addition's TRA count.
	opFail := reliability.OperationFailureRate(p, 50)
	words := sys.Config().DRAM.Cols / 64
	mask := make([]uint64, words)
	injected := 0
	for lane := 0; lane < n; lane++ {
		if rng.Float64() < opFail {
			mask[lane/64] |= 1 << uint(lane%64)
			injected++
		}
	}
	if injected == 0 {
		t.Skip("fault draw produced no flips; rate too low at this sample size")
	}
	// Bit 0 of the destination lives in the first row of its region; the
	// first segment of the first-allocated vectors sits in bank 0, sub 0.
	sa := sys.Module().Subarray(0, 0)
	sa.InjectBitFlips(16, mask) // dst baseRow: a=rows 0-7, b=8-15, dst=16-23

	got, err := dst.Load()
	if err != nil {
		t.Fatal(err)
	}
	mismatches := 0
	for i := range got {
		if got[i] != (av[i]+bv[i])&0xFF {
			mismatches++
		}
	}
	if mismatches != injected {
		t.Errorf("detected %d mismatches, injected %d faults", mismatches, injected)
	}
}
