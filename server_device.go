package simdram

import (
	"strconv"
	"strings"
	"sync"
	"time"

	"simdram/internal/ctrl"
	"simdram/internal/obs"
)

// This file is the server's device-telemetry layer: per-channel and
// per-bank resource attribution (busy time, commands, energy billed to
// the tenant that caused them), windowed rates over the admission
// counters, and declarative SLO tracking with burn-rate events. See
// docs/observability.md ("Device telemetry").

// Windows the serving stats report trailing rates over.
var rateWindows = []time.Duration{time.Second, 10 * time.Second, 60 * time.Second}

// telemetrySlice is how often the telemetry pump samples the cumulative
// counters into the windowed rings (and the shortest meaningful rate
// window resolution).
const telemetrySlice = 100 * time.Millisecond

// telemetrySlices sizes the rings to retain a bit more than the widest
// rate window (60 s) at telemetrySlice resolution.
const telemetrySlices = int(64*time.Second/telemetrySlice) + 1

// SLO declares one latency objective the server evaluates continuously:
// the Metric quantile of Tenant's jobs must stay at or below TargetNs
// over the trailing Window. Metric is "<phase>_p<quantile>" where phase
// is "queue", "run", or "job" (end-to-end) and the quantile digits are
// read after the decimal point: "run_p99" is the 99th percentile run
// time, "queue_p999" the 99.9th percentile queue wait. An empty Tenant
// targets the all-tenants distribution; "job" metrics are global-only
// (the scheduler keeps per-tenant histograms for queue and run).
type SLO struct {
	Tenant   string
	Metric   string
	TargetNs int64
	// Window is the trailing evaluation window; 0 defaults to 10s.
	Window time.Duration
}

// SLOStatus is the point-in-time evaluation of one configured SLO.
// BurnRate is the classic error-budget burn: the fraction of windowed
// observations above target divided by the budgeted fraction (1−q). A
// burn rate of 1 consumes the budget exactly as fast as it accrues;
// above 1 the objective is being violated and Breaching is set.
type SLOStatus struct {
	SLO SLO
	// Samples is how many observations fell in the window.
	Samples uint64
	// CurrentNs is the windowed value of the tracked quantile.
	CurrentNs int64
	// BadFraction is the fraction of windowed observations above target.
	BadFraction float64
	// Budget is the allowed bad fraction, 1−q.
	Budget    float64
	BurnRate  float64
	Breaching bool
}

// sloTracker pairs one configured SLO with its source histogram and a
// windowed ring of its snapshots.
type sloTracker struct {
	cfg  SLO
	q    float64
	hist *obs.Histogram
	win  *obs.WindowedHist

	mu        sync.Mutex
	breaching bool
}

// parseSLOMetric splits "run_p99" into its histogram base series and
// quantile.
func parseSLOMetric(metric string) (base string, q float64, ok bool) {
	phase, qs, found := strings.Cut(metric, "_p")
	if !found || qs == "" {
		return "", 0, false
	}
	switch phase {
	case "queue":
		base = "sched.queue_ns"
	case "run":
		base = "sched.run_ns"
	case "job":
		base = "sched.job_ns"
	default:
		return "", 0, false
	}
	digits, err := strconv.ParseUint(qs, 10, 32)
	if err != nil {
		return "", 0, false
	}
	q = float64(digits)
	for range qs {
		q /= 10
	}
	if q >= 1 {
		return "", 0, false
	}
	return base, q, true
}

// newSLOTrackers validates and binds the configured SLOs against the
// registry's scheduler histograms.
func newSLOTrackers(slos []SLO, metrics *obs.Registry) ([]*sloTracker, error) {
	out := make([]*sloTracker, 0, len(slos))
	for i, cfg := range slos {
		base, q, ok := parseSLOMetric(cfg.Metric)
		if !ok {
			return nil, errorf("server: SLO %d: unknown metric %q (want queue_pN, run_pN, or job_pN)", i, cfg.Metric)
		}
		if cfg.Tenant != "" && base == "sched.job_ns" {
			return nil, errorf("server: SLO %d: metric %q is global-only, drop the tenant", i, cfg.Metric)
		}
		if cfg.TargetNs <= 0 {
			return nil, errorf("server: SLO %d: target must be positive", i)
		}
		if cfg.Window <= 0 {
			cfg.Window = 10 * time.Second
		}
		name := base
		if cfg.Tenant != "" {
			name = obs.TenantSeries(base, "tenant", cfg.Tenant)
		}
		out = append(out, &sloTracker{
			cfg:  cfg,
			q:    q,
			hist: metrics.Histogram(name),
			win:  obs.NewWindowedHist(telemetrySlice, telemetrySlices),
		})
	}
	return out, nil
}

// status evaluates the tracker at nowNs (the server's monotonic clock).
func (sl *sloTracker) status(nowNs int64) SLOStatus {
	cur := sl.hist.Snapshot()
	win := sl.win.Windowed(nowNs, cur, sl.cfg.Window)
	st := SLOStatus{
		SLO:         sl.cfg,
		Samples:     win.Count,
		CurrentNs:   win.Quantile(sl.q),
		BadFraction: win.FractionAbove(sl.cfg.TargetNs),
		Budget:      1 - sl.q,
	}
	if st.Budget > 0 {
		st.BurnRate = st.BadFraction / st.Budget
	}
	st.Breaching = st.Samples > 0 && st.BurnRate > 1
	return st
}

// tenantBill is one tenant's cumulative device attribution.
type tenantBill struct {
	dramNs   *obs.FloatCounter
	energyPJ *obs.FloatCounter
}

// deviceTelemetry aggregates per-job attribution into registry series
// and keeps the windowed rings the rate and utilization surfaces read.
// One instance per Server; per-channel state is only ever touched by
// that channel's worker, tenant bills are created under mu.
type deviceTelemetry struct {
	reg   *obs.Registry
	banks int

	// Per channel, indexed by worker: the reusable attribution sink and
	// the cumulative series it drains into.
	attrs    []*ctrl.Attribution
	busy     []*obs.FloatCounter // channel.busy_ns{channel=N}: modeled DRAM busy
	wallBusy []*obs.FloatCounter // channel.wall_busy_ns{channel=N}: host execution wall time
	energy   []*obs.FloatCounter // channel.energy_pj{channel=N}
	commands []*obs.Counter      // channel.commands{channel=N}
	util     []*obs.Gauge        // channel.util_ppm{channel=N}: trailing wall utilization
	bankHist []*obs.Histogram    // channel.bank_busy_ns{channel=N}: per-job per-bank busy

	// Per (channel, bank) cumulative bills.
	bankBusy   [][]*obs.FloatCounter
	bankEnergy [][]*obs.FloatCounter
	bankCmds   [][]*obs.Counter

	totalEnergy *obs.FloatCounter // device.energy_pj

	mu      sync.Mutex
	tenants map[string]*tenantBill

	// Windowed rings, recorded by the telemetry pump.
	jobsWin   *obs.WindowedSeries
	rejWin    *obs.WindowedSeries
	energyWin *obs.WindowedSeries
	wallWins  []*obs.WindowedSeries // per-channel wall-busy, feeds util
}

func newDeviceTelemetry(channels, banks int, reg *obs.Registry) *deviceTelemetry {
	d := &deviceTelemetry{
		reg:         reg,
		banks:       banks,
		tenants:     map[string]*tenantBill{},
		totalEnergy: reg.FloatCounter("device.energy_pj"),
		jobsWin:     obs.NewWindowedSeries(telemetrySlice, telemetrySlices),
		rejWin:      obs.NewWindowedSeries(telemetrySlice, telemetrySlices),
		energyWin:   obs.NewWindowedSeries(telemetrySlice, telemetrySlices),
	}
	for ch := 0; ch < channels; ch++ {
		cl := strconv.Itoa(ch)
		at := &ctrl.Attribution{
			BusyNs:   make([]float64, banks),
			Commands: make([]int64, banks),
			EnergyPJ: make([]float64, banks),
		}
		d.attrs = append(d.attrs, at)
		d.busy = append(d.busy, reg.FloatCounter(obs.TenantSeries("channel.busy_ns", "channel", cl)))
		d.wallBusy = append(d.wallBusy, reg.FloatCounter(obs.TenantSeries("channel.wall_busy_ns", "channel", cl)))
		d.energy = append(d.energy, reg.FloatCounter(obs.TenantSeries("channel.energy_pj", "channel", cl)))
		d.commands = append(d.commands, reg.Counter(obs.TenantSeries("channel.commands", "channel", cl)))
		d.util = append(d.util, reg.Gauge(obs.TenantSeries("channel.util_ppm", "channel", cl)))
		d.bankHist = append(d.bankHist, reg.Histogram(obs.TenantSeries("channel.bank_busy_ns", "channel", cl)))
		d.wallWins = append(d.wallWins, obs.NewWindowedSeries(telemetrySlice, telemetrySlices))

		bb := make([]*obs.FloatCounter, banks)
		be := make([]*obs.FloatCounter, banks)
		bc := make([]*obs.Counter, banks)
		for b := 0; b < banks; b++ {
			bl := strconv.Itoa(b)
			bb[b] = reg.FloatCounter(obs.Labels("bank.busy_ns", "bank", bl, "channel", cl))
			be[b] = reg.FloatCounter(obs.Labels("bank.energy_pj", "bank", bl, "channel", cl))
			bc[b] = reg.Counter(obs.Labels("bank.commands", "bank", bl, "channel", cl))
		}
		d.bankBusy = append(d.bankBusy, bb)
		d.bankEnergy = append(d.bankEnergy, be)
		d.bankCmds = append(d.bankCmds, bc)
	}
	return d
}

// attrFor returns channel worker's reusable attribution sink, reset for
// one job.
func (d *deviceTelemetry) attrFor(worker int) *ctrl.Attribution {
	at := d.attrs[worker]
	at.Reset()
	return at
}

// bill returns (creating on first sight) the tenant's cumulative
// attribution series: tenant.dram_ns{tenant=T} and
// tenant.energy_pj{tenant=T}.
func (d *deviceTelemetry) bill(tenant string) *tenantBill {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.tenants[tenant]
	if b == nil {
		b = &tenantBill{
			dramNs:   d.reg.FloatCounter(obs.TenantSeries("tenant.dram_ns", "tenant", tenant)),
			energyPJ: d.reg.FloatCounter(obs.TenantSeries("tenant.energy_pj", "tenant", tenant)),
		}
		d.tenants[tenant] = b
	}
	return b
}

// observeJob folds one completed lazy job's attribution into the
// channel, bank, and tenant series. The tenant is billed the batch's
// modeled critical path (SpanNs — the DRAM time its job actually
// occupied the channel for under the overlap-aware model, the same
// quantity sched.Observe records) and the job's total energy; the
// channel and its banks absorb the per-bank detail.
func (d *deviceTelemetry) observeJob(tenant string, worker int, at *ctrl.Attribution, wallRunNs int64) {
	var energy float64
	for b := 0; b < len(at.BusyNs) && b < d.banks; b++ {
		if at.BusyNs[b] > 0 {
			d.bankBusy[worker][b].Add(at.BusyNs[b])
			d.bankHist[worker].Observe(int64(at.BusyNs[b]))
		}
		if at.Commands[b] > 0 {
			d.bankCmds[worker][b].Add(uint64(at.Commands[b]))
		}
		d.bankEnergy[worker][b].Add(at.EnergyPJ[b])
		energy += at.EnergyPJ[b]
	}
	d.busy[worker].Add(at.SpanNs)
	d.energy[worker].Add(energy)
	d.commands[worker].Add(uint64(at.TotalCommands()))
	d.wallBusy[worker].Add(float64(wallRunNs))
	d.totalEnergy.Add(energy)
	b := d.bill(tenant)
	b.dramNs.Add(at.SpanNs)
	b.energyPJ.Add(energy)
}

// observeRaw folds a raw Submit job's execution-stats delta into the
// channel and tenant series. Raw jobs have no per-bank breakdown — the
// unit's aggregate stats are the finest attribution available — so
// they bill at channel granularity.
func (d *deviceTelemetry) observeRaw(tenant string, worker int, delta ctrl.ExecStats, wallRunNs int64) {
	d.busy[worker].Add(delta.BusyNs)
	d.energy[worker].Add(delta.EnergyPJ)
	if delta.Commands > 0 {
		d.commands[worker].Add(uint64(delta.Commands))
	}
	d.wallBusy[worker].Add(float64(wallRunNs))
	d.totalEnergy.Add(delta.EnergyPJ)
	b := d.bill(tenant)
	b.dramNs.Add(delta.BusyNs)
	b.energyPJ.Add(delta.EnergyPJ)
}

// record samples the cumulative totals into the windowed rings and
// refreshes the utilization gauges — called by the telemetry pump every
// slice (and by Stats, where the once-per-slice gate dedups).
func (d *deviceTelemetry) record(nowNs int64, completed, rejected uint64) {
	d.jobsWin.Record(nowNs, float64(completed))
	d.rejWin.Record(nowNs, float64(rejected))
	d.energyWin.Record(nowNs, d.totalEnergy.Value())
	for ch := range d.wallWins {
		wall := d.wallBusy[ch].Value()
		d.wallWins[ch].Record(nowNs, wall)
		// Utilization = wall time the channel spent executing over the
		// trailing 10s of wall time, in parts per million.
		u := d.wallWins[ch].Rate(nowNs, wall, 10*time.Second) / 1e9
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		d.util[ch].Set(int64(u * 1e6))
	}
}

// WindowRates is one trailing window's view of the serving rates.
type WindowRates struct {
	Window         time.Duration
	JobsPerSec     float64
	RejectedPerSec float64
	// EnergyPJPerSec is attributed energy per second — the fabric's
	// power draw in the model's units (1 pJ/s = 1e-12 W).
	EnergyPJPerSec float64
}

// rates reads the trailing rates for every reporting window.
func (d *deviceTelemetry) rates(nowNs int64, completed, rejected uint64) []WindowRates {
	out := make([]WindowRates, 0, len(rateWindows))
	energy := d.totalEnergy.Value()
	for _, w := range rateWindows {
		out = append(out, WindowRates{
			Window:         w,
			JobsPerSec:     d.jobsWin.Rate(nowNs, float64(completed), w),
			RejectedPerSec: d.rejWin.Rate(nowNs, float64(rejected), w),
			EnergyPJPerSec: d.energyWin.Rate(nowNs, energy, w),
		})
	}
	return out
}

// ChannelTelemetry is one channel's cumulative device attribution plus
// its trailing utilization, as reported by Server.DeviceStats.
type ChannelTelemetry struct {
	Channel int
	// BusyNs is the modeled DRAM time of the jobs the channel ran (sum
	// of batch critical paths); WallBusyNs the host wall time spent
	// executing them.
	BusyNs     float64
	WallBusyNs float64
	EnergyPJ   float64
	Commands   uint64
	// Utilization is the trailing-10s fraction of wall time the channel
	// spent executing (the channel.util_ppm gauge, scaled).
	Utilization float64
}

// TenantDeviceStats is one tenant's cumulative device bill.
type TenantDeviceStats struct {
	// DRAMNs is the modeled DRAM time billed to the tenant — the summed
	// critical paths of its jobs, the capacity measure deadline-aware
	// admission will price.
	DRAMNs   float64
	EnergyPJ float64
}

// DeviceStats is the device-attribution snapshot: who used the
// hardware (tenants) and where the usage landed (channels).
type DeviceStats struct {
	Channels []ChannelTelemetry
	Tenants  map[string]TenantDeviceStats
}

// snapshot builds the public device-stats view.
func (d *deviceTelemetry) snapshot() DeviceStats {
	st := DeviceStats{Channels: make([]ChannelTelemetry, len(d.busy))}
	for ch := range d.busy {
		st.Channels[ch] = ChannelTelemetry{
			Channel:     ch,
			BusyNs:      d.busy[ch].Value(),
			WallBusyNs:  d.wallBusy[ch].Value(),
			EnergyPJ:    d.energy[ch].Value(),
			Commands:    d.commands[ch].Value(),
			Utilization: float64(d.util[ch].Value()) / 1e6,
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st.Tenants = make(map[string]TenantDeviceStats, len(d.tenants))
	for name, b := range d.tenants {
		st.Tenants[name] = TenantDeviceStats{DRAMNs: b.dramNs.Value(), EnergyPJ: b.energyPJ.Value()}
	}
	return st
}

// nowNs is the server's monotonic telemetry clock: nanoseconds since
// the server started. All windowed rings are stamped with it.
func (s *Server) nowNs() int64 { return int64(time.Since(s.epoch)) }

// telemetryTick advances the windowed rings and evaluates SLOs — the
// pump's body, also callable directly (tests, Stats) because every ring
// dedups to one sample per slice.
func (s *Server) telemetryTick(nowNs int64) {
	ss := s.sched.Stats()
	s.dev.record(nowNs, ss.Completed, ss.Rejected)
	for _, sl := range s.slos {
		sl.win.Record(nowNs, sl.hist.Snapshot())
	}
	s.evalSLOs(nowNs)
}

// evalSLOs computes every tracker's status, emitting an "slo" event
// into the flight recorder on each transition into breach (edge-
// triggered, so a sustained breach is one event, and a recovery re-arms
// it).
func (s *Server) evalSLOs(nowNs int64) []SLOStatus {
	out := make([]SLOStatus, 0, len(s.slos))
	for _, sl := range s.slos {
		st := sl.status(nowNs)
		sl.mu.Lock()
		entered := st.Breaching && !sl.breaching
		sl.breaching = st.Breaching
		sl.mu.Unlock()
		if entered {
			tenant := sl.cfg.Tenant
			if tenant == "" {
				tenant = "*"
			}
			s.rec.Eventf("slo", "SLO breach: tenant %s %s = %dns > target %dns over %s (burn %.2fx, %d samples)",
				tenant, sl.cfg.Metric, st.CurrentNs, sl.cfg.TargetNs, sl.cfg.Window, st.BurnRate, st.Samples)
		}
		out = append(out, st)
	}
	// Translate breaching per-tenant SLOs into a tier boost: while a
	// tier's SLO burn is active the scheduler preempts queued work of
	// strictly lower-priority tiers in its favor. A wildcard SLO (no
	// tenant) breaching boosts nothing — there is no tier to favor.
	boost := map[string]bool{}
	for _, st := range out {
		if st.Breaching && st.SLO.Tenant != "" {
			boost[s.tierOfTenant(st.SLO.Tenant)] = true
		}
	}
	s.sched.SetBoost(boost)
	return out
}

// SLOStatus evaluates every configured SLO right now and returns their
// statuses in configuration order (nil when no SLOs are configured).
// Evaluation is the same code path the background pump runs, so a
// breach observed here also lands its burn-rate event in Events().
func (s *Server) SLOStatus() []SLOStatus {
	if len(s.slos) == 0 {
		return nil
	}
	return s.evalSLOs(s.nowNs())
}

// DeviceStats returns the device-attribution snapshot: per-channel
// busy/energy/commands/utilization and per-tenant DRAM-time and energy
// bills.
func (s *Server) DeviceStats() DeviceStats { return s.dev.snapshot() }

// pump is the background telemetry loop: every slice it samples the
// cumulative counters into the windowed rings, refreshes utilization
// gauges, and evaluates SLOs.
func (s *Server) pump() {
	defer close(s.pumpDone)
	t := time.NewTicker(telemetrySlice)
	defer t.Stop()
	for {
		select {
		case <-s.pumpStop:
			return
		case <-t.C:
			s.telemetryTick(s.nowNs())
		}
	}
}
