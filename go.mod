module simdram

go 1.22
