package simdram

import (
	"math/rand"
	"testing"
)

// cacheShape builds the reference request shape over three 8-bit
// leaves: a shared prefix (CSE fodder), a folding constant subtree,
// and two roots. Structurally identical calls must share a plan.
func cacheShape(a, b, c *Expr) []*Expr {
	base := a.Add(b).Max(c)
	seven := Scalar(3, 8).Add(Scalar(4, 8))
	r1 := base.Sub(c).Add(seven)
	r2 := base.Min(a).Add(b)
	return []*Expr{r1, r2}
}

// sysLeaves allocates and fills three aligned 8-bit vectors.
func sysLeaves(t *testing.T, sys *System, rng *rand.Rand, n int) [3]*Vector {
	t.Helper()
	var vs [3]*Vector
	for i := range vs {
		v, err := sys.AllocVector(n, 8)
		if err != nil {
			t.Fatal(err)
		}
		storeRand(t, rng, v)
		vs[i] = v
	}
	return vs
}

// TestSystemPlanCacheHitBitIdentical is the cache differential on one
// System: the same shape over fresh leaf vectors must hit the cache,
// and the hot results must be bit-identical to a cold compile of the
// identical data on a fresh System.
func TestSystemPlanCacheHitBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 96

	sys := testGraphSystem(t)
	defer sys.Close()

	// Cold compile: primes the cache.
	warm := sysLeaves(t, sys, rng, n)
	exprs := cacheShape(sys.Lazy(warm[0]), sys.Lazy(warm[1]), sys.Lazy(warm[2]))
	if _, err := sys.Materialize(exprs...); err != nil {
		t.Fatal(err)
	}
	for _, e := range exprs {
		e.Result().Free()
	}
	if st := sys.PlanCacheStats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after cold compile: %+v, want 1 miss", st)
	}

	// Same shape, different leaf vectors and payloads: must hit.
	hot := sysLeaves(t, sys, rng, n)
	var data [3][]uint64
	for i, v := range hot {
		got, err := v.Load()
		if err != nil {
			t.Fatal(err)
		}
		data[i] = got
	}
	exprs2 := cacheShape(sys.Lazy(hot[0]), sys.Lazy(hot[1]), sys.Lazy(hot[2]))
	cp, err := sys.Compile(exprs2...)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Stats().CacheHit {
		t.Fatalf("same shape over different leaves missed the cache: %+v", sys.PlanCacheStats())
	}
	if _, err := cp.Execute(); err != nil {
		t.Fatal(err)
	}
	var hotOut [][]uint64
	for _, e := range exprs2 {
		vals, err := e.Result().Load()
		if err != nil {
			t.Fatal(err)
		}
		hotOut = append(hotOut, vals)
	}
	cp.Free()

	// Cold reference: a fresh System (empty cache), identical data.
	ref := testGraphSystem(t)
	defer ref.Close()
	refLeaves := sysLeaves(t, ref, rand.New(rand.NewSource(99)), n)
	for i, v := range refLeaves {
		if err := v.Store(data[i]); err != nil {
			t.Fatal(err)
		}
	}
	exprs3 := cacheShape(ref.Lazy(refLeaves[0]), ref.Lazy(refLeaves[1]), ref.Lazy(refLeaves[2]))
	rp, err := ref.Compile(exprs3...)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Stats().CacheHit {
		t.Fatal("fresh System's first compile cannot be a cache hit")
	}
	if _, err := rp.Execute(); err != nil {
		t.Fatal(err)
	}
	for r, e := range exprs3 {
		want, err := e.Result().Load()
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if hotOut[r][j] != want[j] {
				t.Fatalf("root %d element %d: cached-plan %d != cold-compile %d", r, j, hotOut[r][j], want[j])
			}
		}
	}
}

// TestPlanCacheKeyMisses pins the miss conditions: same topology with
// different widths or different opcodes must not share a plan.
func TestPlanCacheKeyMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sys := testGraphSystem(t)
	defer sys.Close()
	const n = 64

	alloc := func(width int) *Vector {
		v, err := sys.AllocVector(n, width)
		if err != nil {
			t.Fatal(err)
		}
		storeRand(t, rng, v)
		return v
	}

	// Shape 1: (a+b) at width 8.
	a8, b8 := alloc(8), alloc(8)
	cp, err := sys.Compile(sys.Lazy(a8).Add(sys.Lazy(b8)))
	if err != nil {
		t.Fatal(err)
	}
	cp.Free()
	if cp.Stats().CacheHit {
		t.Fatal("first shape hit an empty cache")
	}

	// Same topology at width 16: must miss.
	a16, b16 := alloc(16), alloc(16)
	cp, err = sys.Compile(sys.Lazy(a16).Add(sys.Lazy(b16)))
	if err != nil {
		t.Fatal(err)
	}
	cp.Free()
	if cp.Stats().CacheHit {
		t.Fatal("same topology at a different width hit the 8-bit plan")
	}

	// Same topology and width, different opcode: must miss.
	cp, err = sys.Compile(sys.Lazy(a8).Sub(sys.Lazy(b8)))
	if err != nil {
		t.Fatal(err)
	}
	cp.Free()
	if cp.Stats().CacheHit {
		t.Fatal("different opcode hit the addition plan")
	}

	// Original shape over different leaf vectors: must hit.
	c8, d8 := alloc(8), alloc(8)
	cp, err = sys.Compile(sys.Lazy(c8).Add(sys.Lazy(d8)))
	if err != nil {
		t.Fatal(err)
	}
	cp.Free()
	if !cp.Stats().CacheHit {
		t.Fatal("same shape over different leaf vectors missed")
	}
	if st := sys.PlanCacheStats(); st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("cache stats %+v, want 1 hit / 3 misses", st)
	}
}

// TestClusterPlanCacheHitBitIdentical is the cache differential on a
// 4-channel cluster: hot (cached-plan) results must match a cold
// compile of identical data on a fresh cluster, bit for bit.
func TestClusterPlanCacheHitBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 100

	leaves := func(cl *Cluster) ([3]*ShardedVector, [3][]uint64) {
		var vs [3]*ShardedVector
		var data [3][]uint64
		for i := range vs {
			v, err := cl.AllocShardedVector(n, 8)
			if err != nil {
				t.Fatal(err)
			}
			data[i] = storeRand(t, rng, v)
			vs[i] = v
		}
		return vs, data
	}

	cl := testGraphCluster(t, 4)
	defer cl.Close()

	// Cold compile primes the cache; second compile over fresh
	// sharded vectors must hit.
	warm, _ := leaves(cl)
	exprs := cacheShape(cl.Lazy(warm[0]), cl.Lazy(warm[1]), cl.Lazy(warm[2]))
	if _, err := cl.Materialize(exprs...); err != nil {
		t.Fatal(err)
	}
	for _, e := range exprs {
		e.ShardedResult().Free()
	}

	hot, data := leaves(cl)
	exprs2 := cacheShape(cl.Lazy(hot[0]), cl.Lazy(hot[1]), cl.Lazy(hot[2]))
	cp, err := cl.Compile(exprs2...)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Stats().CacheHit {
		t.Fatalf("same shape over different sharded leaves missed: %+v", cl.PlanCacheStats())
	}
	if _, err := cp.Execute(); err != nil {
		t.Fatal(err)
	}
	var hotOut [][]uint64
	for _, e := range exprs2 {
		vals, err := e.ShardedResult().Load()
		if err != nil {
			t.Fatal(err)
		}
		hotOut = append(hotOut, vals)
	}
	cp.Free()

	// Cold reference cluster with identical payloads.
	ref := testGraphCluster(t, 4)
	defer ref.Close()
	refLeaves, _ := leaves(ref)
	for i, v := range refLeaves {
		if err := v.Store(data[i]); err != nil {
			t.Fatal(err)
		}
	}
	exprs3 := cacheShape(ref.Lazy(refLeaves[0]), ref.Lazy(refLeaves[1]), ref.Lazy(refLeaves[2]))
	rp, err := ref.Compile(exprs3...)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Stats().CacheHit {
		t.Fatal("fresh Cluster's first compile cannot be a cache hit")
	}
	if _, err := rp.Execute(); err != nil {
		t.Fatal(err)
	}
	for r, e := range exprs3 {
		want, err := e.ShardedResult().Load()
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if hotOut[r][j] != want[j] {
				t.Fatalf("root %d element %d: cached-plan %d != cold-compile %d", r, j, hotOut[r][j], want[j])
			}
		}
	}
}

// TestLowerFailureFreesRootDataLeaves pins the failure-path cleanup:
// when lowering dies after a root Input data leaf was already
// allocated and stored (here: a later, bigger data leaf exhausts the
// subarray's rows), the root leaf's rows must be released — a
// long-lived serving channel must not leak rows on failed jobs.
func TestLowerFailureFreesRootDataLeaves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DRAM.Cols = 64
	cfg.DRAM.Banks = 1
	cfg.DRAM.SubarraysPerBank = 1
	// Capacity for one 64-bit vector but not two.
	cfg.DRAM.RowsPerSubarray = cfg.DRAM.ComputeRows() + 100
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	data := make([]uint64, 32)
	rootLeaf := Input(data, 64)         // allocated first, 64 rows
	other := Input(data, 64).BitCount() // second 64-row leaf cannot fit
	before := sys.usedRows()
	if _, err := sys.Materialize(rootLeaf, other); err == nil {
		t.Fatal("materialize must fail: two 64-bit vectors cannot fit in 100 data rows")
	}
	if after := sys.usedRows(); after != before {
		t.Fatalf("failed lowering leaked %d rows (before %d, after %d)", after-before, before, after)
	}
	// The rows are actually reusable: a 64-row job (one bare data-leaf
	// root) still fits where the failed job's leaf would otherwise
	// have leaked 64 of the 100 rows.
	ok := Input(data, 64)
	if _, err := sys.Materialize(ok); err != nil {
		t.Fatalf("rows not actually released: %v", err)
	}
	ok.Result().Free()
}

// TestInputLeavesOnSystemAndCluster covers the data-leaf path outside
// the Server: Materialize allocates, stores, and frees Input payloads
// itself, and a root that IS a data leaf keeps its storage.
func TestInputLeavesOnSystemAndCluster(t *testing.T) {
	data := make([]uint64, 80)
	for i := range data {
		data[i] = uint64(i % 251)
	}

	sys := testGraphSystem(t)
	defer sys.Close()
	e := Input(data, 8).Add(Scalar(5, 8))
	root := Input(data, 8) // bare data-leaf root
	if _, err := sys.Materialize(e, root); err != nil {
		t.Fatal(err)
	}
	got, err := e.Result().Load()
	if err != nil {
		t.Fatal(err)
	}
	rootVals, err := root.Result().Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if want := (data[i] + 5) & 0xFF; got[i] != want {
			t.Fatalf("element %d: got %d, want %d", i, got[i], want)
		}
		if rootVals[i] != data[i] {
			t.Fatalf("root data leaf element %d: got %d, want %d", i, rootVals[i], data[i])
		}
	}
	e.Result().Free()
	root.Result().Free()

	cl := testGraphCluster(t, 3)
	defer cl.Close()
	ce := Input(data, 8).Add(Scalar(5, 8))
	if _, err := cl.Materialize(ce); err != nil {
		t.Fatal(err)
	}
	cgot, err := ce.ShardedResult().Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if want := (data[i] + 5) & 0xFF; cgot[i] != want {
			t.Fatalf("cluster element %d: got %d, want %d", i, cgot[i], want)
		}
	}
	ce.ShardedResult().Free()
}
