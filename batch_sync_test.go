package simdram

import (
	"reflect"
	"testing"

	"simdram/internal/ctrl"
)

// TestBatchStatsMirrorsCtrl enforces the "keep the fields in sync"
// contract on the public BatchStats: it must stay field-for-field
// identical to ctrl.BatchStats (same names, same types, same order), so
// the facade's copy in ExecBatch can never silently drop a stat the
// engine starts reporting.
func TestBatchStatsMirrorsCtrl(t *testing.T) {
	pub := reflect.TypeOf(BatchStats{})
	internal := reflect.TypeOf(ctrl.BatchStats{})
	if pub.NumField() != internal.NumField() {
		t.Fatalf("BatchStats has %d fields, ctrl.BatchStats has %d — the facade copy in ExecBatch is out of sync",
			pub.NumField(), internal.NumField())
	}
	for i := 0; i < pub.NumField(); i++ {
		pf, inf := pub.Field(i), internal.Field(i)
		if pf.Name != inf.Name {
			t.Errorf("field %d: public %q vs ctrl %q", i, pf.Name, inf.Name)
		}
		if pf.Type != inf.Type {
			t.Errorf("field %s: public type %v vs ctrl type %v", pf.Name, pf.Type, inf.Type)
		}
	}
}

// TestSpeedupZeroPath pins the explicit zero-critical-path convention
// shared by all three stats types: an all-zero batch is neutral (1),
// while BusyNs > 0 with a zero path is inconsistent and reports 0.
func TestSpeedupZeroPath(t *testing.T) {
	cases := []struct {
		name           string
		busy, critical float64
		want           float64
	}{
		{"empty batch", 0, 0, 1},
		{"inconsistent", 100, 0, 0},
		{"normal", 100, 25, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := (BatchStats{BusyNs: tc.busy, CriticalPathNs: tc.critical}).Speedup(); got != tc.want {
				t.Errorf("BatchStats.Speedup() = %v, want %v", got, tc.want)
			}
			if got := (ctrl.BatchStats{BusyNs: tc.busy, CriticalPathNs: tc.critical}).Speedup(); got != tc.want {
				t.Errorf("ctrl.BatchStats.Speedup() = %v, want %v", got, tc.want)
			}
			if got := (ClusterBatchStats{BusyNs: tc.busy, CriticalPathNs: tc.critical}).Speedup(); got != tc.want {
				t.Errorf("ClusterBatchStats.Speedup() = %v, want %v", got, tc.want)
			}
		})
	}
}
