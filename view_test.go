package simdram

import (
	"math/rand"
	"testing"

	"simdram/internal/isa"
	"simdram/internal/ops"
)

func TestViewIsFreeRightShift(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(21))
	n, w, k := 300, 16, 3
	a, err := sys.AllocVector(n, w)
	if err != nil {
		t.Fatal(err)
	}
	data := randVals(rng, n, w)
	if err := a.Store(data); err != nil {
		t.Fatal(err)
	}
	before := sys.SystemStats()
	view, err := a.View(k, w-k)
	if err != nil {
		t.Fatal(err)
	}
	if after := sys.SystemStats(); after.Commands != before.Commands {
		t.Error("creating a view must issue zero DRAM commands")
	}
	got, err := view.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if want := data[i] >> uint(k); got[i] != want {
			t.Fatalf("element %d: view %d, want %d>>%d = %d", i, got[i], data[i], k, want)
		}
	}
}

func TestViewAsOperand(t *testing.T) {
	// (a >> 2) + b computed with no shift μProgram at all: the addition
	// simply reads a's rows starting two higher.
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(22))
	n, w, k := 200, 16, 2
	vw := w - k
	a, _ := sys.AllocVector(n, w)
	b, _ := sys.AllocVector(n, vw)
	dst, _ := sys.AllocVector(n, vw)
	av := randVals(rng, n, w)
	bv := randVals(rng, n, vw)
	a.Store(av)
	b.Store(bv)
	view, err := a.View(k, vw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("addition", dst, view, b); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Load()
	if err != nil {
		t.Fatal(err)
	}
	mask := uint64(1)<<uint(vw) - 1
	for i := range got {
		want := ((av[i] >> uint(k)) + bv[i]) & mask
		if got[i] != want {
			t.Fatalf("element %d: got %d want %d", i, got[i], want)
		}
	}
}

func TestViewBoundsAndFree(t *testing.T) {
	sys := testSystem(t)
	a, _ := sys.AllocVector(100, 8)
	if _, err := a.View(4, 8); err == nil {
		t.Error("view beyond vector width must error")
	}
	if _, err := a.View(-1, 4); err == nil {
		t.Error("negative offset must error")
	}
	v, err := a.View(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Freeing the view must not release a's rows: a is still loadable and
	// a second identical allocation must not reuse its rows.
	v.Free()
	if err := a.Store(make([]uint64, 100)); err != nil {
		t.Errorf("owner unusable after view freed: %v", err)
	}
	a.Free()
	if _, err := a.View(0, 4); err == nil {
		t.Error("view of freed vector must error")
	}
}

// TestFreeInvalidatesOutstandingViews covers the use-after-free hazard:
// freeing a base vector returns its rows to the allocator, so any live
// view of those rows must be invalidated rather than silently read
// whatever vector gets the rows next.
func TestFreeInvalidatesOutstandingViews(t *testing.T) {
	sys := testSystem(t)
	a, err := sys.AllocVector(100, 16)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := a.View(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := v1.View(2, 4) // view of a view hangs off the same owner
	if err != nil {
		t.Fatal(err)
	}
	a.Free()
	if _, err := v1.Load(); err == nil {
		t.Error("view must be invalid after its base is freed")
	}
	if _, err := v2.Load(); err == nil {
		t.Error("view-of-view must be invalid after its base is freed")
	}
	if _, ok := sys.objects[v1.handle]; ok {
		t.Error("invalidated view must leave the object table")
	}
	// The recycled rows belong to the next allocation alone.
	b, err := sys.AllocVector(100, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Store(make([]uint64, 100)); err != nil {
		t.Fatal(err)
	}
	v1.Free() // idempotent no-op on an invalidated view
	v2.Free()
}

// TestViewFreeUnregisters checks a freed view leaves its base's
// tracking list, so churning views on a long-lived base cannot
// accumulate.
func TestViewFreeUnregisters(t *testing.T) {
	sys := testSystem(t)
	a, err := sys.AllocVector(100, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v, err := a.View(1, 8)
		if err != nil {
			t.Fatal(err)
		}
		v.Free()
	}
	if len(a.views) != 0 {
		t.Errorf("base tracks %d views after all were freed, want 0", len(a.views))
	}
	kept, _ := a.View(0, 8)
	freed, _ := a.View(2, 8)
	freed.Free()
	if len(a.views) != 1 || a.views[0] != kept {
		t.Errorf("base must track exactly the live view, got %d entries", len(a.views))
	}
}

// TestHandleReuseAndExhaustion covers the uint16 handle space: freed
// handles are recycled once the fresh range runs out (no wraparound
// onto live objects), fresh handles are preferred while any remain (so
// stale handles keep failing loudly), and true exhaustion is an error
// instead of silently overwriting live entries.
func TestHandleReuseAndExhaustion(t *testing.T) {
	sys := testSystem(t)
	v1, err := sys.AllocVector(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	h := v1.Handle()
	v1.Free()
	v2, err := sys.AllocVector(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Handle() == h {
		t.Errorf("freed handle %d must not be recycled while fresh handles remain", h)
	}
	if _, err := sys.Exec(isa.Instruction{
		Op: isa.FromOp(ops.OpNot), Dst: v2.Handle(), Src: [3]uint16{h},
		Size: 4, Width: 8,
	}); err == nil {
		t.Error("a stale handle must fail loudly, not resolve to a newer object")
	}
	// Exhaust the fresh range: allocation falls back to recycled
	// handles, and only an empty free list is an error.
	sys.handles.next = ^uint16(0)
	sys.handles.free = []uint16{h}
	v3, err := sys.AllocVector(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v3.Handle() != h {
		t.Errorf("exhausted fresh range must recycle freed handle %d, got %d", h, v3.Handle())
	}
	if _, err := sys.AllocVector(4, 8); err == nil {
		t.Fatal("handle exhaustion must be an error")
	}
	if _, err := v2.View(0, 4); err == nil {
		t.Fatal("view creation under handle exhaustion must be an error")
	}
	if _, ok := sys.objects[v2.Handle()]; !ok {
		t.Error("failed allocation must not disturb live objects")
	}
	// Freeing returns capacity.
	v3.Free()
	if _, err := sys.AllocVector(4, 8); err != nil {
		t.Errorf("allocation must succeed again after a free: %v", err)
	}
}

// TestRunRejectsOverlappingViewOperand covers the aliasing hole: a View
// of the destination is a distinct *Vector, so a pointer compare lets
// it through even though it physically shares the destination's rows.
func TestRunRejectsOverlappingViewOperand(t *testing.T) {
	sys := testSystem(t)
	n, w := 64, 16
	a, _ := sys.AllocVector(n, w)
	dst, _ := sys.AllocVector(n, w)
	if err := a.Store(make([]uint64, n)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("addition", dst, a, dst); err == nil {
		t.Error("dst as a direct source must be rejected")
	}
	alias, err := dst.View(0, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("addition", dst, a, alias); err == nil {
		t.Error("a view overlapping the destination's rows must be rejected")
	}
	// A view of a *different* vector stays legal (the existing free
	// bit-shift idiom).
	shifted, err := a.View(0, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := shifted.Store(make([]uint64, n)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("addition", dst, a, shifted); err != nil {
		t.Errorf("non-overlapping view operand must be accepted: %v", err)
	}
}
