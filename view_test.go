package simdram

import (
	"math/rand"
	"testing"
)

func TestViewIsFreeRightShift(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(21))
	n, w, k := 300, 16, 3
	a, err := sys.AllocVector(n, w)
	if err != nil {
		t.Fatal(err)
	}
	data := randVals(rng, n, w)
	if err := a.Store(data); err != nil {
		t.Fatal(err)
	}
	before := sys.SystemStats()
	view, err := a.View(k, w-k)
	if err != nil {
		t.Fatal(err)
	}
	if after := sys.SystemStats(); after.Commands != before.Commands {
		t.Error("creating a view must issue zero DRAM commands")
	}
	got, err := view.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if want := data[i] >> uint(k); got[i] != want {
			t.Fatalf("element %d: view %d, want %d>>%d = %d", i, got[i], data[i], k, want)
		}
	}
}

func TestViewAsOperand(t *testing.T) {
	// (a >> 2) + b computed with no shift μProgram at all: the addition
	// simply reads a's rows starting two higher.
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(22))
	n, w, k := 200, 16, 2
	vw := w - k
	a, _ := sys.AllocVector(n, w)
	b, _ := sys.AllocVector(n, vw)
	dst, _ := sys.AllocVector(n, vw)
	av := randVals(rng, n, w)
	bv := randVals(rng, n, vw)
	a.Store(av)
	b.Store(bv)
	view, err := a.View(k, vw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("addition", dst, view, b); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Load()
	if err != nil {
		t.Fatal(err)
	}
	mask := uint64(1)<<uint(vw) - 1
	for i := range got {
		want := ((av[i] >> uint(k)) + bv[i]) & mask
		if got[i] != want {
			t.Fatalf("element %d: got %d want %d", i, got[i], want)
		}
	}
}

func TestViewBoundsAndFree(t *testing.T) {
	sys := testSystem(t)
	a, _ := sys.AllocVector(100, 8)
	if _, err := a.View(4, 8); err == nil {
		t.Error("view beyond vector width must error")
	}
	if _, err := a.View(-1, 4); err == nil {
		t.Error("negative offset must error")
	}
	v, err := a.View(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Freeing the view must not release a's rows: a is still loadable and
	// a second identical allocation must not reuse its rows.
	v.Free()
	if err := a.Store(make([]uint64, 100)); err != nil {
		t.Errorf("owner unusable after view freed: %v", err)
	}
	a.Free()
	if _, err := a.View(0, 4); err == nil {
		t.Error("view of freed vector must error")
	}
}
