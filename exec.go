package simdram

import (
	"simdram/internal/ctrl"
	"simdram/internal/isa"
	"simdram/internal/ops"
	"simdram/internal/uprog"
)

// Run executes the named operation in DRAM: dst[i] = op(srcs[0][i],
// srcs[1][i], …). All vectors must have the same element count, the
// sources the same width, and dst the operation's destination width
// (Widths reports it). Sources and destination must be segment-aligned
// (allocate them with the same length on the same System).
func (s *System) Run(opName string, dst *Vector, srcs ...*Vector) (Stats, error) {
	d, err := ops.ByName(opName)
	if err != nil {
		return Stats{}, err
	}
	return s.RunOp(d, dst, srcs...)
}

// RunOp is Run with an explicit operation definition.
func (s *System) RunOp(d ops.Def, dst *Vector, srcs ...*Vector) (Stats, error) {
	p, segs, err := s.prepareOp(d, dst, srcs)
	if err != nil {
		return Stats{}, err
	}
	st, err := s.cu.Execute(p, segs)
	if err != nil {
		return Stats{}, err
	}
	return Stats{LatencyNs: st.BusyNs, EnergyPJ: st.EnergyPJ, Commands: st.Commands}, nil
}

// prepareOp validates an operation invocation and resolves it to a
// μProgram plus the per-subarray segment bindings — everything the
// control unit needs to execute, shared by the serial (RunOp) and
// batched (ExecBatch) paths.
func (s *System) prepareOp(d ops.Def, dst *Vector, srcs []*Vector) (*uprog.Program, []ctrl.Segment, error) {
	if len(srcs) == 0 {
		return nil, nil, errorf("%s: no sources", d.Name)
	}
	arity := d.EffArity(len(srcs))
	if len(srcs) != arity {
		return nil, nil, errorf("%s: needs %d sources, have %d", d.Name, arity, len(srcs))
	}
	width := srcs[0].width
	wantWidths := d.SourceWidths(width, len(srcs))
	for k, src := range srcs {
		if src.freed {
			return nil, nil, errorf("%s: source %d freed", d.Name, k)
		}
		if src.width != wantWidths[k] {
			return nil, nil, errorf("%s: source %d width %d, operation expects %d", d.Name, k, src.width, wantWidths[k])
		}
		if src.n != dst.n {
			return nil, nil, errorf("%s: source %d has %d elements, dst %d", d.Name, k, src.n, dst.n)
		}
		if !dst.aligned(src) {
			return nil, nil, errorf("%s: source %d not segment-aligned with dst", d.Name, k)
		}
		if src.overlaps(dst) {
			// A pointer compare is not enough: a View of the destination
			// is a distinct *Vector yet physically shares its rows.
			return nil, nil, errorf("%s: destination must not alias a source (source %d overlaps its rows)", d.Name, k)
		}
	}
	if dst.freed {
		return nil, nil, errorf("%s: destination freed", d.Name)
	}
	if want := d.DstWidth(width); dst.width != want {
		return nil, nil, errorf("%s: destination width %d, operation produces %d", d.Name, dst.width, want)
	}
	p, err := s.cu.Program(d, width, len(srcs))
	if err != nil {
		return nil, nil, err
	}
	dataRows := s.cfg.DRAM.DataRows()
	segs := make([]ctrl.Segment, len(dst.segs))
	for i := range dst.segs {
		bank, sub := dst.segs[i].bank, dst.segs[i].sub
		if s.rows[bank][sub].tailFree() < p.NumScratch {
			return nil, nil, errorf("%s: subarray (%d,%d) lacks %d scratch rows", d.Name, bank, sub, p.NumScratch)
		}
		b := uprog.Binding{
			DstBase:     dst.segs[i].baseRow,
			ScratchBase: dataRows - p.NumScratch,
		}
		for _, src := range srcs {
			b.SrcBase = append(b.SrcBase, src.segs[i].baseRow)
		}
		segs[i] = ctrl.Segment{Bank: bank, Sub: sub, Binding: b}
	}
	return p, segs, nil
}

// Exec executes a decoded bbop instruction against the system's object
// table — the ISA-level entry point a compiler would target.
func (s *System) Exec(in isa.Instruction) (Stats, error) {
	if err := in.Validate(); err != nil {
		return Stats{}, err
	}
	if in.Op == isa.OpTrspInit {
		if _, ok := s.objects[in.Src[0]]; !ok {
			return Stats{}, errorf("bbop_trsp_init: unknown object %d", in.Src[0])
		}
		// Transposition is configured: in this implementation Store/Load
		// always route through the transposition unit, so trsp_init only
		// validates the object.
		return Stats{}, nil
	}
	d, dst, srcs, err := s.resolve(in)
	if err != nil {
		return Stats{}, err
	}
	return s.RunOp(d, dst, srcs...)
}

// resolve maps an operation instruction's opcode and object handles onto
// the operation definition and the live vectors they name.
func (s *System) resolve(in isa.Instruction) (ops.Def, *Vector, []*Vector, error) {
	code, err := in.Op.ToOp()
	if err != nil {
		return ops.Def{}, nil, nil, err
	}
	d, err := ops.ByCode(code)
	if err != nil {
		return ops.Def{}, nil, nil, err
	}
	dst, ok := s.objects[in.Dst]
	if !ok {
		return ops.Def{}, nil, nil, errorf("bbop: unknown destination object %d", in.Dst)
	}
	arity := d.EffArity(int(in.N))
	if arity > 3 {
		return ops.Def{}, nil, nil, errorf("bbop: ISA encodes at most 3 source objects, operation needs %d", arity)
	}
	srcs := make([]*Vector, arity)
	for k := 0; k < arity; k++ {
		src, ok := s.objects[in.Src[k]]
		if !ok {
			return ops.Def{}, nil, nil, errorf("bbop: unknown source object %d", in.Src[k])
		}
		srcs[k] = src
	}
	return d, dst, srcs, nil
}

// Widths returns the source and destination element widths the named
// operation uses for a given source width.
func Widths(opName string, width int) (src, dst int, err error) {
	d, err := ops.ByName(opName)
	if err != nil {
		return 0, 0, err
	}
	return width, d.DstWidth(width), nil
}

// Golden computes the operation's reference result for one element —
// exposed so applications can verify in-DRAM results.
func Golden(opName string, width int, args ...uint64) (uint64, error) {
	d, err := ops.ByName(opName)
	if err != nil {
		return 0, err
	}
	if got, want := len(args), d.EffArity(len(args)); got != want {
		return 0, errorf("%s: needs %d arguments, have %d", opName, want, got)
	}
	return d.Golden(args, width), nil
}
