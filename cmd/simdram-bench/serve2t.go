package main

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"simdram"
	"simdram/internal/batchgen"
)

// runServeTiersDemo is the two-tier QoS overload demo: two gold
// tenants and two bronze tenants hammer a small channel pool with
// closed loops sized to keep both tiers continuously backlogged, under
// a 4:1 gold:bronze weight ratio. It demonstrates — and gates — the
// scheduler's three QoS promises:
//
//  1. Weighted shares: over the measurement window the modeled DRAM-ns
//     dispatched per tier must match the configured weight ratio
//     within 10%.
//  2. Tier isolation under SLOs: gold's run_p99 objective stays green
//     (zero burn events) while bronze's deliberately tight queue_p99
//     objective breaches — overload lands on the cheap tier.
//  3. Deadline admission: every submission carrying an unmeetable
//     deadline is rejected at admission with ErrDeadlineInfeasible —
//     typed, counted per tier, and never queued.
//
// Every job's results are verified against the kernel references, so
// the demo is also a differential test of the JobSpec submit path.
func runServeTiersDemo(inflight, channels int, window time.Duration, m metrics) error {
	if inflight < 1 || channels < 1 {
		return fmt.Errorf("-serve -tiers needs positive -inflight/-channels")
	}
	// The share gate assumes every tenant stays continuously backlogged:
	// a tenant whose queue momentarily drains forfeits its weighted-fair
	// position to work conservation, which reads as a share regression
	// that isn't one. Queues this deep ride out host scheduling stalls
	// (the channel simulations are CPU-bound and starve the submitter
	// goroutines for tens of milliseconds on small machines).
	if inflight < 64 {
		inflight = 64
	}
	if window < 200*time.Millisecond {
		window = 200 * time.Millisecond
	}
	const (
		goldWeight   = 4.0
		bronzeWeight = 1.0
		// Gold's latency objective is generous (it must stay green
		// under overload thanks to its weight); bronze's queue
		// objective is deliberately unmeetable at 1/5 of capacity.
		goldRunP99TargetNs     = 250 * int64(time.Millisecond)
		bronzeQueueP99TargetNs = 2 * int64(time.Millisecond)
		deadlineProbes         = 10
	)
	goldTenants := []string{"gold-0", "gold-1"}
	bronzeTenants := []string{"bronze-0", "bronze-1"}

	cfg := simdram.DefaultServerConfig(channels)
	cfg.Channel.DRAM.Cols = 256
	cfg.Tiers = []simdram.Tier{
		{Name: "gold", Weight: goldWeight, Priority: 1},
		{Name: "bronze", Weight: bronzeWeight, Priority: 0},
	}
	for _, tenant := range goldTenants {
		cfg.SLOs = append(cfg.SLOs, simdram.SLO{
			Tenant: tenant, Metric: "run_p99", TargetNs: goldRunP99TargetNs, Window: 30 * time.Second,
		})
	}
	for _, tenant := range bronzeTenants {
		cfg.SLOs = append(cfg.SLOs, simdram.SLO{
			Tenant: tenant, Metric: "queue_p99", TargetNs: bronzeQueueP99TargetNs, Window: 30 * time.Second,
		})
	}
	loops := (len(goldTenants) + len(bronzeTenants)) * inflight
	cfg.QueueDepth = loops + channels + deadlineProbes
	srv, err := simdram.NewServer(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	const elems = 2048
	shapes := batchgen.ServeShapes(elems)

	// Warm every shape through cold compile, profiling, and the
	// profile-guided recompile, so steady-state admission estimates
	// come from the exact cached plans that will run.
	for round := 0; round < simdram.DefaultProfileMinJobs+1; round++ {
		for i, shape := range shapes {
			req := shape.New(rand.New(rand.NewSource(int64(round*100 + i))))
			if err := req.RunVerify(context.Background(), srv, "warmup"); err != nil {
				return fmt.Errorf("tiers warmup shape %s: %w", shape.Name, err)
			}
		}
	}

	// Each tenant runs one feeder that keeps `inflight` jobs outstanding
	// from a pre-generated request pool, with verification handed off to
	// background waiters. Keeping request generation and verification
	// off the resubmission path is what keeps every tenant continuously
	// backlogged — the whole point of the overload scenario — even when
	// the host CPUs are saturated by the channel simulations.
	var (
		stop     atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		loopErrs []error
		done     = map[string]int{}
	)
	fail := func(err error) {
		mu.Lock()
		loopErrs = append(loopErrs, err)
		mu.Unlock()
	}
	const poolPerTenant = 8
	runFeeder := func(tenant, tier string, seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		pool := make([]*batchgen.ServeRequest, poolPerTenant)
		poolShape := make([]string, poolPerTenant)
		for i := range pool {
			shape := shapes[i%len(shapes)]
			pool[i] = shape.New(rng)
			poolShape[i] = shape.Name
		}
		sem := make(chan struct{}, inflight)
		for i := 0; !stop.Load(); i++ {
			sem <- struct{}{}
			req, shapeName := pool[i%poolPerTenant], poolShape[i%poolPerTenant]
			fut, err := srv.SubmitJob(context.Background(), simdram.JobSpec{Tenant: tenant, Tier: tier}, req.Exprs()...)
			if err != nil {
				fail(fmt.Errorf("%s (%s): submit: %w", tenant, shapeName, err))
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				res, err := fut.Wait()
				if err == nil {
					err = req.Verify(res)
				}
				if err != nil {
					fail(fmt.Errorf("%s (%s): %w", tenant, shapeName, err))
					stop.Store(true)
					return
				}
				mu.Lock()
				done[tenant]++
				mu.Unlock()
			}()
		}
	}
	start := time.Now()
	for i, tenant := range goldTenants {
		wg.Add(1)
		go runFeeder(tenant, "gold", int64(i+1))
	}
	for i, tenant := range bronzeTenants {
		wg.Add(1)
		go runFeeder(tenant, "bronze", int64(100+i))
	}

	// Ramp, then measure the dispatched modeled-ns per tier across the
	// window — the achieved weighted share, straight off the
	// scheduler's tier charge counters.
	time.Sleep(window / 4)
	before := srv.Stats().Tiers
	time.Sleep(window)
	after := srv.Stats().Tiers

	// Deadline probes while the backlog is still live: a deadline in
	// the next microsecond is infeasible behind a multi-millisecond
	// estimated wait, so every probe must be rejected at admission.
	rejects, admitted := 0, 0
	var lastAdm *simdram.AdmissionError
	probeRng := rand.New(rand.NewSource(99))
	for i := 0; i < deadlineProbes; i++ {
		req := shapes[i%len(shapes)].New(probeRng)
		_, err := req.SubmitSpec(context.Background(), srv, simdram.JobSpec{
			Tenant: "deadline-probe", Tier: "gold", Deadline: time.Now().Add(time.Microsecond),
		})
		switch {
		case errors.Is(err, simdram.ErrDeadlineInfeasible):
			rejects++
			errors.As(err, &lastAdm)
		case err == nil:
			admitted++
		default:
			return fmt.Errorf("tiers demo: deadline probe %d failed unexpectedly: %w", i, err)
		}
	}

	slos := srv.SLOStatus()
	stop.Store(true)
	wg.Wait()
	wall := time.Since(start)
	for _, err := range loopErrs {
		return err
	}

	goldNs := after["gold"].ModeledNs - before["gold"].ModeledNs
	bronzeNs := after["bronze"].ModeledNs - before["bronze"].ModeledNs
	if bronzeNs <= 0 {
		return fmt.Errorf("tiers demo: bronze dispatched no modeled work in the window — starved outright")
	}
	shareRatio := goldNs / bronzeNs
	weightRatio := goldWeight / bronzeWeight

	// SLO audit: gold green, bronze burning.
	goldBreaching, bronzeBreaching := 0, 0
	var bronzeBurn float64
	for _, st := range slos {
		switch {
		case strings.HasPrefix(st.SLO.Tenant, "gold-"):
			if st.Breaching {
				goldBreaching++
			}
		case strings.HasPrefix(st.SLO.Tenant, "bronze-"):
			if st.Breaching {
				bronzeBreaching++
				bronzeBurn = math.Max(bronzeBurn, st.BurnRate)
			}
		}
	}
	goldBurnEvents, bronzeBurnEvents := 0, 0
	for _, ev := range srv.Events() {
		if ev.Kind != "slo" {
			continue
		}
		if strings.Contains(ev.Detail, "gold-") {
			goldBurnEvents++
		}
		if strings.Contains(ev.Detail, "bronze-") {
			bronzeBurnEvents++
		}
	}

	st := srv.Stats()
	gold, bronze := st.Tiers["gold"], st.Tiers["bronze"]
	total := 0
	names := make([]string, 0, len(done))
	for tenant, n := range done {
		total += n
		names = append(names, tenant)
	}
	sort.Strings(names)

	fmt.Printf("two-tier QoS demo: gold:bronze weights %.0f:%.0f, %d tenants × %d in flight over %d channels, %v window\n",
		goldWeight, bronzeWeight, len(goldTenants)+len(bronzeTenants), inflight, channels, window)
	fmt.Printf("  weighted share:     gold %.2fms vs bronze %.2fms modeled DRAM time dispatched → ratio %.2f (want %.0f ± 10%%)\n",
		goldNs/1e6, bronzeNs/1e6, shareRatio, weightRatio)
	fmt.Printf("  tier latency:       gold queue p99 %.2fms run p99 %.2fms | bronze queue p99 %.2fms run p99 %.2fms\n",
		float64(gold.QueueP99Ns)/1e6, float64(gold.RunP99Ns)/1e6,
		float64(bronze.QueueP99Ns)/1e6, float64(bronze.RunP99Ns)/1e6)
	fmt.Printf("  slo:                gold run_p99 < %.0fms green (%d burn events); bronze queue_p99 > %.0fms breaching ×%d (burn %.0fx, %d events)\n",
		float64(goldRunP99TargetNs)/1e6, goldBurnEvents,
		float64(bronzeQueueP99TargetNs)/1e6, bronzeBreaching, bronzeBurn, bronzeBurnEvents)
	fmt.Printf("  deadline admission: %d/%d infeasible submissions rejected typed at admission (tier gold deadline-rejects %d)\n",
		rejects, deadlineProbes, gold.DeadlineRejects)
	fmt.Printf("  throughput:         %d verified jobs in %v (", total, wall.Round(time.Millisecond))
	for i, tenant := range names {
		if i > 0 {
			fmt.Printf(", ")
		}
		fmt.Printf("%s %d", tenant, done[tenant])
	}
	fmt.Println(")")

	m["serve2t.jobs"] = float64(total)
	m["serve2t.jobs_per_sec"] = float64(total) / wall.Seconds()
	m["serve2t.share_ratio"] = shareRatio
	m["serve2t.gold_p99_ns"] = float64(gold.RunP99Ns)
	m["serve2t.gold_queue_p99_ns"] = float64(gold.QueueP99Ns)
	m["serve2t.bronze_queue_p99_ns"] = float64(bronze.QueueP99Ns)
	m["serve2t.deadline_rejects"] = float64(rejects)
	m["serve2t.gold_burn_events"] = float64(goldBurnEvents)
	m["serve2t.bronze_burn_events"] = float64(bronzeBurnEvents)
	m["serve2t.preempts"] = float64(gold.Preempts)
	// The raw sched.tier_* registry series land in the JSON too, so CI
	// can grep the per-tier observability surface end to end.
	for _, p := range srv.Metrics() {
		if strings.HasPrefix(p.Name, "sched.tier_") {
			m[p.Name] = p.Value
		}
	}

	if math.Abs(shareRatio/weightRatio-1) > 0.10 {
		return fmt.Errorf("tiers demo regressed: modeled-ns share ratio %.2f deviates >10%% from the %.0f:1 weight ratio", shareRatio, weightRatio)
	}
	if goldBreaching > 0 || goldBurnEvents > 0 {
		return fmt.Errorf("tiers demo regressed: gold tier breached its SLO under overload (%d breaching, %d burn events)", goldBreaching, goldBurnEvents)
	}
	if bronzeBreaching == 0 || bronzeBurnEvents == 0 {
		return fmt.Errorf("tiers demo regressed: bronze tier never breached its deliberately tight queue SLO (overload not reaching the cheap tier)")
	}
	if admitted > 0 || rejects != deadlineProbes {
		return fmt.Errorf("tiers demo regressed: %d/%d infeasible-deadline submissions rejected (%d admitted) — deadline admission must reject all of them", rejects, deadlineProbes, admitted)
	}
	if lastAdm == nil || lastAdm.Reason != "deadline-infeasible" || lastAdm.EstimatedWaitNs <= 0 {
		return fmt.Errorf("tiers demo regressed: deadline rejection missing its typed admission estimate: %+v", lastAdm)
	}
	if gold.DeadlineRejects != uint64(deadlineProbes) {
		return fmt.Errorf("tiers demo regressed: tier deadline-reject counter %d, want %d", gold.DeadlineRejects, deadlineProbes)
	}
	return nil
}
