// simdram-bench regenerates every table and figure of the SIMDRAM
// evaluation (experiments E1-E8, see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	simdram-bench               # run everything
//	simdram-bench -only E2,E3   # run a subset
//	simdram-bench -trials 200000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"simdram/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E4); empty = all")
	trials := flag.Int("trials", 100000, "Monte Carlo trials for the reliability experiment (E5)")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	type gen func() (experiments.Table, error)
	runners := []struct {
		id  string
		run gen
	}{
		{"E1", func() (experiments.Table, error) { return experiments.E1CommandCounts([]int{8, 16, 32, 64}) }},
		{"E2-16", func() (experiments.Table, error) { return experiments.E2Throughput(16) }},
		{"E2", func() (experiments.Table, error) { return experiments.E2Throughput(32) }},
		{"E3", func() (experiments.Table, error) { return experiments.E3Energy(32) }},
		{"E4", experiments.E4Kernels},
		{"E5", func() (experiments.Table, error) { return experiments.E5Reliability(*trials), nil }},
		{"E6", func() (experiments.Table, error) { return experiments.E6Area(), nil }},
		{"E7", experiments.E7WidthScaling},
		{"E8", experiments.E8Transposition},
		{"E9", func() (experiments.Table, error) { return experiments.E9Ablation(16) }},
		{"E9-groups", func() (experiments.Table, error) { return experiments.E9Groups(16) }},
		{"E10", experiments.E10RowHammer},
	}
	failed := false
	for _, r := range runners {
		base := strings.SplitN(r.id, "-", 2)[0]
		if !selected(base) {
			continue
		}
		tab, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			failed = true
			continue
		}
		fmt.Println(tab.String())
	}
	if failed {
		os.Exit(1)
	}
}
