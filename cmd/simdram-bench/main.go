// simdram-bench regenerates every table and figure of the SIMDRAM
// evaluation (experiments E1-E8, see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	simdram-bench               # run everything
//	simdram-bench -only E2,E3   # run a subset
//	simdram-bench -trials 200000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"simdram"
	"simdram/internal/batchgen"
	"simdram/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E4); empty = all")
	trials := flag.Int("trials", 100000, "Monte Carlo trials for the reliability experiment (E5)")
	batch := flag.Bool("batch", false, "run the batched-execution demo instead of the paper experiments")
	batchRounds := flag.Int("batch-rounds", 20, "wall-clock averaging rounds for -batch")
	clusterN := flag.Int("cluster", 0, "run the sharded-cluster demo with N channels instead of the paper experiments")
	graphMode := flag.Bool("graph", false, "run the lazy expression-graph compiler demo instead of the paper experiments")
	serve := flag.Bool("serve", false, "run the multi-tenant serving demo instead of the paper experiments")
	tenants := flag.Int("tenants", 4, "tenants for -serve")
	jobs := flag.Int("jobs", 32, "jobs per tenant for -serve")
	inflight := flag.Int("inflight", 4, "in-flight jobs per tenant for -serve")
	channels := flag.Int("channels", 4, "cluster channels for -serve")
	traceJobs := flag.Int("trace-jobs", 0, "print the span trees of the last N traced jobs after -serve")
	tiers := flag.Bool("tiers", false, "with -serve, run the two-tier QoS overload demo (weighted shares, SLO isolation, deadline admission)")
	tierWindow := flag.Duration("tier-window", 2*time.Second, "measurement window for -serve -tiers share accounting")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics (Prometheus exposition) and /debug/simdram (JSON) on this address during -serve")
	telemetryHold := flag.Duration("telemetry-hold", 0, "keep the -telemetry-addr endpoint up this long after the -serve demo finishes (for scrapers)")
	jsonPath := flag.String("json", "", "write machine-readable demo metrics to this file (for scripts/perfcheck)")
	flag.Parse()

	m := metrics{}
	runDemo := func(run func() error) {
		err := run()
		if werr := m.write(*jsonPath); werr != nil && err == nil {
			err = werr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *serve && *tiers {
		runDemo(func() error {
			return runServeTiersDemo(*inflight, *channels, *tierWindow, m)
		})
		return
	}
	if *serve {
		runDemo(func() error {
			return runServeDemo(*tenants, *jobs, *inflight, *channels, *traceJobs, *telemetryAddr, *telemetryHold, m)
		})
		return
	}
	if *graphMode {
		runDemo(func() error { return runGraphDemo(m) })
		return
	}
	if *clusterN > 0 {
		runDemo(func() error { return runClusterDemo(*clusterN, m) })
		return
	}
	if *batch {
		runDemo(func() error { return runBatchDemo(*batchRounds, m) })
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	type gen func() (experiments.Table, error)
	runners := []struct {
		id  string
		run gen
	}{
		{"E1", func() (experiments.Table, error) { return experiments.E1CommandCounts([]int{8, 16, 32, 64}) }},
		{"E2-16", func() (experiments.Table, error) { return experiments.E2Throughput(16) }},
		{"E2", func() (experiments.Table, error) { return experiments.E2Throughput(32) }},
		{"E3", func() (experiments.Table, error) { return experiments.E3Energy(32) }},
		{"E4", experiments.E4Kernels},
		{"E5", func() (experiments.Table, error) { return experiments.E5Reliability(*trials), nil }},
		{"E6", func() (experiments.Table, error) { return experiments.E6Area(), nil }},
		{"E7", experiments.E7WidthScaling},
		{"E8", experiments.E8Transposition},
		{"E9", func() (experiments.Table, error) { return experiments.E9Ablation(16) }},
		{"E9-groups", func() (experiments.Table, error) { return experiments.E9Groups(16) }},
		{"E10", experiments.E10RowHammer},
	}
	failed := false
	for _, r := range runners {
		base := strings.SplitN(r.id, "-", 2)[0]
		if !selected(base) {
			continue
		}
		tab, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			failed = true
			continue
		}
		fmt.Println(tab.String())
	}
	// The paper experiments emit tables, not gated metrics; still
	// honor -json so a caller's pipeline finds the file it asked for.
	if err := m.write(*jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// runClusterDemo shards the bank-disjoint workload across an N-channel
// cluster and compares its modeled makespan against the single-channel
// serial-equivalent: the identical total workload on one System, issued
// one instruction at a time. Near-linear scaling shows up as a critical
// path close to 1/N of the baseline (the acceptance target is < 0.35×
// at N = 4).
func runClusterDemo(channels int, m metrics) error {
	cfg := simdram.DefaultClusterConfig(channels)
	c, err := simdram.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	cprog, err := batchgen.ClusterProgram(c, 1)
	if err != nil {
		return err
	}
	start := time.Now()
	cst, err := c.ExecBatch(cprog)
	if err != nil {
		return err
	}
	clusterWall := time.Since(start)

	// The same total elements and instruction stream on one channel.
	sys, err := simdram.New(cfg.Channel)
	if err != nil {
		return err
	}
	defer sys.Close()
	sprog, err := batchgen.ProgramScaled(sys, 1, channels)
	if err != nil {
		return err
	}
	sst, err := sys.ExecBatch(sprog)
	if err != nil {
		return err
	}

	d := cfg.Channel.DRAM
	fmt.Printf("sharded cluster demo: %d channels × (%d banks × %d subarrays × %d lanes), %d instructions, %d elements/vector\n",
		channels, d.Banks, d.SubarraysPerBank, d.Cols, len(cprog), d.Cols*channels)
	fmt.Printf("  single channel:     %12.2f ns serial-equivalent, %12.2f ns batched critical path\n",
		sst.BusyNs, sst.CriticalPathNs)
	fmt.Printf("  cluster (%d ch):     %12.2f ns critical path  (%.2f ns aggregate work, %.2f× fabric overlap, skew %.3f)\n",
		channels, cst.CriticalPathNs, cst.BusyNs, cst.Speedup(), cst.UtilizationSkew())
	ratio := cst.CriticalPathNs / sst.BusyNs
	fmt.Printf("  scaling:            cluster critical path = %.3f× single-channel serial-equivalent (wall %v)\n",
		ratio, clusterWall)
	fmt.Printf("  per-channel utilization: ")
	for i, u := range cst.ChannelUtilization {
		if i > 0 {
			fmt.Printf(", ")
		}
		fmt.Printf("ch%d %.2f", i, u)
	}
	fmt.Println()
	m["cluster.critical_path_ns"] = cst.CriticalPathNs
	m["cluster.scaling_ratio"] = ratio
	m["cluster.fabric_overlap"] = cst.Speedup()
	m["cluster.utilization_skew"] = cst.UtilizationSkew()
	if channels >= 4 && ratio >= 0.35 {
		return fmt.Errorf("cluster scaling regressed: critical path %.3f× serial-equivalent, want < 0.35×", ratio)
	}
	return nil
}

// runGraphDemo compiles the lazy expression workload twice — naive
// per-node lowering (every pass off, one fresh temporary per node,
// issued serially through Exec) and the optimized graph compiler
// (fold + CSE + DCE + cost-driven schedule + lifetime slot reuse,
// executed as one batch) — verifies the results are bit-identical, and
// reports what the compiler saved. The run fails if lifetime reuse
// saves less than 30% of the naive temporary rows or CSE finds no
// duplicates: those are the subsystem's regression guards.
func runGraphDemo(m metrics) error {
	cfg := simdram.DefaultConfig()
	sys, err := simdram.New(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()
	// Run the demo with the IR verifier on every compiled plan: the
	// demo doubles as an end-to-end check that real workloads verify.
	sys.SetVerifyPlans(true)
	roots, err := batchgen.GraphExprs(sys, 1)
	if err != nil {
		return err
	}

	// Naive per-node baseline, issued one instruction at a time.
	naive, err := sys.CompileWith(simdram.NaiveCompile, roots...)
	if err != nil {
		return err
	}
	nst := naive.Stats()
	var serialBusyNs float64
	start := time.Now()
	for _, in := range naive.Program() {
		st, err := sys.Exec(in)
		if err != nil {
			return err
		}
		serialBusyNs += st.LatencyNs
	}
	serialWall := time.Since(start)
	naiveOut := make([][]uint64, len(roots))
	for i, r := range roots {
		if naiveOut[i], err = r.Result().Load(); err != nil {
			return err
		}
	}
	for _, r := range roots {
		r.Result().Free()
	}
	naive.Free()

	// Optimized graph compiler, executed as one batch.
	opt, err := sys.Compile(roots...)
	if err != nil {
		return err
	}
	ost := opt.Stats()
	start = time.Now()
	bst, err := opt.Execute()
	if err != nil {
		return err
	}
	batchWall := time.Since(start)
	for i, r := range roots {
		got, err := r.Result().Load()
		if err != nil {
			return err
		}
		for j := range got {
			if got[j] != naiveOut[i][j] {
				return fmt.Errorf("graph demo: root %d element %d: optimized %d != naive %d",
					i, j, got[j], naiveOut[i][j])
			}
		}
	}
	for _, r := range roots {
		r.Result().Free()
	}
	opt.Free()

	saved := 1 - float64(ost.TempRowsPooled)/float64(nst.TempRowsPooled)
	fmt.Printf("lazy expression-graph compiler demo: %d-node DAG, %d roots, %d lanes × 8 bits\n",
		nst.Nodes, len(roots), cfg.DRAM.Cols)
	fmt.Printf("  passes:             %d folded, %d CSE-eliminated, %d DCE-removed\n",
		ost.Folded, ost.CSEEliminated, ost.DCEEliminated)
	fmt.Printf("  instructions:       %4d naive → %4d optimized (%.0f%% fewer)\n",
		nst.Instructions, ost.Instructions,
		100*(1-float64(ost.Instructions)/float64(nst.Instructions)))
	fmt.Printf("  temporary rows:     %4d naive → %4d pooled in %d slots (%.0f%% fewer)\n",
		nst.TempRowsPooled, ost.TempRowsPooled, ost.TempSlots, 100*saved)
	fmt.Printf("  modeled latency:    %10.2f ns serial naive, %.2f ns optimized critical path (%.2f× speedup)\n",
		serialBusyNs, bst.CriticalPathNs, serialBusyNs/bst.CriticalPathNs)
	fmt.Printf("  wall:               serial %v, batched %v\n", serialWall, batchWall)
	fmt.Printf("  verified %d roots bit-identical to the naive serial execution\n", len(roots))
	m["graph.critical_path_ns"] = bst.CriticalPathNs
	m["graph.temp_row_reuse"] = saved
	m["graph.instructions"] = float64(ost.Instructions)
	m["graph.cse_eliminated"] = float64(ost.CSEEliminated)
	m["graph.speedup_modeled"] = serialBusyNs / bst.CriticalPathNs
	m["verify.plans_checked"] = float64(sys.VerifiedPlans())
	if err := reportHostPerf(m, "host."); err != nil {
		return err
	}
	if ost.CSEEliminated == 0 {
		return fmt.Errorf("graph demo regressed: CSE eliminated no duplicated subexpressions")
	}
	if saved < 0.30 {
		return fmt.Errorf("graph demo regressed: lifetime reuse saved %.0f%% of temporary rows, want >= 30%%", 100*saved)
	}
	return nil
}

// runBatchDemo compares a serial Exec loop against ExecBatch on the
// default 4-bank geometry: one independent 8-bit addition per
// (bank, subarray), so the batched engine can overlap all banks while
// the serial loop issues one instruction at a time.
func runBatchDemo(rounds int, m metrics) error {
	if rounds < 1 {
		return fmt.Errorf("-batch-rounds must be >= 1, have %d", rounds)
	}
	cfg := simdram.DefaultConfig()
	sys, err := simdram.New(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()
	prog, err := batchgen.Program(sys, 1)
	if err != nil {
		return err
	}

	// Warm up untimed so the one-time μProgram synthesis (cached across
	// the run) is not billed to whichever side executes first.
	for _, in := range prog {
		if _, err := sys.Exec(in); err != nil {
			return err
		}
	}

	var serial time.Duration
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, in := range prog {
			if _, err := sys.Exec(in); err != nil {
				return err
			}
		}
	}
	serial = time.Since(start)

	var st simdram.BatchStats
	start = time.Now()
	for r := 0; r < rounds; r++ {
		if st, err = sys.ExecBatch(prog); err != nil {
			return err
		}
	}
	batched := time.Since(start)

	instrs := rounds * len(prog)
	fmt.Printf("batched execution demo: %d instructions/round × %d rounds, %d banks × %d subarrays, %d lanes each\n",
		len(prog), rounds, cfg.DRAM.Banks, cfg.DRAM.SubarraysPerBank, cfg.DRAM.Cols)
	fmt.Printf("  serial Exec loop:   %10.2f ms wall  (%8.0f instr/s)\n",
		float64(serial.Microseconds())/1e3, float64(instrs)/serial.Seconds())
	fmt.Printf("  ExecBatch:          %10.2f ms wall  (%8.0f instr/s)  wall speedup %.2f×\n",
		float64(batched.Microseconds())/1e3, float64(instrs)/batched.Seconds(), serial.Seconds()/batched.Seconds())
	fmt.Printf("  modeled latency:    %10.2f ns serial-equivalent, %.2f ns critical path  (%.2f× bank overlap)\n",
		st.BusyNs, st.CriticalPathNs, st.Speedup())
	m["batch.critical_path_ns"] = st.CriticalPathNs
	m["batch.speedup_modeled"] = st.Speedup()
	m["batch.instr_per_sec"] = float64(instrs) / batched.Seconds()
	return nil
}
