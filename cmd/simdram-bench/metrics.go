package main

import (
	"encoding/json"
	"os"
)

// metrics is the machine-readable output of one bench run: flat
// metric name → value, written as {"metrics": {...}} when -json is
// given. scripts/perfcheck compares a committed baseline against
// these files; only deterministic metrics (modeled latencies, cache
// hit rates, reuse fractions, scaling ratios) belong in the baseline —
// wall-clock numbers (jobs/sec, milliseconds) are emitted for
// inspection but are too noisy for a CI gate.
type metrics map[string]float64

// write emits the metrics file, or nothing when path is empty.
func (m metrics) write(path string) error {
	if path == "" {
		return nil
	}
	out, err := json.MarshalIndent(struct {
		Metrics metrics `json:"metrics"`
	}{m}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
