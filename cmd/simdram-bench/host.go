package main

import (
	"fmt"
	"runtime"
	"time"

	"simdram/internal/dram"
	"simdram/internal/ops"
	"simdram/internal/uprog"
)

// hostPerf is the host-side (wall-clock) profile of the bind-once/
// run-many hot path measured on one subarray: how fast the resolved
// executor replays DRAM commands, how many heap allocations one
// μProgram run costs in steady state, and the speedup over the
// interpretive path that validates and resolves on every run.
type hostPerf struct {
	NsPerCmd     float64 // resolved-stream wall ns per DRAM command
	AllocsPerRun float64 // heap allocations per resolved run (deterministic, gated)
	Speedup      float64 // interpretive wall / resolved wall
	Commands     int     // commands per μProgram run
}

// measureHostPerf times the 16-bit addition μProgram — the catalog's
// workhorse — through both executors. Wall-clock numbers vary with the
// runner and are reported for inspection only; AllocsPerRun is exact
// (a runtime malloc counter around a fixed loop) and is the metric the
// CI baseline gates at zero.
func measureHostPerf() (hostPerf, error) {
	cfg := dram.TestConfig()
	d, err := ops.ByName("addition")
	if err != nil {
		return hostPerf{}, err
	}
	s, err := ops.SynthesizeCached(d, 16, 2, ops.VariantSIMDRAM)
	if err != nil {
		return hostPerf{}, err
	}
	p := s.Program
	b := uprog.Binding{
		SrcBase:     []int{0, 16},
		DstBase:     32,
		ScratchBase: cfg.DataRows() - p.NumScratch,
	}
	sa := dram.NewSubarray(&cfg)
	st, err := uprog.Resolve(p, b, cfg)
	if err != nil {
		return hostPerf{}, err
	}

	// Warm both paths: first runs touch cold caches and, for the
	// interpretive executor, grow its per-run scratch slices.
	for i := 0; i < 10; i++ {
		if err := uprog.Run(p, sa, b); err != nil {
			return hostPerf{}, err
		}
		uprog.RunResolved(sa, st)
	}

	const runs = 2000
	start := time.Now()
	for i := 0; i < runs; i++ {
		if err := uprog.Run(p, sa, b); err != nil {
			return hostPerf{}, err
		}
	}
	interpWall := time.Since(start)
	start = time.Now()
	for i := 0; i < runs; i++ {
		uprog.RunResolved(sa, st)
	}
	resolvedWall := time.Since(start)

	// Allocation count via the runtime's malloc counter. Background
	// goroutines (GC workers) can allocate concurrently, so take the
	// minimum over a few attempts — the steady-state path itself is
	// deterministic.
	allocs := allocsPerRun(func() { uprog.RunResolved(sa, st) })

	cmds := len(p.Ops)
	return hostPerf{
		NsPerCmd:     float64(resolvedWall.Nanoseconds()) / float64(runs*cmds),
		AllocsPerRun: allocs,
		Speedup:      float64(interpWall) / float64(resolvedWall),
		Commands:     cmds,
	}, nil
}

// allocsPerRun counts heap allocations per call of fn: the minimum
// over three attempts of the Mallocs delta across a 100-call loop.
func allocsPerRun(fn func()) float64 {
	var best float64 = -1
	var before, after runtime.MemStats
	for attempt := 0; attempt < 3; attempt++ {
		const loops = 100
		runtime.ReadMemStats(&before)
		for i := 0; i < loops; i++ {
			fn()
		}
		runtime.ReadMemStats(&after)
		got := float64(after.Mallocs-before.Mallocs) / loops
		if best < 0 || got < best {
			best = got
		}
	}
	return best
}

// reportHostPerf prints the profile and records it under the given
// metric prefix. Only the -graph demo uses the bare "host." prefix:
// perfcheck merges every result file last-write-wins, so the gated
// host.allocs_per_run key must come from exactly one demo.
func reportHostPerf(m metrics, prefix string) error {
	hp, err := measureHostPerf()
	if err != nil {
		return err
	}
	fmt.Printf("  host hot path:      %.1f ns/command resolved, %.2fx vs interpretive, %.0f allocs/run (%d commands)\n",
		hp.NsPerCmd, hp.Speedup, hp.AllocsPerRun, hp.Commands)
	m[prefix+"ns_per_cmd"] = hp.NsPerCmd
	m[prefix+"allocs_per_run"] = hp.AllocsPerRun
	m[prefix+"resolved_speedup"] = hp.Speedup
	return nil
}
