package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"simdram"
	"simdram/internal/batchgen"
)

// runServeDemo is the closed-loop throughput demo of the serving
// layer: N tenants, each keeping K jobs in flight, each job one of a
// small set of kernel request shapes (brightness, BitWeaving scan,
// TPC-H Q6) with a fresh random payload. Every result is verified
// against its pure-Go reference, so the demo is also a differential
// test of the cached-plan path under real concurrency. It reports
// jobs/sec, p50/p99 latency, plan-cache hit rate, and per-tenant
// utilization, and fails if the hit rate on repeated shapes falls
// below 90% — the serving subsystem's regression guard.
func runServeDemo(tenants, jobs, inflight, channels int, m metrics) error {
	if tenants < 1 || jobs < 1 || inflight < 1 || channels < 1 {
		return fmt.Errorf("-serve needs positive -tenants/-jobs/-inflight/-channels")
	}
	if inflight > jobs {
		inflight = jobs
	}
	cfg := simdram.DefaultServerConfig(channels)
	// Request-sized lanes: serving jobs are small; a slimmer geometry
	// keeps the host-side transposition cost proportionate. At 256
	// lanes per subarray a 2048-element vector spans 8 segments over 4
	// banks, so every instruction's measured latency is 2× the static
	// per-subarray cost model — the divergence that drives the
	// profile-guided recompile path the demo exercises.
	cfg.Channel.DRAM.Cols = 256
	cfg.QueueDepth = tenants*inflight + channels
	srv, err := simdram.NewServer(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	const elems = 2048
	shapes := batchgen.ServeShapes(elems)

	// Warm the cache serially: round 1 is each shape's cold compile;
	// rounds 2..MinJobs reuse the plan while folding measured per-op
	// latencies into the shape's profile; round MinJobs+1 observes the
	// diverged profile and recompiles the plan with observed costs.
	// After this every job in the timed loop hits the profiled plan, so
	// both the steady-state hit rate and the recompile count are
	// deterministic.
	for round := 0; round < simdram.DefaultProfileMinJobs+1; round++ {
		for i, shape := range shapes {
			req := shape.New(rand.New(rand.NewSource(int64(round*100 + i))))
			if err := req.RunVerify(context.Background(), srv, "warmup"); err != nil {
				return fmt.Errorf("warmup shape %s: %w", shape.Name, err)
			}
		}
	}
	if got, want := srv.Stats().Profile.Recompiles, uint64(len(shapes)); got != want {
		return fmt.Errorf("warmup did not converge: %d profile-guided recompiles, want %d (one per shape)", got, want)
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		hits      int
		profiled  int
	)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for t := 0; t < tenants; t++ {
		t := t
		tenant := fmt.Sprintf("tenant-%d", t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// K closed loops per tenant: each submits, waits, verifies,
			// repeats — K jobs in flight per tenant at all times.
			var tw sync.WaitGroup
			terrs := make([]error, inflight)
			for k := 0; k < inflight; k++ {
				k := k
				share := jobs / inflight
				if k < jobs%inflight {
					share++
				}
				tw.Add(1)
				go func() {
					defer tw.Done()
					rng := rand.New(rand.NewSource(int64(t*1000 + k)))
					for i := 0; i < share; i++ {
						shape := shapes[(i+k)%len(shapes)]
						req := shape.New(rng)
						jobStart := time.Now()
						res, err := req.Submit(context.Background(), srv, tenant)
						if err == nil {
							err = req.Verify(res)
						}
						if err != nil {
							terrs[k] = fmt.Errorf("%s job %d (%s): %w", tenant, i, shape.Name, err)
							return
						}
						lat := time.Since(jobStart)
						mu.Lock()
						latencies = append(latencies, lat)
						if res.Compile.CacheHit {
							hits++
						}
						if res.Compile.ProfiledPlan {
							profiled++
						}
						mu.Unlock()
					}
				}()
			}
			tw.Wait()
			for _, err := range terrs {
				if err != nil {
					errs[t] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	st := srv.Stats()
	total := len(latencies)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if total == 0 {
			return 0
		}
		i := int(p * float64(total-1))
		return latencies[i]
	}
	jobsPerSec := float64(total) / wall.Seconds()
	hitRate := float64(hits) / float64(total)

	fmt.Printf("serving demo: %d tenants × %d jobs (%d in flight each) over %d channels, %d shapes × %d elements\n",
		tenants, jobs, inflight, channels, len(shapes), elems)
	fmt.Printf("  throughput:         %8.0f jobs/s  (%d jobs in %v, all verified against references)\n",
		jobsPerSec, total, wall.Round(time.Millisecond))
	fmt.Printf("  latency:            p50 %8.2f ms, p99 %8.2f ms\n",
		float64(pct(0.50).Microseconds())/1e3, float64(pct(0.99).Microseconds())/1e3)
	fmt.Printf("  plan cache:         %.1f%% hit rate in steady state (%d hits / %d jobs; %d plans cached, %s eviction: %d evicted, %d hot)\n",
		100*hitRate, hits, total, st.Cache.Size, st.Cache.Policy, st.Cache.Evicted, st.Cache.EvictedHot)
	fmt.Printf("  profile feedback:   %d shapes recompiled from measured profiles (%d jobs folded in); %d/%d steady-state jobs ran profiled plans\n",
		st.Profile.Recompiles, st.Profile.Jobs, profiled, total)
	fmt.Printf("  admission:          %d submitted, %d completed, %d rejected, %d canceled\n",
		st.Submitted, st.Completed, st.Rejected, st.Canceled)
	fmt.Printf("  per-tenant utilization: ")
	names := make([]string, 0, len(st.Tenants))
	for name := range st.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	shown := 0
	for _, name := range names {
		if name == "warmup" {
			continue
		}
		if shown > 0 {
			fmt.Printf(", ")
		}
		fmt.Printf("%s %.2f", name, st.Tenants[name].Utilization)
		shown++
	}
	fmt.Println()

	m["serve.jobs"] = float64(total)
	m["serve.jobs_per_sec"] = jobsPerSec
	m["serve.p50_ms"] = float64(pct(0.50).Microseconds()) / 1e3
	m["serve.p99_ms"] = float64(pct(0.99).Microseconds()) / 1e3
	m["serve.cache_hit_rate"] = hitRate
	m["serve.plans_cached"] = float64(st.Cache.Size)
	m["serve.evicted"] = float64(st.Cache.Evicted)
	m["serve.evicted_hot"] = float64(st.Cache.EvictedHot)
	m["serve.recompiles"] = float64(st.Profile.Recompiles)
	m["serve.profiled_jobs"] = float64(profiled)
	// Informational only: the gated host.* keys come from the -graph
	// demo's JSON (perfcheck merges files last-write-wins).
	if err := reportHostPerf(m, "serve.host_"); err != nil {
		return err
	}

	if hitRate < 0.90 {
		return fmt.Errorf("serving demo regressed: plan-cache hit rate %.1f%% on repeated request shapes, want >= 90%%", 100*hitRate)
	}
	if profiled != total {
		return fmt.Errorf("serving demo regressed: %d of %d steady-state jobs ran profiled plans, want all (profile-guided recompile converged during warmup)", profiled, total)
	}
	return nil
}
