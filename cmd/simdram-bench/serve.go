package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"simdram"
	"simdram/internal/batchgen"
)

// runServeDemo is the closed-loop throughput demo of the serving
// layer: N tenants, each keeping K jobs in flight, each job one of a
// small set of kernel request shapes (brightness, BitWeaving scan,
// TPC-H Q6) with a fresh random payload. Every result is verified
// against its pure-Go reference, so the demo is also a differential
// test of the cached-plan path under real concurrency.
//
// The demo runs with full trace sampling and a flight-recorder ring
// deep enough to retain every steady-state job, then audits the
// observability contract: every job has a span tree, every span tree
// has exactly the steady-state span count (all-cache-hit jobs have a
// fixed structure), and each tree's top-level span durations sum to
// the job's reported latency split within tolerance. Latency
// percentiles come from the server's log-scale registry histograms —
// the same numbers an operator reads off the debug endpoint — not
// from a demo-side sort of collected samples.
// The demo also exercises the device-telemetry layer: every tenant's
// per-job batch stats are re-summed demo-side and cross-checked
// against the server's attribution bills (tenant.energy_pj,
// tenant.dram_ns), channel bills must sum to tenant bills, and a
// deliberately slow "slowpoke" tenant trips a configured run_p99 SLO
// whose burn-rate event must land in the flight recorder. With
// -telemetry-addr the demo serves /metrics (Prometheus exposition) and
// /debug/simdram (JSON) while it runs, and -telemetry-hold keeps the
// endpoint up afterwards for scrapers.
func runServeDemo(tenants, jobs, inflight, channels, traceJobs int, telemetryAddr string, telemetryHold time.Duration, m metrics) error {
	if tenants < 1 || jobs < 1 || inflight < 1 || channels < 1 {
		return fmt.Errorf("-serve needs positive -tenants/-jobs/-inflight/-channels")
	}
	if inflight > jobs {
		inflight = jobs
	}
	// The SLO the slowpoke tenant will breach: its p99 run time must
	// stay under 2ms over a trailing 30s, and the induced jobs sleep
	// far longer than that.
	const slowpokeTargetNs = 2 * int64(time.Millisecond)
	cfg := simdram.DefaultServerConfig(channels)
	cfg.SLOs = []simdram.SLO{
		{Tenant: "slowpoke", Metric: "run_p99", TargetNs: slowpokeTargetNs, Window: 30 * time.Second},
	}
	// Request-sized lanes: serving jobs are small; a slimmer geometry
	// keeps the host-side transposition cost proportionate. At 256
	// lanes per subarray a 2048-element vector spans 8 segments over 4
	// banks, so every instruction's measured latency is 2× the static
	// per-subarray cost model — the divergence that drives the
	// profile-guided recompile path the demo exercises.
	cfg.Channel.DRAM.Cols = 256
	cfg.QueueDepth = tenants*inflight + channels
	// Trace every job, and retain every steady-state trace: the audit
	// below walks all of them.
	cfg.TraceSampling = 1.0
	cfg.TraceDepth = tenants*jobs + 16
	// Verify every compiled plan before it is published to the cache.
	cfg.VerifyPlans = true
	srv, err := simdram.NewServer(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	if telemetryAddr != "" {
		ln, err := net.Listen("tcp", telemetryAddr)
		if err != nil {
			return fmt.Errorf("-telemetry-addr: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		mux.Handle("/debug/simdram", srv.DebugHandler())
		hs := &http.Server{Handler: mux}
		go hs.Serve(ln)
		defer hs.Close()
		fmt.Printf("telemetry: serving /metrics and /debug/simdram on http://%s\n", ln.Addr())
	}

	const elems = 2048
	shapes := batchgen.ServeShapes(elems)

	// Warm the cache serially: round 1 is each shape's cold compile;
	// rounds 2..MinJobs reuse the plan while folding measured per-op
	// latencies into the shape's profile; round MinJobs+1 observes the
	// diverged profile and recompiles the plan with observed costs.
	// After this every job in the timed loop hits the profiled plan, so
	// both the steady-state hit rate and the recompile count are
	// deterministic.
	for round := 0; round < simdram.DefaultProfileMinJobs+1; round++ {
		for i, shape := range shapes {
			req := shape.New(rand.New(rand.NewSource(int64(round*100 + i))))
			if err := req.RunVerify(context.Background(), srv, "warmup"); err != nil {
				return fmt.Errorf("warmup shape %s: %w", shape.Name, err)
			}
		}
	}
	if got, want := srv.Stats().Profile.Recompiles, uint64(len(shapes)); got != want {
		return fmt.Errorf("warmup did not converge: %d profile-guided recompiles, want %d (one per shape)", got, want)
	}
	// Drop warmup traces (cold compiles and recompiles carry an extra
	// "schedule" span): the measurement window retains only
	// steady-state span trees, whose structure is deterministic.
	srv.ResetTraces()

	// jobLat records one steady job's reported latency split, keyed by
	// its trace for the span-sum audit.
	type jobLat struct {
		traceID        uint64
		queueNs, runNs int64
	}
	var (
		mu       sync.Mutex
		lats     []jobLat
		hits     int
		profiled int
		// Demo-side re-aggregation of each tenant's batch stats, for the
		// cross-check against the server's attribution bills.
		demoEnergy = map[string]float64{}
		demoDRAM   = map[string]float64{}
	)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for t := 0; t < tenants; t++ {
		t := t
		tenant := fmt.Sprintf("tenant-%d", t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// K closed loops per tenant: each submits, waits, verifies,
			// repeats — K jobs in flight per tenant at all times.
			var tw sync.WaitGroup
			terrs := make([]error, inflight)
			for k := 0; k < inflight; k++ {
				k := k
				share := jobs / inflight
				if k < jobs%inflight {
					share++
				}
				tw.Add(1)
				go func() {
					defer tw.Done()
					rng := rand.New(rand.NewSource(int64(t*1000 + k)))
					for i := 0; i < share; i++ {
						shape := shapes[(i+k)%len(shapes)]
						req := shape.New(rng)
						res, err := req.Submit(context.Background(), srv, tenant)
						if err == nil {
							err = req.Verify(res)
						}
						if err != nil {
							terrs[k] = fmt.Errorf("%s job %d (%s): %w", tenant, i, shape.Name, err)
							return
						}
						mu.Lock()
						lats = append(lats, jobLat{traceID: res.TraceID, queueNs: res.QueueNs, runNs: res.RunNs})
						demoEnergy[tenant] += res.Batch.EnergyPJ
						demoDRAM[tenant] += res.Batch.CriticalPathNs
						if res.Compile.CacheHit {
							hits++
						}
						if res.Compile.ProfiledPlan {
							profiled++
						}
						mu.Unlock()
					}
				}()
			}
			tw.Wait()
			for _, err := range terrs {
				if err != nil {
					errs[t] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	st := srv.Stats()
	total := len(lats)
	jobsPerSec := float64(total) / wall.Seconds()
	hitRate := float64(hits) / float64(total)

	// Latency quantiles from the registry histograms (sched.* series:
	// per-job queue wait, run time, and end-to-end). These include the
	// serial warmup jobs — the same shapes on the same channels — so
	// they are the honest whole-run distributions an operator would see.
	hist := map[string]metricPoint{}
	for _, p := range srv.Metrics() {
		hist[p.Name] = metricPoint{p50: p.P50, p99: p.P99, p999: p.P999, count: p.Value}
	}
	jobH, queueH := hist["sched.job_ns"], hist["sched.queue_ns"]
	if jobH.count == 0 || queueH.count == 0 {
		return fmt.Errorf("serving demo: sched.job_ns/sched.queue_ns histograms are empty")
	}

	// Observability audit 1: the recorder retained one span tree per
	// steady-state job, and every tree has the deterministic
	// steady-state span count (job, queue, compile, cache-lookup,
	// lower, prepare, resolve, execute, run, gather = 10 — cold
	// compiles and recompiles, which add "schedule", all happened
	// before ResetTraces).
	traces := srv.Traces()
	if len(traces) != total {
		return fmt.Errorf("serving demo: flight recorder retained %d traces for %d steady-state jobs", len(traces), total)
	}
	byID := make(map[uint64]simdram.JobTrace, len(traces))
	totalSpans := 0
	for _, jt := range traces {
		byID[jt.ID] = jt
		totalSpans += len(jt.Spans)
	}
	spansPerJob := float64(totalSpans) / float64(len(traces))
	if spansPerJob != 10 {
		return fmt.Errorf("serving demo: %.2f spans per steady-state job, want exactly 10 (all jobs are cache hits)", spansPerJob)
	}

	// Observability audit 2: for every job, the top-level span
	// durations must sum to the job's reported latency split
	// (QueueNs + RunNs) within tolerance — the trace and the ticket
	// measure the same pipeline on different clocks.
	for _, jl := range lats {
		jt, ok := byID[jl.traceID]
		if !ok {
			return fmt.Errorf("serving demo: job's trace %d not in the recorder", jl.traceID)
		}
		var sum int64
		for _, sp := range jt.Spans {
			if sp.Parent == 0 {
				sum += sp.DurNs()
			}
		}
		totalNs := jl.queueNs + jl.runNs
		slack := totalNs / 4
		if slack < 500_000 {
			slack = 500_000 // host-scheduling noise floor on short jobs
		}
		if diff := sum - totalNs; diff > slack || diff < -slack {
			return fmt.Errorf("serving demo: trace %d span sum %dns vs job latency %dns (slack %dns)",
				jl.traceID, sum, totalNs, slack)
		}
	}
	if queueH.p99 <= 0 {
		return fmt.Errorf("serving demo: p99 queue wait is zero — queue histogram not populated")
	}

	// SLO audit: the slowpoke tenant submits a few raw jobs that sleep
	// well past the configured 2ms p99 target, which must trip the SLO
	// and land an edge-triggered burn-rate event in the flight recorder.
	// (Induced after the trace audits: raw jobs have their own span
	// structure.)
	for i := 0; i < 3; i++ {
		fut, err := srv.Submit(context.Background(), "slowpoke", func(sys *simdram.System, cancel <-chan struct{}) error {
			time.Sleep(4 * time.Duration(slowpokeTargetNs))
			return nil
		})
		if err != nil {
			return fmt.Errorf("serving demo: slowpoke submit: %w", err)
		}
		if _, err := fut.Wait(); err != nil {
			return fmt.Errorf("serving demo: slowpoke job: %w", err)
		}
	}
	var slowpoke simdram.SLOStatus
	for _, st := range srv.SLOStatus() {
		if st.SLO.Tenant == "slowpoke" {
			slowpoke = st
		}
	}
	if !slowpoke.Breaching || slowpoke.BurnRate <= 1 {
		return fmt.Errorf("serving demo: slowpoke SLO did not trip: %+v", slowpoke)
	}
	sloEvents := 0
	for _, ev := range srv.Events() {
		if ev.Kind == "slo" {
			sloEvents++
		}
	}
	if sloEvents == 0 {
		return fmt.Errorf("serving demo: SLO breach emitted no burn-rate event into the flight recorder")
	}

	// Attribution audit: the server's device bills are an independent
	// pipeline (per-bank attribution summed through the registry); they
	// must agree with the demo's own re-aggregation of each tenant's
	// batch stats, and the channel bills must sum to the tenant bills.
	dev := srv.DeviceStats()
	relDiff := func(a, b float64) float64 {
		if a == b {
			return 0
		}
		return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
	}
	var steadyEnergy float64
	for tenant, want := range demoEnergy {
		bill, ok := dev.Tenants[tenant]
		if !ok {
			return fmt.Errorf("serving demo: tenant %s has no device bill", tenant)
		}
		if relDiff(bill.EnergyPJ, want) > 1e-9 {
			return fmt.Errorf("serving demo: tenant %s billed %.3f pJ, its batches reported %.3f pJ", tenant, bill.EnergyPJ, want)
		}
		if relDiff(bill.DRAMNs, demoDRAM[tenant]) > 1e-9 {
			return fmt.Errorf("serving demo: tenant %s billed %.3f DRAM-ns, its batches reported %.3f", tenant, bill.DRAMNs, demoDRAM[tenant])
		}
		steadyEnergy += want
	}
	var chanEnergy, chanBusy, billedTotal float64
	for _, ch := range dev.Channels {
		chanEnergy += ch.EnergyPJ
		chanBusy += ch.BusyNs
	}
	var tenantEnergy float64
	for _, bill := range dev.Tenants {
		tenantEnergy += bill.EnergyPJ
		billedTotal += bill.DRAMNs
	}
	if relDiff(chanEnergy, tenantEnergy) > 1e-9 {
		return fmt.Errorf("serving demo: channel energy bills sum to %.3f pJ, tenant bills to %.3f pJ", chanEnergy, tenantEnergy)
	}

	fmt.Printf("serving demo: %d tenants × %d jobs (%d in flight each) over %d channels, %d shapes × %d elements\n",
		tenants, jobs, inflight, channels, len(shapes), elems)
	fmt.Printf("  throughput:         %8.0f jobs/s  (%d jobs in %v, all verified against references)\n",
		jobsPerSec, total, wall.Round(time.Millisecond))
	fmt.Printf("  latency (histogram): p50 %8.2f ms, p99 %8.2f ms, p999 %8.2f ms; queue p99 %.2f ms\n",
		float64(jobH.p50)/1e6, float64(jobH.p99)/1e6, float64(jobH.p999)/1e6, float64(queueH.p99)/1e6)
	fmt.Printf("  tracing:            %d span trees retained (%.0f spans/job, every steady-state job audited against its latency split)\n",
		len(traces), spansPerJob)
	fmt.Printf("  plan cache:         %.1f%% hit rate in steady state (%d hits / %d jobs; %d plans cached, %s eviction: %d evicted, %d hot)\n",
		100*hitRate, hits, total, st.Cache.Size, st.Cache.Policy, st.Cache.Evicted, st.Cache.EvictedHot)
	fmt.Printf("  profile feedback:   %d shapes recompiled from measured profiles (%d jobs folded in); %d/%d steady-state jobs ran profiled plans\n",
		st.Profile.Recompiles, st.Profile.Jobs, profiled, total)
	fmt.Printf("  admission:          %d submitted, %d completed, %d rejected, %d canceled\n",
		st.Submitted, st.Completed, st.Rejected, st.Canceled)
	fmt.Printf("  device telemetry:   ")
	for i, ch := range dev.Channels {
		if i > 0 {
			fmt.Printf(", ")
		}
		fmt.Printf("ch%d %.1fµs busy / %.2fnJ / %d cmds (util %.2f)",
			ch.Channel, ch.BusyNs/1e3, ch.EnergyPJ/1e3, ch.Commands, ch.Utilization)
	}
	fmt.Println()
	// Per-tenant utilization from the attribution bills (each tenant's
	// share of all billed DRAM time), cross-checked against the
	// scheduler's independently-modeled time: >1% divergence between the
	// two pipelines is a billing bug, not noise.
	fmt.Printf("  per-tenant p99 run: ")
	names := make([]string, 0, len(st.Tenants))
	for name := range st.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	shown := 0
	var diverged []string
	for _, name := range names {
		if name == "warmup" || name == "slowpoke" {
			continue
		}
		if shown > 0 {
			fmt.Printf(", ")
		}
		ts := st.Tenants[name]
		util := 0.0
		if billedTotal > 0 {
			util = dev.Tenants[name].DRAMNs / billedTotal
		}
		fmt.Printf("%s %.2fms (util %.2f)", name, float64(ts.RunP99Ns)/1e6, util)
		if ts.ModeledNs > 0 && relDiff(ts.BilledNs, ts.ModeledNs) > 0.01 {
			fmt.Printf(" [BILLING DIVERGED: billed %.0fns vs modeled %.0fns]", ts.BilledNs, ts.ModeledNs)
			diverged = append(diverged, name)
		}
		shown++
	}
	fmt.Println()
	fmt.Printf("  slo:                slowpoke run_p99 %.2fms > %.2fms target, burn %.0fx over %d samples (%d event)\n",
		float64(slowpoke.CurrentNs)/1e6, float64(slowpokeTargetNs)/1e6, slowpoke.BurnRate, slowpoke.Samples, sloEvents)
	printTraces(srv, traceJobs)

	if len(diverged) > 0 {
		return fmt.Errorf("serving demo: tenants %v: billed DRAM time diverges >1%% from the scheduler's modeled time", diverged)
	}

	m["serve.jobs"] = float64(total)
	m["serve.jobs_per_sec"] = jobsPerSec
	m["serve.p50_ms"] = float64(jobH.p50) / 1e6
	m["serve.p99_ms"] = float64(jobH.p99) / 1e6
	m["serve.p999_ms"] = float64(jobH.p999) / 1e6
	m["serve.p99_queue_ns"] = float64(queueH.p99)
	m["serve.trace_ring_depth"] = float64(len(traces))
	m["serve.spans_per_job"] = spansPerJob
	m["serve.cache_hit_rate"] = hitRate
	m["serve.plans_cached"] = float64(st.Cache.Size)
	m["serve.evicted"] = float64(st.Cache.Evicted)
	m["serve.evicted_hot"] = float64(st.Cache.EvictedHot)
	m["serve.recompiles"] = float64(st.Profile.Recompiles)
	m["serve.profiled_jobs"] = float64(profiled)
	// Deterministic: per-command energy is data-independent, so the
	// steady-state shape mix fixes the attributed energy per job.
	m["serve.energy_pj_per_job"] = steadyEnergy / float64(total)
	m["serve.slo_burn_events"] = float64(sloEvents)
	m["verify.plans_checked"] = float64(srv.VerifiedPlans())
	// Informational only: the gated host.* keys come from the -graph
	// demo's JSON (perfcheck merges files last-write-wins).
	if err := reportHostPerf(m, "serve.host_"); err != nil {
		return err
	}

	if hitRate < 0.90 {
		return fmt.Errorf("serving demo regressed: plan-cache hit rate %.1f%% on repeated request shapes, want >= 90%%", 100*hitRate)
	}
	if profiled != total {
		return fmt.Errorf("serving demo regressed: %d of %d steady-state jobs ran profiled plans, want all (profile-guided recompile converged during warmup)", profiled, total)
	}
	if telemetryAddr != "" && telemetryHold > 0 {
		fmt.Printf("holding telemetry endpoint for %s (ctrl-c to stop early)\n", telemetryHold)
		time.Sleep(telemetryHold)
	}
	return nil
}

// metricPoint is the slice of a registry histogram the demo reads.
type metricPoint struct {
	p50, p99, p999 int64
	count          float64
}

// printTraces renders up to n of the flight recorder's span trees as
// indented trees with durations — the -trace-jobs output.
func printTraces(srv *simdram.Server, n int) {
	if n <= 0 {
		return
	}
	traces := srv.Traces()
	if n > len(traces) {
		n = len(traces)
	}
	fmt.Printf("  span trees (last %d of %d traced jobs):\n", n, len(traces))
	for _, jt := range traces[len(traces)-n:] {
		printTrace(jt)
	}
}

func printTrace(jt simdram.JobTrace) {
	// Children in creation order, which is also execution order.
	children := make([][]int, len(jt.Spans))
	for i, sp := range jt.Spans {
		if i == 0 {
			continue
		}
		children[sp.Parent] = append(children[sp.Parent], i)
	}
	var walk func(i, depth int)
	walk = func(i, depth int) {
		sp := jt.Spans[i]
		ch := ""
		if sp.Channel >= 0 {
			ch = fmt.Sprintf(" [channel %d]", sp.Channel)
		}
		fmt.Printf("    %*s%-12s %10.1fµs%s\n", 2*depth, "", sp.Name, float64(sp.DurNs())/1e3, ch)
		for _, c := range children[i] {
			walk(c, depth+1)
		}
	}
	status := "ok"
	if jt.Err != "" {
		status = "error: " + jt.Err
	}
	fmt.Printf("    trace %d (%s)\n", jt.ID, status)
	walk(0, 1)
}
