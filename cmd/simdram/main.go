// simdram runs one SIMDRAM operation on random vectors inside the DRAM
// simulator, verifies the result against the golden model, and prints
// the command/latency/energy accounting — a quick way to poke at the
// framework.
//
// Usage:
//
//	simdram -op addition -width 32 -n 100000
//	simdram -op greater  -width 16 -n 1000000 -variant ambit
//	simdram -list
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"simdram"
	"simdram/internal/ops"
)

func main() {
	opName := flag.String("op", "addition", "operation to run (see -list)")
	width := flag.Int("width", 32, "element width in bits")
	n := flag.Int("n", 100000, "number of elements")
	seed := flag.Int64("seed", 42, "data seed")
	variant := flag.String("variant", "simdram", "execution variant: simdram | ambit")
	list := flag.Bool("list", false, "list available operations and exit")
	flag.Parse()

	if *list {
		for _, name := range simdram.Operations() {
			fmt.Println(name)
		}
		return
	}
	if err := run(*opName, *width, *n, *seed, *variant); err != nil {
		fmt.Fprintln(os.Stderr, "simdram:", err)
		os.Exit(1)
	}
}

func run(opName string, width, n int, seed int64, variant string) error {
	d, err := ops.ByName(opName)
	if err != nil {
		return err
	}
	cfg := simdram.DefaultConfig()
	switch variant {
	case "simdram":
	case "ambit":
		cfg.Variant = ops.VariantAmbit
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}
	sys, err := simdram.New(cfg)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(seed))
	widths := d.SourceWidths(width, 3)
	srcs := make([]*simdram.Vector, len(widths))
	vals := make([][]uint64, len(widths))
	for k := range srcs {
		mask := ^uint64(0)
		if widths[k] < 64 {
			mask = (uint64(1) << uint(widths[k])) - 1
		}
		vals[k] = make([]uint64, n)
		for i := range vals[k] {
			vals[k][i] = rng.Uint64() & mask
		}
		if srcs[k], err = sys.AllocVector(n, widths[k]); err != nil {
			return err
		}
		if err := srcs[k].Store(vals[k]); err != nil {
			return err
		}
	}
	dst, err := sys.AllocVector(n, d.DstWidth(width))
	if err != nil {
		return err
	}
	st, err := sys.Run(opName, dst, srcs...)
	if err != nil {
		return err
	}
	got, err := dst.Load()
	if err != nil {
		return err
	}
	mismatches := 0
	args := make([]uint64, len(srcs))
	for i := 0; i < n; i++ {
		for k := range args {
			args[k] = vals[k][i]
		}
		if got[i] != d.Golden(args, width) {
			mismatches++
		}
	}
	fmt.Printf("operation      %s (%d-bit, %d elements, %s variant)\n", opName, width, n, variant)
	fmt.Printf("lanes          %d bitlines across %d banks\n", sys.Lanes(), sys.Config().DRAM.Banks)
	fmt.Printf("commands       %d DRAM row commands\n", st.Commands)
	fmt.Printf("latency        %.2f µs\n", st.LatencyNs/1e3)
	fmt.Printf("energy         %.2f µJ (%.1f pJ/element)\n", st.EnergyPJ/1e6, st.EnergyPJ/float64(n))
	fmt.Printf("throughput     %.2f Gops/s at this geometry\n", float64(n)/st.LatencyNs)
	if mismatches != 0 {
		return fmt.Errorf("%d/%d elements mismatch the golden model", mismatches, n)
	}
	fmt.Printf("verification   all %d results match the golden model\n", n)
	return nil
}
