// Command simdramlint runs the repo's custom static analyses — the
// //simdram:zeroalloc hot-path allocation checker and the
// //simdram:nilsafe observability nil-contract checker — over
// module-local packages. It loads and type-checks everything from
// source with only the standard library, so it runs in the same
// offline sandbox as the tests.
//
// Usage:
//
//	go run ./cmd/simdramlint [packages]
//
// Package arguments are directories, optionally ending in /... to
// recurse (default ./...). Findings print as
// path:line:col: [analyzer] message; any finding exits nonzero.
package main

import (
	"errors"
	"flag"
	"fmt"
	"go/build"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"simdram/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simdramlint [dir|dir/...]...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "simdramlint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := expand(args)
	if err != nil {
		return err
	}
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return err
	}
	var findings []lint.Finding
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			var noGo *build.NoGoError
			if errors.As(err, &noGo) {
				continue // directory holds no buildable Go files
			}
			return err
		}
		fs, err := lint.Run(pkg, lint.All())
		if err != nil {
			return err
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	return nil
}

// expand resolves the directory arguments, recursing under /...
// patterns while skipping testdata (analyzer fixtures contain seeded
// violations), hidden directories, and vendor trees.
func expand(args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		clean := filepath.Clean(dir)
		if !seen[clean] {
			seen[clean] = true
			dirs = append(dirs, clean)
		}
	}
	for _, arg := range args {
		pattern, recursive := strings.CutSuffix(arg, "/...")
		if pattern == "" {
			pattern = "."
		}
		if !recursive {
			add(pattern)
			continue
		}
		err := filepath.WalkDir(pattern, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if name == "testdata" || name == "vendor" || (strings.HasPrefix(name, ".") && path != pattern) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
