// simdram-synth exposes the SIMDRAM synthesis pipeline: it lowers an
// operation through Step 1 (gate circuit → optimized MIG) and Step 2
// (MIG → μProgram) and prints what each step produced — sizes, depths,
// command counts, and optionally the full μProgram listing.
//
// Usage:
//
//	simdram-synth -op addition -width 8
//	simdram-synth -op max -width 16 -variant ambit -dump
package main

import (
	"flag"
	"fmt"
	"os"

	"simdram/internal/dram"
	"simdram/internal/mig"
	"simdram/internal/ops"
	"simdram/internal/rowhammer"
)

func main() {
	opName := flag.String("op", "addition", "operation to synthesize")
	width := flag.Int("width", 8, "element width in bits")
	n := flag.Int("n", 3, "operand count for N-ary operations")
	variantName := flag.String("variant", "simdram", "simdram | ambit | no-optimize | no-reuse")
	dump := flag.Bool("dump", false, "print the full μProgram listing")
	dot := flag.Bool("dot", false, "emit the optimized MIG as Graphviz DOT and exit")
	hammer := flag.Bool("rowhammer", false, "print the RowHammer exposure report")
	flag.Parse()

	if err := run(*opName, *width, *n, *variantName, *dump, *dot, *hammer); err != nil {
		fmt.Fprintln(os.Stderr, "simdram-synth:", err)
		os.Exit(1)
	}
}

func run(opName string, width, n int, variantName string, dump, dot, hammer bool) error {
	d, err := ops.ByName(opName)
	if err != nil {
		return err
	}
	var variant ops.Variant
	switch variantName {
	case "simdram":
		variant = ops.VariantSIMDRAM
	case "ambit":
		variant = ops.VariantAmbit
	case "no-optimize":
		variant = ops.VariantNoOptimize
	case "no-reuse":
		variant = ops.VariantNoReuse
	default:
		return fmt.Errorf("unknown variant %q", variantName)
	}
	s, err := ops.Synthesize(d, width, n, variant)
	if err != nil {
		return err
	}
	if dot {
		return s.MIG.WriteDOT(os.Stdout, fmt.Sprintf("%s_%d", d.Name, width))
	}
	// Unoptimized MIG for the Step-1 comparison.
	raw, err := mig.FromCircuit(s.Circuit)
	if err != nil {
		return err
	}
	raw.Compact()
	tm := dram.DDR4_2400()
	e := dram.DDR4Energy()

	fmt.Printf("operation   %s, %d-bit, variant %s\n\n", d.Name, width, variant)
	fmt.Printf("step 0      gate circuit: %d gates, depth %d\n", s.Circuit.GateCount(), s.Circuit.Depth())
	fmt.Printf("step 1      raw MIG:       %d MAJ, depth %d, %d inverters\n", raw.Size(), raw.Depth(), raw.InverterCount())
	fmt.Printf("            final MIG:     %d MAJ, depth %d, %d inverters\n", s.MIG.Size(), s.MIG.Depth(), s.MIG.InverterCount())
	fmt.Printf("step 2      μprogram:      %d commands (%d AAP-class, %d AP), %d scratch rows\n",
		len(s.Program.Ops), s.Program.NumAAP(), s.Program.NumAP(), s.Program.NumScratch)
	fmt.Printf("cost        %.0f ns latency, %.1f nJ per subarray batch (%.2f pJ/element at 65536 lanes)\n",
		s.Program.LatencyNs(tm), s.Program.EnergyPJ(e)/1e3, s.Program.EnergyPJ(e)/65536)
	if hammer {
		fmt.Println()
		rep := rowhammer.Analyze(s.Program, tm)
		fmt.Print(rep.String())
		if rep.Exceeds(rowhammer.ThresholdDDR4) {
			fmt.Printf("exceeds the DDR4 threshold (%d): the control unit must refresh %d neighbor rows per window\n",
				rowhammer.ThresholdDDR4, rep.MitigationRefreshes(rowhammer.ThresholdDDR4))
		}
	}
	if dump {
		fmt.Println()
		fmt.Print(s.Program.String())
	}
	return nil
}
