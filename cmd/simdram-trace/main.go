// simdram-trace executes one SIMDRAM operation in the simulator and
// dumps the physical DRAM command trace it produced — the raw ACTIVATE
// stream a memory-systems researcher would inspect or replay in an
// external DRAM simulator — plus the per-row activation histogram that
// feeds RowHammer analysis.
//
// Usage:
//
//	simdram-trace -op addition -width 8 -n 1000
//	simdram-trace -op greater -width 16 -limit 40
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"simdram"
	"simdram/internal/ops"
	"simdram/internal/trace"
)

func main() {
	opName := flag.String("op", "addition", "operation to trace")
	width := flag.Int("width", 8, "element width in bits")
	n := flag.Int("n", 1000, "number of elements")
	limit := flag.Int("limit", 60, "commands to print (0 = all)")
	flag.Parse()
	if err := run(*opName, *width, *n, *limit); err != nil {
		fmt.Fprintln(os.Stderr, "simdram-trace:", err)
		os.Exit(1)
	}
}

func run(opName string, width, n, limit int) error {
	d, err := ops.ByName(opName)
	if err != nil {
		return err
	}
	cfg := simdram.DefaultConfig()
	sys, err := simdram.New(cfg)
	if err != nil {
		return err
	}
	log := trace.NewLog(limit)
	log.AttachModule(sys.Module())

	rng := rand.New(rand.NewSource(1))
	widths := d.SourceWidths(width, 3)
	srcs := make([]*simdram.Vector, len(widths))
	for k, w := range widths {
		mask := ^uint64(0)
		if w < 64 {
			mask = (uint64(1) << uint(w)) - 1
		}
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() & mask
		}
		if srcs[k], err = sys.AllocVector(n, w); err != nil {
			return err
		}
		if err := srcs[k].Store(vals); err != nil {
			return err
		}
	}
	dst, err := sys.AllocVector(n, d.DstWidth(width))
	if err != nil {
		return err
	}
	if _, err := sys.Run(opName, dst, srcs...); err != nil {
		return err
	}

	fmt.Printf("command trace: %s, %d-bit, %d elements (%d commands total, showing %d)\n\n",
		opName, width, n, log.Total(), len(log.Events()))
	if err := log.WriteText(os.Stdout); err != nil {
		return err
	}

	hist := log.ActivationHistogram()
	type rowCount struct {
		row int
		n   int64
	}
	var rows []rowCount
	for r, c := range hist {
		rows = append(rows, rowCount{r, c})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Printf("\nhottest rows (of %d stored commands):\n", len(log.Events()))
	for i, rc := range rows {
		if i >= 8 {
			break
		}
		fmt.Printf("  row %4d: %6d activations\n", rc.row, rc.n)
	}
	return nil
}
