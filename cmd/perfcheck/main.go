// perfcheck is the CI performance-regression gate: it compares the
// machine-readable metrics emitted by `simdram-bench -json` against
// the committed baseline (BENCH_baseline.json) and fails when any
// gated metric regresses beyond its tolerance.
//
// Usage:
//
//	perfcheck -baseline BENCH_baseline.json out1.json [out2.json ...]
//
// The baseline declares, per metric, the expected value, the
// direction in which change is a regression ("lower" means lower is
// better, so a rise regresses; "higher" the opposite), and optionally
// a per-metric tolerance overriding the file-wide default. Only
// deterministic metrics belong in the baseline — modeled latencies,
// scaling ratios, cache hit rates — never wall-clock throughput,
// which shared CI runners make unreliably noisy.
//
// A metric present in the baseline but absent from every result file
// is an error: a silently skipped demo must not pass the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type baseline struct {
	// Tolerance is the file-wide allowed relative regression (0.15 =
	// 15%).
	Tolerance float64                   `json:"tolerance"`
	Metrics   map[string]baselineMetric `json:"metrics"`
}

type baselineMetric struct {
	Value     float64 `json:"value"`
	Direction string  `json:"direction"`           // "lower" or "higher" (is better)
	Tolerance float64 `json:"tolerance,omitempty"` // overrides the file-wide value
}

type results struct {
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	basePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline thresholds")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "perfcheck: no result files given")
		os.Exit(2)
	}

	var base baseline
	if err := readJSON(*basePath, &base); err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: baseline: %v\n", err)
		os.Exit(2)
	}
	if base.Tolerance <= 0 {
		base.Tolerance = 0.15
	}

	got := map[string]float64{}
	for _, path := range flag.Args() {
		var r results
		if err := readJSON(path, &r); err != nil {
			fmt.Fprintf(os.Stderr, "perfcheck: %v\n", err)
			os.Exit(2)
		}
		for name, v := range r.Metrics {
			got[name] = v
		}
	}

	names := make([]string, 0, len(base.Metrics))
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		bm := base.Metrics[name]
		tol := bm.Tolerance
		if tol <= 0 {
			tol = base.Tolerance
		}
		v, ok := got[name]
		if !ok {
			fmt.Printf("MISSING  %-28s baseline %.4g — metric not in any result file\n", name, bm.Value)
			failed = true
			continue
		}
		var regressed bool
		var bound float64
		switch bm.Direction {
		case "lower": // lower is better: a rise beyond tolerance regresses
			bound = bm.Value * (1 + tol)
			regressed = v > bound
		case "higher": // higher is better: a drop beyond tolerance regresses
			bound = bm.Value * (1 - tol)
			regressed = v < bound
		default:
			fmt.Fprintf(os.Stderr, "perfcheck: metric %s: unknown direction %q\n", name, bm.Direction)
			os.Exit(2)
		}
		status := "ok"
		if regressed {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-9s%-28s %12.4g  (baseline %.4g, %s is better, tolerance %.0f%%)\n",
			status, name, v, bm.Value, bm.Direction, 100*tol)
	}
	if failed {
		fmt.Println("perfcheck: FAIL — performance regressed beyond tolerance (or a gated demo did not run)")
		os.Exit(1)
	}
	fmt.Println("perfcheck: all gated metrics within tolerance")
}

func readJSON(path string, into any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, into); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
