package simdram

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// testServer builds a small server for unit tests.
func testServer(t testing.TB, channels int, tune func(*ServerConfig)) *Server {
	t.Helper()
	cfg := DefaultServerConfig(channels)
	cfg.Channel.DRAM.Cols = 128
	cfg.Channel.DRAM.Banks = 2
	cfg.Channel.DRAM.SubarraysPerBank = 2
	if tune != nil {
		tune(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// randData returns n random width-masked elements.
func randData(rng *rand.Rand, n, width int) []uint64 {
	data := make([]uint64, n)
	mask := uint64(1)<<uint(width) - 1
	for i := range data {
		data[i] = rng.Uint64() & mask
	}
	return data
}

func TestServerSubmitLazyGolden(t *testing.T) {
	srv := testServer(t, 2, nil)
	rng := rand.New(rand.NewSource(3))
	const n = 100
	a, b, c := randData(rng, n, 8), randData(rng, n, 8), randData(rng, n, 8)

	ea, eb, ec := Input(a, 8), Input(b, 8), Input(c, 8)
	sum := ea.Add(eb)
	root2 := sum.Max(ec)
	fut, err := srv.SubmitLazy(context.Background(), "t1", sum, root2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 {
		t.Fatalf("got %d result vectors, want 2", len(res.Values))
	}
	for i := 0; i < n; i++ {
		s := (a[i] + b[i]) & 0xFF
		m := s
		if c[i] > m {
			m = c[i]
		}
		if res.Values[0][i] != s || res.Values[1][i] != m {
			t.Fatalf("element %d: got (%d,%d), want (%d,%d)", i, res.Values[0][i], res.Values[1][i], s, m)
		}
	}
	if res.Batch.Instructions == 0 || res.Channel < 0 || res.RunNs <= 0 {
		t.Fatalf("result metadata not filled: %+v", res)
	}
	if res.Compile.CacheHit {
		t.Fatal("first request cannot hit the plan cache")
	}
}

func TestServerRejectsBoundExpressions(t *testing.T) {
	srv := testServer(t, 1, nil)
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	v, err := sys.AllocVector(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Free()
	if _, err := srv.SubmitLazy(context.Background(), "t", sys.Lazy(v).Add(Scalar(1, 8))); err == nil {
		t.Fatal("expression bound to a System vector must be rejected at submit")
	}
	if _, err := srv.SubmitLazy(context.Background(), "t"); err == nil {
		t.Fatal("empty submission must be rejected")
	}
}

// blockedServer wedges a 1-channel server's worker on a raw job so
// later submissions queue deterministically.
func blockedServer(t *testing.T, tune func(*ServerConfig)) (*Server, chan struct{}, *Future) {
	t.Helper()
	srv := testServer(t, 1, tune)
	gate := make(chan struct{})
	blocker, err := srv.Submit(nil, "blocker", func(sys *System, cancel <-chan struct{}) error {
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if srv.Stats().Running == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("worker never started the blocker job")
		}
		time.Sleep(time.Millisecond)
	}
	return srv, gate, blocker
}

func TestServerQueueFullAndQuota(t *testing.T) {
	srv, gate, _ := blockedServer(t, func(cfg *ServerConfig) {
		cfg.QueueDepth = 2
		cfg.TenantQuota = 1
	})
	defer close(gate)
	e := func() *Expr { return Input([]uint64{1, 2, 3}, 8).Add(Scalar(1, 8)) }

	if _, err := srv.SubmitLazy(context.Background(), "a", e()); err != nil {
		t.Fatal(err)
	}
	// Tenant a is at its quota (1 queued).
	if _, err := srv.SubmitLazy(context.Background(), "a", e()); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("over-quota submit: %v, want ErrTenantQuota", err)
	}
	// Tenant b fills the global queue (depth 2).
	if _, err := srv.SubmitLazy(context.Background(), "b", e()); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SubmitLazy(context.Background(), "c", e()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-depth submit: %v, want ErrQueueFull", err)
	}
	st := srv.Stats()
	if st.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", st.Rejected)
	}
}

func TestServerCtxCanceledMidQueue(t *testing.T) {
	srv, gate, blocker := blockedServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	fut, err := srv.SubmitLazy(ctx, "a", Input([]uint64{1, 2, 3}, 8).Add(Scalar(1, 8)))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := fut.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled mid-queue: %v, want context.Canceled", err)
	}
	close(gate)
	if _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Canceled != 1 {
		t.Fatalf("canceled = %d, want 1", st.Canceled)
	}
}

func TestServerCloseDrainsQueue(t *testing.T) {
	srv, gate, blocker := blockedServer(t, nil)
	fut, err := srv.SubmitLazy(context.Background(), "a", Input([]uint64{1, 2, 3}, 8).Add(Scalar(1, 8)))
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	if _, err := fut.Wait(); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("queued job at Close: %v, want ErrServerClosed", err)
	}
	close(gate)
	if _, err := blocker.Wait(); err != nil {
		t.Fatalf("running job must finish through Close: %v", err)
	}
	<-closed
	if _, err := srv.SubmitLazy(context.Background(), "a", Input([]uint64{1}, 8)); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("submit after Close: %v, want ErrServerClosed", err)
	}
}

// TestServerConcurrentSubmit exercises the plan cache under parallel
// Submit from several tenants (run with -race in CI): every job's
// results are verified against the golden model, and the repeated
// shape must converge to cache hits.
func TestServerConcurrentSubmit(t *testing.T) {
	srv := testServer(t, 4, func(cfg *ServerConfig) { cfg.QueueDepth = 64 })
	const n, jobsPer = 64, 12
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			tenant := string(rune('a' + g))
			for i := 0; i < jobsPer; i++ {
				a, b := randData(rng, n, 8), randData(rng, n, 8)
				fut, err := srv.SubmitLazy(context.Background(), tenant,
					Input(a, 8).Add(Input(b, 8)).Max(Input(a, 8)))
				if err != nil {
					t.Errorf("%s job %d: %v", tenant, i, err)
					return
				}
				res, err := fut.Wait()
				if err != nil {
					t.Errorf("%s job %d: %v", tenant, i, err)
					return
				}
				for j := 0; j < n; j++ {
					s := (a[j] + b[j]) & 0xFF
					if a[j] > s {
						s = a[j]
					}
					if res.Values[0][j] != s {
						t.Errorf("%s job %d element %d: got %d, want %d", tenant, i, j, res.Values[0][j], s)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	st := srv.Stats()
	if st.Completed != 4*jobsPer {
		t.Fatalf("completed = %d, want %d", st.Completed, 4*jobsPer)
	}
	// All 48 jobs share one shape: at most a few racing cold compiles,
	// everything else hits.
	if st.Cache.Hits < 4*jobsPer-8 {
		t.Fatalf("cache hits = %d of %d, want near-total reuse: %+v", st.Cache.Hits, 4*jobsPer, st.Cache)
	}
	var util float64
	for name, ts := range st.Tenants {
		if ts.Completed != jobsPer {
			t.Fatalf("tenant %s completed %d, want %d", name, ts.Completed, jobsPer)
		}
		util += ts.Utilization
	}
	if util < 0.999 || util > 1.001 {
		t.Fatalf("tenant utilizations sum to %v, want 1", util)
	}
}

// TestServerRawSubmitPreemption pins the raw-job cancel channel: it
// closes when the submission context expires while the job runs.
func TestServerRawSubmitPreemption(t *testing.T) {
	srv := testServer(t, 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	fut, err := srv.Submit(ctx, "a", func(sys *System, c <-chan struct{}) error {
		close(started)
		<-c
		return errors.New("preempted")
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel()
	if _, err := fut.Wait(); err == nil || err.Error() != "preempted" {
		t.Fatalf("Wait = %v, want the job's preemption error", err)
	}
}
