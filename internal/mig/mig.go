// Package mig implements majority-inverter graphs (MIGs), the logic
// representation at the core of SIMDRAM's Step 1.
//
// A MIG is a DAG whose every internal node is a three-input majority gate
// and whose edges may be complemented. MAJ plus NOT is functionally
// complete: AND(a,b) = MAJ(a,b,0) and OR(a,b) = MAJ(a,b,1). SIMDRAM
// lowers each operation to an optimized MIG because a MAJ maps to a single
// triple-row activation (AP command) in DRAM while a NOT maps to a copy
// through a dual-contact cell, so MIG size and shape directly determine
// the number of DRAM row activations (package uprog).
//
// Literals (Lit) encode node index and complement bit in one word; the
// graph is hash-consed and nodes are created in topological order.
package mig

import (
	"fmt"
	"sort"
)

// Lit is a reference to a node with an optional complement:
// node index in the high bits, complement flag in bit 0.
type Lit uint32

// Constant literals. Node 0 is the constant-false node.
const (
	ConstFalse Lit = 0
	ConstTrue  Lit = 1
)

// MakeLit builds a literal from a node index and complement flag.
func MakeLit(node int, neg bool) Lit {
	l := Lit(node) << 1
	if neg {
		l |= 1
	}
	return l
}

// Node returns the node index of the literal.
func (l Lit) Node() int { return int(l >> 1) }

// Neg reports whether the literal is complemented.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as e.g. "!n42" or "n7".
func (l Lit) String() string {
	if l == ConstFalse {
		return "0"
	}
	if l == ConstTrue {
		return "1"
	}
	if l.Neg() {
		return fmt.Sprintf("!n%d", l.Node())
	}
	return fmt.Sprintf("n%d", l.Node())
}

// invalidLit marks children of non-MAJ nodes (constant, inputs).
const invalidLit Lit = ^Lit(0)

type node struct {
	a, b, c Lit
}

func (n node) isLeaf() bool { return n.a == invalidLit }

// MIG is a majority-inverter graph. Construct with New; the zero value is
// not usable.
type MIG struct {
	nodes      []node
	numInputs  int
	outputs    []Lit
	outNames   []string
	inputNames []string

	hash map[node]int
}

// New returns a MIG with the given number of primary inputs.
// Input i is available as Input(i).
func New(numInputs int) *MIG {
	m := &MIG{
		numInputs: numInputs,
		hash:      make(map[node]int),
	}
	// Node 0: constant false. Nodes 1..numInputs: inputs.
	m.nodes = append(m.nodes, node{invalidLit, invalidLit, invalidLit})
	for i := 0; i < numInputs; i++ {
		m.nodes = append(m.nodes, node{invalidLit, invalidLit, invalidLit})
		m.inputNames = append(m.inputNames, fmt.Sprintf("x%d", i))
	}
	return m
}

// NumInputs returns the number of primary inputs.
func (m *MIG) NumInputs() int { return m.numInputs }

// NumNodes returns the total node count including constant and inputs.
func (m *MIG) NumNodes() int { return len(m.nodes) }

// Size returns the number of MAJ nodes (the metric SIMDRAM Step 1
// minimizes, since each MAJ costs one triple-row activation).
func (m *MIG) Size() int { return len(m.nodes) - 1 - m.numInputs }

// Input returns the literal for primary input i.
func (m *MIG) Input(i int) Lit {
	if i < 0 || i >= m.numInputs {
		panic(fmt.Sprintf("mig: input %d out of range [0,%d)", i, m.numInputs))
	}
	return MakeLit(1+i, false)
}

// SetInputName attaches a debug name to input i.
func (m *MIG) SetInputName(i int, name string) { m.inputNames[i] = name }

// InputName returns the debug name of input i.
func (m *MIG) InputName(i int) string { return m.inputNames[i] }

// IsInput reports whether node idx is a primary input.
func (m *MIG) IsInput(idx int) bool { return idx >= 1 && idx <= m.numInputs }

// IsConst reports whether node idx is the constant node.
func (m *MIG) IsConst(idx int) bool { return idx == 0 }

// Children returns the three child literals of MAJ node idx.
func (m *MIG) Children(idx int) (a, b, c Lit) {
	n := m.nodes[idx]
	if n.isLeaf() {
		panic(fmt.Sprintf("mig: node %d is a leaf", idx))
	}
	return n.a, n.b, n.c
}

// Maj returns a literal computing MAJ(a, b, c), applying the Ω.M majority
// axiom, complement cancellation, and structural hashing. The node set
// only grows; unreferenced nodes are removed by Compact.
func (m *MIG) Maj(a, b, c Lit) Lit {
	// Ω.M: MAJ(x,x,y) = x and MAJ(x,!x,y) = y.
	if a == b {
		return a
	}
	if a == c {
		return a
	}
	if b == c {
		return b
	}
	if a == b.Not() {
		return c
	}
	if a == c.Not() {
		return b
	}
	if b == c.Not() {
		return a
	}
	// Canonical order.
	ls := [3]Lit{a, b, c}
	sort.Slice(ls[:], func(i, j int) bool { return ls[i] < ls[j] })
	a, b, c = ls[0], ls[1], ls[2]
	// Self-duality: MAJ(!a,!b,!c) = !MAJ(a,b,c). Canonicalize so that at
	// most one child is complemented... full canonicalization needs the
	// 2-complement case too: with exactly two complements we keep as-is
	// (no identity applies); with three we flip all and complement output.
	if a.Neg() && b.Neg() && c.Neg() {
		return m.Maj(a.Not(), b.Not(), c.Not()).Not()
	}
	key := node{a, b, c}
	if idx, ok := m.hash[key]; ok {
		return MakeLit(idx, false)
	}
	idx := len(m.nodes)
	m.nodes = append(m.nodes, key)
	m.hash[key] = idx
	return MakeLit(idx, false)
}

// And returns a AND b as MAJ(a, b, 0).
func (m *MIG) And(a, b Lit) Lit { return m.Maj(a, b, ConstFalse) }

// Or returns a OR b as MAJ(a, b, 1).
func (m *MIG) Or(a, b Lit) Lit { return m.Maj(a, b, ConstTrue) }

// Xor returns a XOR b using the standard 3-MAJ template
// AND(OR(a,b), NAND(a,b)).
func (m *MIG) Xor(a, b Lit) Lit {
	or := m.Or(a, b)
	nand := m.And(a, b).Not()
	return m.And(or, nand)
}

// Xor3 returns a XOR b XOR c using the full-adder sum template
// S = MAJ(!MAJ(a,b,c), MAJ(a,b,!c), c), which costs 3 MAJ nodes and
// shares MAJ(a,b,c) with a ripple carry chain when one is present.
func (m *MIG) Xor3(a, b, c Lit) Lit {
	carry := m.Maj(a, b, c)
	t := m.Maj(a, b, c.Not())
	return m.Maj(carry.Not(), t, c)
}

// Mux returns sel ? t : f as OR(AND(sel,t), AND(!sel,f)).
func (m *MIG) Mux(sel, t, f Lit) Lit {
	if t == f {
		return t
	}
	return m.Or(m.And(sel, t), m.And(sel.Not(), f))
}

// AddOutput declares lit as the next primary output.
func (m *MIG) AddOutput(lit Lit, name string) {
	m.outputs = append(m.outputs, lit)
	m.outNames = append(m.outNames, name)
}

// Outputs returns the declared output literals.
func (m *MIG) Outputs() []Lit { return m.outputs }

// OutputName returns the name of output i.
func (m *MIG) OutputName(i int) string { return m.outNames[i] }

// Depth returns the number of MAJ levels on the longest path to an output.
func (m *MIG) Depth() int {
	depth := make([]int, len(m.nodes))
	for i, n := range m.nodes {
		if n.isLeaf() {
			continue
		}
		d := depth[n.a.Node()]
		if x := depth[n.b.Node()]; x > d {
			d = x
		}
		if x := depth[n.c.Node()]; x > d {
			d = x
		}
		depth[i] = d + 1
	}
	max := 0
	for _, o := range m.outputs {
		if d := depth[o.Node()]; d > max {
			max = d
		}
	}
	return max
}

// NodeDepths returns per-node MAJ depth (leaves are 0).
func (m *MIG) NodeDepths() []int {
	depth := make([]int, len(m.nodes))
	for i, n := range m.nodes {
		if n.isLeaf() {
			continue
		}
		d := depth[n.a.Node()]
		if x := depth[n.b.Node()]; x > d {
			d = x
		}
		if x := depth[n.c.Node()]; x > d {
			d = x
		}
		depth[i] = d + 1
	}
	return depth
}

// FanoutCounts returns, for each node, how many MAJ fanins and outputs
// reference it (ignoring complement flags).
func (m *MIG) FanoutCounts() []int {
	fo := make([]int, len(m.nodes))
	for _, n := range m.nodes {
		if n.isLeaf() {
			continue
		}
		fo[n.a.Node()]++
		fo[n.b.Node()]++
		fo[n.c.Node()]++
	}
	for _, o := range m.outputs {
		fo[o.Node()]++
	}
	return fo
}

// InverterCount returns the number of complemented edges reachable in the
// graph (complemented MAJ fanins plus complemented outputs). Each costs a
// copy through a dual-contact cell unless the codegen can reuse one.
func (m *MIG) InverterCount() int {
	n := 0
	for _, nd := range m.nodes {
		if nd.isLeaf() {
			continue
		}
		for _, l := range [3]Lit{nd.a, nd.b, nd.c} {
			if l.Neg() && l != ConstTrue {
				n++
			}
		}
	}
	for _, o := range m.outputs {
		if o.Neg() && o != ConstTrue {
			n++
		}
	}
	return n
}

// Compact rebuilds the graph keeping only nodes reachable from outputs.
// Node indices change; outputs are remapped. Returns the number of nodes
// removed.
func (m *MIG) Compact() int {
	reach := make([]bool, len(m.nodes))
	var mark func(idx int)
	mark = func(idx int) {
		if reach[idx] {
			return
		}
		reach[idx] = true
		n := m.nodes[idx]
		if n.isLeaf() {
			return
		}
		mark(n.a.Node())
		mark(n.b.Node())
		mark(n.c.Node())
	}
	for _, o := range m.outputs {
		mark(o.Node())
	}
	// Constant and inputs always stay.
	for i := 0; i <= m.numInputs; i++ {
		reach[i] = true
	}
	removed := 0
	remap := make([]int, len(m.nodes))
	newNodes := m.nodes[:0:0]
	newHash := make(map[node]int)
	for i, n := range m.nodes {
		if !reach[i] {
			removed++
			remap[i] = -1
			continue
		}
		var nn node
		if n.isLeaf() {
			nn = n
		} else {
			nn = node{
				remapLit(n.a, remap),
				remapLit(n.b, remap),
				remapLit(n.c, remap),
			}
		}
		remap[i] = len(newNodes)
		newNodes = append(newNodes, nn)
		if !nn.isLeaf() {
			newHash[nn] = remap[i]
		}
	}
	for i, o := range m.outputs {
		m.outputs[i] = remapLit(o, remap)
	}
	m.nodes = newNodes
	m.hash = newHash
	return removed
}

func remapLit(l Lit, remap []int) Lit {
	return MakeLit(remap[l.Node()], l.Neg())
}

// Validate checks structural invariants.
func (m *MIG) Validate() error {
	if len(m.nodes) == 0 || !m.nodes[0].isLeaf() {
		return fmt.Errorf("mig: missing constant node")
	}
	for i, n := range m.nodes {
		if i <= m.numInputs {
			if !n.isLeaf() {
				return fmt.Errorf("mig: node %d should be a leaf", i)
			}
			continue
		}
		if n.isLeaf() {
			return fmt.Errorf("mig: node %d is an unexpected leaf", i)
		}
		for _, l := range [3]Lit{n.a, n.b, n.c} {
			if l.Node() >= i {
				return fmt.Errorf("mig: node %d references non-earlier node %d", i, l.Node())
			}
		}
	}
	for i, o := range m.outputs {
		if o.Node() >= len(m.nodes) {
			return fmt.Errorf("mig: output %d references missing node %d", i, o.Node())
		}
	}
	return nil
}

// String summarizes the graph.
func (m *MIG) String() string {
	return fmt.Sprintf("mig{inputs=%d outputs=%d size=%d depth=%d inverters=%d}",
		m.numInputs, len(m.outputs), m.Size(), m.Depth(), m.InverterCount())
}
