package mig

// This file implements SIMDRAM Step 1's logic optimization: rewriting the
// MIG with the majority algebra axioms (Ω rules) to minimize the number of
// MAJ nodes, and therefore the number of DRAM triple-row activations the
// final μProgram needs.
//
// The rewriter is rebuild-based: each pass reconstructs the graph in
// topological order through the hash-consing builder (which folds Ω.M,
// complement cancellation and constants on the fly) while attempting one
// local rewrite rule at every node. A pass is kept only if it improves the
// target metric, so optimization never regresses.

// OptimizeOptions selects rewrite passes. The zero value disables all
// rewriting; DefaultOptimize enables everything.
type OptimizeOptions struct {
	MaxIters       int  // fixpoint iteration cap (default 8)
	Distributivity bool // Ω.D right-to-left: size-reducing
	Relevance      bool // Ω.R depth-1 substitution: enables folding
	Associativity  bool // Ω.A: depth-reducing swaps
}

// DefaultOptimize enables all rewrite rules.
func DefaultOptimize() OptimizeOptions {
	return OptimizeOptions{MaxIters: 8, Distributivity: true, Relevance: true, Associativity: true}
}

// OptimizeStats reports what an Optimize call achieved.
type OptimizeStats struct {
	SizeBefore, SizeAfter   int
	DepthBefore, DepthAfter int
	Iterations              int
}

// Optimize rewrites the graph in place and returns statistics.
func (m *MIG) Optimize(opt OptimizeOptions) OptimizeStats {
	if opt.MaxIters <= 0 {
		opt.MaxIters = 8
	}
	stats := OptimizeStats{SizeBefore: m.Size(), DepthBefore: m.Depth()}
	cur := m.rebuild(nil)
	cur.Compact()
	for iter := 0; iter < opt.MaxIters; iter++ {
		improved := false
		if opt.Distributivity {
			if next, ok := betterSize(cur, cur.rebuild(ruleDistributivity)); ok {
				cur, improved = next, true
			}
		}
		if opt.Relevance {
			if next, ok := betterSize(cur, cur.rebuild(ruleRelevance)); ok {
				cur, improved = next, true
			}
		}
		if opt.Associativity {
			if next, ok := betterDepth(cur, cur.rebuild(ruleAssociativity)); ok {
				cur, improved = next, true
			}
		}
		stats.Iterations = iter + 1
		if !improved {
			break
		}
	}
	*m = *cur
	stats.SizeAfter = m.Size()
	stats.DepthAfter = m.Depth()
	return stats
}

func betterSize(cur, cand *MIG) (*MIG, bool) {
	cand.Compact()
	if cand.Size() < cur.Size() {
		return cand, true
	}
	return cur, false
}

func betterDepth(cur, cand *MIG) (*MIG, bool) {
	cand.Compact()
	if cand.Size() <= cur.Size() && cand.Depth() < cur.Depth() {
		return cand, true
	}
	return cur, false
}

// rewriteContext gives a rule access to both graphs during a rebuild.
type rewriteContext struct {
	old       *MIG
	oldFanout []int
	oldIdx    int // node being rebuilt in the old graph

	newDepths []int // lazily extended per-node depth cache on the new graph
}

// depth returns the MAJ depth of l's node in the new graph, extending the
// cache incrementally (nodes are append-only and topologically ordered).
func (ctx *rewriteContext) depth(n *MIG, l Lit) int {
	for len(ctx.newDepths) < n.NumNodes() {
		i := len(ctx.newDepths)
		nd := n.nodes[i]
		if nd.isLeaf() {
			ctx.newDepths = append(ctx.newDepths, 0)
			continue
		}
		d := ctx.newDepths[nd.a.Node()]
		if x := ctx.newDepths[nd.b.Node()]; x > d {
			d = x
		}
		if x := ctx.newDepths[nd.c.Node()]; x > d {
			d = x
		}
		ctx.newDepths = append(ctx.newDepths, d+1)
	}
	return ctx.newDepths[l.Node()]
}

// ruleFunc attempts a rewrite of MAJ(a,b,c) (literals already remapped
// into the new graph n). It returns the result literal and true, or false
// to fall back to a plain Maj build.
type ruleFunc func(n *MIG, ctx *rewriteContext, a, b, c Lit) (Lit, bool)

// rebuild reconstructs the graph node by node through the hashing builder,
// optionally applying rule at each node.
func (m *MIG) rebuild(rule ruleFunc) *MIG {
	n := New(m.numInputs)
	copy(n.inputNames, m.inputNames)
	ctx := &rewriteContext{old: m}
	if rule != nil {
		ctx.oldFanout = m.FanoutCounts()
	}
	memo := make([]Lit, len(m.nodes))
	memo[0] = ConstFalse
	for i := 0; i < m.numInputs; i++ {
		memo[1+i] = n.Input(i)
	}
	for i := m.numInputs + 1; i < len(m.nodes); i++ {
		nd := m.nodes[i]
		a := mapLit(nd.a, memo)
		b := mapLit(nd.b, memo)
		c := mapLit(nd.c, memo)
		if rule != nil {
			ctx.oldIdx = i
			if l, ok := rule(n, ctx, a, b, c); ok {
				memo[i] = l
				continue
			}
		}
		memo[i] = n.Maj(a, b, c)
	}
	for i, o := range m.outputs {
		n.AddOutput(mapLit(o, memo), m.outNames[i])
	}
	return n
}

func mapLit(l Lit, memo []Lit) Lit {
	r := memo[l.Node()]
	if l.Neg() {
		return r.Not()
	}
	return r
}

// expand returns the child literals of lit if it refers to a MAJ node,
// pushing a complement on lit into the children (self-duality).
func (m *MIG) expand(lit Lit) (x, y, z Lit, ok bool) {
	idx := lit.Node()
	nd := m.nodes[idx]
	if nd.isLeaf() {
		return 0, 0, 0, false
	}
	x, y, z = nd.a, nd.b, nd.c
	if lit.Neg() {
		x, y, z = x.Not(), y.Not(), z.Not()
	}
	return x, y, z, true
}

// truncate pops nodes created after mark, fixing the hash map. Only safe
// when nothing references them yet (i.e. immediately after tentative
// builds).
func (m *MIG) truncate(mark int) {
	for i := mark; i < len(m.nodes); i++ {
		delete(m.hash, m.nodes[i])
	}
	m.nodes = m.nodes[:mark]
}

// ruleDistributivity applies Ω.D right-to-left:
//
//	MAJ(MAJ(x,y,u), MAJ(x,y,v), z)  →  MAJ(x, y, MAJ(u,v,z))
//
// replacing three MAJ nodes with two whenever two children share two
// grandchildren. It only fires when both inner nodes have fanout 1 in the
// old graph, so the rewrite is guaranteed size-reducing after compaction.
func ruleDistributivity(n *MIG, ctx *rewriteContext, a, b, c Lit) (Lit, bool) {
	kids := [3]Lit{a, b, c}
	oldKids := [3]Lit{ctx.old.nodes[ctx.oldIdx].a, ctx.old.nodes[ctx.oldIdx].b, ctx.old.nodes[ctx.oldIdx].c}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			p, q := kids[i], kids[j]
			var z Lit
			for k := 0; k < 3; k++ {
				if k != i && k != j {
					z = kids[k]
				}
			}
			if n.IsConst(p.Node()) || n.IsInput(p.Node()) || n.IsConst(q.Node()) || n.IsInput(q.Node()) {
				continue
			}
			// Fanout-1 guard on the old graph's corresponding children.
			if ctx.oldFanout[oldKids[i].Node()] != 1 || ctx.oldFanout[oldKids[j].Node()] != 1 {
				continue
			}
			px, py, pu, ok1 := n.expand(p)
			if !ok1 {
				continue
			}
			qx, qy, qv, ok2 := n.expand(q)
			if !ok2 {
				continue
			}
			pg := [3]Lit{px, py, pu}
			qg := [3]Lit{qx, qy, qv}
			// Find a shared pair between pg and qg.
			for pi := 0; pi < 3; pi++ {
				for pj := pi + 1; pj < 3; pj++ {
					s1, s2 := pg[pi], pg[pj]
					if mi, mj, ok := matchPair(qg, s1, s2); ok {
						var u, v Lit
						for k := 0; k < 3; k++ {
							if k != pi && k != pj {
								u = pg[k]
							}
							if k != mi && k != mj {
								v = qg[k]
							}
						}
						return n.Maj(s1, s2, n.Maj(u, v, z)), true
					}
				}
			}
		}
	}
	return 0, false
}

// matchPair finds s1 and s2 at distinct positions of g.
func matchPair(g [3]Lit, s1, s2 Lit) (i, j int, ok bool) {
	for i = 0; i < 3; i++ {
		if g[i] != s1 {
			continue
		}
		for j = 0; j < 3; j++ {
			if j != i && g[j] == s2 {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// ruleRelevance applies a depth-1 Ω.R substitution:
//
//	MAJ(x, y, z)  =  MAJ(x, y, z[x→!y, !x→y, y→!x, !y→x])
//
// The substituted occurrence often triggers Ω.M folding inside z. The
// rewrite is attempted tentatively and rolled back unless the inner node
// folds away (no new node materializes).
func ruleRelevance(n *MIG, ctx *rewriteContext, a, b, c Lit) (Lit, bool) {
	kids := [3]Lit{a, b, c}
	oldKids := [3]Lit{ctx.old.nodes[ctx.oldIdx].a, ctx.old.nodes[ctx.oldIdx].b, ctx.old.nodes[ctx.oldIdx].c}
	for zi := 0; zi < 3; zi++ {
		z := kids[zi]
		if n.IsConst(z.Node()) || n.IsInput(z.Node()) {
			continue
		}
		if ctx.oldFanout[oldKids[zi].Node()] != 1 {
			continue
		}
		zx, zy, zz, ok := n.expand(z)
		if !ok {
			continue
		}
		var x, y Lit
		first := true
		for k := 0; k < 3; k++ {
			if k == zi {
				continue
			}
			if first {
				x = kids[k]
				first = false
			} else {
				y = kids[k]
			}
		}
		// Under the only assignments where z matters, x = !y. Try the two
		// directed substitutions separately so folding can make progress.
		for _, dir := range [2][2]Lit{{x, y.Not()}, {y, x.Not()}} {
			from, to := dir[0], dir[1]
			sub := func(l Lit) Lit {
				switch l {
				case from:
					return to
				case from.Not():
					return to.Not()
				}
				return l
			}
			nx, ny, nz := sub(zx), sub(zy), sub(zz)
			if nx == zx && ny == zy && nz == zz {
				continue
			}
			mark := n.NumNodes()
			zNew := n.Maj(nx, ny, nz)
			if n.NumNodes() > mark {
				// Did not fold: revert the tentative node.
				n.truncate(mark)
				continue
			}
			return n.Maj(x, y, zNew), true
		}
	}
	return 0, false
}

// ruleAssociativity applies Ω.A to shorten the critical path:
//
//	MAJ(x, u, MAJ(y, u, z))  →  MAJ(z, u, MAJ(y, u, x))
//
// swapping a deep outer child x with a shallow inner child z when that
// reduces the node's level. Fires only on fanout-1 inner nodes so size is
// unchanged.
func ruleAssociativity(n *MIG, ctx *rewriteContext, a, b, c Lit) (Lit, bool) {
	d := func(l Lit) int { return ctx.depth(n, l) }
	kids := [3]Lit{a, b, c}
	oldKids := [3]Lit{ctx.old.nodes[ctx.oldIdx].a, ctx.old.nodes[ctx.oldIdx].b, ctx.old.nodes[ctx.oldIdx].c}
	for zi := 0; zi < 3; zi++ {
		inner := kids[zi]
		if n.IsConst(inner.Node()) || n.IsInput(inner.Node()) {
			continue
		}
		if ctx.oldFanout[oldKids[zi].Node()] != 1 {
			continue
		}
		ix, iy, iz, ok := n.expand(inner)
		if !ok {
			continue
		}
		ig := [3]Lit{ix, iy, iz}
		var outer [2]Lit
		oi := 0
		for k := 0; k < 3; k++ {
			if k != zi {
				outer[oi] = kids[k]
				oi++
			}
		}
		// Need a shared child u between outer pair and inner children.
		for ui := 0; ui < 2; ui++ {
			u := outer[ui]
			x := outer[1-ui]
			for ii := 0; ii < 3; ii++ {
				if ig[ii] != u {
					continue
				}
				// Remaining inner children: y and z candidates.
				var rest [2]Lit
				ri := 0
				for k := 0; k < 3; k++ {
					if k != ii {
						rest[ri] = ig[k]
						ri++
					}
				}
				for zi2 := 0; zi2 < 2; zi2++ {
					z := rest[zi2]
					y := rest[1-zi2]
					// Swap helps if x is deeper than z.
					if d(x) > d(z)+1 {
						innerNew := n.Maj(y, u, x)
						return n.Maj(z, u, innerNew), true
					}
				}
			}
		}
	}
	return 0, false
}
