package mig

import (
	"math/rand"
	"testing"

	"simdram/internal/logic"
)

func TestLitEncoding(t *testing.T) {
	l := MakeLit(42, true)
	if l.Node() != 42 || !l.Neg() {
		t.Errorf("MakeLit(42,true) round trip failed: node=%d neg=%t", l.Node(), l.Neg())
	}
	if l.Not().Neg() {
		t.Errorf("Not should clear complement")
	}
	if ConstTrue != ConstFalse.Not() {
		t.Errorf("ConstTrue should be !ConstFalse")
	}
}

func TestMajAxioms(t *testing.T) {
	m := New(3)
	a, b, c := m.Input(0), m.Input(1), m.Input(2)

	if got := m.Maj(a, a, b); got != a {
		t.Errorf("MAJ(a,a,b) = %v, want a", got)
	}
	if got := m.Maj(a, a.Not(), b); got != b {
		t.Errorf("MAJ(a,!a,b) = %v, want b", got)
	}
	x := m.Maj(a, b, c)
	y := m.Maj(c, a, b)
	if x != y {
		t.Errorf("MAJ should be commutative under hashing")
	}
	// Self-duality: MAJ(!a,!b,!c) = !MAJ(a,b,c).
	z := m.Maj(a.Not(), b.Not(), c.Not())
	if z != x.Not() {
		t.Errorf("self-duality not canonicalized: %v vs %v", z, x.Not())
	}
	if m.Size() != 1 {
		t.Errorf("expected exactly 1 MAJ node, have %d", m.Size())
	}
}

func TestAndOrXorTruthTables(t *testing.T) {
	m := New(2)
	a, b := m.Input(0), m.Input(1)
	m.AddOutput(m.And(a, b), "and")
	m.AddOutput(m.Or(a, b), "or")
	m.AddOutput(m.Xor(a, b), "xor")
	for av := 0; av < 2; av++ {
		for bv := 0; bv < 2; bv++ {
			out := m.EvalBits([]bool{av == 1, bv == 1})
			if out[0] != (av == 1 && bv == 1) {
				t.Errorf("AND(%d,%d) wrong", av, bv)
			}
			if out[1] != (av == 1 || bv == 1) {
				t.Errorf("OR(%d,%d) wrong", av, bv)
			}
			if out[2] != ((av ^ bv) == 1) {
				t.Errorf("XOR(%d,%d) wrong", av, bv)
			}
		}
	}
}

func TestXor3FullAdderTemplate(t *testing.T) {
	m := New(3)
	a, b, c := m.Input(0), m.Input(1), m.Input(2)
	sum := m.Xor3(a, b, c)
	carry := m.Maj(a, b, c)
	m.AddOutput(sum, "s")
	m.AddOutput(carry, "c")
	// Full adder must cost exactly 3 MAJ nodes (carry shared with sum).
	if m.Size() != 3 {
		t.Errorf("full adder size = %d MAJ, want 3", m.Size())
	}
	for v := 0; v < 8; v++ {
		av, bv, cv := v&1, (v>>1)&1, (v>>2)&1
		out := m.EvalBits([]bool{av == 1, bv == 1, cv == 1})
		total := av + bv + cv
		if out[0] != (total%2 == 1) || out[1] != (total >= 2) {
			t.Errorf("full adder wrong at %d%d%d: %v", av, bv, cv, out)
		}
	}
}

func TestFromCircuitAdder(t *testing.T) {
	c := logic.New()
	a := c.InputBus("a", 8)
	b := c.InputBus("b", 8)
	carry := c.Const(false)
	sum := make([]int, 8)
	for i := 0; i < 8; i++ {
		sum[i] = c.Xor(c.Xor(a[i], b[i]), carry)
		carry = c.Maj(a[i], b[i], carry)
	}
	c.OutputBus(sum, "s")
	m, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAgainstCircuit(m, c, 32, 1); err != nil {
		t.Fatal(err)
	}
}

func TestCompactRemovesDeadNodes(t *testing.T) {
	m := New(3)
	a, b, c := m.Input(0), m.Input(1), m.Input(2)
	keep := m.Maj(a, b, c)
	_ = m.And(a, b) // dead
	_ = m.Or(b, c)  // dead
	m.AddOutput(keep, "out")
	if m.Size() != 3 {
		t.Fatalf("setup: size = %d, want 3", m.Size())
	}
	removed := m.Compact()
	if removed != 2 {
		t.Errorf("Compact removed %d, want 2", removed)
	}
	if m.Size() != 1 {
		t.Errorf("size after compact = %d, want 1", m.Size())
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
	out := m.EvalBits([]bool{true, true, false})
	if !out[0] {
		t.Error("semantics changed by Compact")
	}
}

// buildRandomMIG constructs a random MIG over n inputs for property tests.
func buildRandomMIG(rng *rand.Rand, nIn, nGates int) *MIG {
	m := New(nIn)
	lits := []Lit{ConstFalse, ConstTrue}
	for i := 0; i < nIn; i++ {
		lits = append(lits, m.Input(i))
	}
	pick := func() Lit {
		l := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 0 {
			return l.Not()
		}
		return l
	}
	for g := 0; g < nGates; g++ {
		lits = append(lits, m.Maj(pick(), pick(), pick()))
	}
	nOut := 1 + rng.Intn(3)
	for o := 0; o < nOut; o++ {
		m.AddOutput(lits[len(lits)-1-o], "o")
	}
	return m
}

func TestOptimizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		m := buildRandomMIG(rng, 2+rng.Intn(8), 5+rng.Intn(120))
		ref := m.rebuild(nil) // snapshot semantics
		stats := m.Optimize(DefaultOptimize())
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: invalid after optimize: %v", trial, err)
		}
		if stats.SizeAfter > stats.SizeBefore {
			t.Fatalf("trial %d: optimize grew the graph %d → %d", trial, stats.SizeBefore, stats.SizeAfter)
		}
		if err := VerifyEquivalent(ref, m, 48, int64(trial)); err != nil {
			t.Fatalf("trial %d: optimize changed semantics: %v", trial, err)
		}
	}
}

func TestOptimizeFindsDistributivity(t *testing.T) {
	// MAJ(MAJ(x,y,u), MAJ(x,y,v), z) must shrink from 3 MAJ to 2.
	m := New(5)
	x, y, u, v, z := m.Input(0), m.Input(1), m.Input(2), m.Input(3), m.Input(4)
	p := m.Maj(x, y, u)
	q := m.Maj(x, y, v)
	m.AddOutput(m.Maj(p, q, z), "out")
	ref := m.rebuild(nil)
	stats := m.Optimize(DefaultOptimize())
	if stats.SizeAfter != 2 {
		t.Errorf("distributivity: size = %d, want 2 (before=%d)", stats.SizeAfter, stats.SizeBefore)
	}
	if err := VerifyEquivalent(ref, m, 8, 3); err != nil {
		t.Error(err)
	}
}

func TestOptimizeRelevanceFolds(t *testing.T) {
	// MAJ(x, y, MAJ(x, v, w)): substituting x→!y inside cannot fold here,
	// but MAJ(x, y, MAJ(x, !y, w)) folds the inner node to w.
	m := New(3)
	x, y, w := m.Input(0), m.Input(1), m.Input(2)
	inner := m.Maj(x, y.Not(), w)
	m.AddOutput(m.Maj(x, y, inner), "out")
	ref := m.rebuild(nil)
	stats := m.Optimize(DefaultOptimize())
	if stats.SizeAfter >= stats.SizeBefore {
		t.Errorf("relevance: expected shrink, got %d → %d", stats.SizeBefore, stats.SizeAfter)
	}
	if err := VerifyEquivalent(ref, m, 8, 4); err != nil {
		t.Error(err)
	}
}

func TestOptimizeReducesRealCircuits(t *testing.T) {
	// An AND/OR-built comparator has redundancy the rewriter should find
	// or at least not worsen.
	c := logic.New()
	a := c.InputBus("a", 8)
	b := c.InputBus("b", 8)
	// a > b, ripple from MSB.
	gt := c.Const(false)
	eq := c.Const(true)
	for i := 7; i >= 0; i-- {
		bitGt := c.And(a[i], c.Not(b[i]))
		gt = c.Or(gt, c.And(eq, bitGt))
		eq = c.And(eq, c.Not(c.Xor(a[i], b[i])))
	}
	c.Output(gt, "gt")
	m, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Size()
	m.Optimize(DefaultOptimize())
	if m.Size() > before {
		t.Errorf("optimizer grew comparator: %d → %d", before, m.Size())
	}
	if err := VerifyAgainstCircuit(m, c, 64, 7); err != nil {
		t.Fatal(err)
	}
}

func TestInverterCount(t *testing.T) {
	m := New(2)
	a, b := m.Input(0), m.Input(1)
	m.AddOutput(m.Maj(a.Not(), b, ConstFalse), "x")
	if got := m.InverterCount(); got != 1 {
		t.Errorf("InverterCount = %d, want 1", got)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	m := New(2)
	a, b := m.Input(0), m.Input(1)
	x := m.Maj(a, b, ConstTrue)
	m.AddOutput(x, "x")
	if err := m.Validate(); err != nil {
		t.Fatalf("valid MIG rejected: %v", err)
	}
	m.nodes[x.Node()].a = MakeLit(x.Node(), false)
	if err := m.Validate(); err == nil {
		t.Error("self-referencing node must not validate")
	}
}
