package mig

import (
	"fmt"
	"io"
)

// WriteDOT renders the MIG as a Graphviz digraph: MAJ nodes as circles,
// inputs as boxes, complemented edges dashed. Useful for inspecting what
// Step 1 produced for a small operation:
//
//	simdram-synth -op max -width 4 -dot | dot -Tsvg > max4.svg
func (m *MIG) WriteDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=BT;\n", title); err != nil {
		return err
	}
	fmt.Fprintf(w, "  n0 [label=\"0\" shape=box style=filled fillcolor=lightgray];\n")
	for i := 1; i <= m.numInputs; i++ {
		fmt.Fprintf(w, "  n%d [label=%q shape=box];\n", i, m.inputNames[i-1])
	}
	reach := make([]bool, len(m.nodes))
	var mark func(idx int)
	mark = func(idx int) {
		if reach[idx] {
			return
		}
		reach[idx] = true
		n := m.nodes[idx]
		if n.isLeaf() {
			return
		}
		mark(n.a.Node())
		mark(n.b.Node())
		mark(n.c.Node())
	}
	for _, o := range m.outputs {
		mark(o.Node())
	}
	edge := func(from int, l Lit) {
		style := "solid"
		if l.Neg() {
			style = "dashed"
		}
		fmt.Fprintf(w, "  n%d -> n%d [style=%s];\n", l.Node(), from, style)
	}
	for i := m.numInputs + 1; i < len(m.nodes); i++ {
		if !reach[i] {
			continue
		}
		n := m.nodes[i]
		fmt.Fprintf(w, "  n%d [label=\"MAJ\" shape=circle];\n", i)
		edge(i, n.a)
		edge(i, n.b)
		edge(i, n.c)
	}
	for oi, o := range m.outputs {
		name := m.outNames[oi]
		fmt.Fprintf(w, "  o%d [label=%q shape=box style=filled fillcolor=lightblue];\n", oi, name)
		style := "solid"
		if o.Neg() {
			style = "dashed"
		}
		fmt.Fprintf(w, "  n%d -> o%d [style=%s];\n", o.Node(), oi, style)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
