package mig

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	m := New(3)
	a, b, c := m.Input(0), m.Input(1), m.Input(2)
	m.SetInputName(0, "a")
	x := m.Maj(a, b.Not(), c)
	_ = m.And(a, b) // dead: must not appear
	m.AddOutput(x.Not(), "out")
	var buf bytes.Buffer
	if err := m.WriteDOT(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"digraph", "MAJ", "dashed", "lightblue", `label="a"`} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT missing %q:\n%s", want, s)
		}
	}
	if strings.Count(s, `label="MAJ"`) != 1 {
		t.Errorf("dead MAJ node leaked into DOT:\n%s", s)
	}
}
