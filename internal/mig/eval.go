package mig

import "fmt"

// EvalWords evaluates the MIG bit-parallel over 64 lanes. inputs[i] feeds
// primary input i; the result has one word per output.
func (m *MIG) EvalWords(inputs []uint64) []uint64 {
	if len(inputs) != m.numInputs {
		panic(fmt.Sprintf("mig: EvalWords: want %d inputs, have %d", m.numInputs, len(inputs)))
	}
	val := make([]uint64, len(m.nodes))
	val[0] = 0
	copy(val[1:], inputs)
	for i := m.numInputs + 1; i < len(m.nodes); i++ {
		n := m.nodes[i]
		a := litWord(val, n.a)
		b := litWord(val, n.b)
		c := litWord(val, n.c)
		val[i] = (a & b) | (a & c) | (b & c)
	}
	out := make([]uint64, len(m.outputs))
	for i, o := range m.outputs {
		out[i] = litWord(val, o)
	}
	return out
}

func litWord(val []uint64, l Lit) uint64 {
	w := val[l.Node()]
	if l.Neg() {
		return ^w
	}
	return w
}

// EvalBits evaluates the MIG on one boolean assignment.
func (m *MIG) EvalBits(inputs []bool) []bool {
	words := make([]uint64, len(inputs))
	for i, b := range inputs {
		if b {
			words[i] = ^uint64(0)
		}
	}
	res := m.EvalWords(words)
	out := make([]bool, len(res))
	for i, w := range res {
		out[i] = w&1 == 1
	}
	return out
}
