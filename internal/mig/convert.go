package mig

import (
	"fmt"

	"simdram/internal/logic"
)

// FromCircuit lowers a gate-level circuit to a MIG (SIMDRAM Step 1, first
// half). Gates map to MAJ templates:
//
//	AND(a,b) = MAJ(a,b,0)          OR(a,b)  = MAJ(a,b,1)
//	XOR(a,b) = AND(OR(a,b), NAND(a,b))          (3 MAJ)
//	XOR(a,b,c) = MAJ(!MAJ(a,b,c), MAJ(a,b,!c), c) (3 MAJ, full-adder sum)
//	MUX(s,t,f) = OR(AND(s,t), AND(!s,f))        (3 MAJ)
//
// Structural hashing in the builder shares common subexpressions, e.g. a
// ripple-carry adder shares MAJ(a,b,c) between the carry chain and the
// XOR3 sum template, giving the hand-optimized 3-MAJ/bit full adder.
func FromCircuit(c *logic.Circuit) (*MIG, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("mig: invalid source circuit: %w", err)
	}
	m := New(len(c.Inputs))
	memo := make([]Lit, len(c.Nodes))
	inputIdx := 0
	for i, n := range c.Nodes {
		switch n.Kind {
		case logic.KindInput:
			memo[i] = m.Input(inputIdx)
			if n.Name != "" {
				m.SetInputName(inputIdx, n.Name)
			}
			inputIdx++
		case logic.KindConst:
			if n.Value {
				memo[i] = ConstTrue
			} else {
				memo[i] = ConstFalse
			}
		case logic.KindNot:
			memo[i] = memo[n.Fanins[0]].Not()
		case logic.KindAnd:
			acc := memo[n.Fanins[0]]
			for _, f := range n.Fanins[1:] {
				acc = m.And(acc, memo[f])
			}
			memo[i] = acc
		case logic.KindOr:
			acc := memo[n.Fanins[0]]
			for _, f := range n.Fanins[1:] {
				acc = m.Or(acc, memo[f])
			}
			memo[i] = acc
		case logic.KindXor:
			memo[i] = convertXor(m, n.Fanins, memo)
		case logic.KindMaj:
			memo[i] = m.Maj(memo[n.Fanins[0]], memo[n.Fanins[1]], memo[n.Fanins[2]])
		case logic.KindMux:
			memo[i] = m.Mux(memo[n.Fanins[0]], memo[n.Fanins[1]], memo[n.Fanins[2]])
		default:
			return nil, fmt.Errorf("mig: cannot convert gate kind %v", n.Kind)
		}
	}
	for i, o := range c.Outputs {
		name := ""
		if i < len(c.OutputNames) {
			name = c.OutputNames[i]
		}
		m.AddOutput(memo[o], name)
	}
	return m, nil
}

// convertXor lowers an n-ary XOR, grouping fanins in threes to exploit the
// 3-MAJ XOR3 template before falling back to 2-input XOR.
func convertXor(m *MIG, fanins []int, memo []Lit) Lit {
	lits := make([]Lit, len(fanins))
	for i, f := range fanins {
		lits[i] = memo[f]
	}
	for len(lits) > 1 {
		var next []Lit
		i := 0
		for ; i+2 < len(lits); i += 3 {
			next = append(next, m.Xor3(lits[i], lits[i+1], lits[i+2]))
		}
		for ; i+1 < len(lits); i += 2 {
			next = append(next, m.Xor(lits[i], lits[i+1]))
		}
		if i < len(lits) {
			next = append(next, lits[i])
		}
		lits = next
	}
	return lits[0]
}
