package mig

import (
	"fmt"
	"math/rand"

	"simdram/internal/logic"
)

// VerifyAgainstCircuit checks, by randomized 64-lane simulation, that the
// MIG computes the same function as the source circuit. trials is the
// number of random 64-assignment batches (so trials×64 assignments are
// checked; small input counts are checked exhaustively instead).
func VerifyAgainstCircuit(m *MIG, c *logic.Circuit, trials int, seed int64) error {
	if m.NumInputs() != c.NumInputs() {
		return fmt.Errorf("mig: input count mismatch: mig=%d circuit=%d", m.NumInputs(), c.NumInputs())
	}
	if len(m.Outputs()) != c.NumOutputs() {
		return fmt.Errorf("mig: output count mismatch: mig=%d circuit=%d", len(m.Outputs()), c.NumOutputs())
	}
	n := m.NumInputs()
	if n <= 16 {
		return verifyExhaustive(m, c)
	}
	rng := rand.New(rand.NewSource(seed))
	in := make([]uint64, n)
	for t := 0; t < trials; t++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		got := m.EvalWords(in)
		want := c.EvalWords(in)
		for o := range want {
			if got[o] != want[o] {
				return fmt.Errorf("mig: output %d mismatch on trial %d: got %#x want %#x", o, t, got[o], want[o])
			}
		}
	}
	return nil
}

func verifyExhaustive(m *MIG, c *logic.Circuit) error {
	n := m.NumInputs()
	total := uint64(1) << uint(n)
	in := make([]uint64, n)
	for base := uint64(0); base < total; base += 64 {
		for i := range in {
			var w uint64
			for lane := uint64(0); lane < 64 && base+lane < total; lane++ {
				bit := ((base + lane) >> uint(i)) & 1
				w |= bit << lane
			}
			in[i] = w
		}
		got := m.EvalWords(in)
		want := c.EvalWords(in)
		lanes := total - base
		if lanes > 64 {
			lanes = 64
		}
		mask := ^uint64(0)
		if lanes < 64 {
			mask = (uint64(1) << lanes) - 1
		}
		for o := range want {
			if got[o]&mask != want[o]&mask {
				return fmt.Errorf("mig: output %d mismatch near assignment %d", o, base)
			}
		}
	}
	return nil
}

// VerifyEquivalent checks two MIGs compute the same function by randomized
// simulation (exhaustive for ≤16 inputs).
func VerifyEquivalent(a, b *MIG, trials int, seed int64) error {
	if a.NumInputs() != b.NumInputs() || len(a.Outputs()) != len(b.Outputs()) {
		return fmt.Errorf("mig: shape mismatch")
	}
	n := a.NumInputs()
	rng := rand.New(rand.NewSource(seed))
	in := make([]uint64, n)
	check := func() error {
		ra := a.EvalWords(in)
		rb := b.EvalWords(in)
		for o := range ra {
			if ra[o] != rb[o] {
				return fmt.Errorf("mig: output %d differs", o)
			}
		}
		return nil
	}
	if n <= 6 {
		// One 64-lane eval covers everything.
		for i := range in {
			var w uint64
			for lane := uint64(0); lane < 64; lane++ {
				w |= ((lane >> uint(i)) & 1) << lane
			}
			in[i] = w
		}
		return check()
	}
	for t := 0; t < trials; t++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		if err := check(); err != nil {
			return fmt.Errorf("trial %d: %w", t, err)
		}
	}
	return nil
}
