package vertical

import "fmt"

// UnitConfig parameterizes the transposition unit's cost model.
//
// The unit sits in the memory controller between the last-level cache and
// the channel. It transposes data at cache-line granularity using an
// 8×8-byte shuffle network; the paper reports its latency is small and
// overlapped with DRAM burst transfers, so the default per-line costs are
// a single controller cycle of latency and a small fixed energy.
type UnitConfig struct {
	LatencyPerLineNs float64 // pipeline cost per 64 B cache line
	EnergyPerLinePJ  float64 // shuffle-network energy per 64 B line
	BufferLines      int     // recently-transposed line buffer (object tracker)
}

// DefaultUnitConfig returns the paper-calibrated defaults.
func DefaultUnitConfig() UnitConfig {
	return UnitConfig{
		LatencyPerLineNs: 0.85, // one 1.2 GHz controller cycle
		EnergyPerLinePJ:  20,   // 64 B through a 64×64 swap network
		BufferLines:      64,
	}
}

// UnitStats accumulates transposition-unit activity.
type UnitStats struct {
	LinesTransposed int64
	BufferHits      int64
	LatencyNs       float64
	EnergyPJ        float64
}

// Unit is the transposition unit: it performs horizontal↔vertical layout
// conversion, accounts its cost, and keeps a small buffer of line tags so
// repeated transpositions of the same lines are counted as hits (the
// object-tracker optimization).
type Unit struct {
	cfg   UnitConfig
	Stats UnitStats

	fifo []uint64 // line tags, FIFO eviction
	tags map[uint64]bool
}

// NewUnit builds a transposition unit.
func NewUnit(cfg UnitConfig) *Unit {
	return &Unit{cfg: cfg, tags: make(map[uint64]bool)}
}

// lineTag identifies a cache line by (object id, line index).
func lineTag(objID uint64, line int) uint64 { return objID<<24 | uint64(line)&0xFFFFFF }

func (u *Unit) touch(objID uint64, lines int) {
	for l := 0; l < lines; l++ {
		tag := lineTag(objID, l)
		if u.tags[tag] {
			u.Stats.BufferHits++
			continue
		}
		u.Stats.LinesTransposed++
		u.Stats.LatencyNs += u.cfg.LatencyPerLineNs
		u.Stats.EnergyPJ += u.cfg.EnergyPerLinePJ
		if u.cfg.BufferLines > 0 {
			if len(u.fifo) >= u.cfg.BufferLines {
				delete(u.tags, u.fifo[0])
				u.fifo = u.fifo[1:]
			}
			u.fifo = append(u.fifo, tag)
			u.tags[tag] = true
		}
	}
}

// HToV transposes horizontal values into vertical rows, charging the cost
// model. objID distinguishes objects for the line buffer.
func (u *Unit) HToV(objID uint64, vals []uint64, width, lanes int) ([][]uint64, error) {
	rows, err := ToVertical(vals, width, lanes)
	if err != nil {
		return nil, err
	}
	u.touch(objID, linesFor(len(vals), width))
	return rows, nil
}

// VToH transposes vertical rows back into horizontal values.
func (u *Unit) VToH(objID uint64, rows [][]uint64, width, n int) ([]uint64, error) {
	vals, err := ToHorizontal(rows, width, n)
	if err != nil {
		return nil, err
	}
	u.touch(objID, linesFor(n, width))
	return vals, nil
}

// linesFor returns how many 64 B cache lines n elements of the given
// width occupy in the horizontal layout.
func linesFor(n, width int) int {
	bytesPer := (width + 7) / 8
	total := n * bytesPer
	return (total + 63) / 64
}

func (u *Unit) String() string {
	return fmt.Sprintf("transposition-unit{lines=%d hits=%d latency=%.1fns energy=%.1fpJ}",
		u.Stats.LinesTransposed, u.Stats.BufferHits, u.Stats.LatencyNs, u.Stats.EnergyPJ)
}
