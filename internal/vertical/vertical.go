// Package vertical implements SIMDRAM's vertical data layout and the
// memory-controller transposition unit.
//
// In the vertical layout all W bits of an element live in one DRAM column
// (bitline): bit i of element j is stored in row base+i at column j. Bulk
// in-DRAM computation requires this layout, while the CPU reads and
// writes data horizontally; the transposition unit converts between the
// two so both can coexist (SIMDRAM §4).
package vertical

import "fmt"

// Transpose64x64 transposes a 64×64 bit matrix in place, treating a[i]
// as row i. Standard recursive block-swap algorithm (Hacker's Delight
// §7-3), 6 rounds of masked swaps.
func Transpose64x64(a *[64]uint64) {
	// Masked block swaps with LSB-first bit numbering: bit c of a[r] is
	// matrix entry (r, c), and the swap exchanges the top-right block
	// (high bits of low rows) with the bottom-left block (low bits of
	// high rows) at every scale.
	m := uint64(0x00000000FFFFFFFF)
	for j := uint(32); j != 0; j >>= 1 {
		for k := uint(0); k < 64; k = (k + j + 1) &^ j {
			t := ((a[k] >> j) ^ a[k+j]) & m
			a[k] ^= t << j
			a[k+j] ^= t
		}
		m ^= m << (j >> 1)
	}
}

// ToVertical converts horizontal values to the vertical layout.
// vals[j] holds element j (width significant bits, LSB first). lanes is
// the column count of the target rows (≥ len(vals), multiple of 64);
// missing elements are zero. The result has width rows of lanes/64 words:
// row i, column j holds bit i of element j.
func ToVertical(vals []uint64, width, lanes int) ([][]uint64, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("vertical: width %d out of range [1,64]", width)
	}
	if lanes%64 != 0 || lanes < len(vals) {
		return nil, fmt.Errorf("vertical: lanes %d must be a multiple of 64 and >= %d values", lanes, len(vals))
	}
	words := lanes / 64
	rows := make([][]uint64, width)
	backing := make([]uint64, width*words)
	for i := range rows {
		rows[i] = backing[i*words : (i+1)*words]
	}
	var block [64]uint64
	mask := widthMask(width)
	for w := 0; w < words; w++ {
		for lane := 0; lane < 64; lane++ {
			j := w*64 + lane
			var v uint64
			if j < len(vals) {
				v = vals[j] & mask
			}
			// Element j becomes column lane of the block; place it as row
			// lane so the transpose moves bit i to row i, column lane.
			block[lane] = v
		}
		Transpose64x64(&block)
		// After transposing, block[i] bit `lane` is bit... careful: the
		// transpose maps row r, col c → row c, col r. We loaded element
		// values as rows, so block[i] now holds bit i of... see note below.
		for i := 0; i < width; i++ {
			rows[i][w] = block[i]
		}
		for i := range block {
			block[i] = 0
		}
	}
	return rows, nil
}

// ToHorizontal is the inverse of ToVertical: it reads n elements of the
// given width from vertical rows.
func ToHorizontal(rows [][]uint64, width, n int) ([]uint64, error) {
	if width < 1 || width > 64 || len(rows) < width {
		return nil, fmt.Errorf("vertical: need %d rows, have %d", width, len(rows))
	}
	words := len(rows[0])
	if n > words*64 {
		return nil, fmt.Errorf("vertical: %d elements exceed %d lanes", n, words*64)
	}
	vals := make([]uint64, n)
	var block [64]uint64
	for w := 0; w*64 < n; w++ {
		for i := range block {
			block[i] = 0
		}
		for i := 0; i < width; i++ {
			block[i] = rows[i][w]
		}
		Transpose64x64(&block)
		for lane := 0; lane < 64; lane++ {
			j := w*64 + lane
			if j < n {
				vals[j] = block[lane]
			}
		}
	}
	return vals, nil
}

// toVerticalNaive is the bit-at-a-time reference used by tests.
func toVerticalNaive(vals []uint64, width, lanes int) [][]uint64 {
	words := lanes / 64
	rows := make([][]uint64, width)
	for i := range rows {
		rows[i] = make([]uint64, words)
	}
	for j, v := range vals {
		for i := 0; i < width; i++ {
			if (v>>uint(i))&1 == 1 {
				rows[i][j/64] |= uint64(1) << uint(j%64)
			}
		}
	}
	return rows
}

func widthMask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}
