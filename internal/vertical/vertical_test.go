package vertical

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTranspose64x64Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var a, orig [64]uint64
	for i := range a {
		a[i] = rng.Uint64()
		orig[i] = a[i]
	}
	Transpose64x64(&a)
	Transpose64x64(&a)
	if a != orig {
		t.Fatal("transpose twice must be the identity")
	}
}

func TestTranspose64x64BitMapping(t *testing.T) {
	var a [64]uint64
	// Set bit (r=5, c=17).
	a[5] = 1 << 17
	Transpose64x64(&a)
	if a[17] != 1<<5 {
		t.Fatalf("bit (5,17) should map to (17,5); a[17]=%#x", a[17])
	}
}

func TestToVerticalMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, width := range []int{1, 7, 8, 16, 31, 32, 63, 64} {
		n := 100 + rng.Intn(200)
		lanes := ((n + 63) / 64) * 64
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() & widthMask(width)
		}
		fast, err := ToVertical(vals, width, lanes)
		if err != nil {
			t.Fatal(err)
		}
		naive := toVerticalNaive(vals, width, lanes)
		for i := 0; i < width; i++ {
			for w := range fast[i] {
				if fast[i][w] != naive[i][w] {
					t.Fatalf("width %d: row %d word %d: fast %#x naive %#x", width, i, w, fast[i][w], naive[i][w])
				}
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	err := quick.Check(func(seed int64, widthRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 1 + int(widthRaw)%64
		n := 1 + rng.Intn(500)
		lanes := ((n + 63) / 64) * 64
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() & widthMask(width)
		}
		rows, err := ToVertical(vals, width, lanes)
		if err != nil {
			return false
		}
		back, err := ToHorizontal(rows, width, n)
		if err != nil {
			return false
		}
		for i := range vals {
			if back[i] != vals[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestToVerticalValidation(t *testing.T) {
	if _, err := ToVertical(nil, 0, 64); err == nil {
		t.Error("width 0 must error")
	}
	if _, err := ToVertical(nil, 65, 64); err == nil {
		t.Error("width 65 must error")
	}
	if _, err := ToVertical(make([]uint64, 10), 8, 60); err == nil {
		t.Error("non-multiple-of-64 lanes must error")
	}
	if _, err := ToVertical(make([]uint64, 100), 8, 64); err == nil {
		t.Error("lanes < len(vals) must error")
	}
}

func TestVerticalColumnSemantics(t *testing.T) {
	// Element j must occupy column j: checking one element's bits land in
	// consecutive rows at the same column.
	vals := make([]uint64, 70)
	vals[69] = 0b1011
	rows, err := ToVertical(vals, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	col, word, bit := 69, 69/64, uint(69%64)
	_ = col
	for i, want := range []uint64{1, 1, 0, 1} {
		got := (rows[i][word] >> bit) & 1
		if got != want {
			t.Fatalf("row %d column 69: got %d want %d", i, got, want)
		}
	}
}

func TestUnitAccounting(t *testing.T) {
	u := NewUnit(DefaultUnitConfig())
	vals := make([]uint64, 256) // 256 × 4 B = 16 cache lines at width 32
	_, err := u.HToV(1, vals, 32, 256)
	if err != nil {
		t.Fatal(err)
	}
	if u.Stats.LinesTransposed != 16 {
		t.Errorf("lines = %d, want 16", u.Stats.LinesTransposed)
	}
	if u.Stats.EnergyPJ <= 0 || u.Stats.LatencyNs <= 0 {
		t.Error("unit must accrue cost")
	}
	// Re-transposing the same object hits the buffer.
	_, err = u.HToV(1, vals, 32, 256)
	if err != nil {
		t.Fatal(err)
	}
	if u.Stats.BufferHits != 16 {
		t.Errorf("hits = %d, want 16", u.Stats.BufferHits)
	}
	if u.Stats.LinesTransposed != 16 {
		t.Errorf("lines after hit = %d, want still 16", u.Stats.LinesTransposed)
	}
}

func TestUnitBufferEviction(t *testing.T) {
	cfg := DefaultUnitConfig()
	cfg.BufferLines = 4
	u := NewUnit(cfg)
	vals := make([]uint64, 64) // 8 lines at width 64
	if _, err := u.HToV(1, vals, 64, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := u.HToV(1, vals, 64, 64); err != nil {
		t.Fatal(err)
	}
	// Only the last 4 lines fit; FIFO means all 8 miss again on repeat.
	if u.Stats.BufferHits != 0 {
		t.Errorf("hits = %d, want 0 with a 4-line buffer and 8-line object", u.Stats.BufferHits)
	}
}

func BenchmarkTranspose64x64(b *testing.B) {
	var a [64]uint64
	rng := rand.New(rand.NewSource(1))
	for i := range a {
		a[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transpose64x64(&a)
	}
}

func BenchmarkToVertical32bit1M(b *testing.B) {
	vals := make([]uint64, 1<<20)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Uint64() & 0xFFFFFFFF
	}
	b.SetBytes(int64(len(vals) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ToVertical(vals, 32, len(vals)); err != nil {
			b.Fatal(err)
		}
	}
}
