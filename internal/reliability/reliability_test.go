package reliability

import "testing"

func TestZeroVariationNeverFails(t *testing.T) {
	for _, tech := range Nodes() {
		res := SimulateTRA(tech, Variation{}, 20000, 1)
		if res.Failures != 0 {
			t.Errorf("%s: %d failures with zero variation", tech.Name, res.Failures)
		}
	}
}

func TestFailureRateMonotonicInVariation(t *testing.T) {
	tech := Nodes()[0]
	sigmas := []float64{0, 0.05, 0.10, 0.20, 0.35, 0.5}
	results := Sweep(tech, sigmas, 25, 40000, 7)
	prev := -1.0
	for i, r := range results {
		rate := r.FailureRate()
		// Allow tiny Monte Carlo noise at neighboring levels.
		if rate+0.002 < prev {
			t.Errorf("failure rate decreased at σ=%.2f: %f after %f", sigmas[i], rate, prev)
		}
		if rate > prev {
			prev = rate
		}
	}
	if results[len(results)-1].FailureRate() == 0 {
		t.Error("extreme variation should eventually cause failures")
	}
}

func TestRealisticVariationIsSafe(t *testing.T) {
	// The paper's conclusion: at realistic manufacturing variation
	// (≈5% cell capacitance σ, small SA offset) TRA remains correct even
	// at scaled nodes.
	for _, tech := range Nodes() {
		res := SimulateTRA(tech, Variation{CellSigma: 0.05, SASigmaMV: 5}, 50000, 11)
		if rate := res.FailureRate(); rate > 1e-4 {
			t.Errorf("%s: failure rate %f at realistic variation, want ~0", tech.Name, rate)
		}
	}
}

func TestSmallerNodesHaveSmallerMargins(t *testing.T) {
	nodes := Nodes()
	for i := 1; i < len(nodes); i++ {
		if SenseMarginMV(nodes[i]) >= SenseMarginMV(nodes[i-1]) {
			t.Errorf("sense margin should shrink from %s to %s", nodes[i-1].Name, nodes[i].Name)
		}
	}
	if SenseMarginMV(nodes[0]) <= 0 {
		t.Error("sense margin must be positive")
	}
}

func TestOperationFailureRate(t *testing.T) {
	if got := OperationFailureRate(0, 100); got != 0 {
		t.Errorf("perfect TRA gives %f, want 0", got)
	}
	if got := OperationFailureRate(0.01, 1); got < 0.0099999 || got > 0.0100001 {
		t.Errorf("single TRA: %f, want 0.01", got)
	}
	two := OperationFailureRate(0.01, 2)
	if two <= 0.01 || two >= 0.02 {
		t.Errorf("two TRAs: %f, want in (0.01, 0.02)", two)
	}
}

func TestDeterminism(t *testing.T) {
	tech := Nodes()[2]
	v := Variation{CellSigma: 0.2, SASigmaMV: 20}
	a := SimulateTRA(tech, v, 10000, 42)
	b := SimulateTRA(tech, v, 10000, 42)
	if a != b {
		t.Error("same seed must reproduce identical results")
	}
}
