// Package reliability models SIMDRAM's process-variation analysis
// (paper §5): whether triple-row activation still resolves the correct
// majority as DRAM technology scales and cells become less uniform.
//
// Substitution note (see DESIGN.md): the paper runs SPICE Monte Carlo on
// a transistor-level sense-amplifier model. We reproduce the statistical
// experiment with the closed-form charge-sharing equation: three cells
// (capacitance Cc each, Gaussian variation σc) share charge with a
// bitline (capacitance Cb) precharged to Vdd/2, and the sense amplifier
// resolves the deviation against a Gaussian offset voltage (σsa). A TRA
// fails when the resolved value differs from the ideal majority.
package reliability

import (
	"fmt"
	"math/rand"
)

// Tech describes a DRAM technology node's electrical parameters.
type Tech struct {
	Name   string
	CellFF float64 // nominal cell capacitance Cc, femtofarads
	BitFF  float64 // bitline capacitance Cb, femtofarads
	VddV   float64
}

// Nodes returns the technology scaling ladder the paper sweeps: cell and
// bitline capacitance shrink together as the process scales down.
func Nodes() []Tech {
	return []Tech{
		{Name: "55nm", CellFF: 22, BitFF: 85, VddV: 1.2},
		{Name: "45nm", CellFF: 18, BitFF: 72, VddV: 1.2},
		{Name: "32nm", CellFF: 14, BitFF: 60, VddV: 1.2},
		{Name: "22nm", CellFF: 10, BitFF: 48, VddV: 1.2},
	}
}

// Variation describes manufacturing spread as fractions of nominal.
type Variation struct {
	CellSigma float64 // σ of cell capacitance, fraction of Cc
	SASigmaMV float64 // σ of sense-amplifier offset, millivolts
}

// Result summarizes a Monte Carlo run.
type Result struct {
	Trials   int
	Failures int
}

// FailureRate returns the per-TRA failure probability.
func (r Result) FailureRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Failures) / float64(r.Trials)
}

// OperationFailureRate lifts a per-TRA failure rate to a whole operation
// with nTRA activations per lane: 1 - (1-p)^nTRA.
func OperationFailureRate(perTRA float64, nTRA int) float64 {
	ok := 1.0
	for i := 0; i < nTRA; i++ {
		ok *= 1 - perTRA
	}
	return 1 - ok
}

// SimulateTRA Monte Carlo simulates trials triple-row activations under
// the given technology and variation. Each trial draws three cell
// capacitances and a sense-amp offset, picks random stored bits, computes
// the bitline voltage after charge sharing, and checks the resolved bit
// against the ideal majority. Deterministic for a fixed seed.
func SimulateTRA(tech Tech, v Variation, trials int, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	res := Result{Trials: trials}
	half := tech.VddV / 2
	for t := 0; t < trials; t++ {
		bits := [3]bool{rng.Intn(2) == 1, rng.Intn(2) == 1, rng.Intn(2) == 1}
		want := btoi(bits[0])+btoi(bits[1])+btoi(bits[2]) >= 2

		// Charge sharing: V = (Cb·Vdd/2 + Σ Ci·Vi) / (Cb + Σ Ci).
		num := tech.BitFF * half
		den := tech.BitFF
		for _, b := range bits {
			ci := tech.CellFF * (1 + v.CellSigma*rng.NormFloat64())
			if ci < 0.1*tech.CellFF {
				ci = 0.1 * tech.CellFF // physical floor: a cell cannot vanish
			}
			vi := 0.0
			if b {
				vi = tech.VddV
			}
			num += ci * vi
			den += ci
		}
		vBit := num / den
		offset := (v.SASigmaMV / 1000) * rng.NormFloat64()
		sensed := vBit-half > offset
		if sensed != want {
			res.Failures++
		}
	}
	return res
}

// Sweep runs SimulateTRA across variation levels for one technology node,
// returning one Result per level.
func Sweep(tech Tech, cellSigmas []float64, saSigmaMV float64, trials int, seed int64) []Result {
	out := make([]Result, len(cellSigmas))
	for i, cs := range cellSigmas {
		out[i] = SimulateTRA(tech, Variation{CellSigma: cs, SASigmaMV: saSigmaMV}, trials, seed+int64(i))
	}
	return out
}

// SenseMarginMV returns the ideal (variation-free) sense margin of a TRA
// for the worst-case 2-vs-1 majority: the bitline deviation the sense amp
// must resolve. Larger margins mean more headroom against variation.
func SenseMarginMV(tech Tech) float64 {
	// Two cells at Vdd, one at 0 (or symmetric): deviation from Vdd/2.
	num := tech.BitFF*tech.VddV/2 + 2*tech.CellFF*tech.VddV
	den := tech.BitFF + 3*tech.CellFF
	return (num/den - tech.VddV/2) * 1000
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func (t Tech) String() string {
	return fmt.Sprintf("%s (Cc=%.0ffF Cb=%.0ffF)", t.Name, t.CellFF, t.BitFF)
}
