// Package sched implements the multi-tenant job scheduler behind the
// public Server facade: a bounded admission queue, per-tenant fair
// dispatch, and a fixed pool of workers (one per cluster channel in
// the serving deployment).
//
// Admission control is reject-on-full, never block-on-full: a Submit
// that would exceed the global queue depth fails with ErrQueueFull,
// and one that would exceed the per-tenant quota (queued + running)
// fails with ErrTenantQuota, so one tenant's burst cannot wedge the
// submission path for everyone else. Fairness is round-robin over
// tenants with queued work — each free worker takes one job from the
// next tenant in the ring — so a tenant that queues 100 jobs and a
// tenant that queues 1 each get a worker at the first opportunity,
// regardless of arrival order.
//
// Cancellation composes with the execution engine's preemption: every
// running job receives a cancel channel that closes when its
// submission context expires, which the serving layer threads into
// ctrl.ExecuteBatchCancel so an in-flight batch stops issuing
// instructions instead of running to completion. A context canceled
// while the job is still queued resolves the job immediately with the
// context's error and releases its queue slot and quota.
//
// The package is execution-agnostic: a job is just a closure given a
// worker index and a cancel channel. The facade owns what a worker
// index means (a channel's System) and what running a job does
// (compile, bind, execute, load).
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"simdram/internal/obs"
)

// Scheduler errors. ErrQueueFull and ErrTenantQuota are admission
// rejections — the job was never queued; ErrClosed reports submission
// to (or draining by) a closed scheduler.
var (
	ErrQueueFull   = errors.New("sched: queue full")
	ErrTenantQuota = errors.New("sched: tenant over quota")
	ErrClosed      = errors.New("sched: scheduler closed")
)

// Task is one unit of scheduled work: run on the given worker until
// done, or until cancel closes (then stop early and return an error,
// conventionally wrapping ctrl.ErrCanceled).
type Task func(worker int, cancel <-chan struct{}) error

// Config sizes a Scheduler.
type Config struct {
	// Workers is the number of concurrent executors. Each queued job is
	// handed a worker index in [0, Workers); the serving layer maps the
	// index to a cluster channel.
	Workers int
	// QueueDepth bounds jobs queued across all tenants (running jobs do
	// not count). Submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// TenantQuota bounds one tenant's queued plus running jobs; 0 means
	// no per-tenant bound. Submissions beyond it fail with
	// ErrTenantQuota.
	TenantQuota int
	// Metrics, when set, is the registry the scheduler publishes its
	// counters, depth gauges, and latency histograms into (series named
	// "sched.*"; per-tenant histograms as "sched.queue_ns{tenant=T}").
	// When nil the scheduler keeps a private registry, so counters and
	// quantiles always work.
	Metrics *obs.Registry
}

// job is one submitted task moving through queued → running → done.
type job struct {
	tenant   string
	run      Task
	ctx      context.Context
	queuedAt time.Time

	done    chan struct{}
	err     error
	worker  int
	queueNs int64
	runNs   int64
	started bool
	fin     bool
}

// Ticket is the caller's handle on a submitted job — the future the
// facade wraps.
type Ticket struct{ j *job }

// Done returns a channel closed when the job finishes (successfully,
// with an error, or canceled).
func (t *Ticket) Done() <-chan struct{} { return t.j.done }

// Wait blocks until the job finishes and returns its error.
func (t *Ticket) Wait() error { <-t.j.done; return t.j.err }

// Worker returns the worker index that ran the job, or -1 if it never
// ran. Valid after Done.
func (t *Ticket) Worker() int { return t.j.worker }

// QueueNs returns how long the job waited in the queue; RunNs how long
// it ran. Valid after Done; both measured on the monotonic clock and
// never negative.
func (t *Ticket) QueueNs() int64 { return t.j.queueNs }

// RunNs returns the job's execution time in nanoseconds. Valid after
// Done.
func (t *Ticket) RunNs() int64 { return t.j.runNs }

// tenantState is one tenant's queue and counters.
type tenantState struct {
	queue   []*job
	running int

	submitted, completed, failed, rejected, canceled uint64
	busyNs, waitNs                                   int64
	modeledNs                                        float64
	// modeledCtr mirrors modeledNs as the registry series
	// sched.modeled_ns{tenant=T}, so the device-attribution pipeline can
	// cross-check its per-tenant DRAM-time bills against what the
	// scheduler observed without going through Stats.
	modeledCtr *obs.FloatCounter

	// queueHist/runHist are the tenant's latency distributions,
	// registered as sched.queue_ns{tenant=T} / sched.run_ns{tenant=T}.
	// Registry series outlive tenant-state eviction (bounded by the
	// registry's own series cap), so a returning tenant reattaches to
	// its history.
	queueHist, runHist *obs.Histogram
}

// Scheduler dispatches tenant jobs onto a fixed worker pool. Safe for
// concurrent use.
type Scheduler struct {
	cfg  Config
	mu   sync.Mutex
	cond *sync.Cond

	tenants map[string]*tenantState
	active  []string // tenants with queued work, in round-robin order
	next    int      // ring cursor into active
	queued  int
	running int
	closed  bool
	wg      sync.WaitGroup

	// Global counters, gauges, and latency histograms live in the
	// metrics registry (cfg.Metrics or a private one), so external
	// observers and Stats() read the same numbers.
	metrics                                          *obs.Registry
	submitted, completed, failed, rejected, canceled *obs.Counter
	gQueued, gRunning                                *obs.Gauge
	queueHist, runHist, jobHist                      *obs.Histogram
}

// New starts a scheduler with cfg.Workers worker goroutines. Workers
// and QueueDepth below 1 default to 1.
func New(cfg Config) *Scheduler {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	s := &Scheduler{cfg: cfg, tenants: map[string]*tenantState{}}
	s.metrics = cfg.Metrics
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	s.submitted = s.metrics.Counter("sched.submitted")
	s.completed = s.metrics.Counter("sched.completed")
	s.failed = s.metrics.Counter("sched.failed")
	s.rejected = s.metrics.Counter("sched.rejected")
	s.canceled = s.metrics.Counter("sched.canceled")
	s.gQueued = s.metrics.Gauge("sched.queued")
	s.gRunning = s.metrics.Gauge("sched.running")
	s.queueHist = s.metrics.Histogram("sched.queue_ns")
	s.runHist = s.metrics.Histogram("sched.run_ns")
	s.jobHist = s.metrics.Histogram("sched.job_ns")
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go s.worker(w)
	}
	return s
}

// Submit enqueues a job for the tenant. It never blocks: over-capacity
// submissions fail immediately with ErrQueueFull or ErrTenantQuota,
// and a context already expired fails with its error. ctx may be nil
// (never cancels).
func (s *Scheduler) Submit(ctx context.Context, tenant string, run Task) (*Ticket, error) {
	if run == nil {
		return nil, errors.New("sched: nil task")
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	ts := s.tenantLocked(tenant)
	if s.queued >= s.cfg.QueueDepth {
		s.rejected.Inc()
		ts.rejected++
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	if s.cfg.TenantQuota > 0 && len(ts.queue)+ts.running >= s.cfg.TenantQuota {
		s.rejected.Inc()
		ts.rejected++
		s.mu.Unlock()
		return nil, ErrTenantQuota
	}
	j := &job{tenant: tenant, run: run, ctx: ctx, queuedAt: time.Now(), done: make(chan struct{}), worker: -1}
	if len(ts.queue) == 0 {
		s.active = append(s.active, tenant)
	}
	ts.queue = append(ts.queue, j)
	ts.submitted++
	s.submitted.Inc()
	s.queued++
	s.gQueued.Set(int64(s.queued))
	s.cond.Signal()
	s.mu.Unlock()

	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.cancelQueued(j)
			case <-j.done:
			}
		}()
	}
	return &Ticket{j: j}, nil
}

// cancelQueued resolves a job whose context expired while it was still
// waiting in the queue, releasing its slot and quota. A job already
// taken by a worker is left alone — the worker's cancel channel is
// about to fire and preempt it.
func (s *Scheduler) cancelQueued(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.started || j.fin {
		return
	}
	ts := s.tenants[j.tenant]
	for i, q := range ts.queue {
		if q == j {
			ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
			s.queued--
			s.gQueued.Set(int64(s.queued))
			if len(ts.queue) == 0 {
				s.dropActive(j.tenant)
			}
			break
		}
	}
	j.queueNs = durationNs(j.queuedAt, time.Now())
	s.finishLocked(j, j.ctx.Err(), true)
}

// dropActive removes a tenant from the round-robin ring, keeping the
// cursor on the same next tenant.
func (s *Scheduler) dropActive(tenant string) {
	for i, name := range s.active {
		if name == tenant {
			s.active = append(s.active[:i], s.active[i+1:]...)
			if i < s.next {
				s.next--
			}
			if s.next >= len(s.active) {
				s.next = 0
			}
			return
		}
	}
}

// pop takes the next job under round-robin tenant fairness: one job
// from the cursor tenant, then the cursor advances. Caller holds mu.
func (s *Scheduler) pop() *job {
	if len(s.active) == 0 {
		return nil
	}
	if s.next >= len(s.active) {
		s.next = 0
	}
	tenant := s.active[s.next]
	ts := s.tenants[tenant]
	j := ts.queue[0]
	ts.queue = ts.queue[1:]
	s.queued--
	s.gQueued.Set(int64(s.queued))
	if len(ts.queue) == 0 {
		s.dropActive(tenant)
	} else {
		s.next++
	}
	return j
}

// Observe feeds one executed job's modeled cost back into the
// tenant's accounting — the serving layer reports each completed
// batch's modeled DRAM time (critical path) here, so capacity stats
// can price tenants in simulated-hardware time rather than host wall
// time (which inflates under host contention). Unknown tenants (e.g.
// already evicted by the tenant-state cap) are recorded fresh.
func (s *Scheduler) Observe(tenant string, modeledNs float64) {
	if modeledNs <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenantLocked(tenant)
	ts.modeledNs += modeledNs
	ts.modeledCtr.Add(modeledNs)
}

// tenantLocked returns the tenant's state, creating it (with its
// registry-backed latency histograms) on first sight. Caller holds mu.
func (s *Scheduler) tenantLocked(tenant string) *tenantState {
	ts := s.tenants[tenant]
	if ts == nil {
		ts = &tenantState{
			queueHist:  s.metrics.Histogram(obs.TenantSeries("sched.queue_ns", "tenant", tenant)),
			runHist:    s.metrics.Histogram(obs.TenantSeries("sched.run_ns", "tenant", tenant)),
			modeledCtr: s.metrics.FloatCounter(obs.TenantSeries("sched.modeled_ns", "tenant", tenant)),
		}
		s.tenants[tenant] = ts
	}
	return ts
}

// tenantStateCap bounds how many per-tenant records the scheduler
// retains: beyond it, records of idle tenants (nothing queued or
// running) are evicted oldest-iteration-order-first, so unbounded
// tenant cardinality — millions of distinct IDs, or an ID per request
// — cannot grow the scheduler's memory or Stats cost without bound.
// The global counters are unaffected; an evicted tenant that returns
// simply starts a fresh per-tenant record.
const tenantStateCap = 4096

// finishLocked resolves a job and updates the counters. canceled
// marks jobs that never ran (context expired in queue, or drained by
// Close). Caller holds mu.
func (s *Scheduler) finishLocked(j *job, err error, canceled bool) {
	if j.fin {
		return
	}
	j.fin = true
	j.err = err
	ts := s.tenantLocked(j.tenant)
	switch {
	case canceled:
		s.canceled.Inc()
		ts.canceled++
	case err != nil:
		s.failed.Inc()
		ts.failed++
	default:
		s.completed.Inc()
		ts.completed++
	}
	ts.busyNs += j.runNs
	ts.waitNs += j.queueNs
	// Latency distributions: every finished job contributes its queue
	// wait; only jobs that actually ran contribute run and end-to-end
	// times (a canceled-in-queue job has no run to speak of).
	s.queueHist.Observe(j.queueNs)
	ts.queueHist.Observe(j.queueNs)
	if j.started {
		s.runHist.Observe(j.runNs)
		ts.runHist.Observe(j.runNs)
		s.jobHist.Observe(j.queueNs + j.runNs)
	}
	close(j.done)
	if len(s.tenants) > tenantStateCap {
		for name, t := range s.tenants {
			if len(t.queue) == 0 && t.running == 0 {
				delete(s.tenants, name)
				if len(s.tenants) <= tenantStateCap {
					break
				}
			}
		}
	}
}

// worker is one executor loop: wait for work, run it with a
// context-driven cancel channel, resolve the ticket.
func (s *Scheduler) worker(w int) {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for !s.closed && s.queued == 0 {
			s.cond.Wait()
		}
		j := s.pop()
		if j == nil {
			if s.closed {
				s.mu.Unlock()
				return
			}
			continue
		}
		if j.ctx != nil && j.ctx.Err() != nil {
			// Canceled while queued and not yet reaped by its watcher.
			j.queueNs = durationNs(j.queuedAt, time.Now())
			s.finishLocked(j, j.ctx.Err(), true)
			continue
		}
		j.started = true
		ts := s.tenants[j.tenant]
		ts.running++
		s.running++
		s.gRunning.Set(int64(s.running))
		s.mu.Unlock()

		start := time.Now()
		j.queueNs = durationNs(j.queuedAt, start)
		cancel := make(chan struct{})
		stop := make(chan struct{})
		if j.ctx != nil && j.ctx.Done() != nil {
			ctx := j.ctx
			go func() {
				select {
				case <-ctx.Done():
					close(cancel)
				case <-stop:
				}
			}()
		}
		err := runTask(j.run, w, cancel)
		close(stop)
		j.runNs = durationNs(start, time.Now())
		j.worker = w

		s.mu.Lock()
		ts.running--
		s.running--
		s.gRunning.Set(int64(s.running))
		s.finishLocked(j, err, false)
	}
}

// runTask runs one job closure, containing a panic as that job's
// error: a bad request from one tenant must not take down the workers
// serving everyone else.
func runTask(t Task, w int, cancel <-chan struct{}) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: job panicked: %v", r)
		}
	}()
	return t(w, cancel)
}

// Close stops admission, fails every still-queued job with ErrClosed,
// waits for running jobs to finish, and stops the workers. Idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for {
		j := s.pop()
		if j == nil {
			break
		}
		j.queueNs = durationNs(j.queuedAt, time.Now())
		s.finishLocked(j, ErrClosed, true)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// TenantStats is one tenant's point-in-time counters.
type TenantStats struct {
	Submitted, Completed, Failed, Rejected, Canceled uint64
	Queued, Running                                  int
	// BusyNs is cumulative wall time the tenant's jobs spent running;
	// WaitNs cumulative time they spent queued. Monotonic, never
	// negative, regardless of the order jobs complete in.
	BusyNs, WaitNs int64
	// ModeledNs is the cumulative modeled execution cost reported via
	// Observe — zero unless the execution layer feeds its stats back.
	ModeledNs float64
	// Queue/Run quantiles come from the tenant's log-scale latency
	// histograms (relative error bounded at 1/8): honest tail latency
	// per tenant, not a mean in disguise. Zero until a job finishes.
	QueueP50Ns, QueueP99Ns, QueueP999Ns int64
	RunP50Ns, RunP99Ns, RunP999Ns       int64
}

// Stats is a point-in-time snapshot of the scheduler.
type Stats struct {
	Workers                                          int
	Queued, Running                                  int
	Submitted, Completed, Failed, Rejected, Canceled uint64
	Tenants                                          map[string]TenantStats
}

// Stats returns a snapshot of the scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Workers: s.cfg.Workers,
		Queued:  s.queued, Running: s.running,
		Submitted: s.submitted.Value(), Completed: s.completed.Value(), Failed: s.failed.Value(),
		Rejected: s.rejected.Value(), Canceled: s.canceled.Value(),
		Tenants: make(map[string]TenantStats, len(s.tenants)),
	}
	for name, ts := range s.tenants {
		qh, rh := ts.queueHist.Snapshot(), ts.runHist.Snapshot()
		st.Tenants[name] = TenantStats{
			Submitted: ts.submitted, Completed: ts.completed, Failed: ts.failed,
			Rejected: ts.rejected, Canceled: ts.canceled,
			Queued: len(ts.queue), Running: ts.running,
			BusyNs: ts.busyNs, WaitNs: ts.waitNs,
			ModeledNs:  ts.modeledNs,
			QueueP50Ns: qh.Quantile(0.50), QueueP99Ns: qh.Quantile(0.99), QueueP999Ns: qh.Quantile(0.999),
			RunP50Ns: rh.Quantile(0.50), RunP99Ns: rh.Quantile(0.99), RunP999Ns: rh.Quantile(0.999),
		}
	}
	return st
}

// Metrics returns the registry the scheduler publishes into (the one
// from Config.Metrics, or the private fallback).
func (s *Scheduler) Metrics() *obs.Registry { return s.metrics }

// durationNs returns b−a in nanoseconds, clamped at zero — the
// queue-era monotonic guard. Go's time.Time carries a monotonic
// reading, so Sub normally cannot go backwards across wall-clock
// adjustments; the clamp covers values that lost that reading
// (serialization round-trips, explicit wall arithmetic) and pins the
// invariant the stats layer relies on: per-job durations are
// non-negative no matter in what order jobs complete.
func durationNs(a, b time.Time) int64 {
	d := b.Sub(a).Nanoseconds()
	if d < 0 {
		return 0
	}
	return d
}
