// Package sched implements the multi-tenant job scheduler behind the
// public Server facade: a bounded admission queue, weighted-fair
// per-tenant dispatch, and a fixed pool of workers (one per cluster
// channel in the serving deployment).
//
// Admission control is reject-on-full, never block-on-full: a Submit
// that would exceed the global queue depth fails with ErrQueueFull,
// and one that would exceed the per-tenant quota (queued + running)
// fails with ErrTenantQuota, so one tenant's burst cannot wedge the
// submission path for everyone else. Every rejection is a typed
// *AdmissionError carrying the reason and the admission-time estimate,
// and unwraps to the matching sentinel so errors.Is keeps working.
//
// Fairness is weighted fair queueing (stride scheduling) over modeled
// DRAM-ns: each tenant carries a virtual time that advances by
// chargeNs/weight when one of its jobs dispatches, and each free
// worker takes a job from the active tenant with the lowest virtual
// time (ties broken by tenant name, so equal-weight tenants
// interleave deterministically). Tenants map to declared tiers
// (Config.Tiers); a tier's weight buys its tenants a proportional
// share of dispatch, and SetBoost lets the serving layer preempt
// *queued* (never running) lower-priority work while a
// higher-priority tier's SLO burn is active.
//
// Deadline-aware admission prices a submission before queueing it:
// the scheduler tracks the modeled cost of everything still queued
// (pendingModeledNs), calibrates modeled-ns to wall-ns with an EWMA
// over completed jobs, and rejects with ErrDeadlineInfeasible any
// request whose estimated queue wait plus modeled run time cannot
// meet its deadline — the job is never queued. A tier's MaxQueueNs
// similarly sheds load ("tier-backlog") when the estimated wait
// exceeds what the tier is willing to tolerate.
//
// Cancellation composes with the execution engine's preemption: every
// running job receives a cancel channel that closes when its
// submission context expires, which the serving layer threads into
// ctrl.ExecuteBatchCancel so an in-flight batch stops issuing
// instructions instead of running to completion. A context canceled
// while the job is still queued resolves the job immediately with the
// context's error and releases its queue slot and quota.
//
// The package is execution-agnostic: a job is just a closure given a
// worker index and a cancel channel. The facade owns what a worker
// index means (a channel's System) and what running a job does
// (compile, bind, execute, load).
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"simdram/internal/obs"
)

// Scheduler errors. ErrQueueFull, ErrTenantQuota, and
// ErrDeadlineInfeasible are admission rejections — the job was never
// queued — and arrive wrapped in an *AdmissionError; ErrClosed reports
// submission to (or draining by) a closed scheduler.
var (
	ErrQueueFull          = errors.New("sched: queue full")
	ErrTenantQuota        = errors.New("sched: tenant over quota")
	ErrDeadlineInfeasible = errors.New("sched: deadline infeasible at current queue depth")
	ErrClosed             = errors.New("sched: scheduler closed")
)

// Admission rejection reasons, as carried by AdmissionError.Reason.
const (
	ReasonQueueFull   = "queue-full"          // global queue at capacity (ErrQueueFull)
	ReasonTenantQuota = "tenant-quota"        // tenant over its quota (ErrTenantQuota)
	ReasonTierBacklog = "tier-backlog"        // estimated wait exceeds the tier's MaxQueueNs (ErrQueueFull)
	ReasonDeadline    = "deadline-infeasible" // deadline cannot be met (ErrDeadlineInfeasible)
)

// AdmissionError is a typed admission rejection: which rule fired, for
// whom, and what the scheduler believed about the queue at the moment
// it said no. It unwraps to the matching sentinel (ErrQueueFull,
// ErrTenantQuota, or ErrDeadlineInfeasible) so existing
// errors.Is(err, ErrQueueFull) checks keep working unchanged.
type AdmissionError struct {
	// Reason is one of the Reason* constants.
	Reason string
	// Tenant and Tier identify the rejected submission.
	Tenant, Tier string
	// QueueDepth is the number of jobs queued across all tenants at
	// rejection time.
	QueueDepth int
	// EstimatedWaitNs is the wall-clock queue wait the scheduler
	// predicted for this submission; ModeledNs the modeled run cost it
	// was priced with (zero when the caller supplied none).
	EstimatedWaitNs int64
	ModeledNs       float64

	err error
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("sched: admission rejected (%s) tenant=%s tier=%s depth=%d estWait=%dns modeled=%.0fns",
		e.Reason, e.Tenant, e.Tier, e.QueueDepth, e.EstimatedWaitNs, e.ModeledNs)
}

// Unwrap returns the sentinel the rejection reason maps to.
func (e *AdmissionError) Unwrap() error { return e.err }

// Tier declares one QoS class tenants submit under. Weight buys a
// proportional share of dispatch (a weight-4 tier's tenants advance
// their virtual time 4× slower per modeled nanosecond than a weight-1
// tier's); Priority orders tiers for SLO-burn boosting (higher wins);
// MaxQueueNs, when positive, sheds submissions whose estimated queue
// wait exceeds it.
type Tier struct {
	Name       string
	Weight     float64
	Priority   int
	MaxQueueNs int64
}

// DefaultTierName is the tier tenants land in when a submission names
// no tier (or an undeclared one) and no tier named "default" is
// configured.
const DefaultTierName = "default"

// ResolveTier maps a requested tier name onto the declared tiers: an
// exact name match wins; an empty or undeclared name falls back to the
// configured "default" tier if one exists, else to the implicit
// {Name: "default", Weight: 1, Priority: 0}. Non-positive weights
// normalize to 1 so a zero-valued Tier literal still dispatches.
func ResolveTier(tiers []Tier, name string) Tier {
	if name == "" {
		name = DefaultTierName
	}
	for _, t := range tiers {
		if t.Name == name {
			return normalizeTier(t)
		}
	}
	if name != DefaultTierName {
		for _, t := range tiers {
			if t.Name == DefaultTierName {
				return normalizeTier(t)
			}
		}
	}
	return Tier{Name: DefaultTierName, Weight: 1}
}

func normalizeTier(t Tier) Tier {
	if t.Weight <= 0 {
		t.Weight = 1
	}
	return t
}

// Task is one unit of scheduled work: run on the given worker until
// done, or until cancel closes (then stop early and return an error,
// conventionally wrapping ctrl.ErrCanceled).
type Task func(worker int, cancel <-chan struct{}) error

// Request carries a submission's QoS intent into admission: who is
// submitting, under which tier, with what (optional) per-request
// weight override, deadline, and modeled run cost. The zero value
// (plus Tenant) reproduces the legacy Submit behavior: default tier,
// tier weight, no deadline, cost learned from history.
type Request struct {
	Tenant string
	// Tier names a declared Config.Tiers entry; empty or undeclared
	// resolves per ResolveTier.
	Tier string
	// Weight, when positive, overrides the tier's weight for this
	// tenant from this submission on.
	Weight float64
	// Deadline, when set, makes admission reject the request with
	// ErrDeadlineInfeasible if estimated wait + modeled run time cannot
	// meet it.
	Deadline time.Time
	// ModeledNs is the request's modeled run cost (DRAM-ns critical
	// path) when the caller knows it — a plan-cache hit gives the exact
	// scheduled makespan, a cold shape the static model's estimate.
	// Zero means unknown: the scheduler prices it at its trailing
	// average charge.
	ModeledNs float64
}

// Config sizes a Scheduler.
type Config struct {
	// Workers is the number of concurrent executors. Each queued job is
	// handed a worker index in [0, Workers); the serving layer maps the
	// index to a cluster channel.
	Workers int
	// QueueDepth bounds jobs queued across all tenants (running jobs do
	// not count). Submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// TenantQuota bounds one tenant's queued plus running jobs; 0 means
	// no per-tenant bound. Submissions beyond it fail with
	// ErrTenantQuota.
	TenantQuota int
	// Tiers declares the QoS classes submissions may name. Tenants in
	// an undeclared (or empty) tier resolve per ResolveTier. Declared
	// tiers get their registry series eagerly so dashboards see them
	// before the first submission.
	Tiers []Tier
	// Metrics, when set, is the registry the scheduler publishes its
	// counters, depth gauges, and latency histograms into (series named
	// "sched.*"; per-tenant histograms as "sched.queue_ns{tenant=T}";
	// per-tier counters as "sched.tier_dispatched{tier=T}").
	// When nil the scheduler keeps a private registry, so counters and
	// quantiles always work.
	Metrics *obs.Registry
}

// job is one submitted task moving through queued → running → done.
type job struct {
	tenant   string
	tier     string
	run      Task
	ctx      context.Context
	queuedAt time.Time
	// chargeNs is the modeled cost the job was admitted with (the
	// request's ModeledNs, or the trailing average when unknown); it is
	// the job's contribution to pendingModeledNs while queued and the
	// basis of its virtual-time charge at dispatch.
	chargeNs  float64
	estWaitNs int64

	done    chan struct{}
	err     error
	worker  int
	queueNs int64
	runNs   int64
	started bool
	fin     bool
}

// Ticket is the caller's handle on a submitted job — the future the
// facade wraps.
type Ticket struct{ j *job }

// Done returns a channel closed when the job finishes (successfully,
// with an error, or canceled).
func (t *Ticket) Done() <-chan struct{} { return t.j.done }

// Wait blocks until the job finishes and returns its error.
func (t *Ticket) Wait() error { <-t.j.done; return t.j.err }

// Worker returns the worker index that ran the job, or -1 if it never
// ran. Valid after Done.
func (t *Ticket) Worker() int { return t.j.worker }

// QueueNs returns how long the job waited in the queue; RunNs how long
// it ran. Valid after Done; both measured on the monotonic clock and
// never negative.
func (t *Ticket) QueueNs() int64 { return t.j.queueNs }

// RunNs returns the job's execution time in nanoseconds. Valid after
// Done.
func (t *Ticket) RunNs() int64 { return t.j.runNs }

// EstimatedWaitNs returns the queue wait admission predicted for this
// job; ModeledNs the modeled cost it was priced with. Valid
// immediately after submission — compare against QueueNs/RunNs after
// Done to audit the admission estimate.
func (t *Ticket) EstimatedWaitNs() int64 { return t.j.estWaitNs }

// ModeledNs returns the modeled run cost the job was admitted with.
func (t *Ticket) ModeledNs() float64 { return t.j.chargeNs }

// tenantState is one tenant's queue and counters.
type tenantState struct {
	queue   []*job
	running int

	// tier/weight are the tenant's current QoS assignment (last
	// submission wins); vt its weighted-fair virtual time — cumulative
	// chargeNs/weight over dispatched jobs, clamped up to the
	// scheduler's vclock on re-activation so an idle tenant cannot bank
	// credit and starve everyone on return.
	tier   string
	weight float64
	vt     float64

	submitted, completed, failed, rejected, canceled uint64
	busyNs, waitNs                                   int64
	modeledNs                                        float64
	// modeledCtr mirrors modeledNs as the registry series
	// sched.modeled_ns{tenant=T}, so the device-attribution pipeline can
	// cross-check its per-tenant DRAM-time bills against what the
	// scheduler observed without going through Stats.
	modeledCtr *obs.FloatCounter

	// queueHist/runHist are the tenant's latency distributions,
	// registered as sched.queue_ns{tenant=T} / sched.run_ns{tenant=T}.
	// Registry series outlive tenant-state eviction (bounded by the
	// registry's own series cap), so a returning tenant reattaches to
	// its history.
	queueHist, runHist *obs.Histogram
}

// tierState is one tier's counters and registry series.
type tierState struct {
	cfg     Tier
	queued  int
	running int

	dispatched, rejected, deadlineRejects, preempts *obs.Counter
	modeledCtr                                      *obs.FloatCounter
	gQueued                                         *obs.Gauge
}

// Scheduler dispatches tenant jobs onto a fixed worker pool. Safe for
// concurrent use.
type Scheduler struct {
	cfg  Config
	mu   sync.Mutex
	cond *sync.Cond

	tenants map[string]*tenantState
	tiers   map[string]*tierState
	active  []string        // tenants with queued work (unordered set; pop scans for min vt)
	boost   map[string]bool // tiers whose SLO burn preempts queued lower-priority work
	queued  int
	running int
	closed  bool
	wg      sync.WaitGroup

	// vclock is the virtual time of the most recently dispatched
	// tenant; a tenant (re)joining the active set starts no earlier, so
	// idle time is not bankable. pendingModeledNs is the summed modeled
	// cost of everything still queued; avgChargeNs an EWMA of observed
	// per-job modeled costs (prices requests that carry no estimate);
	// calib an EWMA of wall-ns per modeled-ns over completed jobs
	// (converts modeled backlog into predicted wall-clock wait).
	vclock           float64
	pendingModeledNs float64
	avgChargeNs      float64
	calib            float64

	// Global counters, gauges, and latency histograms live in the
	// metrics registry (cfg.Metrics or a private one), so external
	// observers and Stats() read the same numbers.
	metrics                                          *obs.Registry
	submitted, completed, failed, rejected, canceled *obs.Counter
	gQueued, gRunning                                *obs.Gauge
	queueHist, runHist, jobHist                      *obs.Histogram
}

// New starts a scheduler with cfg.Workers worker goroutines. Workers
// and QueueDepth below 1 default to 1.
func New(cfg Config) *Scheduler {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	s := &Scheduler{
		cfg:     cfg,
		tenants: map[string]*tenantState{},
		tiers:   map[string]*tierState{},
		calib:   1.0,
	}
	s.metrics = cfg.Metrics
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	s.submitted = s.metrics.Counter("sched.submitted")
	s.completed = s.metrics.Counter("sched.completed")
	s.failed = s.metrics.Counter("sched.failed")
	s.rejected = s.metrics.Counter("sched.rejected")
	s.canceled = s.metrics.Counter("sched.canceled")
	s.gQueued = s.metrics.Gauge("sched.queued")
	s.gRunning = s.metrics.Gauge("sched.running")
	s.queueHist = s.metrics.Histogram("sched.queue_ns")
	s.runHist = s.metrics.Histogram("sched.run_ns")
	s.jobHist = s.metrics.Histogram("sched.job_ns")
	// Declared tiers get their series eagerly so a tier that never
	// receives traffic still shows up (at zero) in dashboards and in
	// Stats().Tiers.
	for _, t := range cfg.Tiers {
		s.tierLocked(normalizeTier(t))
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go s.worker(w)
	}
	return s
}

// Submit enqueues a job for the tenant under the default tier with no
// deadline — the legacy submission path, kept as a thin wrapper over
// SubmitRequest. It never blocks: over-capacity submissions fail
// immediately with an *AdmissionError wrapping ErrQueueFull or
// ErrTenantQuota, and a context already expired fails with its error.
// ctx may be nil (never cancels).
func (s *Scheduler) Submit(ctx context.Context, tenant string, run Task) (*Ticket, error) {
	return s.SubmitRequest(ctx, Request{Tenant: tenant}, run)
}

// SubmitRequest enqueues a job with full QoS intent: tier, weight
// override, deadline, and modeled cost. Admission applies, in order:
// the global queue depth (ErrQueueFull), the tenant quota
// (ErrTenantQuota), the tier's MaxQueueNs backlog bound (ErrQueueFull,
// reason "tier-backlog"), and the deadline feasibility check
// (ErrDeadlineInfeasible). All rejections are typed *AdmissionError
// values and happen before the job is queued — a rejected job is never
// visible to dispatch.
func (s *Scheduler) SubmitRequest(ctx context.Context, req Request, run Task) (*Ticket, error) {
	if run == nil {
		return nil, errors.New("sched: nil task")
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	tier := ResolveTier(s.cfg.Tiers, req.Tier)
	tst := s.tierLocked(tier)
	ts := s.tenantLocked(req.Tenant)
	ts.tier = tier.Name
	ts.weight = tier.Weight
	if req.Weight > 0 {
		ts.weight = req.Weight
	}
	// Price the request: its own modeled cost when known, else the
	// trailing average charge. estWait converts the queued modeled
	// backlog into predicted wall-clock wait through the calibration
	// EWMA, spread across the worker pool.
	charge := req.ModeledNs
	if charge <= 0 {
		charge = s.avgChargeNs
	}
	estWait := int64(s.calib * s.pendingModeledNs / float64(s.cfg.Workers))
	reject := func(reason string, sentinel error) (*Ticket, error) {
		s.rejected.Inc()
		ts.rejected++
		tst.rejected.Inc()
		if reason == ReasonDeadline {
			tst.deadlineRejects.Inc()
		}
		depth := s.queued
		s.mu.Unlock()
		return nil, &AdmissionError{
			Reason: reason, Tenant: req.Tenant, Tier: tier.Name,
			QueueDepth: depth, EstimatedWaitNs: estWait, ModeledNs: req.ModeledNs,
			err: sentinel,
		}
	}
	if s.queued >= s.cfg.QueueDepth {
		return reject(ReasonQueueFull, ErrQueueFull)
	}
	if s.cfg.TenantQuota > 0 && len(ts.queue)+ts.running >= s.cfg.TenantQuota {
		return reject(ReasonTenantQuota, ErrTenantQuota)
	}
	if tier.MaxQueueNs > 0 && estWait > tier.MaxQueueNs {
		return reject(ReasonTierBacklog, ErrQueueFull)
	}
	if !req.Deadline.IsZero() {
		finish := time.Now().Add(time.Duration(estWait) + time.Duration(s.calib*charge))
		if finish.After(req.Deadline) {
			return reject(ReasonDeadline, ErrDeadlineInfeasible)
		}
	}
	j := &job{
		tenant: req.Tenant, tier: tier.Name, run: run, ctx: ctx,
		queuedAt: time.Now(), chargeNs: charge, estWaitNs: estWait,
		done: make(chan struct{}), worker: -1,
	}
	if len(ts.queue) == 0 {
		// (Re-)activation: the tenant's virtual time catches up to the
		// scheduler's clock — less a bounded lag of a couple of average
		// jobs, so a closed-loop caller whose queue drains for a moment
		// between completion and resubmission keeps its earned position
		// (borrowed-virtual-time style). Longer idle periods are still
		// not bankable credit.
		if floor := s.vclock - reactivationLagJobs*s.avgChargeNs/ts.weight; ts.vt < floor {
			ts.vt = floor
		}
		if seed := ts.modeledNs / ts.weight; ts.vt < seed && s.vclock >= seed {
			ts.vt = seed
		}
		s.active = append(s.active, req.Tenant)
	}
	ts.queue = append(ts.queue, j)
	ts.submitted++
	s.submitted.Inc()
	s.queued++
	s.gQueued.Set(int64(s.queued))
	s.pendingModeledNs += j.chargeNs
	tst.queued++
	tst.gQueued.Set(int64(tst.queued))
	s.cond.Signal()
	s.mu.Unlock()

	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.cancelQueued(j)
			case <-j.done:
			}
		}()
	}
	return &Ticket{j: j}, nil
}

// SetBoost declares which tiers currently have an active SLO burn:
// while a boosted tier has queued work, dispatch restricts itself to
// the highest-priority boosted tier, preempting queued (never running)
// lower-priority jobs. The serving layer calls this from its SLO
// evaluation loop; passing an empty or nil map restores pure weighted
// fairness.
func (s *Scheduler) SetBoost(tiers map[string]bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(tiers) == 0 {
		s.boost = nil
		return
	}
	b := make(map[string]bool, len(tiers))
	for name, on := range tiers {
		if on {
			b[name] = true
		}
	}
	if len(b) == 0 {
		b = nil
	}
	s.boost = b
}

// cancelQueued resolves a job whose context expired while it was still
// waiting in the queue, releasing its slot and quota. A job already
// taken by a worker is left alone — the worker's cancel channel is
// about to fire and preempt it.
func (s *Scheduler) cancelQueued(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.started || j.fin {
		return
	}
	ts := s.tenants[j.tenant]
	for i, q := range ts.queue {
		if q == j {
			ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
			s.dequeuedLocked(j)
			if len(ts.queue) == 0 {
				s.dropActive(j.tenant)
			}
			break
		}
	}
	j.queueNs = durationNs(j.queuedAt, time.Now())
	s.finishLocked(j, j.ctx.Err(), true)
}

// dequeuedLocked updates the global and per-tier queue accounting for
// a job leaving the queue (dispatched, canceled, or drained). Caller
// holds mu.
func (s *Scheduler) dequeuedLocked(j *job) {
	s.queued--
	s.gQueued.Set(int64(s.queued))
	s.pendingModeledNs -= j.chargeNs
	if s.pendingModeledNs < 0 {
		s.pendingModeledNs = 0
	}
	if tst := s.tiers[j.tier]; tst != nil {
		tst.queued--
		tst.gQueued.Set(int64(tst.queued))
	}
}

// dropActive removes a tenant from the active set.
func (s *Scheduler) dropActive(tenant string) {
	for i, name := range s.active {
		if name == tenant {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return
		}
	}
}

// pop takes the next job under weighted fair queueing: the active
// tenant with the lowest virtual time wins (ties broken by name), and
// its tenant is charged chargeNs/weight of virtual time. When a
// boosted tier has queued work, tiers of strictly lower priority are
// excluded from this dispatch — their queued jobs wait — and a
// dispatch the boosted tier takes past skipped work counts as a
// preemption. Caller holds mu.
func (s *Scheduler) pop() *job {
	if len(s.active) == 0 {
		return nil
	}
	// Boost filter: the highest-priority boosted tier with queued work,
	// if any, owns this dispatch.
	var boostTier *tierState
	if len(s.boost) > 0 {
		for _, name := range s.active {
			ts := s.tenants[name]
			if !s.boost[ts.tier] {
				continue
			}
			tst := s.tiers[ts.tier]
			if tst == nil {
				continue
			}
			if boostTier == nil || tst.cfg.Priority > boostTier.cfg.Priority {
				boostTier = tst
			}
		}
	}
	best := ""
	skippedLower := false
	for _, name := range s.active {
		ts := s.tenants[name]
		// A boost excludes only strictly lower-priority tiers: tiers at
		// or above the boosted priority keep competing by weighted
		// fairness, so a breaching bottom tier cannot lock out the tiers
		// above it.
		if boostTier != nil {
			if tst := s.tiers[ts.tier]; tst == nil || tst.cfg.Priority < boostTier.cfg.Priority {
				skippedLower = true
				continue
			}
		}
		if best == "" {
			best = name
			continue
		}
		bs := s.tenants[best]
		if ts.vt < bs.vt || (ts.vt == bs.vt && name < best) {
			best = name
		}
	}
	if best == "" {
		return nil
	}
	ts := s.tenants[best]
	j := ts.queue[0]
	ts.queue = ts.queue[1:]
	s.dequeuedLocked(j)
	if len(ts.queue) == 0 {
		s.dropActive(best)
	}
	// Charge virtual time: the job's admitted modeled cost over the
	// tenant's weight, with a unit fallback so a cold scheduler (no
	// history, no estimates) still interleaves round-robin.
	charge := j.chargeNs
	if charge <= 0 {
		charge = 1
	}
	s.vclock = ts.vt
	ts.vt += charge / ts.weight
	if tst := s.tiers[j.tier]; tst != nil {
		tst.dispatched.Inc()
		tst.modeledCtr.Add(charge)
		if skippedLower && s.boost[j.tier] {
			tst.preempts.Inc()
		}
	}
	return j
}

// Observe feeds one executed job's modeled cost back into the
// tenant's accounting — the serving layer reports each completed
// batch's modeled DRAM time (critical path) here, so capacity stats
// can price tenants in simulated-hardware time rather than host wall
// time (which inflates under host contention). The trailing average
// charge (which prices estimate-less submissions) updates here too.
// Unknown tenants (e.g. already evicted by the tenant-state cap) are
// recorded fresh.
func (s *Scheduler) Observe(tenant string, modeledNs float64) {
	if modeledNs <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenantLocked(tenant)
	ts.modeledNs += modeledNs
	ts.modeledCtr.Add(modeledNs)
	if s.avgChargeNs <= 0 {
		s.avgChargeNs = modeledNs
	} else {
		s.avgChargeNs = 0.875*s.avgChargeNs + 0.125*modeledNs
	}
}

// tenantLocked returns the tenant's state, creating it (with its
// registry-backed latency histograms) on first sight. Caller holds mu.
func (s *Scheduler) tenantLocked(tenant string) *tenantState {
	ts := s.tenants[tenant]
	if ts == nil {
		ts = &tenantState{
			tier:       DefaultTierName,
			weight:     1,
			queueHist:  s.metrics.Histogram(obs.TenantSeries("sched.queue_ns", "tenant", tenant)),
			runHist:    s.metrics.Histogram(obs.TenantSeries("sched.run_ns", "tenant", tenant)),
			modeledCtr: s.metrics.FloatCounter(obs.TenantSeries("sched.modeled_ns", "tenant", tenant)),
		}
		s.tenants[tenant] = ts
	}
	return ts
}

// tierLocked returns the tier's state, creating it (with its registry
// series) on first sight. Caller holds mu (or runs in New before the
// workers start).
func (s *Scheduler) tierLocked(t Tier) *tierState {
	tst := s.tiers[t.Name]
	if tst == nil {
		tst = &tierState{
			cfg:             t,
			dispatched:      s.metrics.Counter(obs.TenantSeries("sched.tier_dispatched", "tier", t.Name)),
			rejected:        s.metrics.Counter(obs.TenantSeries("sched.tier_rejected", "tier", t.Name)),
			deadlineRejects: s.metrics.Counter(obs.TenantSeries("sched.tier_deadline_rejects", "tier", t.Name)),
			preempts:        s.metrics.Counter(obs.TenantSeries("sched.tier_preempts", "tier", t.Name)),
			modeledCtr:      s.metrics.FloatCounter(obs.TenantSeries("sched.tier_modeled_ns", "tier", t.Name)),
			gQueued:         s.metrics.Gauge(obs.TenantSeries("sched.tier_queued", "tier", t.Name)),
		}
		s.tiers[t.Name] = tst
	}
	return tst
}

// tenantStateCap bounds how many per-tenant records the scheduler
// retains: beyond it, records of idle tenants (nothing queued or
// running) are evicted oldest-iteration-order-first, so unbounded
// tenant cardinality — millions of distinct IDs, or an ID per request
// — cannot grow the scheduler's memory or Stats cost without bound.
// The global counters are unaffected; an evicted tenant that returns
// simply starts a fresh per-tenant record.
const tenantStateCap = 4096

// reactivationLagJobs bounds the virtual-time credit a tenant keeps
// across a brief idle gap: on re-activation its virtual time is
// clamped to the scheduler's clock minus this many average jobs'
// weighted charge. Zero lag would make weighted shares fragile for
// closed-loop clients (every momentary queue drain forfeits the
// tenant's earned position); unbounded lag would let a long-idle
// tenant return and starve everyone. Two jobs covers the
// completion-to-resubmission gap without meaningfully distorting
// shares.
const reactivationLagJobs = 2

// finishLocked resolves a job and updates the counters. canceled
// marks jobs that never ran (context expired in queue, or drained by
// Close). Caller holds mu.
func (s *Scheduler) finishLocked(j *job, err error, canceled bool) {
	if j.fin {
		return
	}
	j.fin = true
	j.err = err
	ts := s.tenantLocked(j.tenant)
	switch {
	case canceled:
		s.canceled.Inc()
		ts.canceled++
	case err != nil:
		s.failed.Inc()
		ts.failed++
	default:
		s.completed.Inc()
		ts.completed++
	}
	ts.busyNs += j.runNs
	ts.waitNs += j.queueNs
	// Calibration: completed jobs that carried a modeled-cost estimate
	// teach the scheduler how many wall nanoseconds one modeled
	// nanosecond costs on this host, which is what turns the queued
	// modeled backlog into a wall-clock wait prediction at admission.
	if j.started && j.chargeNs > 0 && j.runNs > 0 {
		ratio := float64(j.runNs) / j.chargeNs
		s.calib = 0.875*s.calib + 0.125*ratio
	}
	// Latency distributions: every finished job contributes its queue
	// wait; only jobs that actually ran contribute run and end-to-end
	// times (a canceled-in-queue job has no run to speak of).
	s.queueHist.Observe(j.queueNs)
	ts.queueHist.Observe(j.queueNs)
	if j.started {
		s.runHist.Observe(j.runNs)
		ts.runHist.Observe(j.runNs)
		s.jobHist.Observe(j.queueNs + j.runNs)
	}
	close(j.done)
	if len(s.tenants) > tenantStateCap {
		for name, t := range s.tenants {
			if len(t.queue) == 0 && t.running == 0 {
				delete(s.tenants, name)
				if len(s.tenants) <= tenantStateCap {
					break
				}
			}
		}
	}
}

// worker is one executor loop: wait for work, run it with a
// context-driven cancel channel, resolve the ticket.
func (s *Scheduler) worker(w int) {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for !s.closed && s.queued == 0 {
			s.cond.Wait()
		}
		j := s.pop()
		if j == nil {
			if s.closed {
				s.mu.Unlock()
				return
			}
			continue
		}
		if j.ctx != nil && j.ctx.Err() != nil {
			// Canceled while queued and not yet reaped by its watcher.
			j.queueNs = durationNs(j.queuedAt, time.Now())
			s.finishLocked(j, j.ctx.Err(), true)
			continue
		}
		j.started = true
		ts := s.tenants[j.tenant]
		ts.running++
		s.running++
		s.gRunning.Set(int64(s.running))
		tst := s.tiers[j.tier]
		if tst != nil {
			tst.running++
		}
		s.mu.Unlock()

		start := time.Now()
		j.queueNs = durationNs(j.queuedAt, start)
		cancel := make(chan struct{})
		stop := make(chan struct{})
		if j.ctx != nil && j.ctx.Done() != nil {
			ctx := j.ctx
			go func() {
				select {
				case <-ctx.Done():
					close(cancel)
				case <-stop:
				}
			}()
		}
		err := runTask(j.run, w, cancel)
		close(stop)
		j.runNs = durationNs(start, time.Now())
		j.worker = w

		s.mu.Lock()
		ts.running--
		s.running--
		s.gRunning.Set(int64(s.running))
		if tst != nil {
			tst.running--
		}
		s.finishLocked(j, err, false)
	}
}

// runTask runs one job closure, containing a panic as that job's
// error: a bad request from one tenant must not take down the workers
// serving everyone else.
func runTask(t Task, w int, cancel <-chan struct{}) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: job panicked: %v", r)
		}
	}()
	return t(w, cancel)
}

// Close stops admission, fails every still-queued job with ErrClosed,
// waits for running jobs to finish, and stops the workers. Idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for {
		j := s.pop()
		if j == nil {
			break
		}
		j.queueNs = durationNs(j.queuedAt, time.Now())
		s.finishLocked(j, ErrClosed, true)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// TenantStats is one tenant's point-in-time counters.
type TenantStats struct {
	// Tier is the QoS tier the tenant's submissions currently resolve
	// to; Weight its effective dispatch weight.
	Tier   string
	Weight float64

	Submitted, Completed, Failed, Rejected, Canceled uint64
	Queued, Running                                  int
	// BusyNs is cumulative wall time the tenant's jobs spent running;
	// WaitNs cumulative time they spent queued. Monotonic, never
	// negative, regardless of the order jobs complete in.
	BusyNs, WaitNs int64
	// ModeledNs is the cumulative modeled execution cost reported via
	// Observe — zero unless the execution layer feeds its stats back.
	ModeledNs float64
	// Queue/Run quantiles come from the tenant's log-scale latency
	// histograms (relative error bounded at 1/8): honest tail latency
	// per tenant, not a mean in disguise. Zero until a job finishes.
	QueueP50Ns, QueueP99Ns, QueueP999Ns int64
	RunP50Ns, RunP99Ns, RunP999Ns       int64
}

// TierStats is one tier's point-in-time counters and merged latency
// distribution: the quantiles come from merging every member tenant's
// queue/run histograms bucket-wise, so when all tenants share one tier
// the tier quantiles equal the whole-population quantiles exactly.
type TierStats struct {
	Weight   float64
	Priority int
	// Tenants is how many tenants currently resolve to this tier.
	Tenants         int
	Queued, Running int
	// Dispatched counts jobs this tier's tenants have had dispatched;
	// Rejected its admission rejections (all reasons); DeadlineRejects
	// the subset rejected with ErrDeadlineInfeasible; Preempts how many
	// dispatches this tier took while boosted past queued
	// lower-priority work.
	Dispatched, Rejected, DeadlineRejects, Preempts uint64
	// ModeledNs is the cumulative modeled cost charged to this tier at
	// dispatch — the tier's consumption in DRAM-ns, whose ratio across
	// tiers is the achieved weighted share.
	ModeledNs float64
	// Merged queue/run latency quantiles over the tier's tenants.
	QueueP50Ns, QueueP99Ns, QueueP999Ns int64
	RunP50Ns, RunP99Ns, RunP999Ns       int64
}

// Stats is a point-in-time snapshot of the scheduler.
type Stats struct {
	Workers                                          int
	Queued, Running                                  int
	Submitted, Completed, Failed, Rejected, Canceled uint64
	Tenants                                          map[string]TenantStats
	// Tiers holds one entry per declared tier (plus any tier that has
	// seen traffic, including the implicit default).
	Tiers map[string]TierStats
}

// Stats returns a snapshot of the scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Workers: s.cfg.Workers,
		Queued:  s.queued, Running: s.running,
		Submitted: s.submitted.Value(), Completed: s.completed.Value(), Failed: s.failed.Value(),
		Rejected: s.rejected.Value(), Canceled: s.canceled.Value(),
		Tenants: make(map[string]TenantStats, len(s.tenants)),
		Tiers:   make(map[string]TierStats, len(s.tiers)),
	}
	// Per-tier merged histograms accumulate across member tenants while
	// we walk them once.
	type tierAgg struct{ queue, run obs.HistSnapshot }
	aggs := map[string]*tierAgg{}
	for name, ts := range s.tenants {
		qh, rh := ts.queueHist.Snapshot(), ts.runHist.Snapshot()
		st.Tenants[name] = TenantStats{
			Tier: ts.tier, Weight: ts.weight,
			Submitted: ts.submitted, Completed: ts.completed, Failed: ts.failed,
			Rejected: ts.rejected, Canceled: ts.canceled,
			Queued: len(ts.queue), Running: ts.running,
			BusyNs: ts.busyNs, WaitNs: ts.waitNs,
			ModeledNs:  ts.modeledNs,
			QueueP50Ns: qh.Quantile(0.50), QueueP99Ns: qh.Quantile(0.99), QueueP999Ns: qh.Quantile(0.999),
			RunP50Ns: rh.Quantile(0.50), RunP99Ns: rh.Quantile(0.99), RunP999Ns: rh.Quantile(0.999),
		}
		agg := aggs[ts.tier]
		if agg == nil {
			agg = &tierAgg{}
			aggs[ts.tier] = agg
		}
		agg.queue.Merge(qh)
		agg.run.Merge(rh)
	}
	for name, tst := range s.tiers {
		t := TierStats{
			Weight: tst.cfg.Weight, Priority: tst.cfg.Priority,
			Queued: tst.queued, Running: tst.running,
			Dispatched: tst.dispatched.Value(), Rejected: tst.rejected.Value(),
			DeadlineRejects: tst.deadlineRejects.Value(), Preempts: tst.preempts.Value(),
			ModeledNs: tst.modeledCtr.Value(),
		}
		for _, ts := range s.tenants {
			if ts.tier == name {
				t.Tenants++
			}
		}
		if agg := aggs[name]; agg != nil {
			t.QueueP50Ns = agg.queue.Quantile(0.50)
			t.QueueP99Ns = agg.queue.Quantile(0.99)
			t.QueueP999Ns = agg.queue.Quantile(0.999)
			t.RunP50Ns = agg.run.Quantile(0.50)
			t.RunP99Ns = agg.run.Quantile(0.99)
			t.RunP999Ns = agg.run.Quantile(0.999)
		}
		st.Tiers[name] = t
	}
	return st
}

// TierNames returns the declared tier names in a stable order —
// convenience for demos and dashboards iterating Stats().Tiers.
func (s *Scheduler) TierNames() []string {
	s.mu.Lock()
	names := make([]string, 0, len(s.tiers))
	for name := range s.tiers {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	return names
}

// Metrics returns the registry the scheduler publishes into (the one
// from Config.Metrics, or the private fallback).
func (s *Scheduler) Metrics() *obs.Registry { return s.metrics }

// durationNs returns b−a in nanoseconds, clamped at zero — the
// queue-era monotonic guard. Go's time.Time carries a monotonic
// reading, so Sub normally cannot go backwards across wall-clock
// adjustments; the clamp covers values that lost that reading
// (serialization round-trips, explicit wall arithmetic) and pins the
// invariant the stats layer relies on: per-job durations are
// non-negative no matter in what order jobs complete.
func durationNs(a, b time.Time) int64 {
	d := b.Sub(a).Nanoseconds()
	if d < 0 {
		return 0
	}
	return d
}
