package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// blockedScheduler returns a 1-worker scheduler whose worker is
// wedged on a gate job, so later submissions queue deterministically.
func blockedScheduler(t *testing.T, cfg Config) (*Scheduler, chan struct{}, *Ticket) {
	t.Helper()
	cfg.Workers = 1
	s := New(cfg)
	gate := make(chan struct{})
	blocker, err := s.Submit(nil, "blocker", func(worker int, cancel <-chan struct{}) error {
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker actually picked the blocker up, so the
	// queue is empty and counts are deterministic.
	for i := 0; ; i++ {
		st := s.Stats()
		if st.Running == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("worker never started the blocker job")
		}
		time.Sleep(time.Millisecond)
	}
	return s, gate, blocker
}

func TestRoundRobinFairness(t *testing.T) {
	s, gate, blocker := blockedScheduler(t, Config{QueueDepth: 16})
	defer s.Close()

	var mu sync.Mutex
	var order []string
	task := func(name string) Task {
		return func(worker int, cancel <-chan struct{}) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}
	}
	// Tenant a floods first; tenant b arrives after. Round-robin must
	// interleave them rather than draining a's backlog first.
	var tickets []*Ticket
	for _, sub := range []struct{ tenant, name string }{
		{"a", "a1"}, {"a", "a2"}, {"a", "a3"}, {"b", "b1"}, {"b", "b2"},
	} {
		tk, err := s.Submit(nil, sub.tenant, task(sub.name))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"a1", "b1", "a2", "b2", "a3"}
	if len(order) != len(want) {
		t.Fatalf("ran %d jobs, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v (one job per tenant per turn)", order, want)
		}
	}
}

func TestPanickingJobContainedAsError(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()

	bad, err := s.Submit(nil, "a", func(worker int, cancel <-chan struct{}) error {
		panic("tenant bug")
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Wait(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking job: err = %v, want a contained panic error", err)
	}
	// The worker must survive to run the next tenant's job.
	okTk, err := s.Submit(nil, "b", func(worker int, cancel <-chan struct{}) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := okTk.Wait(); err != nil {
		t.Fatalf("job after a panic: %v (worker died?)", err)
	}
	st := s.Stats()
	if st.Tenants["a"].Failed != 1 || st.Tenants["b"].Completed != 1 {
		t.Fatalf("stats after panic: a.Failed=%d b.Completed=%d, want 1/1",
			st.Tenants["a"].Failed, st.Tenants["b"].Completed)
	}
}

func TestQueueFullRejection(t *testing.T) {
	s, gate, _ := blockedScheduler(t, Config{QueueDepth: 2})
	defer s.Close()
	defer close(gate)

	ok := func(worker int, cancel <-chan struct{}) error { return nil }
	if _, err := s.Submit(nil, "a", ok); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(nil, "b", ok); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(nil, "c", ok); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third queued submission: err = %v, want ErrQueueFull", err)
	}
	st := s.Stats()
	if st.Rejected != 1 || st.Tenants["c"].Rejected != 1 {
		t.Fatalf("rejected counters: total %d, tenant-c %d, want 1/1", st.Rejected, st.Tenants["c"].Rejected)
	}
}

func TestTenantQuotaRejection(t *testing.T) {
	// The blocker (tenant "blocker") is RUNNING and must count toward
	// its own quota of 1; other tenants are unaffected.
	s, gate, _ := blockedScheduler(t, Config{QueueDepth: 16, TenantQuota: 1})
	defer s.Close()
	defer close(gate)

	ok := func(worker int, cancel <-chan struct{}) error { return nil }
	if _, err := s.Submit(nil, "blocker", ok); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("over-quota submission: err = %v, want ErrTenantQuota", err)
	}
	if _, err := s.Submit(nil, "other", ok); err != nil {
		t.Fatalf("other tenant must not be affected by blocker's quota: %v", err)
	}
	if _, err := s.Submit(nil, "other", ok); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("other tenant's second queued job: err = %v, want ErrTenantQuota", err)
	}
}

func TestContextCanceledMidQueue(t *testing.T) {
	s, gate, _ := blockedScheduler(t, Config{QueueDepth: 1})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	tk, err := s.Submit(ctx, "a", func(worker int, c <-chan struct{}) error {
		ran = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	// The job resolves with the context error without ever running,
	// even though the worker is still wedged.
	if err := tk.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("canceled queued job must not run")
	}
	// Its queue slot was released: the queue (depth 1) accepts again.
	if _, err := s.Submit(nil, "a", func(worker int, c <-chan struct{}) error { return nil }); err != nil {
		t.Fatalf("slot not released after mid-queue cancel: %v", err)
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Fatalf("canceled counter = %d, want 1", st.Canceled)
	}
	close(gate)
}

func TestContextCancelPreemptsRunningJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	tk, err := s.Submit(ctx, "a", func(worker int, c <-chan struct{}) error {
		close(started)
		<-c // the cancel channel must fire when ctx expires
		return errors.New("preempted")
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel()
	if err := tk.Wait(); err == nil || err.Error() != "preempted" {
		t.Fatalf("Wait = %v, want the job's own preemption error", err)
	}
}

func TestExpiredContextRejectedAtSubmit(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, "a", func(worker int, c <-chan struct{}) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with expired ctx = %v, want context.Canceled", err)
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	s, gate, blocker := blockedScheduler(t, Config{QueueDepth: 8})
	tk, err := s.Submit(nil, "a", func(worker int, c <-chan struct{}) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	// The queued job fails with ErrClosed during the drain, while the
	// running blocker is still in flight.
	if err := tk.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("queued job after Close: err = %v, want ErrClosed", err)
	}
	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatalf("running job must complete through Close: %v", err)
	}
	<-closed
	if _, err := s.Submit(nil, "a", func(worker int, c <-chan struct{}) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
}

func TestTicketTimingsAndStats(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Close()
	tk, err := s.Submit(nil, "a", func(worker int, c <-chan struct{}) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if tk.RunNs() < int64(time.Millisecond) {
		t.Fatalf("RunNs = %d, want >= 1ms", tk.RunNs())
	}
	if tk.QueueNs() < 0 || tk.Worker() < 0 || tk.Worker() > 1 {
		t.Fatalf("QueueNs=%d Worker=%d out of range", tk.QueueNs(), tk.Worker())
	}
	st := s.Stats()
	ts := st.Tenants["a"]
	if ts.Completed != 1 || ts.BusyNs < int64(time.Millisecond) {
		t.Fatalf("tenant stats %+v, want 1 completed with >=1ms busy", ts)
	}
}

// TestDurationNsMonotonicGuard pins the queue-era clock guard: a
// degenerate interval (end before start, as after a wall-clock
// adjustment on times that lost their monotonic reading) clamps to
// zero instead of going negative.
func TestDurationNsMonotonicGuard(t *testing.T) {
	a := time.Now()
	b := a.Add(5 * time.Millisecond)
	if got := durationNs(a, b); got != int64(5*time.Millisecond) {
		t.Fatalf("forward interval = %d, want 5ms", got)
	}
	// Strip the monotonic reading and reverse the interval.
	ar, br := a.Round(0), b.Round(0)
	if got := durationNs(br, ar); got != 0 {
		t.Fatalf("reversed interval = %d, want clamped 0", got)
	}
}

// TestTenantStateBounded pins the cardinality guard: unbounded
// distinct tenant IDs must not grow the retained per-tenant records
// past the cap, while the global counters stay exact.
func TestTenantStateBounded(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Close()
	const total = tenantStateCap + 100
	for i := 0; i < total; i++ {
		tk, err := s.Submit(nil, fmt.Sprintf("tenant-%d", i), func(worker int, c <-chan struct{}) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if len(st.Tenants) > tenantStateCap {
		t.Fatalf("retained %d tenant records, cap %d", len(st.Tenants), tenantStateCap)
	}
	if st.Completed != total {
		t.Fatalf("completed = %d, want %d (eviction must not touch global counters)", st.Completed, total)
	}
}

func TestConcurrentSubmitStress(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64, TenantQuota: 32})
	defer s.Close()
	var wg sync.WaitGroup
	var accepted, rejected int64
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := string(rune('a' + g%4))
			for i := 0; i < 50; i++ {
				tk, err := s.Submit(nil, tenant, func(worker int, c <-chan struct{}) error { return nil })
				if err != nil {
					if !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrTenantQuota) {
						t.Errorf("unexpected submit error: %v", err)
					}
					mu.Lock()
					rejected++
					mu.Unlock()
					continue
				}
				mu.Lock()
				accepted++
				mu.Unlock()
				if err := tk.Wait(); err != nil {
					t.Errorf("job failed: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if int64(st.Completed) != accepted {
		t.Fatalf("completed %d, accepted %d", st.Completed, accepted)
	}
	if int64(st.Rejected) != rejected {
		t.Fatalf("rejected counter %d, observed %d", st.Rejected, rejected)
	}
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("scheduler not drained: %+v", st)
	}
}

// TestObserveFeedsTenantModeledTime pins the execution-stats feedback
// path: modeled costs reported through Observe accumulate per tenant,
// non-positive reports are ignored, and unknown tenants get a fresh
// record.
func TestObserveFeedsTenantModeledTime(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	tk, err := s.Submit(nil, "a", func(int, <-chan struct{}) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	s.Observe("a", 1500)
	s.Observe("a", 500)
	s.Observe("a", 0)          // ignored
	s.Observe("a", -10)        // ignored
	s.Observe("phantom", 2000) // never submitted: fresh record
	st := s.Stats()
	if got := st.Tenants["a"].ModeledNs; got != 2000 {
		t.Fatalf("tenant a ModeledNs = %v, want 2000", got)
	}
	if got := st.Tenants["phantom"].ModeledNs; got != 2000 {
		t.Fatalf("phantom tenant ModeledNs = %v, want 2000", got)
	}
}
