package sched

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestResolveTier(t *testing.T) {
	tiers := []Tier{
		{Name: "gold", Weight: 4, Priority: 1, MaxQueueNs: 100},
		{Name: "default", Weight: 2},
	}
	if got := ResolveTier(tiers, "gold"); got.Weight != 4 || got.Priority != 1 {
		t.Fatalf("exact match: %+v", got)
	}
	if got := ResolveTier(tiers, ""); got.Name != "default" || got.Weight != 2 {
		t.Fatalf("empty name must use the configured default: %+v", got)
	}
	if got := ResolveTier(tiers, "unknown"); got.Name != "default" || got.Weight != 2 {
		t.Fatalf("undeclared name must use the configured default: %+v", got)
	}
	if got := ResolveTier(nil, "anything"); got.Name != DefaultTierName || got.Weight != 1 {
		t.Fatalf("no config must yield the implicit default: %+v", got)
	}
	if got := ResolveTier([]Tier{{Name: "zero"}}, "zero"); got.Weight != 1 {
		t.Fatalf("non-positive weight must normalize to 1: %+v", got)
	}
}

// TestWeightedSharesConverge queues a sustained two-tier backlog and
// checks the dispatch shares track the 4:1 weight ratio within 10%
// while both tiers still have queued work.
func TestWeightedSharesConverge(t *testing.T) {
	cfg := Config{
		QueueDepth: 256,
		Tiers: []Tier{
			{Name: "gold", Weight: 4},
			{Name: "bronze", Weight: 1},
		},
	}
	s, gate, blocker := blockedScheduler(t, cfg)
	defer s.Close()

	var mu sync.Mutex
	var order []string
	task := func(tier string) Task {
		return func(worker int, cancel <-chan struct{}) error {
			mu.Lock()
			order = append(order, tier)
			mu.Unlock()
			return nil
		}
	}
	const perTier = 100
	var tickets []*Ticket
	for i := 0; i < perTier; i++ {
		for _, tier := range []string{"gold", "bronze"} {
			tk, err := s.SubmitRequest(nil, Request{
				Tenant: "tenant-" + tier, Tier: tier, ModeledNs: 1000,
			}, task(tier))
			if err != nil {
				t.Fatal(err)
			}
			tickets = append(tickets, tk)
		}
	}
	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Gold exhausts its 100-job backlog after ~125 dispatches; measure
	// the share over the first 100, where both tiers are still backed
	// up (sustained overload).
	gold := 0
	for _, tier := range order[:perTier] {
		if tier == "gold" {
			gold++
		}
	}
	bronze := perTier - gold
	if bronze == 0 {
		t.Fatal("bronze starved outright")
	}
	ratio := float64(gold) / float64(bronze)
	if ratio < 4*0.9 || ratio > 4*1.1 {
		t.Fatalf("gold:bronze dispatch ratio %.2f, want within 10%% of 4.0 (gold=%d bronze=%d)", ratio, gold, bronze)
	}
	st := s.Stats()
	if st.Tiers["gold"].Dispatched != perTier || st.Tiers["bronze"].Dispatched != perTier {
		t.Fatalf("tier dispatch counters: %+v", st.Tiers)
	}
	if st.Tiers["gold"].ModeledNs != perTier*1000 {
		t.Fatalf("gold tier modeled-ns charge = %.0f, want %d", st.Tiers["gold"].ModeledNs, perTier*1000)
	}
}

// TestBoostPreemptsQueuedWork checks that a boosted higher-priority
// tier's queued job jumps ahead of already-queued lower-priority work,
// and that the preemption is counted.
func TestBoostPreemptsQueuedWork(t *testing.T) {
	cfg := Config{
		QueueDepth: 16,
		Tiers: []Tier{
			{Name: "gold", Weight: 1, Priority: 1},
			{Name: "bronze", Weight: 1, Priority: 0},
		},
	}
	s, gate, blocker := blockedScheduler(t, cfg)
	defer s.Close()

	var mu sync.Mutex
	var order []string
	task := func(name string) Task {
		return func(worker int, cancel <-chan struct{}) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}
	}
	var tickets []*Ticket
	for _, sub := range []struct{ tier, name string }{
		{"bronze", "b1"}, {"bronze", "b2"}, {"gold", "g1"},
	} {
		tk, err := s.SubmitRequest(nil, Request{Tenant: sub.name, Tier: sub.tier}, task(sub.name))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	s.SetBoost(map[string]bool{"gold": true})
	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if order[0] != "g1" {
		t.Fatalf("boosted gold must dispatch first, got order %v", order)
	}
	if got := s.Stats().Tiers["gold"].Preempts; got == 0 {
		t.Fatal("gold's jump past queued bronze work must count as a preemption")
	}
	// With the boost cleared, fairness is purely weighted again.
	s.SetBoost(nil)
}

// TestDeadlineAdmission wedges the worker behind a large modeled
// backlog and checks that an infeasible deadline is rejected at
// admission — typed, never queued — while a feasible one is admitted.
func TestDeadlineAdmission(t *testing.T) {
	s, gate, blocker := blockedScheduler(t, Config{QueueDepth: 64})
	defer s.Close()
	defer close(gate)
	_ = blocker

	// 3 queued jobs × 1e9 modeled ns at calibration 1.0 ≈ 3s of
	// estimated wait ahead of any new arrival.
	for i := 0; i < 3; i++ {
		if _, err := s.SubmitRequest(nil, Request{Tenant: "bulk", ModeledNs: 1e9}, func(int, <-chan struct{}) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	_, err := s.SubmitRequest(nil, Request{
		Tenant: "dl", ModeledNs: 1e6, Deadline: time.Now().Add(10 * time.Millisecond),
	}, func(int, <-chan struct{}) error { return nil })
	if !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("infeasible deadline must reject with ErrDeadlineInfeasible, got %v", err)
	}
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("rejection must be a typed *AdmissionError, got %T", err)
	}
	if adm.Reason != ReasonDeadline || adm.Tenant != "dl" || adm.EstimatedWaitNs <= 0 {
		t.Fatalf("admission error fields: %+v", adm)
	}
	after := s.Stats()
	if after.Queued != before.Queued {
		t.Fatalf("deadline-rejected job must never be queued: depth %d → %d", before.Queued, after.Queued)
	}
	if after.Tiers[DefaultTierName].DeadlineRejects != 1 {
		t.Fatalf("tier deadline-reject counter: %+v", after.Tiers[DefaultTierName])
	}
	// A deadline past the backlog is feasible and admits normally.
	tk, err := s.SubmitRequest(nil, Request{
		Tenant: "dl", ModeledNs: 1e6, Deadline: time.Now().Add(time.Hour),
	}, func(int, <-chan struct{}) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if tk.EstimatedWaitNs() <= 0 {
		t.Fatal("admitted job must carry its admission estimate")
	}
}

// TestTierBacklogShedding checks MaxQueueNs: a tier that declared a
// queue-wait ceiling sheds submissions once the estimated wait
// exceeds it, wrapping ErrQueueFull under reason "tier-backlog".
func TestTierBacklogShedding(t *testing.T) {
	cfg := Config{
		QueueDepth: 64,
		Tiers:      []Tier{{Name: "latency", Weight: 1, MaxQueueNs: int64(time.Millisecond)}},
	}
	s, gate, blocker := blockedScheduler(t, cfg)
	defer s.Close()
	defer close(gate)
	_ = blocker

	for i := 0; i < 2; i++ {
		if _, err := s.SubmitRequest(nil, Request{Tenant: "bulk", ModeledNs: 1e9}, func(int, <-chan struct{}) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.SubmitRequest(nil, Request{Tenant: "lat", Tier: "latency"}, func(int, <-chan struct{}) error { return nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("tier backlog shedding must unwrap to ErrQueueFull, got %v", err)
	}
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Reason != ReasonTierBacklog || adm.Tier != "latency" {
		t.Fatalf("want tier-backlog AdmissionError, got %+v", adm)
	}
}

// TestAdmissionErrorRoundTrips checks every rejection reason unwraps
// to its sentinel through errors.Is, on top of the legacy Submit path.
func TestAdmissionErrorRoundTrips(t *testing.T) {
	s, gate, blocker := blockedScheduler(t, Config{QueueDepth: 1, TenantQuota: 1})
	defer s.Close()
	defer close(gate)
	_ = blocker

	if _, err := s.Submit(nil, "t1", func(int, <-chan struct{}) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// Queue is now full (depth 1): any tenant rejects with queue-full.
	_, err := s.Submit(nil, "t2", func(int, <-chan struct{}) error { return nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Reason != ReasonQueueFull || adm.QueueDepth != 1 {
		t.Fatalf("queue-full AdmissionError fields: %+v", adm)
	}
	// Same tenant again once a slot frees: quota (queued+running) hits
	// first. Build quota pressure with the blocker tenant itself.
	_, err = s.Submit(nil, "blocker", func(int, <-chan struct{}) error { return nil })
	if !errors.Is(err, ErrTenantQuota) && !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want a typed admission rejection, got %v", err)
	}
	if !errors.As(err, &adm) || adm.Tenant != "blocker" {
		t.Fatalf("AdmissionError must carry the tenant: %+v", adm)
	}
}

// TestTierMergeQuantiles checks the merged tier histogram is exact:
// when every tenant shares one tier, the tier's quantiles equal the
// whole-population quantiles from the scheduler's global histogram.
func TestTierMergeQuantiles(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 64})
	defer s.Close()
	var tickets []*Ticket
	for i := 0; i < 40; i++ {
		tenant := "even"
		if i%2 == 1 {
			tenant = "odd"
		}
		tk, err := s.Submit(nil, tenant, func(int, <-chan struct{}) error {
			time.Sleep(time.Duration(50+i) * time.Microsecond)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	tier, ok := st.Tiers[DefaultTierName]
	if !ok {
		t.Fatalf("default tier missing from Stats: %+v", st.Tiers)
	}
	global := s.Metrics().Histogram("sched.run_ns").Snapshot()
	globalQueue := s.Metrics().Histogram("sched.queue_ns").Snapshot()
	for _, q := range []float64{0.50, 0.99, 0.999} {
		if got, want := tierRunQuantile(tier, q), global.Quantile(q); got != want {
			t.Fatalf("tier run p%g = %d, global = %d — merge must be exact", q*100, got, want)
		}
		if got, want := tierQueueQuantile(tier, q), globalQueue.Quantile(q); got != want {
			t.Fatalf("tier queue p%g = %d, global = %d — merge must be exact", q*100, got, want)
		}
	}
}

func tierRunQuantile(t TierStats, q float64) int64 {
	switch q {
	case 0.50:
		return t.RunP50Ns
	case 0.99:
		return t.RunP99Ns
	default:
		return t.RunP999Ns
	}
}

func tierQueueQuantile(t TierStats, q float64) int64 {
	switch q {
	case 0.50:
		return t.QueueP50Ns
	case 0.99:
		return t.QueueP99Ns
	default:
		return t.QueueP999Ns
	}
}
