package logic

import "fmt"

// DecomposeAmbit rewrites a circuit into 2-input AND/OR plus NOT gates —
// the building blocks Ambit natively supports (AND/OR via triple-row
// activation with a control row, NOT via dual-contact cells). The result
// is the in-DRAM baseline SIMDRAM compares against: the same function
// without MAJ-native synthesis.
func DecomposeAmbit(c *Circuit) (*Circuit, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("logic: decompose: %w", err)
	}
	d := New()
	memo := make([]int, len(c.Nodes))
	for i, n := range c.Nodes {
		switch n.Kind {
		case KindInput:
			memo[i] = d.Input(n.Name)
		case KindConst:
			memo[i] = d.Const(n.Value)
		case KindNot:
			memo[i] = d.Not(memo[n.Fanins[0]])
		case KindAnd:
			memo[i] = foldBinary(d, d.And, n.Fanins, memo)
		case KindOr:
			memo[i] = foldBinary(d, d.Or, n.Fanins, memo)
		case KindXor:
			acc := memo[n.Fanins[0]]
			for _, f := range n.Fanins[1:] {
				b := memo[f]
				// a XOR b = OR(AND(a,!b), AND(!a,b))
				acc = d.Or(d.And(acc, d.Not(b)), d.And(d.Not(acc), b))
			}
			memo[i] = acc
		case KindMaj:
			a, b, e := memo[n.Fanins[0]], memo[n.Fanins[1]], memo[n.Fanins[2]]
			// MAJ(a,b,e) = OR(AND(a,b), AND(e, OR(a,b)))
			memo[i] = d.Or(d.And(a, b), d.And(e, d.Or(a, b)))
		case KindMux:
			s, tr, f := memo[n.Fanins[0]], memo[n.Fanins[1]], memo[n.Fanins[2]]
			memo[i] = d.Or(d.And(s, tr), d.And(d.Not(s), f))
		default:
			return nil, fmt.Errorf("logic: decompose: unknown kind %v", n.Kind)
		}
	}
	for i, o := range c.Outputs {
		name := ""
		if i < len(c.OutputNames) {
			name = c.OutputNames[i]
		}
		d.Output(memo[o], name)
	}
	return d, nil
}

func foldBinary(d *Circuit, op func(...int) int, fanins []int, memo []int) int {
	acc := memo[fanins[0]]
	for _, f := range fanins[1:] {
		acc = op(acc, memo[f])
	}
	return acc
}

// OnlyAmbitGates reports whether the circuit uses only INPUT/CONST/NOT
// and 2-input AND/OR gates.
func OnlyAmbitGates(c *Circuit) bool {
	for _, n := range c.Nodes {
		switch n.Kind {
		case KindInput, KindConst, KindNot:
		case KindAnd, KindOr:
			if len(n.Fanins) != 2 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
