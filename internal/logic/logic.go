// Package logic provides a gate-level intermediate representation for
// combinational circuits. It is the front end of the SIMDRAM framework:
// every SIMDRAM operation is first described as a Circuit built from
// AND/OR/XOR/NOT/MAJ/MUX gates, then lowered to a majority-inverter graph
// (package mig) and finally to a DRAM μProgram (package uprog).
//
// Circuits are directed acyclic graphs with structural hashing: building
// the same gate twice returns the same node. Evaluation is bit-parallel
// over 64-lane words, mirroring the SIMD execution model of the DRAM
// substrate where each bitline is one lane.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies the function a node computes.
type Kind uint8

// Node kinds. Input and Const are leaves; all others are gates.
const (
	KindInput Kind = iota
	KindConst
	KindNot
	KindAnd
	KindOr
	KindXor
	KindMaj // three-input majority
	KindMux // Fanins[0] ? Fanins[1] : Fanins[2]
)

// String returns the lowercase mnemonic of the kind.
func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindConst:
		return "const"
	case KindNot:
		return "not"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	case KindXor:
		return "xor"
	case KindMaj:
		return "maj"
	case KindMux:
		return "mux"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// arity returns the required fanin count for a kind, or -1 if variadic.
func (k Kind) arity() int {
	switch k {
	case KindInput, KindConst:
		return 0
	case KindNot:
		return 1
	case KindAnd, KindOr, KindXor:
		return -1 // 2 or more
	case KindMaj, KindMux:
		return 3
	default:
		return -1
	}
}

// Node is one vertex of a Circuit. Nodes are identified by their index in
// Circuit.Nodes; fanins reference earlier indices only (topological order
// is an invariant maintained by the builder).
type Node struct {
	Kind   Kind
	Fanins []int
	Value  bool   // constant value, only for KindConst
	Name   string // optional, for inputs and debugging
}

// Circuit is a combinational gate network. The zero value is not usable;
// construct circuits with New.
type Circuit struct {
	Nodes   []Node
	Inputs  []int // node indices of inputs, in declaration order
	Outputs []int // node indices of outputs, in declaration order

	OutputNames []string

	hash map[gateKey]int
}

type gateKey struct {
	kind   Kind
	fanins string
}

// New returns an empty circuit ready for building.
func New() *Circuit {
	return &Circuit{hash: make(map[gateKey]int)}
}

// NumInputs returns the number of declared inputs.
func (c *Circuit) NumInputs() int { return len(c.Inputs) }

// NumOutputs returns the number of declared outputs.
func (c *Circuit) NumOutputs() int { return len(c.Outputs) }

// Input declares a new primary input and returns its node index.
func (c *Circuit) Input(name string) int {
	idx := len(c.Nodes)
	c.Nodes = append(c.Nodes, Node{Kind: KindInput, Name: name})
	c.Inputs = append(c.Inputs, idx)
	return idx
}

// InputBus declares width inputs named name[0..width-1], LSB first.
func (c *Circuit) InputBus(name string, width int) []int {
	bus := make([]int, width)
	for i := range bus {
		bus[i] = c.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return bus
}

// Const returns the node index of the constant v. Constants are shared.
func (c *Circuit) Const(v bool) int {
	key := gateKey{kind: KindConst, fanins: fmt.Sprintf("%t", v)}
	if idx, ok := c.hash[key]; ok {
		return idx
	}
	idx := len(c.Nodes)
	c.Nodes = append(c.Nodes, Node{Kind: KindConst, Value: v})
	c.hash[key] = idx
	return idx
}

// gate adds (or reuses) a gate node of the given kind over fanins.
// Commutative kinds are canonicalized by sorting fanins.
func (c *Circuit) gate(kind Kind, fanins ...int) int {
	for _, f := range fanins {
		if f < 0 || f >= len(c.Nodes) {
			panic(fmt.Sprintf("logic: fanin %d out of range (have %d nodes)", f, len(c.Nodes)))
		}
	}
	canon := append([]int(nil), fanins...)
	switch kind {
	case KindAnd, KindOr, KindXor, KindMaj:
		sort.Ints(canon)
	}
	var sb strings.Builder
	for _, f := range canon {
		fmt.Fprintf(&sb, "%d,", f)
	}
	key := gateKey{kind: kind, fanins: sb.String()}
	if idx, ok := c.hash[key]; ok {
		return idx
	}
	idx := len(c.Nodes)
	c.Nodes = append(c.Nodes, Node{Kind: kind, Fanins: canon})
	c.hash[key] = idx
	return idx
}

// Not returns !a, folding double negation and constants.
func (c *Circuit) Not(a int) int {
	n := c.Nodes[a]
	switch n.Kind {
	case KindNot:
		return n.Fanins[0]
	case KindConst:
		return c.Const(!n.Value)
	}
	return c.gate(KindNot, a)
}

// And returns the conjunction of args (at least one), folding constants
// and idempotence for the two-input case.
func (c *Circuit) And(args ...int) int {
	return c.nary(KindAnd, args)
}

// Or returns the disjunction of args (at least one).
func (c *Circuit) Or(args ...int) int {
	return c.nary(KindOr, args)
}

// Xor returns the exclusive-or of args (at least one).
func (c *Circuit) Xor(args ...int) int {
	return c.nary(KindXor, args)
}

func (c *Circuit) nary(kind Kind, args []int) int {
	if len(args) == 0 {
		panic("logic: n-ary gate with no fanins")
	}
	if len(args) == 1 {
		return args[0]
	}
	if len(args) == 2 {
		return c.binary(kind, args[0], args[1])
	}
	// Three or more fanins: keep a single n-ary gate after folding, so
	// the MIG lowering can use n-input templates (a 3-input XOR is a
	// 3-MAJ full-adder sum; a binary chain would cost 6).
	toggle := false // pending output complement (XOR only)
	var rest []int
	for _, a := range args {
		n := c.Nodes[a]
		if n.Kind != KindConst {
			rest = append(rest, a)
			continue
		}
		switch kind {
		case KindXor:
			if n.Value {
				toggle = !toggle
			}
		case KindAnd:
			if !n.Value {
				return c.Const(false)
			}
		case KindOr:
			if n.Value {
				return c.Const(true)
			}
		}
	}
	// Duplicates: XOR pairs cancel; AND/OR are idempotent.
	sort.Ints(rest)
	var dedup []int
	for i := 0; i < len(rest); {
		if i+1 < len(rest) && rest[i] == rest[i+1] {
			if kind == KindXor {
				i += 2 // x XOR x = 0
				continue
			}
			i++ // skip the duplicate
			continue
		}
		dedup = append(dedup, rest[i])
		i++
	}
	// Complement pairs: AND(x,!x)=0, OR(x,!x)=1, XOR(x,!x)=1 (toggles).
	var out []int
	removed := make([]bool, len(dedup))
	for i := range dedup {
		if removed[i] {
			continue
		}
		matched := false
		for j := i + 1; j < len(dedup); j++ {
			if !removed[j] && c.isComplement(dedup[i], dedup[j]) {
				switch kind {
				case KindAnd:
					return c.Const(false)
				case KindOr:
					return c.Const(true)
				case KindXor:
					toggle = !toggle
				}
				removed[i], removed[j] = true, true
				matched = true
				break
			}
		}
		if !matched {
			out = append(out, dedup[i])
		}
	}
	var res int
	switch len(out) {
	case 0:
		switch kind {
		case KindAnd:
			res = c.Const(true)
		default:
			res = c.Const(false)
		}
	case 1:
		res = out[0]
	case 2:
		res = c.binary(kind, out[0], out[1])
	default:
		res = c.gate(kind, out...)
	}
	if toggle {
		res = c.Not(res)
	}
	return res
}

func (c *Circuit) binary(kind Kind, a, b int) int {
	na, nb := c.Nodes[a], c.Nodes[b]
	if na.Kind == KindConst {
		a, b = b, a
		na, nb = nb, na
	}
	if nb.Kind == KindConst {
		switch kind {
		case KindAnd:
			if nb.Value {
				return a
			}
			return c.Const(false)
		case KindOr:
			if nb.Value {
				return c.Const(true)
			}
			return a
		case KindXor:
			if nb.Value {
				return c.Not(a)
			}
			return a
		}
	}
	if a == b {
		switch kind {
		case KindAnd, KindOr:
			return a
		case KindXor:
			return c.Const(false)
		}
	}
	// x op !x
	if (na.Kind == KindNot && na.Fanins[0] == b) || (nb.Kind == KindNot && nb.Fanins[0] == a) {
		switch kind {
		case KindAnd:
			return c.Const(false)
		case KindOr, KindXor:
			return c.Const(true)
		}
	}
	return c.gate(kind, a, b)
}

// Maj returns the three-input majority MAJ(a, b, c), folding the majority
// axiom (two equal fanins dominate) and constants.
func (c *Circuit) Maj(a, b, d int) int {
	// Majority axiom: MAJ(x,x,y)=x; MAJ(x,!x,y)=y.
	if a == b || a == d {
		if a == b && a == d {
			return a
		}
		if a == b {
			return a
		}
		return a
	}
	if b == d {
		return b
	}
	if c.isComplement(a, b) {
		return d
	}
	if c.isComplement(a, d) {
		return b
	}
	if c.isComplement(b, d) {
		return a
	}
	// Constant fanin: MAJ(a,b,0)=AND(a,b), MAJ(a,b,1)=OR(a,b).
	for _, perm := range [3][3]int{{a, b, d}, {a, d, b}, {b, d, a}} {
		x, y, z := perm[0], perm[1], perm[2]
		if c.Nodes[z].Kind == KindConst {
			if c.Nodes[z].Value {
				return c.binary(KindOr, x, y)
			}
			return c.binary(KindAnd, x, y)
		}
	}
	return c.gate(KindMaj, a, b, d)
}

// Mux returns sel ? t : f.
func (c *Circuit) Mux(sel, t, f int) int {
	ns := c.Nodes[sel]
	if ns.Kind == KindConst {
		if ns.Value {
			return t
		}
		return f
	}
	if t == f {
		return t
	}
	return c.gate(KindMux, sel, t, f)
}

// isComplement reports whether nodes a and b are structural complements.
func (c *Circuit) isComplement(a, b int) bool {
	na, nb := c.Nodes[a], c.Nodes[b]
	if na.Kind == KindNot && na.Fanins[0] == b {
		return true
	}
	if nb.Kind == KindNot && nb.Fanins[0] == a {
		return true
	}
	if na.Kind == KindConst && nb.Kind == KindConst && na.Value != nb.Value {
		return true
	}
	return false
}

// Output declares node idx as the next primary output.
func (c *Circuit) Output(idx int, name string) {
	if idx < 0 || idx >= len(c.Nodes) {
		panic(fmt.Sprintf("logic: output node %d out of range", idx))
	}
	c.Outputs = append(c.Outputs, idx)
	c.OutputNames = append(c.OutputNames, name)
}

// OutputBus declares all nodes of bus as outputs named name[i], LSB first.
func (c *Circuit) OutputBus(bus []int, name string) {
	for i, n := range bus {
		c.Output(n, fmt.Sprintf("%s[%d]", name, i))
	}
}

// CountKind returns the number of nodes of the given kind.
func (c *Circuit) CountKind(k Kind) int {
	n := 0
	for i := range c.Nodes {
		if c.Nodes[i].Kind == k {
			n++
		}
	}
	return n
}

// GateCount returns the number of non-leaf nodes (gates).
func (c *Circuit) GateCount() int {
	n := 0
	for i := range c.Nodes {
		if c.Nodes[i].Kind != KindInput && c.Nodes[i].Kind != KindConst {
			n++
		}
	}
	return n
}

// Depth returns the length of the longest input→output gate path,
// counting only gate nodes (NOT counts as a gate).
func (c *Circuit) Depth() int {
	depth := make([]int, len(c.Nodes))
	max := 0
	for i, n := range c.Nodes {
		switch n.Kind {
		case KindInput, KindConst:
			depth[i] = 0
		default:
			d := 0
			for _, f := range n.Fanins {
				if depth[f] > d {
					d = depth[f]
				}
			}
			depth[i] = d + 1
		}
	}
	for _, o := range c.Outputs {
		if depth[o] > max {
			max = depth[o]
		}
	}
	return max
}

// Validate checks structural invariants: topological fanin order, arity,
// and output declarations. It returns the first violation found.
func (c *Circuit) Validate() error {
	for i, n := range c.Nodes {
		if want := n.Kind.arity(); want >= 0 && len(n.Fanins) != want {
			return fmt.Errorf("node %d (%s): want %d fanins, have %d", i, n.Kind, want, len(n.Fanins))
		}
		if n.Kind == KindAnd || n.Kind == KindOr || n.Kind == KindXor {
			if len(n.Fanins) < 2 {
				return fmt.Errorf("node %d (%s): want >=2 fanins, have %d", i, n.Kind, len(n.Fanins))
			}
		}
		for _, f := range n.Fanins {
			if f >= i {
				return fmt.Errorf("node %d (%s): fanin %d not topologically earlier", i, n.Kind, f)
			}
			if f < 0 {
				return fmt.Errorf("node %d (%s): negative fanin %d", i, n.Kind, f)
			}
		}
	}
	if len(c.Outputs) == 0 {
		return fmt.Errorf("circuit declares no outputs")
	}
	for _, o := range c.Outputs {
		if o < 0 || o >= len(c.Nodes) {
			return fmt.Errorf("output node %d out of range", o)
		}
	}
	return nil
}

// String summarizes the circuit.
func (c *Circuit) String() string {
	return fmt.Sprintf("circuit{inputs=%d outputs=%d gates=%d depth=%d}",
		len(c.Inputs), len(c.Outputs), c.GateCount(), c.Depth())
}
