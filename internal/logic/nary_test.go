package logic

import "testing"

// Tests for the n-ary (≥3 fanin) gate normalization, which keeps a single
// wide gate so MIG lowering can use n-input templates.

func TestNaryXorConstantFolding(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	one := c.Const(true)
	zero := c.Const(false)

	// XOR(a,b,0) = XOR(a,b); XOR(a,b,1) = !XOR(a,b).
	x := c.Xor(a, b, zero)
	if c.Nodes[x].Kind != KindXor || len(c.Nodes[x].Fanins) != 2 {
		t.Errorf("XOR(a,b,0) should fold to binary XOR, got %v/%d", c.Nodes[x].Kind, len(c.Nodes[x].Fanins))
	}
	nx := c.Xor(a, b, one)
	if nx != c.Not(x) {
		t.Errorf("XOR(a,b,1) should be !XOR(a,b)")
	}
	// XOR(a,1,1) = a.
	if got := c.Xor(a, one, one); got != a {
		t.Errorf("XOR(a,1,1) = node %d, want a", got)
	}
}

func TestNaryXorDuplicateCancellation(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	if got := c.Xor(a, a, b); got != b {
		t.Errorf("XOR(a,a,b) should cancel to b")
	}
	if got, zero := c.Xor(a, a, b, b), c.Const(false); got != zero {
		t.Errorf("XOR(a,a,b,b) should cancel to 0, got node %d", got)
	}
	// Complement pair toggles: XOR(a,!a,b) = !b.
	if got := c.Xor(a, c.Not(a), b); got != c.Not(b) {
		t.Errorf("XOR(a,!a,b) should be !b")
	}
}

func TestNaryAndOrShortCircuit(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	d := c.Input("d")
	one := c.Const(true)
	zero := c.Const(false)

	if got := c.And(a, b, zero, d); got != zero {
		t.Error("AND with a 0 fanin must fold to 0")
	}
	if got := c.And(a, b, one, d); c.Nodes[got].Kind != KindAnd || len(c.Nodes[got].Fanins) != 3 {
		t.Error("AND with a 1 fanin should drop it and stay 3-wide")
	}
	if got := c.Or(a, one, d); got != one {
		t.Error("OR with a 1 fanin must fold to 1")
	}
	if got := c.And(a, b, c.Not(a)); got != zero {
		t.Error("AND(x, …, !x) must fold to 0")
	}
	if got := c.Or(a, b, c.Not(b)); got != one {
		t.Error("OR(x, …, !x) must fold to 1")
	}
	if got := c.And(a, a, b); c.Nodes[got].Kind != KindAnd || len(c.Nodes[got].Fanins) != 2 {
		t.Error("AND(a,a,b) should dedup to AND(a,b)")
	}
}

func TestNarySemanticsExhaustive(t *testing.T) {
	// 4-input gates over all 16 assignments, against direct computation.
	c := New()
	in := make([]int, 4)
	for i := range in {
		in[i] = c.Input("x")
	}
	c.Output(c.And(in...), "and")
	c.Output(c.Or(in...), "or")
	c.Output(c.Xor(in...), "xor")
	for v := 0; v < 16; v++ {
		bits := make([]bool, 4)
		andV, orV, xorV := true, false, false
		for i := range bits {
			bits[i] = (v>>uint(i))&1 == 1
			andV = andV && bits[i]
			orV = orV || bits[i]
			xorV = xorV != bits[i]
		}
		out := c.EvalBits(bits)
		if out[0] != andV || out[1] != orV || out[2] != xorV {
			t.Fatalf("assignment %04b: got %v want [%t %t %t]", v, out, andV, orV, xorV)
		}
	}
}
