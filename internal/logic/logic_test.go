package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	c := New()
	a := c.Input("a")
	one := c.Const(true)
	zero := c.Const(false)

	if got := c.And(a, one); got != a {
		t.Errorf("AND(a,1) = node %d, want a (%d)", got, a)
	}
	if got := c.And(a, zero); got != zero {
		t.Errorf("AND(a,0) = node %d, want 0 (%d)", got, zero)
	}
	if got := c.Or(a, zero); got != a {
		t.Errorf("OR(a,0) = node %d, want a", got)
	}
	if got := c.Or(a, one); got != one {
		t.Errorf("OR(a,1) = node %d, want 1", got)
	}
	if got := c.Xor(a, zero); got != a {
		t.Errorf("XOR(a,0) = node %d, want a", got)
	}
	if got := c.Xor(a, a); got != zero {
		t.Errorf("XOR(a,a) = node %d, want 0", got)
	}
	if got := c.Xor(a, one); got != c.Not(a) {
		t.Errorf("XOR(a,1) = node %d, want !a", got)
	}
	if got := c.Not(c.Not(a)); got != a {
		t.Errorf("!!a = node %d, want a", got)
	}
	if got := c.And(a, c.Not(a)); got != zero {
		t.Errorf("AND(a,!a) = node %d, want 0", got)
	}
	if got := c.Or(a, c.Not(a)); got != one {
		t.Errorf("OR(a,!a) = node %d, want 1", got)
	}
}

func TestMajFolding(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	d := c.Input("d")
	one := c.Const(true)
	zero := c.Const(false)

	if got := c.Maj(a, a, b); got != a {
		t.Errorf("MAJ(a,a,b) should fold to a")
	}
	if got := c.Maj(a, c.Not(a), b); got != b {
		t.Errorf("MAJ(a,!a,b) should fold to b")
	}
	and := c.Maj(a, b, zero)
	if c.Nodes[and].Kind != KindAnd {
		t.Errorf("MAJ(a,b,0) should fold to AND, got %v", c.Nodes[and].Kind)
	}
	or := c.Maj(a, b, one)
	if c.Nodes[or].Kind != KindOr {
		t.Errorf("MAJ(a,b,1) should fold to OR, got %v", c.Nodes[or].Kind)
	}
	m := c.Maj(a, b, d)
	if c.Nodes[m].Kind != KindMaj {
		t.Errorf("MAJ(a,b,d) should be a MAJ gate")
	}
	if m2 := c.Maj(b, d, a); m2 != m {
		t.Errorf("MAJ should be canonicalized: %d vs %d", m, m2)
	}
}

func TestStructuralHashing(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	x := c.And(a, b)
	y := c.And(b, a)
	if x != y {
		t.Errorf("AND(a,b) and AND(b,a) should share a node")
	}
	before := len(c.Nodes)
	_ = c.And(a, b)
	if len(c.Nodes) != before {
		t.Errorf("rebuilding an existing gate must not add nodes")
	}
}

func TestEvalWordsTruthTables(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	d := c.Input("d")
	c.Output(c.And(a, b), "and")
	c.Output(c.Or(a, b), "or")
	c.Output(c.Xor(a, b), "xor")
	c.Output(c.Maj(a, b, d), "maj")
	c.Output(c.Mux(a, b, d), "mux")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	for av := 0; av < 2; av++ {
		for bv := 0; bv < 2; bv++ {
			for dv := 0; dv < 2; dv++ {
				out := c.EvalBits([]bool{av == 1, bv == 1, dv == 1})
				wantAnd := av == 1 && bv == 1
				wantOr := av == 1 || bv == 1
				wantXor := (av ^ bv) == 1
				wantMaj := av+bv+dv >= 2
				wantMux := (av == 1 && bv == 1) || (av == 0 && dv == 1)
				if out[0] != wantAnd || out[1] != wantOr || out[2] != wantXor || out[3] != wantMaj || out[4] != wantMux {
					t.Fatalf("a=%d b=%d d=%d: got %v", av, bv, dv, out)
				}
			}
		}
	}
}

func TestEvalWordsIsLaneParallel(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	c.Output(c.Xor(a, b), "x")

	err := quick.Check(func(x, y uint64) bool {
		out := c.EvalWords([]uint64{x, y})
		return out[0] == x^y
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestEvalUintRoundTrip(t *testing.T) {
	// 4-bit adder built from gates; EvalUint must match integer addition.
	c := New()
	a := c.InputBus("a", 4)
	b := c.InputBus("b", 4)
	carry := c.Const(false)
	sum := make([]int, 4)
	for i := 0; i < 4; i++ {
		sum[i] = c.Xor(c.Xor(a[i], b[i]), carry)
		carry = c.Maj(a[i], b[i], carry)
	}
	c.OutputBus(sum, "s")
	c.Output(carry, "cout")

	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			out := c.EvalUint([]int{4, 4}, []uint64{x, y}, []int{4, 1})
			want := (x + y) & 0xF
			wantC := (x + y) >> 4
			if out[0] != want || out[1] != wantC {
				t.Fatalf("%d+%d: got sum=%d cout=%d, want %d,%d", x, y, out[0], out[1], want, wantC)
			}
		}
	}
}

func TestDepthAndCounts(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	x := c.And(a, b)
	y := c.Or(x, a)
	c.Output(y, "y")
	if d := c.Depth(); d != 2 {
		t.Errorf("depth = %d, want 2", d)
	}
	if n := c.GateCount(); n != 2 {
		t.Errorf("gates = %d, want 2", n)
	}
	if n := c.CountKind(KindAnd); n != 1 {
		t.Errorf("ands = %d, want 1", n)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	c := New()
	a := c.Input("a")
	if err := c.Validate(); err == nil {
		t.Error("circuit with no outputs must not validate")
	}
	c.Output(a, "a")
	if err := c.Validate(); err != nil {
		t.Errorf("valid circuit rejected: %v", err)
	}
	// Corrupt a fanin to violate topological order.
	b := c.Input("b")
	g := c.And(a, b)
	c.Output(g, "g")
	c.Nodes[g].Fanins[0] = g
	if err := c.Validate(); err == nil {
		t.Error("forward fanin must not validate")
	}
}

func TestRandomCircuitEvalStability(t *testing.T) {
	// Build a random DAG and check EvalWords agrees with EvalBits per lane.
	rng := rand.New(rand.NewSource(7))
	c := New()
	nodes := []int{c.Input("a"), c.Input("b"), c.Input("c"), c.Input("d")}
	for i := 0; i < 80; i++ {
		pick := func() int { return nodes[rng.Intn(len(nodes))] }
		var n int
		switch rng.Intn(5) {
		case 0:
			n = c.And(pick(), pick())
		case 1:
			n = c.Or(pick(), pick())
		case 2:
			n = c.Xor(pick(), pick())
		case 3:
			n = c.Maj(pick(), pick(), pick())
		default:
			n = c.Not(pick())
		}
		nodes = append(nodes, n)
	}
	c.Output(nodes[len(nodes)-1], "out")
	c.Output(nodes[len(nodes)-2], "out2")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	in := []uint64{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}
	wide := c.EvalWords(in)
	for lane := 0; lane < 64; lane++ {
		bits := make([]bool, 4)
		for i := range bits {
			bits[i] = (in[i]>>uint(lane))&1 == 1
		}
		narrow := c.EvalBits(bits)
		for o := range narrow {
			if narrow[o] != ((wide[o]>>uint(lane))&1 == 1) {
				t.Fatalf("lane %d output %d mismatch", lane, o)
			}
		}
	}
}
