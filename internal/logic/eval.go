package logic

import "fmt"

// EvalWords evaluates the circuit bit-parallel over 64 lanes at once.
// inputs[i] is the word for declared input i (one bit per lane). The
// result has one word per declared output, in declaration order.
//
// This mirrors SIMDRAM's execution model: every bit position of a word is
// an independent SIMD lane, exactly as every bitline of a DRAM subarray is
// an independent lane.
func (c *Circuit) EvalWords(inputs []uint64) []uint64 {
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("logic: EvalWords: want %d input words, have %d", len(c.Inputs), len(inputs)))
	}
	val := make([]uint64, len(c.Nodes))
	in := 0
	for i, n := range c.Nodes {
		switch n.Kind {
		case KindInput:
			val[i] = inputs[in]
			in++
		case KindConst:
			if n.Value {
				val[i] = ^uint64(0)
			}
		case KindNot:
			val[i] = ^val[n.Fanins[0]]
		case KindAnd:
			v := ^uint64(0)
			for _, f := range n.Fanins {
				v &= val[f]
			}
			val[i] = v
		case KindOr:
			v := uint64(0)
			for _, f := range n.Fanins {
				v |= val[f]
			}
			val[i] = v
		case KindXor:
			v := uint64(0)
			for _, f := range n.Fanins {
				v ^= val[f]
			}
			val[i] = v
		case KindMaj:
			a, b, d := val[n.Fanins[0]], val[n.Fanins[1]], val[n.Fanins[2]]
			val[i] = (a & b) | (a & d) | (b & d)
		case KindMux:
			s, t, f := val[n.Fanins[0]], val[n.Fanins[1]], val[n.Fanins[2]]
			val[i] = (s & t) | (^s & f)
		default:
			panic(fmt.Sprintf("logic: EvalWords: unknown kind %v", n.Kind))
		}
	}
	out := make([]uint64, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = val[o]
	}
	return out
}

// EvalBits evaluates the circuit on a single assignment of boolean inputs.
func (c *Circuit) EvalBits(inputs []bool) []bool {
	words := make([]uint64, len(inputs))
	for i, b := range inputs {
		if b {
			words[i] = 1
		}
	}
	res := c.EvalWords(words)
	out := make([]bool, len(res))
	for i, w := range res {
		out[i] = w&1 == 1
	}
	return out
}

// EvalUint treats the declared inputs as a sequence of little-endian buses
// whose widths are given by widths, evaluates the circuit on the packed
// values, and returns the outputs packed the same way using outWidths.
// It is a convenience for testing word-level operators.
func (c *Circuit) EvalUint(widths []int, values []uint64, outWidths []int) []uint64 {
	total := 0
	for _, w := range widths {
		total += w
	}
	if total != len(c.Inputs) {
		panic(fmt.Sprintf("logic: EvalUint: bus widths sum to %d, circuit has %d inputs", total, len(c.Inputs)))
	}
	if len(widths) != len(values) {
		panic("logic: EvalUint: len(widths) != len(values)")
	}
	bits := make([]uint64, 0, total)
	for i, w := range widths {
		for b := 0; b < w; b++ {
			bits = append(bits, (values[i]>>uint(b))&1*^uint64(0))
		}
	}
	res := c.EvalWords(bits)
	outTotal := 0
	for _, w := range outWidths {
		outTotal += w
	}
	if outTotal != len(c.Outputs) {
		panic(fmt.Sprintf("logic: EvalUint: out widths sum to %d, circuit has %d outputs", outTotal, len(c.Outputs)))
	}
	out := make([]uint64, len(outWidths))
	pos := 0
	for i, w := range outWidths {
		var v uint64
		for b := 0; b < w; b++ {
			v |= (res[pos] & 1) << uint(b)
			pos++
		}
		out[i] = v
	}
	return out
}
