package cpu

import (
	"math/rand"
	"testing"

	"simdram/internal/ops"
)

func TestBytesPerElement(t *testing.T) {
	add, _ := ops.ByName("addition")
	if got := BytesPerElement(add, 32, 0); got != 12 {
		t.Errorf("addition/32: %f bytes, want 12 (two 4 B reads + one 4 B write)", got)
	}
	gt, _ := ops.ByName("greater")
	if got := BytesPerElement(gt, 32, 0); got != 9 {
		t.Errorf("greater/32: %f bytes, want 9 (8 read + 1 predicate write)", got)
	}
	ar, _ := ops.ByName("and_red")
	if got := BytesPerElement(ar, 8, 4); got != 5 {
		t.Errorf("and_red/8 n=4: %f bytes, want 5", got)
	}
}

func TestThroughputIsBandwidthBound(t *testing.T) {
	c := Skylake()
	add, _ := ops.ByName("addition")
	got := c.Throughput(add, 32, 0)
	want := c.MemBWGBs * 1e9 / 12
	if got != want {
		t.Errorf("addition/32 throughput = %e, want bandwidth bound %e", got, want)
	}
	// Division loses vectorization but stays bandwidth bound at this
	// element size, so it can be at most as fast as addition.
	div, _ := ops.ByName("division")
	if c.Throughput(div, 32, 0) > got {
		t.Error("division must not be faster than addition on the CPU")
	}
	// With 4× the bandwidth headroom, scalar division becomes the
	// bottleneck at 8-bit elements.
	fast := c
	fast.MemBWGBs *= 4
	if fast.Throughput(div, 8, 0) >= fast.Throughput(add, 8, 0) {
		t.Error("8-bit division should go compute bound with ample bandwidth")
	}
}

func TestEnergyPositiveAndOrdered(t *testing.T) {
	c := Skylake()
	add, _ := ops.ByName("addition")
	e8 := c.EnergyPJPerOp(add, 8, 0)
	e64 := c.EnergyPJPerOp(add, 64, 0)
	if e8 <= 0 || e64 <= e8 {
		t.Errorf("energy must grow with width: e8=%f e64=%f", e8, e64)
	}
	if c.OpsPerJoule(add, 32, 0) <= 0 {
		t.Error("ops/J must be positive")
	}
}

func TestRunMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	add, _ := ops.ByName("addition")
	a := make([]uint64, 100)
	b := make([]uint64, 100)
	for i := range a {
		a[i] = rng.Uint64() & 0xFFFF
		b[i] = rng.Uint64() & 0xFFFF
	}
	out := Run(add, 16, [][]uint64{a, b})
	for i := range out {
		if out[i] != (a[i]+b[i])&0xFFFF {
			t.Fatalf("lane %d wrong", i)
		}
	}
}
