// Package cpu models the CPU baseline of SIMDRAM's evaluation.
//
// Substitution note (see DESIGN.md): the paper measures a real multi-core
// Intel Skylake machine. Bulk element-wise kernels on such a machine are
// memory-bandwidth bound, so we model performance with a roofline —
// min(SIMD compute rate, memory bandwidth / bytes moved per element) —
// using the published specifications of the paper's testbed. The golden
// functional path (ops.Def.Golden) doubles as this baseline's semantics,
// so "what the CPU would compute" is also the oracle for DRAM execution.
package cpu

import (
	"simdram/internal/ops"
)

// Config describes the modeled CPU.
type Config struct {
	Name string

	Cores        int
	FreqGHz      float64
	SIMDLanes256 int // 256-bit vector ALUs per core

	MemBWGBs float64 // sustained DRAM bandwidth, GB/s

	// Energy model: package power × time dominates streaming kernels
	// (the cores, caches and uncore stay powered while waiting on
	// memory); DRAM transfer energy is added per bit moved.
	PackageWatts float64
	DRAMPJPerBit float64
}

// Skylake returns the paper-testbed-like configuration: a 16-core
// Intel Xeon-class CPU with dual-channel DDR4-2400. Bandwidth is the
// *sustained* streaming figure (≈50% of the 38.4 GB/s peak, which is
// what multi-stream kernels achieve in practice).
func Skylake() Config {
	return Config{
		Name:         "CPU (Skylake, 16 cores, DDR4-2400 x2)",
		Cores:        16,
		FreqGHz:      3.0,
		SIMDLanes256: 2,
		MemBWGBs:     19.2,
		PackageWatts: 48, // dynamic package power attributable to the kernel
		DRAMPJPerBit: 15, // DDR4 access + I/O energy per bit
	}
}

// BytesPerElement returns the bytes that cross the memory bus per element
// for an operation: every source operand is read and the destination is
// written, at the element's byte width.
func BytesPerElement(d ops.Def, width, n int) float64 {
	srcBytes := float64(d.EffArity(n)) * float64((width+7)/8)
	dstBytes := float64((d.DstWidth(width) + 7) / 8)
	return srcBytes + dstBytes
}

// Throughput returns element operations per second for a bulk streaming
// execution of the operation.
func (c Config) Throughput(d ops.Def, width, n int) float64 {
	// Compute bound: lanes per 256-bit vector at this width, all cores.
	lanesPerVec := 256.0 / float64(width)
	compute := float64(c.Cores) * c.FreqGHz * 1e9 * float64(c.SIMDLanes256) * lanesPerVec
	switch d.Code {
	case ops.OpMul:
		compute /= 2 // multiplication halves vector issue rate
	case ops.OpDiv:
		// Integer division is not vectorized: one scalar divide per
		// element at ~6 cycles each.
		compute = float64(c.Cores) * c.FreqGHz * 1e9 / 6
	}
	// Bandwidth bound.
	bw := c.MemBWGBs * 1e9 / BytesPerElement(d, width, n)
	if bw < compute {
		return bw
	}
	return compute
}

// EnergyPJPerOp returns energy per element operation in picojoules:
// package power divided by throughput, plus DRAM transfer energy.
func (c Config) EnergyPJPerOp(d ops.Def, width, n int) float64 {
	bits := BytesPerElement(d, width, n) * 8
	packagePJ := c.PackageWatts * 1e12 / c.Throughput(d, width, n)
	return packagePJ + bits*c.DRAMPJPerBit
}

// OpsPerJoule returns the energy-efficiency metric.
func (c Config) OpsPerJoule(d ops.Def, width, n int) float64 {
	return 1e12 / c.EnergyPJPerOp(d, width, n)
}

// Run computes the operation element-wise on host data — the functional
// CPU baseline (and the oracle for every other execution engine).
func Run(d ops.Def, width int, operands [][]uint64) []uint64 {
	n := len(operands[0])
	out := make([]uint64, n)
	args := make([]uint64, len(operands))
	for i := 0; i < n; i++ {
		for k := range operands {
			args[k] = operands[k][i]
		}
		out[i] = d.Golden(args, width)
	}
	return out
}
