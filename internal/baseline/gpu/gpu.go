// Package gpu models the GPU baseline of SIMDRAM's evaluation.
//
// Substitution note (see DESIGN.md): the paper measures an NVIDIA Titan V.
// Bulk element-wise kernels on a GPU are HBM-bandwidth bound; the model is
// the same roofline as the CPU baseline with Titan V specifications.
package gpu

import (
	"simdram/internal/baseline/cpu"
	"simdram/internal/ops"
)

// Config describes the modeled GPU.
type Config struct {
	Name string

	CudaCores int
	FreqGHz   float64

	MemBWGBs float64

	PackageWatts float64
	HBMPJPerBit  float64
}

// TitanV returns the paper-testbed-like configuration. Bandwidth is the
// sustained streaming figure (≈85% of the 652.8 GB/s peak); power is the
// package draw during bandwidth-bound kernels (below the 250 W TDP).
func TitanV() Config {
	return Config{
		Name:         "GPU (Titan V, HBM2)",
		CudaCores:    5120,
		FreqGHz:      1.2,
		MemBWGBs:     560,
		PackageWatts: 100, // incremental draw during bandwidth-bound kernels
		HBMPJPerBit:  7,   // HBM2 access energy per bit
	}
}

// Throughput returns element operations per second.
func (c Config) Throughput(d ops.Def, width, n int) float64 {
	compute := float64(c.CudaCores) * c.FreqGHz * 1e9
	switch d.Code {
	case ops.OpMul:
		compute /= 2
	case ops.OpDiv:
		compute /= 8
	}
	bw := c.MemBWGBs * 1e9 / cpu.BytesPerElement(d, width, n)
	if bw < compute {
		return bw
	}
	return compute
}

// EnergyPJPerOp returns energy per element operation in picojoules:
// package power divided by throughput, plus HBM transfer energy.
func (c Config) EnergyPJPerOp(d ops.Def, width, n int) float64 {
	bits := cpu.BytesPerElement(d, width, n) * 8
	packagePJ := c.PackageWatts * 1e12 / c.Throughput(d, width, n)
	return packagePJ + bits*c.HBMPJPerBit
}

// OpsPerJoule returns the energy-efficiency metric.
func (c Config) OpsPerJoule(d ops.Def, width, n int) float64 {
	return 1e12 / c.EnergyPJPerOp(d, width, n)
}
