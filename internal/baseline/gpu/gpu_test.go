package gpu

import (
	"testing"

	"simdram/internal/baseline/cpu"
	"simdram/internal/ops"
)

func TestGPUFasterThanCPUOnStreaming(t *testing.T) {
	g := TitanV()
	c := cpu.Skylake()
	for _, name := range []string{"addition", "greater", "xor_red", "multiplication"} {
		d, err := ops.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if g.Throughput(d, 32, 3) <= c.Throughput(d, 32, 3) {
			t.Errorf("%s: GPU should out-throughput CPU on streaming ops", name)
		}
	}
}

func TestGPUEnergyBetterThanCPU(t *testing.T) {
	g := TitanV()
	c := cpu.Skylake()
	add, _ := ops.ByName("addition")
	if g.EnergyPJPerOp(add, 32, 0) >= c.EnergyPJPerOp(add, 32, 0) {
		t.Error("HBM GPU should be more energy efficient per op than the CPU")
	}
	if g.OpsPerJoule(add, 32, 0) <= 0 {
		t.Error("ops/J must be positive")
	}
}
