package batchgen

import (
	"context"
	"fmt"
	"math/rand"

	"simdram"
	"simdram/internal/kernels"
	"simdram/internal/workload"
)

// ServeRequest is one serving-demo job: the lazy expressions to
// submit plus the host-side verification of the loaded results
// against the kernel's pure-Go reference.
type ServeRequest struct {
	exprs  []*simdram.Expr
	verify func(res *simdram.JobResult) error
}

// Submit sends the request through the server and waits for it.
func (r *ServeRequest) Submit(ctx context.Context, srv *simdram.Server, tenant string) (*simdram.JobResult, error) {
	return r.SubmitSpec(ctx, srv, simdram.JobSpec{Tenant: tenant})
}

// SubmitSpec sends the request through the server under the spec's
// QoS tier/weight/deadline and waits for it.
func (r *ServeRequest) SubmitSpec(ctx context.Context, srv *simdram.Server, spec simdram.JobSpec) (*simdram.JobResult, error) {
	fut, err := srv.SubmitJob(ctx, spec, r.exprs...)
	if err != nil {
		return nil, err
	}
	return fut.Wait()
}

// Exprs returns the request's expressions for callers that submit
// through the server themselves (e.g. to keep futures outstanding
// without waiting inline).
func (r *ServeRequest) Exprs() []*simdram.Expr { return r.exprs }

// Verify checks the job's loaded values against the reference.
func (r *ServeRequest) Verify(res *simdram.JobResult) error { return r.verify(res) }

// RunVerify submits, waits, and verifies in one step.
func (r *ServeRequest) RunVerify(ctx context.Context, srv *simdram.Server, tenant string) error {
	res, err := r.Submit(ctx, srv, tenant)
	if err != nil {
		return err
	}
	return r.verify(res)
}

// ServeShape is one request shape of the serving demo: a named
// generator of randomized requests that all share a compiled plan
// (the payload differs per request, the expression shape never does).
type ServeShape struct {
	Name string
	New  func(rng *rand.Rand) *ServeRequest
}

// ServeShapes returns the demo's request mix over n-element payloads:
// the three kernels the serving layer ports — brightness (both
// saturation directions), a BitWeaving scan, and TPC-H Q6.
func ServeShapes(n int) []ServeShape {
	return []ServeShape{
		{Name: "brightness+40", New: func(rng *rand.Rand) *ServeRequest {
			return brightnessRequest(rng, n, 40)
		}},
		{Name: "brightness-60", New: func(rng *rand.Rand) *ServeRequest {
			return brightnessRequest(rng, n, -60)
		}},
		{Name: "bitweaving-lt", New: func(rng *rand.Rand) *ServeRequest {
			codes := make([]uint64, n)
			for i := range codes {
				codes[i] = uint64(rng.Intn(256))
			}
			const cut, width = 100, 8
			want := kernels.BitWeavingLtRef(codes, cut)
			return &ServeRequest{
				exprs: []*simdram.Expr{kernels.BitWeavingLtExpr(codes, cut, width)},
				verify: func(res *simdram.JobResult) error {
					got := 0
					for _, v := range res.Values[0] {
						got += int(v & 1)
					}
					if got != want {
						return fmt.Errorf("bitweaving scan: got %d matches, want %d", got, want)
					}
					return nil
				},
			}
		}},
		{Name: "tpch-q6", New: func(rng *rand.Rand) *ServeRequest {
			t := workload.LineItem{
				N:             n,
				ShipDate:      make([]uint64, n),
				Discount:      make([]uint64, n),
				Quantity:      make([]uint64, n),
				ExtendedPrice: make([]uint64, n),
			}
			for i := 0; i < n; i++ {
				t.ShipDate[i] = uint64(9000 + rng.Intn(2557))
				t.Discount[i] = uint64(rng.Intn(11))
				t.Quantity[i] = uint64(1 + rng.Intn(50))
				t.ExtendedPrice[i] = uint64(100 + rng.Intn(60000))
			}
			p := kernels.DefaultQ6()
			want := kernels.TPCHQ6Ref(t, p)
			return &ServeRequest{
				exprs: []*simdram.Expr{kernels.TPCHQ6Expr(t, p)},
				verify: func(res *simdram.JobResult) error {
					var got uint64
					for _, v := range res.Values[0] {
						got += v
					}
					if got != want {
						return fmt.Errorf("q6 revenue: got %d, want %d", got, want)
					}
					return nil
				},
			}
		}},
	}
}

// brightnessRequest builds one randomized brightness request and its
// verification closure.
func brightnessRequest(rng *rand.Rand, n, delta int) *ServeRequest {
	px := make([]uint64, n)
	for i := range px {
		px[i] = uint64(rng.Intn(256))
	}
	want := kernels.BrightnessRef(workload.Image{W: n, H: 1, Pixels: px}, delta)
	return &ServeRequest{
		exprs: []*simdram.Expr{kernels.BrightnessExpr(px, delta)},
		verify: func(res *simdram.JobResult) error {
			for i := range want {
				if res.Values[0][i] != want[i] {
					return fmt.Errorf("brightness pixel %d: got %d, want %d", i, res.Values[0][i], want[i])
				}
			}
			return nil
		},
	}
}
