package batchgen

import (
	"math/rand"

	"simdram"
)

// GraphExprs builds the expression workload behind simdram-bench
// -graph: four full-lane 8-bit input vectors and four root
// expressions, each a chain over a deliberately re-built common prefix.
// The shape gives every compiler pass real work:
//
//   - every root rebuilds a.Add(b).Max(c) structurally, so CSE merges
//     three duplicates of each prefix node;
//   - each chain's intermediates die at the next link, so lifetime
//     reuse ping-pongs a couple of slots where naive lowering
//     allocates one fresh temporary per node;
//   - a Scalar(3)+Scalar(4) subtree folds at compile time and the
//     surviving constant splats once.
//
// The whole graph shares one placement group (the leaves' segments),
// so measured gains come from the compiler — fewer instructions and
// fewer temporary rows — not from bank spreading.
func GraphExprs(sys *simdram.System, seed int64) ([]*simdram.Expr, error) {
	const width = 8
	n := sys.Config().DRAM.Cols // one full segment: every lane computes
	rng := rand.New(rand.NewSource(seed))
	leaves := make([]*simdram.Expr, 4)
	for i := range leaves {
		v, err := sys.AllocVector(n, width)
		if err != nil {
			return nil, err
		}
		data := make([]uint64, n)
		for j := range data {
			data[j] = uint64(rng.Uint32()) & 0xFF
		}
		if err := v.Store(data); err != nil {
			return nil, err
		}
		leaves[i] = sys.Lazy(v)
	}
	a, b, c, d := leaves[0], leaves[1], leaves[2], leaves[3]
	seven := simdram.Scalar(3, width).Add(simdram.Scalar(4, width)) // folds to 7
	roots := make([]*simdram.Expr, 4)
	for r := range roots {
		// Each chain link is two operations; three links keep the naive
		// per-node footprint (one fresh temporary per node, all in one
		// placement group) inside a subarray's data rows.
		t := a.Add(b).Max(c) // rebuilt per root: CSE fodder
		for i := 0; i < 3; i++ {
			// Rotate the link pattern by root so only the shared prefix
			// merges, not the whole chain. The rotation period must be
			// at least the root count, or one root replays another's
			// exact link sequence and CSE merges the whole chain.
			switch (i + r) % 4 {
			case 0:
				t = t.Sub(d).Add(seven)
			case 1:
				t = t.Min(a).Add(b)
			case 2:
				t = t.Max(d).Sub(c)
			default:
				t = t.Add(d).Min(b)
			}
		}
		// Differentiate the roots so none of the chains merge whole.
		t = t.Add(simdram.Scalar(uint64(r), width))
		roots[r] = t
	}
	return roots, nil
}
