// Package batchgen builds the bank-spread demo workload shared by the
// ExecBatch/cluster benchmarks and simdram-bench's -batch and -cluster
// modes, so every measurement sees the same instruction stream.
package batchgen

import (
	"math/rand"

	"simdram"
	"simdram/internal/dram"
	"simdram/internal/isa"
	"simdram/internal/ops"
)

// vector is the slice of the Vector/ShardedVector surface the workload
// needs, letting one generator drive both the single-System and the
// cluster variant.
type vector interface {
	Handle() uint16
	Store(data []uint64) error
}

// Program allocates one independent 8-bit addition per (bank, subarray)
// of sys's geometry, operands spread with AllocVectorAt so every
// instruction owns its own subarray — the shape ExecBatch is designed
// to overlap and a serial Exec loop issues one at a time.
func Program(sys *simdram.System, seed int64) (isa.Program, error) {
	return ProgramScaled(sys, seed, 1)
}

// ProgramScaled is Program with each vector scaled to scale full
// segments (scale × Cols elements). It is the single-System equivalent
// of ClusterProgram on a scale-channel cluster: the same total elements
// and instruction stream, held by one channel — the serial-equivalent
// baseline cluster scaling numbers compare against.
func ProgramScaled(sys *simdram.System, seed int64, scale int) (isa.Program, error) {
	cfg := sys.Config()
	n := cfg.DRAM.Cols * scale
	return build(cfg.DRAM, n, seed, func(bank, sub int) (vector, error) {
		return sys.AllocVectorAt(n, 8, bank, sub)
	})
}

// ClusterProgram is Program lifted to a cluster: one independent 8-bit
// addition per (bank, subarray), each sharded vector carrying one full
// segment (Cols elements) per channel so every channel sees the same
// bank-disjoint shape.
func ClusterProgram(c *simdram.Cluster, seed int64) (isa.Program, error) {
	cfg := c.Config().Channel
	n := cfg.DRAM.Cols * c.Channels()
	return build(cfg.DRAM, n, seed, func(bank, sub int) (vector, error) {
		return c.AllocShardedVectorAt(n, 8, bank, sub)
	})
}

// build emits the shared shape: per (bank, subarray), three fresh
// vectors from alloc, the first two filled with random bytes, and one
// addition instruction over their handles.
func build(d dram.Config, n int, seed int64, alloc func(bank, sub int) (vector, error)) (isa.Program, error) {
	rng := rand.New(rand.NewSource(seed))
	var prog isa.Program
	for bank := 0; bank < d.Banks; bank++ {
		for sub := 0; sub < d.SubarraysPerBank; sub++ {
			vecs := make([]vector, 3)
			for i := range vecs {
				v, err := alloc(bank, sub)
				if err != nil {
					return nil, err
				}
				vecs[i] = v
			}
			data := make([]uint64, n)
			for _, v := range vecs[:2] {
				for i := range data {
					data[i] = uint64(rng.Uint32()) & 0xFF
				}
				if err := v.Store(data); err != nil {
					return nil, err
				}
			}
			prog = append(prog, isa.Instruction{
				Op:    isa.FromOp(ops.OpAdd),
				Dst:   vecs[2].Handle(),
				Src:   [3]uint16{vecs[0].Handle(), vecs[1].Handle()},
				Size:  uint32(n),
				Width: 8,
			})
		}
	}
	return prog, nil
}
