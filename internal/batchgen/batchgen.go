// Package batchgen builds the bank-spread demo workload shared by the
// ExecBatch benchmark and simdram-bench's -batch mode, so both measure
// the same instruction stream.
package batchgen

import (
	"math/rand"

	"simdram"
	"simdram/internal/isa"
	"simdram/internal/ops"
)

// Program allocates one independent 8-bit addition per (bank, subarray)
// of sys's geometry, operands spread with AllocVectorAt so every
// instruction owns its own subarray — the shape ExecBatch is designed
// to overlap and a serial Exec loop issues one at a time.
func Program(sys *simdram.System, seed int64) (isa.Program, error) {
	cfg := sys.Config()
	rng := rand.New(rand.NewSource(seed))
	n := cfg.DRAM.Cols
	var prog isa.Program
	for bank := 0; bank < cfg.DRAM.Banks; bank++ {
		for sub := 0; sub < cfg.DRAM.SubarraysPerBank; sub++ {
			vecs := make([]*simdram.Vector, 3)
			for i := range vecs {
				v, err := sys.AllocVectorAt(n, 8, bank, sub)
				if err != nil {
					return nil, err
				}
				vecs[i] = v
			}
			data := make([]uint64, n)
			for _, v := range vecs[:2] {
				for i := range data {
					data[i] = uint64(rng.Uint32()) & 0xFF
				}
				if err := v.Store(data); err != nil {
					return nil, err
				}
			}
			prog = append(prog, isa.Instruction{
				Op:    isa.FromOp(ops.OpAdd),
				Dst:   vecs[2].Handle(),
				Src:   [3]uint16{vecs[0].Handle(), vecs[1].Handle()},
				Size:  uint32(n),
				Width: 8,
			})
		}
	}
	return prog, nil
}
