package obs

import (
	"sync"
	"time"
)

// WindowedSeries turns a cumulative total (a counter, a float counter,
// an energy bill) into trailing per-second rates. It keeps a fixed
// ring of (timestamp, total) samples recorded at most once per slice;
// Rate reads the sample just outside the requested window and divides
// the delta by the elapsed time. Record and Rate are allocation-free,
// so a telemetry pump can tick every sampling slice without perturbing
// the zero-alloc serving path.
//
// When the retained history is shorter than the requested window (cold
// start, or a window wider than slice×capacity), Rate falls back to the
// oldest retained sample — the rate over the history it actually has —
// rather than extrapolating.
type WindowedSeries struct {
	mu      sync.Mutex
	sliceNs int64
	at      []int64   // ring of sample timestamps, ns
	vals    []float64 // ring of cumulative totals
	next    int       // ring write cursor
	n       int       // samples retained, <= len(at)
}

// NewWindowedSeries builds a ring holding `slices` samples recorded at
// most once per `slice`. The retained history therefore spans about
// slice×slices; size it to the widest window you will ask for.
func NewWindowedSeries(slice time.Duration, slices int) *WindowedSeries {
	if slices < 2 {
		slices = 2
	}
	sn := slice.Nanoseconds()
	if sn < 1 {
		sn = 1
	}
	return &WindowedSeries{
		sliceNs: sn,
		at:      make([]int64, slices),
		vals:    make([]float64, slices),
	}
}

// Record stores (nowNs, total) if at least one slice has elapsed since
// the newest retained sample, overwriting the oldest once the ring is
// full; earlier calls within the same slice are dropped. Nil-safe and
// allocation-free.
func (w *WindowedSeries) Record(nowNs int64, total float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n > 0 {
		last := (w.next - 1 + len(w.at)) % len(w.at)
		if nowNs-w.at[last] < w.sliceNs {
			return
		}
	}
	w.at[w.next] = nowNs
	w.vals[w.next] = total
	w.next = (w.next + 1) % len(w.at)
	if w.n < len(w.at) {
		w.n++
	}
}

// Rate returns the per-second rate of change of the total over the
// trailing window ending at (nowNs, total): the delta against the
// newest sample recorded at or before nowNs−window (the oldest retained
// sample when history is shorter), over the actual elapsed time.
// Returns 0 before the first Record and for non-positive elapsed time.
func (w *WindowedSeries) Rate(nowNs int64, total float64, window time.Duration) float64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return 0
	}
	cutoff := nowNs - window.Nanoseconds()
	base := (w.next - w.n + len(w.at)) % len(w.at) // oldest retained
	for i := 1; i < w.n; i++ {
		idx := (w.next - w.n + i + len(w.at)) % len(w.at)
		if w.at[idx] > cutoff {
			break
		}
		base = idx
	}
	elapsed := nowNs - w.at[base]
	if elapsed <= 0 {
		return 0
	}
	return (total - w.vals[base]) * 1e9 / float64(elapsed)
}

// WindowedHist is WindowedSeries for a whole distribution: a ring of
// cumulative HistSnapshots from which trailing-window distributions are
// recovered by bucket-wise subtraction (HistSnapshot.Sub). An SLO
// tracker records the source histogram once per slice and asks for the
// window's quantiles and bad-event fraction at evaluation time.
type WindowedHist struct {
	mu      sync.Mutex
	sliceNs int64
	at      []int64
	snaps   []HistSnapshot
	next    int
	n       int
}

// NewWindowedHist builds a ring holding `slices` snapshots recorded at
// most once per `slice`.
func NewWindowedHist(slice time.Duration, slices int) *WindowedHist {
	if slices < 2 {
		slices = 2
	}
	sn := slice.Nanoseconds()
	if sn < 1 {
		sn = 1
	}
	return &WindowedHist{
		sliceNs: sn,
		at:      make([]int64, slices),
		snaps:   make([]HistSnapshot, slices),
	}
}

// Record stores (nowNs, snapshot of the cumulative histogram) under the
// same once-per-slice, overwrite-oldest policy as WindowedSeries.Record.
func (w *WindowedHist) Record(nowNs int64, s HistSnapshot) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n > 0 {
		last := (w.next - 1 + len(w.at)) % len(w.at)
		if nowNs-w.at[last] < w.sliceNs {
			return
		}
	}
	w.at[w.next] = nowNs
	w.snaps[w.next] = s
	w.next = (w.next + 1) % len(w.at)
	if w.n < len(w.at) {
		w.n++
	}
}

// Windowed returns the distribution observed during the trailing window
// ending at the current cumulative snapshot cur: cur minus the newest
// retained snapshot at or before nowNs−window (the oldest retained one
// when history is shorter). Before the first Record it returns cur
// itself — the lifetime distribution — so early SLO evaluations degrade
// to lifetime quantiles instead of reporting emptiness.
func (w *WindowedHist) Windowed(nowNs int64, cur HistSnapshot, window time.Duration) HistSnapshot {
	if w == nil {
		return cur
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return cur
	}
	cutoff := nowNs - window.Nanoseconds()
	base := (w.next - w.n + len(w.at)) % len(w.at)
	for i := 1; i < w.n; i++ {
		idx := (w.next - w.n + i + len(w.at)) % len(w.at)
		if w.at[idx] > cutoff {
			break
		}
		base = idx
	}
	return cur.Sub(w.snaps[base])
}
