package obs

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestBucketOfMonotone(t *testing.T) {
	vals := []int64{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1000, 1 << 20, 1<<40 + 17, 1<<62 + 99}
	prev := -1
	for _, v := range vals {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone: bucketOf(%d)=%d < %d", v, b, prev)
		}
		if b < 0 || b >= NumBuckets {
			t.Fatalf("bucketOf(%d)=%d out of range [0,%d)", v, b, NumBuckets)
		}
		prev = b
	}
	if got := bucketOf(-5); got != 0 {
		t.Fatalf("negative values must clamp to bucket 0, got %d", got)
	}
}

func TestBucketMidWithinBucket(t *testing.T) {
	// The representative value of every bucket must map back to the
	// same bucket — otherwise quantiles would report values outside the
	// bucket that contains them.
	for i := 0; i < NumBuckets; i++ {
		mid := bucketMid(i)
		if got := bucketOf(mid); got != i {
			t.Fatalf("bucketOf(bucketMid(%d))=%d, want %d (mid=%d)", i, got, i, mid)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations of 1000ns, 10 of 1_000_000ns: p50 near 1000,
	// p99 still in the low cluster (990/1010 below rank 1000), p999
	// near 1e6. Log buckets have 1/8 relative error; allow 15%.
	for i := 0; i < 1000; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	s := h.Snapshot()
	if s.Count != 1010 {
		t.Fatalf("count = %d, want 1010", s.Count)
	}
	within := func(got, want int64, tol float64) bool {
		d := float64(got - want)
		if d < 0 {
			d = -d
		}
		return d <= tol*float64(want)
	}
	if p50 := s.Quantile(0.50); !within(p50, 1000, 0.15) {
		t.Fatalf("p50 = %d, want ~1000", p50)
	}
	if p999 := s.Quantile(0.999); !within(p999, 1_000_000, 0.15) {
		t.Fatalf("p999 = %d, want ~1e6", p999)
	}
	if mean := s.Mean(); !within(int64(mean), (1000*1000+10*1_000_000)/1010, 0.001) {
		t.Fatalf("mean = %f", mean)
	}
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot must report zero quantiles and mean")
	}
}

func TestHistogramMergeAssociativity(t *testing.T) {
	// Property test: for random observation sets split into three
	// histograms a, b, c, merge(a, merge(b, c)) == merge(merge(a, b), c)
	// == one histogram observing everything.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var a, b, c, all Histogram
		parts := []*Histogram{&a, &b, &c}
		n := 30 + rng.Intn(300)
		for i := 0; i < n; i++ {
			v := rng.Int63n(1 << uint(1+rng.Intn(40)))
			parts[rng.Intn(3)].Observe(v)
			all.Observe(v)
		}
		sa, sb, sc := a.Snapshot(), b.Snapshot(), c.Snapshot()

		left := sb // b+c first, then a
		left.Merge(sc)
		lhs := sa
		lhs.Merge(left)

		rhs := sa // a+b first, then c
		rhs.Merge(sb)
		rhs.Merge(sc)

		if lhs != rhs {
			t.Fatalf("trial %d: merge not associative", trial)
		}
		if lhs != all.Snapshot() {
			t.Fatalf("trial %d: merged snapshot != direct observation", trial)
		}
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	// nil receivers must be safe no-ops.
	var nc *Counter
	nc.Add(1)
	nc.Inc()
	if nc.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var ng *Gauge
	ng.Set(9)
	ng.Add(1)
	if ng.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var nh *Histogram
	nh.Observe(5)
	if nh.Snapshot().Count != 0 {
		t.Fatal("nil histogram must snapshot empty")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return same counter")
	}
	r.Counter("a").Add(2)
	r.Gauge("depth").Set(3)
	r.Histogram("lat").Observe(100)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d series, want 3", len(snap))
	}
	byName := map[string]Metric{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if m := byName["a"]; m.Kind != KindCounter || m.Value != 2 {
		t.Fatalf("counter series wrong: %+v", m)
	}
	if m := byName["depth"]; m.Kind != KindGauge || m.Value != 3 {
		t.Fatalf("gauge series wrong: %+v", m)
	}
	if m := byName["lat"]; m.Kind != KindHistogram || m.Hist == nil || m.Hist.Count != 1 {
		t.Fatalf("histogram series wrong: %+v", m)
	}
	// nil registry: nil series, nil snapshot, no panics.
	var nr *Registry
	nr.Counter("x").Inc()
	nr.Gauge("x").Set(1)
	nr.Histogram("x").Observe(1)
	if nr.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestRegistryOverflowCap(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxSeries; i++ {
		r.Counter(fmt.Sprintf("c%d", i))
	}
	over := r.Counter("one-too-many")
	if over == nil {
		t.Fatal("overflow must still return a usable counter")
	}
	over.Inc()
	if r.Counter("another").Value() != 1 {
		t.Fatal("all overflow names must share the overflow series")
	}
	if r.Counter(OverflowSeries) != over {
		t.Fatal("overflow series must be addressable by name")
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(0.5, nil)
	sampled := 0
	for i := 0; i < 100; i++ {
		if tt := tr.Start(); tt != nil {
			sampled++
			tr.Finish(tt)
		}
	}
	if sampled != 50 {
		t.Fatalf("sampling 0.5 over 100 jobs traced %d, want 50", sampled)
	}
	off := NewTracer(0, nil)
	if off.Enabled() {
		t.Fatal("sampling 0 must disable the tracer")
	}
	if off.Start() != nil {
		t.Fatal("disabled tracer must return nil traces")
	}
	var nilTracer *Tracer
	if nilTracer.Enabled() || nilTracer.Start() != nil {
		t.Fatal("nil tracer must be disabled")
	}
	nilTracer.Finish(nil)
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTracer(1, nil)
	tt := tr.Start()
	if tt == nil {
		t.Fatal("sampling 1.0 must trace every job")
	}
	q := tt.Begin("queue", 0)
	tt.End(q)
	c := tt.Begin("compile", 0)
	l := tt.Begin("lookup", c)
	tt.End(l)
	tt.End(c)
	e := tt.BeginOn("execute", 0, 3)
	tt.End(e)
	tt.SetErr("boom")
	tt.SetErr("second write must lose")
	tr.Finish(tt)

	spans := tt.Spans()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	if spans[0].Name != "job" || spans[0].Parent != -1 {
		t.Fatalf("root span wrong: %+v", spans[0])
	}
	if spans[0].EndNs == 0 {
		t.Fatal("Finish must close the root span")
	}
	if spans[3].Parent != c || spans[3].Name != "lookup" {
		t.Fatalf("child span wrong: %+v", spans[3])
	}
	if spans[4].Channel != 3 {
		t.Fatalf("channel annotation lost: %+v", spans[4])
	}
	for i, s := range spans[1:] {
		if s.EndNs < s.StartNs {
			t.Fatalf("span %d ends before it starts: %+v", i+1, s)
		}
	}
	if tt.Err() != "boom" {
		t.Fatalf("err = %q, want boom", tt.Err())
	}

	// Nil trace: every method is a silent no-op.
	var nt *Trace
	i := nt.Begin("x", 0)
	if i != -1 {
		t.Fatalf("nil Begin = %d, want -1", i)
	}
	nt.End(i)
	nt.SetErr("x")
	if nt.Spans() != nil || nt.Err() != "" {
		t.Fatal("nil trace must read empty")
	}
	// Bogus indices on a live trace are ignored.
	tt.End(-1)
	tt.End(999)
}

func TestFlightRecorderRings(t *testing.T) {
	r := NewFlightRecorder(3, 2)
	tr := NewTracer(1, r)
	var ids []uint64
	for i := 0; i < 5; i++ {
		tt := tr.Start()
		ids = append(ids, tt.ID)
		tr.Finish(tt)
	}
	got := r.Traces()
	if len(got) != 3 {
		t.Fatalf("ring retained %d traces, want 3", len(got))
	}
	for i, tt := range got {
		if tt.ID != ids[2+i] {
			t.Fatalf("ring order wrong at %d: got ID %d, want %d", i, tt.ID, ids[2+i])
		}
	}
	if r.TraceCount() != 5 {
		t.Fatalf("TraceCount = %d, want 5", r.TraceCount())
	}
	if r.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", r.Depth())
	}

	r.Event("error", "first")
	r.Event("evict", "second")
	r.Event("recompile", "third")
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != "evict" || evs[1].Kind != "recompile" {
		t.Fatalf("event ring wrong: %+v", evs)
	}
	if r.EventCount() != 3 {
		t.Fatalf("EventCount = %d, want 3", r.EventCount())
	}

	r.Reset()
	if len(r.Traces()) != 0 || len(r.Events()) != 0 || r.TraceCount() != 0 || r.EventCount() != 0 {
		t.Fatal("Reset must clear rings and totals")
	}

	// nil recorder: all no-ops.
	var nr *FlightRecorder
	nr.RecordTrace(nil)
	nr.Event("x", "y")
	nr.Eventf("x", "%d", 1)
	if nr.Traces() != nil || nr.Events() != nil || nr.Depth() != 0 {
		t.Fatal("nil recorder must read empty")
	}
}

func TestConcurrentObserve(t *testing.T) {
	// Hammer one histogram + registry from many goroutines; totals must
	// reconcile. Run under -race for the data-race check.
	r := NewRegistry()
	h := r.Histogram("lat")
	c := r.Counter("jobs")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 30))
				c.Inc()
			}
		}(int64(w))
	}
	// Concurrent readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := h.Snapshot()
			var n uint64
			for _, b := range s.Counts {
				n += b
			}
			if n != s.Count {
				t.Errorf("torn snapshot: bucket sum %d != count %d", n, s.Count)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := h.Snapshot().Count; got != workers*per {
		t.Fatalf("final count = %d, want %d", got, workers*per)
	}
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
}
