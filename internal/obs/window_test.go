package obs

// Edge-case coverage for histogram snapshots, the windowed-rate rings,
// float counters, and series-cap overflow — pinning current behavior.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"simdram/internal/raceflag"
)

func TestQuantileEmptySnapshot(t *testing.T) {
	var s HistSnapshot
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if s.Mean() != 0 {
		t.Error("empty Mean must be 0")
	}
	if s.FractionAbove(0) != 0 {
		t.Error("empty FractionAbove must be 0")
	}
}

func TestQuantileSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(5)
	s := h.Snapshot()
	// 5 sits in an exact-width-1 bucket (values below 16 are exact), so
	// every quantile of a single-sample snapshot is the sample itself.
	for _, q := range []float64{0, 0.001, 0.5, 0.999, 1} {
		if got := s.Quantile(q); got != 5 {
			t.Errorf("single-sample Quantile(%v) = %d, want 5", q, got)
		}
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("single-sample Mean = %v, want 5", got)
	}
}

func TestHistSnapshotSubAndFractionAbove(t *testing.T) {
	var h Histogram
	h.Observe(2)
	h.Observe(10)
	old := h.Snapshot()
	h.Observe(10)
	h.Observe(1000)
	h.Observe(1000)
	win := h.Snapshot().Sub(old)
	if win.Count != 3 {
		t.Fatalf("windowed Count = %d, want 3", win.Count)
	}
	if got := win.Sum; got != 2010 {
		t.Errorf("windowed Sum = %d, want 2010", got)
	}
	// 2 of the 3 windowed observations are above 100.
	if got := win.FractionAbove(100); got != 2.0/3.0 {
		t.Errorf("FractionAbove(100) = %v, want 2/3", got)
	}
	if got := win.FractionAbove(1 << 40); got != 0 {
		t.Errorf("FractionAbove(huge) = %v, want 0", got)
	}
	// Sub against a NON-prefix snapshot clamps instead of going
	// negative, and keeps Count == sum(Counts).
	var other Histogram
	other.Observe(7)
	other.Observe(7)
	clamped := old.Sub(other.Snapshot())
	var total uint64
	for _, c := range clamped.Counts {
		total += c
	}
	if clamped.Count != total {
		t.Errorf("clamped Count %d != bucket sum %d", clamped.Count, total)
	}
}

func TestWindowedSeriesRates(t *testing.T) {
	w := NewWindowedSeries(100*time.Millisecond, 16)
	sec := int64(time.Second)
	// 10 jobs/sec for 3 seconds.
	for i := int64(0); i <= 3; i++ {
		w.Record(i*sec, float64(10*i))
	}
	now, total := 3*sec, 30.0
	if got := w.Rate(now, total, time.Second); got != 10 {
		t.Errorf("1s rate = %v, want 10", got)
	}
	// 60s window falls back to the oldest sample (3s of history).
	if got := w.Rate(now, total, 60*time.Second); got != 10 {
		t.Errorf("60s rate over 3s history = %v, want 10", got)
	}
	// Rate accelerates: 20 more in the next second.
	w.Record(4*sec, 50)
	if got := w.Rate(4*sec, 50, time.Second); got != 20 {
		t.Errorf("1s rate after burst = %v, want 20", got)
	}
	if got := (*WindowedSeries)(nil).Rate(0, 0, time.Second); got != 0 {
		t.Errorf("nil ring Rate = %v, want 0", got)
	}
}

func TestWindowedSeriesWrapsPastCapacity(t *testing.T) {
	// 4-slot ring, samples every second: after 20 records only the last
	// 4 are retained, so a wide window uses the oldest retained sample,
	// not the dropped history.
	w := NewWindowedSeries(time.Second, 4)
	sec := int64(time.Second)
	for i := int64(0); i < 20; i++ {
		w.Record(i*sec, float64(i*i)) // accelerating total
	}
	now := 19 * sec
	// Oldest retained sample is (16s, 256): rate = (361-256)/3.
	want := (361.0 - 256.0) / 3.0
	if got := w.Rate(now, 361, time.Hour); got != want {
		t.Errorf("wrapped wide-window rate = %v, want %v", got, want)
	}
	// A 2s window still reads the in-ring sample at 17s.
	want = (361.0 - 289.0) / 2.0
	if got := w.Rate(now, 361, 2*time.Second); got != want {
		t.Errorf("wrapped 2s rate = %v, want %v", got, want)
	}
	// Same-slice records dedup: a second record at 19s is dropped.
	w.Record(now, 9999)
	if got := w.Rate(now, 361, 2*time.Second); got != want {
		t.Errorf("rate after same-slice dup = %v, want %v", got, want)
	}
}

func TestWindowedHistWindowed(t *testing.T) {
	var h Histogram
	w := NewWindowedHist(time.Second, 4)
	sec := int64(time.Second)
	// Before any Record, Windowed degrades to the lifetime snapshot.
	h.Observe(7)
	if got := w.Windowed(0, h.Snapshot(), time.Second); got.Count != 1 {
		t.Fatalf("cold Windowed Count = %d, want lifetime 1", got.Count)
	}
	w.Record(0, h.Snapshot())
	for i := int64(1); i <= 6; i++ { // wraps the 4-slot ring
		h.Observe(i * 100)
		w.Record(i*sec, h.Snapshot())
	}
	// Window of 2s at t=6s: baseline is the snapshot at 4s → the
	// observations at 5s and 6s.
	win := w.Windowed(6*sec, h.Snapshot(), 2*time.Second)
	if win.Count != 2 {
		t.Errorf("2s windowed Count = %d, want 2", win.Count)
	}
	if win.Sum != 500+600 {
		t.Errorf("2s windowed Sum = %d, want 1100", win.Sum)
	}
	// A wide window clamps to the oldest retained snapshot (t=3s).
	win = w.Windowed(6*sec, h.Snapshot(), time.Hour)
	if win.Count != 3 {
		t.Errorf("wide windowed Count after wrap = %d, want 3", win.Count)
	}
}

func TestFloatCounter(t *testing.T) {
	var c FloatCounter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 4000 {
		t.Errorf("concurrent adds lost updates: %v, want 4000", got)
	}
	c.Add(-5) // non-positive deltas dropped: the series is monotonic
	c.Add(0)
	if got := c.Value(); got != 4000 {
		t.Errorf("non-positive Add changed the counter: %v", got)
	}
	var nilC *FloatCounter
	nilC.Add(1)
	if nilC.Value() != 0 {
		t.Error("nil FloatCounter must no-op")
	}
}

func TestRegistryFloatCounterOverflowCap(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxSeries; i++ {
		r.FloatCounter(fmt.Sprintf("f%d", i))
	}
	over := r.FloatCounter("one-too-many")
	if over == nil {
		t.Fatal("overflow must still return a usable counter")
	}
	over.Add(1.5)
	if r.FloatCounter("another").Value() != 1.5 {
		t.Fatal("all overflow names must share the overflow series")
	}
	if r.FloatCounter(OverflowSeries) != over {
		t.Fatal("overflow series must be addressable by name")
	}
}

func TestParseSeries(t *testing.T) {
	base, labels := ParseSeries("plain")
	if base != "plain" || labels != nil {
		t.Errorf("ParseSeries(plain) = %q %v", base, labels)
	}
	base, labels = ParseSeries(TenantSeries("sched.run_ns", "tenant", "t0"))
	if base != "sched.run_ns" || len(labels) != 1 || labels[0] != [2]string{"tenant", "t0"} {
		t.Errorf("round-trip via TenantSeries failed: %q %v", base, labels)
	}
	base, labels = ParseSeries(Labels("bank.busy_ns", "bank", "3", "channel", "1"))
	if base != "bank.busy_ns" || len(labels) != 2 ||
		labels[0] != [2]string{"bank", "3"} || labels[1] != [2]string{"channel", "1"} {
		t.Errorf("round-trip via Labels failed: %q %v", base, labels)
	}
	if got := Labels("solo"); got != "solo" {
		t.Errorf("Labels with no pairs = %q, want base unchanged", got)
	}
}

// TestWindowedRecordRateZeroAlloc keeps the telemetry pump off the
// allocator: sampling rings and reading rates are hot-loop safe.
func TestWindowedRecordRateZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc gate skipped under -race")
	}
	w := NewWindowedSeries(1, 8)
	var now int64
	if n := testing.AllocsPerRun(1000, func() {
		now += 2
		w.Record(now, float64(now))
		_ = w.Rate(now, float64(now), 4*time.Nanosecond)
	}); n != 0 {
		t.Fatalf("windowed record/rate allocates %v per run, want 0", n)
	}
}
