package obs

import (
	"fmt"
	"sync"
	"time"
)

// Event is one notable incident retained by the flight recorder: a job
// error, a plan-cache eviction, a profile-guided recompile.
type Event struct {
	// AtUnixNs is the wall-clock time the event was recorded.
	AtUnixNs int64 `json:"at_unix_ns"`
	// Kind classifies the event ("error", "evict", "recompile", ...).
	Kind string `json:"kind"`
	// Detail is a short human-readable description.
	Detail string `json:"detail"`
}

// FlightRecorder keeps the last N completed job traces and the last M
// events in fixed rings — enough recent history to answer "what just
// happened" from a debug endpoint without unbounded growth. All
// methods are safe for concurrent use and nil-safe on the recording
// side, so producers never guard.
type FlightRecorder struct {
	mu sync.Mutex

	traces  []*Trace // ring storage; nil slots not yet filled
	tNext   int
	tTotal  uint64
	events  []Event
	eNext   int
	eTotal  uint64
	dropped uint64 // traces overwritten before being read
}

// NewFlightRecorder builds a recorder retaining up to traceDepth
// traces and eventDepth events (minimum 1 each; non-positive depths
// are clamped).
func NewFlightRecorder(traceDepth, eventDepth int) *FlightRecorder {
	if traceDepth < 1 {
		traceDepth = 1
	}
	if eventDepth < 1 {
		eventDepth = 1
	}
	return &FlightRecorder{
		traces: make([]*Trace, traceDepth),
		events: make([]Event, eventDepth),
	}
}

// RecordTrace retains a completed trace, evicting the oldest once the
// ring is full.
func (r *FlightRecorder) RecordTrace(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.traces[r.tNext] != nil {
		r.dropped++
	}
	r.traces[r.tNext] = t
	r.tNext = (r.tNext + 1) % len(r.traces)
	r.tTotal++
}

// Event records an incident.
func (r *FlightRecorder) Event(kind, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events[r.eNext] = Event{AtUnixNs: time.Now().UnixNano(), Kind: kind, Detail: detail}
	r.eNext = (r.eNext + 1) % len(r.events)
	r.eTotal++
}

// Eventf records an incident with a formatted detail string.
func (r *FlightRecorder) Eventf(kind, format string, args ...any) {
	if r == nil {
		return
	}
	r.Event(kind, fmt.Sprintf(format, args...))
}

// Traces returns the retained traces, oldest first.
func (r *FlightRecorder) Traces() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.traces))
	n := len(r.traces)
	for i := 0; i < n; i++ {
		if t := r.traces[(r.tNext+i)%n]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Events returns the retained events, oldest first.
func (r *FlightRecorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	n := len(r.events)
	for i := 0; i < n; i++ {
		e := r.events[(r.eNext+i)%n]
		if e.AtUnixNs != 0 {
			out = append(out, e)
		}
	}
	return out
}

// TraceCount returns the total number of traces ever recorded (not the
// retained count).
func (r *FlightRecorder) TraceCount() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tTotal
}

// EventCount returns the total number of events ever recorded.
func (r *FlightRecorder) EventCount() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eTotal
}

// Depth returns the trace ring capacity.
func (r *FlightRecorder) Depth() int {
	if r == nil {
		return 0
	}
	return len(r.traces)
}

// Reset drops all retained traces and events (counters included) —
// used to discard warmup history so a measurement window starts clean.
func (r *FlightRecorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.traces {
		r.traces[i] = nil
	}
	for i := range r.events {
		r.events[i] = Event{}
	}
	r.tNext, r.eNext = 0, 0
	r.tTotal, r.eTotal, r.dropped = 0, 0, 0
}
