package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed region inside a job's trace. Spans form a tree via
// Parent (an index into the trace's span slice; the root "job" span is
// index 0 with Parent -1). Times are nanoseconds relative to the
// trace's start, so a span tree is self-contained and cheap to ship.
type Span struct {
	// Name is the stage label ("queue", "compile", "run", ...).
	Name string
	// Parent is the index of the enclosing span, -1 for the root.
	Parent int
	// Channel is the hardware channel the span ran on, -1 when the
	// stage is not channel-bound.
	Channel int
	// StartNs/EndNs are offsets from the trace start. EndNs is 0 while
	// the span is open (the root span starts at 0, so a completed
	// non-root span always has EndNs > 0).
	StartNs int64
	EndNs   int64
}

// DurNs returns the span's duration (0 while still open).
func (s Span) DurNs() int64 {
	if s.EndNs <= s.StartNs {
		return 0
	}
	return s.EndNs - s.StartNs
}

// Trace is one job's span tree. A nil *Trace is the disabled form:
// every method no-ops (Begin returns -1, which End and children accept
// silently), so call sites thread a possibly-nil trace through the
// pipeline without branching — and without allocating — when tracing
// is off.
//
// A trace is written by the one goroutine currently advancing the job
// plus the submitting goroutine (queue span), which hand off through
// the scheduler; the mutex makes reads from debug surfaces safe while
// a job is still in flight.
//
//simdram:nilsafe
type Trace struct {
	// ID is the job's trace ID, unique per tracer.
	ID uint64
	// StartUnixNs anchors the relative span times to the wall clock.
	StartUnixNs int64

	base time.Time // monotonic anchor for span offsets

	mu    sync.Mutex
	spans []Span
	err   string
}

// spanArity is the expected span count of a steady-state served job
// (job, queue, compile, cache-lookup, lower, prepare, resolve,
// execute, run, gather); traces preallocate room for it plus a cold
// "schedule" span so tracing a typical job costs one allocation total.
const spanArity = 11

func newTrace(id uint64) *Trace {
	now := time.Now()
	t := &Trace{
		ID:          id,
		StartUnixNs: now.UnixNano(),
		base:        now,
		spans:       make([]Span, 0, spanArity),
	}
	t.spans = append(t.spans, Span{Name: "job", Parent: -1, Channel: -1})
	return t
}

func (t *Trace) nowNs() int64 { return int64(time.Since(t.base)) }

// Begin opens a span under parent (an index previously returned by
// Begin, or 0 for the root) and returns its index. On a nil trace it
// returns -1.
func (t *Trace) Begin(name string, parent int) int {
	return t.BeginOn(name, parent, -1)
}

// BeginOn is Begin for channel-bound stages: channel annotates which
// hardware channel the work ran on.
func (t *Trace) BeginOn(name string, parent, channel int) int {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if parent < -1 || parent >= len(t.spans) {
		parent = 0
	}
	t.spans = append(t.spans, Span{
		Name:    name,
		Parent:  parent,
		Channel: channel,
		StartNs: t.nowNs(),
	})
	return len(t.spans) - 1
}

// End closes the span at index i (from Begin). Out-of-range indices —
// including the -1 a nil trace hands out — are ignored, so paired
// Begin/End sites need no guards.
func (t *Trace) End(i int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.spans) {
		return
	}
	if t.spans[i].EndNs == 0 {
		t.spans[i].EndNs = t.nowNs()
	}
}

// SetErr records the job's failure on the trace (first writer wins).
func (t *Trace) SetErr(msg string) {
	if t == nil || msg == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == "" {
		t.err = msg
	}
}

// Err returns the recorded failure, "" for success or a nil trace.
func (t *Trace) Err() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Spans returns a copy of the span tree in creation order (index 0 is
// the root). Nil for a nil trace.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// finish closes the root span; idempotent.
func (t *Trace) finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spans[0].EndNs == 0 {
		t.spans[0].EndNs = t.nowNs()
	}
}

// Tracer decides which jobs get a trace and hands completed traces to
// the flight recorder. Sampling is deterministic every-Nth (derived
// from the configured rate), so a long run traces a representative
// stream without per-job randomness. A nil tracer, or one with
// sampling 0, returns nil traces from Start — the fully disabled,
// zero-allocation path.
type Tracer struct {
	everyN uint64 // trace every Nth job; 0 = disabled
	seq    atomic.Uint64
	ids    atomic.Uint64
	rec    *FlightRecorder
}

// NewTracer builds a tracer that samples approximately the given
// fraction of jobs (1.0 = all, 0 = none; fractions become every-Nth)
// and records finished traces into rec (which may be nil to discard).
func NewTracer(sampling float64, rec *FlightRecorder) *Tracer {
	var n uint64
	switch {
	case sampling >= 1:
		n = 1
	case sampling <= 0:
		n = 0
	default:
		n = uint64(1/sampling + 0.5)
		if n < 1 {
			n = 1
		}
	}
	return &Tracer{everyN: n, rec: rec}
}

// Enabled reports whether this tracer ever samples.
func (t *Tracer) Enabled() bool { return t != nil && t.everyN > 0 }

// Start returns a new trace for a job, or nil when the job is not
// sampled (or the tracer is nil/disabled). The returned trace already
// has its root "job" span open.
func (t *Tracer) Start() *Trace {
	if t == nil || t.everyN == 0 {
		return nil
	}
	if t.seq.Add(1)%t.everyN != 0 {
		return nil
	}
	return newTrace(t.ids.Add(1))
}

// Finish closes the trace's root span and hands it to the flight
// recorder. Safe on nil traces and tracers.
func (t *Tracer) Finish(tr *Trace) {
	if tr == nil {
		return
	}
	tr.finish()
	if t != nil {
		t.rec.RecordTrace(tr)
	}
}
