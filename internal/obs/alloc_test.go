package obs

import (
	"testing"

	"simdram/internal/raceflag"
)

// These gates pin the hot-path contract the serving layer depends on:
// recording a metric and running with tracing disabled must not touch
// the heap. Run in the dedicated non-race CI step; the race detector
// allocates on its own, so they skip under -race.

func TestObserveZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc gate skipped under -race")
	}
	var h Histogram
	var c Counter
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
		c.Inc()
		g.Add(1)
	}); n != 0 {
		t.Fatalf("metric updates allocate %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		_ = h.Snapshot().Quantile(0.99)
	}); n != 0 {
		t.Fatalf("snapshot+quantile allocates %v per run, want 0", n)
	}
}

func TestDisabledTracingZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc gate skipped under -race")
	}
	off := NewTracer(0, nil)
	if n := testing.AllocsPerRun(1000, func() {
		tr := off.Start()
		i := tr.Begin("compile", 0)
		j := tr.BeginOn("run", i, 2)
		tr.End(j)
		tr.End(i)
		tr.SetErr("")
		off.Finish(tr)
	}); n != 0 {
		t.Fatalf("disabled tracing allocates %v per run, want 0", n)
	}
	// Unsampled jobs on an enabled tracer are just as free.
	half := NewTracer(0.001, nil)
	half.Start() // consume until the pattern is mid-cycle
	if n := testing.AllocsPerRun(100, func() {
		if tr := half.Start(); tr == nil {
			_ = tr
		}
	}); n > 0.2 {
		t.Fatalf("unsampled Start allocates %v per run, want ~0", n)
	}
}
