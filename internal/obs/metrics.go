// Package obs is the serving stack's observability substrate: a
// metrics registry of counters, gauges, and fixed-bucket log-scale
// histograms (alloc-free Observe on the hot path, mergeable
// snapshots), a sampling-gated span tracer that records one span tree
// per served job, and a flight recorder holding the most recent
// completed traces and notable events (errors, evictions, recompiles).
//
// Everything is designed around two constraints of the serving hot
// path: recording a measurement must not allocate (histograms are
// fixed atomic arrays, disabled tracing is a nil pointer whose methods
// no-op), and reading must not perturb writers (snapshots copy under
// short critical sections; quantiles are computed on the snapshot).
package obs

import (
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; all methods are safe for concurrent use and nil-safe
// (a nil counter drops the update), so call sites never need a guard.
//
//simdram:nilsafe
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
//
//simdram:zeroalloc
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter is a monotonically increasing float64 — the counter for
// quantities the timing and energy models report as floats (modeled
// nanoseconds, picojoules). Add is a lock-free CAS loop on the bit
// pattern; like Counter it is nil-safe, so optional attribution sinks
// never need call-site guards.
//
//simdram:nilsafe
type FloatCounter struct{ bits atomic.Uint64 }

// Add increments the counter by v (non-positive deltas are dropped —
// the series is monotonic by contract).
//
//simdram:zeroalloc
func (c *FloatCounter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	for {
		old := c.bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Value returns the accumulated total (0 for a nil counter).
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an instantaneous signed level (queue depth, running jobs).
// The zero value is ready to use; methods are concurrency- and
// nil-safe.
//
//simdram:nilsafe
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge's current level.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram layout: values land in log-scale buckets with 4 linear
// sub-buckets per power of two, so the relative quantile error is
// bounded at 1/8 across the whole int64 range. Values 0..3 get exact
// unit buckets.
const (
	histSubBits = 2 // sub-buckets per octave = 1<<histSubBits
	histSubs    = 1 << histSubBits
	// NumBuckets is the fixed bucket count of every Histogram: 4 exact
	// unit buckets plus 4 sub-buckets for each octave 2..62 (the top
	// octave of a non-negative int64).
	NumBuckets = histSubs + (62-histSubBits+1)*histSubs
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSubs {
		return int(u)
	}
	o := uint(bits.Len64(u)) - 1 // octave: position of the top bit, >= histSubBits
	sub := (u >> (o - histSubBits)) & (histSubs - 1)
	return histSubs + int(o-histSubBits)*histSubs + int(sub)
}

// bucketMid returns a representative value for a bucket: the geometric
// middle of its range, so quantiles land inside the bucket that
// contains them with bounded relative error.
func bucketMid(i int) int64 {
	if i < histSubs {
		return int64(i)
	}
	g := i - histSubs
	o := uint(g/histSubs) + histSubBits
	sub := uint64(g % histSubs)
	lo := uint64(1)<<o | sub<<(o-histSubBits)
	width := uint64(1) << (o - histSubBits)
	return int64(lo + width/2)
}

// Histogram is a fixed-bucket log-scale distribution. Observe is
// wait-free, allocation-free, and nil-safe — the serving hot path
// records latencies into it with zero overhead beyond a few atomic
// adds. The zero value is ready to use.
//
//simdram:nilsafe
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
}

// Observe records one value (negative values clamp to zero).
//
//simdram:zeroalloc
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot copies the histogram's current state. Concurrent Observes
// may straddle the copy (a bucket counted but not yet the total); the
// snapshot normalizes by recomputing the total from the buckets, so
// Count always equals the sum of Counts.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var s HistSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram — a plain value
// that merges associatively, so per-channel or per-shard histograms
// aggregate into fleet-wide ones in any grouping order.
type HistSnapshot struct {
	Counts [NumBuckets]uint64
	Count  uint64
	Sum    int64
}

// Merge folds o into s bucket-wise. Merging is commutative and
// associative: merge(a, merge(b, c)) == merge(merge(a, b), c).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Sub returns s minus o bucket-wise — the distribution of observations
// that happened between two cumulative snapshots of the same histogram
// (the windowed view a trailing-window SLO evaluates). Buckets that
// would go negative (o is not actually an earlier snapshot of s) clamp
// to zero, and Count is recomputed from the clamped buckets so the
// invariant Count == sum(Counts) holds on the result.
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	var out HistSnapshot
	for i := range s.Counts {
		if s.Counts[i] > o.Counts[i] {
			out.Counts[i] = s.Counts[i] - o.Counts[i]
		}
		out.Count += out.Counts[i]
	}
	if s.Sum > o.Sum {
		out.Sum = s.Sum - o.Sum
	}
	return out
}

// FractionAbove returns the fraction of observations strictly above v
// — the "bad events" numerator of an SLO burn rate. Resolution is the
// histogram's bucket width: a bucket counts as above v when its
// representative value (bucketMid) exceeds v. Returns 0 when empty.
func (s HistSnapshot) FractionAbove(v int64) float64 {
	if s.Count == 0 {
		return 0
	}
	var above uint64
	for i, c := range s.Counts {
		if c != 0 && bucketMid(i) > v {
			above += c
		}
	}
	return float64(above) / float64(s.Count)
}

// Quantile returns the value at quantile q in [0, 1] (0 when the
// histogram is empty). The result is the representative value of the
// bucket containing the q-th observation, so relative error is bounded
// by the bucket width (1/8 above value 4).
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(NumBuckets - 1)
}

// Mean returns the exact arithmetic mean of the observed values (0
// when empty) — Sum is tracked exactly, unlike the bucketed quantiles.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Kind labels a registry series.
type Kind uint8

// Registry series kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Metric is one series in a registry snapshot.
type Metric struct {
	Name string
	Kind Kind
	// Value is the counter count or gauge level; for histograms it is
	// the observation count (the distribution itself is in Hist).
	Value float64
	// Hist is the histogram's snapshot (nil for counters and gauges).
	Hist *HistSnapshot
}

// maxSeries bounds how many distinct series one registry retains:
// beyond it, new names share the overflow series, so unbounded label
// cardinality (a tenant ID per request) cannot grow the registry
// without bound. The per-kind overflow series is named "obs.overflow".
const maxSeries = 8192

// OverflowSeries is the shared series name updates land on once a
// registry is at capacity.
const OverflowSeries = "obs.overflow"

// Registry is a named collection of metrics. Lookups are get-or-create
// and intended for setup paths (hold the returned pointer on the hot
// path); Snapshot returns every series sorted by name.
//
//simdram:nilsafe
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	fcounters map[string]*FloatCounter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  map[string]*Counter{},
		fcounters: map[string]*FloatCounter{},
		gauges:    map[string]*Gauge{},
		hists:     map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if absent. A nil
// registry returns nil (whose methods no-op), so optional metrics
// never need call-site guards.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		if len(r.counters) >= maxSeries {
			name = OverflowSeries
			if c, ok = r.counters[name]; ok {
				return c
			}
		}
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// FloatCounter returns the named float counter, creating it if absent
// (nil from a nil registry). Float counters share the counter
// namespace's capacity rules: past maxSeries, new names land on the
// shared overflow series.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.fcounters[name]
	if !ok {
		if len(r.fcounters) >= maxSeries {
			name = OverflowSeries
			if c, ok = r.fcounters[name]; ok {
				return c
			}
		}
		c = &FloatCounter{}
		r.fcounters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if absent (nil from a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		if len(r.gauges) >= maxSeries {
			name = OverflowSeries
			if g, ok = r.gauges[name]; ok {
				return g
			}
		}
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if absent (nil
// from a nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(r.hists) >= maxSeries {
			name = OverflowSeries
			if h, ok = r.hists[name]; ok {
				return h
			}
		}
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every series, sorted by name within each kind
// (counters, then gauges, then histograms). A nil registry returns nil.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	fcounters := make(map[string]*FloatCounter, len(r.fcounters))
	for k, v := range r.fcounters {
		fcounters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	out := make([]Metric, 0, len(counters)+len(fcounters)+len(gauges)+len(hists))
	for name, c := range counters {
		out = append(out, Metric{Name: name, Kind: KindCounter, Value: float64(c.Value())})
	}
	for name, c := range fcounters {
		out = append(out, Metric{Name: name, Kind: KindCounter, Value: c.Value()})
	}
	for name, g := range gauges {
		out = append(out, Metric{Name: name, Kind: KindGauge, Value: float64(g.Value())})
	}
	for name, h := range hists {
		s := h.Snapshot()
		out = append(out, Metric{Name: name, Kind: KindHistogram, Value: float64(s.Count), Hist: &s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TenantSeries renders the conventional per-label series name,
// base{label=value} — one place defines the format the debug surfaces
// parse.
func TenantSeries(base, label, value string) string {
	return base + "{" + label + "=" + value + "}"
}

// Labels renders a multi-label series name, base{k1=v1,k2=v2,...},
// from alternating key/value arguments. Callers pass keys in sorted
// order so equal label sets always produce equal series names. An odd
// trailing key is ignored; zero pairs return base unchanged.
func Labels(base string, kv ...string) string {
	if len(kv) < 2 {
		return base
	}
	s := base + "{"
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			s += ","
		}
		s += kv[i] + "=" + kv[i+1]
	}
	return s + "}"
}

// ParseSeries splits a registry series name into its base and its
// label pairs — the inverse of TenantSeries/Labels, used by exposition
// surfaces that re-render labels in another syntax. A name with no
// label block returns (name, nil).
func ParseSeries(name string) (base string, labels [][2]string) {
	open := strings.IndexByte(name, '{')
	if open < 0 || name[len(name)-1] != '}' {
		return name, nil
	}
	base = name[:open]
	body := name[open+1 : len(name)-1]
	for len(body) > 0 {
		pair := body
		if j := strings.IndexByte(body, ','); j >= 0 {
			pair, body = body[:j], body[j+1:]
		} else {
			body = ""
		}
		if k := strings.IndexByte(pair, '='); k >= 0 {
			labels = append(labels, [2]string{pair[:k], pair[k+1:]})
		}
	}
	return base, labels
}
