// Package lint is the repo's in-tree static-analysis framework: a
// small analyzer API in the spirit of go/analysis, plus a loader that
// parses and type-checks module-local packages using only the
// standard library — so the hot-path linters run in the same
// offline sandbox as the tests, with no external toolchain.
//
// Two analyzers ship with it:
//
//   - zeroalloc enforces the //simdram:zeroalloc annotation: functions
//     on the bind-once/run-many hot path must not contain allocation
//     constructs (make/new, growing append, escaping closures and
//     composite literals, fmt calls, string concatenation, interface
//     boxing, go/defer). Line-level suppressions //simdram:prealloc
//     (append into preallocated capacity) and //simdram:coldpath
//     (failure/shutdown paths) document the audited exceptions.
//
//   - obsnil enforces the observability nil contract: types annotated
//     //simdram:nilsafe must guard every exported pointer method
//     against a nil receiver (or delegate to one that does), and code
//     outside the obs package may touch *obs.Trace fields only inside
//     an explicit nil guard — methods are nil-safe, fields are not.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one reported violation, located at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// All returns every analyzer the simdramlint multichecker runs.
func All() []*Analyzer { return []*Analyzer{ZeroAlloc, ObsNil} }

// Pass carries one analyzer's view of one loaded package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer   string
	findings   *[]Finding
	suppressed map[string]map[int]bool // filename -> lines carrying a suppression
}

// Report records a finding at pos unless the line (or the line above
// it) carries a //simdram:prealloc or //simdram:coldpath suppression.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines := p.suppressed[position.Filename]; lines[position.Line] || lines[position.Line-1] {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressionMarkers are the line-level escape hatches; each names the
// audited reason an allocation construct is allowed to stay.
var suppressionMarkers = []string{"//simdram:prealloc", "//simdram:coldpath"}

// buildSuppressions maps, per file, the lines whose comments carry a
// suppression marker. A marker suppresses findings on its own line and
// on the line directly below it (comment-above style).
func buildSuppressions(pkg *Package) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				marked := false
				for _, m := range suppressionMarkers {
					if strings.HasPrefix(text, m) {
						marked = true
						break
					}
				}
				if !marked {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				lines := out[position.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					out[position.Filename] = lines
				}
				lines[position.Line] = true
			}
		}
	}
	return out
}

// Run executes the analyzers over one loaded package and returns the
// findings sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	supp := buildSuppressions(pkg)
	for _, a := range analyzers {
		pass := &Pass{
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			analyzer:   a.Name,
			findings:   &findings,
			suppressed: supp,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

// hasMarker reports whether a doc comment carries the given directive
// line (e.g. "//simdram:zeroalloc").
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// isBuiltin reports whether the call target is the named builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// pkgOfCall returns the import path when the call target is a
// package-qualified function (pkg.Fn), "" otherwise.
func pkgOfCall(info *types.Info, fun ast.Expr) string {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
