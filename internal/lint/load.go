package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package, ready for
// analysis.
type Package struct {
	Path  string // import path ("simdram/internal/obs")
	Dir   string // absolute source directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module-local packages from source.
// Imports inside the module resolve recursively through the loader
// itself; standard-library imports resolve through the compiler's
// source importer — no compiled export data, no module cache, no
// network, so the linters work in the same offline sandbox as the
// tests. Loaded packages are cached per import path.
type Loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	cache   map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at modRoot (the
// directory holding go.mod).
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		modRoot: abs,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// modulePath reads the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", file)
}

// Load parses and type-checks the package in dir (which must be
// inside the module).
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.modRoot)
	}
	path := l.modPath
	if rel != "." {
		path = l.modPath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: loaderImporter{l}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = p
	return p, nil
}

// loaderImporter routes module-local import paths back into the
// loader and everything else to the standard-library source importer.
type loaderImporter struct{ l *Loader }

func (im loaderImporter) Import(path string) (*types.Package, error) {
	l := im.l
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		dir := l.modRoot
		if rel != "" {
			dir = filepath.Join(l.modRoot, filepath.FromSlash(rel))
		}
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
