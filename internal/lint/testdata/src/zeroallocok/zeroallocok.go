// Package zeroallocok is a zeroalloc-annotated function that stays
// within the contract: in-place writes, builtin copy, preallocated
// append under //simdram:prealloc, failure-path fmt under
// //simdram:coldpath, and fmt.Sprintf feeding a panic (cold by
// definition). The self-test asserts zero findings.
package zeroallocok

import "fmt"

// Fill writes ramp values into dst and mirrors them into scratch,
// which the caller sized at bind time.
//
//simdram:zeroalloc
func Fill(dst, scratch []int, fail bool) int {
	if len(scratch) < len(dst) {
		panic(fmt.Sprintf("scratch too small: %d < %d", len(scratch), len(dst)))
	}
	total := 0
	for i := range dst {
		dst[i] = i
		total += i
	}
	copy(scratch, dst)
	out := scratch[:0]
	for _, v := range dst {
		out = append(out, v) //simdram:prealloc scratch spans dst
	}
	if fail {
		//simdram:coldpath diagnostics on the failure path only
		fmt.Println("fill failed", total)
	}
	return total
}
