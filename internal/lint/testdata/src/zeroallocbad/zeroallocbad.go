// Package zeroallocbad seeds one violation of every zeroalloc rule;
// the self-test asserts each marked line is flagged and no unmarked
// line is.
package zeroallocbad

import "fmt"

type point struct{ x, y int }

type sink struct{ p *point }

// Hot is the seeded-violation hot path.
//
//simdram:zeroalloc
func Hot(xs []int, s *sink, name string) int {
	buf := make([]int, 0, len(xs)) // want "make allocates"
	total := 0
	for _, x := range xs {
		buf = append(buf, x) // want "append may grow"
		total += x
	}
	p := new(point) // want "new allocates"
	_ = p
	s.p = &point{x: total, y: len(buf)} // want "composite literal escapes"
	f := func() int { return total }    // want "closure may escape"
	total += f()
	fmt.Println(total)                  // want "fmt call allocates"
	lanes := []int{1, 2, 3}             // want "slice literal allocates"
	m := map[string]int{name: 1}        // want "map literal allocates"
	label := "lane:" + name             // want "string concatenation allocates"
	go func() { _ = lanes }()           // want "go statement"
	defer fmt.Println(label, m)         // want "defer may allocate"
	box := func(v any) any { return v } // want "closure may escape"
	_ = box(total)                      // want "implicit conversion to any"
	return total
}

// Cold is not annotated: the same constructs pass untouched.
func Cold(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
