// Package obsnilbad seeds violations of both halves of the obsnil
// contract: a //simdram:nilsafe type with an unguarded exported
// method, and unguarded field reads through a *obs.Trace.
package obsnilbad

import "simdram/internal/obs"

// Meter promises nil-safety but one method breaks the contract.
//
//simdram:nilsafe
type Meter struct{ n int }

// Count reads the receiver with no guard.
func (m *Meter) Count() int { return m.n } // want "neither guards the receiver"

// Guarded opens with the canonical early return.
func (m *Meter) Guarded() int {
	if m == nil {
		return 0
	}
	return m.n
}

// Wrapped keeps all work under the positive guard.
func (m *Meter) Wrapped() int {
	if m != nil {
		return m.n
	}
	return 0
}

// Delegate is a single-statement delegation to a guarded method.
func (m *Meter) Delegate() int { return m.Guarded() }

// reset is unexported: the contract covers the exported surface only.
func (m *Meter) reset() { m.n = 0 }

// TraceID reads a field with no guard.
func TraceID(tr *obs.Trace) uint64 {
	return tr.ID // want "possibly-nil"
}

// GuardedID is the sanctioned call-site pattern.
func GuardedID(tr *obs.Trace) uint64 {
	if tr != nil {
		return tr.ID
	}
	return 0
}

// EarlyReturnID proves tr non-nil for the rest of the block.
func EarlyReturnID(tr *obs.Trace) int64 {
	if tr == nil {
		return 0
	}
	return tr.StartUnixNs
}

// Methods needs no guard: *obs.Trace methods are nil-safe.
func Methods(tr *obs.Trace) string {
	tr.End(tr.Begin("stage", 0))
	return tr.Err()
}
