package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MarkerZeroAlloc is the doc-comment directive that puts a function
// under the zeroalloc analyzer's contract.
const MarkerZeroAlloc = "//simdram:zeroalloc"

// ZeroAlloc flags allocation constructs inside functions annotated
// //simdram:zeroalloc — the bind-once/run-many hot paths whose
// steady-state runs must not touch the heap. It is a syntactic
// over-approximation of the escape analyzer: everything it flags
// either allocates or is one inlining decision away from allocating,
// so the hot paths stay trivially auditable. Audited exceptions are
// suppressed per line with //simdram:prealloc (append into capacity
// reserved at bind time) or //simdram:coldpath (failure and shutdown
// paths that run at most once per batch).
var ZeroAlloc = &Analyzer{
	Name: "zeroalloc",
	Doc:  "flag allocation constructs in //simdram:zeroalloc functions",
	Run:  runZeroAlloc,
}

func runZeroAlloc(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasMarker(fd.Doc, MarkerZeroAlloc) {
				continue
			}
			checkZeroAlloc(p, fd)
		}
	}
	return nil
}

func checkZeroAlloc(p *Pass, fd *ast.FuncDecl) {
	// Composite literals already reported as part of an enclosing &T{}
	// are not reported again on their own.
	taken := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// A panic's argument list is by definition a cold path; the
			// fmt.Sprintf feeding it never runs in steady state.
			if isBuiltin(p.Info, n.Fun, "panic") {
				return false
			}
			switch {
			case isBuiltin(p.Info, n.Fun, "make"):
				p.Report(n.Pos(), "make allocates on the hot path")
			case isBuiltin(p.Info, n.Fun, "new"):
				p.Report(n.Pos(), "new allocates on the hot path")
			case isBuiltin(p.Info, n.Fun, "append"):
				p.Report(n.Pos(), "append may grow its backing array (//simdram:prealloc if capacity is reserved at bind time)")
			case pkgOfCall(p.Info, n.Fun) == "fmt":
				p.Report(n.Pos(), "fmt call allocates (//simdram:coldpath if this is a failure path)")
			}
			reportBoxedArgs(p, n)
		case *ast.FuncLit:
			p.Report(n.Pos(), "closure may escape to the heap")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					taken[lit] = true
					p.Report(n.Pos(), "address of composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if taken[n] {
				return true
			}
			switch p.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				p.Report(n.Pos(), "slice literal allocates on the hot path")
			case *types.Map:
				p.Report(n.Pos(), "map literal allocates on the hot path")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(p.Info.TypeOf(n)) {
				p.Report(n.Pos(), "string concatenation allocates on the hot path")
			}
		case *ast.GoStmt:
			p.Report(n.Pos(), "go statement allocates a goroutine and escapes its arguments")
		case *ast.DeferStmt:
			p.Report(n.Pos(), "defer may allocate and delays work into the hot path's epilogue")
		}
		return true
	})
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// reportBoxedArgs flags implicit conversions of concrete values into
// interface parameters — the boxing allocation of variadic ...any
// sinks and friends. Spread calls (f(xs...)) pass an existing slice
// and are skipped.
func reportBoxedArgs(p *Pass, call *ast.CallExpr) {
	if call.Ellipsis.IsValid() {
		return
	}
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // builtin or type conversion
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = params.At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, isIface := at.Underlying().(*types.Interface); isIface {
			continue // interface-to-interface, no boxing
		}
		p.Report(arg.Pos(), "implicit conversion to %s may allocate", pt)
	}
}
