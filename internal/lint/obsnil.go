package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MarkerNilSafe is the doc-comment directive that puts a type under
// the obsnil analyzer's receiver contract.
const MarkerNilSafe = "//simdram:nilsafe"

// obsPath is the observability package whose *Trace threads through
// the serving pipeline as a possibly-nil pointer.
const obsPath = "simdram/internal/obs"

// ObsNil enforces the two halves of the observability nil contract.
//
// Declaration side: a type annotated //simdram:nilsafe promises that
// every exported pointer method no-ops (or returns a zero value) on a
// nil receiver, so call sites thread disabled telemetry through the
// pipeline without branching. The analyzer requires each such method
// to open with an if statement that tests the receiver against nil,
// or to consist of a single delegation to another method on the same
// receiver.
//
// Consumer side: methods are nil-safe but field accesses are not —
// outside the obs package, reading a field of a *obs.Trace (tr.ID,
// tr.StartUnixNs) is only allowed inside an explicit nil guard
// (`if tr != nil { ... }` or after `if tr == nil { return }`).
var ObsNil = &Analyzer{
	Name: "obsnil",
	Doc:  "enforce nil-receiver guards on //simdram:nilsafe types and nil guards around *obs.Trace field access",
	Run:  runObsNil,
}

func runObsNil(p *Pass) error {
	checkNilSafeDecls(p)
	if p.Pkg.Path() != obsPath {
		// Inside obs the receiver contract above covers nil handling;
		// the field-guard rule is for code that merely consumes traces.
		checkTraceFieldGuards(p)
	}
	return nil
}

// checkNilSafeDecls verifies the receiver contract of every
// //simdram:nilsafe type declared in this package.
func checkNilSafeDecls(p *Pass) {
	nilsafe := make(map[types.Object]bool)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasMarker(gd.Doc, MarkerNilSafe) || hasMarker(ts.Doc, MarkerNilSafe) {
					if obj := p.Info.Defs[ts.Name]; obj != nil {
						nilsafe[obj] = true
					}
				}
			}
		}
	}
	if len(nilsafe) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv, tname := pointerRecv(p, fd)
			if recv == nil || !nilsafe[tname] {
				continue
			}
			if methodGuardsNil(fd, recv) {
				continue
			}
			p.Report(fd.Name.Pos(),
				"exported method %s on //simdram:nilsafe type %s neither guards the receiver against nil nor delegates to a method that does",
				fd.Name.Name, tname.Name())
		}
	}
}

// pointerRecv returns the receiver identifier and the named type's
// object when fd has a named pointer receiver, (nil, nil) otherwise.
func pointerRecv(p *Pass, fd *ast.FuncDecl) (*ast.Ident, types.Object) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil, nil
	}
	star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
	if !ok {
		return nil, nil
	}
	base, ok := ast.Unparen(star.X).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	return fd.Recv.List[0].Names[0], p.Info.Uses[base]
}

// methodGuardsNil reports whether the method body satisfies the
// nil-receiver contract syntactically: it is empty, it opens with an
// if statement whose condition compares the receiver against nil
// (possibly inside a ||/&& chain, in either polarity), or it is a
// single statement delegating to another method on the receiver.
func methodGuardsNil(fd *ast.FuncDecl, recv *ast.Ident) bool {
	body := fd.Body.List
	if len(body) == 0 {
		return true
	}
	if ifs, ok := body[0].(*ast.IfStmt); ok && condTestsNil(ifs.Cond, recv.Name) {
		return true
	}
	if len(body) == 1 {
		switch s := body[0].(type) {
		case *ast.ReturnStmt:
			return len(s.Results) == 1 && isRecvMethodCall(s.Results[0], recv.Name)
		case *ast.ExprStmt:
			return isRecvMethodCall(s.X, recv.Name)
		}
	}
	return false
}

// condTestsNil reports whether cond contains `recv == nil` or
// `recv != nil` anywhere in its ||/&& chain.
func condTestsNil(cond ast.Expr, recv string) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR, token.LAND:
			return condTestsNil(e.X, recv) || condTestsNil(e.Y, recv)
		case token.EQL, token.NEQ:
			return isIdentNamed(e.X, recv) && isNilIdent(e.Y) ||
				isNilIdent(e.X) && isIdentNamed(e.Y, recv)
		}
	}
	return false
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func isNilIdent(e ast.Expr) bool { return isIdentNamed(e, "nil") }

// isRecvMethodCall reports whether e is recv.Method(...).
func isRecvMethodCall(e ast.Expr, recv string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && isIdentNamed(sel.X, recv)
}

// checkTraceFieldGuards flags field accesses on *obs.Trace values
// outside a nil guard. The traversal threads the set of identifiers
// proven non-nil on the current path: an `if x != nil` guards its
// body, and an `if x == nil` whose body terminates guards the rest of
// the enclosing block.
func checkTraceFieldGuards(p *Pass) {
	for _, f := range p.Files {
		walkGuarded(p, f, map[types.Object]bool{})
	}
}

func walkGuarded(p *Pass, n ast.Node, guarded map[types.Object]bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.IfStmt:
		if n.Init != nil {
			walkGuarded(p, n.Init, guarded)
		}
		walkGuarded(p, n.Cond, guarded)
		bodyGuards := guardsFromCond(p, n.Cond, true)
		walkGuarded(p, n.Body, union(guarded, bodyGuards))
		if n.Else != nil {
			walkGuarded(p, n.Else, union(guarded, guardsFromCond(p, n.Cond, false)))
		}
		return
	case *ast.BlockStmt:
		local := guarded
		for _, stmt := range n.List {
			walkGuarded(p, stmt, local)
			// `if x == nil { return }` proves x non-nil for the rest of
			// the block.
			if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Else == nil && terminates(ifs.Body) {
				if g := guardsFromCond(p, ifs.Cond, false); len(g) > 0 {
					local = union(local, g)
				}
			}
		}
		return
	case *ast.SelectorExpr:
		walkGuarded(p, n.X, guarded)
		sel := p.Info.Selections[n]
		if sel == nil || sel.Kind() != types.FieldVal {
			return
		}
		if !isTracePtr(p.Info.TypeOf(n.X)) {
			return
		}
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && guarded[obj] {
				return
			}
		}
		p.Report(n.Sel.Pos(),
			"field %s read through a possibly-nil *obs.Trace: methods are nil-safe, fields are not — guard with `if %s != nil`",
			n.Sel.Name, ast.Unparen(n.X))
		return
	}
	// Generic traversal for everything else, one level at a time so the
	// guard set stays path-sensitive.
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		walkGuarded(p, c, guarded)
		return false
	})
}

// guardsFromCond extracts the identifiers a condition proves non-nil
// when it evaluates to taken. `x != nil && y != nil` guards both on
// the true branch; `x == nil` guards x on the false branch. Mixed ||
// chains prove nothing about their operands individually on the true
// branch, so only the false branch of a pure ==nil chain is used.
func guardsFromCond(p *Pass, cond ast.Expr, taken bool) map[types.Object]bool {
	out := map[types.Object]bool{}
	var collect func(e ast.Expr, taken bool)
	collect = func(e ast.Expr, taken bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			switch {
			case e.Op == token.LAND && taken:
				collect(e.X, true)
				collect(e.Y, true)
			case e.Op == token.LOR && !taken:
				collect(e.X, false)
				collect(e.Y, false)
			case e.Op == token.NEQ && taken, e.Op == token.EQL && !taken:
				for _, side := range []ast.Expr{e.X, e.Y} {
					if id, ok := ast.Unparen(side).(*ast.Ident); ok && !isNilIdent(side) {
						if obj := p.Info.Uses[id]; obj != nil && isTracePtr(p.Info.TypeOf(side)) {
							out[obj] = true
						}
					}
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.NOT {
				collect(e.X, !taken)
			}
		}
	}
	collect(cond, taken)
	return out
}

func union(a, b map[types.Object]bool) map[types.Object]bool {
	if len(b) == 0 {
		return a
	}
	out := make(map[types.Object]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// terminates reports whether a block always transfers control out
// (return, panic, continue, break, goto) — the shape of an early
// nil-guard.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// isTracePtr reports whether t is *obs.Trace.
func isTracePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Trace" && obj.Pkg() != nil && obj.Pkg().Path() == obsPath
}
