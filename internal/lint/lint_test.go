package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"simdram/internal/lint"
)

// loadFixture loads one testdata package through the real loader.
func loadFixture(t *testing.T, name string) *lint.Package {
	t.Helper()
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// wantMarkers scans a fixture directory for `// want "substr"`
// comments and returns file:line -> expected message substring.
func wantMarkers(t *testing.T, pkg *lint.Package) map[string]string {
	t.Helper()
	out := map[string]string{}
	entries, err := os.ReadDir(pkg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(pkg.Dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRe.FindStringSubmatch(sc.Text()); m != nil {
				out[fmt.Sprintf("%s:%d", path, line)] = m[1]
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// checkFixture runs the analyzers over a fixture and matches findings
// against its want markers exactly: every marked line must produce a
// finding containing the marker's substring, and every finding must
// land on a marked line.
func checkFixture(t *testing.T, name string, analyzers []*lint.Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name)
	findings, err := lint.Run(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := wantMarkers(t, pkg)
	matched := map[string]bool{}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		want, ok := wants[key]
		if !ok {
			t.Errorf("unexpected finding on unmarked line: %s", f)
			continue
		}
		if strings.Contains(f.Message, want) {
			matched[key] = true
		}
	}
	for key, want := range wants {
		if !matched[key] {
			t.Errorf("%s: no finding containing %q (got %v)", key, want, findings)
		}
	}
}

// TestZeroAllocSeededViolations is the linter's mutation harness:
// every seeded allocation construct in the fixture must be flagged on
// its exact line.
func TestZeroAllocSeededViolations(t *testing.T) {
	checkFixture(t, "zeroallocbad", []*lint.Analyzer{lint.ZeroAlloc})
}

// TestZeroAllocCompliantPath pins the false-positive budget: a hot
// path written to the contract — including //simdram:prealloc and
// //simdram:coldpath suppressions and fmt-feeding-panic — yields zero
// findings.
func TestZeroAllocCompliantPath(t *testing.T) {
	pkg := loadFixture(t, "zeroallocok")
	findings, err := lint.Run(pkg, []*lint.Analyzer{lint.ZeroAlloc})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("compliant fixture flagged: %v", findings)
	}
}

// TestObsNilSeededViolations covers both halves of the nil contract:
// the unguarded nilsafe method and the unguarded *obs.Trace field
// reads are flagged; the guarded, delegating, unexported, and
// method-only shapes are not.
func TestObsNilSeededViolations(t *testing.T) {
	checkFixture(t, "obsnilbad", []*lint.Analyzer{lint.ObsNil})
}

// TestRepoHotPathsClean runs every analyzer over the annotated
// production packages — the linters gate CI, so HEAD must be clean.
func TestRepoHotPathsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the production packages from source")
	}
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{".", "internal/uprog", "internal/dram", "internal/ctrl", "internal/obs"} {
		pkg, err := loader.Load(filepath.Join(root, dir))
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		findings, err := lint.Run(pkg, lint.All())
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range findings {
			t.Errorf("%s: %s", dir, f)
		}
	}
}
