package ops

import (
	"math"
	"math/rand"
	"testing"

	"simdram/internal/dram"
	"simdram/internal/logic"
	"simdram/internal/mig"
	"simdram/internal/uprog"
	"simdram/internal/vertical"
)

const testN = 3 // operand count for N-ary reductions in tests

// goldenArgs builds a random argument vector for a definition, masked to
// each operand's width.
func goldenArgs(rng *rand.Rand, d Def, w int) []uint64 {
	widths := d.SourceWidths(w, testN)
	args := make([]uint64, len(widths))
	for i := range args {
		args[i] = rng.Uint64() & widthMask(widths[i])
	}
	return args
}

// evalCircuit packs args through the circuit and returns the result.
func evalCircuit(c *logic.Circuit, d Def, w int, args []uint64) uint64 {
	widths := d.SourceWidths(w, len(args))
	out := c.EvalUint(widths, args, []int{d.DstWidth(w)})
	return out[0]
}

func TestCatalogComplete(t *testing.T) {
	if len(Catalog()) != int(numCodes) {
		t.Fatalf("catalog has %d entries, want %d (every Code registered)", len(Catalog()), numCodes)
	}
	if len(PaperSet()) != 16 {
		t.Fatalf("paper set has %d ops, want 16", len(PaperSet()))
	}
	names := map[string]bool{}
	for _, d := range Catalog() {
		if names[d.Name] {
			t.Errorf("duplicate op name %q", d.Name)
		}
		names[d.Name] = true
		if _, err := ByName(d.Name); err != nil {
			t.Errorf("ByName(%q): %v", d.Name, err)
		}
		if _, err := ByCode(d.Code); err != nil {
			t.Errorf("ByCode(%v): %v", d.Code, err)
		}
	}
	for _, want := range []string{
		"abs", "addition", "bitcount", "division", "equal", "greater",
		"greater_equal", "if_else", "max", "min", "multiplication", "relu",
		"subtraction", "and_red", "or_red", "xor_red",
	} {
		if !names[want] {
			t.Errorf("paper operation %q missing from catalog", want)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName must reject unknown names")
	}
}

// TestCircuitsMatchGolden checks every op's gate circuit against its
// golden model on random operands.
func TestCircuitsMatchGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range Catalog() {
		for _, w := range []int{4, 8, 16} {
			c, err := d.Build(w, testN)
			if err != nil {
				t.Fatalf("%s/%d: %v", d.Name, w, err)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("%s/%d: %v", d.Name, w, err)
			}
			for trial := 0; trial < 50; trial++ {
				args := goldenArgs(rng, d, w)
				got := evalCircuit(c, d, w, args)
				want := d.Golden(args, w)
				if got != want {
					t.Fatalf("%s/%d args=%v: circuit=%d golden=%d", d.Name, w, args, got, want)
				}
			}
		}
	}
}

// TestCircuitsExhaustiveSmall checks 2-operand ops exhaustively at 4 bits.
func TestCircuitsExhaustiveSmall(t *testing.T) {
	for _, d := range Catalog() {
		if d.Arity != 2 {
			continue
		}
		w := 4
		c, err := d.Build(w, 0)
		if err != nil {
			t.Fatal(err)
		}
		for a := uint64(0); a < 16; a++ {
			for b := uint64(0); b < 16; b++ {
				got := evalCircuit(c, d, w, []uint64{a, b})
				want := d.Golden([]uint64{a, b}, w)
				if got != want {
					t.Fatalf("%s(%d,%d) = %d, want %d", d.Name, a, b, got, want)
				}
			}
		}
	}
}

// TestMIGsPreserveCircuits checks the MAJ/NOT lowering and optimization
// for every operation.
func TestMIGsPreserveCircuits(t *testing.T) {
	for _, d := range Catalog() {
		w := 8
		c, err := d.Build(w, testN)
		if err != nil {
			t.Fatal(err)
		}
		m, err := mig.FromCircuit(c)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		m.Optimize(mig.DefaultOptimize())
		if err := mig.VerifyAgainstCircuit(m, c, 64, 13); err != nil {
			t.Fatalf("%s/8: optimized MIG wrong: %v", d.Name, err)
		}
	}
}

// runProgram executes a synthesized program on a test subarray.
func runProgram(t *testing.T, s *Synthesized, operands [][]uint64) []uint64 {
	t.Helper()
	cfg := dram.TestConfig()
	sa := dram.NewSubarray(&cfg)
	n := len(operands[0])
	widths := s.Def.SourceWidths(s.Width, len(operands))
	total := 0
	for _, w := range widths {
		total += w
	}
	bind := uprog.Binding{
		DstBase:     total,
		ScratchBase: total + s.Program.DstWidth,
	}
	base := 0
	for k, vals := range operands {
		w := widths[k]
		rows, err := vertical.ToVertical(vals, w, cfg.Cols)
		if err != nil {
			t.Fatal(err)
		}
		bind.SrcBase = append(bind.SrcBase, base)
		for i := 0; i < w; i++ {
			sa.Poke(base+i, rows[i])
		}
		base += w
	}
	if err := uprog.Run(s.Program, sa, bind); err != nil {
		t.Fatalf("%s: %v", s.Program.Name, err)
	}
	dw := s.Program.DstWidth
	dstRows := make([][]uint64, dw)
	for i := 0; i < dw; i++ {
		dstRows[i] = sa.Peek(bind.DstBase + i)
	}
	vals, err := vertical.ToHorizontal(dstRows, dw, n)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

// TestAllOpsEndToEndInDRAM is the core correctness experiment: every
// operation of the paper set (plus helpers), synthesized through the full
// SIMDRAM flow, must compute bit-exactly in the DRAM model.
func TestAllOpsEndToEndInDRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, d := range Catalog() {
		for _, variant := range []Variant{VariantSIMDRAM, VariantAmbit} {
			w := 8
			s, err := SynthesizeCached(d, w, testN, variant)
			if err != nil {
				t.Fatalf("%s/%v: %v", d.Name, variant, err)
			}
			if err := s.Program.Validate(dram.TestConfig()); err != nil {
				t.Fatalf("%s/%v: invalid program: %v", d.Name, variant, err)
			}
			widths := d.SourceWidths(w, testN)
			n := 128
			operands := make([][]uint64, len(widths))
			for k := range operands {
				operands[k] = make([]uint64, n)
				for i := range operands[k] {
					operands[k][i] = rng.Uint64() & widthMask(widths[k])
				}
			}
			got := runProgram(t, s, operands)
			for lane := 0; lane < n; lane++ {
				args := make([]uint64, len(widths))
				for k := range args {
					args[k] = operands[k][lane]
				}
				want := d.Golden(args, w)
				if got[lane] != want {
					t.Fatalf("%s/%v lane %d args=%v: dram=%d golden=%d",
						d.Name, variant, lane, args, got[lane], want)
				}
			}
		}
	}
}

// TestSIMDRAMBeatsAmbit asserts the paper's Step-1/Step-2 claim: the
// MAJ-native flow is at least as fast as the AND/OR/NOT Ambit baseline
// for every paper operation, and meaningfully faster on average (the
// paper reports up to 5.1× throughput, average ≈ 2×).
func TestSIMDRAMBeatsAmbit(t *testing.T) {
	tm := dram.DDR4_2400()
	geo := 1.0
	for _, d := range PaperSet() {
		w := 16
		sd, err := SynthesizeCached(d, w, testN, VariantSIMDRAM)
		if err != nil {
			t.Fatal(err)
		}
		am, err := SynthesizeCached(d, w, testN, VariantAmbit)
		if err != nil {
			t.Fatal(err)
		}
		sLat := sd.Program.LatencyNs(tm)
		aLat := am.Program.LatencyNs(tm)
		ratio := aLat / sLat
		geo *= ratio
		t.Logf("%-14s/16: simdram %7.0fns  ambit %7.0fns  speedup %.2f×", d.Name, sLat, aLat, ratio)
		if ratio < 1.0 {
			t.Errorf("%s/16: SIMDRAM slower than Ambit (%.2f×)", d.Name, ratio)
		}
	}
	geo = math.Pow(geo, 1.0/float64(len(PaperSet())))
	t.Logf("geomean speedup over Ambit: %.2f×", geo)
	if geo < 1.3 {
		t.Errorf("geomean speedup over Ambit = %.2f×, want ≥ 1.3× (paper ≈ 2×)", geo)
	}
}

// TestAblationVariants checks that each disabled optimization costs
// commands on a representative op.
func TestAblationVariants(t *testing.T) {
	d, err := ByName("addition")
	if err != nil {
		t.Fatal(err)
	}
	w := 16
	full, err := SynthesizeCached(d, w, 0, VariantSIMDRAM)
	if err != nil {
		t.Fatal(err)
	}
	noReuse, err := SynthesizeCached(d, w, 0, VariantNoReuse)
	if err != nil {
		t.Fatal(err)
	}
	if noReuse.Program.NumAAP() <= full.Program.NumAAP() {
		t.Errorf("row reuse should save AAPs: full=%d noReuse=%d",
			full.Program.NumAAP(), noReuse.Program.NumAAP())
	}
}

func TestReductionArity(t *testing.T) {
	d, err := ByName("xor_red")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3, 5} {
		c, err := d.Build(8, n)
		if err != nil {
			t.Fatal(err)
		}
		if c.NumInputs() != 8*n {
			t.Errorf("xor_red n=%d: %d inputs, want %d", n, c.NumInputs(), 8*n)
		}
	}
	if _, err := d.Build(8, 1); err == nil {
		t.Error("reduction with n=1 must error")
	}
	if _, err := Synthesize(d, 8, 1, VariantSIMDRAM); err == nil {
		t.Error("Synthesize of reduction with n=1 must error")
	}
}

func TestGoldenEdgeCases(t *testing.T) {
	div, _ := ByName("division")
	if got := div.Golden([]uint64{5, 0}, 8); got != 0xFF {
		t.Errorf("5/0 = %d, want 255 (hardware all-ones convention)", got)
	}
	abs, _ := ByName("abs")
	// Most negative value maps to itself (two's complement overflow).
	if got := abs.Golden([]uint64{0x80}, 8); got != 0x80 {
		t.Errorf("abs(-128) = %#x, want 0x80", got)
	}
	if got := abs.Golden([]uint64{0xFF}, 8); got != 1 {
		t.Errorf("abs(-1) = %d, want 1", got)
	}
	relu, _ := ByName("relu")
	if got := relu.Golden([]uint64{0x80}, 8); got != 0 {
		t.Errorf("relu(-128) = %d, want 0", got)
	}
	if got := relu.Golden([]uint64{0x7F}, 8); got != 0x7F {
		t.Errorf("relu(127) = %d, want 127", got)
	}
	bc, _ := ByName("bitcount")
	if got := bc.Golden([]uint64{0xFF}, 8); got != 8 {
		t.Errorf("bitcount(0xFF) = %d, want 8", got)
	}
	ie, _ := ByName("if_else")
	if got := ie.Golden([]uint64{3, 9, 1}, 8); got != 3 {
		t.Errorf("if_else(3,9,sel=1) = %d, want 3", got)
	}
	if got := ie.Golden([]uint64{3, 9, 0}, 8); got != 9 {
		t.Errorf("if_else(3,9,sel=0) = %d, want 9", got)
	}
}

func TestWidth64Golden(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, name := range []string{"addition", "subtraction", "max", "greater"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := d.Build(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			args := []uint64{rng.Uint64(), rng.Uint64()}
			got := evalCircuit(c, d, 64, args)
			if want := d.Golden(args, 64); got != want {
				t.Fatalf("%s/64 args=%v: circuit=%d golden=%d", name, args, got, want)
			}
		}
	}
}

func TestMulFullProduct(t *testing.T) {
	d, _ := ByName("multiplication")
	if d.DstWidth(8) != 16 || d.DstWidth(32) != 64 || d.DstWidth(64) != 64 {
		t.Errorf("multiplication dst widths wrong: %d %d %d",
			d.DstWidth(8), d.DstWidth(32), d.DstWidth(64))
	}
	c, err := d.Build(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := evalCircuit(c, d, 8, []uint64{0xFF, 0xFF})
	if got != 0xFF*0xFF {
		t.Errorf("255*255 = %d, want %d", got, 0xFF*0xFF)
	}
}

func TestSynthesizeCachedReturnsSameObject(t *testing.T) {
	d, _ := ByName("addition")
	a, err := SynthesizeCached(d, 8, 0, VariantSIMDRAM)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynthesizeCached(d, 8, 0, VariantSIMDRAM)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache must return the same synthesis object")
	}
}
