package ops

import (
	"fmt"
	"sync"

	"simdram/internal/logic"
	"simdram/internal/mig"
	"simdram/internal/uprog"
)

// Variant selects a synthesis flavor.
type Variant uint8

// Synthesis variants.
const (
	// VariantSIMDRAM is the paper's flow: MAJ/NOT templates + MIG
	// optimization + allocation with row reuse.
	VariantSIMDRAM Variant = iota
	// VariantAmbit lowers through 2-input AND/OR/NOT only — the in-DRAM
	// baseline (Ambit) command stream.
	VariantAmbit
	// VariantNoOptimize disables Step-1 MAJ-native synthesis: the circuit
	// is decomposed to basic AND/OR/NOT gates (as prior works use) before
	// lowering, but keeps SIMDRAM's Step-2 allocator (ablation).
	VariantNoOptimize
	// VariantNoReuse is SIMDRAM without Step-2 row reuse (ablation).
	VariantNoReuse
)

func (v Variant) String() string {
	switch v {
	case VariantSIMDRAM:
		return "simdram"
	case VariantAmbit:
		return "ambit"
	case VariantNoOptimize:
		return "no-optimize"
	case VariantNoReuse:
		return "no-reuse"
	default:
		return fmt.Sprintf("variant(%d)", uint8(v))
	}
}

// Synthesized bundles the artifacts of lowering one operation.
type Synthesized struct {
	Def     Def
	Width   int
	N       int // operand count (meaningful for N-ary ops)
	Variant Variant

	Circuit *logic.Circuit
	MIG     *mig.MIG
	Program *uprog.Program
}

// StdRefs returns the conventional operand-major symbolic references for
// arity operands of the given width and a dstWidth-bit destination.
func StdRefs(arity, width, dstWidth int) (in, out []uprog.Ref) {
	widths := make([]int, arity)
	for i := range widths {
		widths[i] = width
	}
	return RefsForWidths(widths, dstWidth)
}

// RefsForWidths is StdRefs with an explicit per-operand width list.
func RefsForWidths(srcWidths []int, dstWidth int) (in, out []uprog.Ref) {
	for op, w := range srcWidths {
		for i := 0; i < w; i++ {
			in = append(in, uprog.Ref{Space: uprog.SpaceSrc, Op: op, Idx: i})
		}
	}
	for i := 0; i < dstWidth; i++ {
		out = append(out, uprog.Ref{Space: uprog.SpaceDst, Idx: i})
	}
	return in, out
}

// Synthesize lowers an operation to a μProgram. n is the operand count
// for N-ary operations (pass 0 for fixed-arity ones).
func Synthesize(d Def, width, n int, variant Variant) (*Synthesized, error) {
	arity := d.EffArity(n)
	if d.Arity < 0 && n < 2 {
		return nil, fmt.Errorf("ops: %s requires n >= 2 operands", d.Name)
	}
	circuit, err := d.Build(width, n)
	if err != nil {
		return nil, fmt.Errorf("ops: building %s/%d: %w", d.Name, width, err)
	}
	src := circuit
	if variant == VariantAmbit || variant == VariantNoOptimize {
		if src, err = logic.DecomposeAmbit(circuit); err != nil {
			return nil, err
		}
	}
	m, err := mig.FromCircuit(src)
	if err != nil {
		return nil, fmt.Errorf("ops: lowering %s/%d: %w", d.Name, width, err)
	}
	if variant == VariantSIMDRAM || variant == VariantNoReuse {
		m.Optimize(mig.DefaultOptimize())
	} else {
		m.Compact()
	}
	in, out := RefsForWidths(d.SourceWidths(width, arity), d.DstWidth(width))
	name := fmt.Sprintf("%s_%d_%s", d.Name, width, variant)
	var p *uprog.Program
	if variant == VariantAmbit {
		p, err = uprog.GenerateAmbit(m, in, out, name)
	} else {
		opts := uprog.DefaultCodegen(name)
		if variant == VariantNoReuse {
			opts.ReuseRows = false
		}
		p, err = uprog.Generate(m, in, out, opts)
	}
	if err != nil {
		return nil, fmt.Errorf("ops: codegen %s/%d: %w", d.Name, width, err)
	}
	uprog.OptimizeProgram(p)
	return &Synthesized{
		Def: d, Width: width, N: arity, Variant: variant,
		Circuit: circuit, MIG: m, Program: p,
	}, nil
}

type synthKey struct {
	code    Code
	width   int
	n       int
	variant Variant
}

var (
	synthMu    sync.Mutex
	synthCache = map[synthKey]*Synthesized{}
)

// SynthesizeCached memoizes Synthesize; synthesis of wide multipliers and
// dividers is expensive and μPrograms are immutable once built.
func SynthesizeCached(d Def, width, n int, variant Variant) (*Synthesized, error) {
	key := synthKey{d.Code, width, n, variant}
	synthMu.Lock()
	defer synthMu.Unlock()
	if s, ok := synthCache[key]; ok {
		return s, nil
	}
	s, err := Synthesize(d, width, n, variant)
	if err != nil {
		return nil, err
	}
	synthCache[key] = s
	return s, nil
}
