package ops

import (
	"fmt"

	"simdram/internal/logic"
)

// Bit shifts (paper §2): in the vertical layout, shifting every element
// left by k is pure row wiring — destination bit i reads source bit i-k,
// and the freed positions read the all-zeros control row. The circuit is
// gate-free, so the generated μProgram is exactly the paper's
// implementation: one row copy (AAP) per destination row.
//
// ShiftDefs are registered for k = 1 ("shift_left", "shift_right"); other
// distances are available through BuildShift for callers composing their
// own circuits, or — as the paper notes — for free, by adjusting the row
// indices later commands read from.

// BuildShift returns the circuit for a logical shift by k (left when
// left is true), with zero fill.
func BuildShift(w, k int, left bool) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	if k < 0 || k > w {
		return nil, fmt.Errorf("ops: shift distance %d out of range [0,%d]", k, w)
	}
	c := logic.New()
	a := c.InputBus("a", w)
	zero := c.Const(false)
	out := make([]int, w)
	for i := 0; i < w; i++ {
		var src int
		if left {
			src = i - k
		} else {
			src = i + k
		}
		if src >= 0 && src < w {
			out[i] = a[src]
		} else {
			out[i] = zero
		}
	}
	c.OutputBus(out, "y")
	return c, nil
}

func init() {
	register(Def{
		Code: OpShiftLeft, Name: "shift_left", Arity: 1,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return BuildShift(w, 1, true) },
		Golden: func(args []uint64, w int) uint64 {
			return (args[0] << 1) & widthMask(w)
		},
	})
	register(Def{
		Code: OpShiftRight, Name: "shift_right", Arity: 1,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return BuildShift(w, 1, false) },
		Golden: func(args []uint64, w int) uint64 {
			return (args[0] & widthMask(w)) >> 1
		},
	})
}
