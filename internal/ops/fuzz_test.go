package ops

import (
	"math/rand"
	"testing"
)

// TestAllOpsAllWidthsFuzz sweeps every catalog operation across uneven
// element widths — including non-power-of-two and boundary widths — and
// checks the full synthesis pipeline (circuit → MIG → optimized MIG)
// against the golden model. This is the broad-coverage net behind the
// targeted tests: any width-dependent off-by-one in a circuit generator,
// a MIG template, or the optimizer shows up here.
func TestAllOpsAllWidthsFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	widths := []int{1, 2, 3, 5, 7, 12, 13, 24, 33, 63, 64}
	for _, d := range Catalog() {
		for _, w := range widths {
			if w == 1 && d.Signed {
				continue // a 1-bit two's-complement value is degenerate
			}
			c, err := d.Build(w, testN)
			if err != nil {
				t.Fatalf("%s/%d: %v", d.Name, w, err)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("%s/%d: %v", d.Name, w, err)
			}
			trials := 40
			if w >= 24 {
				trials = 15 // wide multipliers/dividers are pricey to eval
			}
			for trial := 0; trial < trials; trial++ {
				args := goldenArgs(rng, d, w)
				got := evalCircuit(c, d, w, args)
				want := d.Golden(args, w)
				if got != want {
					t.Fatalf("%s/%d args=%v: circuit=%d golden=%d", d.Name, w, args, got, want)
				}
			}
		}
	}
}

// TestSignedComparisons pins the signed-extension semantics at the
// boundaries where unsigned and signed orderings disagree.
func TestSignedComparisons(t *testing.T) {
	gt, err := ByName("greater_signed")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b uint64
		want uint64
	}{
		{0x7F, 0x80, 1}, // 127 > -128
		{0x80, 0x7F, 0}, // -128 < 127
		{0xFF, 0x00, 0}, // -1 < 0
		{0x00, 0xFF, 1}, // 0 > -1
		{0xFE, 0xFF, 0}, // -2 < -1
		{0x05, 0x03, 1},
	}
	c, err := gt.Build(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		if got := gt.Golden([]uint64{tc.a, tc.b}, 8); got != tc.want {
			t.Errorf("golden greater_signed(%#x,%#x) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := evalCircuit(c, gt, 8, []uint64{tc.a, tc.b}); got != tc.want {
			t.Errorf("circuit greater_signed(%#x,%#x) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	mx, _ := ByName("max_signed")
	if got := mx.Golden([]uint64{0xFF, 0x01}, 8); got != 0x01 {
		t.Errorf("max_signed(-1, 1) = %#x, want 1", got)
	}
	mn, _ := ByName("min_signed")
	if got := mn.Golden([]uint64{0xFF, 0x01}, 8); got != 0xFF {
		t.Errorf("min_signed(-1, 1) = %#x, want -1", got)
	}
}

// TestSignedOpsEndToEnd runs the signed extensions through the DRAM
// simulator like the paper set.
func TestSignedOpsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, name := range []string{"greater_signed", "greater_equal_signed", "max_signed", "min_signed"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := SynthesizeCached(d, 8, 0, VariantSIMDRAM)
		if err != nil {
			t.Fatal(err)
		}
		n := 128
		operands := [][]uint64{make([]uint64, n), make([]uint64, n)}
		for i := 0; i < n; i++ {
			operands[0][i] = rng.Uint64() & 0xFF
			operands[1][i] = rng.Uint64() & 0xFF
		}
		got := runProgram(t, s, operands)
		for i := 0; i < n; i++ {
			want := d.Golden([]uint64{operands[0][i], operands[1][i]}, 8)
			if got[i] != want {
				t.Fatalf("%s lane %d (%#x,%#x): dram=%d golden=%d",
					name, i, operands[0][i], operands[1][i], got[i], want)
			}
		}
	}
}
