package ops

import "simdram/internal/dram"

// CostNs returns the modeled single-subarray latency of executing one
// instruction of operation d at the given width and operand count — the
// per-op cost a schedule optimizer weighs instructions with. The number
// comes from the operation's own (cached) μProgram under the module's
// timing constants, so the scheduler plans with the same measured
// per-op timings the execution engine bills, not with guesses.
func CostNs(d Def, width, n int, variant Variant, t dram.Timing) (float64, error) {
	s, err := SynthesizeCached(d, width, n, variant)
	if err != nil {
		return 0, err
	}
	return s.Program.LatencyNs(t), nil
}
