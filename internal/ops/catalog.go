// Package ops defines the SIMDRAM operation library: the 16 operations
// the paper demonstrates (§5), each as a gate-level circuit generator
// parameterized by element width, plus a golden (CPU oracle) model used
// for verification and as the CPU baseline's functional path.
//
// Operand conventions: inputs are little-endian buses, one bus per source
// operand, declared operand-major (all bits of operand 0, then operand 1,
// …). Arithmetic is unsigned two's-complement except abs and relu, which
// interpret the element as signed. Relational operations produce a 1-bit
// predicate; multiplication produces the full product (capped at 64 bits);
// division is unsigned restoring division with the hardware convention
// that x/0 = all-ones.
package ops

import (
	"fmt"
	"math/bits"
	"sync"

	"simdram/internal/logic"
)

// Code identifies an operation.
type Code uint8

// The 16 SIMDRAM operations (paper §5), plus Not as a helper.
const (
	OpAndRed             Code = iota // N-input bitwise AND reduction
	OpOrRed                          // N-input bitwise OR reduction
	OpXorRed                         // N-input bitwise XOR reduction
	OpEqual                          // a == b → 1-bit predicate
	OpGreater                        // a > b (unsigned) → 1-bit predicate
	OpGreaterEqual                   // a >= b (unsigned) → 1-bit predicate
	OpMax                            // unsigned max(a, b)
	OpMin                            // unsigned min(a, b)
	OpAdd                            // a + b (mod 2^W)
	OpSub                            // a - b (mod 2^W)
	OpMul                            // a × b, full product (≤ 64 bits)
	OpDiv                            // a / b unsigned; a/0 = all-ones
	OpAbs                            // |a| signed two's complement
	OpBitCount                       // population count of a
	OpReLU                           // signed a < 0 ? 0 : a
	OpIfElse                         // sel ? a : b (sel = bit 0 of operand 2)
	OpNot                            // ~a (helper, not one of the paper's 16)
	OpShiftLeft                      // a << 1 with zero fill (paper §2: pure row copies)
	OpShiftRight                     // a >> 1 with zero fill
	OpGreaterSigned                  // two's-complement a > b (extension)
	OpGreaterEqualSigned             // two's-complement a >= b (extension)
	OpMaxSigned                      // two's-complement max (extension)
	OpMinSigned                      // two's-complement min (extension)
	OpMod                            // a mod b unsigned; a mod 0 = a (extension)
	numCodes
)

// NumOps is the number of operations in the paper's demonstration set.
const NumOps = 16

// Def describes one operation.
type Def struct {
	Code   Code
	Name   string
	Arity  int // source operand count; -1 means N-ary (reductions)
	Signed bool

	// DstWidth returns the destination element width for source width w.
	DstWidth func(w int) int
	// SrcWidths returns the per-operand element widths for source width
	// w; nil means every operand uses w. (if_else's selector is 1 bit.)
	SrcWidths func(w int) []int
	// Build returns the gate-level circuit for width w; n is the operand
	// count for N-ary operations (ignored otherwise).
	Build func(w, n int) (*logic.Circuit, error)
	// Golden computes the reference result for one element.
	Golden func(args []uint64, w int) uint64
}

// SourceWidths returns the concrete per-operand widths for source width w
// and operand count n.
func (d Def) SourceWidths(w, n int) []int {
	if d.SrcWidths != nil {
		return d.SrcWidths(w)
	}
	arity := d.EffArity(n)
	ws := make([]int, arity)
	for i := range ws {
		ws[i] = w
	}
	return ws
}

// EffArity returns the concrete operand count given n for N-ary ops.
func (d Def) EffArity(n int) int {
	if d.Arity >= 0 {
		return d.Arity
	}
	return n
}

var (
	catalogMu sync.RWMutex
	catalog   []Def
)

func register(d Def) {
	catalog = append(catalog, d)
}

// customBase is the code space for user-registered operations; built-in
// codes stay below it.
const customBase Code = 128

// RegisterCustom adds a user-defined operation to the catalog and
// returns its assigned code. This is the paper's extensibility story
// (§3, §5): a new operation is a circuit plus a golden model — the
// framework synthesizes its μProgram and the control unit executes it
// with no hardware changes. Name must be unique; Build, Golden and
// DstWidth must be set; the Code field is assigned by the registry.
func RegisterCustom(d Def) (Code, error) {
	catalogMu.Lock()
	defer catalogMu.Unlock()
	if d.Name == "" || d.Build == nil || d.Golden == nil || d.DstWidth == nil {
		return 0, fmt.Errorf("ops: custom operation needs Name, Build, Golden and DstWidth")
	}
	if d.Arity == 0 {
		return 0, fmt.Errorf("ops: custom operation %q has arity 0", d.Name)
	}
	for _, existing := range catalog {
		if existing.Name == d.Name {
			return 0, fmt.Errorf("ops: operation %q already registered", d.Name)
		}
	}
	code := customBase
	for _, existing := range catalog {
		if existing.Code >= code {
			code = existing.Code + 1
		}
	}
	if code < customBase {
		code = customBase
	}
	d.Code = code
	catalog = append(catalog, d)
	return code, nil
}

// Catalog returns all operation definitions in a stable order. The first
// NumOps entries are the paper's demonstration set.
func Catalog() []Def {
	catalogMu.RLock()
	defer catalogMu.RUnlock()
	out := make([]Def, len(catalog))
	copy(out, catalog)
	return out
}

// PaperSet returns exactly the paper's 16 operations.
func PaperSet() []Def {
	return Catalog()[:NumOps]
}

// ByName finds an operation by name.
func ByName(name string) (Def, error) {
	catalogMu.RLock()
	defer catalogMu.RUnlock()
	for _, d := range catalog {
		if d.Name == name {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("ops: unknown operation %q", name)
}

// ByCode finds an operation by code.
func ByCode(code Code) (Def, error) {
	catalogMu.RLock()
	defer catalogMu.RUnlock()
	for _, d := range catalog {
		if d.Code == code {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("ops: unknown opcode %d", code)
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// signBit reports whether the signed interpretation of v at width w is
// negative.
func signBit(v uint64, w int) bool { return (v>>uint(w-1))&1 == 1 }

func sameWidth(w int) int { return w }
func oneBit(int) int      { return 1 }

func mulDstWidth(w int) int {
	if 2*w > 64 {
		return 64
	}
	return 2 * w
}

func bitcountDstWidth(w int) int {
	return bits.Len(uint(w)) // ceil(log2(w+1))
}

func init() {
	register(Def{
		Code: OpAndRed, Name: "and_red", Arity: -1,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildReduction(w, n, logicAnd) },
		Golden: func(args []uint64, w int) uint64 {
			acc := widthMask(w)
			for _, a := range args {
				acc &= a
			}
			return acc & widthMask(w)
		},
	})
	register(Def{
		Code: OpOrRed, Name: "or_red", Arity: -1,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildReduction(w, n, logicOr) },
		Golden: func(args []uint64, w int) uint64 {
			var acc uint64
			for _, a := range args {
				acc |= a
			}
			return acc & widthMask(w)
		},
	})
	register(Def{
		Code: OpXorRed, Name: "xor_red", Arity: -1,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildReduction(w, n, logicXor) },
		Golden: func(args []uint64, w int) uint64 {
			var acc uint64
			for _, a := range args {
				acc ^= a
			}
			return acc & widthMask(w)
		},
	})
	register(Def{
		Code: OpEqual, Name: "equal", Arity: 2,
		DstWidth: oneBit,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildEqual(w) },
		Golden: func(args []uint64, w int) uint64 {
			return b2u(args[0]&widthMask(w) == args[1]&widthMask(w))
		},
	})
	register(Def{
		Code: OpGreater, Name: "greater", Arity: 2,
		DstWidth: oneBit,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildCompare(w, true) },
		Golden: func(args []uint64, w int) uint64 {
			return b2u(args[0]&widthMask(w) > args[1]&widthMask(w))
		},
	})
	register(Def{
		Code: OpGreaterEqual, Name: "greater_equal", Arity: 2,
		DstWidth: oneBit,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildCompare(w, false) },
		Golden: func(args []uint64, w int) uint64 {
			return b2u(args[0]&widthMask(w) >= args[1]&widthMask(w))
		},
	})
	register(Def{
		Code: OpMax, Name: "max", Arity: 2,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildMinMax(w, true) },
		Golden: func(args []uint64, w int) uint64 {
			a, b := args[0]&widthMask(w), args[1]&widthMask(w)
			if a >= b {
				return a
			}
			return b
		},
	})
	register(Def{
		Code: OpMin, Name: "min", Arity: 2,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildMinMax(w, false) },
		Golden: func(args []uint64, w int) uint64 {
			a, b := args[0]&widthMask(w), args[1]&widthMask(w)
			if a <= b {
				return a
			}
			return b
		},
	})
	register(Def{
		Code: OpAdd, Name: "addition", Arity: 2,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildAdd(w) },
		Golden: func(args []uint64, w int) uint64 {
			return (args[0] + args[1]) & widthMask(w)
		},
	})
	register(Def{
		Code: OpSub, Name: "subtraction", Arity: 2,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildSub(w) },
		Golden: func(args []uint64, w int) uint64 {
			return (args[0] - args[1]) & widthMask(w)
		},
	})
	register(Def{
		Code: OpMul, Name: "multiplication", Arity: 2,
		DstWidth: mulDstWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildMul(w) },
		Golden: func(args []uint64, w int) uint64 {
			return (args[0] & widthMask(w)) * (args[1] & widthMask(w)) & widthMask(mulDstWidth(w))
		},
	})
	register(Def{
		Code: OpDiv, Name: "division", Arity: 2,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildDiv(w) },
		Golden: func(args []uint64, w int) uint64 {
			a, b := args[0]&widthMask(w), args[1]&widthMask(w)
			if b == 0 {
				return widthMask(w)
			}
			return a / b
		},
	})
	register(Def{
		Code: OpAbs, Name: "abs", Arity: 1, Signed: true,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildAbs(w) },
		Golden: func(args []uint64, w int) uint64 {
			a := args[0] & widthMask(w)
			if signBit(a, w) {
				return (^a + 1) & widthMask(w)
			}
			return a
		},
	})
	register(Def{
		Code: OpBitCount, Name: "bitcount", Arity: 1,
		DstWidth: bitcountDstWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildBitCount(w) },
		Golden: func(args []uint64, w int) uint64 {
			return uint64(bits.OnesCount64(args[0] & widthMask(w)))
		},
	})
	register(Def{
		Code: OpReLU, Name: "relu", Arity: 1, Signed: true,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildReLU(w) },
		Golden: func(args []uint64, w int) uint64 {
			a := args[0] & widthMask(w)
			if signBit(a, w) {
				return 0
			}
			return a
		},
	})
	register(Def{
		Code: OpIfElse, Name: "if_else", Arity: 3,
		DstWidth:  sameWidth,
		SrcWidths: func(w int) []int { return []int{w, w, 1} },
		Build:     func(w, n int) (*logic.Circuit, error) { return buildIfElse(w) },
		Golden: func(args []uint64, w int) uint64 {
			if args[2]&1 == 1 {
				return args[0] & widthMask(w)
			}
			return args[1] & widthMask(w)
		},
	})
	register(Def{
		Code: OpNot, Name: "not", Arity: 1,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildNot(w) },
		Golden: func(args []uint64, w int) uint64 {
			return ^args[0] & widthMask(w)
		},
	})
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
