package ops

import "simdram/internal/logic"

// Signed relational extensions. The paper's demonstration set uses
// unsigned comparisons; signed variants come almost for free in the MAJ
// substrate — a two's-complement a > b equals the unsigned comparison
// with the result flipped when the sign bits differ:
//
//	a >ₛ b  =  (a >ᵤ b) XOR sign(a) XOR sign(b)
//
// These are registered beyond the paper set as "future work" operations
// the framework supports without hardware changes (paper §5).

func buildCompareSigned(w int, strict bool) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	c := logic.New()
	a := c.InputBus("a", w)
	b := c.InputBus("b", w)
	unsigned := geCarry(c, a, b, strict)
	res := c.Xor(unsigned, a[w-1], b[w-1])
	name := "ge_s"
	if strict {
		name = "gt_s"
	}
	c.Output(res, name)
	return c, nil
}

func signedGolden(strict bool) func(args []uint64, w int) uint64 {
	return func(args []uint64, w int) uint64 {
		sa := toSigned(args[0], w)
		sb := toSigned(args[1], w)
		if strict {
			return b2u(sa > sb)
		}
		return b2u(sa >= sb)
	}
}

// toSigned sign-extends a w-bit value.
func toSigned(v uint64, w int) int64 {
	v &= widthMask(w)
	if signBit(v, w) {
		return int64(v | ^widthMask(w))
	}
	return int64(v)
}

func init() {
	register(Def{
		Code: OpGreaterSigned, Name: "greater_signed", Arity: 2, Signed: true,
		DstWidth: oneBit,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildCompareSigned(w, true) },
		Golden:   signedGolden(true),
	})
	register(Def{
		Code: OpGreaterEqualSigned, Name: "greater_equal_signed", Arity: 2, Signed: true,
		DstWidth: oneBit,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildCompareSigned(w, false) },
		Golden:   signedGolden(false),
	})
	register(Def{
		Code: OpMaxSigned, Name: "max_signed", Arity: 2, Signed: true,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildMinMaxSigned(w, true) },
		Golden: func(args []uint64, w int) uint64 {
			if toSigned(args[0], w) >= toSigned(args[1], w) {
				return args[0] & widthMask(w)
			}
			return args[1] & widthMask(w)
		},
	})
	register(Def{
		Code: OpMinSigned, Name: "min_signed", Arity: 2, Signed: true,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildMinMaxSigned(w, false) },
		Golden: func(args []uint64, w int) uint64 {
			if toSigned(args[0], w) <= toSigned(args[1], w) {
				return args[0] & widthMask(w)
			}
			return args[1] & widthMask(w)
		},
	})
}

func init() {
	register(Def{
		Code: OpMod, Name: "modulo", Arity: 2,
		DstWidth: sameWidth,
		Build:    func(w, n int) (*logic.Circuit, error) { return buildMod(w) },
		Golden: func(args []uint64, w int) uint64 {
			a, b := args[0]&widthMask(w), args[1]&widthMask(w)
			if b == 0 {
				return a
			}
			return a % b
		},
	})
}

func buildMinMaxSigned(w int, max bool) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	c := logic.New()
	a := c.InputBus("a", w)
	b := c.InputBus("b", w)
	ge := c.Xor(geCarry(c, a, b, false), a[w-1], b[w-1]) // a >=ₛ b
	var out []int
	if max {
		out = muxBus(c, ge, a, b)
	} else {
		out = muxBus(c, ge, b, a)
	}
	c.OutputBus(out, "y")
	return c, nil
}
