package ops

import (
	"testing"

	"simdram/internal/dram"
)

func TestShiftCircuitsAreGateFree(t *testing.T) {
	// A vertical-layout shift is pure wiring: the circuit must contain no
	// gates at all, so the μProgram degenerates to row copies — exactly
	// the paper's "shift by copying row j to row j+1".
	for _, left := range []bool{true, false} {
		for _, k := range []int{0, 1, 3, 8} {
			c, err := BuildShift(8, k, left)
			if err != nil {
				t.Fatal(err)
			}
			if g := c.GateCount(); g != 0 {
				t.Errorf("shift k=%d left=%t has %d gates, want 0", k, left, g)
			}
		}
	}
	if _, err := BuildShift(8, 9, true); err == nil {
		t.Error("shift distance beyond width must error")
	}
	if _, err := BuildShift(8, -1, true); err == nil {
		t.Error("negative shift must error")
	}
}

func TestShiftProgramIsRowCopies(t *testing.T) {
	d, err := ByName("shift_left")
	if err != nil {
		t.Fatal(err)
	}
	s, err := SynthesizeCached(d, 16, 0, VariantSIMDRAM)
	if err != nil {
		t.Fatal(err)
	}
	if s.Program.NumAP() != 0 {
		t.Errorf("shift needs no TRA, have %d APs", s.Program.NumAP())
	}
	// One AAP per destination row: 15 data copies + 1 zero fill.
	if got := s.Program.NumAAP(); got != 16 {
		t.Errorf("shift_left/16 uses %d AAPs, want 16", got)
	}
	if err := s.Program.Validate(dram.TestConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestShiftGolden(t *testing.T) {
	sl, _ := ByName("shift_left")
	sr, _ := ByName("shift_right")
	if got := sl.Golden([]uint64{0x81}, 8); got != 0x02 {
		t.Errorf("0x81 << 1 = %#x, want 0x02", got)
	}
	if got := sr.Golden([]uint64{0x81}, 8); got != 0x40 {
		t.Errorf("0x81 >> 1 = %#x, want 0x40", got)
	}
}

func TestShiftDistancesExhaustive(t *testing.T) {
	w := 6
	for _, left := range []bool{true, false} {
		for k := 0; k <= w; k++ {
			c, err := BuildShift(w, k, left)
			if err != nil {
				t.Fatal(err)
			}
			for v := uint64(0); v < 64; v++ {
				got := c.EvalUint([]int{w}, []uint64{v}, []int{w})[0]
				var want uint64
				if left {
					want = (v << uint(k)) & 0x3F
				} else {
					want = v >> uint(k)
				}
				if got != want {
					t.Fatalf("k=%d left=%t v=%d: got %d want %d", k, left, v, got, want)
				}
			}
		}
	}
}
