package ops

import (
	"fmt"

	"simdram/internal/logic"
)

// Circuit builders. All operands are little-endian buses declared
// operand-major; helper functions work on buses of node indices.

type gateFn func(c *logic.Circuit, a, b int) int

func logicAnd(c *logic.Circuit, a, b int) int { return c.And(a, b) }
func logicOr(c *logic.Circuit, a, b int) int  { return c.Or(a, b) }
func logicXor(c *logic.Circuit, a, b int) int { return c.Xor(a, b) }

func checkWidth(w int) error {
	if w < 1 || w > 64 {
		return fmt.Errorf("ops: width %d out of range [1,64]", w)
	}
	return nil
}

// buildReduction builds the N-input element-wise reduction (and_red,
// or_red, xor_red): out bit i = op over operands k of src_k bit i.
func buildReduction(w, n int, op gateFn) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("ops: reduction needs at least 2 operands, have %d", n)
	}
	c := logic.New()
	buses := make([][]int, n)
	for k := range buses {
		buses[k] = c.InputBus(fmt.Sprintf("x%d", k), w)
	}
	out := make([]int, w)
	for i := 0; i < w; i++ {
		acc := buses[0][i]
		for k := 1; k < n; k++ {
			acc = op(c, acc, buses[k][i])
		}
		out[i] = acc
	}
	c.OutputBus(out, "y")
	return c, nil
}

// rippleAdd returns sum bits of a + b + cin and the carry-out node.
// Full adders use XOR3 + MAJ so MIG conversion shares the carry.
func rippleAdd(c *logic.Circuit, a, b []int, cin int) (sum []int, cout int) {
	carry := cin
	sum = make([]int, len(a))
	for i := range a {
		sum[i] = c.Xor(a[i], b[i], carry)
		carry = c.Maj(a[i], b[i], carry)
	}
	return sum, carry
}

// notBus complements every bit of a bus.
func notBus(c *logic.Circuit, a []int) []int {
	out := make([]int, len(a))
	for i := range a {
		out[i] = c.Not(a[i])
	}
	return out
}

// muxBus selects a (sel=1) or b (sel=0) element-wise.
func muxBus(c *logic.Circuit, sel int, a, b []int) []int {
	out := make([]int, len(a))
	for i := range a {
		out[i] = c.Mux(sel, a[i], b[i])
	}
	return out
}

// geCarry returns the carry chain comparing a and b: with strict=false it
// computes a >= b (carry-out of a + ~b + 1); with strict=true, a > b
// (carry-out of a + ~b). One MAJ per bit.
func geCarry(c *logic.Circuit, a, b []int, strict bool) int {
	carry := c.Const(!strict)
	for i := range a {
		carry = c.Maj(a[i], c.Not(b[i]), carry)
	}
	return carry
}

func buildEqual(w int) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	c := logic.New()
	a := c.InputBus("a", w)
	b := c.InputBus("b", w)
	acc := c.Const(true)
	for i := 0; i < w; i++ {
		acc = c.And(acc, c.Not(c.Xor(a[i], b[i])))
	}
	c.Output(acc, "eq")
	return c, nil
}

func buildCompare(w int, strict bool) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	c := logic.New()
	a := c.InputBus("a", w)
	b := c.InputBus("b", w)
	name := "ge"
	if strict {
		name = "gt"
	}
	c.Output(geCarry(c, a, b, strict), name)
	return c, nil
}

func buildMinMax(w int, max bool) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	c := logic.New()
	a := c.InputBus("a", w)
	b := c.InputBus("b", w)
	ge := geCarry(c, a, b, false) // a >= b
	var out []int
	if max {
		out = muxBus(c, ge, a, b)
	} else {
		out = muxBus(c, ge, b, a)
	}
	c.OutputBus(out, "y")
	return c, nil
}

func buildAdd(w int) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	c := logic.New()
	a := c.InputBus("a", w)
	b := c.InputBus("b", w)
	sum, _ := rippleAdd(c, a, b, c.Const(false))
	c.OutputBus(sum, "y")
	return c, nil
}

func buildSub(w int) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	c := logic.New()
	a := c.InputBus("a", w)
	b := c.InputBus("b", w)
	diff, _ := rippleAdd(c, a, notBus(c, b), c.Const(true))
	c.OutputBus(diff, "y")
	return c, nil
}

func buildMul(w int) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	dw := mulDstWidth(w)
	c := logic.New()
	a := c.InputBus("a", w)
	b := c.InputBus("b", w)
	zero := c.Const(false)
	// Carry-save accumulation: partial products compress through 3:2
	// counters (one full adder — 3 MAJ — per touched bit) without
	// propagating carries, and a single ripple adder resolves the final
	// sum/carry pair. Roughly halves the MAJ count of naive shift-add.
	sum := make([]int, dw)
	carry := make([]int, dw)
	for i := range sum {
		sum[i], carry[i] = zero, zero
	}
	for j := 0; j < w; j++ {
		newCarry := make([]int, dw)
		for i := range newCarry {
			newCarry[i] = zero
		}
		for i := 0; i < w && j+i < dw; i++ {
			pp := c.And(a[i], b[j])
			pos := j + i
			s := c.Xor(sum[pos], carry[pos], pp)
			cy := c.Maj(sum[pos], carry[pos], pp)
			sum[pos] = s
			if pos+1 < dw {
				newCarry[pos+1] = cy
			}
		}
		// Carries at positions the CSA neither consumed ([j, j+w-1]) nor
		// produced ([j+1, j+w]) stay put.
		for i := 0; i < dw; i++ {
			if i < j || i > j+w {
				newCarry[i] = carry[i]
			}
		}
		carry = newCarry
	}
	out, _ := rippleAdd(c, sum, carry, zero)
	c.OutputBus(out, "p")
	return c, nil
}

func buildDiv(w int) (*logic.Circuit, error) {
	return buildDivMod(w, false)
}

func buildMod(w int) (*logic.Circuit, error) {
	return buildDivMod(w, true)
}

// buildDivMod builds restoring division, outputting the quotient or the
// remainder. With a zero divisor every trial subtraction fires (R-0=R),
// giving quotient all-ones and remainder a — the hardware convention.
func buildDivMod(w int, remainder bool) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	c := logic.New()
	a := c.InputBus("a", w)
	b := c.InputBus("b", w)
	zero := c.Const(false)
	// Restoring division, MSB first. The remainder R has w+1 bits so the
	// trial subtraction never overflows; divisor compares against R with
	// a zero-extended top bit.
	bx := append(append([]int(nil), b...), zero)
	r := make([]int, w+1)
	for i := range r {
		r[i] = zero
	}
	q := make([]int, w)
	for step := w - 1; step >= 0; step-- {
		// R = (R << 1) | a[step]
		r = append([]int{a[step]}, r[:w]...)
		// ge = R >= b
		ge := geCarry(c, r, bx, false)
		// R = ge ? R - b : R
		diff, _ := rippleAdd(c, r, notBus(c, bx), c.Const(true))
		r = muxBus(c, ge, diff, r)
		q[step] = ge
	}
	if remainder {
		c.OutputBus(r[:w], "r")
	} else {
		c.OutputBus(q, "q")
	}
	return c, nil
}

func buildAbs(w int) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	c := logic.New()
	a := c.InputBus("a", w)
	s := a[w-1]
	// |a| = (a XOR sign) + sign: conditional invert plus increment.
	t := make([]int, w)
	for i := range t {
		t[i] = c.Xor(a[i], s)
	}
	out := make([]int, w)
	carry := s
	for i := 0; i < w; i++ {
		out[i] = c.Xor(t[i], carry)
		carry = c.And(t[i], carry)
	}
	c.OutputBus(out, "y")
	return c, nil
}

func buildBitCount(w int) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	c := logic.New()
	a := c.InputBus("a", w)
	dw := bitcountDstWidth(w)
	// Carry-save counter tree: buckets[k] holds wires of weight 2^k.
	// Full adders compress three same-weight wires into one sum wire and
	// one next-weight carry; half adders finish off pairs.
	buckets := make([][]int, dw+1)
	buckets[0] = append(buckets[0], a...)
	for k := 0; k < dw; k++ {
		for len(buckets[k]) >= 3 {
			x, y, z := buckets[k][0], buckets[k][1], buckets[k][2]
			buckets[k] = buckets[k][3:]
			buckets[k] = append(buckets[k], c.Xor(x, y, z))
			buckets[k+1] = append(buckets[k+1], c.Maj(x, y, z))
		}
		if len(buckets[k]) == 2 {
			x, y := buckets[k][0], buckets[k][1]
			buckets[k] = []int{c.Xor(x, y)}
			buckets[k+1] = append(buckets[k+1], c.And(x, y))
		}
	}
	out := make([]int, dw)
	zero := c.Const(false)
	for k := 0; k < dw; k++ {
		if len(buckets[k]) == 1 {
			out[k] = buckets[k][0]
		} else {
			out[k] = zero
		}
	}
	c.OutputBus(out, "count")
	return c, nil
}

func buildReLU(w int) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	c := logic.New()
	a := c.InputBus("a", w)
	keep := c.Not(a[w-1])
	out := make([]int, w)
	for i := range out {
		out[i] = c.And(a[i], keep)
	}
	c.OutputBus(out, "y")
	return c, nil
}

func buildIfElse(w int) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	c := logic.New()
	a := c.InputBus("a", w)
	b := c.InputBus("b", w)
	sel := c.Input("sel") // 1-bit predicate operand
	c.OutputBus(muxBus(c, sel, a, b), "y")
	return c, nil
}

func buildNot(w int) (*logic.Circuit, error) {
	if err := checkWidth(w); err != nil {
		return nil, err
	}
	c := logic.New()
	a := c.InputBus("a", w)
	c.OutputBus(notBus(c, a), "y")
	return c, nil
}
