package isa

import "fmt"

// Rewrite builds one shard's sub-program for sharded execution: a copy
// of p with every live object handle mapped through handles and every
// instruction's element count replaced by sizes[key], where key is the
// instruction's defining object (the destination for operations, the
// announced object for bbop_trsp_init). Instructions whose new size is
// zero are dropped — that shard holds no elements of the object. A live
// handle missing from either map is an error: the caller failed to
// place every operand on the shard.
//
// Because sizes and handles are per-shard, calling Rewrite once per
// shard splits a cluster-level program into the per-channel programs
// whose concatenated effects equal the original.
func (p Program) Rewrite(handles map[uint16]uint16, sizes map[uint16]uint32) (Program, error) {
	out := make(Program, 0, len(p))
	for i, in := range p {
		key := in.Dst
		if in.Op == OpTrspInit {
			key = in.Src[0]
		}
		size, ok := sizes[key]
		if !ok {
			return nil, fmt.Errorf("isa: instruction %d (%s): no shard size for object %d", i, in, key)
		}
		if size == 0 {
			continue
		}
		ni := in
		ni.Size = size
		if in.Op.IsOperation() {
			nd, ok := handles[in.Dst]
			if !ok {
				return nil, fmt.Errorf("isa: instruction %d (%s): no shard handle for object %d", i, in, in.Dst)
			}
			ni.Dst = nd
		}
		for k := range in.Reads() {
			ns, ok := handles[in.Src[k]]
			if !ok {
				return nil, fmt.Errorf("isa: instruction %d (%s): no shard handle for object %d", i, in, in.Src[k])
			}
			ni.Src[k] = ns
		}
		out = append(out, ni)
	}
	return out, nil
}
