package isa

import (
	"reflect"
	"testing"

	"simdram/internal/ops"
)

func add(dst, a, b uint16) Instruction {
	return Instruction{Op: FromOp(ops.OpAdd), Dst: dst, Src: [3]uint16{a, b}, Size: 8, Width: 8}
}

func TestProgramValidate(t *testing.T) {
	if err := (Program{}).Validate(); err == nil {
		t.Error("empty program must be rejected")
	}
	good := Program{add(3, 1, 2)}
	if err := good.Validate(); err != nil {
		t.Errorf("good program rejected: %v", err)
	}
	bad := Program{add(3, 1, 2), {Op: OpInvalid}}
	if err := bad.Validate(); err == nil {
		t.Error("program with invalid instruction must be rejected")
	}
}

func TestProgramEncodeDecodeRoundTrip(t *testing.T) {
	p := Program{
		{Op: OpTrspInit, Src: [3]uint16{1}, Size: 8, Width: 8},
		add(3, 1, 2),
		add(4, 3, 1),
	}
	back, err := DecodeProgram(EncodeProgram(p))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Errorf("round trip: got %v, want %v", back, p)
	}
}

func TestReadsWrites(t *testing.T) {
	in := add(3, 1, 2)
	if got := in.Reads(); !reflect.DeepEqual(got, []uint16{1, 2}) {
		t.Errorf("Reads = %v, want [1 2]", got)
	}
	if got := in.Writes(); !reflect.DeepEqual(got, []uint16{3}) {
		t.Errorf("Writes = %v, want [3]", got)
	}
	trsp := Instruction{Op: OpTrspInit, Src: [3]uint16{7}, Size: 8, Width: 8}
	if got := trsp.Reads(); !reflect.DeepEqual(got, []uint16{7}) {
		t.Errorf("trsp_init Reads = %v, want [7]", got)
	}
	if got := trsp.Writes(); got != nil {
		t.Errorf("trsp_init Writes = %v, want nil", got)
	}
}

func TestDepsHazards(t *testing.T) {
	cases := []struct {
		name string
		p    Program
		want [][]int
	}{
		{
			name: "independent",
			p:    Program{add(3, 1, 2), add(6, 4, 5)},
			want: [][]int{nil, nil},
		},
		{
			name: "raw-chain",
			p:    Program{add(3, 1, 2), add(4, 3, 1), add(5, 4, 6)},
			want: [][]int{nil, {0}, {1}},
		},
		{
			name: "waw",
			p:    Program{add(3, 1, 2), add(3, 4, 5)},
			want: [][]int{nil, {0}},
		},
		{
			name: "war",
			p:    Program{add(3, 1, 2), add(1, 4, 5)},
			want: [][]int{nil, {0}},
		},
		{
			// A write clears the reader list: instruction 2 depends on the
			// new writer (RAW), not on the stale reader set.
			name: "write-clears-readers",
			p:    Program{add(3, 1, 2), add(1, 4, 5), add(6, 1, 2)},
			want: [][]int{nil, {0}, {1}},
		},
		{
			// trsp_init reads its object, so a later write to it carries a
			// WAR edge.
			name: "trsp-war",
			p: Program{
				{Op: OpTrspInit, Src: [3]uint16{3}, Size: 8, Width: 8},
				add(3, 1, 2),
			},
			want: [][]int{nil, {0}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.p.Deps()
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Deps = %v, want %v", got, tc.want)
			}
		})
	}
}
