package isa

import (
	"fmt"
	"sort"

	"simdram/internal/ops"
)

// Program is an ordered sequence of bbop instructions — the unit of work
// the batched execution engine accepts. Program order defines the
// sequential semantics; Deps extracts the data-hazard graph a scheduler
// may exploit to overlap independent instructions while preserving those
// semantics.
type Program []Instruction

// Validate checks every instruction in the program.
func (p Program) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("isa: empty program")
	}
	for i, in := range p {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("isa: instruction %d: %w", i, err)
		}
	}
	return nil
}

// EncodeProgram packs every instruction of the program.
func EncodeProgram(p Program) []Encoded {
	out := make([]Encoded, len(p))
	for i, in := range p {
		out[i] = in.Encode()
	}
	return out
}

// DecodeProgram unpacks a sequence of encoded instructions.
func DecodeProgram(es []Encoded) (Program, error) {
	p := make(Program, len(es))
	for i, e := range es {
		in, err := Decode(e)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		p[i] = in
	}
	return p, nil
}

// Reads returns the object handles the instruction reads. For operation
// instructions that is the live source operands (the operation's
// effective arity); bbop_trsp_init reads the object it announces. If the
// opcode cannot be resolved, all three source slots are returned — a
// conservative over-approximation that never drops a hazard.
func (in Instruction) Reads() []uint16 {
	if in.Op == OpTrspInit {
		return []uint16{in.Src[0]}
	}
	arity := 3
	if code, err := in.Op.ToOp(); err == nil {
		if d, err := ops.ByCode(code); err == nil {
			arity = d.EffArity(int(in.N))
			if arity > 3 {
				arity = 3
			}
		}
	}
	return append([]uint16(nil), in.Src[:arity]...)
}

// Writes returns the object handles the instruction writes:
// the destination for operation instructions, nothing for
// bbop_trsp_init.
func (in Instruction) Writes() []uint16 {
	if !in.Op.IsOperation() {
		return nil
	}
	return []uint16{in.Dst}
}

// Deps returns, for each instruction, the (sorted, deduplicated) indices
// of earlier instructions it must complete after. All three hazard
// classes over object handles are covered:
//
//   - read-after-write: a source was written by an earlier instruction
//   - write-after-write: the destination was written earlier
//   - write-after-read: the destination is read by an earlier instruction
//
// Executing instructions in any order consistent with these edges is
// indistinguishable from sequential program order.
func (p Program) Deps() [][]int {
	deps := make([][]int, len(p))
	lastWriter := map[uint16]int{}     // handle → last instruction that wrote it
	readersSince := map[uint16][]int{} // handle → readers since its last write
	for i, in := range p {
		set := map[int]bool{}
		reads, writes := in.Reads(), in.Writes()
		for _, h := range reads {
			if w, ok := lastWriter[h]; ok {
				set[w] = true // RAW
			}
		}
		for _, h := range writes {
			if w, ok := lastWriter[h]; ok {
				set[w] = true // WAW
			}
			for _, r := range readersSince[h] {
				set[r] = true // WAR
			}
		}
		for _, h := range reads {
			readersSince[h] = append(readersSince[h], i)
		}
		for _, h := range writes {
			lastWriter[h] = i
			readersSince[h] = nil
		}
		delete(set, i)
		if len(set) > 0 {
			out := make([]int, 0, len(set))
			for d := range set {
				out = append(out, d)
			}
			sort.Ints(out)
			deps[i] = out
		}
	}
	return deps
}
