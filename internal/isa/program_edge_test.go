package isa

import (
	"reflect"
	"testing"

	"simdram/internal/ops"
)

// Edge cases for Program.Deps and Program.Rewrite: empty programs,
// single-instruction programs, and programs of repeated identical
// instructions — the shapes shard splitting and graph lowering produce
// at their boundaries.

func TestDepsEdgeCases(t *testing.T) {
	if got := (Program{}).Deps(); len(got) != 0 {
		t.Errorf("empty program Deps = %v, want empty", got)
	}
	if got := (Program{add(3, 1, 2)}).Deps(); !reflect.DeepEqual(got, [][]int{nil}) {
		t.Errorf("single-instruction Deps = %v, want [nil]", got)
	}
	// An instruction repeated verbatim hazards against itself every
	// time: WAW on the destination and WAR against its own reads never
	// let two copies reorder, but each copy depends only on its
	// immediate predecessor (the write clears the reader list and
	// supersedes the previous write).
	p := Program{add(3, 1, 2), add(3, 1, 2), add(3, 1, 2)}
	want := [][]int{nil, {0}, {1}}
	if got := p.Deps(); !reflect.DeepEqual(got, want) {
		t.Errorf("repeated-instruction Deps = %v, want %v", got, want)
	}
	// A self-referential repeat (destination also read) behaves the
	// same: RAW and WAW collapse onto the single predecessor edge.
	q := Program{add(3, 3, 2), add(3, 3, 2)}
	if got := q.Deps(); !reflect.DeepEqual(got, [][]int{nil, {0}}) {
		t.Errorf("self-referential repeat Deps = %v, want [nil [0]]", got)
	}
}

func TestRewriteEdgeCases(t *testing.T) {
	handles := map[uint16]uint16{1: 11, 2: 12, 3: 13}
	sizes := map[uint16]uint32{1: 4, 2: 4, 3: 4}

	// Empty program: trivially rewrites to an empty (non-nil) program.
	out, err := (Program{}).Rewrite(handles, sizes)
	if err != nil {
		t.Fatalf("empty program: %v", err)
	}
	if len(out) != 0 || out == nil {
		t.Errorf("empty program rewrote to %v, want empty non-nil program", out)
	}

	// Single instruction: handles map, size replaced.
	out, err = (Program{add(3, 1, 2)}).Rewrite(handles, sizes)
	if err != nil {
		t.Fatal(err)
	}
	want := Program{{Op: FromOp(ops.OpAdd), Dst: 13, Src: [3]uint16{11, 12}, Size: 4, Width: 8}}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("single instruction rewrote to %v, want %v", out, want)
	}

	// Zero shard size drops the instruction.
	out, err = (Program{add(3, 1, 2)}).Rewrite(handles, map[uint16]uint32{1: 0, 2: 0, 3: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("zero-size shard kept %v, want instruction dropped", out)
	}

	// Repeated identical instructions rewrite independently — three
	// copies in, three identical mapped copies out, order preserved.
	p := Program{add(3, 1, 2), add(3, 1, 2), add(3, 1, 2)}
	out, err = p.Rewrite(handles, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("repeated instructions rewrote to %d instructions, want 3", len(out))
	}
	for i, in := range out {
		if !reflect.DeepEqual(in, want[0]) {
			t.Errorf("copy %d rewrote to %v, want %v", i, in, want[0])
		}
	}
	// The original program is untouched (Rewrite copies).
	if p[0].Dst != 3 || p[0].Size != 8 {
		t.Errorf("Rewrite mutated its receiver: %v", p[0])
	}

	// Missing mappings fail loudly rather than emitting a half-mapped
	// shard.
	if _, err := (Program{add(3, 1, 2)}).Rewrite(map[uint16]uint16{3: 13}, sizes); err == nil {
		t.Error("missing source handle accepted")
	}
	if _, err := (Program{add(3, 1, 2)}).Rewrite(handles, map[uint16]uint32{1: 4, 2: 4}); err == nil {
		t.Error("missing size for the defining object accepted")
	}
}

func TestValidateCustomOpcode(t *testing.T) {
	// Codes from RegisterCustom live at 128+; Validate must accept any
	// registered code and reject unregistered ones, rather than
	// range-checking against the built-in catalog length.
	unknown := Instruction{Op: FromOp(ops.Code(200)), Dst: 3, Src: [3]uint16{1, 2}, Size: 8, Width: 8}
	if err := unknown.Validate(); err == nil {
		t.Error("unregistered high opcode accepted")
	}
}
