package isa

import (
	"strings"
	"testing"

	"simdram/internal/ops"
)

func TestRewriteMapsHandlesAndSizes(t *testing.T) {
	prog := Program{
		{Op: OpTrspInit, Src: [3]uint16{1}, Size: 100, Width: 8},
		{Op: FromOp(ops.OpAdd), Dst: 3, Src: [3]uint16{1, 2}, Size: 100, Width: 8},
	}
	handles := map[uint16]uint16{1: 11, 2: 12, 3: 13}
	sizes := map[uint16]uint32{1: 40, 2: 40, 3: 40}
	sub, err := prog.Rewrite(handles, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 {
		t.Fatalf("rewrote %d instructions, want 2", len(sub))
	}
	if sub[0].Src[0] != 11 || sub[0].Size != 40 {
		t.Errorf("trsp_init rewrote to %+v", sub[0])
	}
	if sub[1].Dst != 13 || sub[1].Src[0] != 11 || sub[1].Src[1] != 12 || sub[1].Size != 40 {
		t.Errorf("operation rewrote to %+v", sub[1])
	}
	// The original program is untouched.
	if prog[1].Dst != 3 || prog[1].Size != 100 {
		t.Errorf("rewrite mutated the original program: %+v", prog[1])
	}
}

func TestRewriteDropsZeroSizeInstructions(t *testing.T) {
	prog := Program{
		{Op: FromOp(ops.OpAdd), Dst: 3, Src: [3]uint16{1, 2}, Size: 100, Width: 8},
		{Op: FromOp(ops.OpAdd), Dst: 6, Src: [3]uint16{4, 5}, Size: 100, Width: 8},
	}
	// Objects 4-6 have no elements on this shard: their instruction
	// vanishes and their handles need no mapping.
	handles := map[uint16]uint16{1: 11, 2: 12, 3: 13}
	sizes := map[uint16]uint32{3: 25, 6: 0}
	sub, err := prog.Rewrite(handles, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 || sub[0].Dst != 13 {
		t.Fatalf("shard program = %v, want only the first instruction", sub)
	}
}

func TestRewriteMissingMappings(t *testing.T) {
	prog := Program{{Op: FromOp(ops.OpAdd), Dst: 3, Src: [3]uint16{1, 2}, Size: 100, Width: 8}}
	if _, err := prog.Rewrite(map[uint16]uint16{1: 11, 2: 12, 3: 13}, map[uint16]uint32{}); err == nil || !strings.Contains(err.Error(), "no shard size") {
		t.Errorf("missing size must fail, got: %v", err)
	}
	if _, err := prog.Rewrite(map[uint16]uint16{3: 13}, map[uint16]uint32{3: 10}); err == nil || !strings.Contains(err.Error(), "no shard handle") {
		t.Errorf("missing source handle must fail, got: %v", err)
	}
	if _, err := prog.Rewrite(map[uint16]uint16{1: 11, 2: 12}, map[uint16]uint32{3: 10}); err == nil || !strings.Contains(err.Error(), "no shard handle") {
		t.Errorf("missing destination handle must fail, got: %v", err)
	}
}
