// Package isa defines SIMDRAM's ISA extension: the bbop (bulk bitwise
// operation) instructions a program or compiler uses to talk to the
// SIMDRAM control unit (paper §4). There are two instruction classes:
//
//	bbop_trsp_init src, size, n   — announce an object so stores to it are
//	                                transposed to the vertical layout
//	bbop_<op>      dst, src…, size, n — execute operation <op> in DRAM
//
// Instructions are encoded into two 64-bit words so they can be embedded
// in a conventional instruction stream; the control unit decodes them and
// sequences the corresponding μProgram.
package isa

import (
	"fmt"

	"simdram/internal/ops"
)

// Opcode identifies a bbop instruction.
type Opcode uint8

// Opcodes. Operation opcodes are offset from ops.Code by OpBase so that
// control opcodes stay stable as the operation library grows.
const (
	OpInvalid  Opcode = 0
	OpTrspInit Opcode = 1 // bbop_trsp_init
	OpBase     Opcode = 16
)

// FromOp converts an operation code to its bbop opcode.
func FromOp(c ops.Code) Opcode { return OpBase + Opcode(c) }

// ToOp converts a bbop opcode back to an operation code.
func (o Opcode) ToOp() (ops.Code, error) {
	if o < OpBase {
		return 0, fmt.Errorf("isa: opcode %d is not an operation", o)
	}
	return ops.Code(o - OpBase), nil
}

// IsOperation reports whether the opcode invokes a μProgram.
func (o Opcode) IsOperation() bool { return o >= OpBase }

// Instruction is a decoded bbop instruction. Handles are opaque object
// identifiers resolved by the runtime's object tracker (the paper uses
// virtual base addresses; handles play the same role in the simulator).
type Instruction struct {
	Op    Opcode
	Dst   uint16    // destination object handle
	Src   [3]uint16 // source object handles (operand-major)
	Size  uint32    // number of elements
	Width uint8     // element width in bits (1-64)
	N     uint8     // operand count for N-ary operations
}

// Encoding layout (two 64-bit words):
//
//	word0: [63:56]=opcode [55:48]=width [47:40]=n [31:0]=size
//	word1: [63:48]=dst [47:32]=src0 [31:16]=src1 [15:0]=src2
type Encoded [2]uint64

// Encode packs the instruction.
func (in Instruction) Encode() Encoded {
	var e Encoded
	e[0] = uint64(in.Op)<<56 | uint64(in.Width)<<48 | uint64(in.N)<<40 | uint64(in.Size)
	e[1] = uint64(in.Dst)<<48 | uint64(in.Src[0])<<32 | uint64(in.Src[1])<<16 | uint64(in.Src[2])
	return e
}

// Decode unpacks an encoded instruction.
func Decode(e Encoded) (Instruction, error) {
	in := Instruction{
		Op:    Opcode(e[0] >> 56),
		Width: uint8(e[0] >> 48),
		N:     uint8(e[0] >> 40),
		Size:  uint32(e[0]),
		Dst:   uint16(e[1] >> 48),
		Src:   [3]uint16{uint16(e[1] >> 32), uint16(e[1] >> 16), uint16(e[1])},
	}
	if err := in.Validate(); err != nil {
		return Instruction{}, err
	}
	return in, nil
}

// Validate checks field ranges and opcode validity.
func (in Instruction) Validate() error {
	if in.Op == OpInvalid {
		return fmt.Errorf("isa: invalid opcode")
	}
	if in.Op != OpTrspInit {
		code, err := in.Op.ToOp()
		if err != nil {
			return err
		}
		// Look the code up rather than range-checking against the catalog
		// length: user operations registered through RegisterCustom carry
		// codes far above the built-in range, and they are first-class
		// bbop targets (the framework's extensibility story).
		if _, err := ops.ByCode(code); err != nil {
			return fmt.Errorf("isa: opcode %d names no registered operation", in.Op)
		}
	}
	if in.Width < 1 || in.Width > 64 {
		return fmt.Errorf("isa: width %d out of range [1,64]", in.Width)
	}
	if in.Size == 0 {
		return fmt.Errorf("isa: zero-size instruction")
	}
	return nil
}

// String renders the instruction in assembly-like form.
func (in Instruction) String() string {
	if in.Op == OpTrspInit {
		return fmt.Sprintf("bbop_trsp_init obj%d, size=%d, w=%d", in.Src[0], in.Size, in.Width)
	}
	op, err := in.Op.ToOp()
	if err != nil {
		return fmt.Sprintf("bbop_invalid(%d)", in.Op)
	}
	d, err := ops.ByCode(op)
	name := "?"
	if err == nil {
		name = d.Name
	}
	arity := 2
	if err == nil {
		arity = d.EffArity(int(in.N))
	}
	s := fmt.Sprintf("bbop_%s obj%d", name, in.Dst)
	for k := 0; k < arity && k < 3; k++ {
		s += fmt.Sprintf(", obj%d", in.Src[k])
	}
	return fmt.Sprintf("%s, size=%d, w=%d", s, in.Size, in.Width)
}
