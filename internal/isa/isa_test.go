package isa

import (
	"strings"
	"testing"
	"testing/quick"

	"simdram/internal/ops"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	err := quick.Check(func(dst, s0, s1, s2 uint16, size uint32, widthRaw, nRaw uint8) bool {
		width := 1 + widthRaw%64
		if size == 0 {
			size = 1
		}
		in := Instruction{
			Op:    FromOp(ops.OpAdd),
			Dst:   dst,
			Src:   [3]uint16{s0, s1, s2},
			Size:  size,
			Width: width,
			N:     nRaw,
		}
		out, err := Decode(in.Encode())
		return err == nil && out == in
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestOpcodeMapping(t *testing.T) {
	for _, d := range ops.Catalog() {
		oc := FromOp(d.Code)
		if !oc.IsOperation() {
			t.Errorf("%s: opcode %d not recognized as operation", d.Name, oc)
		}
		back, err := oc.ToOp()
		if err != nil || back != d.Code {
			t.Errorf("%s: opcode round trip failed: %v", d.Name, err)
		}
	}
	if OpTrspInit.IsOperation() {
		t.Error("trsp_init must not be an operation opcode")
	}
}

func TestValidation(t *testing.T) {
	good := Instruction{Op: FromOp(ops.OpAdd), Size: 10, Width: 32}
	if err := good.Validate(); err != nil {
		t.Errorf("good instruction rejected: %v", err)
	}
	bad := good
	bad.Width = 0
	if err := bad.Validate(); err == nil {
		t.Error("width 0 must be rejected")
	}
	bad = good
	bad.Width = 65
	if err := bad.Validate(); err == nil {
		t.Error("width 65 must be rejected")
	}
	bad = good
	bad.Size = 0
	if err := bad.Validate(); err == nil {
		t.Error("size 0 must be rejected")
	}
	bad = good
	bad.Op = OpInvalid
	if err := bad.Validate(); err == nil {
		t.Error("invalid opcode must be rejected")
	}
	bad = good
	bad.Op = OpBase + Opcode(200)
	if err := bad.Validate(); err == nil {
		t.Error("out-of-catalog opcode must be rejected")
	}
	if _, err := Decode(bad.Encode()); err == nil {
		t.Error("Decode must validate")
	}
}

func TestStringRendering(t *testing.T) {
	in := Instruction{Op: FromOp(ops.OpAdd), Dst: 3, Src: [3]uint16{1, 2, 0}, Size: 100, Width: 32}
	s := in.String()
	if !strings.Contains(s, "bbop_addition") || !strings.Contains(s, "obj3") {
		t.Errorf("unexpected rendering: %q", s)
	}
	tr := Instruction{Op: OpTrspInit, Src: [3]uint16{7, 0, 0}, Size: 50, Width: 8}
	if !strings.Contains(tr.String(), "bbop_trsp_init") {
		t.Errorf("unexpected rendering: %q", tr.String())
	}
	ie := Instruction{Op: FromOp(ops.OpIfElse), Dst: 1, Src: [3]uint16{2, 3, 4}, Size: 10, Width: 8}
	if !strings.Contains(ie.String(), "obj4") {
		t.Errorf("ternary op should list three sources: %q", ie.String())
	}
}
