package isa_test

import (
	"testing"

	"simdram"
	"simdram/internal/batchgen"
	"simdram/internal/isa"
)

// FuzzValidate drives Decode/Validate with arbitrary encoded words:
// decoding must never panic, anything Decode accepts must re-encode
// to an instruction that decodes back to itself (decode∘encode is the
// identity on instructions — the upper unused bits of a wire word are
// the only thing canonicalization may drop), and the accessor methods
// the scheduler leans on (Reads, Writes, Deps inputs) must stay total
// on every accepted instruction.
//
// The seed corpus is realistic: every instruction of a
// batchgen-generated batch — the same generator the benchmarks and
// demos run — plus handcrafted boundary encodings.
func FuzzValidate(f *testing.F) {
	cfg := simdram.DefaultConfig()
	cfg.DRAM.Banks, cfg.DRAM.SubarraysPerBank = 2, 2
	sys, err := simdram.New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	defer sys.Close()
	prog, err := batchgen.Program(sys, 1)
	if err != nil {
		f.Fatal(err)
	}
	for _, in := range prog {
		e := in.Encode()
		f.Add(e[0], e[1])
	}
	// Boundary encodings: trsp_init, zero word, saturated fields,
	// widths at and beyond both ends, an opcode in the custom range.
	boundary := []isa.Instruction{
		{Op: isa.OpTrspInit, Src: [3]uint16{7}, Size: 64, Width: 8},
		{Op: isa.OpBase, Dst: 1, Src: [3]uint16{2, 3}, Size: 1, Width: 1, N: 2},
		{Op: isa.OpBase + 200, Dst: 1, Src: [3]uint16{2, 3, 4}, Size: 1 << 20, Width: 64, N: 3},
		{Op: isa.OpInvalid, Size: 1, Width: 8},
		{Op: isa.OpBase, Dst: 1, Src: [3]uint16{2, 3}, Size: 0, Width: 65, N: 2},
	}
	for _, in := range boundary {
		e := in.Encode()
		f.Add(e[0], e[1])
	}
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0))

	f.Fuzz(func(t *testing.T, w0, w1 uint64) {
		in, err := isa.Decode(isa.Encoded{w0, w1})
		if err != nil {
			return // rejected wire words are fine; panics are not
		}
		if verr := in.Validate(); verr != nil {
			t.Fatalf("Decode accepted an instruction Validate rejects: %+v: %v", in, verr)
		}
		again, err := isa.Decode(in.Encode())
		if err != nil {
			t.Fatalf("re-encoding a decoded instruction does not decode: %+v: %v", in, err)
		}
		if again != in {
			t.Fatalf("decode∘encode not the identity: %+v != %+v", again, in)
		}
		reads, writes := in.Reads(), in.Writes()
		if len(reads) > 3 || len(writes) > 1 {
			t.Fatalf("accessors out of range: %d reads, %d writes for %+v", len(reads), len(writes), in)
		}
	})
}
