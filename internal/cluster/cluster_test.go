package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"simdram/internal/ctrl"
)

func TestMakePlanBalanced(t *testing.T) {
	p, err := MakePlan(10, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 10 {
		t.Fatalf("plan places %d elements, want 10", p.Len())
	}
	want := []Span{{Channel: 0, Off: 0, Count: 4}, {Channel: 1, Off: 4, Count: 3}, {Channel: 2, Off: 7, Count: 3}}
	if len(p.Spans) != len(want) {
		t.Fatalf("spans = %v, want %v", p.Spans, want)
	}
	for i := range want {
		if p.Spans[i] != want[i] {
			t.Errorf("span %d = %v, want %v", i, p.Spans[i], want[i])
		}
	}
	if got := p.CountOn(0); got != 4 {
		t.Errorf("CountOn(0) = %d, want 4", got)
	}
	if got := p.CountOn(7); got != 0 {
		t.Errorf("CountOn(7) = %d, want 0", got)
	}
}

func TestMakePlanSmallN(t *testing.T) {
	// Fewer elements than channels: tail channels get no span at all.
	p, err := MakePlan(2, []int{3, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []Span{{Channel: 3, Off: 0, Count: 1}, {Channel: 1, Off: 1, Count: 1}}
	if len(p.Spans) != 2 || p.Spans[0] != want[0] || p.Spans[1] != want[1] {
		t.Fatalf("spans = %v, want %v", p.Spans, want)
	}
}

func TestMakePlanErrors(t *testing.T) {
	if _, err := MakePlan(0, []int{0}); err == nil {
		t.Error("zero elements must be rejected")
	}
	if _, err := MakePlan(4, nil); err == nil {
		t.Error("empty order must be rejected")
	}
	if _, err := MakePlan(4, []int{0, 0}); err == nil {
		t.Error("duplicate channel must be rejected")
	}
	if _, err := MakePlan(4, []int{-1}); err == nil {
		t.Error("negative channel must be rejected")
	}
}

func TestPlanEqual(t *testing.T) {
	a, _ := MakePlan(8, []int{0, 1})
	b, _ := MakePlan(8, []int{0, 1})
	c, _ := MakePlan(8, []int{1, 0})
	if !a.Equal(b) {
		t.Error("identical plans must compare equal")
	}
	if a.Equal(c) {
		t.Error("plans with different channel order must differ")
	}
}

func TestPolicies(t *testing.T) {
	loads := []int{30, 10, 20}
	if got := (RoundRobin{}).Order(loads); fmt.Sprint(got) != "[0 1 2]" {
		t.Errorf("RoundRobin order = %v", got)
	}
	if got := (LeastLoaded{}).Order(loads); fmt.Sprint(got) != "[1 2 0]" {
		t.Errorf("LeastLoaded order = %v", got)
	}
	// Ties break by index, keeping the order deterministic.
	if got := (LeastLoaded{}).Order([]int{5, 5, 1}); fmt.Sprint(got) != "[2 0 1]" {
		t.Errorf("LeastLoaded tie order = %v", got)
	}
	if got := (Affinity{Channels: []int{2, 0}}).Order(loads); fmt.Sprint(got) != "[2 0]" {
		t.Errorf("Affinity order = %v", got)
	}
}

func TestDispatchJoinsAndAnnotates(t *testing.T) {
	err := Dispatch([]int{0, 1, 2}, func(task, ch int, cancel <-chan struct{}) error {
		if ch == 1 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "channel 1: boom") {
		t.Fatalf("error must be channel-annotated, got: %v", err)
	}
}

func TestDispatchCancelsSiblings(t *testing.T) {
	// Channel 0 fails immediately; the others block until they observe
	// the cancel signal — without propagation this test would hang.
	var observed sync.Map
	err := Dispatch([]int{0, 1, 2}, func(task, ch int, cancel <-chan struct{}) error {
		if ch == 0 {
			return errors.New("boom")
		}
		<-cancel
		observed.Store(ch, true)
		return ctrl.ErrCanceled
	})
	if err == nil {
		t.Fatal("failure must surface")
	}
	for _, ch := range []int{1, 2} {
		if _, ok := observed.Load(ch); !ok {
			t.Errorf("channel %d never observed cancellation", ch)
		}
	}
	if !errors.Is(err, ctrl.ErrCanceled) {
		t.Errorf("joined error must preserve ErrCanceled, got: %v", err)
	}
}

func TestMergeStats(t *testing.T) {
	per := []ctrl.BatchStats{
		{Instructions: 4, Commands: 40, BusyNs: 100, CriticalPathNs: 50, EnergyPJ: 7},
		{Instructions: 4, Commands: 40, BusyNs: 100, CriticalPathNs: 100, EnergyPJ: 7},
		{}, // idle channel
	}
	m := Merge(per)
	if m.Instructions != 8 || m.Commands != 80 {
		t.Errorf("counts must add: %+v", m)
	}
	if m.BusyNs != 200 || m.EnergyPJ != 14 {
		t.Errorf("busy time and energy must add: %+v", m)
	}
	if m.CriticalPathNs != 100 {
		t.Errorf("makespan must be the max critical path, got %f", m.CriticalPathNs)
	}
	wantUtil := []float64{0.5, 1, 0}
	for i, u := range m.ChannelUtilization {
		if u != wantUtil[i] {
			t.Errorf("utilization[%d] = %f, want %f", i, u, wantUtil[i])
		}
	}
	if m.Skew() != 1 {
		t.Errorf("skew = %f, want 1 (one idle channel)", m.Skew())
	}
	if m.Speedup() != 2 {
		t.Errorf("speedup = %f, want 2", m.Speedup())
	}
}
