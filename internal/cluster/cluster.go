// Package cluster provides the channel-agnostic machinery behind the
// public Cluster facade: placement of a sharded object's elements
// across independent channels, concurrent per-channel dispatch with
// cross-channel cancellation, and honest merging of per-channel batch
// statistics (sums for work and energy, max for the makespan).
//
// A "channel" here is one independent DRAM compute fabric — a full
// System with its own module, control unit, and worker pool. The
// package never touches channel state itself; it decides where elements
// go, runs the caller's per-channel closures, and folds their results.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Span assigns a contiguous run of a sharded object's elements to one
// channel: elements [Off, Off+Count) live on channel Channel.
type Span struct {
	Channel int
	Off     int
	Count   int
}

// Plan is the placement of one sharded object: disjoint spans covering
// [0, Len()) in element order. Two objects can meet in a cross-channel
// operation only if their plans are identical — then element j of every
// operand lives on the same channel at the same local index.
type Plan struct {
	Spans []Span
}

// Len returns the total element count the plan places.
func (p Plan) Len() int {
	n := 0
	for _, s := range p.Spans {
		n += s.Count
	}
	return n
}

// Equal reports whether two plans place elements identically.
func (p Plan) Equal(o Plan) bool {
	if len(p.Spans) != len(o.Spans) {
		return false
	}
	for i := range p.Spans {
		if p.Spans[i] != o.Spans[i] {
			return false
		}
	}
	return true
}

// CountOn returns how many elements the plan places on channel ch.
func (p Plan) CountOn(ch int) int {
	n := 0
	for _, s := range p.Spans {
		if s.Channel == ch {
			n += s.Count
		}
	}
	return n
}

// MakePlan stripes n elements over the given channel order as
// near-equal contiguous chunks: every channel gets n/len(order)
// elements and the first n%len(order) channels one extra. Channels may
// appear in order at most once; an order longer than n simply leaves
// the tail channels empty (no zero-count spans are emitted).
func MakePlan(n int, order []int) (Plan, error) {
	if n <= 0 {
		return Plan{}, fmt.Errorf("cluster: plan size must be positive, have %d", n)
	}
	if len(order) == 0 {
		return Plan{}, fmt.Errorf("cluster: empty channel order")
	}
	seen := map[int]bool{}
	for _, ch := range order {
		if ch < 0 {
			return Plan{}, fmt.Errorf("cluster: negative channel %d", ch)
		}
		if seen[ch] {
			return Plan{}, fmt.Errorf("cluster: channel %d listed twice", ch)
		}
		seen[ch] = true
	}
	base, extra := n/len(order), n%len(order)
	var p Plan
	off := 0
	for i, ch := range order {
		count := base
		if i < extra {
			count++
		}
		if count == 0 {
			break
		}
		p.Spans = append(p.Spans, Span{Channel: ch, Off: off, Count: count})
		off += count
	}
	return p, nil
}

// Policy chooses the channel order a new allocation stripes across,
// given the current per-channel load (allocated rows). The order must
// be deterministic in its inputs so that equal-sized allocations made
// under equal load share a plan — the property cross-channel execution
// relies on.
type Policy interface {
	Name() string
	Order(loads []int) []int
}

// RoundRobin stripes every allocation across all channels in fixed
// index order. Same-length vectors therefore always share a plan,
// which makes round-robin the default policy for operand groups that
// will meet in cross-channel operations.
type RoundRobin struct{}

func (RoundRobin) Name() string { return "round-robin" }

// Order returns 0..len(loads)-1 regardless of load.
func (RoundRobin) Order(loads []int) []int {
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	return order
}

// LeastLoaded orders channels by ascending allocated rows (ties broken
// by index), so the channels with the most free rows absorb the larger
// chunks. Every allocation changes the loads it orders by, so even
// consecutive same-length allocations can receive different plans;
// operand groups that must stay aligned should be planned from one
// load snapshot (the facade's AllocShardedGroup) or pinned with
// Affinity.
type LeastLoaded struct{}

func (LeastLoaded) Name() string { return "least-loaded-rows" }

// Order sorts channel indices by load, ascending, stable in index.
func (LeastLoaded) Order(loads []int) []int {
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]] < loads[order[b]] })
	return order
}

// Affinity pins allocations to an explicit channel sequence — the
// caller's placement decision, e.g. to keep a tenant on a channel
// subset or to co-locate operand groups.
type Affinity struct {
	Channels []int
}

func (Affinity) Name() string { return "affinity" }

// Order returns the pinned channel sequence, ignoring load.
func (a Affinity) Order(loads []int) []int {
	return append([]int(nil), a.Channels...)
}

// Dispatch runs one task per entry of channels concurrently, one
// goroutine each. The first failure closes the cancel channel handed to
// every task, so siblings can stop issuing work they have not started;
// tasks that observe cancellation and abort should return an error
// (conventionally wrapping ctrl.ErrCanceled) so the caller sees which
// channels completed. All failures come back in one joined error, each
// annotated with its channel.
func Dispatch(channels []int, fn func(task, channel int, cancel <-chan struct{}) error) error {
	cancel := make(chan struct{})
	var once sync.Once
	errs := make([]error, len(channels))
	var wg sync.WaitGroup
	for i, ch := range channels {
		i, ch := i, ch
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(i, ch, cancel); err != nil {
				errs[i] = fmt.Errorf("channel %d: %w", ch, err)
				once.Do(func() { close(cancel) })
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
