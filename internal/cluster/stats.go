package cluster

import "simdram/internal/ctrl"

// BatchStats aggregates per-channel batch execution under the cluster
// timing model: channels run concurrently, so work, commands, energy,
// and serial-equivalent time add across channels while the cluster
// makespan is the slowest channel's critical path.
type BatchStats struct {
	Instructions int64
	Commands     int64
	// BusyNs is the aggregate fabric work: the sum of every channel's
	// own serial-equivalent time. It is not the cost of one channel
	// holding all the shards — a single channel overlaps a
	// multi-segment instruction across its banks — so the honest
	// single-channel baseline is measured by running the merged
	// workload on one System, not derived from this sum.
	BusyNs float64
	// CriticalPathNs is the cluster makespan: the maximum over channels
	// of the per-channel overlap-aware critical path.
	CriticalPathNs float64
	EnergyPJ       float64
	// ChannelUtilization[i] is channel i's critical path as a fraction
	// of the cluster makespan — 1.0 for the channel that bounds the
	// batch, lower for channels that finished early, 0 for idle ones.
	// The spread of these values is the shard-balance skew.
	ChannelUtilization []float64
	// ChannelEnergyPJ[i] is channel i's share of EnergyPJ, so channel
	// skew is visible in energy terms, not just time; the entries sum to
	// EnergyPJ.
	ChannelEnergyPJ []float64
}

// Merge folds the per-channel stats (index = channel) into cluster
// stats. Channels that ran nothing contribute zero everywhere and show
// up as utilization 0.
func Merge(per []ctrl.BatchStats) BatchStats {
	var m ctrl.BatchStats
	for _, st := range per {
		m.MergeParallel(st)
	}
	out := BatchStats{
		Instructions:       m.Instructions,
		Commands:           m.Commands,
		BusyNs:             m.BusyNs,
		CriticalPathNs:     m.CriticalPathNs,
		EnergyPJ:           m.EnergyPJ,
		ChannelUtilization: make([]float64, len(per)),
		ChannelEnergyPJ:    make([]float64, len(per)),
	}
	for i, st := range per {
		out.ChannelEnergyPJ[i] = st.EnergyPJ
	}
	if m.CriticalPathNs > 0 {
		for i, st := range per {
			out.ChannelUtilization[i] = st.CriticalPathNs / m.CriticalPathNs
		}
	}
	return out
}

// Speedup returns the fabric-overlap factor (aggregate work over the
// makespan) — an upper bound on the gain over one System holding all
// the data; see BusyNs for why the true baseline must be measured.
func (s BatchStats) Speedup() float64 {
	if s.CriticalPathNs == 0 {
		return 1
	}
	return s.BusyNs / s.CriticalPathNs
}

// Skew returns the utilization spread max−min over channels: 0 means a
// perfectly balanced shard, values near 1 mean some channels idled
// while the slowest bounded the batch.
func (s BatchStats) Skew() float64 { return Skew(s.ChannelUtilization) }

// Skew is the max−min spread of a utilization vector.
func Skew(utilization []float64) float64 {
	if len(utilization) == 0 {
		return 0
	}
	min, max := utilization[0], utilization[0]
	for _, u := range utilization[1:] {
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	return max - min
}
