package kernels

import (
	"simdram"
)

// kNN classifies a query against a training set by L1 (Manhattan)
// distance [Lee, Neural Computation 1991]. Training points are SIMD
// lanes: one vector per feature dimension, so each distance update is
// three bulk in-DRAM operations (subtract, abs, accumulate) over every
// training point at once. The final arg-min (top-k) is a host-side scan,
// as in the paper.

// KNNRef returns the L1 distances of every training point to the query.
func KNNRef(train [][]uint64, query []uint64) []uint64 {
	n := len(train)
	dist := make([]uint64, n)
	for j := 0; j < n; j++ {
		var d uint64
		for i := range query {
			a, b := train[j][i], query[i]
			if a > b {
				d += a - b
			} else {
				d += b - a
			}
		}
		dist[j] = d
	}
	return dist
}

// KNNDistancesSIMDRAM computes the distance vector in DRAM. Features are
// staged at 32 bits so the signed difference and the accumulated sum both
// fit regardless of dimension count.
func KNNDistancesSIMDRAM(sys *simdram.System, train [][]uint64, query []uint64) ([]uint64, simdram.Stats, error) {
	n := len(train)
	dims := len(query)
	e := NewEngine(sys, n)
	fail := func(err error) ([]uint64, simdram.Stats, error) { return nil, e.Stats, err }

	acc, err := e.Const(0, 32)
	if err != nil {
		return fail(err)
	}
	col := make([]uint64, n)
	for i := 0; i < dims; i++ {
		for j := 0; j < n; j++ {
			col[j] = train[j][i]
		}
		tv, err := e.FromData(col, 32)
		if err != nil {
			return fail(err)
		}
		qv, err := e.Const(query[i], 32)
		if err != nil {
			return fail(err)
		}
		diff, err := e.Op("subtraction", tv, qv)
		FreeAll(tv, qv)
		if err != nil {
			return fail(err)
		}
		ad, err := e.Op("abs", diff)
		diff.Free()
		if err != nil {
			return fail(err)
		}
		next, err := e.Op("addition", acc, ad)
		ad.Free()
		if err != nil {
			return fail(err)
		}
		Replace(&acc, next)
	}
	defer acc.Free()
	dist, err := acc.Load()
	return dist, e.Stats, err
}

// Argmin returns the index of the smallest distance.
func Argmin(dist []uint64) int {
	best := 0
	for i, d := range dist {
		if d < dist[best] {
			best = i
		}
	}
	return best
}

// KNNClassify runs the full kernel: distances in DRAM, arg-min on host,
// returning the predicted label.
func KNNClassify(sys *simdram.System, train [][]uint64, labels []int, query []uint64) (int, simdram.Stats, error) {
	dist, st, err := KNNDistancesSIMDRAM(sys, train, query)
	if err != nil {
		return 0, st, err
	}
	return labels[Argmin(dist)], st, nil
}
