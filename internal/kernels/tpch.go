package kernels

import (
	"simdram"
	"simdram/internal/workload"
)

// TPCHQ6Params is the Q6-style selective aggregation: revenue from rows
// whose shipdate falls in [DateLo, DateHi), discount in
// [DiscountLo, DiscountHi], and quantity < QuantityLt.
type TPCHQ6Params struct {
	DateLo, DateHi         uint64
	DiscountLo, DiscountHi uint64
	QuantityLt             uint64
}

// DefaultQ6 returns the canonical predicate constants.
func DefaultQ6() TPCHQ6Params {
	return TPCHQ6Params{DateLo: 9500, DateHi: 9865, DiscountLo: 1, DiscountHi: 3, QuantityLt: 24}
}

// TPCHQ6Ref is the pure-Go reference: Σ price×discount over selected rows.
func TPCHQ6Ref(t workload.LineItem, p TPCHQ6Params) uint64 {
	var sum uint64
	for i := 0; i < t.N; i++ {
		if t.ShipDate[i] >= p.DateLo && t.ShipDate[i] < p.DateHi &&
			t.Discount[i] >= p.DiscountLo && t.Discount[i] <= p.DiscountHi &&
			t.Quantity[i] < p.QuantityLt {
			sum += t.ExtendedPrice[i] * t.Discount[i]
		}
	}
	return sum
}

// TPCHQ6SIMDRAM evaluates the predicate and the selected revenue in DRAM:
// five in-DRAM comparisons, a 5-input and_red, a multiplication, and a
// predicated if_else. The final scalar sum is a host-side fold over the
// loaded revenue column (aggregation across SIMD lanes needs inter-column
// movement, which SIMDRAM leaves to the CPU).
func TPCHQ6SIMDRAM(sys *simdram.System, t workload.LineItem, p TPCHQ6Params) (uint64, simdram.Stats, error) {
	e := NewEngine(sys, t.N)
	fail := func(err error) (uint64, simdram.Stats, error) { return 0, e.Stats, err }

	ship, err := e.FromData(t.ShipDate, 16)
	if err != nil {
		return fail(err)
	}
	disc, err := e.FromData(t.Discount, 16)
	if err != nil {
		return fail(err)
	}
	qty, err := e.FromData(t.Quantity, 16)
	if err != nil {
		return fail(err)
	}
	price, err := e.FromData(t.ExtendedPrice, 16)
	if err != nil {
		return fail(err)
	}
	defer FreeAll(ship, disc, qty, price)

	consts := map[string]uint64{
		"dateLo": p.DateLo, "dateHi": p.DateHi,
		"discLo": p.DiscountLo, "discHi": p.DiscountHi,
		"qtyLt": p.QuantityLt,
	}
	cv := map[string]*simdram.Vector{}
	for name, val := range consts {
		v, err := e.Const(val, 16)
		if err != nil {
			return fail(err)
		}
		defer v.Free()
		cv[name] = v
	}

	p1, err := e.Op("greater_equal", ship, cv["dateLo"])
	if err != nil {
		return fail(err)
	}
	p2, err := e.Op("greater", cv["dateHi"], ship)
	if err != nil {
		return fail(err)
	}
	p3, err := e.Op("greater_equal", disc, cv["discLo"])
	if err != nil {
		return fail(err)
	}
	p4, err := e.Op("greater_equal", cv["discHi"], disc)
	if err != nil {
		return fail(err)
	}
	p5, err := e.Op("greater", cv["qtyLt"], qty)
	if err != nil {
		return fail(err)
	}
	defer FreeAll(p1, p2, p3, p4, p5)

	pred, err := e.Op("and_red", p1, p2, p3, p4, p5)
	if err != nil {
		return fail(err)
	}
	defer pred.Free()

	rev, err := e.Op("multiplication", price, disc) // 16×16 → 32
	if err != nil {
		return fail(err)
	}
	defer rev.Free()
	zero, err := e.Const(0, 32)
	if err != nil {
		return fail(err)
	}
	defer zero.Free()
	sel, err := e.Op("if_else", rev, zero, pred)
	if err != nil {
		return fail(err)
	}
	defer sel.Free()

	vals, err := sel.Load()
	if err != nil {
		return fail(err)
	}
	var sum uint64
	for _, v := range vals {
		sum += v
	}
	return sum, e.Stats, nil
}
