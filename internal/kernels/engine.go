// Package kernels implements the seven application kernels of SIMDRAM's
// evaluation (paper §5) — VGG-13, VGG-16, LeNet, kNN, TPC-H, BitWeaving,
// Brightness — each twice: a pure-Go reference and a SIMDRAM version
// built from bbop operations on the public API. Functional correctness
// is checked at laptop scale; paper-scale performance comes from the
// analytical specs in spec.go, driven by the same μPrograms.
package kernels

import (
	"fmt"

	"simdram"
)

// Engine wraps a System with kernel-friendly vector helpers over a fixed
// element count, tracking cumulative cost.
type Engine struct {
	Sys   *simdram.System
	N     int
	Stats simdram.Stats
}

// NewEngine builds an engine for n-element vectors.
func NewEngine(sys *simdram.System, n int) *Engine {
	return &Engine{Sys: sys, N: n}
}

// FromData allocates a width-bit vector and stores data into it.
func (e *Engine) FromData(data []uint64, width int) (*simdram.Vector, error) {
	if len(data) != e.N {
		return nil, fmt.Errorf("kernels: engine is %d-element, data has %d", e.N, len(data))
	}
	v, err := e.Sys.AllocVector(e.N, width)
	if err != nil {
		return nil, err
	}
	if err := v.Store(data); err != nil {
		v.Free()
		return nil, err
	}
	return v, nil
}

// Const allocates a vector with every element equal to val.
func (e *Engine) Const(val uint64, width int) (*simdram.Vector, error) {
	data := make([]uint64, e.N)
	for i := range data {
		data[i] = val
	}
	return e.FromData(data, width)
}

// Op runs an operation, allocating a destination of the right width.
func (e *Engine) Op(name string, srcs ...*simdram.Vector) (*simdram.Vector, error) {
	_, dw, err := simdram.Widths(name, srcs[0].Width())
	if err != nil {
		return nil, err
	}
	dst, err := e.Sys.AllocVector(e.N, dw)
	if err != nil {
		return nil, err
	}
	st, err := e.Sys.Run(name, dst, srcs...)
	if err != nil {
		dst.Free()
		return nil, err
	}
	e.Stats.LatencyNs += st.LatencyNs
	e.Stats.EnergyPJ += st.EnergyPJ
	e.Stats.Commands += st.Commands
	return dst, nil
}

// OpInto runs an operation into a caller-provided destination.
func (e *Engine) OpInto(name string, dst *simdram.Vector, srcs ...*simdram.Vector) error {
	st, err := e.Sys.Run(name, dst, srcs...)
	if err != nil {
		return err
	}
	e.Stats.LatencyNs += st.LatencyNs
	e.Stats.EnergyPJ += st.EnergyPJ
	e.Stats.Commands += st.Commands
	return nil
}

// Replace frees *dst and points it at next — the accumulate idiom
// acc = op(acc, x).
func Replace(dst **simdram.Vector, next *simdram.Vector) {
	if *dst != nil {
		(*dst).Free()
	}
	*dst = next
}

// FreeAll frees all listed vectors.
func FreeAll(vs ...*simdram.Vector) {
	for _, v := range vs {
		if v != nil {
			v.Free()
		}
	}
}
