package kernels

import (
	"fmt"

	"simdram/internal/baseline/cpu"
	"simdram/internal/baseline/gpu"
	"simdram/internal/ctrl"
	"simdram/internal/dram"
	"simdram/internal/ops"
)

// OpUse is one bulk operation a kernel issues: Elems element-operations
// of the named operation at the given width (N = operand count for N-ary
// operations).
type OpUse struct {
	Name  string
	Width int
	N     int
	Elems int64
}

// Spec is the operation mix of one kernel at paper scale. It drives the
// analytical performance comparison (E4): the same μPrograms whose
// functional correctness the tests establish, scaled to real workload
// sizes.
type Spec struct {
	Name string
	Uses []OpUse
}

// macSpec builds the op mix of a quantized convolutional network with
// the given multiply-accumulate and activation counts: one 8-bit
// multiplication and one 32-bit accumulate per MAC, one 32-bit ReLU and
// one 8-bit max-pool comparison per activation.
func macSpec(name string, macs, activations int64) Spec {
	return Spec{
		Name: name,
		Uses: []OpUse{
			{Name: "multiplication", Width: 8, Elems: macs},
			{Name: "addition", Width: 32, Elems: macs},
			{Name: "relu", Width: 32, Elems: activations},
			{Name: "max", Width: 8, Elems: activations},
		},
	}
}

// PaperKernels returns the seven kernels at their paper-scale workload
// sizes: VGG-13 (11.3 GMACs) and VGG-16 (15.5 GMACs) on a 224×224 image,
// LeNet-5 (416 kMACs) per digit ×10k digits, kNN over 60k×784 MNIST,
// TPC-H Q6 over 6M lineitem rows, a 1G-code BitWeaving scan, and
// brightness over 100 4K frames.
func PaperKernels() []Spec {
	knnN, knnD := int64(60000), int64(784)
	tpch := int64(6_000_000)
	bw := int64(1_000_000_000)
	pixels := int64(100 * 3840 * 2160)
	return []Spec{
		macSpec("VGG-13", 11_300_000_000, 9_400_000),
		macSpec("VGG-16", 15_500_000_000, 13_600_000),
		macSpec("LeNet", 416_000*10_000, 290_000*10),
		{
			Name: "kNN",
			Uses: []OpUse{
				{Name: "subtraction", Width: 32, Elems: knnN * knnD},
				{Name: "abs", Width: 32, Elems: knnN * knnD},
				{Name: "addition", Width: 32, Elems: knnN * knnD},
			},
		},
		{
			Name: "TPC-H",
			Uses: []OpUse{
				{Name: "greater_equal", Width: 16, Elems: 3 * tpch},
				{Name: "greater", Width: 16, Elems: 2 * tpch},
				{Name: "and_red", Width: 1, N: 5, Elems: tpch},
				{Name: "multiplication", Width: 16, Elems: tpch},
				{Name: "if_else", Width: 32, Elems: tpch},
			},
		},
		{
			Name: "BitWeaving",
			Uses: []OpUse{
				{Name: "greater", Width: 4, Elems: bw},
			},
		},
		{
			Name: "Brightness",
			Uses: []OpUse{
				{Name: "addition", Width: 16, Elems: pixels},
				{Name: "greater", Width: 16, Elems: pixels},
				{Name: "if_else", Width: 16, Elems: pixels},
			},
		},
	}
}

// PerfResult is one platform's cost for a kernel.
type PerfResult struct {
	TimeNs   float64
	EnergyPJ float64
}

// SIMDRAMPerf evaluates the spec on an in-DRAM platform (SIMDRAM or the
// Ambit variant) with the given bank parallelism.
func SIMDRAMPerf(s Spec, cfg dram.Config, banks int, variant ops.Variant) (PerfResult, error) {
	model := ctrl.PerfModel{Cfg: cfg, Banks: banks}
	var r PerfResult
	for _, u := range s.Uses {
		d, err := ops.ByName(u.Name)
		if err != nil {
			return r, err
		}
		syn, err := ops.SynthesizeCached(d, u.Width, u.N, variant)
		if err != nil {
			return r, fmt.Errorf("%s %s/%d: %w", s.Name, u.Name, u.Width, err)
		}
		r.TimeNs += model.LatencyNs(syn.Program, int(min64(u.Elems, 1<<62)))
		r.EnergyPJ += model.EnergyPJ(syn.Program, int(u.Elems))
	}
	return r, nil
}

// CPUPerf evaluates the spec on the CPU roofline baseline.
func CPUPerf(s Spec, c cpu.Config) (PerfResult, error) {
	var r PerfResult
	for _, u := range s.Uses {
		d, err := ops.ByName(u.Name)
		if err != nil {
			return r, err
		}
		r.TimeNs += float64(u.Elems) / c.Throughput(d, u.Width, u.N) * 1e9
		r.EnergyPJ += float64(u.Elems) * c.EnergyPJPerOp(d, u.Width, u.N)
	}
	return r, nil
}

// GPUPerf evaluates the spec on the GPU roofline baseline.
func GPUPerf(s Spec, g gpu.Config) (PerfResult, error) {
	var r PerfResult
	for _, u := range s.Uses {
		d, err := ops.ByName(u.Name)
		if err != nil {
			return r, err
		}
		r.TimeNs += float64(u.Elems) / g.Throughput(d, u.Width, u.N) * 1e9
		r.EnergyPJ += float64(u.Elems) * g.EnergyPJPerOp(d, u.Width, u.N)
	}
	return r, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
