package kernels

import (
	"math/bits"

	"simdram"
)

// BitWeaving (Li & Patel, SIGMOD 2013) scans a column of narrow codes
// with a comparison predicate, producing a result bit-vector. SIMDRAM's
// vertical layout is exactly BitWeaving/V: code bit i of every element in
// one row, so a k-bit scan is a k-step in-DRAM comparison regardless of
// the column's length.

// BitWeavingLtRef counts codes strictly below c (pure Go).
func BitWeavingLtRef(codes []uint64, c uint64) int {
	n := 0
	for _, v := range codes {
		if v < c {
			n++
		}
	}
	return n
}

// BitWeavingLtSIMDRAM performs the scan in DRAM (predicate c > code),
// loads the 1-bit result vector, and popcounts it host-side like a scan
// consumer would. bitsWidth is the code width.
func BitWeavingLtSIMDRAM(sys *simdram.System, codes []uint64, c uint64, bitsWidth int) (int, simdram.Stats, error) {
	e := NewEngine(sys, len(codes))
	col, err := e.FromData(codes, bitsWidth)
	if err != nil {
		return 0, e.Stats, err
	}
	defer col.Free()
	cv, err := e.Const(c, bitsWidth)
	if err != nil {
		return 0, e.Stats, err
	}
	defer cv.Free()
	pred, err := e.Op("greater", cv, col)
	if err != nil {
		return 0, e.Stats, err
	}
	defer pred.Free()
	vals, err := pred.Load()
	if err != nil {
		return 0, e.Stats, err
	}
	count := 0
	for _, v := range vals {
		count += bits.OnesCount64(v & 1)
	}
	return count, e.Stats, nil
}

// BitWeavingBetweenSIMDRAM scans lo <= code < hi using two comparisons
// and an in-DRAM AND — the two-sided range predicate of the paper's
// database workloads.
func BitWeavingBetweenSIMDRAM(sys *simdram.System, codes []uint64, lo, hi uint64, bitsWidth int) (int, simdram.Stats, error) {
	e := NewEngine(sys, len(codes))
	col, err := e.FromData(codes, bitsWidth)
	if err != nil {
		return 0, e.Stats, err
	}
	defer col.Free()
	lov, err := e.Const(lo, bitsWidth)
	if err != nil {
		return 0, e.Stats, err
	}
	defer lov.Free()
	hiv, err := e.Const(hi, bitsWidth)
	if err != nil {
		return 0, e.Stats, err
	}
	defer hiv.Free()
	ge, err := e.Op("greater_equal", col, lov)
	if err != nil {
		return 0, e.Stats, err
	}
	defer ge.Free()
	lt, err := e.Op("greater", hiv, col)
	if err != nil {
		return 0, e.Stats, err
	}
	defer lt.Free()
	both, err := e.Op("and_red", ge, lt)
	if err != nil {
		return 0, e.Stats, err
	}
	defer both.Free()
	vals, err := both.Load()
	if err != nil {
		return 0, e.Stats, err
	}
	count := 0
	for _, v := range vals {
		count += int(v & 1)
	}
	return count, e.Stats, nil
}

// BitWeavingBetweenRef is the pure-Go reference for the range scan.
func BitWeavingBetweenRef(codes []uint64, lo, hi uint64) int {
	n := 0
	for _, v := range codes {
		if v >= lo && v < hi {
			n++
		}
	}
	return n
}
