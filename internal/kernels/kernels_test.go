package kernels

import (
	"math/rand"
	"testing"

	"simdram"
	"simdram/internal/baseline/cpu"
	"simdram/internal/baseline/gpu"
	"simdram/internal/dram"
	"simdram/internal/ops"
	"simdram/internal/workload"
)

// kernelSystem returns a system with enough data rows for kernel
// pipelines: 2 banks × 2 subarrays of 512 × 256.
func kernelSystem(t testing.TB) *simdram.System {
	t.Helper()
	cfg := simdram.DefaultConfig()
	cfg.DRAM.Cols = 256
	cfg.DRAM.Banks = 2
	cfg.DRAM.SubarraysPerBank = 2
	sys, err := simdram.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBrightnessMatchesRef(t *testing.T) {
	img := workload.NewImage(20, 25, 1)
	for _, delta := range []int{40, 200, -60, -300, 0} {
		sys := kernelSystem(t)
		got, st, err := BrightnessSIMDRAM(sys, img, delta)
		if err != nil {
			t.Fatalf("delta %d: %v", delta, err)
		}
		want := BrightnessRef(img, delta)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("delta %d pixel %d: dram=%d ref=%d (in=%d)", delta, i, got[i], want[i], img.Pixels[i])
			}
		}
		if st.Commands == 0 {
			t.Error("kernel must account commands")
		}
	}
}

func TestTPCHQ6MatchesRef(t *testing.T) {
	table := workload.NewLineItem(700, 2)
	p := DefaultQ6()
	sys := kernelSystem(t)
	got, st, err := TPCHQ6SIMDRAM(sys, table, p)
	if err != nil {
		t.Fatal(err)
	}
	want := TPCHQ6Ref(table, p)
	if got != want {
		t.Fatalf("revenue: dram=%d ref=%d", got, want)
	}
	if want == 0 {
		t.Fatal("test data selects no rows; predicate too tight to be meaningful")
	}
	if st.LatencyNs <= 0 {
		t.Error("kernel must account latency")
	}
}

func TestBitWeavingScans(t *testing.T) {
	codes := workload.Codes(900, 4, 3)
	sys := kernelSystem(t)
	got, _, err := BitWeavingLtSIMDRAM(sys, codes, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := BitWeavingLtRef(codes, 9); got != want {
		t.Fatalf("lt scan: dram=%d ref=%d", got, want)
	}
	got, _, err = BitWeavingBetweenSIMDRAM(sys, codes, 4, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := BitWeavingBetweenRef(codes, 4, 11); got != want {
		t.Fatalf("between scan: dram=%d ref=%d", got, want)
	}
}

func TestKNNDistancesAndClassify(t *testing.T) {
	all, allLabels := workload.Digits(155, 12, 4)
	train, labels := all[:150], allLabels[:150]
	queries, qLabels := all[150:], allLabels[150:]
	sys := kernelSystem(t)
	dist, _, err := KNNDistancesSIMDRAM(sys, train, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	want := KNNRef(train, queries[0])
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("distance %d: dram=%d ref=%d", i, dist[i], want[i])
		}
	}
	// Classification should beat chance comfortably on clustered digits.
	correct := 0
	for q := range queries {
		sys := kernelSystem(t)
		label, _, err := KNNClassify(sys, train, labels, queries[q])
		if err != nil {
			t.Fatal(err)
		}
		if label == qLabels[q] {
			correct++
		}
	}
	if correct < 4 {
		t.Errorf("kNN classified %d/5 clustered digits; expected ≥4", correct)
	}
}

func randomConvWeights(rng *rand.Rand, outC, inC, k int) ConvWeights {
	w := ConvWeights{OutC: outC, InC: inC, K: k, W: make([][][]int, outC)}
	for oc := range w.W {
		w.W[oc] = make([][]int, inC)
		for ic := range w.W[oc] {
			taps := make([]int, k*k)
			for i := range taps {
				taps[i] = rng.Intn(15) - 7
			}
			w.W[oc][ic] = taps
		}
	}
	return w
}

func randomInput(rng *rand.Rand, c, h, w int) FeatureMap {
	fm := NewFeatureMap(c, h, w)
	for ci := range fm.Data {
		for i := range fm.Data[ci] {
			fm.Data[ci][i] = uint64(rng.Intn(256))
		}
	}
	return fm
}

func TestConvReLUMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomInput(rng, 2, 9, 9)
	w := randomConvWeights(rng, 2, 2, 3)
	sys := kernelSystem(t)
	got, st, err := ConvReLUSIMDRAM(sys, in, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := ConvReLURef(in, w, 4)
	for c := range want.Data {
		for i := range want.Data[c] {
			if got.Data[c][i] != want.Data[c][i] {
				t.Fatalf("channel %d pixel %d: dram=%d ref=%d", c, i, got.Data[c][i], want.Data[c][i])
			}
		}
	}
	if st.Commands == 0 {
		t.Error("conv must account commands")
	}
}

func TestMaxPoolMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := randomInput(rng, 3, 8, 8)
	sys := kernelSystem(t)
	got, _, err := MaxPool2SIMDRAM(sys, in)
	if err != nil {
		t.Fatal(err)
	}
	want := MaxPool2Ref(in)
	for c := range want.Data {
		for i := range want.Data[c] {
			if got.Data[c][i] != want.Data[c][i] {
				t.Fatalf("channel %d pixel %d: dram=%d ref=%d", c, i, got.Data[c][i], want.Data[c][i])
			}
		}
	}
}

func TestFCMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]uint64, 12)
	for i := range x {
		x[i] = uint64(rng.Intn(256))
	}
	w := make([][]int, 10)
	for o := range w {
		w[o] = make([]int, len(x))
		for i := range w[o] {
			w[o][i] = rng.Intn(255) - 127 // full signed-weight range
		}
	}
	sys := kernelSystem(t)
	got, _, err := FCSIMDRAM(sys, x, w)
	if err != nil {
		t.Fatal(err)
	}
	want := FCRef(x, w)
	for o := range want {
		if got[o] != want[o] {
			t.Fatalf("neuron %d: dram=%d ref=%d", o, got[o], want[o])
		}
	}
}

func TestLeNetEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	in := randomInput(rng, 1, 14, 14)
	weights := LeNetWeights{
		Conv1: randomConvWeights(rng, 2, 1, 3),
		Conv2: randomConvWeights(rng, 3, 2, 3),
		FC:    make([][]int, 10),
		Shift: 5,
	}
	for o := range weights.FC {
		weights.FC[o] = make([]int, 3*2*2)
		for i := range weights.FC[o] {
			weights.FC[o][i] = rng.Intn(15) - 7
		}
	}
	sys := kernelSystem(t)
	got, st, err := LeNetSIMDRAM(sys, in, weights)
	if err != nil {
		t.Fatal(err)
	}
	want := LeNetRef(in, weights)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: dram=%d ref=%d", i, got[i], want[i])
		}
	}
	if Argmax(got) != Argmax(want) {
		t.Error("classification mismatch")
	}
	if st.Commands == 0 || st.EnergyPJ <= 0 {
		t.Error("network must account cost")
	}
}

// TestVGGBlockEndToEnd runs a VGG-style block — two stacked 3×3
// convolutions followed by a 2×2 max-pool — entirely through the in-DRAM
// building blocks, the functional spot check behind the VGG-13/16
// performance models (DESIGN.md §2 substitution).
func TestVGGBlockEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := randomInput(rng, 2, 10, 10)
	w1 := randomConvWeights(rng, 3, 2, 3)
	w2 := randomConvWeights(rng, 2, 3, 3)
	sys := kernelSystem(t)

	c1, _, err := ConvReLUSIMDRAM(sys, in, w1, 5)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := ConvReLUSIMDRAM(sys, c1, w2, 5)
	if err != nil {
		t.Fatal(err)
	}
	pooled, st, err := MaxPool2SIMDRAM(sys, c2)
	if err != nil {
		t.Fatal(err)
	}

	r1 := ConvReLURef(in, w1, 5)
	r2 := ConvReLURef(r1, w2, 5)
	want := MaxPool2Ref(r2)
	if pooled.C != want.C || pooled.H != want.H || pooled.W != want.W {
		t.Fatalf("shape mismatch: got %dx%dx%d want %dx%dx%d",
			pooled.C, pooled.H, pooled.W, want.C, want.H, want.W)
	}
	for c := range want.Data {
		for i := range want.Data[c] {
			if pooled.Data[c][i] != want.Data[c][i] {
				t.Fatalf("channel %d pixel %d: dram=%d ref=%d", c, i, pooled.Data[c][i], want.Data[c][i])
			}
		}
	}
	if st.Commands == 0 {
		t.Error("block must account commands")
	}
}

func TestPaperSpecsEvaluate(t *testing.T) {
	cfg := dram.PaperConfig()
	cpuCfg := cpu.Skylake()
	gpuCfg := gpu.TitanV()
	for _, spec := range PaperKernels() {
		sd, err := SIMDRAMPerf(spec, cfg, 16, ops.VariantSIMDRAM)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		am, err := SIMDRAMPerf(spec, cfg, 16, ops.VariantAmbit)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := CPUPerf(spec, cpuCfg)
		if err != nil {
			t.Fatal(err)
		}
		gp, err := GPUPerf(spec, gpuCfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []PerfResult{sd, am, cp, gp} {
			if r.TimeNs <= 0 || r.EnergyPJ <= 0 {
				t.Fatalf("%s: non-positive perf result %+v", spec.Name, r)
			}
		}
		// Paper's headline orderings: SIMDRAM (16 banks) is at least as
		// fast as Ambit and far more energy-efficient than the CPU.
		if sd.TimeNs > am.TimeNs {
			t.Errorf("%s: SIMDRAM slower than Ambit (%.2e vs %.2e ns)", spec.Name, sd.TimeNs, am.TimeNs)
		}
		// MAC-heavy kernels pay O(W²) activations per multiplication, so
		// their energy advantage is smaller than the 16-operation average
		// (E3 asserts the ≫100× band there); ≥5× must still hold.
		if cp.EnergyPJ/sd.EnergyPJ < 5 {
			t.Errorf("%s: CPU/SIMDRAM energy ratio %.1f, expected ≥ 5", spec.Name, cp.EnergyPJ/sd.EnergyPJ)
		}
		if sd.TimeNs > cp.TimeNs {
			t.Errorf("%s: SIMDRAM slower than CPU", spec.Name)
		}
		t.Logf("%-11s time: simdram %.3es ambit %.3es cpu %.3es gpu %.3es | energy ratio cpu/simdram %.0f×",
			spec.Name, sd.TimeNs/1e9, am.TimeNs/1e9, cp.TimeNs/1e9, gp.TimeNs/1e9, cp.EnergyPJ/sd.EnergyPJ)
	}
}
