package kernels

import (
	"context"
	"math/bits"

	"simdram"
	"simdram/internal/workload"
)

// This file ports three of the evaluation kernels — brightness,
// BitWeaving scan, TPC-H Q6 — from hand-built eager programs (one
// Engine.Op call per operation, one fresh vector per intermediate)
// onto lazy expressions over Input data leaves, submitted through a
// Server. The expression builders are pure: no System, no allocation,
// no execution — just the request shape plus its payload. That is
// what makes them servable (any free channel can run them) and
// cacheable (every request of a kernel shares one compiled plan; only
// the payload re-binds).

// BrightnessExpr is the brightness kernel as one lazy expression:
// pixels staged at 16 bits so the intermediate sum cannot wrap,
// saturation as a compare plus an in-DRAM if_else.
func BrightnessExpr(pixels []uint64, delta int) *simdram.Expr {
	px := simdram.Input(pixels, 16)
	if delta >= 0 {
		sum := px.Add(simdram.Scalar(uint64(delta), 16))
		over := sum.Greater(simdram.Scalar(255, 16)) // sum > 255
		return over.IfElse(simdram.Scalar(255, 16), sum)
	}
	dv := simdram.Scalar(uint64(-delta), 16)
	diff := px.Sub(dv)
	under := dv.Greater(px) // -delta > pixel → clamp to 0
	return under.IfElse(simdram.Scalar(0, 16), diff)
}

// BrightnessServer runs the brightness kernel through the serving
// layer and returns the adjusted pixels plus the job's result record
// (modeled batch cost, cache hit, latency split).
func BrightnessServer(ctx context.Context, srv *simdram.Server, tenant string, img workload.Image, delta int) ([]uint64, *simdram.JobResult, error) {
	fut, err := srv.SubmitLazy(ctx, tenant, BrightnessExpr(img.Pixels, delta))
	if err != nil {
		return nil, nil, err
	}
	res, err := fut.Wait()
	if err != nil {
		return nil, nil, err
	}
	return res.Values[0], res, nil
}

// BitWeavingLtExpr is the BitWeaving/V scan predicate c > code as one
// lazy expression over the code column.
func BitWeavingLtExpr(codes []uint64, c uint64, bitsWidth int) *simdram.Expr {
	return simdram.Scalar(c, bitsWidth).Greater(simdram.Input(codes, bitsWidth))
}

// BitWeavingLtServer performs the scan through the serving layer,
// popcounting the returned 1-bit result vector host-side like a scan
// consumer would.
func BitWeavingLtServer(ctx context.Context, srv *simdram.Server, tenant string, codes []uint64, c uint64, bitsWidth int) (int, *simdram.JobResult, error) {
	fut, err := srv.SubmitLazy(ctx, tenant, BitWeavingLtExpr(codes, c, bitsWidth))
	if err != nil {
		return 0, nil, err
	}
	res, err := fut.Wait()
	if err != nil {
		return 0, nil, err
	}
	count := 0
	for _, v := range res.Values[0] {
		count += bits.OnesCount64(v & 1)
	}
	return count, res, nil
}

// TPCHQ6Expr is the Q6-style selective aggregation as one lazy
// expression: five in-DRAM comparisons, the 5-way predicate AND as an
// and_red tree (the ISA encodes at most 3 source operands per
// instruction), a 16×16→32 multiplication, and a predicated if_else.
// The final scalar sum stays host-side, as in the eager kernel:
// aggregation across SIMD lanes needs inter-column movement, which
// SIMDRAM leaves to the CPU.
func TPCHQ6Expr(t workload.LineItem, p TPCHQ6Params) *simdram.Expr {
	ship := simdram.Input(t.ShipDate, 16)
	disc := simdram.Input(t.Discount, 16)
	qty := simdram.Input(t.Quantity, 16)
	price := simdram.Input(t.ExtendedPrice, 16)

	p1 := ship.GreaterEqual(simdram.Scalar(p.DateLo, 16))
	p2 := simdram.Scalar(p.DateHi, 16).Greater(ship)
	p3 := disc.GreaterEqual(simdram.Scalar(p.DiscountLo, 16))
	p4 := simdram.Scalar(p.DiscountHi, 16).GreaterEqual(disc)
	p5 := simdram.Scalar(p.QuantityLt, 16).Greater(qty)
	pred := p1.Apply("and_red", p2, p3).Apply("and_red", p4, p5)

	rev := price.Mul(disc) // 16×16 → 32
	return pred.IfElse(rev, simdram.Scalar(0, 32))
}

// TPCHQ6Server evaluates Q6 through the serving layer: the predicate
// and the selected revenue in DRAM, the scalar sum as a host-side fold
// over the loaded revenue column.
func TPCHQ6Server(ctx context.Context, srv *simdram.Server, tenant string, t workload.LineItem, p TPCHQ6Params) (uint64, *simdram.JobResult, error) {
	fut, err := srv.SubmitLazy(ctx, tenant, TPCHQ6Expr(t, p))
	if err != nil {
		return 0, nil, err
	}
	res, err := fut.Wait()
	if err != nil {
		return 0, nil, err
	}
	var sum uint64
	for _, v := range res.Values[0] {
		sum += v
	}
	return sum, res, nil
}
