package kernels

import (
	"fmt"

	"simdram"
)

// Quantized neural-network building blocks for the paper's ML kernels
// (LeNet, VGG-13, VGG-16). Activations are 8-bit unsigned, weights small
// signed integers, accumulation 32-bit — the standard integer-inference
// regime. Output pixels are SIMD lanes: each multiply-accumulate step is
// one bulk in-DRAM multiplication plus one addition/subtraction across
// every output position at once. Host code performs only data gathering
// (im2col-style shifts) and requantization, as in the paper's mapping.

// FeatureMap is a C×H×W activation tensor, one flattened channel per
// slice entry, values 0-255.
type FeatureMap struct {
	C, H, W int
	Data    [][]uint64
}

// NewFeatureMap allocates a zero feature map.
func NewFeatureMap(c, h, w int) FeatureMap {
	d := make([][]uint64, c)
	for i := range d {
		d[i] = make([]uint64, h*w)
	}
	return FeatureMap{C: c, H: h, W: w, Data: d}
}

// ConvWeights holds signed weights [outC][inC][kH*kW].
type ConvWeights struct {
	OutC, InC, K int
	W            [][][]int
}

// Requantize maps a signed 32-bit accumulator (already ReLU'd, so
// non-negative) back to 8 bits with a right shift and clamp.
func Requantize(v uint64, shift uint) uint64 {
	v >>= shift
	if v > 255 {
		return 255
	}
	return v
}

// gatherShifted builds the im2col vector: input channel ic sampled at
// kernel offset (ky,kx) for every valid output position.
func gatherShifted(in FeatureMap, ic, ky, kx, outH, outW int) []uint64 {
	out := make([]uint64, outH*outW)
	for y := 0; y < outH; y++ {
		for x := 0; x < outW; x++ {
			out[y*outW+x] = in.Data[ic][(y+ky)*in.W+(x+kx)]
		}
	}
	return out
}

// ConvReLURef is the pure-Go reference for ConvReLUSIMDRAM.
func ConvReLURef(in FeatureMap, w ConvWeights, shift uint) FeatureMap {
	outH, outW := in.H-w.K+1, in.W-w.K+1
	out := NewFeatureMap(w.OutC, outH, outW)
	for oc := 0; oc < w.OutC; oc++ {
		for y := 0; y < outH; y++ {
			for x := 0; x < outW; x++ {
				var acc int64
				for ic := 0; ic < w.InC; ic++ {
					for ky := 0; ky < w.K; ky++ {
						for kx := 0; kx < w.K; kx++ {
							acc += int64(in.Data[ic][(y+ky)*in.W+(x+kx)]) * int64(w.W[oc][ic][ky*w.K+kx])
						}
					}
				}
				if acc < 0 {
					acc = 0
				}
				out.Data[oc][y*outW+x] = Requantize(uint64(acc), shift)
			}
		}
	}
	return out
}

// ConvReLUSIMDRAM runs a valid-padding convolution + ReLU + requantize
// with all multiply-accumulates in DRAM.
func ConvReLUSIMDRAM(sys *simdram.System, in FeatureMap, w ConvWeights, shift uint) (FeatureMap, simdram.Stats, error) {
	if in.C != w.InC {
		return FeatureMap{}, simdram.Stats{}, fmt.Errorf("kernels: conv expects %d input channels, have %d", w.InC, in.C)
	}
	outH, outW := in.H-w.K+1, in.W-w.K+1
	n := outH * outW
	e := NewEngine(sys, n)
	out := NewFeatureMap(w.OutC, outH, outW)
	for oc := 0; oc < w.OutC; oc++ {
		acc, err := e.Const(0, 32)
		if err != nil {
			return FeatureMap{}, e.Stats, err
		}
		for ic := 0; ic < w.InC; ic++ {
			for ky := 0; ky < w.K; ky++ {
				for kx := 0; kx < w.K; kx++ {
					wt := w.W[oc][ic][ky*w.K+kx]
					if wt == 0 {
						continue
					}
					shifted, err := e.FromData(gatherShifted(in, ic, ky, kx, outH, outW), 16)
					if err != nil {
						return FeatureMap{}, e.Stats, err
					}
					mag := wt
					opName := "addition"
					if mag < 0 {
						mag = -mag
						opName = "subtraction"
					}
					wv, err := e.Const(uint64(mag), 16)
					if err != nil {
						return FeatureMap{}, e.Stats, err
					}
					prod, err := e.Op("multiplication", shifted, wv)
					FreeAll(shifted, wv)
					if err != nil {
						return FeatureMap{}, e.Stats, err
					}
					next, err := e.Op(opName, acc, prod)
					prod.Free()
					if err != nil {
						return FeatureMap{}, e.Stats, err
					}
					Replace(&acc, next)
				}
			}
		}
		rel, err := e.Op("relu", acc)
		acc.Free()
		if err != nil {
			return FeatureMap{}, e.Stats, err
		}
		vals, err := rel.Load()
		rel.Free()
		if err != nil {
			return FeatureMap{}, e.Stats, err
		}
		for i, v := range vals {
			out.Data[oc][i] = Requantize(v, shift)
		}
	}
	return out, e.Stats, nil
}

// MaxPool2Ref is the pure-Go 2×2 max-pool reference.
func MaxPool2Ref(in FeatureMap) FeatureMap {
	outH, outW := in.H/2, in.W/2
	out := NewFeatureMap(in.C, outH, outW)
	for c := 0; c < in.C; c++ {
		for y := 0; y < outH; y++ {
			for x := 0; x < outW; x++ {
				m := uint64(0)
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						if v := in.Data[c][(2*y+dy)*in.W+(2*x+dx)]; v > m {
							m = v
						}
					}
				}
				out.Data[c][y*outW+x] = m
			}
		}
	}
	return out
}

// MaxPool2SIMDRAM pools with three in-DRAM max operations over the four
// gathered corner vectors.
func MaxPool2SIMDRAM(sys *simdram.System, in FeatureMap) (FeatureMap, simdram.Stats, error) {
	outH, outW := in.H/2, in.W/2
	n := outH * outW
	e := NewEngine(sys, n)
	out := NewFeatureMap(in.C, outH, outW)
	gather := func(c, dy, dx int) []uint64 {
		v := make([]uint64, n)
		for y := 0; y < outH; y++ {
			for x := 0; x < outW; x++ {
				v[y*outW+x] = in.Data[c][(2*y+dy)*in.W+(2*x+dx)]
			}
		}
		return v
	}
	for c := 0; c < in.C; c++ {
		var corners [4]*simdram.Vector
		var err error
		for i := 0; i < 4; i++ {
			corners[i], err = e.FromData(gather(c, i/2, i%2), 8)
			if err != nil {
				return FeatureMap{}, e.Stats, err
			}
		}
		m01, err := e.Op("max", corners[0], corners[1])
		if err != nil {
			return FeatureMap{}, e.Stats, err
		}
		m23, err := e.Op("max", corners[2], corners[3])
		if err != nil {
			return FeatureMap{}, e.Stats, err
		}
		m, err := e.Op("max", m01, m23)
		if err != nil {
			return FeatureMap{}, e.Stats, err
		}
		vals, err := m.Load()
		if err != nil {
			return FeatureMap{}, e.Stats, err
		}
		copy(out.Data[c], vals)
		FreeAll(corners[0], corners[1], corners[2], corners[3], m01, m23, m)
	}
	return out, e.Stats, nil
}

// FCRef is the pure-Go reference for FCSIMDRAM: logits = W·x (signed).
func FCRef(x []uint64, w [][]int) []int64 {
	out := make([]int64, len(w))
	for o := range w {
		var acc int64
		for i, xi := range x {
			acc += int64(xi) * int64(w[o][i])
		}
		out[o] = acc
	}
	return out
}

// FCSIMDRAM computes a fully connected layer with output neurons as SIMD
// lanes. Per-lane signed weights use offset encoding: the stored weight
// is w+128 (unsigned), and the bias 128·x is subtracted afterwards, so an
// unsigned in-DRAM multiplier handles signed weights exactly.
func FCSIMDRAM(sys *simdram.System, x []uint64, w [][]int) ([]int64, simdram.Stats, error) {
	outN := len(w)
	e := NewEngine(sys, outN)
	fail := func(err error) ([]int64, simdram.Stats, error) { return nil, e.Stats, err }
	acc, err := e.Const(0, 32)
	if err != nil {
		return fail(err)
	}
	wCol := make([]uint64, outN)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		for o := 0; o < outN; o++ {
			wCol[o] = uint64(w[o][i] + 128)
		}
		wv, err := e.FromData(wCol, 16)
		if err != nil {
			return fail(err)
		}
		xv, err := e.Const(xi, 16)
		if err != nil {
			return fail(err)
		}
		prod, err := e.Op("multiplication", xv, wv)
		FreeAll(wv, xv)
		if err != nil {
			return fail(err)
		}
		next, err := e.Op("addition", acc, prod)
		prod.Free()
		if err != nil {
			return fail(err)
		}
		Replace(&acc, next)
		corr, err := e.Const(xi*128, 32)
		if err != nil {
			return fail(err)
		}
		next, err = e.Op("subtraction", acc, corr)
		corr.Free()
		if err != nil {
			return fail(err)
		}
		Replace(&acc, next)
	}
	defer acc.Free()
	vals, err := acc.Load()
	if err != nil {
		return fail(err)
	}
	out := make([]int64, outN)
	for i, v := range vals {
		out[i] = int64(int32(uint32(v)))
	}
	return out, e.Stats, nil
}

// LeNetWeights bundles the weights of the miniature LeNet used by the
// functional test (full-scale LeNet performance comes from spec.go).
type LeNetWeights struct {
	Conv1, Conv2 ConvWeights
	FC           [][]int
	Shift        uint
}

// LeNetRef runs the reference network: conv-relu, pool, conv-relu, pool,
// flatten, FC; returns the logits.
func LeNetRef(in FeatureMap, w LeNetWeights) []int64 {
	c1 := ConvReLURef(in, w.Conv1, w.Shift)
	p1 := MaxPool2Ref(c1)
	c2 := ConvReLURef(p1, w.Conv2, w.Shift)
	p2 := MaxPool2Ref(c2)
	return FCRef(flatten(p2), w.FC)
}

// LeNetSIMDRAM runs the same network with every layer's arithmetic in
// DRAM.
func LeNetSIMDRAM(sys *simdram.System, in FeatureMap, w LeNetWeights) ([]int64, simdram.Stats, error) {
	var total simdram.Stats
	add := func(st simdram.Stats) {
		total.LatencyNs += st.LatencyNs
		total.EnergyPJ += st.EnergyPJ
		total.Commands += st.Commands
	}
	c1, st, err := ConvReLUSIMDRAM(sys, in, w.Conv1, w.Shift)
	add(st)
	if err != nil {
		return nil, total, err
	}
	p1, st, err := MaxPool2SIMDRAM(sys, c1)
	add(st)
	if err != nil {
		return nil, total, err
	}
	c2, st, err := ConvReLUSIMDRAM(sys, p1, w.Conv2, w.Shift)
	add(st)
	if err != nil {
		return nil, total, err
	}
	p2, st, err := MaxPool2SIMDRAM(sys, c2)
	add(st)
	if err != nil {
		return nil, total, err
	}
	logits, st, err := FCSIMDRAM(sys, flatten(p2), w.FC)
	add(st)
	return logits, total, err
}

func flatten(fm FeatureMap) []uint64 {
	out := make([]uint64, 0, fm.C*fm.H*fm.W)
	for _, ch := range fm.Data {
		out = append(out, ch...)
	}
	return out
}

// Argmax returns the index of the largest logit.
func Argmax(logits []int64) int {
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}
