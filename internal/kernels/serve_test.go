package kernels

import (
	"context"
	"testing"

	"simdram"
	"simdram/internal/workload"
)

// kernelServer returns a small 2-channel server with enough data rows
// for the lazy kernel pipelines.
func kernelServer(t testing.TB) *simdram.Server {
	t.Helper()
	cfg := simdram.DefaultServerConfig(2)
	cfg.Channel.DRAM.Cols = 256
	cfg.Channel.DRAM.Banks = 2
	cfg.Channel.DRAM.SubarraysPerBank = 2
	srv, err := simdram.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestBrightnessServerMatchesRefAndEager(t *testing.T) {
	srv := kernelServer(t)
	defer srv.Close()
	img := workload.NewImage(20, 25, 1)
	for _, delta := range []int{40, 200, -60, -300, 0} {
		got, res, err := BrightnessServer(context.Background(), srv, "imaging", img, delta)
		if err != nil {
			t.Fatalf("delta %d: %v", delta, err)
		}
		want := BrightnessRef(img, delta)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("delta %d pixel %d: served=%d ref=%d (in=%d)", delta, i, got[i], want[i], img.Pixels[i])
			}
		}
		if res.Batch.Instructions == 0 {
			t.Error("served kernel must account batch instructions")
		}

		// The eager Engine version of the same kernel must agree too.
		sys := kernelSystem(t)
		eager, _, err := BrightnessSIMDRAM(sys, img, delta)
		if err != nil {
			t.Fatalf("eager delta %d: %v", delta, err)
		}
		for i := range want {
			if got[i] != eager[i] {
				t.Fatalf("delta %d pixel %d: served=%d eager=%d", delta, i, got[i], eager[i])
			}
		}
		sys.Close()
	}
	// The delta constant is part of the shape, so each delta above was
	// a cold compile — but repeating a delta with a fresh image is the
	// same shape and must hit the cache.
	img2 := workload.NewImage(20, 25, 7)
	got, res, err := BrightnessServer(context.Background(), srv, "imaging", img2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compile.CacheHit {
		t.Errorf("repeated brightness shape should hit the plan cache: %+v", srv.Stats().Cache)
	}
	want := BrightnessRef(img2, 40)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cached-plan pixel %d: served=%d ref=%d", i, got[i], want[i])
		}
	}
}

func TestBitWeavingServerMatchesRef(t *testing.T) {
	srv := kernelServer(t)
	defer srv.Close()
	codes := workload.Codes(900, 4, 3)
	for _, c := range []uint64{9, 3, 15} {
		got, _, err := BitWeavingLtServer(context.Background(), srv, "analytics", codes, c, 4)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		if want := BitWeavingLtRef(codes, c); got != want {
			t.Fatalf("lt scan c=%d: served=%d ref=%d", c, got, want)
		}
	}
	// All three scans share one shape (the constant is part of the
	// shape, so only the first compile of each constant is cold — the
	// codes payload is not).
	st := srv.Stats()
	if st.Completed != 3 {
		t.Fatalf("completed %d jobs, want 3", st.Completed)
	}
}

func TestTPCHQ6ServerMatchesRefAndEager(t *testing.T) {
	srv := kernelServer(t)
	defer srv.Close()
	table := workload.NewLineItem(700, 2)
	p := DefaultQ6()
	got, res, err := TPCHQ6Server(context.Background(), srv, "warehouse", table, p)
	if err != nil {
		t.Fatal(err)
	}
	want := TPCHQ6Ref(table, p)
	if got != want {
		t.Fatalf("revenue: served=%d ref=%d", got, want)
	}
	if want == 0 {
		t.Fatal("test data selects no rows; predicate too tight to be meaningful")
	}
	if res.Compile.CacheHit {
		t.Error("first Q6 request cannot be a cache hit")
	}

	sys := kernelSystem(t)
	defer sys.Close()
	eager, _, err := TPCHQ6SIMDRAM(sys, table, p)
	if err != nil {
		t.Fatal(err)
	}
	if got != eager {
		t.Fatalf("revenue: served=%d eager=%d", got, eager)
	}

	// A second request with fresh row data is the same shape: plan
	// cache hit, identical reference agreement.
	table2 := workload.NewLineItem(700, 9)
	got2, res2, err := TPCHQ6Server(context.Background(), srv, "warehouse", table2, p)
	if err != nil {
		t.Fatal(err)
	}
	if want2 := TPCHQ6Ref(table2, p); got2 != want2 {
		t.Fatalf("second revenue: served=%d ref=%d", got2, want2)
	}
	if !res2.Compile.CacheHit {
		t.Error("second Q6 request with the same shape should hit the plan cache")
	}
}
