package kernels

import (
	"simdram"
	"simdram/internal/workload"
)

// Brightness adjusts an 8-bit image by delta with saturation at 0 and
// 255 — the paper's image-processing kernel [Gonzalez & Woods]. Pixels
// are staged as 16-bit elements so the intermediate sum cannot wrap;
// saturation is a compare plus an in-DRAM if_else (predication).
//
// BrightnessRef is the pure-Go reference.
func BrightnessRef(img workload.Image, delta int) []uint64 {
	out := make([]uint64, len(img.Pixels))
	for i, p := range img.Pixels {
		v := int(p) + delta
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		out[i] = uint64(v)
	}
	return out
}

// BrightnessSIMDRAM runs the kernel in DRAM and returns the adjusted
// pixels plus the accumulated cost.
func BrightnessSIMDRAM(sys *simdram.System, img workload.Image, delta int) ([]uint64, simdram.Stats, error) {
	e := NewEngine(sys, len(img.Pixels))
	px, err := e.FromData(img.Pixels, 16)
	if err != nil {
		return nil, e.Stats, err
	}
	defer px.Free()

	var result *simdram.Vector
	if delta >= 0 {
		dv, err := e.Const(uint64(delta), 16)
		if err != nil {
			return nil, e.Stats, err
		}
		defer dv.Free()
		sum, err := e.Op("addition", px, dv)
		if err != nil {
			return nil, e.Stats, err
		}
		defer sum.Free()
		c255, err := e.Const(255, 16)
		if err != nil {
			return nil, e.Stats, err
		}
		defer c255.Free()
		over, err := e.Op("greater", sum, c255) // sum > 255
		if err != nil {
			return nil, e.Stats, err
		}
		defer over.Free()
		result, err = e.Op("if_else", c255, sum, over)
		if err != nil {
			return nil, e.Stats, err
		}
	} else {
		dv, err := e.Const(uint64(-delta), 16)
		if err != nil {
			return nil, e.Stats, err
		}
		defer dv.Free()
		diff, err := e.Op("subtraction", px, dv)
		if err != nil {
			return nil, e.Stats, err
		}
		defer diff.Free()
		under, err := e.Op("greater", dv, px) // -delta > pixel → clamp to 0
		if err != nil {
			return nil, e.Stats, err
		}
		defer under.Free()
		zero, err := e.Const(0, 16)
		if err != nil {
			return nil, e.Stats, err
		}
		defer zero.Free()
		result, err = e.Op("if_else", zero, diff, under)
		if err != nil {
			return nil, e.Stats, err
		}
	}
	defer result.Free()
	out, err := result.Load()
	return out, e.Stats, err
}
