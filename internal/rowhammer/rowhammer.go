// Package rowhammer analyzes SIMDRAM command streams for RowHammer
// exposure — the third system-integration challenge of the paper (§4):
// in-DRAM computation activates compute rows at rates normal workloads
// never reach, so a μProgram could unintentionally (or, crafted by an
// attacker, deliberately) disturb the rows physically adjacent to the
// compute region.
//
// The model counts per-row activations of a μProgram, scales them to a
// refresh window (tREFW), and compares each row's aggressor count with
// the technology's RowHammer threshold. The mitigation the analysis
// motivates is the paper's: the compute region's neighbors are either
// buffer rows (unused) or are refreshed proactively by the control unit.
package rowhammer

import (
	"fmt"
	"sort"

	"simdram/internal/dram"
	"simdram/internal/uprog"
)

// Thresholds for common DRAM generations: the minimum single-aggressor
// activation count observed to flip a victim bit (Kim et al., ISCA 2020).
const (
	ThresholdDDR3  = 139_000
	ThresholdDDR4  = 50_000
	ThresholdLPDD4 = 20_000 // scaled nodes are markedly more vulnerable
)

// TREFWns is the DDR4 refresh window (64 ms) in nanoseconds.
const TREFWns = 64e6

// RowClass labels the kind of row an activation targets.
type RowClass uint8

// Row classes of a μProgram's activations.
const (
	ClassData RowClass = iota // operand/destination/scratch data rows
	ClassCompute
	ClassControl
)

func (c RowClass) String() string {
	switch c {
	case ClassData:
		return "data"
	case ClassCompute:
		return "compute"
	case ClassControl:
		return "control"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// RowStat is the activation count of one symbolic row.
type RowStat struct {
	Ref   uprog.Ref
	Class RowClass
	// ActsPerExec counts activations in one μProgram execution.
	ActsPerExec int
	// ActsPerWindow extrapolates to back-to-back executions for a full
	// refresh window — the worst-case hammer rate.
	ActsPerWindow int64
}

// Report is the RowHammer exposure analysis of one μProgram.
type Report struct {
	Program        string
	LatencyNs      float64
	ExecsPerWindow int64
	Rows           []RowStat // sorted by ActsPerWindow, descending
}

// Analyze counts per-row activations of p under the given timing.
//
// Activation accounting per command: an AAP activates its source row and
// its destination rows; an AP activates the three TRA rows; a MajCopy
// activates the TRA rows and the destinations.
func Analyze(p *uprog.Program, t dram.Timing) Report {
	counts := map[uprog.Ref]int{}
	bump := func(r uprog.Ref) { counts[r]++ }
	for _, op := range p.Ops {
		switch op.Kind {
		case uprog.OpAAP:
			bump(op.Src)
			for _, d := range op.Dsts {
				bump(d)
			}
		case uprog.OpAP:
			for _, tr := range op.T {
				bump(uprog.Ref{Space: uprog.SpaceT, Idx: tr})
			}
		case uprog.OpMajCopy:
			for _, tr := range op.T {
				bump(uprog.Ref{Space: uprog.SpaceT, Idx: tr})
			}
			for _, d := range op.Dsts {
				bump(d)
			}
		}
	}
	lat := p.LatencyNs(t)
	execs := int64(TREFWns / lat)
	if execs < 1 {
		execs = 1
	}
	rep := Report{Program: p.Name, LatencyNs: lat, ExecsPerWindow: execs}
	for ref, n := range counts {
		rep.Rows = append(rep.Rows, RowStat{
			Ref:           ref,
			Class:         classify(ref),
			ActsPerExec:   n,
			ActsPerWindow: int64(n) * execs,
		})
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].ActsPerWindow != rep.Rows[j].ActsPerWindow {
			return rep.Rows[i].ActsPerWindow > rep.Rows[j].ActsPerWindow
		}
		return refLess(rep.Rows[i].Ref, rep.Rows[j].Ref)
	})
	return rep
}

func classify(r uprog.Ref) RowClass {
	switch r.Space {
	case uprog.SpaceT, uprog.SpaceDCC, uprog.SpaceDCCN:
		return ClassCompute
	case uprog.SpaceC0, uprog.SpaceC1:
		return ClassControl
	default:
		return ClassData
	}
}

func refLess(a, b uprog.Ref) bool {
	if a.Space != b.Space {
		return a.Space < b.Space
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	return a.Idx < b.Idx
}

// MaxHammer returns the hottest row's activations per refresh window.
func (r Report) MaxHammer() int64 {
	if len(r.Rows) == 0 {
		return 0
	}
	return r.Rows[0].ActsPerWindow
}

// Exceeds reports whether any row's window activation count crosses the
// threshold — i.e. whether neighbors of that row need mitigation.
func (r Report) Exceeds(threshold int64) bool {
	return r.MaxHammer() >= threshold
}

// VictimRows lists the symbolic rows whose physical neighbors need
// protection (buffer rows or proactive refresh) at the given threshold.
func (r Report) VictimRows(threshold int64) []uprog.Ref {
	var out []uprog.Ref
	for _, rs := range r.Rows {
		if rs.ActsPerWindow >= threshold {
			out = append(out, rs.Ref)
		}
	}
	return out
}

// MitigationRefreshes returns how many extra neighbor refreshes per
// refresh window the control unit must issue to protect victims at the
// given threshold: each aggressor needs its two neighbors refreshed once
// per threshold-worth of activations.
func (r Report) MitigationRefreshes(threshold int64) int64 {
	var total int64
	for _, rs := range r.Rows {
		if rs.ActsPerWindow >= threshold {
			total += 2 * (rs.ActsPerWindow / threshold)
		}
	}
	return total
}

func (r Report) String() string {
	s := fmt.Sprintf("rowhammer report for %s: %.0f ns/exec, %d execs/window, hottest row %d acts/window\n",
		r.Program, r.LatencyNs, r.ExecsPerWindow, r.MaxHammer())
	for i, rs := range r.Rows {
		if i >= 8 {
			s += fmt.Sprintf("  … %d more rows\n", len(r.Rows)-i)
			break
		}
		s += fmt.Sprintf("  %-10s %-8s %6d acts/exec  %12d acts/window\n",
			rs.Ref, rs.Class, rs.ActsPerExec, rs.ActsPerWindow)
	}
	return s
}
