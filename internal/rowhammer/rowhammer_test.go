package rowhammer

import (
	"strings"
	"testing"

	"simdram/internal/dram"
	"simdram/internal/ops"
	"simdram/internal/uprog"
)

func synth(t *testing.T, name string, width int) *uprog.Program {
	t.Helper()
	d, err := ops.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ops.SynthesizeCached(d, width, 3, ops.VariantSIMDRAM)
	if err != nil {
		t.Fatal(err)
	}
	return s.Program
}

func TestComputeRowsAreHottest(t *testing.T) {
	p := synth(t, "addition", 16)
	rep := Analyze(p, dram.DDR4_2400())
	if len(rep.Rows) == 0 {
		t.Fatal("no rows analyzed")
	}
	if rep.Rows[0].Class != ClassCompute {
		t.Errorf("hottest row is %v (%v), expected a compute-region row", rep.Rows[0].Ref, rep.Rows[0].Class)
	}
	// Activation conservation: per-exec counts must cover every command's
	// activations (AAP:2+, AP:3, MajCopy:4+).
	total := 0
	for _, rs := range rep.Rows {
		total += rs.ActsPerExec
	}
	minActs := 0
	for _, op := range p.Ops {
		switch op.Kind {
		case uprog.OpAAP:
			minActs += 1 + len(op.Dsts)
		case uprog.OpAP:
			minActs += 3
		case uprog.OpMajCopy:
			minActs += 3 + len(op.Dsts)
		}
	}
	if total != minActs {
		t.Errorf("activation accounting: %d counted vs %d from commands", total, minActs)
	}
}

func TestBackToBackComputeExceedsThreshold(t *testing.T) {
	// The paper's motivation: sustained in-DRAM computation hammers the
	// compute region far beyond the DDR4 threshold within one refresh
	// window, so the design must protect the compute region's neighbors.
	p := synth(t, "addition", 8)
	rep := Analyze(p, dram.DDR4_2400())
	if !rep.Exceeds(ThresholdDDR4) {
		t.Errorf("back-to-back 8-bit addition reaches only %d acts/window; expected above the DDR4 threshold %d",
			rep.MaxHammer(), ThresholdDDR4)
	}
	victims := rep.VictimRows(ThresholdDDR4)
	if len(victims) == 0 {
		t.Fatal("no victim rows at DDR4 threshold")
	}
	// Every row needing protection must be in the fixed compute region —
	// that is what makes the paper's buffer-row mitigation sufficient.
	for _, v := range victims {
		if classify(v) == ClassData && v.Space != uprog.SpaceDst {
			t.Errorf("operand data row %v exceeds threshold; mitigation assumes compute-region locality", v)
		}
	}
	if rep.MitigationRefreshes(ThresholdDDR4) <= 0 {
		t.Error("mitigation refresh count must be positive when the threshold is exceeded")
	}
}

func TestLongProgramsHammerLess(t *testing.T) {
	// Longer μPrograms execute fewer times per window, spreading their
	// activations: multiplication's hottest row must hammer less than
	// greater's (shortest program).
	mul := Analyze(synth(t, "multiplication", 32), dram.DDR4_2400())
	gt := Analyze(synth(t, "greater", 8), dram.DDR4_2400())
	if mul.MaxHammer() >= gt.MaxHammer() {
		t.Errorf("mul32 hottest %d should hammer less than greater/8 hottest %d",
			mul.MaxHammer(), gt.MaxHammer())
	}
}

func TestReportRendering(t *testing.T) {
	rep := Analyze(synth(t, "max", 8), dram.DDR4_2400())
	s := rep.String()
	for _, want := range []string{"rowhammer report", "acts/window", "compute"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestThresholdOrdering(t *testing.T) {
	if !(ThresholdLPDD4 < ThresholdDDR4 && ThresholdDDR4 < ThresholdDDR3) {
		t.Error("thresholds must shrink with technology scaling")
	}
}
