package verify_test

import (
	"errors"
	"strings"
	"testing"

	"simdram/internal/isa"
	"simdram/internal/logic"
	"simdram/internal/ops"
	"simdram/internal/verify"
)

// fixture is a small valid program over synthetic objects that every
// mutation test corrupts: two defined 8-bit inputs (1, 2), a reused
// temporary slot (3), and two outputs (4, 5), all laid out in disjoint
// 8-row extents of a 64-data-row subarray. The slot reuse at
// instruction 2 makes the WAR/WAW hazard structure of liveness-pooled
// lowering explicit.
type fixture struct {
	prog isa.Program
	opt  verify.Options
}

func base() *fixture {
	add := isa.FromOp(ops.OpAdd)
	sub := isa.FromOp(ops.OpSub)
	objects := map[uint16]verify.Object{}
	for i, h := range []uint16{1, 2, 3, 4, 5} {
		objects[h] = verify.Object{
			Width:   8,
			Defined: h == 1 || h == 2,
			Extents: []verify.Extent{{Bank: 0, Sub: 0, Row: 8 * i, Rows: 8}},
		}
	}
	return &fixture{
		prog: isa.Program{
			{Op: isa.OpTrspInit, Src: [3]uint16{1}, Size: 64, Width: 8},
			{Op: add, Dst: 3, Src: [3]uint16{1, 2}, Size: 64, Width: 8},
			{Op: add, Dst: 4, Src: [3]uint16{3, 1}, Size: 64, Width: 8},
			{Op: sub, Dst: 3, Src: [3]uint16{2, 1}, Size: 64, Width: 8}, // slot 3 reused
			{Op: add, Dst: 5, Src: [3]uint16{3, 2}, Size: 64, Width: 8},
		},
		opt: verify.Options{Objects: objects, DataRows: 64},
	}
}

// findDiag returns the first joined diagnostic matching (check, instr,
// operand), optionally requiring a message substring.
func findDiag(t *testing.T, err error, check verify.Check, instr, operand int, contains string) *verify.Diagnostic {
	t.Helper()
	if err == nil {
		t.Fatalf("program verified clean, want a %s diagnostic", check)
	}
	var first *verify.Diagnostic
	if !errors.As(err, &first) {
		t.Fatalf("error holds no *verify.Diagnostic: %v", err)
	}
	for _, d := range verify.Diagnostics(err) {
		if d.Check == check && d.Instr == instr && d.Operand == operand &&
			(contains == "" || strings.Contains(d.Error(), contains)) {
			return d
		}
	}
	t.Fatalf("no %s diagnostic at instruction %d operand %d (contains %q) in: %v",
		check, instr, operand, contains, err)
	return nil
}

func TestCleanProgramVerifies(t *testing.T) {
	f := base()
	if err := verify.Program(f.prog, f.opt); err != nil {
		t.Fatalf("clean program (self-computed deps): %v", err)
	}
	f.opt.Deps = f.prog.Deps()
	if err := verify.Program(f.prog, f.opt); err != nil {
		t.Fatalf("clean program (scheduler deps): %v", err)
	}
	f.opt.Objects = nil // binding-independent checks only
	if err := verify.Program(f.prog, f.opt); err != nil {
		t.Fatalf("clean program (no binding): %v", err)
	}
}

func TestEmptyProgramRejected(t *testing.T) {
	err := verify.Program(nil, verify.Options{})
	findDiag(t, err, verify.CheckEncoding, -1, verify.OperandNone, "empty")
}

// TestSeededCorruptions is the mutation harness: every seeded
// corruption of the valid fixture must be rejected with a typed,
// located diagnostic naming the right check, instruction, and operand.
func TestSeededCorruptions(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(f *fixture)
		check    verify.Check
		instr    int
		operand  int
		contains string
	}{
		{
			name:   "dropped RAW edge",
			mutate: func(f *fixture) { f.opt.Deps = f.prog.Deps(); f.opt.Deps[2] = nil },
			check:  verify.CheckHazard,
			instr:  2, operand: 0,
			contains: "read-after-write",
		},
		{
			name: "dropped WAR edge",
			mutate: func(f *fixture) {
				f.opt.Deps = f.prog.Deps()
				f.opt.Deps[3] = []int{1} // keep WAW edge to instr 1, drop WAR edge to instr 2
			},
			check: verify.CheckHazard,
			instr: 3, operand: verify.OperandDst,
			contains: "write-after-read",
		},
		{
			name: "dropped WAW edge",
			mutate: func(f *fixture) {
				// Two back-to-back writes of slot 3 with no read between:
				// the only hazard is WAW, and the corrupted graph drops it.
				add := isa.FromOp(ops.OpAdd)
				f.prog = isa.Program{
					{Op: add, Dst: 3, Src: [3]uint16{1, 2}, Size: 64, Width: 8},
					{Op: add, Dst: 3, Src: [3]uint16{2, 1}, Size: 64, Width: 8},
				}
				f.opt.Deps = [][]int{nil, nil}
			},
			check: verify.CheckHazard,
			instr: 1, operand: verify.OperandDst,
			contains: "write-after-write",
		},
		{
			name: "swapped rows alias dst with source",
			mutate: func(f *fixture) {
				o := f.opt.Objects[3]
				o.Extents = []verify.Extent{{Bank: 0, Sub: 0, Row: 0, Rows: 8}} // object 1's rows
				f.opt.Objects[3] = o
			},
			check: verify.CheckAlias,
			instr: 1, operand: 0,
			contains: "overlap",
		},
		{
			name:   "narrowed width",
			mutate: func(f *fixture) { f.prog[1].Width = 4 },
			check:  verify.CheckWidth,
			instr:  1, operand: verify.OperandDst,
		},
		{
			name:   "width out of range",
			mutate: func(f *fixture) { f.prog[2].Width = 65 },
			check:  verify.CheckWidth,
			instr:  2, operand: verify.OperandNone,
		},
		{
			name: "bounds overflow",
			mutate: func(f *fixture) {
				o := f.opt.Objects[5]
				o.Extents = []verify.Extent{{Bank: 0, Sub: 0, Row: 60, Rows: 8}} // rows [60,68) of 64
				f.opt.Objects[5] = o
			},
			check: verify.CheckBounds,
			instr: 4, operand: verify.OperandDst,
		},
		{
			name: "arity beyond encodable range",
			mutate: func(f *fixture) {
				f.prog[1].Op = isa.FromOp(ops.OpAndRed)
				f.prog[1].N = 5
			},
			check: verify.CheckArity,
			instr: 1, operand: verify.OperandNone,
		},
		{
			name: "N-ary operand count too small",
			mutate: func(f *fixture) {
				f.prog[1].Op = isa.FromOp(ops.OpAndRed)
				f.prog[1].N = 1
			},
			check: verify.CheckArity,
			instr: 1, operand: verify.OperandNone,
		},
		{
			name:   "non-operation opcode",
			mutate: func(f *fixture) { f.prog[2].Op = 2 },
			check:  verify.CheckOpcode,
			instr:  2, operand: verify.OperandNone,
		},
		{
			name:   "unregistered operation code",
			mutate: func(f *fixture) { f.prog[2].Op = isa.OpBase + 120 },
			check:  verify.CheckOpcode,
			instr:  2, operand: verify.OperandNone,
		},
		{
			name:   "unknown handle",
			mutate: func(f *fixture) { f.prog[2].Src[1] = 77 },
			check:  verify.CheckObject,
			instr:  2, operand: 1,
		},
		{
			name: "use before definition",
			mutate: func(f *fixture) {
				o := f.opt.Objects[2]
				o.Defined = false
				f.opt.Objects[2] = o
			},
			check: verify.CheckDefUse,
			instr: 1, operand: 1,
		},
		{
			name:   "in-place destination",
			mutate: func(f *fixture) { f.prog[3].Dst = 2 },
			check:  verify.CheckAlias,
			instr:  3, operand: 0,
			contains: "same object",
		},
		{
			name:   "zero-size instruction",
			mutate: func(f *fixture) { f.prog[1].Size = 0 },
			check:  verify.CheckEncoding,
			instr:  1, operand: verify.OperandNone,
		},
		{
			name:   "dependence edge not earlier",
			mutate: func(f *fixture) { f.opt.Deps = f.prog.Deps(); f.opt.Deps[1] = []int{3} },
			check:  verify.CheckDeps,
			instr:  1, operand: verify.OperandNone,
		},
		{
			name:   "dependence graph wrong length",
			mutate: func(f *fixture) { f.opt.Deps = f.prog.Deps()[:3] },
			check:  verify.CheckDeps,
			instr:  -1, operand: verify.OperandNone,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := base()
			tc.mutate(f)
			err := verify.Program(f.prog, f.opt)
			d := findDiag(t, err, tc.check, tc.instr, tc.operand, tc.contains)
			if got := d.Error(); !strings.HasPrefix(got, "verify: "+string(tc.check)) {
				t.Fatalf("diagnostic %q does not lead with its check", got)
			}
		})
	}
}

// TestDiagnosticsOrder pins that Diagnostics unpacks every joined
// failure and that multiple corruptions are all reported.
func TestDiagnosticsOrder(t *testing.T) {
	f := base()
	f.prog[1].Size = 0
	f.prog[2].Src[1] = 77
	err := verify.Program(f.prog, f.opt)
	ds := verify.Diagnostics(err)
	if len(ds) < 2 {
		t.Fatalf("want >= 2 diagnostics, got %d: %v", len(ds), err)
	}
	findDiag(t, err, verify.CheckEncoding, 1, verify.OperandNone, "")
	findDiag(t, err, verify.CheckObject, 2, 1, "")
}

// TestCustomOpVerifies pins that RegisterCustom operations are
// first-class verifier subjects: a registered custom op verifies
// clean, and an unencodable arity-4 custom op is rejected.
func TestCustomOpVerifies(t *testing.T) {
	code, err := ops.RegisterCustom(ops.Def{
		Name:     "verify_test_xnor",
		Arity:    2,
		DstWidth: func(w int) int { return w },
		Build:    func(w, n int) (*logic.Circuit, error) { return nil, nil },
		Golden:   func(args []uint64, w int) uint64 { return ^(args[0] ^ args[1]) },
	})
	if err != nil {
		t.Fatalf("RegisterCustom: %v", err)
	}
	f := base()
	f.prog[1].Op = isa.FromOp(code)
	if err := verify.Program(f.prog, f.opt); err != nil {
		t.Fatalf("custom op program: %v", err)
	}

	wide, err := ops.RegisterCustom(ops.Def{
		Name:     "verify_test_arity4",
		Arity:    4,
		DstWidth: func(w int) int { return w },
		Build:    func(w, n int) (*logic.Circuit, error) { return nil, nil },
		Golden:   func(args []uint64, w int) uint64 { return 0 },
	})
	if err != nil {
		t.Fatalf("RegisterCustom: %v", err)
	}
	f = base()
	f.prog[1].Op = isa.FromOp(wide)
	err = verify.Program(f.prog, f.opt)
	findDiag(t, err, verify.CheckArity, 1, verify.OperandNone, "encodable")
}
