// Package verify statically checks a compiled isa.Program (and,
// optionally, the object binding it will run against) before anything
// is issued to the control unit. The SIMDRAM lowering chain — graph
// DAG → isa.Program → ctrl batch plan → uprog.ResolvedStream — is
// otherwise only validated dynamically, so a miscompile (a slot-reuse
// WAR bug, a stale hazard edge, a width mismatch on a custom op)
// would surface as silently wrong results. The verifier turns those
// into typed, located compile-time diagnostics.
//
// Checks, in evaluation order:
//
//   - encoding: non-empty program, non-zero element counts
//   - deps: the supplied dependence graph is structurally sound
//     (one row per instruction, every edge points strictly earlier)
//   - opcode / arity / width: every instruction resolves against the
//     ops catalog (including RegisterCustom codes), its effective
//     arity is encodable, and operand widths match the operation's
//     signature
//   - object / def-use: every handle names a tracked object and no
//     source is read before something defines it
//   - alias: the destination's row extents are disjoint from every
//     source's (SIMDRAM μPrograms clobber scratch rows in the
//     destination's region, so in-place operation is never safe)
//   - bounds: every referenced row extent fits inside the subarray's
//     data-row region
//   - hazard: an independent recomputation of the RAW/WAW/WAR hazard
//     pairs, cross-checked against the dependence graph the scheduler
//     will use (isa.Program.Deps by default) — every hazard pair must
//     be ordered by some path of edges, so the scheduler can never
//     silently under-constrain
//
// All failures are reported together as an errors.Join of
// *Diagnostic values; use errors.As to recover the first one, or
// Diagnostics to recover them all.
package verify

import (
	"errors"
	"fmt"

	"simdram/internal/isa"
	"simdram/internal/ops"
)

// Check names one verifier check; every Diagnostic carries the check
// that produced it.
type Check string

// The verifier's checks.
const (
	CheckEncoding Check = "encoding" // program/instruction shape (empty program, zero size)
	CheckOpcode   Check = "opcode"   // opcode resolves against the ops catalog
	CheckArity    Check = "arity"    // effective operand count is encodable and sane
	CheckWidth    Check = "width"    // element widths match the operation signature
	CheckObject   Check = "object"   // every handle names a tracked object
	CheckDefUse   Check = "def-use"  // no source read before definition
	CheckAlias    Check = "alias"    // destination extents disjoint from sources
	CheckBounds   Check = "bounds"   // extents inside the subarray data-row region
	CheckDeps     Check = "deps"     // dependence graph structurally sound
	CheckHazard   Check = "hazard"   // every RAW/WAW/WAR pair ordered by the graph
)

// Operand values for Diagnostic.Operand beyond source indices 0..2.
const (
	// OperandNone marks a diagnostic about the whole instruction (or
	// the whole program, when Instr is negative).
	OperandNone = -2
	// OperandDst marks a diagnostic about the destination operand.
	OperandDst = -1
)

// Diagnostic is one located verifier failure: which check failed, on
// which instruction, on which operand, about which object handle.
type Diagnostic struct {
	Check   Check  // the check that failed
	Instr   int    // instruction index; -1 for program-level diagnostics
	Operand int    // source index 0..2, OperandDst, or OperandNone
	Handle  uint16 // the object handle involved, if any
	msg     string
}

// Error renders the diagnostic as
// "verify: <check>: instruction <i> [dst|src<k>]: <detail>".
func (d *Diagnostic) Error() string {
	loc := ""
	if d.Instr >= 0 {
		loc = fmt.Sprintf(": instruction %d", d.Instr)
		switch {
		case d.Operand == OperandDst:
			loc += " [dst]"
		case d.Operand >= 0:
			loc += fmt.Sprintf(" [src%d]", d.Operand)
		}
	}
	return fmt.Sprintf("verify: %s%s: %s", d.Check, loc, d.msg)
}

// Extent is one contiguous run of DRAM rows an object occupies within
// a (bank, subarray) pair: Rows rows starting at Row.
type Extent struct {
	Bank, Sub int
	Row, Rows int
}

// overlaps reports whether two extents share at least one row.
func (e Extent) overlaps(o Extent) bool {
	return e.Bank == o.Bank && e.Sub == o.Sub &&
		e.Row < o.Row+o.Rows && o.Row < e.Row+e.Rows
}

// Object describes what the verifier knows about one handle's
// backing object.
type Object struct {
	// Width is the object's element width in bits.
	Width int
	// Defined reports whether the object holds data before the program
	// runs (stored input, splatted constant). Undefined objects must be
	// written by an earlier instruction before anything reads them.
	Defined bool
	// Extents are the row ranges the object occupies; nil skips the
	// alias and bounds checks for this handle.
	Extents []Extent
}

// Options configures Program.
type Options struct {
	// Objects maps instruction handles to their backing objects. Nil
	// skips every binding-dependent check (object, def-use, width
	// against the binding, alias, bounds); the encoding, opcode,
	// arity, deps, and hazard checks still run.
	Objects map[uint16]Object
	// DataRows is the number of data rows per subarray; 0 skips the
	// bounds check.
	DataRows int
	// Deps is the dependence graph the scheduler will execute with.
	// Nil makes the verifier compute isa.Program.Deps itself — that is
	// the cross-check mode: the recomputed hazard pairs are validated
	// against the exact graph the batched engine uses.
	Deps [][]int
}

// Diagnostics unpacks every *Diagnostic joined into err, in the order
// the verifier found them. Nil for a nil error.
func Diagnostics(err error) []*Diagnostic {
	if err == nil {
		return nil
	}
	type unwrapper interface{ Unwrap() []error }
	var out []*Diagnostic
	var walk func(error)
	walk = func(e error) {
		if u, ok := e.(unwrapper); ok {
			for _, sub := range u.Unwrap() {
				walk(sub)
			}
			return
		}
		var d *Diagnostic
		if errors.As(e, &d) {
			out = append(out, d)
		}
	}
	walk(err)
	return out
}

// Program verifies p against opt and returns every failure joined
// into one error (nil when the program verifies clean).
func Program(p isa.Program, opt Options) error {
	var diags []error
	report := func(check Check, instr, operand int, handle uint16, format string, args ...any) {
		diags = append(diags, &Diagnostic{
			Check:   check,
			Instr:   instr,
			Operand: operand,
			Handle:  handle,
			msg:     fmt.Sprintf(format, args...),
		})
	}

	if len(p) == 0 {
		report(CheckEncoding, -1, OperandNone, 0, "empty program")
		return errors.Join(diags...)
	}

	deps := opt.Deps
	if deps == nil {
		deps = p.Deps()
	}
	depsOK := true
	if len(deps) != len(p) {
		report(CheckDeps, -1, OperandNone, 0,
			"dependence graph has %d rows for %d instructions", len(deps), len(p))
		depsOK = false
	} else {
		for i, row := range deps {
			for _, d := range row {
				if d < 0 || d >= i {
					report(CheckDeps, i, OperandNone, 0,
						"edge to instruction %d does not point strictly earlier", d)
					depsOK = false
				}
			}
		}
	}

	touches := map[uint16][]access{}
	written := map[uint16]bool{} // handles written by instructions already scanned

	checkBounds := func(i, operand int, h uint16, obj Object) {
		if opt.DataRows <= 0 {
			return
		}
		for _, e := range obj.Extents {
			if e.Row < 0 || e.Rows < 0 || e.Row+e.Rows > opt.DataRows {
				report(CheckBounds, i, operand, h,
					"object %d rows [%d,%d) outside the %d-row data region of bank %d subarray %d",
					h, e.Row, e.Row+e.Rows, opt.DataRows, e.Bank, e.Sub)
				return
			}
		}
	}

	for i, in := range p {
		if in.Width < 1 || in.Width > 64 {
			report(CheckWidth, i, OperandNone, 0, "element width %d out of range [1,64]", in.Width)
		}
		if in.Size == 0 {
			report(CheckEncoding, i, OperandNone, 0, "zero-size instruction")
		}
		if in.Op == isa.OpTrspInit {
			h := in.Src[0]
			if opt.Objects != nil {
				obj, ok := opt.Objects[h]
				if !ok {
					report(CheckObject, i, 0, h, "handle %d names no tracked object", h)
				} else {
					checkBounds(i, 0, h, obj)
				}
			}
			touches[h] = append(touches[h], access{instr: i, operand: 0})
			continue
		}
		if !in.Op.IsOperation() {
			report(CheckOpcode, i, OperandNone, 0,
				"opcode %d is neither bbop_trsp_init nor an operation", in.Op)
			continue
		}
		code, _ := in.Op.ToOp()
		def, err := ops.ByCode(code)
		if err != nil {
			report(CheckOpcode, i, OperandNone, 0,
				"opcode %d names no registered operation", in.Op)
			continue
		}
		if def.Arity < 0 && in.N < 2 {
			report(CheckArity, i, OperandNone, 0,
				"N-ary operation %s needs N >= 2, have N=%d", def.Name, in.N)
			continue
		}
		arity := def.EffArity(int(in.N))
		if arity < 1 || arity > 3 {
			report(CheckArity, i, OperandNone, 0,
				"operation %s has effective arity %d, the encodable range is [1,3]", def.Name, arity)
			continue
		}

		w := int(in.Width)
		wantDst := def.DstWidth(w)
		srcWs := def.SourceWidths(w, arity)

		var dstObj Object
		dstKnown := false
		if opt.Objects != nil {
			var ok bool
			if dstObj, ok = opt.Objects[in.Dst]; !ok {
				report(CheckObject, i, OperandDst, in.Dst, "handle %d names no tracked object", in.Dst)
			} else {
				dstKnown = true
				if dstObj.Width != wantDst {
					report(CheckWidth, i, OperandDst, in.Dst,
						"destination is %d bits wide, operation %s produces %d-bit elements from %d-bit sources",
						dstObj.Width, def.Name, wantDst, w)
				}
				checkBounds(i, OperandDst, in.Dst, dstObj)
			}
		}
		for k := 0; k < arity; k++ {
			h := in.Src[k]
			touches[h] = append(touches[h], access{instr: i, operand: k})
			if opt.Objects == nil {
				continue
			}
			obj, ok := opt.Objects[h]
			if !ok {
				report(CheckObject, i, k, h, "handle %d names no tracked object", h)
				continue
			}
			if k < len(srcWs) && obj.Width != srcWs[k] {
				report(CheckWidth, i, k, h,
					"source is %d bits wide, operation %s wants a %d-bit operand here",
					obj.Width, def.Name, srcWs[k])
			}
			if !obj.Defined && !written[h] {
				report(CheckDefUse, i, k, h,
					"reads object %d before any instruction defines it", h)
			}
			checkBounds(i, k, h, obj)
			if h == in.Dst {
				report(CheckAlias, i, k, h,
					"destination and source are the same object %d; SIMDRAM operations are never in-place", h)
			} else if dstKnown {
				for _, de := range dstObj.Extents {
					for _, se := range obj.Extents {
						if de.overlaps(se) {
							report(CheckAlias, i, k, h,
								"destination object %d rows [%d,%d) overlap source object %d rows [%d,%d) in bank %d subarray %d",
								in.Dst, de.Row, de.Row+de.Rows, h, se.Row, se.Row+se.Rows, de.Bank, de.Sub)
						}
					}
				}
			}
		}
		touches[in.Dst] = append(touches[in.Dst], access{instr: i, operand: OperandDst, write: true})
		written[in.Dst] = true
	}

	if depsOK {
		checkHazards(p, deps, touches, report)
	}
	return errors.Join(diags...)
}

// checkHazards replays every handle's access sequence, derives the
// RAW/WAW/WAR hazard pairs exactly as isa.Program.Deps defines them
// (against the last writer and the readers since it), and requires
// each pair to be ordered by a path of edges in deps. Reachability is
// precomputed as per-instruction ancestor bitsets — valid because
// every edge points strictly earlier (checked by the caller).
func checkHazards(p isa.Program, deps [][]int,
	touches map[uint16][]access, report reportFunc) {
	n := len(p)
	words := (n + 63) / 64
	anc := make([]uint64, n*words)
	for i := 0; i < n; i++ {
		row := anc[i*words : (i+1)*words]
		for _, d := range deps[i] {
			drow := anc[d*words : (d+1)*words]
			for w := range row {
				row[w] |= drow[w]
			}
			row[d/64] |= 1 << (d % 64)
		}
	}
	ordered := func(earlier, later int) bool {
		return anc[later*words+earlier/64]&(1<<(earlier%64)) != 0
	}

	for h, accs := range touches {
		lastWrite := -1
		var readersSince []access
		for _, a := range accs {
			if !a.write {
				if lastWrite >= 0 && lastWrite != a.instr && !ordered(lastWrite, a.instr) {
					report(CheckHazard, a.instr, a.operand, h,
						"read-after-write hazard on object %d: no dependence path orders this after instruction %d",
						h, lastWrite)
				}
				readersSince = append(readersSince, a)
				continue
			}
			if lastWrite >= 0 && lastWrite != a.instr && !ordered(lastWrite, a.instr) {
				report(CheckHazard, a.instr, a.operand, h,
					"write-after-write hazard on object %d: no dependence path orders this after instruction %d",
					h, lastWrite)
			}
			for _, r := range readersSince {
				if r.instr != a.instr && !ordered(r.instr, a.instr) {
					report(CheckHazard, a.instr, a.operand, h,
						"write-after-read hazard on object %d: no dependence path orders this after the read at instruction %d",
						h, r.instr)
				}
			}
			lastWrite = a.instr
			readersSince = readersSince[:0]
		}
	}
}

// access records one handle touch (the instruction, the operand slot,
// read or write) for the hazard recomputation.
type access struct {
	instr   int
	operand int
	write   bool
}

type reportFunc func(check Check, instr, operand int, handle uint16, format string, args ...any)
