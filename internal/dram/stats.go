package dram

import "fmt"

// Stats accumulates command counts and energy for a subarray or a whole
// module. Counts are functional ground truth; latency is derived from
// counts by the control unit, which knows how commands overlap across
// banks.
type Stats struct {
	AAPs       int64
	APs        int64
	MajCopies  int64 // Ambit-style fused TRA-then-copy commands
	Activates  int64
	Precharges int64
	HostReads  int64
	HostWrites int64
	EnergyPJ   float64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.AAPs += other.AAPs
	s.APs += other.APs
	s.MajCopies += other.MajCopies
	s.Activates += other.Activates
	s.Precharges += other.Precharges
	s.HostReads += other.HostReads
	s.HostWrites += other.HostWrites
	s.EnergyPJ += other.EnergyPJ
}

// Sub returns s minus other (for interval measurements).
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		AAPs:       s.AAPs - other.AAPs,
		APs:        s.APs - other.APs,
		MajCopies:  s.MajCopies - other.MajCopies,
		Activates:  s.Activates - other.Activates,
		Precharges: s.Precharges - other.Precharges,
		HostReads:  s.HostReads - other.HostReads,
		HostWrites: s.HostWrites - other.HostWrites,
		EnergyPJ:   s.EnergyPJ - other.EnergyPJ,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("stats{aap=%d ap=%d majcopy=%d act=%d pre=%d rd=%d wr=%d energy=%.1fnJ}",
		s.AAPs, s.APs, s.MajCopies, s.Activates, s.Precharges, s.HostReads, s.HostWrites, s.EnergyPJ/1000)
}

// Module is a DRAM device: Banks × SubarraysPerBank subarrays.
type Module struct {
	cfg   Config
	banks [][]*Subarray
}

// NewModule allocates a module per cfg.
func NewModule(cfg Config) (*Module, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Module{cfg: cfg}
	m.banks = make([][]*Subarray, cfg.Banks)
	for b := range m.banks {
		m.banks[b] = make([]*Subarray, cfg.SubarraysPerBank)
		for s := range m.banks[b] {
			m.banks[b][s] = NewSubarray(&m.cfg)
		}
	}
	return m, nil
}

// Config returns the module configuration.
func (m *Module) Config() Config { return m.cfg }

// Subarray returns the subarray at (bank, index).
func (m *Module) Subarray(bank, idx int) *Subarray {
	return m.banks[bank][idx]
}

// NumBanks returns the bank count.
func (m *Module) NumBanks() int { return len(m.banks) }

// SubarraysPerBank returns subarrays per bank.
func (m *Module) SubarraysPerBank() int { return len(m.banks[0]) }

// Stats sums statistics across all subarrays.
func (m *Module) Stats() Stats {
	var total Stats
	for _, bank := range m.banks {
		for _, sa := range bank {
			total.Add(sa.Stats)
		}
	}
	return total
}

// ResetStats zeroes all subarray statistics.
func (m *Module) ResetStats() {
	for _, bank := range m.banks {
		for _, sa := range bank {
			sa.Stats = Stats{}
		}
	}
}
