package dram

import "fmt"

// Subarray is one DRAM subarray: a grid of rows × bitlines with sense
// amplifiers, a compute region of designated rows, and bit-exact command
// semantics. Each bitline is one SIMD lane.
//
// Row address map (data rows first, compute region at the top):
//
//	0 .. DataRows-1          operand and scratch rows
//	DataRows + i             T rows (triple-row-activatable), i < NumTRows
//	.. then                  DCC0, DCC0N, DCC1, DCC1N, ...
//	.. then                  C0 (all zeros), C1 (all ones)
type Subarray struct {
	cfg  *Config
	rows [][]uint64

	// scratch is the row buffer AAP and MajCopy stage their sense-amp
	// value in — allocated once per subarray so the command hot loop
	// performs no per-call allocation. Commands on one subarray are
	// serial (the ctrl scheduler guarantees it), so one buffer suffices.
	scratch []uint64

	// open tracks the activated row for the timing state machine; -1 when
	// the subarray is precharged.
	open int

	Stats Stats

	// OnCommand, when set, observes every DRAM command the subarray
	// executes (command tracing, RowHammer monitoring, debuggers).
	OnCommand func(Command)
}

// CommandKind labels a traced DRAM command.
type CommandKind uint8

// Traced command kinds.
const (
	CmdAAP CommandKind = iota
	CmdAP
	CmdMajCopy
	CmdHostRead
	CmdHostWrite
)

func (k CommandKind) String() string {
	switch k {
	case CmdAAP:
		return "AAP"
	case CmdAP:
		return "AP"
	case CmdMajCopy:
		return "MAJCOPY"
	case CmdHostRead:
		return "RD"
	case CmdHostWrite:
		return "WR"
	default:
		return fmt.Sprintf("CMD(%d)", uint8(k))
	}
}

// Command is one traced DRAM command with physical row addresses.
type Command struct {
	Kind CommandKind
	Src  int    // AAP source / host row; -1 otherwise
	T    [3]int // AP/MajCopy TRA rows
	Dsts [3]int // AAP/MajCopy destinations
	NDst int
}

func (s *Subarray) trace(c Command) {
	if s.OnCommand != nil {
		s.OnCommand(c)
	}
}

// AddCommandHook subscribes fn to the subarray's command stream without
// displacing an existing OnCommand hook: if one is already installed,
// the two are composed and both observe every command, in installation
// order. This is how independent observers (the command-trace log, obs
// counters, RowHammer monitors) coexist on one subarray. A nil fn is
// ignored. Not safe to call concurrently with command execution.
func (s *Subarray) AddCommandHook(fn func(Command)) {
	if fn == nil {
		return
	}
	if prev := s.OnCommand; prev != nil {
		s.OnCommand = func(c Command) {
			prev(c)
			fn(c)
		}
		return
	}
	s.OnCommand = fn
}

// NewSubarray allocates a subarray per cfg, with control rows initialized.
func NewSubarray(cfg *Config) *Subarray {
	words := cfg.WordsPerRow()
	rows := make([][]uint64, cfg.RowsPerSubarray)
	backing := make([]uint64, cfg.RowsPerSubarray*words)
	for i := range rows {
		rows[i] = backing[i*words : (i+1)*words : (i+1)*words]
	}
	s := &Subarray{cfg: cfg, rows: rows, scratch: make([]uint64, words), open: -1}
	for i := range s.rows[s.C1Row()] {
		s.rows[s.C1Row()][i] = ^uint64(0)
	}
	return s
}

// TRow returns the physical row index of designated compute row T[i].
func (s *Subarray) TRow(i int) int { return s.cfg.TRow(i) }

// DCCRow returns the physical row of dual-contact cell pair i's true row.
// Writing this row also makes the complement readable via DCCNRow(i).
func (s *Subarray) DCCRow(i int) int { return s.cfg.DCCRow(i) }

// DCCNRow returns the complement row of dual-contact cell pair i.
func (s *Subarray) DCCNRow(i int) int { return s.cfg.DCCNRow(i) }

// C0Row returns the all-zeros control row.
func (s *Subarray) C0Row() int { return s.cfg.C0Row() }

// C1Row returns the all-ones control row.
func (s *Subarray) C1Row() int { return s.cfg.C1Row() }

// isDCC reports whether row belongs to a DCC pair, returning the pair
// index and whether it is the complement row.
func (s *Subarray) isDCC(row int) (pair int, isN bool, ok bool) {
	base := s.cfg.DataRows() + s.cfg.NumTRows
	if row < base || row >= base+2*s.cfg.NumDCCPairs {
		return 0, false, false
	}
	off := row - base
	return off / 2, off%2 == 1, true
}

func (s *Subarray) checkRow(row int) {
	if row < 0 || row >= s.cfg.RowsPerSubarray {
		panic(fmt.Sprintf("dram: row %d out of range [0,%d)", row, s.cfg.RowsPerSubarray))
	}
}

// ReadRow returns a copy of the row contents via a normal host access.
func (s *Subarray) ReadRow(row int) []uint64 {
	out := make([]uint64, s.cfg.WordsPerRow())
	s.ReadRowInto(row, out)
	return out
}

// ReadRowInto is ReadRow into caller-provided storage — the
// allocation-free variant bulk gather paths reuse one buffer with. dst
// must hold exactly WordsPerRow words.
//
//simdram:zeroalloc
func (s *Subarray) ReadRowInto(row int, dst []uint64) {
	s.checkRow(row)
	if len(dst) != s.cfg.WordsPerRow() {
		panic(fmt.Sprintf("dram: ReadRowInto: want %d words, have %d", s.cfg.WordsPerRow(), len(dst)))
	}
	s.Stats.HostReads++
	s.Stats.EnergyPJ += s.cfg.Energy.RdPJ
	if s.OnCommand != nil {
		s.trace(Command{Kind: CmdHostRead, Src: row})
	}
	copy(dst, s.rows[row])
}

// WriteRow overwrites the row contents via a normal host access. Writing
// a DCC row updates its complement row (dual-contact cells expose both
// the true and negated bitline of the same cells).
func (s *Subarray) WriteRow(row int, data []uint64) {
	s.checkRow(row)
	if len(data) != s.cfg.WordsPerRow() {
		panic(fmt.Sprintf("dram: WriteRow: want %d words, have %d", s.cfg.WordsPerRow(), len(data)))
	}
	s.Stats.HostWrites++
	s.Stats.EnergyPJ += s.cfg.Energy.WrPJ
	if s.OnCommand != nil {
		s.trace(Command{Kind: CmdHostWrite, Src: row})
	}
	s.storeRow(row, data)
}

// Peek returns a copy of the row contents without modeling a command
// (test/debug).
func (s *Subarray) Peek(row int) []uint64 {
	return append([]uint64(nil), s.PeekRow(row)...)
}

// PeekRow returns the row's backing storage without copying or
// accounting — the copy-free variant of Peek. The slice aliases live
// subarray state: treat it as read-only and do not hold it across
// commands that may rewrite the row.
func (s *Subarray) PeekRow(row int) []uint64 {
	s.checkRow(row)
	return s.rows[row]
}

// Poke sets row contents without modeling a command (test/debug). DCC
// pairing is still honored.
func (s *Subarray) Poke(row int, data []uint64) {
	s.checkRow(row)
	s.storeRow(row, data)
}

// storeRow writes data into row, mirroring complements into DCC pairs.
func (s *Subarray) storeRow(row int, data []uint64) {
	if row == s.C0Row() || row == s.C1Row() {
		panic("dram: control rows are read-only")
	}
	copy(s.rows[row], data)
	if pair, isN, ok := s.isDCC(row); ok {
		var other int
		if isN {
			other = s.DCCRow(pair)
		} else {
			other = s.DCCNRow(pair)
		}
		for i, w := range data {
			s.rows[other][i] = ^w
		}
	}
}

// AAP executes ACTIVATE(src) → ACTIVATE(dst group) → PRECHARGE, copying
// the source row into every destination row. Destinations must either be
// a single row anywhere or a group of 2-3 rows inside the compute region
// (the special row decoder only supports multi-activation there).
//
//simdram:zeroalloc
func (s *Subarray) AAP(src int, dsts ...int) {
	s.checkRow(src)
	if len(dsts) == 0 || len(dsts) > 3 {
		panic(fmt.Sprintf("dram: AAP needs 1-3 destination rows, have %d", len(dsts)))
	}
	if len(dsts) > 1 {
		for _, d := range dsts {
			if d < s.cfg.DataRows() {
				panic(fmt.Sprintf("dram: multi-row AAP destination %d outside the compute region", d))
			}
		}
	}
	// First activation latches src into the sense amplifiers (modeled by
	// the pooled scratch buffer); the second activation connects the
	// destination cells, overwriting them with the latched value. The
	// snapshot matters: a destination that is the source's DCC partner
	// must not feed back into later destinations of the same command.
	copy(s.scratch, s.rows[src])
	for _, d := range dsts {
		s.checkRow(d)
		s.storeRow(d, s.scratch)
	}
	s.open = -1
	s.Stats.AAPs++
	s.Stats.Activates += 2
	s.Stats.Precharges++
	s.Stats.EnergyPJ += s.cfg.Energy.AAPEnergy(len(dsts))
	if s.OnCommand != nil {
		c := Command{Kind: CmdAAP, Src: src, NDst: len(dsts)}
		copy(c.Dsts[:], dsts)
		s.trace(c)
	}
}

// AP executes a triple-row activation followed by precharge: the three
// rows charge-share on the bitlines, the sense amplifiers resolve the
// bitwise majority, and the restored value is written back into all three
// rows. All rows must be T rows of the compute region.
//
//simdram:zeroalloc
func (s *Subarray) AP(r0, r1, r2 int) {
	for _, r := range [3]int{r0, r1, r2} {
		if r < s.cfg.DataRows() || r >= s.cfg.DataRows()+s.cfg.NumTRows {
			panic(fmt.Sprintf("dram: AP row %d is not a T row", r))
		}
	}
	if r0 == r1 || r0 == r2 || r1 == r2 {
		panic("dram: AP rows must be distinct")
	}
	// The restored rows already hold the majority, so the kernel can use
	// one of them as its output.
	majRestoreInto(s.rows[r0], s.rows[r1], s.rows[r2], s.rows[r0])
	s.open = -1
	s.Stats.APs++
	s.Stats.Activates++
	s.Stats.Precharges++
	s.Stats.EnergyPJ += s.cfg.Energy.APEnergy()
	if s.OnCommand != nil {
		s.trace(Command{Kind: CmdAP, Src: -1, T: [3]int{r0, r1, r2}})
	}
}

// majRestoreInto models a triple-row activation's charge sharing: the
// sense amplifiers resolve the bitwise majority of rows a, b, c and
// restore it into all three, and the resolved value is also recorded in
// out (the row-buffer content a fused copy reads). Passing one of the
// input rows as out is allowed.
func majRestoreInto(a, b, c, out []uint64) {
	for i := range a {
		m := (a[i] & b[i]) | (a[i] & c[i]) | (b[i] & c[i])
		a[i], b[i], c[i] = m, m, m
		out[i] = m
	}
}

// MajCopy executes Ambit's fused compute-and-copy: ACTIVATE the TRA
// group (sense amplifiers resolve the majority, restored into the three
// T rows), then ACTIVATE the destination rows (overwriting them with the
// row-buffer value), then PRECHARGE. This is the 4th AAP of Ambit's
// canonical AND/OR sequence (AAP src1; AAP src2; AAP control; AAP
// TRA→dst). Latency matches an AAP.
//
//simdram:zeroalloc
func (s *Subarray) MajCopy(r0, r1, r2 int, dsts ...int) {
	for _, r := range [3]int{r0, r1, r2} {
		if r < s.cfg.DataRows() || r >= s.cfg.DataRows()+s.cfg.NumTRows {
			panic(fmt.Sprintf("dram: MajCopy row %d is not a T row", r))
		}
	}
	if r0 == r1 || r0 == r2 || r1 == r2 {
		panic("dram: MajCopy rows must be distinct")
	}
	if len(dsts) == 0 || len(dsts) > 3 {
		panic(fmt.Sprintf("dram: MajCopy needs 1-3 destination rows, have %d", len(dsts)))
	}
	// The scratch buffer holds the row-buffer value between the TRA and
	// the destination activation: T rows are never DCC-paired, but the
	// same snapshot discipline as AAP keeps the copy well-defined.
	majRestoreInto(s.rows[r0], s.rows[r1], s.rows[r2], s.scratch)
	for _, d := range dsts {
		s.checkRow(d)
		s.storeRow(d, s.scratch)
	}
	s.open = -1
	s.Stats.MajCopies++
	s.Stats.Activates += 2
	s.Stats.Precharges++
	s.Stats.EnergyPJ += s.cfg.Energy.MajCopyEnergy()
	if s.OnCommand != nil {
		c := Command{Kind: CmdMajCopy, Src: -1, T: [3]int{r0, r1, r2}, NDst: len(dsts)}
		copy(c.Dsts[:], dsts)
		s.trace(c)
	}
}

// InjectBitFlips XORs mask into the given row without any accounting —
// the fault-injection hook used by reliability tests.
func (s *Subarray) InjectBitFlips(row int, mask []uint64) {
	s.checkRow(row)
	for i := range mask {
		if i < len(s.rows[row]) {
			s.rows[row][i] ^= mask[i]
		}
	}
}

// Config returns the subarray's configuration.
func (s *Subarray) Config() *Config { return s.cfg }
