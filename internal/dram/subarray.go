package dram

import "fmt"

// Subarray is one DRAM subarray: a grid of rows × bitlines with sense
// amplifiers, a compute region of designated rows, and bit-exact command
// semantics. Each bitline is one SIMD lane.
//
// Row address map (data rows first, compute region at the top):
//
//	0 .. DataRows-1          operand and scratch rows
//	DataRows + i             T rows (triple-row-activatable), i < NumTRows
//	.. then                  DCC0, DCC0N, DCC1, DCC1N, ...
//	.. then                  C0 (all zeros), C1 (all ones)
type Subarray struct {
	cfg  *Config
	rows [][]uint64

	// open tracks the activated row for the timing state machine; -1 when
	// the subarray is precharged.
	open int

	Stats Stats

	// OnCommand, when set, observes every DRAM command the subarray
	// executes (command tracing, RowHammer monitoring, debuggers).
	OnCommand func(Command)
}

// CommandKind labels a traced DRAM command.
type CommandKind uint8

// Traced command kinds.
const (
	CmdAAP CommandKind = iota
	CmdAP
	CmdMajCopy
	CmdHostRead
	CmdHostWrite
)

func (k CommandKind) String() string {
	switch k {
	case CmdAAP:
		return "AAP"
	case CmdAP:
		return "AP"
	case CmdMajCopy:
		return "MAJCOPY"
	case CmdHostRead:
		return "RD"
	case CmdHostWrite:
		return "WR"
	default:
		return fmt.Sprintf("CMD(%d)", uint8(k))
	}
}

// Command is one traced DRAM command with physical row addresses.
type Command struct {
	Kind CommandKind
	Src  int    // AAP source / host row; -1 otherwise
	T    [3]int // AP/MajCopy TRA rows
	Dsts [3]int // AAP/MajCopy destinations
	NDst int
}

func (s *Subarray) trace(c Command) {
	if s.OnCommand != nil {
		s.OnCommand(c)
	}
}

// NewSubarray allocates a subarray per cfg, with control rows initialized.
func NewSubarray(cfg *Config) *Subarray {
	words := cfg.WordsPerRow()
	rows := make([][]uint64, cfg.RowsPerSubarray)
	backing := make([]uint64, cfg.RowsPerSubarray*words)
	for i := range rows {
		rows[i] = backing[i*words : (i+1)*words : (i+1)*words]
	}
	s := &Subarray{cfg: cfg, rows: rows, open: -1}
	for i := range s.rows[s.C1Row()] {
		s.rows[s.C1Row()][i] = ^uint64(0)
	}
	return s
}

// TRow returns the physical row index of designated compute row T[i].
func (s *Subarray) TRow(i int) int {
	if i < 0 || i >= s.cfg.NumTRows {
		panic(fmt.Sprintf("dram: T row %d out of range [0,%d)", i, s.cfg.NumTRows))
	}
	return s.cfg.DataRows() + i
}

// DCCRow returns the physical row of dual-contact cell pair i's true row.
// Writing this row also makes the complement readable via DCCNRow(i).
func (s *Subarray) DCCRow(i int) int {
	if i < 0 || i >= s.cfg.NumDCCPairs {
		panic(fmt.Sprintf("dram: DCC pair %d out of range [0,%d)", i, s.cfg.NumDCCPairs))
	}
	return s.cfg.DataRows() + s.cfg.NumTRows + 2*i
}

// DCCNRow returns the complement row of dual-contact cell pair i.
func (s *Subarray) DCCNRow(i int) int { return s.DCCRow(i) + 1 }

// C0Row returns the all-zeros control row.
func (s *Subarray) C0Row() int { return s.cfg.RowsPerSubarray - 2 }

// C1Row returns the all-ones control row.
func (s *Subarray) C1Row() int { return s.cfg.RowsPerSubarray - 1 }

// isDCC reports whether row belongs to a DCC pair, returning the pair
// index and whether it is the complement row.
func (s *Subarray) isDCC(row int) (pair int, isN bool, ok bool) {
	base := s.cfg.DataRows() + s.cfg.NumTRows
	if row < base || row >= base+2*s.cfg.NumDCCPairs {
		return 0, false, false
	}
	off := row - base
	return off / 2, off%2 == 1, true
}

func (s *Subarray) checkRow(row int) {
	if row < 0 || row >= s.cfg.RowsPerSubarray {
		panic(fmt.Sprintf("dram: row %d out of range [0,%d)", row, s.cfg.RowsPerSubarray))
	}
}

// ReadRow returns a copy of the row contents via a normal host access.
func (s *Subarray) ReadRow(row int) []uint64 {
	s.checkRow(row)
	s.Stats.HostReads++
	s.Stats.EnergyPJ += s.cfg.Energy.RdPJ
	s.trace(Command{Kind: CmdHostRead, Src: row})
	out := make([]uint64, len(s.rows[row]))
	copy(out, s.rows[row])
	return out
}

// WriteRow overwrites the row contents via a normal host access. Writing
// a DCC row updates its complement row (dual-contact cells expose both
// the true and negated bitline of the same cells).
func (s *Subarray) WriteRow(row int, data []uint64) {
	s.checkRow(row)
	if len(data) != s.cfg.WordsPerRow() {
		panic(fmt.Sprintf("dram: WriteRow: want %d words, have %d", s.cfg.WordsPerRow(), len(data)))
	}
	s.Stats.HostWrites++
	s.Stats.EnergyPJ += s.cfg.Energy.WrPJ
	s.trace(Command{Kind: CmdHostWrite, Src: row})
	s.storeRow(row, data)
}

// Peek returns the row contents without modeling a command (test/debug).
func (s *Subarray) Peek(row int) []uint64 {
	s.checkRow(row)
	out := make([]uint64, len(s.rows[row]))
	copy(out, s.rows[row])
	return out
}

// Poke sets row contents without modeling a command (test/debug). DCC
// pairing is still honored.
func (s *Subarray) Poke(row int, data []uint64) {
	s.checkRow(row)
	s.storeRow(row, data)
}

// storeRow writes data into row, mirroring complements into DCC pairs.
func (s *Subarray) storeRow(row int, data []uint64) {
	if row == s.C0Row() || row == s.C1Row() {
		panic("dram: control rows are read-only")
	}
	copy(s.rows[row], data)
	if pair, isN, ok := s.isDCC(row); ok {
		var other int
		if isN {
			other = s.DCCRow(pair)
		} else {
			other = s.DCCNRow(pair)
		}
		for i, w := range data {
			s.rows[other][i] = ^w
		}
	}
}

// AAP executes ACTIVATE(src) → ACTIVATE(dst group) → PRECHARGE, copying
// the source row into every destination row. Destinations must either be
// a single row anywhere or a group of 2-3 rows inside the compute region
// (the special row decoder only supports multi-activation there).
func (s *Subarray) AAP(src int, dsts ...int) {
	s.checkRow(src)
	if len(dsts) == 0 || len(dsts) > 3 {
		panic(fmt.Sprintf("dram: AAP needs 1-3 destination rows, have %d", len(dsts)))
	}
	if len(dsts) > 1 {
		for _, d := range dsts {
			if d < s.cfg.DataRows() {
				panic(fmt.Sprintf("dram: multi-row AAP destination %d outside the compute region", d))
			}
		}
	}
	// First activation latches src into the sense amplifiers; the second
	// activation connects the destination cells, overwriting them with the
	// latched value.
	buf := s.rows[src]
	tmp := make([]uint64, len(buf))
	copy(tmp, buf)
	for _, d := range dsts {
		s.checkRow(d)
		s.storeRow(d, tmp)
	}
	s.open = -1
	s.Stats.AAPs++
	s.Stats.Activates += 2
	s.Stats.Precharges++
	s.Stats.EnergyPJ += s.cfg.Energy.AAPEnergy(len(dsts))
	if s.OnCommand != nil {
		c := Command{Kind: CmdAAP, Src: src, NDst: len(dsts)}
		copy(c.Dsts[:], dsts)
		s.trace(c)
	}
}

// AP executes a triple-row activation followed by precharge: the three
// rows charge-share on the bitlines, the sense amplifiers resolve the
// bitwise majority, and the restored value is written back into all three
// rows. All rows must be T rows of the compute region.
func (s *Subarray) AP(r0, r1, r2 int) {
	for _, r := range [3]int{r0, r1, r2} {
		if r < s.cfg.DataRows() || r >= s.cfg.DataRows()+s.cfg.NumTRows {
			panic(fmt.Sprintf("dram: AP row %d is not a T row", r))
		}
	}
	if r0 == r1 || r0 == r2 || r1 == r2 {
		panic("dram: AP rows must be distinct")
	}
	a, b, c := s.rows[r0], s.rows[r1], s.rows[r2]
	for i := range a {
		m := (a[i] & b[i]) | (a[i] & c[i]) | (b[i] & c[i])
		a[i], b[i], c[i] = m, m, m
	}
	s.open = -1
	s.Stats.APs++
	s.Stats.Activates++
	s.Stats.Precharges++
	s.Stats.EnergyPJ += s.cfg.Energy.APEnergy()
	s.trace(Command{Kind: CmdAP, Src: -1, T: [3]int{r0, r1, r2}})
}

// MajCopy executes Ambit's fused compute-and-copy: ACTIVATE the TRA
// group (sense amplifiers resolve the majority, restored into the three
// T rows), then ACTIVATE the destination rows (overwriting them with the
// row-buffer value), then PRECHARGE. This is the 4th AAP of Ambit's
// canonical AND/OR sequence (AAP src1; AAP src2; AAP control; AAP
// TRA→dst). Latency matches an AAP.
func (s *Subarray) MajCopy(r0, r1, r2 int, dsts ...int) {
	for _, r := range [3]int{r0, r1, r2} {
		if r < s.cfg.DataRows() || r >= s.cfg.DataRows()+s.cfg.NumTRows {
			panic(fmt.Sprintf("dram: MajCopy row %d is not a T row", r))
		}
	}
	if r0 == r1 || r0 == r2 || r1 == r2 {
		panic("dram: MajCopy rows must be distinct")
	}
	if len(dsts) == 0 || len(dsts) > 3 {
		panic(fmt.Sprintf("dram: MajCopy needs 1-3 destination rows, have %d", len(dsts)))
	}
	a, b, c := s.rows[r0], s.rows[r1], s.rows[r2]
	maj := make([]uint64, len(a))
	for i := range a {
		m := (a[i] & b[i]) | (a[i] & c[i]) | (b[i] & c[i])
		a[i], b[i], c[i] = m, m, m
		maj[i] = m
	}
	for _, d := range dsts {
		s.checkRow(d)
		s.storeRow(d, maj)
	}
	s.open = -1
	s.Stats.MajCopies++
	s.Stats.Activates += 2
	s.Stats.Precharges++
	s.Stats.EnergyPJ += s.cfg.Energy.MajCopyEnergy()
	if s.OnCommand != nil {
		c := Command{Kind: CmdMajCopy, Src: -1, T: [3]int{r0, r1, r2}, NDst: len(dsts)}
		copy(c.Dsts[:], dsts)
		s.trace(c)
	}
}

// InjectBitFlips XORs mask into the given row without any accounting —
// the fault-injection hook used by reliability tests.
func (s *Subarray) InjectBitFlips(row int, mask []uint64) {
	s.checkRow(row)
	for i := range mask {
		if i < len(s.rows[row]) {
			s.rows[row][i] ^= mask[i]
		}
	}
}

// Config returns the subarray's configuration.
func (s *Subarray) Config() *Config { return s.cfg }
