package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testSubarray(t *testing.T) *Subarray {
	t.Helper()
	cfg := TestConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return NewSubarray(&cfg)
}

func randRow(rng *rand.Rand, words int) []uint64 {
	r := make([]uint64, words)
	for i := range r {
		r[i] = rng.Uint64()
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	good := TestConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("TestConfig invalid: %v", err)
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Fatalf("PaperConfig invalid: %v", err)
	}
	bad := good
	bad.Cols = 100
	if err := bad.Validate(); err == nil {
		t.Error("Cols=100 must not validate")
	}
	bad = good
	bad.NumTRows = 4
	if err := bad.Validate(); err == nil {
		t.Error("NumTRows=4 must not validate")
	}
	bad = good
	bad.RowsPerSubarray = good.ComputeRows() + 2
	if err := bad.Validate(); err == nil {
		t.Error("too-few data rows must not validate")
	}
}

func TestControlRowContents(t *testing.T) {
	s := testSubarray(t)
	for _, w := range s.Peek(s.C0Row()) {
		if w != 0 {
			t.Fatal("C0 must be all zeros")
		}
	}
	for _, w := range s.Peek(s.C1Row()) {
		if w != ^uint64(0) {
			t.Fatal("C1 must be all ones")
		}
	}
}

func TestAAPCopiesRow(t *testing.T) {
	s := testSubarray(t)
	rng := rand.New(rand.NewSource(1))
	data := randRow(rng, s.Config().WordsPerRow())
	s.Poke(3, data)
	s.AAP(3, 7)
	got := s.Peek(7)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("AAP copy mismatch at word %d", i)
		}
	}
	if s.Stats.AAPs != 1 || s.Stats.Activates != 2 || s.Stats.Precharges != 1 {
		t.Errorf("AAP stats wrong: %v", s.Stats)
	}
}

func TestAAPMultiDestination(t *testing.T) {
	s := testSubarray(t)
	rng := rand.New(rand.NewSource(2))
	data := randRow(rng, s.Config().WordsPerRow())
	s.Poke(0, data)
	s.AAP(0, s.TRow(0), s.TRow(1), s.TRow(2))
	for i := 0; i < 3; i++ {
		got := s.Peek(s.TRow(i))
		for w := range data {
			if got[w] != data[w] {
				t.Fatalf("multi-dst AAP mismatch in T%d", i)
			}
		}
	}
}

func TestAAPMultiDestinationOutsideComputeRegionPanics(t *testing.T) {
	s := testSubarray(t)
	defer func() {
		if recover() == nil {
			t.Error("multi-row AAP into data rows must panic")
		}
	}()
	s.AAP(0, 1, 2)
}

func TestTRAComputesMajority(t *testing.T) {
	s := testSubarray(t)
	words := s.Config().WordsPerRow()
	err := quick.Check(func(a, b, c uint64) bool {
		ra := make([]uint64, words)
		rb := make([]uint64, words)
		rc := make([]uint64, words)
		for i := range ra {
			ra[i], rb[i], rc[i] = a, b, c
		}
		s.Poke(s.TRow(0), ra)
		s.Poke(s.TRow(1), rb)
		s.Poke(s.TRow(2), rc)
		s.AP(s.TRow(0), s.TRow(1), s.TRow(2))
		want := (a & b) | (a & c) | (b & c)
		for _, r := range [3]int{s.TRow(0), s.TRow(1), s.TRow(2)} {
			for _, w := range s.Peek(r) {
				if w != want {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 64})
	if err != nil {
		t.Error(err)
	}
}

func TestAPOnDataRowsPanics(t *testing.T) {
	s := testSubarray(t)
	defer func() {
		if recover() == nil {
			t.Error("AP on data rows must panic")
		}
	}()
	s.AP(0, 1, 2)
}

func TestDCCProvidesComplement(t *testing.T) {
	s := testSubarray(t)
	rng := rand.New(rand.NewSource(3))
	data := randRow(rng, s.Config().WordsPerRow())
	s.Poke(5, data)
	s.AAP(5, s.DCCRow(0))
	neg := s.Peek(s.DCCNRow(0))
	for i := range data {
		if neg[i] != ^data[i] {
			t.Fatalf("DCC complement wrong at word %d", i)
		}
	}
	// And the reverse: writing the N row complements the true row.
	s.AAP(5, s.DCCNRow(1))
	pos := s.Peek(s.DCCRow(1))
	for i := range data {
		if pos[i] != ^data[i] {
			t.Fatalf("DCCN reverse complement wrong at word %d", i)
		}
	}
}

func TestNotViaDCCRoundTrip(t *testing.T) {
	// The codegen idiom: copy x into DCC0, read !x from DCC0N into a T row.
	s := testSubarray(t)
	rng := rand.New(rand.NewSource(4))
	data := randRow(rng, s.Config().WordsPerRow())
	s.Poke(9, data)
	s.AAP(9, s.DCCRow(0))
	s.AAP(s.DCCNRow(0), s.TRow(3))
	got := s.Peek(s.TRow(3))
	for i := range data {
		if got[i] != ^data[i] {
			t.Fatalf("NOT idiom failed at word %d", i)
		}
	}
}

func TestControlRowsReadOnly(t *testing.T) {
	s := testSubarray(t)
	defer func() {
		if recover() == nil {
			t.Error("writing C0 must panic")
		}
	}()
	s.AAP(0, s.C0Row())
}

func TestHostReadWrite(t *testing.T) {
	s := testSubarray(t)
	rng := rand.New(rand.NewSource(5))
	data := randRow(rng, s.Config().WordsPerRow())
	s.WriteRow(11, data)
	got := s.ReadRow(11)
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("host write/read mismatch")
		}
	}
	if s.Stats.HostReads != 1 || s.Stats.HostWrites != 1 {
		t.Errorf("host stats wrong: %v", s.Stats)
	}
	if s.Stats.EnergyPJ <= 0 {
		t.Error("energy must accrue")
	}
}

func TestModuleAggregation(t *testing.T) {
	mod, err := NewModule(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	s00 := mod.Subarray(0, 0)
	s11 := mod.Subarray(1, 1)
	data := make([]uint64, mod.Config().WordsPerRow())
	s00.Poke(0, data)
	s00.AAP(0, 1)
	s11.AAP(0, 1)
	s11.AP(s11.TRow(0), s11.TRow(1), s11.TRow(2))
	total := mod.Stats()
	if total.AAPs != 2 || total.APs != 1 {
		t.Errorf("module stats wrong: %v", total)
	}
	mod.ResetStats()
	if got := mod.Stats(); got.AAPs != 0 || got.EnergyPJ != 0 {
		t.Errorf("ResetStats left residue: %v", got)
	}
}

func TestTimingFormulas(t *testing.T) {
	tm := DDR4_2400()
	if tm.AAPLatency() <= tm.APLatency() {
		t.Error("AAP must cost more than AP")
	}
	if tm.APLatency() != tm.TRAS+tm.TRP {
		t.Error("AP latency formula changed unexpectedly")
	}
	if f := tm.RefreshFactor(); f <= 1.0 || f > 1.1 {
		t.Errorf("DDR4 refresh factor = %f, expected a few percent above 1", f)
	}
	noRefresh := tm
	noRefresh.TREFI = 0
	if noRefresh.RefreshFactor() != 1 {
		t.Error("zero tREFI must disable the refresh tax")
	}
}

func TestEnergyFormulas(t *testing.T) {
	e := DDR4Energy()
	if e.AAPEnergy(1) >= e.AAPEnergy(3) {
		t.Error("multi-destination AAP should cost more than single")
	}
	if e.APEnergy() <= 0 {
		t.Error("AP energy must be positive")
	}
}

func TestInjectBitFlips(t *testing.T) {
	s := testSubarray(t)
	words := s.Config().WordsPerRow()
	mask := make([]uint64, words)
	mask[0] = 0b1010
	before := s.Peek(2)
	s.InjectBitFlips(2, mask)
	after := s.Peek(2)
	if after[0] != before[0]^0b1010 {
		t.Error("bit flips not applied")
	}
}

func TestStatsSubAndAdd(t *testing.T) {
	a := Stats{AAPs: 5, APs: 3, EnergyPJ: 100}
	b := Stats{AAPs: 2, APs: 1, EnergyPJ: 40}
	d := a.Sub(b)
	if d.AAPs != 3 || d.APs != 2 || d.EnergyPJ != 60 {
		t.Errorf("Sub wrong: %+v", d)
	}
	b.Add(d)
	if b.AAPs != a.AAPs || b.EnergyPJ != a.EnergyPJ {
		t.Errorf("Add wrong: %+v", b)
	}
}
