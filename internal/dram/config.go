// Package dram models the DRAM substrate SIMDRAM computes in: banks of
// subarrays whose rows can be activated, copied row-to-row (RowClone /
// AAP), and activated three-at-a-time (triple-row activation, TRA) to
// compute a bitwise majority in the sense amplifiers, following Ambit
// (Seshadri et al., MICRO 2017) as extended by SIMDRAM.
//
// The model is functional (bit-exact row contents) plus analytical
// (per-command latency and energy). Paper-scale performance numbers never
// require materializing paper-scale arrays: command counts from a real
// execution on a small device scale analytically to any geometry.
package dram

import "fmt"

// Timing holds DRAM timing parameters in nanoseconds.
//
// Defaults follow DDR4-2400 (as used in SIMDRAM's evaluation):
// tRCD = 14.16 ns, tRAS = 32 ns, tRP = 14.16 ns.
type Timing struct {
	TRCD  float64 // ACTIVATE to column command
	TRAS  float64 // ACTIVATE to PRECHARGE
	TRP   float64 // PRECHARGE to next ACTIVATE
	TCK   float64 // bus clock period
	TREFI float64 // average refresh command interval
	TRFC  float64 // refresh cycle time (bank unavailable)
}

// DDR4_2400 returns DDR4-2400 timing (tRFC for an 8 Gb die).
func DDR4_2400() Timing {
	return Timing{TRCD: 14.16, TRAS: 32.0, TRP: 14.16, TCK: 0.833, TREFI: 7800, TRFC: 350}
}

// RefreshFactor returns the throughput tax of mandatory refresh: every
// tREFI the banks stall for tRFC, stretching sustained latency by
// tREFI/(tREFI−tRFC) ≈ 4.7% on DDR4. In-DRAM compute pays it like any
// other DRAM traffic; the analytical performance model applies it to
// sustained execution.
func (t Timing) RefreshFactor() float64 {
	if t.TREFI <= t.TRFC || t.TREFI == 0 {
		return 1
	}
	return t.TREFI / (t.TREFI - t.TRFC)
}

// AAPLatency returns the latency of one AAP (ACTIVATE-ACTIVATE-PRECHARGE)
// command: back-to-back activations of source and destination rows
// followed by a precharge, ≈ 2·tRAS + tRP (Ambit §5; ~80 ns on DDR4-2400).
func (t Timing) AAPLatency() float64 { return 2*t.TRAS + t.TRP }

// APLatency returns the latency of one AP (ACTIVATE-PRECHARGE) command —
// a triple-row activation computing MAJ — ≈ tRAS + tRP (~46 ns).
func (t Timing) APLatency() float64 { return t.TRAS + t.TRP }

// RowAccessLatency returns the latency of a normal host row access
// (ACTIVATE + column access + PRECHARGE) used by the store/load paths.
func (t Timing) RowAccessLatency() float64 { return t.TRCD + t.TRAS + t.TRP }

// Energy holds per-command energy parameters in picojoules.
//
// Derived from DDR4-2400 x8 IDD values (IDD0 ≈ 55 mA at VDD = 1.2 V over
// tRC ≈ 46 ns gives ≈ 3 nJ per single-row activate+precharge cycle per
// chip; a 64-bit rank is 8 chips). The absolute scale matters less than
// consistency: SIMDRAM, Ambit, and the store/load paths all use the same
// constants, so ratios — which is what the paper's figures report — are
// meaningful.
type Energy struct {
	ActPJ    float64 // one-row ACTIVATE + restore, full 8 KB row, per rank
	PrePJ    float64 // PRECHARGE
	TRAActPJ float64 // triple-row ACTIVATE (three rows share bitlines; ≈1.5× single)
	WrPJ     float64 // host write of one row over the channel (I/O + access)
	RdPJ     float64 // host read of one row over the channel
}

// DDR4Energy returns the default energy model.
func DDR4Energy() Energy {
	return Energy{
		ActPJ:    2400, // 8 chips × ~0.3 nJ array energy per activate
		PrePJ:    600,
		TRAActPJ: 3600,  // charge-sharing across 3 rows, ~1.5× a single ACT
		WrPJ:     12000, // 8 KB over the channel at ~1.4 pJ/bit I/O + core
		RdPJ:     12000,
	}
}

// AAPEnergy returns the energy of one AAP: two activations (source and
// destination group) plus one precharge. Multi-row destinations share the
// second activation.
func (e Energy) AAPEnergy(nDst int) float64 {
	second := e.ActPJ
	if nDst > 1 {
		second = e.TRAActPJ
	}
	return e.ActPJ + second + e.PrePJ
}

// APEnergy returns the energy of one AP (triple-row activation).
func (e Energy) APEnergy() float64 { return e.TRAActPJ + e.PrePJ }

// MajCopyEnergy returns the energy of Ambit's fused TRA-then-copy AAP:
// a triple-row activation followed by a destination activation.
func (e Energy) MajCopyEnergy() float64 { return e.TRAActPJ + e.ActPJ + e.PrePJ }

// Config describes a DRAM device geometry and its compute region.
type Config struct {
	RowsPerSubarray  int // total rows including the compute region
	Cols             int // bitlines per subarray = SIMD lanes; multiple of 64
	SubarraysPerBank int
	Banks            int

	// Compute region (Ambit-style B-group, SIMDRAM-extended):
	// NumTRows triple-row-activatable rows grouped in threes,
	// NumDCCPairs dual-contact cell pairs, plus control rows C0 and C1.
	NumTRows    int
	NumDCCPairs int

	Timing Timing
	Energy Energy
}

// PaperConfig returns the geometry SIMDRAM evaluates: 512-row subarrays
// with 8 KB rows (65,536 bitlines), 16 subarrays per bank, 16 banks.
func PaperConfig() Config {
	return Config{
		RowsPerSubarray:  512,
		Cols:             65536,
		SubarraysPerBank: 16,
		Banks:            16,
		NumTRows:         6,
		NumDCCPairs:      2,
		Timing:           DDR4_2400(),
		Energy:           DDR4Energy(),
	}
}

// TestConfig returns a small geometry for functional tests.
func TestConfig() Config {
	c := PaperConfig()
	c.RowsPerSubarray = 128
	c.Cols = 256
	c.SubarraysPerBank = 2
	c.Banks = 2
	return c
}

// WordsPerRow returns the number of 64-bit words in one row.
func (c Config) WordsPerRow() int { return c.Cols / 64 }

// TRow returns the physical row index of designated compute row T[i].
// The row map is a pure function of the geometry, so resolvers that
// know only the Config (not a materialized Subarray) can use it too.
func (c Config) TRow(i int) int {
	if i < 0 || i >= c.NumTRows {
		panic(fmt.Sprintf("dram: T row %d out of range [0,%d)", i, c.NumTRows))
	}
	return c.DataRows() + i
}

// DCCRow returns the physical row of dual-contact cell pair i's true row.
func (c Config) DCCRow(i int) int {
	if i < 0 || i >= c.NumDCCPairs {
		panic(fmt.Sprintf("dram: DCC pair %d out of range [0,%d)", i, c.NumDCCPairs))
	}
	return c.DataRows() + c.NumTRows + 2*i
}

// DCCNRow returns the complement row of dual-contact cell pair i.
func (c Config) DCCNRow(i int) int { return c.DCCRow(i) + 1 }

// C0Row returns the all-zeros control row.
func (c Config) C0Row() int { return c.RowsPerSubarray - 2 }

// C1Row returns the all-ones control row.
func (c Config) C1Row() int { return c.RowsPerSubarray - 1 }

// ComputeRows returns the number of rows reserved for the compute region:
// T rows, two rows per DCC pair, and the two control rows.
func (c Config) ComputeRows() int { return c.NumTRows + 2*c.NumDCCPairs + 2 }

// DataRows returns the number of rows available for operands and scratch.
func (c Config) DataRows() int { return c.RowsPerSubarray - c.ComputeRows() }

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.Cols <= 0 || c.Cols%64 != 0 {
		return fmt.Errorf("dram: Cols must be a positive multiple of 64, have %d", c.Cols)
	}
	if c.NumTRows < 3 || c.NumTRows%3 != 0 {
		return fmt.Errorf("dram: NumTRows must be a positive multiple of 3, have %d", c.NumTRows)
	}
	if c.NumDCCPairs < 1 {
		return fmt.Errorf("dram: need at least one DCC pair, have %d", c.NumDCCPairs)
	}
	if c.DataRows() < 8 {
		return fmt.Errorf("dram: only %d data rows left after the compute region", c.DataRows())
	}
	if c.SubarraysPerBank < 1 || c.Banks < 1 {
		return fmt.Errorf("dram: need at least one subarray and one bank")
	}
	if c.Timing.TRAS <= 0 || c.Timing.TRP <= 0 {
		return fmt.Errorf("dram: timing not initialized")
	}
	return nil
}

// TotalSubarrays returns Banks × SubarraysPerBank.
func (c Config) TotalSubarrays() int { return c.Banks * c.SubarraysPerBank }
