// Package workload generates deterministic synthetic datasets for the
// seven application kernels of SIMDRAM's evaluation (paper §5).
//
// Substitution note (see DESIGN.md): the paper's kernels run on their
// original datasets (ImageNet-scale images, MNIST, TPC-H tables). Kernel
// command counts are data-independent, so synthetic data exercises the
// identical code paths while keeping the repository self-contained.
package workload

import "math/rand"

// Image is an 8-bit grayscale image.
type Image struct {
	W, H   int
	Pixels []uint64 // one pixel per element, 0-255
}

// NewImage generates a deterministic image with smooth gradients plus
// noise — enough structure that brightness/saturation paths both trigger.
func NewImage(w, h int, seed int64) Image {
	rng := rand.New(rand.NewSource(seed))
	px := make([]uint64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := (x*255/maxInt(w-1, 1) + y*255/maxInt(h-1, 1)) / 2
			v += rng.Intn(64) - 32
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			px[y*w+x] = uint64(v)
		}
	}
	return Image{W: w, H: h, Pixels: px}
}

// Digits returns n MNIST-like 8-bit digit vectors of dim pixels each,
// with labels in [0,10). Same-label digits share a base pattern so that
// nearest-neighbor classification is meaningful.
func Digits(n, dim int, seed int64) (data [][]uint64, labels []int) {
	rng := rand.New(rand.NewSource(seed))
	bases := make([][]uint64, 10)
	for c := range bases {
		bases[c] = make([]uint64, dim)
		for i := range bases[c] {
			bases[c][i] = uint64(rng.Intn(256))
		}
	}
	data = make([][]uint64, n)
	labels = make([]int, n)
	for j := range data {
		c := rng.Intn(10)
		labels[j] = c
		v := make([]uint64, dim)
		for i := range v {
			p := int(bases[c][i]) + rng.Intn(33) - 16
			if p < 0 {
				p = 0
			}
			if p > 255 {
				p = 255
			}
			v[i] = uint64(p)
		}
		data[j] = v
	}
	return data, labels
}

// LineItem is a TPC-H-like lineitem table in columnar form, sized for
// the Q6 predicate: shipdate (days), discount (percent), quantity, and
// extendedprice (cents).
type LineItem struct {
	N             int
	ShipDate      []uint64 // 16-bit days since epoch
	Discount      []uint64 // 8-bit percent 0-10
	Quantity      []uint64 // 8-bit 1-50
	ExtendedPrice []uint64 // 16-bit cents (kept small so price×discount fits 32 bits)
}

// NewLineItem generates n rows.
func NewLineItem(n int, seed int64) LineItem {
	rng := rand.New(rand.NewSource(seed))
	t := LineItem{
		N:             n,
		ShipDate:      make([]uint64, n),
		Discount:      make([]uint64, n),
		Quantity:      make([]uint64, n),
		ExtendedPrice: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		t.ShipDate[i] = uint64(9000 + rng.Intn(2557)) // ~7 years of days
		t.Discount[i] = uint64(rng.Intn(11))
		t.Quantity[i] = uint64(1 + rng.Intn(50))
		t.ExtendedPrice[i] = uint64(100 + rng.Intn(60000))
	}
	return t
}

// Codes returns n k-bit column codes for BitWeaving-style scans.
func Codes(n, bits int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	mask := uint64(1)<<uint(bits) - 1
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64() & mask
	}
	return out
}

// Uniform returns n uniform width-bit values.
func Uniform(n, width int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	mask := ^uint64(0)
	if width < 64 {
		mask = (uint64(1) << uint(width)) - 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64() & mask
	}
	return out
}

// Weights returns deterministic signed 8-bit weights (stored two's
// complement in uint64) for neural-network layers.
func Weights(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		w := rng.Intn(15) - 7 // [-7, 7]
		out[i] = uint64(int64(w)) & 0xFF
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
