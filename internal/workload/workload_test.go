package workload

import "testing"

func TestImageInRange(t *testing.T) {
	img := NewImage(64, 48, 1)
	if len(img.Pixels) != 64*48 {
		t.Fatalf("pixel count %d, want %d", len(img.Pixels), 64*48)
	}
	for i, p := range img.Pixels {
		if p > 255 {
			t.Fatalf("pixel %d = %d out of 8-bit range", i, p)
		}
	}
}

func TestImageDeterministic(t *testing.T) {
	a := NewImage(16, 16, 7)
	b := NewImage(16, 16, 7)
	for i := range a.Pixels {
		if a.Pixels[i] != b.Pixels[i] {
			t.Fatal("same seed must reproduce the image")
		}
	}
}

func TestDigitsClustered(t *testing.T) {
	data, labels := Digits(100, 32, 3)
	if len(data) != 100 || len(labels) != 100 {
		t.Fatal("wrong count")
	}
	// Same-label digits must be closer (L1) than different-label ones on
	// average.
	l1 := func(a, b []uint64) int {
		d := 0
		for i := range a {
			x := int(a[i]) - int(b[i])
			if x < 0 {
				x = -x
			}
			d += x
		}
		return d
	}
	sameSum, sameN, diffSum, diffN := 0, 0, 0, 0
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			d := l1(data[i], data[j])
			if labels[i] == labels[j] {
				sameSum += d
				sameN++
			} else {
				diffSum += d
				diffN++
			}
		}
	}
	if sameN == 0 || diffN == 0 {
		t.Skip("degenerate label draw")
	}
	if sameSum/sameN >= diffSum/diffN {
		t.Errorf("same-class distance %d not below cross-class %d", sameSum/sameN, diffSum/diffN)
	}
}

func TestLineItemRanges(t *testing.T) {
	li := NewLineItem(1000, 5)
	for i := 0; i < li.N; i++ {
		if li.Discount[i] > 10 {
			t.Fatal("discount out of range")
		}
		if li.Quantity[i] < 1 || li.Quantity[i] > 50 {
			t.Fatal("quantity out of range")
		}
		if li.ShipDate[i] < 9000 || li.ShipDate[i] >= 9000+2557 {
			t.Fatal("shipdate out of range")
		}
	}
}

func TestCodesWidth(t *testing.T) {
	for _, bits := range []int{1, 4, 7, 12} {
		codes := Codes(500, bits, 9)
		limit := uint64(1) << uint(bits)
		for _, c := range codes {
			if c >= limit {
				t.Fatalf("%d-bit code %d out of range", bits, c)
			}
		}
	}
}

func TestWeightsSignedRange(t *testing.T) {
	ws := Weights(200, 11)
	for _, w := range ws {
		v := int8(uint8(w))
		if v < -7 || v > 7 {
			t.Fatalf("weight %d out of [-7,7]", v)
		}
	}
}
