// Package trace records the physical DRAM command streams SIMDRAM
// executions produce — the artifact a memory-systems researcher feeds to
// an external DRAM simulator or inspects for protocol-level effects
// (activation patterns, RowHammer pressure, command mix).
package trace

import (
	"fmt"
	"io"
	"sync"

	"simdram/internal/dram"
)

// Event is one recorded command with its origin subarray.
type Event struct {
	Seq       int64
	Bank, Sub int
	Cmd       dram.Command
}

// Log accumulates events from any number of subarrays; safe for the
// simulator's parallel per-subarray execution.
type Log struct {
	mu     sync.Mutex
	events []Event
	seq    int64
	limit  int // 0 = unbounded
}

// NewLog builds a log keeping at most limit events (0 = unbounded).
func NewLog(limit int) *Log {
	return &Log{limit: limit}
}

// Attach subscribes the log to a subarray's command stream. The log
// composes with any hook already installed (via dram.AddCommandHook),
// so command logging coexists with other observers — obs counters,
// RowHammer monitors — on the same subarray.
func (l *Log) Attach(sa *dram.Subarray, bank, sub int) {
	sa.AddCommandHook(func(c dram.Command) {
		l.mu.Lock()
		defer l.mu.Unlock()
		l.seq++
		if l.limit > 0 && len(l.events) >= l.limit {
			return // keep counting, stop storing
		}
		l.events = append(l.events, Event{Seq: l.seq, Bank: bank, Sub: sub, Cmd: c})
	})
}

// AttachModule subscribes the log to every subarray of a module.
func (l *Log) AttachModule(mod *dram.Module) {
	for b := 0; b < mod.NumBanks(); b++ {
		for s := 0; s < mod.SubarraysPerBank(); s++ {
			l.Attach(mod.Subarray(b, s), b, s)
		}
	}
}

// Events returns a snapshot of the stored events.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Total returns the number of commands observed (including any beyond
// the storage limit).
func (l *Log) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Reset clears stored events and the sequence counter.
func (l *Log) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = l.events[:0]
	l.seq = 0
}

// WriteText renders the stored events, one command per line:
//
//	seq bank sub KIND rows…
func (l *Log) WriteText(w io.Writer) error {
	for _, e := range l.Events() {
		var err error
		c := e.Cmd
		switch c.Kind {
		case dram.CmdAAP:
			_, err = fmt.Fprintf(w, "%8d b%02d s%02d AAP  src=%d dst=%v\n", e.Seq, e.Bank, e.Sub, c.Src, c.Dsts[:c.NDst])
		case dram.CmdAP:
			_, err = fmt.Fprintf(w, "%8d b%02d s%02d AP   tra=%v\n", e.Seq, e.Bank, e.Sub, c.T)
		case dram.CmdMajCopy:
			_, err = fmt.Fprintf(w, "%8d b%02d s%02d MAJ  tra=%v dst=%v\n", e.Seq, e.Bank, e.Sub, c.T, c.Dsts[:c.NDst])
		case dram.CmdHostRead:
			_, err = fmt.Fprintf(w, "%8d b%02d s%02d RD   row=%d\n", e.Seq, e.Bank, e.Sub, c.Src)
		case dram.CmdHostWrite:
			_, err = fmt.Fprintf(w, "%8d b%02d s%02d WR   row=%d\n", e.Seq, e.Bank, e.Sub, c.Src)
		default:
			_, err = fmt.Fprintf(w, "%8d b%02d s%02d %v\n", e.Seq, e.Bank, e.Sub, c.Kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ActivationHistogram counts, for the stored events, how many times each
// physical row was activated (AAP activates source and destinations; AP
// and MajCopy activate the TRA rows, MajCopy also its destinations).
func (l *Log) ActivationHistogram() map[int]int64 {
	hist := map[int]int64{}
	for _, e := range l.Events() {
		c := e.Cmd
		switch c.Kind {
		case dram.CmdAAP:
			hist[c.Src]++
			for _, d := range c.Dsts[:c.NDst] {
				hist[d]++
			}
		case dram.CmdAP:
			for _, r := range c.T {
				hist[r]++
			}
		case dram.CmdMajCopy:
			for _, r := range c.T {
				hist[r]++
			}
			for _, d := range c.Dsts[:c.NDst] {
				hist[d]++
			}
		case dram.CmdHostRead, dram.CmdHostWrite:
			hist[c.Src]++
		}
	}
	return hist
}
