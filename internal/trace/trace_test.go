package trace

import (
	"bytes"
	"strings"
	"testing"

	"simdram/internal/dram"
)

func TestLogRecordsCommands(t *testing.T) {
	cfg := dram.TestConfig()
	sa := dram.NewSubarray(&cfg)
	l := NewLog(0)
	l.Attach(sa, 1, 2)

	sa.AAP(0, 1)
	sa.AAP(2, sa.TRow(0), sa.TRow(1), sa.TRow(2))
	sa.AP(sa.TRow(0), sa.TRow(1), sa.TRow(2))
	sa.MajCopy(sa.TRow(0), sa.TRow(1), sa.TRow(2), 5)
	sa.WriteRow(7, make([]uint64, cfg.WordsPerRow()))
	sa.ReadRow(7)

	events := l.Events()
	if len(events) != 6 {
		t.Fatalf("recorded %d events, want 6", len(events))
	}
	wantKinds := []dram.CommandKind{dram.CmdAAP, dram.CmdAAP, dram.CmdAP, dram.CmdMajCopy, dram.CmdHostWrite, dram.CmdHostRead}
	for i, e := range events {
		if e.Cmd.Kind != wantKinds[i] {
			t.Errorf("event %d kind %v, want %v", i, e.Cmd.Kind, wantKinds[i])
		}
		if e.Bank != 1 || e.Sub != 2 {
			t.Errorf("event %d origin (%d,%d), want (1,2)", i, e.Bank, e.Sub)
		}
	}
	if events[1].Cmd.NDst != 3 {
		t.Errorf("multi-destination AAP recorded %d dsts", events[1].Cmd.NDst)
	}

	var buf bytes.Buffer
	if err := l.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"AAP", "AP", "MAJ", "WR", "RD", "b01 s02"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace text missing %q:\n%s", want, text)
		}
	}
}

func TestLogLimitAndTotal(t *testing.T) {
	cfg := dram.TestConfig()
	sa := dram.NewSubarray(&cfg)
	l := NewLog(3)
	l.Attach(sa, 0, 0)
	for i := 0; i < 10; i++ {
		sa.AAP(0, 1)
	}
	if got := len(l.Events()); got != 3 {
		t.Errorf("stored %d events, want 3 (limit)", got)
	}
	if l.Total() != 10 {
		t.Errorf("total %d, want 10", l.Total())
	}
	l.Reset()
	if l.Total() != 0 || len(l.Events()) != 0 {
		t.Error("reset left residue")
	}
}

func TestActivationHistogram(t *testing.T) {
	cfg := dram.TestConfig()
	sa := dram.NewSubarray(&cfg)
	l := NewLog(0)
	l.Attach(sa, 0, 0)
	sa.AAP(4, sa.TRow(0))
	sa.AAP(5, sa.TRow(1))
	sa.AAP(6, sa.TRow(2))
	sa.AP(sa.TRow(0), sa.TRow(1), sa.TRow(2))
	hist := l.ActivationHistogram()
	if hist[4] != 1 || hist[5] != 1 || hist[6] != 1 {
		t.Errorf("source activations wrong: %v", hist)
	}
	for i := 0; i < 3; i++ {
		if hist[sa.TRow(i)] != 2 { // one as AAP dst, one in the TRA
			t.Errorf("T%d activations = %d, want 2", i, hist[sa.TRow(i)])
		}
	}
}

func TestAttachComposesWithExistingHook(t *testing.T) {
	cfg := dram.TestConfig()
	sa := dram.NewSubarray(&cfg)

	// An observer installed before the log (e.g. an obs counter).
	var before int
	sa.AddCommandHook(func(dram.Command) { before++ })

	l := NewLog(0)
	l.Attach(sa, 0, 0)

	// And one installed after: all three must see every command.
	var after int
	sa.AddCommandHook(func(dram.Command) { after++ })

	sa.AAP(0, 1)
	sa.AP(sa.TRow(0), sa.TRow(1), sa.TRow(2))

	if before != 2 {
		t.Errorf("pre-existing hook saw %d commands, want 2", before)
	}
	if after != 2 {
		t.Errorf("later hook saw %d commands, want 2", after)
	}
	if got := l.Total(); got != 2 {
		t.Errorf("log recorded %d commands, want 2", got)
	}
}
