package graph

import (
	"reflect"
	"testing"

	"simdram/internal/ops"
)

func def(t *testing.T, name string) ops.Def {
	t.Helper()
	d, err := ops.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func input(t *testing.T, g *Graph, width int) NodeID {
	t.Helper()
	id, err := g.Input(width)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func op(t *testing.T, g *Graph, name string, args ...NodeID) NodeID {
	t.Helper()
	id, err := g.Op(def(t, name), args...)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestOpValidation(t *testing.T) {
	g := New()
	a := input(t, g, 8)
	b := input(t, g, 16)
	if _, err := g.Op(def(t, "addition"), a, b); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if _, err := g.Op(def(t, "addition"), a); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := g.Op(def(t, "and_red"), a); err == nil {
		t.Fatal("1-argument reduction accepted")
	}
	if _, err := g.Op(def(t, "and_red"), a, a, a, a); err == nil {
		t.Fatal(">3 operands accepted (ISA encodes at most 3)")
	}
	sel := input(t, g, 1)
	if _, err := g.Op(def(t, "if_else"), a, a, sel); err != nil {
		t.Fatalf("1-bit selector rejected: %v", err)
	}
	if _, err := g.Op(def(t, "if_else"), a, a, a); err == nil {
		t.Fatal("8-bit selector accepted")
	}
	m := op(t, g, "multiplication", a, a)
	if got := g.Node(m).Width; got != 16 {
		t.Fatalf("multiplication dst width = %d, want 16", got)
	}
}

func TestFoldConstants(t *testing.T) {
	g := New()
	c3, _ := g.Const(3, 8)
	c4, _ := g.Const(4, 8)
	sum := op(t, g, "addition", c3, c4)
	dbl := op(t, g, "addition", sum, sum) // folds once sum is const
	a := input(t, g, 8)
	mixed := op(t, g, "addition", dbl, a) // stays: one arg is a leaf
	g.MarkRoot(mixed)
	if folded := g.FoldConstants(); folded != 2 {
		t.Fatalf("folded %d nodes, want 2", folded)
	}
	if n := g.Node(sum); n.Kind != KindConst || n.Val != 7 {
		t.Fatalf("sum folded to %+v, want const 7", n)
	}
	if n := g.Node(dbl); n.Kind != KindConst || n.Val != 14 {
		t.Fatalf("dbl folded to %+v, want const 14", n)
	}
	if g.Node(mixed).Kind != KindOp {
		t.Fatal("node with a leaf argument folded")
	}
}

func TestFoldMasksToWidth(t *testing.T) {
	g := New()
	c, _ := g.Const(200, 8)
	sum := op(t, g, "addition", c, c) // 400 mod 256 = 144
	g.MarkRoot(sum)
	g.FoldConstants()
	if n := g.Node(sum); n.Val != 144 {
		t.Fatalf("folded value %d, want 144", n.Val)
	}
}

func TestCSE(t *testing.T) {
	g := New()
	a := input(t, g, 8)
	b := input(t, g, 8)
	s1 := op(t, g, "addition", a, b)
	s2 := op(t, g, "addition", a, b) // duplicate
	d := op(t, g, "subtraction", s1, s2)
	g.MarkRoot(d)
	g.MarkRoot(s2)
	if merged := g.CSE(); merged != 1 {
		t.Fatalf("merged %d nodes, want 1", merged)
	}
	if args := g.Node(d).Args; args[0] != s1 || args[1] != s1 {
		t.Fatalf("subtraction args %v, want both remapped to %d", args, s1)
	}
	if roots := g.Roots(); roots[1] != s1 {
		t.Fatalf("root remapped to %d, want %d", roots[1], s1)
	}
	if !g.Node(s1).Root {
		t.Fatal("canonical node did not inherit the merged duplicate's root mark")
	}
	if g.Node(s2).Root {
		t.Fatal("merged duplicate kept its root mark (breaks slot assignment when DCE is skipped)")
	}
	// Inputs of equal width must never merge: distinct storage.
	g2 := New()
	input(t, g2, 8)
	input(t, g2, 8)
	if merged := g2.CSE(); merged != 0 {
		t.Fatalf("merged %d input nodes, want 0", merged)
	}
}

func TestDCE(t *testing.T) {
	g := New()
	a := input(t, g, 8)
	b := input(t, g, 8)
	live := op(t, g, "addition", a, b)
	deadOp := op(t, g, "subtraction", a, b)
	deadIn := input(t, g, 8)
	g.MarkRoot(live)
	if removed := g.DCE(); removed != 1 {
		t.Fatalf("removed %d nodes, want 1 (dead inputs are uncounted)", removed)
	}
	if g.Alive(deadOp) {
		t.Fatal("unreachable op survived DCE")
	}
	if g.Alive(deadIn) {
		t.Fatal("unreachable input not marked dead")
	}
	if !g.Alive(live) || !g.Alive(a) || !g.Alive(b) {
		t.Fatal("reachable node marked dead")
	}
	if got := g.ProgramOrder(); !reflect.DeepEqual(got, []NodeID{live}) {
		t.Fatalf("program order %v, want [%d]", got, live)
	}
}

func TestScheduleCostPriority(t *testing.T) {
	g := New()
	a := input(t, g, 8)
	b := input(t, g, 8)
	cheap := op(t, g, "addition", a, b)
	expensive := op(t, g, "multiplication", a, b)
	g.MarkRoot(cheap)
	g.MarkRoot(expensive)
	cost := func(d ops.Def, w, n int) float64 {
		if d.Name == "multiplication" {
			return 100
		}
		return 1
	}
	sched := g.Schedule(cost)
	if len(sched) != 2 || sched[0] != expensive {
		t.Fatalf("schedule %v, want the expensive node first", sched)
	}
	// Unit costs tie-break by ID: construction order.
	if sched := g.Schedule(nil); sched[0] != cheap {
		t.Fatalf("unit-cost schedule %v, want ID order", sched)
	}
	// Determinism.
	for i := 0; i < 5; i++ {
		if got := g.Schedule(cost); !reflect.DeepEqual(got, sched) {
			t.Fatalf("schedule not deterministic: %v vs %v", got, sched)
		}
	}
}

func TestScheduleRespectsDependencies(t *testing.T) {
	g := New()
	a := input(t, g, 8)
	b := input(t, g, 8)
	s1 := op(t, g, "addition", a, b)
	s2 := op(t, g, "addition", s1, b)
	s3 := op(t, g, "addition", s2, a)
	g.MarkRoot(s3)
	sched := g.Schedule(func(ops.Def, int, int) float64 { return 5 })
	pos := map[NodeID]int{}
	for i, id := range sched {
		pos[id] = i
	}
	if !(pos[s1] < pos[s2] && pos[s2] < pos[s3]) {
		t.Fatalf("schedule %v violates chain order", sched)
	}
}

func TestAssignReusesSlots(t *testing.T) {
	g := New()
	a := input(t, g, 16)
	b := input(t, g, 16)
	// Chain of 4: three intermediates + one root. Each intermediate dies
	// at its single user, but its slot frees only after the user claims
	// its own (destinations must not alias sources), so the chain
	// ping-pongs between two slots instead of allocating three.
	t1 := op(t, g, "addition", a, b)
	t2 := op(t, g, "addition", t1, b)
	t3 := op(t, g, "addition", t2, a)
	root := op(t, g, "addition", t3, b)
	g.MarkRoot(root)
	sched := g.ProgramOrder()
	asg := Assign(g, sched, true)
	if asg.NaiveRows != 3*16 {
		t.Fatalf("naive rows %d, want 48", asg.NaiveRows)
	}
	if asg.PooledRows != 2*16 {
		t.Fatalf("pooled rows %d, want 32 (two ping-pong slots)", asg.PooledRows)
	}
	if _, ok := asg.SlotOf[root]; ok {
		t.Fatal("root assigned a pooled slot")
	}
	if asg.SlotOf[t1] != asg.SlotOf[t3] {
		t.Fatalf("t1 slot %d not reused by t3 (slot %d)", asg.SlotOf[t1], asg.SlotOf[t3])
	}
	if asg.SlotOf[t1] == asg.SlotOf[t2] {
		t.Fatal("t2 reuses the slot of its own source t1")
	}
	// Without reuse every intermediate is fresh.
	naive := Assign(g, sched, false)
	if naive.PooledRows != naive.NaiveRows {
		t.Fatalf("no-reuse pooled rows %d != naive %d", naive.PooledRows, naive.NaiveRows)
	}
}

func TestAssignWidthSegregation(t *testing.T) {
	g := New()
	a := input(t, g, 8)
	b := input(t, g, 8)
	p := op(t, g, "multiplication", a, b) // 16-bit intermediate
	pr := op(t, g, "addition", p, p)      // root; kills p
	q := op(t, g, "addition", a, b)       // 8-bit intermediate allocated after p died
	qr := op(t, g, "addition", q, a)      // root; kills q
	g.MarkRoot(pr)
	g.MarkRoot(qr)
	asg := Assign(g, g.ProgramOrder(), true)
	// p's freed 16-bit slot must not serve the 8-bit q: slots are
	// width-segregated, so q gets a fresh 8-bit slot.
	if asg.SlotOf[p] == asg.SlotOf[q] {
		t.Fatal("8-bit intermediate reused a 16-bit slot")
	}
	if asg.PooledRows != 16+8 {
		t.Fatalf("pooled rows %d, want 24", asg.PooledRows)
	}
}

func TestLowerEmitsProgramWithSlotHazards(t *testing.T) {
	g := New()
	a := input(t, g, 16)
	b := input(t, g, 16)
	t1 := op(t, g, "addition", a, b)
	t2 := op(t, g, "addition", t1, b)
	t3 := op(t, g, "addition", t2, a)
	root := op(t, g, "addition", t3, b)
	g.MarkRoot(root)
	sched := g.ProgramOrder()
	asg := Assign(g, sched, true)
	// Handles: inputs 1,2; slots 10+slot; root 20.
	handle := func(id NodeID) (uint16, error) {
		switch id {
		case a:
			return 1, nil
		case b:
			return 2, nil
		case root:
			return 20, nil
		}
		return 10 + uint16(asg.SlotOf[id]), nil
	}
	prog, err := Lower(g, sched, handle, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(prog) != 4 {
		t.Fatalf("program has %d instructions, want 4", len(prog))
	}
	if prog[0].Dst != 10 || prog[0].Src[0] != 1 || prog[0].Src[1] != 2 {
		t.Fatalf("first instruction %v binds wrong handles", prog[0])
	}
	if prog[3].Dst != 20 {
		t.Fatalf("root instruction writes handle %d, want 20", prog[3].Dst)
	}
	// t3 reuses t1's slot: instruction 2 writes the handle instruction 1
	// read, a WAR hazard Deps must order.
	deps := prog.Deps()
	found := false
	for _, d := range deps[2] {
		if d == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("deps %v missing the WAR edge 1→2 created by slot reuse", deps)
	}
	for _, in := range prog {
		if in.Size != 64 || in.Width != 16 {
			t.Fatalf("instruction %v has wrong size/width", in)
		}
	}
}
