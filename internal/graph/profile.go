// Profile-guided plan management: ShapeProfile aggregates the per-op
// latencies the batch engine actually measured for one plan-cache
// shape, and ProfileStore decides when those measurements have
// diverged far enough from the static cost model that the shape's
// plan should be recompiled with observed costs (cf. Liu et al.,
// "From Profiling to Optimization"). The store is storage-agnostic
// like the rest of the package: it keys shapes by the same canonical
// key the plan cache uses and prices ops by (opcode, width, arity).
package graph

import (
	"sync"

	"simdram/internal/ops"
)

// OpKey identifies one operation class inside a shape's profile: the
// opcode, the operation width, and the operand count — the same triple
// the static cost model (ops.CostNs) prices an instruction by.
type OpKey struct {
	Code  ops.Code
	Width int
	N     int
}

// OpKeyOf returns the profile key of a scheduled operation node.
func (g *Graph) OpKeyOf(id NodeID) OpKey {
	n := g.Node(id)
	return OpKey{Code: n.Op.Code, Width: g.OpWidth(id), N: len(n.Args)}
}

// opAgg accumulates the observations for one op class of one shape.
type opAgg struct {
	def     ops.Def
	sumNs   float64
	count   int
	modelNs float64 // what the static cost model predicted, for divergence
}

// meanNs returns the mean observed latency.
func (a *opAgg) meanNs() float64 { return a.sumNs / float64(a.count) }

// ShapeProfile aggregates the measured per-op latencies of every
// executed job of one shape.
type ShapeProfile struct {
	jobs       int
	ops        map[OpKey]*opAgg
	recompiled bool // a plan built from this profile is already live
}

// diverged reports whether any op class's mean observed latency is
// more than threshold (relative) away from the static model's
// prediction.
func (p *ShapeProfile) diverged(threshold float64) bool {
	for _, a := range p.ops {
		if a.count == 0 {
			continue
		}
		mean := a.meanNs()
		if a.modelNs <= 0 {
			if mean > 0 {
				return true
			}
			continue
		}
		rel := (mean - a.modelNs) / a.modelNs
		if rel < 0 {
			rel = -rel
		}
		if rel > threshold {
			return true
		}
	}
	return false
}

// ProfileStats is a point-in-time snapshot of a ProfileStore.
type ProfileStats struct {
	// Shapes is the number of shapes with at least one recorded job.
	Shapes int
	// Jobs is the total executed jobs folded into profiles.
	Jobs uint64
	// Recompiles counts profile-guided plan rebuilds claimed through
	// TakeRecompile — at most one per shape until its profile is reset.
	Recompiles uint64
}

// ProfileStore aggregates ShapeProfiles keyed by plan-cache shape key
// and arbitrates profile-guided recompiles. All methods are safe for
// concurrent use and safe on a nil receiver (a nil store records
// nothing and never asks for a recompile), so callers can thread an
// optional store without guards.
type ProfileStore struct {
	mu        sync.Mutex
	threshold float64
	minJobs   int
	cap       int
	shapes    map[string]*ShapeProfile

	jobs       uint64
	recompiles uint64
}

// NewProfileStore returns a store that flags a shape for recompilation
// once at least minJobs executed jobs have been folded into its
// profile and some op class's mean measured latency diverges from the
// static model by more than threshold (relative). capShapes bounds the
// number of shapes retained; beyond it the shape with the fewest
// recorded jobs is dropped. A threshold < 0 disables the store (nil is
// returned).
func NewProfileStore(threshold float64, minJobs, capShapes int) *ProfileStore {
	if threshold < 0 {
		return nil
	}
	if minJobs < 1 {
		minJobs = 1
	}
	if capShapes < 1 {
		capShapes = 1
	}
	return &ProfileStore{
		threshold: threshold,
		minJobs:   minJobs,
		cap:       capShapes,
		shapes:    make(map[string]*ShapeProfile),
	}
}

// Record folds one executed job into the shape's profile: opNs[i] is
// the measured latency of the i-th scheduled instruction (aligned with
// plan.Sched — what the batch engine reported for the lowered
// program), and model prices the same instruction under the static
// cost model. A length mismatch (e.g. a cluster execution that could
// not attribute per-op timings) records nothing.
func (s *ProfileStore) Record(key string, plan *Plan, opNs []float64, model CostFn) {
	if s == nil || plan == nil || model == nil || len(opNs) != len(plan.Sched) || len(opNs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.shapes[key]
	if p == nil {
		if len(s.shapes) >= s.cap {
			s.dropColdestLocked()
		}
		p = &ShapeProfile{ops: make(map[OpKey]*opAgg)}
		s.shapes[key] = p
	}
	g := plan.Graph
	for i, id := range plan.Sched {
		k := g.OpKeyOf(id)
		a := p.ops[k]
		if a == nil {
			n := g.Node(id)
			a = &opAgg{def: n.Op, modelNs: model(n.Op, k.Width, k.N)}
			p.ops[k] = a
		}
		a.sumNs += opNs[i]
		a.count++
	}
	p.jobs++
	s.jobs++
}

// dropColdestLocked evicts the retained shape with the fewest recorded
// jobs (ties: smallest key, for determinism). Caller holds mu.
func (s *ProfileStore) dropColdestLocked() {
	var victim string
	var victimJobs int
	for k, p := range s.shapes {
		if victim == "" || p.jobs < victimJobs || (p.jobs == victimJobs && k < victim) {
			victim, victimJobs = k, p.jobs
		}
	}
	delete(s.shapes, victim)
}

// TakeRecompile reports whether the shape's measured profile has
// diverged from the static cost model far enough to justify a
// recompile, and atomically claims the recompile: exactly one caller
// observes true per diverged shape, so concurrent jobs of the same
// shape cannot stampede the compile pipeline.
func (s *ProfileStore) TakeRecompile(key string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.shapes[key]
	if p == nil || p.recompiled || p.jobs < s.minJobs || !p.diverged(s.threshold) {
		return false
	}
	p.recompiled = true
	s.recompiles++
	return true
}

// ScheduleCost returns the cost function a profile-guided recompile
// schedules with: op classes with observations are priced at their
// mean measured latency, everything else falls back to base. The
// observed means are snapshotted under the lock, so the returned
// function is safe to use while further jobs keep recording.
func (s *ProfileStore) ScheduleCost(key string, base CostFn) CostFn {
	if s == nil {
		return base
	}
	s.mu.Lock()
	observed := map[OpKey]float64{}
	if p := s.shapes[key]; p != nil {
		for k, a := range p.ops {
			if a.count > 0 {
				observed[k] = a.meanNs()
			}
		}
	}
	s.mu.Unlock()
	return func(d ops.Def, width, n int) float64 {
		if ns, ok := observed[OpKey{Code: d.Code, Width: width, N: n}]; ok {
			return ns
		}
		return base(d, width, n)
	}
}

// Jobs returns how many executed jobs have been folded into the
// shape's profile (0 for unknown shapes or a nil store).
func (s *ProfileStore) Jobs(key string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := s.shapes[key]; p != nil {
		return p.jobs
	}
	return 0
}

// Stats returns a snapshot of the store's counters. A nil store
// reports the zero value.
func (s *ProfileStore) Stats() ProfileStats {
	if s == nil {
		return ProfileStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return ProfileStats{Shapes: len(s.shapes), Jobs: s.jobs, Recompiles: s.recompiles}
}
