package graph

import "simdram/internal/ops"

// CostFn estimates the latency of one operation instruction: d applied
// at operation width w over n operands. The facade plugs in
// ops.CostNs under the system's own timing constants, so scheduling
// decisions use the same per-op timings execution bills.
type CostFn func(d ops.Def, width, n int) float64

// ProgramOrder returns the live operation nodes in construction order —
// the unoptimized schedule naive lowering uses. Construction order is a
// valid topological order because arguments always precede their users.
func (g *Graph) ProgramOrder() []NodeID {
	var order []NodeID
	for id := range g.nodes {
		if g.nodes[id].Kind == KindOp && g.Alive(NodeID(id)) {
			order = append(order, NodeID(id))
		}
	}
	return order
}

// Schedule returns the live operation nodes in a cost-driven list
// schedule: each node's priority is its own cost plus the most
// expensive chain of dependents below it (its upward rank), and among
// ready nodes the highest-priority one issues first, ties broken by ID
// for determinism. Critical chains therefore start as early as the
// hazard graph allows, which is what lets the batched engine overlap
// the cheap side chains against them; it also tends to shorten
// intermediate lifetimes on the critical chain, helping slot reuse.
// A nil cost schedules with unit costs.
func (g *Graph) Schedule(cost CostFn) []NodeID {
	if cost == nil {
		cost = func(ops.Def, int, int) float64 { return 1 }
	}
	n := len(g.nodes)
	ownCost := make([]float64, n)
	users := make([][]NodeID, n)
	pendingArgs := make([]int, n) // unscheduled live op arguments
	for id := 0; id < n; id++ {
		node := &g.nodes[id]
		if node.Kind != KindOp || !g.Alive(NodeID(id)) {
			continue
		}
		ownCost[id] = cost(node.Op, g.OpWidth(NodeID(id)), len(node.Args))
		seen := map[NodeID]bool{}
		for _, a := range node.Args {
			if seen[a] {
				continue
			}
			seen[a] = true
			users[a] = append(users[a], NodeID(id))
			if g.nodes[a].Kind == KindOp && g.Alive(a) {
				pendingArgs[id]++
			}
		}
	}
	// Upward rank: own cost plus the costliest dependent chain. Users
	// always have higher IDs than their arguments, so one descending
	// sweep resolves every rank.
	rank := make([]float64, n)
	for id := n - 1; id >= 0; id-- {
		if g.nodes[id].Kind != KindOp || !g.Alive(NodeID(id)) {
			continue
		}
		best := 0.0
		for _, u := range users[id] {
			if rank[u] > best {
				best = rank[u]
			}
		}
		rank[id] = ownCost[id] + best
	}
	var ready []NodeID
	for id := 0; id < n; id++ {
		if g.nodes[id].Kind == KindOp && g.Alive(NodeID(id)) && pendingArgs[id] == 0 {
			ready = append(ready, NodeID(id))
		}
	}
	var sched []NodeID
	for len(ready) > 0 {
		pick := 0
		for i := 1; i < len(ready); i++ {
			ri, rp := ready[i], ready[pick]
			if rank[ri] > rank[rp] || (rank[ri] == rank[rp] && ri < rp) {
				pick = i
			}
		}
		id := ready[pick]
		ready = append(ready[:pick], ready[pick+1:]...)
		sched = append(sched, id)
		for _, u := range users[id] {
			pendingArgs[u]--
			if pendingArgs[u] == 0 {
				ready = append(ready, u)
			}
		}
	}
	return sched
}
