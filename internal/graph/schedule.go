package graph

import "simdram/internal/ops"

// CostFn estimates the latency of one operation instruction: d applied
// at operation width w over n operands. The facade plugs in
// ops.CostNs under the system's own timing constants, so scheduling
// decisions use the same per-op timings execution bills; a
// profile-guided recompile instead plugs in ProfileStore.ScheduleCost,
// which prices op classes at the latencies the batch engine actually
// measured (the static model is per-subarray and does not see, e.g.,
// how many segments of a long vector serialize on one bank).
type CostFn func(d ops.Def, width, n int) float64

// EstimateMakespanNs prices a schedule under the given cost model with
// a deterministic in-order greedy simulation on `machines` parallel
// resources — the graph-level proxy for the batch engine's
// bank-limited overlap (issue in schedule order; a node starts when
// its argument nodes have finished and the earliest machine frees).
// It lets two candidate schedules of the same graph be compared under
// one cost model, which is how a profile-guided recompile guarantees
// it never installs a schedule worse than the one it replaces.
func (g *Graph) EstimateMakespanNs(sched []NodeID, cost CostFn, machines int) float64 {
	if machines < 1 {
		machines = 1
	}
	finish := make([]float64, len(g.nodes))
	free := make([]float64, machines)
	makespan := 0.0
	for _, id := range sched {
		node := g.Node(id)
		start := 0.0
		for _, a := range node.Args {
			if finish[a] > start {
				start = finish[a]
			}
		}
		m := 0
		for i := 1; i < machines; i++ {
			if free[i] < free[m] {
				m = i
			}
		}
		if free[m] > start {
			start = free[m]
		}
		end := start + cost(node.Op, g.OpWidth(id), len(node.Args))
		finish[id] = end
		free[m] = end
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}

// ProgramOrder returns the live operation nodes in construction order —
// the unoptimized schedule naive lowering uses. Construction order is a
// valid topological order because arguments always precede their users.
func (g *Graph) ProgramOrder() []NodeID {
	var order []NodeID
	for id := range g.nodes {
		if g.nodes[id].Kind == KindOp && g.Alive(NodeID(id)) {
			order = append(order, NodeID(id))
		}
	}
	return order
}

// Schedule returns the live operation nodes in a cost-driven list
// schedule: each node's priority is its own cost plus the most
// expensive chain of dependents below it (its upward rank), and among
// ready nodes the highest-priority one issues first, ties broken by ID
// for determinism. Critical chains therefore start as early as the
// hazard graph allows, which is what lets the batched engine overlap
// the cheap side chains against them; it also tends to shorten
// intermediate lifetimes on the critical chain, helping slot reuse.
// A nil cost schedules with unit costs.
func (g *Graph) Schedule(cost CostFn) []NodeID {
	if cost == nil {
		cost = func(ops.Def, int, int) float64 { return 1 }
	}
	n := len(g.nodes)
	ownCost := make([]float64, n)
	users := make([][]NodeID, n)
	pendingArgs := make([]int, n) // unscheduled live op arguments
	for id := 0; id < n; id++ {
		node := &g.nodes[id]
		if node.Kind != KindOp || !g.Alive(NodeID(id)) {
			continue
		}
		ownCost[id] = cost(node.Op, g.OpWidth(NodeID(id)), len(node.Args))
		seen := map[NodeID]bool{}
		for _, a := range node.Args {
			if seen[a] {
				continue
			}
			seen[a] = true
			users[a] = append(users[a], NodeID(id))
			if g.nodes[a].Kind == KindOp && g.Alive(a) {
				pendingArgs[id]++
			}
		}
	}
	// Upward rank: own cost plus the costliest dependent chain. Users
	// always have higher IDs than their arguments, so one descending
	// sweep resolves every rank.
	rank := make([]float64, n)
	for id := n - 1; id >= 0; id-- {
		if g.nodes[id].Kind != KindOp || !g.Alive(NodeID(id)) {
			continue
		}
		best := 0.0
		for _, u := range users[id] {
			if rank[u] > best {
				best = rank[u]
			}
		}
		rank[id] = ownCost[id] + best
	}
	var ready []NodeID
	for id := 0; id < n; id++ {
		if g.nodes[id].Kind == KindOp && g.Alive(NodeID(id)) && pendingArgs[id] == 0 {
			ready = append(ready, NodeID(id))
		}
	}
	var sched []NodeID
	for len(ready) > 0 {
		pick := 0
		for i := 1; i < len(ready); i++ {
			ri, rp := ready[i], ready[pick]
			if rank[ri] > rank[rp] || (rank[ri] == rank[rp] && ri < rp) {
				pick = i
			}
		}
		id := ready[pick]
		ready = append(ready[:pick], ready[pick+1:]...)
		sched = append(sched, id)
		for _, u := range users[id] {
			pendingArgs[u]--
			if pendingArgs[u] == 0 {
				ready = append(ready, u)
			}
		}
	}
	return sched
}
