package graph

import "fmt"

// FoldConstants rewrites every operation node whose arguments are all
// constants into a constant node holding the operation's golden result,
// and returns how many nodes folded. Folding iterates in topological
// (ID) order, so chains of constant operations collapse in one pass.
// A folded constant costs a splat store instead of a DRAM compute
// instruction plus a temporary.
func (g *Graph) FoldConstants() int {
	folded := 0
	for id := range g.nodes {
		n := &g.nodes[id]
		if n.Kind != KindOp || !g.Alive(NodeID(id)) {
			continue
		}
		allConst := true
		for _, a := range n.Args {
			if g.nodes[a].Kind != KindConst {
				allConst = false
				break
			}
		}
		if !allConst {
			continue
		}
		vals := make([]uint64, len(n.Args))
		for k, a := range n.Args {
			vals[k] = g.nodes[a].Val
		}
		val := n.Op.Golden(vals, g.OpWidth(NodeID(id)))
		*n = Node{Kind: KindConst, Val: val & widthMask(n.Width), Width: n.Width, Root: n.Root}
		folded++
	}
	return folded
}

// CSE merges structurally identical nodes — same constant, or same
// operation over the same (already canonicalized) arguments — onto
// their first occurrence, and returns how many nodes it eliminated.
// Input nodes are never merged: distinct leaves are distinct storage
// even when their widths agree. Merged duplicates stay in the node
// table but lose all references; DCE retires them.
func (g *Graph) CSE() int {
	repl := make([]NodeID, len(g.nodes))
	for i := range repl {
		repl[i] = NodeID(i)
	}
	canon := map[string]NodeID{}
	merged := 0
	for id := range g.nodes {
		n := &g.nodes[id]
		for k, a := range n.Args {
			n.Args[k] = repl[a]
		}
		var key string
		switch n.Kind {
		case KindConst:
			key = fmt.Sprintf("c|%d|%d", n.Val, n.Width)
		case KindOp:
			key = fmt.Sprintf("o|%d|%v", n.Op.Code, n.Args)
		default:
			continue // inputs are never merged
		}
		if first, ok := canon[key]; ok {
			repl[id] = first
			if n.Root {
				// The canonical node takes over the root role; the
				// duplicate must drop it, or — when DCE is skipped — it
				// would schedule as a root without result storage.
				g.nodes[first].Root = true
				n.Root = false
			}
			merged++
			continue
		}
		canon[key] = NodeID(id)
	}
	for i, r := range g.roots {
		g.roots[i] = repl[r]
	}
	return merged
}

// DCE marks every node unreachable from the roots as dead and returns
// how many operation and constant nodes it retired. Dead inputs are
// marked too (so the facade skips binding them) but not counted — they
// cost the compiled program nothing.
func (g *Graph) DCE() int {
	live := make([]bool, len(g.nodes))
	var mark func(id NodeID)
	mark = func(id NodeID) {
		if live[id] {
			return
		}
		live[id] = true
		for _, a := range g.nodes[id].Args {
			mark(a)
		}
	}
	for _, r := range g.roots {
		mark(r)
	}
	g.dead = make([]bool, len(g.nodes))
	removed := 0
	for id := range g.nodes {
		if live[id] {
			continue
		}
		g.dead[id] = true
		if g.nodes[id].Kind != KindInput {
			removed++
		}
	}
	return removed
}
