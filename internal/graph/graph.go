// Package graph implements the lazy expression-graph compiler behind
// the public Lazy/Materialize facade: a dataflow DAG IR over the
// operation catalog, classic optimization passes (constant folding,
// common-subexpression elimination, dead-node elimination), a
// cost-model-driven list scheduler, a liveness pass that assigns
// intermediates to a small pool of reused temporary-row slots
// (register allocation for subarray rows), and lowering of the
// scheduled DAG to an isa.Program the batched/cluster execution
// engines run.
//
// The package is storage-agnostic: it reasons about node IDs and slot
// indices only. The public facade owns the Vector/ShardedVector
// allocations and resolves nodes to bbop object handles at lowering
// time.
package graph

import (
	"fmt"

	"simdram/internal/ops"
)

// NodeID names one node of a Graph.
type NodeID int

// Kind classifies a node.
type Kind uint8

// Node kinds.
const (
	// KindInput is a leaf bound to caller-provided storage (a Vector or
	// ShardedVector); the compiler never allocates or writes it.
	KindInput Kind = iota
	// KindConst is a scalar constant splatted across all lanes; it
	// materializes as a stored vector, never as DRAM compute.
	KindConst
	// KindOp applies one catalog operation to its argument nodes.
	KindOp
)

// Node is one vertex of the dataflow DAG. Args always refer to
// lower-numbered nodes, so ascending ID order is a topological order —
// a property every pass in this package relies on.
type Node struct {
	Kind  Kind
	Op    ops.Def  // KindOp: the operation applied
	Args  []NodeID // KindOp: operand nodes, operand-major
	Width int      // result element width in bits
	Val   uint64   // KindConst: the splatted value
	Root  bool     // marked as a materialization root
}

// Graph is a dataflow DAG under construction and optimization. Nodes
// are append-only; passes rewrite them in place (folding an op into a
// const), remap references (CSE), or mark them dead (DCE) — IDs handed
// out to the caller stay stable across every pass.
type Graph struct {
	nodes []Node
	roots []NodeID
	dead  []bool
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Len returns the number of nodes ever added (dead ones included).
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) *Node { return &g.nodes[id] }

// Alive reports whether the node survived dead-node elimination (true
// for every node before DCE runs).
func (g *Graph) Alive(id NodeID) bool {
	return g.dead == nil || !g.dead[id]
}

// Roots returns the root IDs in MarkRoot order. Passes keep each entry
// pointing at the node that computes that root's value, so position i
// always corresponds to the i-th MarkRoot call.
func (g *Graph) Roots() []NodeID { return g.roots }

// Input adds a leaf node of the given width.
func (g *Graph) Input(width int) (NodeID, error) {
	if width < 1 || width > 64 {
		return 0, fmt.Errorf("graph: input width %d out of range [1,64]", width)
	}
	return g.add(Node{Kind: KindInput, Width: width}), nil
}

// Const adds a scalar-constant node of the given width.
func (g *Graph) Const(val uint64, width int) (NodeID, error) {
	if width < 1 || width > 64 {
		return 0, fmt.Errorf("graph: const width %d out of range [1,64]", width)
	}
	return g.add(Node{Kind: KindConst, Val: val & widthMask(width), Width: width}), nil
}

// Op adds an operation node over existing argument nodes, validating
// arity and per-operand widths against the catalog definition and
// computing the result width. The ISA encodes at most 3 source
// operands, so wider fan-in must be expressed as a tree.
func (g *Graph) Op(d ops.Def, args ...NodeID) (NodeID, error) {
	if len(args) == 0 {
		return 0, fmt.Errorf("graph: %s: no arguments", d.Name)
	}
	if len(args) > 3 {
		return 0, fmt.Errorf("graph: %s: ISA encodes at most 3 source operands, have %d", d.Name, len(args))
	}
	if d.Arity >= 0 && len(args) != d.Arity {
		return 0, fmt.Errorf("graph: %s: needs %d arguments, have %d", d.Name, d.Arity, len(args))
	}
	if d.Arity < 0 && len(args) < 2 {
		return 0, fmt.Errorf("graph: %s: N-ary operation needs at least 2 arguments", d.Name)
	}
	for _, a := range args {
		if a < 0 || int(a) >= len(g.nodes) {
			return 0, fmt.Errorf("graph: %s: argument %d is not a node of this graph", d.Name, a)
		}
	}
	w := g.nodes[args[0]].Width
	want := d.SourceWidths(w, len(args))
	for k, a := range args {
		if got := g.nodes[a].Width; got != want[k] {
			return 0, fmt.Errorf("graph: %s: argument %d has width %d, operation expects %d", d.Name, k, got, want[k])
		}
	}
	n := Node{Kind: KindOp, Op: d, Args: append([]NodeID(nil), args...), Width: d.DstWidth(w)}
	return g.add(n), nil
}

// MarkRoot marks a node as a materialization root. The same node may be
// marked more than once; each call appends a (possibly repeated) entry.
func (g *Graph) MarkRoot(id NodeID) {
	g.nodes[id].Root = true
	g.roots = append(g.roots, id)
}

func (g *Graph) add(n Node) NodeID {
	g.nodes = append(g.nodes, n)
	return NodeID(len(g.nodes) - 1)
}

// OpWidth returns the operation width of an op node: the width of its
// first operand, the w every catalog definition is parameterized by.
func (g *Graph) OpWidth(id NodeID) int {
	return g.nodes[g.nodes[id].Args[0]].Width
}

// widthMask returns the w-bit mask.
func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}
