package graph

import (
	"sync"
	"testing"

	"simdram/internal/ops"
)

// profilePlan builds a two-op plan (add then max over three inputs)
// whose schedule the profile tests feed observations against.
func profilePlan(t *testing.T) *Plan {
	t.Helper()
	g := buildAddMax(t, 8, "addition", "max")
	return &Plan{Graph: g, Sched: g.ProgramOrder()}
}

// unitModel prices every op class at a fixed static cost.
func unitModel(ns float64) CostFn {
	return func(ops.Def, int, int) float64 { return ns }
}

func TestProfileStoreDivergenceTriggersOnce(t *testing.T) {
	s := NewProfileStore(0.25, 3, 16)
	plan := profilePlan(t)
	model := unitModel(100)

	// Matching observations: never diverges no matter how many jobs.
	for i := 0; i < 5; i++ {
		s.Record("match", plan, []float64{100, 100}, model)
	}
	if s.TakeRecompile("match") {
		t.Fatal("profile matching the model must not trigger a recompile")
	}

	// Diverged observations (2× the model): below minJobs no trigger,
	// at minJobs exactly one caller wins the recompile.
	s.Record("skew", plan, []float64{200, 200}, model)
	s.Record("skew", plan, []float64{200, 200}, model)
	if s.TakeRecompile("skew") {
		t.Fatal("recompile triggered below minJobs")
	}
	s.Record("skew", plan, []float64{200, 200}, model)
	if !s.TakeRecompile("skew") {
		t.Fatal("diverged profile at minJobs did not trigger a recompile")
	}
	if s.TakeRecompile("skew") {
		t.Fatal("second TakeRecompile on the same shape must lose")
	}
	st := s.Stats()
	if st.Recompiles != 1 || st.Shapes != 2 || st.Jobs != 8 {
		t.Fatalf("stats = %+v, want 1 recompile over 2 shapes / 8 jobs", st)
	}
	if got := s.Jobs("skew"); got != 3 {
		t.Fatalf("Jobs(skew) = %d, want 3", got)
	}
}

func TestProfileStoreScheduleCost(t *testing.T) {
	s := NewProfileStore(0.25, 1, 16)
	plan := profilePlan(t)
	model := unitModel(100)
	// add measured at 400, max at 100.
	s.Record("k", plan, []float64{400, 100}, model)

	cost := s.ScheduleCost("k", unitModel(7))
	add, max := opDef(t, "addition"), opDef(t, "max")
	if got := cost(add, 8, 2); got != 400 {
		t.Fatalf("observed addition cost = %v, want 400", got)
	}
	if got := cost(max, 8, 2); got != 100 {
		t.Fatalf("observed max cost = %v, want 100", got)
	}
	// Unobserved op class (different width) falls back to base.
	if got := cost(add, 16, 2); got != 7 {
		t.Fatalf("unobserved class cost = %v, want base 7", got)
	}
}

func TestProfileStoreRecordMismatchIgnored(t *testing.T) {
	s := NewProfileStore(0.25, 1, 16)
	plan := profilePlan(t)
	s.Record("k", plan, []float64{1}, unitModel(1))   // wrong length
	s.Record("k", plan, nil, unitModel(1))            // empty
	s.Record("k", nil, []float64{1, 1}, unitModel(1)) // no plan
	s.Record("k", plan, []float64{1, 1}, nil)         // no model
	if st := s.Stats(); st.Jobs != 0 || st.Shapes != 0 {
		t.Fatalf("malformed records were folded in: %+v", st)
	}
}

func TestProfileStoreNilSafe(t *testing.T) {
	var s *ProfileStore
	s.Record("k", profilePlan(t), []float64{1, 1}, unitModel(1))
	if s.TakeRecompile("k") {
		t.Fatal("nil store asked for a recompile")
	}
	if got := s.ScheduleCost("k", unitModel(5))(opDef(t, "addition"), 8, 2); got != 5 {
		t.Fatalf("nil store ScheduleCost = %v, want base", got)
	}
	if s.Jobs("k") != 0 || s.Stats() != (ProfileStats{}) {
		t.Fatal("nil store reported non-zero state")
	}
	if NewProfileStore(-1, 1, 16) != nil {
		t.Fatal("negative threshold must disable the store")
	}
}

func TestProfileStoreCapDropsColdest(t *testing.T) {
	s := NewProfileStore(0.25, 1, 2)
	plan := profilePlan(t)
	model := unitModel(100)
	s.Record("busy", plan, []float64{100, 100}, model)
	s.Record("busy", plan, []float64{100, 100}, model)
	s.Record("quiet", plan, []float64{100, 100}, model)
	s.Record("new", plan, []float64{100, 100}, model) // evicts "quiet" (fewest jobs)
	if got := s.Jobs("busy"); got != 2 {
		t.Fatalf("busy shape dropped: jobs = %d, want 2", got)
	}
	if got := s.Jobs("quiet"); got != 0 {
		t.Fatalf("coldest shape retained: jobs = %d, want 0", got)
	}
	if st := s.Stats(); st.Shapes != 2 {
		t.Fatalf("shapes = %d, want cap 2", st.Shapes)
	}
}

// TestProfileStoreConcurrent exercises Record/TakeRecompile/
// ScheduleCost under -race and proves at most one recompile is claimed
// per shape.
func TestProfileStoreConcurrent(t *testing.T) {
	s := NewProfileStore(0.25, 1, 16)
	plan := profilePlan(t)
	model := unitModel(100)
	var wg sync.WaitGroup
	wins := make([]int, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Record("k", plan, []float64{300, 300}, model)
				if s.TakeRecompile("k") {
					wins[w]++
				}
				_ = s.ScheduleCost("k", model)
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, n := range wins {
		total += n
	}
	if total != 1 {
		t.Fatalf("%d goroutines claimed the recompile, want exactly 1", total)
	}
}

// TestScheduleConvergesUnderSkewedCosts is the scheduler-level
// convergence property behind the recompile guard: on a DAG whose
// observed per-op costs are skewed against the static model, the
// schedule built with observed costs — priced by the same
// deterministic bank-limited makespan estimate the recompile path
// uses — is no worse than the statically priced schedule, and a
// recompile that keeps the better of the two can never regress.
func TestScheduleConvergesUnderSkewedCosts(t *testing.T) {
	// One long chain of additions and several independent max nodes.
	// The static model prices max far above addition; the "observed"
	// ground truth inverts that, so static priorities overlap the
	// wrong work.
	g := New()
	a, _ := g.Input(8)
	b, _ := g.Input(8)
	add, max := opDef(t, "addition"), opDef(t, "max")
	chain := a
	for i := 0; i < 6; i++ {
		chain, _ = g.Op(add, chain, b)
	}
	for i := 0; i < 4; i++ {
		m, _ := g.Op(max, a, b)
		g.MarkRoot(m)
	}
	g.MarkRoot(chain)

	static := func(d ops.Def, w, n int) float64 {
		if d.Code == max.Code {
			return 500
		}
		return 10
	}
	observed := func(d ops.Def, w, n int) float64 {
		if d.Code == max.Code {
			return 10
		}
		return 500
	}

	const machines = 2
	staticSched := g.Schedule(static)
	profiledSched := g.Schedule(observed)
	staticSpan := g.EstimateMakespanNs(staticSched, observed, machines)
	profiledSpan := g.EstimateMakespanNs(profiledSched, observed, machines)
	if profiledSpan > staticSpan {
		t.Fatalf("schedule built with observed costs prices worse than the static one under the same ground truth: %.0f > %.0f",
			profiledSpan, staticSpan)
	}
	// Both schedules are topological orders of the same DAG: same node
	// multiset, so a recompile swapping one for the other cannot change
	// results.
	seen := map[NodeID]bool{}
	for _, id := range staticSched {
		seen[id] = true
	}
	if len(staticSched) != len(profiledSched) {
		t.Fatalf("schedules differ in length: %d vs %d", len(staticSched), len(profiledSched))
	}
	for _, id := range profiledSched {
		if !seen[id] {
			t.Fatalf("profiled schedule contains node %d the static one lacks", id)
		}
	}
}
