package graph

// Assignment is the result of the liveness pass: every scheduled
// non-root operation node mapped to a temporary-storage slot, plus the
// row accounting that quantifies what lifetime reuse saved. Slot i
// holds SlotWidths[i]-bit elements; the facade allocates one vector
// per slot and binds every node assigned to it.
type Assignment struct {
	// SlotOf maps each scheduled non-root op node to its slot index.
	// Root nodes are absent: their results land in caller-visible
	// vectors that outlive the batch, never in pooled temporaries.
	SlotOf map[NodeID]int
	// SlotWidths is the element width of every slot, indexed by slot.
	SlotWidths []int
	// NaiveRows is the DRAM rows per subarray that one fresh temporary
	// per intermediate would allocate (the sum of every intermediate's
	// width) — the baseline reuse is measured against.
	NaiveRows int
	// PooledRows is the rows per subarray the slot pool actually
	// allocates (the sum of SlotWidths).
	PooledRows int
}

// Assign runs liveness over a schedule and packs intermediates into
// reused slots: walking the schedule, each value's slot returns to a
// per-width free pool right after the instruction that uses it last, so
// the next intermediate of that width reuses those rows instead of
// allocating fresh ones. A slot is never handed to the instruction that
// frees it — the destination must not alias a source — so release
// happens after the current node claims its own slot. With reuse false
// every intermediate gets a fresh slot (the naive per-node allocation
// the benchmarks compare against).
func Assign(g *Graph, sched []NodeID, reuse bool) Assignment {
	// lastUse[a] is the schedule position of the last scheduled reader.
	lastUse := map[NodeID]int{}
	for i, id := range sched {
		for _, a := range g.Node(id).Args {
			lastUse[a] = i
		}
	}
	asg := Assignment{SlotOf: map[NodeID]int{}}
	freeByWidth := map[int][]int{}
	for i, id := range sched {
		n := g.Node(id)
		if !n.Root {
			asg.NaiveRows += n.Width
			var slot int
			if pool := freeByWidth[n.Width]; reuse && len(pool) > 0 {
				slot = pool[len(pool)-1]
				freeByWidth[n.Width] = pool[:len(pool)-1]
			} else {
				slot = len(asg.SlotWidths)
				asg.SlotWidths = append(asg.SlotWidths, n.Width)
			}
			asg.SlotOf[id] = slot
		}
		seen := map[NodeID]bool{}
		for _, a := range n.Args {
			if seen[a] {
				continue
			}
			seen[a] = true
			slot, pooled := asg.SlotOf[a]
			if pooled && lastUse[a] == i {
				w := g.Node(a).Width
				freeByWidth[w] = append(freeByWidth[w], slot)
			}
		}
	}
	for _, w := range asg.SlotWidths {
		asg.PooledRows += w
	}
	return asg
}
