package graph_test

import (
	"testing"

	"simdram/internal/graph"
	"simdram/internal/ops"
	"simdram/internal/verify"
)

// fuzzOps is the width-preserving slice of the catalog the fuzz
// builder draws from: binary ops whose destination and sources all
// share the element width, plus the N-ary reductions — enough to
// exercise folding, CSE, scheduling, slot reuse, and lowering without
// having to solve width constraints while decoding fuzz bytes.
func fuzzOps() []ops.Def {
	const w = 8
	var out []ops.Def
	for _, d := range ops.Catalog() {
		switch d.Arity {
		case 2:
			ws := d.SourceWidths(w, 2)
			if d.DstWidth(w) == w && ws[0] == w && ws[1] == w {
				out = append(out, d)
			}
		case -1:
			if d.DstWidth(w) == w {
				out = append(out, d)
			}
		}
	}
	return out
}

// buildFuzzDAG decodes a byte string into a DAG over width-8 nodes:
// each byte pair picks an operation and its operands from the nodes
// built so far. The same bytes always build the same graph.
func buildFuzzDAG(data []byte, catalog []ops.Def) *graph.Graph {
	const width = 8
	g := graph.New()
	var nodes []graph.NodeID
	for i := 0; i < 3; i++ {
		id, err := g.Input(width)
		if err != nil {
			panic(err)
		}
		nodes = append(nodes, id)
	}
	for i := 0; i+1 < len(data) && g.Len() < 40; i += 2 {
		sel, pick := data[i], data[i+1]
		switch sel % 8 {
		case 0: // constant leaf
			id, err := g.Const(uint64(pick), width)
			if err != nil {
				panic(err)
			}
			nodes = append(nodes, id)
		case 1: // extra root on an existing node
			g.MarkRoot(nodes[int(pick)%len(nodes)])
		default: // operation node
			d := catalog[int(sel)%len(catalog)]
			arity := d.Arity
			if arity < 0 {
				arity = 2 + int(pick)%2
			}
			args := make([]graph.NodeID, arity)
			for k := range args {
				args[k] = nodes[(int(pick)+k*7)%len(nodes)]
			}
			id, err := g.Op(d, args...)
			if err != nil {
				panic(err) // width-preserving catalog: every pick must be legal
			}
			nodes = append(nodes, id)
		}
	}
	g.MarkRoot(nodes[len(nodes)-1])
	return g
}

// lowerForOracle runs the whole optimization pipeline on the DAG and
// lowers it with synthetic handles, returning the program plus the
// verifier's object table (leaf handles defined, op handles not).
func lowerForOracle(t *testing.T, g *graph.Graph) (progLen int) {
	t.Helper()
	g.FoldConstants()
	g.CSE()
	g.DCE()
	sched := g.ProgramOrder()
	asg := graph.Assign(g, sched, true)

	const (
		leafBase = 1   // inputs and constants: 1 + node ID
		slotBase = 300 // pooled slots: slotBase + slot index
		rootBase = 600 // root results: rootBase + node ID
	)
	objects := map[uint16]verify.Object{}
	handle := func(id graph.NodeID) (uint16, error) {
		n := g.Node(id)
		switch {
		case n.Kind != graph.KindOp:
			h := uint16(leafBase + int(id))
			objects[h] = verify.Object{Width: n.Width, Defined: true}
			return h, nil
		case n.Root:
			h := uint16(rootBase + int(id))
			objects[h] = verify.Object{Width: n.Width}
			return h, nil
		default:
			slot := asg.SlotOf[id]
			h := uint16(slotBase + slot)
			objects[h] = verify.Object{Width: asg.SlotWidths[slot]}
			return h, nil
		}
	}
	prog, err := graph.Lower(g, sched, handle, 64)
	if err != nil {
		t.Fatalf("lowering a valid fuzz DAG failed: %v", err)
	}
	if len(prog) == 0 {
		return 0
	}
	// The verifier is the oracle: every program the optimize → schedule
	// → assign → lower pipeline emits must pass the full IR check,
	// including def-before-use over reused slots and the hazard
	// cross-check against the scheduler's dependence graph.
	if err := verify.Program(prog, verify.Options{Objects: objects, Deps: prog.Deps()}); err != nil {
		t.Fatalf("lowered program failed verification: %v\nprogram: %v", err, prog)
	}
	return len(prog)
}

// FuzzCanonicalKey checks two invariants over byte-driven DAGs: the
// canonical key is deterministic (the plan cache's correctness rests
// on equal shapes hashing equal), and every DAG the builder produces
// survives the full compile pipeline with the IR verifier as oracle.
func FuzzCanonicalKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0})
	f.Add([]byte{2, 0, 3, 1, 4, 2, 1, 0})
	f.Add([]byte{0, 7, 2, 3, 2, 3, 5, 1, 7, 2, 1, 1})
	f.Add([]byte{0, 7, 0, 7, 2, 9, 2, 9, 6, 4, 6, 4, 1, 5})

	catalog := fuzzOps()
	if len(catalog) < 4 {
		f.Fatalf("width-preserving catalog too small: %d ops", len(catalog))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g1 := buildFuzzDAG(data, catalog)
		g2 := buildFuzzDAG(data, catalog)
		k1, k2 := g1.CanonicalKey(), g2.CanonicalKey()
		if k1 != k2 {
			t.Fatalf("canonical key not deterministic:\n%q\n%q", k1, k2)
		}
		lowerForOracle(t, g1)
		// Optimization must not change the canonical key's input: g2 is
		// still the un-lowered twin, so its key pins the pre-pass shape.
		if g2.CanonicalKey() != k1 {
			t.Fatal("canonical key changed without the graph changing")
		}
	})
}
