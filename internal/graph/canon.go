package graph

import (
	"strconv"
	"strings"
)

// CanonicalKey serializes the structural shape of the graph — node
// kinds, opcodes, widths, constant values, argument topology, and the
// root sequence — into a string that is identical for two graphs built
// from structurally identical expression DAGs and different otherwise.
// Leaf *identity* is deliberately excluded: an input node contributes
// only its width, so the same request shape over different operand
// vectors (or different request payloads) produces the same key. That
// is exactly the equivalence class a plan cache wants: everything the
// optimization passes, the scheduler, and the slot assigner look at is
// in the key, while everything lowering re-binds per call (which
// storage backs each leaf) is not.
//
// The key is exact, not a digest: using it as a map key can never
// collide two distinct shapes. Call on the freshly built graph, before
// any pass mutates it.
func (g *Graph) CanonicalKey() string {
	var b strings.Builder
	b.Grow(16 * len(g.nodes))
	for i := range g.nodes {
		n := &g.nodes[i]
		switch n.Kind {
		case KindInput:
			b.WriteByte('i')
			b.WriteString(strconv.Itoa(n.Width))
		case KindConst:
			b.WriteByte('c')
			b.WriteString(strconv.FormatUint(n.Val, 16))
			b.WriteByte(':')
			b.WriteString(strconv.Itoa(n.Width))
		case KindOp:
			b.WriteByte('o')
			b.WriteString(strconv.Itoa(int(n.Op.Code)))
			b.WriteByte('(')
			for k, a := range n.Args {
				if k > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(int(a)))
			}
			b.WriteByte(')')
		}
		b.WriteByte(';')
	}
	b.WriteByte('r')
	for k, r := range g.roots {
		if k > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(r)))
	}
	return b.String()
}
