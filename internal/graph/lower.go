package graph

import (
	"fmt"

	"simdram/internal/isa"
)

// HandleOf resolves a node to the bbop object handle of the storage
// that holds its value at execution time: the caller-provided vector
// for inputs, the splatted constant vector for constants, the pooled
// slot vector for intermediates, and the result vector for roots.
type HandleOf func(NodeID) (uint16, error)

// Lower emits the scheduled DAG as an isa.Program over object handles:
// one bbop instruction per scheduled operation node, in schedule order.
// Slot reuse shows up to the batched engine as ordinary WAR/WAW hazards
// over the slot handles, so isa.Program.Deps keeps reused rows
// correctly ordered while everything else overlaps. size is the element
// count every instruction operates on.
func Lower(g *Graph, sched []NodeID, handle HandleOf, size uint32) (isa.Program, error) {
	prog := make(isa.Program, 0, len(sched))
	for _, id := range sched {
		n := g.Node(id)
		if n.Kind != KindOp {
			return nil, fmt.Errorf("graph: scheduled node %d is not an operation", id)
		}
		dst, err := handle(id)
		if err != nil {
			return nil, fmt.Errorf("graph: node %d: %w", id, err)
		}
		in := isa.Instruction{
			Op:    isa.FromOp(n.Op.Code),
			Dst:   dst,
			Size:  size,
			Width: uint8(g.OpWidth(id)),
			N:     uint8(len(n.Args)),
		}
		for k, a := range n.Args {
			h, err := handle(a)
			if err != nil {
				return nil, fmt.Errorf("graph: node %d argument %d: %w", id, k, err)
			}
			in.Src[k] = h
		}
		prog = append(prog, in)
	}
	return prog, nil
}
