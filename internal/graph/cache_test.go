package graph

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simdram/internal/ops"
)

func opDef(t *testing.T, name string) ops.Def {
	t.Helper()
	d, err := ops.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// buildAddMax constructs input(w) + input(w) then max with a third
// input — the reference shape the key tests vary.
func buildAddMax(t *testing.T, width int, op1, op2 string) *Graph {
	t.Helper()
	g := New()
	a, _ := g.Input(width)
	b, _ := g.Input(width)
	c, _ := g.Input(width)
	s, err := g.Op(opDef(t, op1), a, b)
	if err != nil {
		t.Fatal(err)
	}
	r, err := g.Op(opDef(t, op2), s, c)
	if err != nil {
		t.Fatal(err)
	}
	g.MarkRoot(r)
	return g
}

func TestCanonicalKeyEquivalence(t *testing.T) {
	// Same shape built twice — regardless of which storage would back
	// the inputs — has the same key.
	k1 := buildAddMax(t, 8, "addition", "max").CanonicalKey()
	k2 := buildAddMax(t, 8, "addition", "max").CanonicalKey()
	if k1 != k2 {
		t.Fatalf("identical shapes, different keys:\n%q\n%q", k1, k2)
	}

	// Same topology, different width: must differ.
	if k := buildAddMax(t, 16, "addition", "max").CanonicalKey(); k == k1 {
		t.Fatal("different widths produced the same key")
	}
	// Same topology, different opcode: must differ.
	if k := buildAddMax(t, 8, "subtraction", "max").CanonicalKey(); k == k1 {
		t.Fatal("different opcodes produced the same key")
	}
	if k := buildAddMax(t, 8, "addition", "min").CanonicalKey(); k == k1 {
		t.Fatal("different second opcode produced the same key")
	}
}

func TestCanonicalKeyDistinguishesConstsAndRoots(t *testing.T) {
	build := func(val uint64, markBoth bool) string {
		g := New()
		a, _ := g.Input(8)
		c, _ := g.Const(val, 8)
		s, err := g.Op(opDef(t, "addition"), a, c)
		if err != nil {
			t.Fatal(err)
		}
		g.MarkRoot(s)
		if markBoth {
			g.MarkRoot(a)
		}
		return g.CanonicalKey()
	}
	if build(3, false) == build(4, false) {
		t.Fatal("different constant values produced the same key")
	}
	if build(3, false) == build(3, true) {
		t.Fatal("different root sets produced the same key")
	}
}

func TestCanonicalKeyDistinguishesTopology(t *testing.T) {
	// (a+b)+c vs a+(b+c): same node multiset, different edges.
	add := opDef(t, "addition")
	left := New()
	{
		a, _ := left.Input(8)
		b, _ := left.Input(8)
		c, _ := left.Input(8)
		s1, _ := left.Op(add, a, b)
		s2, _ := left.Op(add, s1, c)
		left.MarkRoot(s2)
	}
	right := New()
	{
		a, _ := right.Input(8)
		b, _ := right.Input(8)
		c, _ := right.Input(8)
		s1, _ := right.Op(add, b, c)
		s2, _ := right.Op(add, a, s1)
		right.MarkRoot(s2)
	}
	if left.CanonicalKey() == right.CanonicalKey() {
		t.Fatal("different topologies produced the same key")
	}
}

func TestPlanCacheHitMissEviction(t *testing.T) {
	c := NewPlanCache(2)
	if p := c.Lookup("a"); p != nil {
		t.Fatal("empty cache returned a plan")
	}
	pa, pb, pc := &Plan{}, &Plan{}, &Plan{}
	c.Insert("a", pa, 100)
	c.Insert("b", pb, 100)
	if got := c.Lookup("a"); got != pa {
		t.Fatal("lookup after insert missed")
	}
	// Third insert must evict the least valuable entry — with equal
	// compile costs that is the least recently used ("b": "a" was just
	// looked up), NOT the FIFO-oldest ("a").
	c.Insert("c", pc, 100)
	if got := c.Lookup("a"); got != pa {
		t.Fatal("recently used plan evicted (FIFO behavior) instead of the LRU one")
	}
	if got := c.Lookup("b"); got != nil {
		t.Fatal("capacity-2 cache retained 3 plans")
	}
	if got := c.Lookup("c"); got != pc {
		t.Fatal("newest plan evicted instead of the LRU one")
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 2 || st.Size != 2 || st.Evicted != 1 {
		t.Fatalf("stats = %+v, want 3 hits, 2 misses, size 2, 1 evicted", st)
	}
	if got, want := st.HitRate(), 3.0/5.0; got != want {
		t.Fatalf("hit rate = %v, want %v", got, want)
	}
	if st.Policy != EvictionPolicy {
		t.Fatalf("policy = %q, want %q", st.Policy, EvictionPolicy)
	}
	// The evicted "b" had never been hit: not a hot eviction.
	if st.EvictedHot != 0 {
		t.Fatalf("EvictedHot = %d, want 0 (victim was cold)", st.EvictedHot)
	}

	// Duplicate insert keeps the first plan.
	c.Insert("c", &Plan{}, 100)
	if got := c.Lookup("c"); got != pc {
		t.Fatal("duplicate insert replaced the original plan")
	}
}

// TestPlanCacheCostWeightedEviction pins the cost half of the policy:
// between two equally stale entries, the cheap-to-recompile one is the
// victim.
func TestPlanCacheCostWeightedEviction(t *testing.T) {
	c := NewPlanCache(2)
	c.Insert("cheap", &Plan{}, 10)
	c.Insert("costly", &Plan{}, 10_000)
	// Equal recency pressure (neither looked up since insert); the
	// cheap plan must go.
	c.Insert("new", &Plan{}, 10)
	if c.Lookup("costly") == nil {
		t.Fatal("expensive plan evicted before the cheap one")
	}
	if c.Lookup("cheap") != nil {
		t.Fatal("cheap plan survived over the expensive one")
	}
}

// TestPlanCacheHotShapeSurvivesChurn is the eviction-policy property
// test: one hot shape, refreshed between every insertion, survives a
// churn of N > capacity cold shapes — while a reference FIFO cache
// replaying the exact same trace drops the hot shape and ends with a
// strictly lower hit rate.
func TestPlanCacheHotShapeSurvivesChurn(t *testing.T) {
	const capacity = 8
	const churn = 64 // cold shapes, > capacity

	// Reference FIFO cache (the old policy), replayed on the same trace.
	fifoEntries := map[string]bool{}
	var fifoOrder []string
	var fifoHits, fifoLookups int
	fifoEvictedHot := false
	fifoLookup := func(key string) bool {
		fifoLookups++
		if fifoEntries[key] {
			fifoHits++
			return true
		}
		return false
	}
	fifoInsert := func(key string) {
		if fifoEntries[key] {
			return
		}
		for len(fifoOrder) >= capacity {
			if fifoOrder[0] == "hot" {
				fifoEvictedHot = true
			}
			delete(fifoEntries, fifoOrder[0])
			fifoOrder = fifoOrder[1:]
		}
		fifoEntries[key] = true
		fifoOrder = append(fifoOrder, key)
	}

	c := NewPlanCache(capacity)
	hot := &Plan{}
	trace := func(key string) *Plan {
		// One lookup; on miss, an insert — both caches see the same ops.
		p := c.Lookup(key)
		hitFIFO := fifoLookup(key)
		if p == nil {
			np := &Plan{}
			if key == "hot" {
				np = hot
			}
			c.Insert(key, np, 100)
			p = np
		}
		if !hitFIFO {
			fifoInsert(key)
		}
		return p
	}

	trace("hot") // cold insert of the hot shape — FIFO-oldest from now on
	for i := 0; i < churn; i++ {
		trace(fmt.Sprintf("cold-%d", i)) // one-off shape, never seen again
		if got := trace("hot"); got != hot {
			t.Fatalf("hot shape evicted after %d cold insertions (new policy must keep it resident)", i+1)
		}
	}

	if !fifoEvictedHot {
		t.Fatal("reference FIFO never evicted the hot shape — the trace does not discriminate the policies")
	}
	st := c.Stats()
	newRate := st.HitRate()
	fifoRate := float64(fifoHits) / float64(fifoLookups)
	if newRate <= fifoRate {
		t.Fatalf("cost-LRU hit rate %.3f not strictly higher than FIFO %.3f on the same trace", newRate, fifoRate)
	}
	// Every eviction was a never-hit cold shape: no hot evictions.
	if st.Evicted == 0 || st.EvictedHot != 0 {
		t.Fatalf("stats = %+v, want cold evictions only", st)
	}
}

// TestPlanCacheEvictedHot pins the EvictedHot counter: forcing a
// once-hit entry out (by stacking expensive fresher entries) counts as
// a hot eviction.
func TestPlanCacheEvictedHot(t *testing.T) {
	c := NewPlanCache(2)
	c.Insert("warm", &Plan{}, 10)
	if c.Lookup("warm") == nil { // one hit: the entry is warm now
		t.Fatal("warm lookup missed")
	}
	c.Insert("costly-1", &Plan{}, 1e9)
	c.Insert("costly-2", &Plan{}, 1e9) // victim must be "warm" (cheapest)
	st := c.Stats()
	if st.Evicted != 1 || st.EvictedHot != 1 {
		t.Fatalf("stats = %+v, want 1 eviction counted hot", st)
	}
	if c.Lookup("warm") != nil {
		t.Fatal("expected warm entry to be the victim of the cost-weighted policy")
	}
}

// TestPlanCacheReplace pins the recompile path: Replace overwrites the
// entry in place (no eviction, fresh recency).
func TestPlanCacheReplace(t *testing.T) {
	c := NewPlanCache(2)
	p1, p2 := &Plan{}, &Plan{Profiled: true}
	c.Insert("a", p1, 100)
	c.Replace("a", p2, 200)
	if got := c.Lookup("a"); got != p2 {
		t.Fatal("Replace did not overwrite the entry")
	}
	st := c.Stats()
	if st.Size != 1 || st.Evicted != 0 {
		t.Fatalf("stats = %+v, want size 1 and no evictions after Replace", st)
	}
	// Replace on an absent key inserts.
	c.Replace("b", p1, 50)
	if got := c.Lookup("b"); got != p1 {
		t.Fatal("Replace on an absent key did not insert")
	}
}

// TestPlanCacheDisabled pins the disabled-cache contract: capacity < 1
// (and nil) caches ignore all traffic — no plans retained, and no
// counter churn, so Stats and HitRate cannot mislead (a disabled cache
// must not report a live size or a 0% hit rate climbing from real
// lookups).
func TestPlanCacheDisabled(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		c := NewPlanCache(capacity)
		c.Insert("a", &Plan{}, 100)
		if got := c.Lookup("a"); got != nil {
			t.Fatalf("capacity-%d cache cached a plan", capacity)
		}
		computes := 0
		p, hit := c.Do("a", func() *Plan { computes++; return &Plan{} })
		if p == nil || hit || computes != 1 {
			t.Fatalf("capacity-%d cache Do: plan=%v hit=%v computes=%d, want computed miss", capacity, p, hit, computes)
		}
		if st := c.Stats(); st != (CacheStats{}) {
			t.Fatalf("capacity-%d cache counted traffic: %+v, want zero-valued stats", capacity, st)
		}
	}
	var nilCache *PlanCache
	if got := nilCache.Lookup("a"); got != nil {
		t.Fatal("nil cache returned a plan")
	}
	nilCache.Insert("a", &Plan{}, 100) // must not panic
	if p, hit := nilCache.Do("a", func() *Plan { return &Plan{} }); p == nil || hit {
		t.Fatal("nil cache Do must compute")
	}
	if st := nilCache.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

// TestPlanCacheDoSingleflight proves in-flight deduplication under
// -race: many goroutines missing on the same key run the compile
// exactly once — the winner compiles, every loser waits for the
// winner's plan instead of executing its own compile pipeline.
func TestPlanCacheDoSingleflight(t *testing.T) {
	c := NewPlanCache(8)
	const waiters = 16
	var computes int32
	release := make(chan struct{})
	start := make(chan struct{})
	var wg sync.WaitGroup
	plans := make([]*Plan, waiters)
	for w := 0; w < waiters; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			p, _ := c.Do("shape", func() *Plan {
				atomic.AddInt32(&computes, 1)
				<-release // hold the flight open so every waiter piles up
				return &Plan{}
			})
			plans[w] = p
		}()
	}
	close(start)
	// Wait until every non-winner is parked on the flight, then let the
	// winner finish.
	for {
		st := c.Stats()
		if st.Coalesced+1 == waiters {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("%d goroutines compiled, want exactly 1 (losers must wait for the winner)", computes)
	}
	for w := 1; w < waiters; w++ {
		if plans[w] != plans[0] {
			t.Fatalf("waiter %d got a different plan than the winner", w)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != waiters-1 || st.Hits != waiters-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d coalesced hits", st, waiters-1)
	}
}

// TestPlanCacheDoPanicRecovers pins the failure path of the flight: a
// panicking compile must not strand waiters or poison the key.
func TestPlanCacheDoPanicRecovers(t *testing.T) {
	c := NewPlanCache(8)
	func() {
		defer func() { recover() }()
		c.Do("shape", func() *Plan { panic("compile failed") })
	}()
	done := make(chan *Plan, 1)
	go func() {
		p, _ := c.Do("shape", func() *Plan { return &Plan{} })
		done <- p
	}()
	select {
	case p := <-done:
		if p == nil {
			t.Fatal("retry after panicked flight returned nil plan")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter deadlocked on a panicked flight")
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("shape-%d", (i+w)%32)
				if c.Lookup(key) == nil {
					c.Insert(key, &Plan{}, 100)
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Size != 32 {
		t.Fatalf("size = %d, want 32 distinct shapes", st.Size)
	}
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("lookups = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}
