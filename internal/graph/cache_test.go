package graph

import (
	"fmt"
	"sync"
	"testing"

	"simdram/internal/ops"
)

func opDef(t *testing.T, name string) ops.Def {
	t.Helper()
	d, err := ops.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// buildAddMax constructs input(w) + input(w) then max with a third
// input — the reference shape the key tests vary.
func buildAddMax(t *testing.T, width int, op1, op2 string) *Graph {
	t.Helper()
	g := New()
	a, _ := g.Input(width)
	b, _ := g.Input(width)
	c, _ := g.Input(width)
	s, err := g.Op(opDef(t, op1), a, b)
	if err != nil {
		t.Fatal(err)
	}
	r, err := g.Op(opDef(t, op2), s, c)
	if err != nil {
		t.Fatal(err)
	}
	g.MarkRoot(r)
	return g
}

func TestCanonicalKeyEquivalence(t *testing.T) {
	// Same shape built twice — regardless of which storage would back
	// the inputs — has the same key.
	k1 := buildAddMax(t, 8, "addition", "max").CanonicalKey()
	k2 := buildAddMax(t, 8, "addition", "max").CanonicalKey()
	if k1 != k2 {
		t.Fatalf("identical shapes, different keys:\n%q\n%q", k1, k2)
	}

	// Same topology, different width: must differ.
	if k := buildAddMax(t, 16, "addition", "max").CanonicalKey(); k == k1 {
		t.Fatal("different widths produced the same key")
	}
	// Same topology, different opcode: must differ.
	if k := buildAddMax(t, 8, "subtraction", "max").CanonicalKey(); k == k1 {
		t.Fatal("different opcodes produced the same key")
	}
	if k := buildAddMax(t, 8, "addition", "min").CanonicalKey(); k == k1 {
		t.Fatal("different second opcode produced the same key")
	}
}

func TestCanonicalKeyDistinguishesConstsAndRoots(t *testing.T) {
	build := func(val uint64, markBoth bool) string {
		g := New()
		a, _ := g.Input(8)
		c, _ := g.Const(val, 8)
		s, err := g.Op(opDef(t, "addition"), a, c)
		if err != nil {
			t.Fatal(err)
		}
		g.MarkRoot(s)
		if markBoth {
			g.MarkRoot(a)
		}
		return g.CanonicalKey()
	}
	if build(3, false) == build(4, false) {
		t.Fatal("different constant values produced the same key")
	}
	if build(3, false) == build(3, true) {
		t.Fatal("different root sets produced the same key")
	}
}

func TestCanonicalKeyDistinguishesTopology(t *testing.T) {
	// (a+b)+c vs a+(b+c): same node multiset, different edges.
	add := opDef(t, "addition")
	left := New()
	{
		a, _ := left.Input(8)
		b, _ := left.Input(8)
		c, _ := left.Input(8)
		s1, _ := left.Op(add, a, b)
		s2, _ := left.Op(add, s1, c)
		left.MarkRoot(s2)
	}
	right := New()
	{
		a, _ := right.Input(8)
		b, _ := right.Input(8)
		c, _ := right.Input(8)
		s1, _ := right.Op(add, b, c)
		s2, _ := right.Op(add, a, s1)
		right.MarkRoot(s2)
	}
	if left.CanonicalKey() == right.CanonicalKey() {
		t.Fatal("different topologies produced the same key")
	}
}

func TestPlanCacheHitMissEviction(t *testing.T) {
	c := NewPlanCache(2)
	if p := c.Lookup("a"); p != nil {
		t.Fatal("empty cache returned a plan")
	}
	pa, pb, pc := &Plan{}, &Plan{}, &Plan{}
	c.Insert("a", pa)
	c.Insert("b", pb)
	if got := c.Lookup("a"); got != pa {
		t.Fatal("lookup after insert missed")
	}
	// Third insert evicts the FIFO-oldest ("a").
	c.Insert("c", pc)
	if got := c.Lookup("a"); got != nil {
		t.Fatal("capacity-2 cache retained 3 plans")
	}
	if got := c.Lookup("c"); got != pc {
		t.Fatal("newest plan evicted instead of oldest")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Size != 2 || st.Evicted != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 2 misses, size 2, 1 evicted", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}

	// Duplicate insert keeps the first plan.
	c.Insert("c", &Plan{})
	if got := c.Lookup("c"); got != pc {
		t.Fatal("duplicate insert replaced the original plan")
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	c := NewPlanCache(0)
	c.Insert("a", &Plan{})
	if got := c.Lookup("a"); got != nil {
		t.Fatal("zero-capacity cache cached a plan")
	}
	var nilCache *PlanCache
	if got := nilCache.Lookup("a"); got != nil {
		t.Fatal("nil cache returned a plan")
	}
	nilCache.Insert("a", &Plan{}) // must not panic
	if st := nilCache.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("shape-%d", (i+w)%32)
				if c.Lookup(key) == nil {
					c.Insert(key, &Plan{})
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Size != 32 {
		t.Fatalf("size = %d, want 32 distinct shapes", st.Size)
	}
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("lookups = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}
