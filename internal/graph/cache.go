package graph

import (
	"sync"
	"time"
)

// Plan is the backend-independent result of compiling one expression
// shape: the optimized graph, the instruction schedule, and the
// temporary-slot assignment, plus what the passes did. A Plan is
// immutable once built — lowering only reads it — so one Plan may be
// bound concurrently against many different operand bindings (the plan
// cache relies on this).
type Plan struct {
	Graph *Graph
	Sched []NodeID
	Asg   Assignment

	Folded        int
	CSEEliminated int
	DCEEliminated int

	// Profiled marks a plan whose schedule was priced with observed
	// per-op latencies from a ShapeProfile instead of the static cost
	// model — the result of a profile-guided recompile.
	Profiled bool
}

// EvictionPolicy names the cache's replacement policy, reported in
// CacheStats so operators can see which policy produced the eviction
// counters they are reading.
const EvictionPolicy = "cost-lru"

// CacheStats is a point-in-time snapshot of a PlanCache. A disabled
// cache (capacity < 1, or a nil *PlanCache) reports the zero value:
// no live size, no capacity, and no counter churn.
type CacheStats struct {
	Hits     uint64
	Misses   uint64
	Size     int
	Capacity int
	// Evicted counts plans dropped to make room for newer shapes.
	Evicted uint64
	// EvictedHot counts evicted plans that had been hit at least once
	// since insertion — a warm shape lost to capacity pressure. Under
	// the cost-LRU policy this stays low even during churn of cold
	// shapes; a rising EvictedHot means the capacity is genuinely too
	// small for the live shape population.
	EvictedHot uint64
	// Coalesced counts lookups that found a concurrent compile of the
	// same shape in flight and waited for its plan instead of running
	// the compile pipeline again (each is also counted as a hit: the
	// caller got a plan without compiling).
	Coalesced uint64
	// Policy names the eviction policy ("cost-lru"; empty when the
	// cache is disabled).
	Policy string
}

// HitRate returns hits / lookups, or 0 before the first lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one resident plan plus the bookkeeping eviction scores on.
type entry struct {
	plan    *Plan
	costNs  float64 // compile cost recorded at insert/replace
	lastUse uint64  // logical clock of the most recent lookup or insert
	hits    uint64  // hits against this entry since insertion
}

// flight is one in-progress compile of a shape: concurrent callers of
// Do on the same key wait on done instead of compiling again.
type flight struct {
	done chan struct{}
	plan *Plan // nil if the compile panicked; waiters then retry
}

// PlanCache memoizes compiled Plans by canonical shape key, so
// repeated request shapes skip folding, CSE, DCE, scheduling, and slot
// assignment and go straight to operand binding. It is safe for
// concurrent use, and Do deduplicates concurrent compiles of the same
// shape: the first caller runs the compile pipeline, later callers
// wait for its plan instead of redoing the work.
//
// Eviction is recency-and-cost aware ("cost-lru"): Lookup refreshes an
// entry's recency, Insert records the plan's compile cost, and the
// victim is the entry with the lowest recency-weighted compile cost —
// compileNs / (age+1), where age is how many logical clock ticks ago
// the entry was last used. A hot shape (recently used) or an expensive
// shape (slow to recompile) therefore survives a churn of cold, cheap
// shapes that a FIFO policy would let push it out.
type PlanCache struct {
	mu         sync.Mutex
	cap        int
	clock      uint64 // logical time: one tick per lookup/insert/replace
	entries    map[string]*entry
	flights    map[string]*flight
	hits       uint64
	misses     uint64
	evicted    uint64
	evictedHot uint64
	coalesced  uint64

	// onEvict, when set, observes every eviction (the victim's key and
	// how many hits it had served). Called with the cache lock held, so
	// the hook must be fast and must not call back into the cache —
	// it exists to feed lightweight observers (flight-recorder events,
	// eviction counters).
	onEvict func(key string, hits uint64)
}

// NewPlanCache returns a cache bounded to capacity plans. A capacity
// below 1 disables caching: every Lookup returns nil without touching
// any counter, Insert is a no-op, Do always computes, and Stats
// reports the zero value.
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{
		cap:     capacity,
		entries: make(map[string]*entry),
		flights: make(map[string]*flight),
	}
}

// disabled reports whether the cache ignores all traffic.
func (c *PlanCache) disabled() bool { return c == nil || c.cap < 1 }

// Lookup returns the cached plan for key, or nil, counting the hit or
// miss and refreshing the entry's recency on a hit. A disabled cache
// returns nil without counting anything.
func (c *PlanCache) Lookup(key string) *Plan {
	if c.disabled() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.touch(e)
		return e.plan
	}
	c.misses++
	return nil
}

// Peek returns the cached plan for key without counting a hit or
// miss and without refreshing the entry's recency — a side-effect-free
// read for callers (admission-time cost estimation) that must not
// perturb the cache's hit-rate statistics or eviction order.
func (c *PlanCache) Peek(key string) *Plan {
	if c.disabled() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e.plan
	}
	return nil
}

// touch counts a hit on e and refreshes its recency. Caller holds mu.
func (c *PlanCache) touch(e *entry) {
	c.hits++
	e.hits++
	c.clock++
	e.lastUse = c.clock
}

// Do returns the plan for key: the cached one (hit), the plan of a
// concurrent in-flight compile of the same key (counted as a hit and
// as Coalesced — the caller waited instead of compiling), or the
// result of running compute (miss; its duration is recorded as the
// shape's compile cost and the plan inserted). compute runs without
// the cache lock held. A disabled cache always computes and reports
// hit=false.
func (c *PlanCache) Do(key string, compute func() *Plan) (*Plan, bool) {
	if c.disabled() {
		return compute(), false
	}
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.touch(e)
			c.mu.Unlock()
			return e.plan, true
		}
		if f, ok := c.flights[key]; ok {
			c.coalesced++
			c.hits++
			c.mu.Unlock()
			<-f.done
			if f.plan != nil {
				return f.plan, true
			}
			continue // winner panicked; retry (likely becoming the winner)
		}
		c.misses++
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		var p *Plan
		start := time.Now()
		// Resolve the flight even if compute panics, so waiters never
		// deadlock: they observe a nil plan and retry for themselves.
		defer func() {
			c.mu.Lock()
			if p != nil {
				c.insertLocked(key, p, float64(time.Since(start).Nanoseconds()))
				f.plan = p
			}
			delete(c.flights, key)
			close(f.done)
			c.mu.Unlock()
		}()
		p = compute()
		return p, false
	}
}

// Insert stores a plan under key with the given compile cost (the
// nanoseconds the compile pipeline spent building it — what eviction
// weighs against recency). An existing entry is kept: first writer
// wins, concurrent compilers of the same shape produce equivalent
// plans.
func (c *PlanCache) Insert(key string, p *Plan, compileNs float64) {
	if c.disabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, p, compileNs)
}

// Replace stores a plan under key, overwriting any existing entry —
// the profile-guided recompile path, where the new plan supersedes the
// stale one. The fresh entry starts with refreshed recency and zero
// hits.
func (c *PlanCache) Replace(key string, p *Plan, compileNs float64) {
	if c.disabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.clock++
		*e = entry{plan: p, costNs: compileNs, lastUse: c.clock}
		return
	}
	c.insertLocked(key, p, compileNs)
}

// insertLocked inserts under the cost-LRU policy. Caller holds mu.
func (c *PlanCache) insertLocked(key string, p *Plan, compileNs float64) {
	if _, ok := c.entries[key]; ok {
		return
	}
	for len(c.entries) >= c.cap {
		c.evictLocked()
	}
	c.clock++
	c.entries[key] = &entry{plan: p, costNs: compileNs, lastUse: c.clock}
}

// evictLocked drops the entry with the lowest recency-weighted compile
// cost: score = compileNs / (age+1), age = clock − lastUse. Ties break
// on oldest lastUse, then on key, so eviction is deterministic for a
// given trace. Caller holds mu and guarantees the cache is non-empty.
func (c *PlanCache) evictLocked() {
	var victimKey string
	var victim *entry
	var victimScore float64
	for k, e := range c.entries {
		score := e.costNs / float64(c.clock-e.lastUse+1)
		if victim == nil || score < victimScore ||
			(score == victimScore && (e.lastUse < victim.lastUse ||
				(e.lastUse == victim.lastUse && k < victimKey))) {
			victimKey, victim, victimScore = k, e, score
		}
	}
	delete(c.entries, victimKey)
	c.evicted++
	if victim.hits > 0 {
		c.evictedHot++
	}
	if c.onEvict != nil {
		c.onEvict(victimKey, victim.hits)
	}
}

// SetEvictHook installs fn as the cache's eviction observer (see
// onEvict for the constraints; nil clears it). Not safe to race with
// cache traffic — install it right after NewPlanCache.
func (c *PlanCache) SetEvictHook(fn func(key string, hits uint64)) {
	if c.disabled() {
		return
	}
	c.onEvict = fn
}

// Stats returns a snapshot of the cache counters. Disabled caches
// report the zero value.
func (c *PlanCache) Stats() CacheStats {
	if c.disabled() {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:       c.hits,
		Misses:     c.misses,
		Size:       len(c.entries),
		Capacity:   c.cap,
		Evicted:    c.evicted,
		EvictedHot: c.evictedHot,
		Coalesced:  c.coalesced,
		Policy:     EvictionPolicy,
	}
}
