package graph

import "sync"

// Plan is the backend-independent result of compiling one expression
// shape: the optimized graph, the instruction schedule, and the
// temporary-slot assignment, plus what the passes did. A Plan is
// immutable once built — lowering only reads it — so one Plan may be
// bound concurrently against many different operand bindings (the plan
// cache relies on this).
type Plan struct {
	Graph *Graph
	Sched []NodeID
	Asg   Assignment

	Folded        int
	CSEEliminated int
	DCEEliminated int
}

// CacheStats is a point-in-time snapshot of a PlanCache.
type CacheStats struct {
	Hits     uint64
	Misses   uint64
	Size     int
	Capacity int
	// Evicted counts plans dropped to make room for newer shapes.
	Evicted uint64
}

// HitRate returns hits / lookups, or 0 before the first lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PlanCache memoizes compiled Plans by canonical shape key, so
// repeated request shapes skip folding, CSE, DCE, scheduling, and slot
// assignment and go straight to operand binding. It is safe for
// concurrent use; two goroutines missing on the same key may both
// compute a plan, in which case the first Insert wins and the loser
// simply executes its own equivalent plan.
//
// Eviction is FIFO in insertion order — the simplest bounded policy.
// Smarter eviction (LRU, cost-weighted) is a recorded follow-on; shape
// populations small enough to fit the default capacity never evict.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*Plan
	order   []string // insertion order, for FIFO eviction
	hits    uint64
	misses  uint64
	evicted uint64
}

// NewPlanCache returns a cache bounded to capacity plans. A capacity
// below 1 disables caching: every Lookup misses and Insert is a no-op.
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{cap: capacity, entries: make(map[string]*Plan)}
}

// Lookup returns the cached plan for key, or nil, and counts the hit
// or miss.
func (c *PlanCache) Lookup(key string) *Plan {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.entries[key]; ok {
		c.hits++
		return p
	}
	c.misses++
	return nil
}

// Insert stores a plan under key. An existing entry is kept (first
// writer wins — concurrent compilers of the same shape produce
// equivalent plans, and keeping the first avoids duplicate order
// entries).
func (c *PlanCache) Insert(key string, p *Plan) {
	if c == nil || c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	for len(c.entries) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
		c.evicted++
	}
	c.entries[key] = p
	c.order = append(c.order, key)
}

// Stats returns a snapshot of the cache counters.
func (c *PlanCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:     c.hits,
		Misses:   c.misses,
		Size:     len(c.entries),
		Capacity: c.cap,
		Evicted:  c.evicted,
	}
}
