package area

import (
	"strings"
	"testing"
)

func TestOverheadUnderOnePercent(t *testing.T) {
	// 8 Gb chip with 16 banks × 64 subarrays; 8 KB of μProgram store.
	o := Estimate(Default(), Components(16*64, 8))
	if o.Fraction >= 0.01 {
		t.Errorf("area overhead %.3f%% exceeds the paper's <1%% claim", o.Fraction*100)
	}
	if o.Fraction <= 0 {
		t.Error("overhead must be positive")
	}
}

func TestOverheadScalesWithSubarrays(t *testing.T) {
	small := Estimate(Default(), Components(256, 8))
	large := Estimate(Default(), Components(2048, 8))
	if large.TotalMM2 <= small.TotalMM2 {
		t.Error("more subarrays must cost more decoder area")
	}
}

func TestComponentsPresent(t *testing.T) {
	o := Estimate(Default(), Components(1024, 8))
	s := o.String()
	for _, want := range []string{"row decoder", "control unit", "transposition unit", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	if len(o.Items) != 3 {
		t.Errorf("want 3 components, have %d", len(o.Items))
	}
}
