// Package area estimates the DRAM die area overhead of SIMDRAM's added
// hardware (paper §5: "less than 1% DRAM area overhead").
//
// Substitution note (see DESIGN.md): the paper synthesizes the added
// logic with an ASIC flow. We reproduce the bill-of-materials estimate:
// each added structure is counted in gate/SRAM-bit equivalents and
// converted to area with published logic and DRAM densities.
package area

import "fmt"

// Model holds density assumptions.
type Model struct {
	// DRAM die: a common 8 Gb DDR4 die is ≈ 60 mm².
	DieMM2 float64
	// Logic density on a DRAM process (logic is ~2× less dense than on a
	// comparable logic process): gates per mm².
	GatesPerMM2 float64
	// SRAM density on a DRAM process: bits per mm².
	SRAMBitsPerMM2 float64
}

// Default returns densities for a 1x-nm class DDR4 die.
func Default() Model {
	return Model{
		DieMM2:         60,
		GatesPerMM2:    400_000,
		SRAMBitsPerMM2: 1_200_000,
	}
}

// Component is one added hardware block.
type Component struct {
	Name     string
	Gates    int // combinational gate equivalents
	SRAMBits int // storage bits
}

// Components returns SIMDRAM's added hardware per DRAM chip:
//
//   - Row decoder extensions: Ambit-style B-group addressing latches for
//     the compute region rows in every subarray.
//   - Control unit: μProgram store + sequencer + μRegisters (sits in the
//     memory controller but the paper also accounts a per-chip share).
//   - Transposition unit: an 8×8-byte swap network plus line buffer.
func Components(subarraysPerChip, uProgramKB int) []Component {
	return []Component{
		{
			Name: "row decoder extensions",
			// ~24 extra address latches + drivers per subarray.
			Gates: subarraysPerChip * 24 * 6,
		},
		{
			Name:     "control unit (sequencer + μregisters)",
			Gates:    15_000,
			SRAMBits: uProgramKB * 1024 * 8,
		},
		{
			Name:  "transposition unit (swap network + tags)",
			Gates: 8_000,
			// 64-line transpose buffer of 64 B lines.
			SRAMBits: 64 * 64 * 8,
		},
	}
}

// Overhead reports the area of each component and the total fraction of
// the DRAM die.
type Overhead struct {
	Items    []Item
	TotalMM2 float64
	Fraction float64
}

// Item is one component's area.
type Item struct {
	Component Component
	MM2       float64
}

// Estimate computes the overhead of the given components under a model.
func Estimate(m Model, comps []Component) Overhead {
	var o Overhead
	for _, c := range comps {
		mm2 := float64(c.Gates)/m.GatesPerMM2 + float64(c.SRAMBits)/m.SRAMBitsPerMM2
		o.Items = append(o.Items, Item{Component: c, MM2: mm2})
		o.TotalMM2 += mm2
	}
	o.Fraction = o.TotalMM2 / m.DieMM2
	return o
}

func (o Overhead) String() string {
	s := ""
	for _, it := range o.Items {
		s += fmt.Sprintf("  %-42s %.4f mm²\n", it.Component.Name, it.MM2)
	}
	s += fmt.Sprintf("  %-42s %.4f mm² (%.3f%% of die)", "total", o.TotalMM2, o.Fraction*100)
	return s
}
