// Package experiments regenerates every table and figure of SIMDRAM's
// evaluation (E1-E8 in DESIGN.md). Each experiment returns a Table that
// cmd/simdram-bench prints and EXPERIMENTS.md records; the package tests
// assert the headline shapes (who wins, by roughly what factor).
package experiments

import (
	"fmt"
	"math"
	"strings"

	"simdram/internal/area"
	"simdram/internal/baseline/cpu"
	"simdram/internal/baseline/gpu"
	"simdram/internal/ctrl"
	"simdram/internal/dram"
	"simdram/internal/kernels"
	"simdram/internal/ops"
	"simdram/internal/reliability"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	for _, w := range widths {
		sb.WriteString(strings.Repeat("-", w) + "  ")
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// testN is the operand count used for N-ary reductions throughout the
// evaluation (the paper demonstrates >2-input logic operations).
const testN = 3

func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

func fmtSI(v float64) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.2fT", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// E1CommandCounts reproduces the μProgram cost table: DRAM commands per
// operation for SIMDRAM's MAJ/NOT flow vs the Ambit AND/OR/NOT baseline.
func E1CommandCounts(widths []int) (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "μProgram command counts per operation (SIMDRAM vs Ambit)",
		Header: []string{"operation", "width", "simdram AAP", "simdram AP", "simdram ns", "ambit cmds", "ambit ns", "speedup"},
		Notes: []string{
			"latency on one subarray under DDR4-2400 (AAP ≈ 78 ns, AP ≈ 46 ns)",
			"Ambit commands are all AAP-latency (4 per gate, fused TRA→dst)",
		},
	}
	tm := dram.DDR4_2400()
	for _, d := range ops.PaperSet() {
		for _, w := range widths {
			sd, err := ops.SynthesizeCached(d, w, testN, ops.VariantSIMDRAM)
			if err != nil {
				return t, err
			}
			am, err := ops.SynthesizeCached(d, w, testN, ops.VariantAmbit)
			if err != nil {
				return t, err
			}
			sLat := sd.Program.LatencyNs(tm)
			aLat := am.Program.LatencyNs(tm)
			t.Rows = append(t.Rows, []string{
				d.Name, fmt.Sprint(w),
				fmt.Sprint(sd.Program.NumAAP()), fmt.Sprint(sd.Program.NumAP()),
				fmtF(sLat, 0),
				fmt.Sprint(len(am.Program.Ops)), fmtF(aLat, 0),
				fmtF(aLat/sLat, 2) + "×",
			})
		}
	}
	return t, nil
}

// E2Throughput reproduces the 16-operation throughput figure: GOps/s on
// CPU, GPU, Ambit, and SIMDRAM with 1, 4 and 16 banks.
func E2Throughput(width int) (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  fmt.Sprintf("throughput of the 16 operations at %d-bit (GOps/s)", width),
		Header: []string{"operation", "cpu", "gpu", "ambit:16", "simdram:1", "simdram:4", "simdram:16", "vs cpu", "vs gpu", "vs ambit"},
	}
	cfg := dram.PaperConfig()
	c := cpu.Skylake()
	g := gpu.TitanV()
	var geoCPU, geoGPU, geoAmbit float64 = 1, 1, 1
	n := 0
	for _, d := range ops.PaperSet() {
		sd, err := ops.SynthesizeCached(d, width, testN, ops.VariantSIMDRAM)
		if err != nil {
			return t, err
		}
		am, err := ops.SynthesizeCached(d, width, testN, ops.VariantAmbit)
		if err != nil {
			return t, err
		}
		cpuT := c.Throughput(d, width, testN)
		gpuT := g.Throughput(d, width, testN)
		ambitT := ctrl.PerfModel{Cfg: cfg, Banks: 16}.Throughput(am.Program)
		s1 := ctrl.PerfModel{Cfg: cfg, Banks: 1}.Throughput(sd.Program)
		s4 := ctrl.PerfModel{Cfg: cfg, Banks: 4}.Throughput(sd.Program)
		s16 := ctrl.PerfModel{Cfg: cfg, Banks: 16}.Throughput(sd.Program)
		geoCPU *= s16 / cpuT
		geoGPU *= s16 / gpuT
		geoAmbit *= s16 / ambitT
		n++
		t.Rows = append(t.Rows, []string{
			d.Name,
			fmtSI(cpuT), fmtSI(gpuT), fmtSI(ambitT),
			fmtSI(s1), fmtSI(s4), fmtSI(s16),
			fmtF(s16/cpuT, 1) + "×", fmtF(s16/gpuT, 1) + "×", fmtF(s16/ambitT, 2) + "×",
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"geomean (simdram:16): %.1f× vs CPU, %.1f× vs GPU, %.2f× vs Ambit (paper: 88×/5.8× avg for 16 ops; up to 5.1× vs Ambit)",
		math.Pow(geoCPU, 1/float64(n)), math.Pow(geoGPU, 1/float64(n)), math.Pow(geoAmbit, 1/float64(n))))
	return t, nil
}

// E3Energy reproduces the energy-efficiency figure: operations per joule
// and ratios vs CPU/GPU/Ambit.
func E3Energy(width int) (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  fmt.Sprintf("energy efficiency of the 16 operations at %d-bit (ops/J)", width),
		Header: []string{"operation", "cpu", "gpu", "ambit", "simdram", "vs cpu", "vs gpu", "vs ambit"},
	}
	cfg := dram.PaperConfig()
	c := cpu.Skylake()
	g := gpu.TitanV()
	model := ctrl.PerfModel{Cfg: cfg, Banks: 16}
	var geoCPU, geoGPU, geoAmbit float64 = 1, 1, 1
	n := 0
	for _, d := range ops.PaperSet() {
		sd, err := ops.SynthesizeCached(d, width, testN, ops.VariantSIMDRAM)
		if err != nil {
			return t, err
		}
		am, err := ops.SynthesizeCached(d, width, testN, ops.VariantAmbit)
		if err != nil {
			return t, err
		}
		cpuE := c.OpsPerJoule(d, width, testN)
		gpuE := g.OpsPerJoule(d, width, testN)
		ambitE := model.OpsPerJoule(am.Program)
		sdE := model.OpsPerJoule(sd.Program)
		geoCPU *= sdE / cpuE
		geoGPU *= sdE / gpuE
		geoAmbit *= sdE / ambitE
		n++
		t.Rows = append(t.Rows, []string{
			d.Name, fmtSI(cpuE), fmtSI(gpuE), fmtSI(ambitE), fmtSI(sdE),
			fmtF(sdE/cpuE, 0) + "×", fmtF(sdE/gpuE, 1) + "×", fmtF(sdE/ambitE, 2) + "×",
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"geomean: %.0f× vs CPU, %.1f× vs GPU, %.2f× vs Ambit (paper: 257×/31× and up to 2.5× vs Ambit)",
		math.Pow(geoCPU, 1/float64(n)), math.Pow(geoGPU, 1/float64(n)), math.Pow(geoAmbit, 1/float64(n))))
	return t, nil
}

// E4Kernels reproduces the seven-kernel comparison.
func E4Kernels() (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "application kernels: execution time and energy",
		Header: []string{"kernel", "cpu s", "gpu s", "ambit:16 s", "simdram:16 s", "vs cpu", "vs gpu", "vs ambit", "energy vs cpu"},
		Notes:  []string{"paper: up to 2.5× vs Ambit across kernels"},
	}
	cfg := dram.PaperConfig()
	c := cpu.Skylake()
	g := gpu.TitanV()
	for _, spec := range kernels.PaperKernels() {
		sd, err := kernels.SIMDRAMPerf(spec, cfg, 16, ops.VariantSIMDRAM)
		if err != nil {
			return t, err
		}
		am, err := kernels.SIMDRAMPerf(spec, cfg, 16, ops.VariantAmbit)
		if err != nil {
			return t, err
		}
		cp, err := kernels.CPUPerf(spec, c)
		if err != nil {
			return t, err
		}
		gp, err := kernels.GPUPerf(spec, g)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmtF(cp.TimeNs/1e9, 3), fmtF(gp.TimeNs/1e9, 3), fmtF(am.TimeNs/1e9, 3), fmtF(sd.TimeNs/1e9, 3),
			fmtF(cp.TimeNs/sd.TimeNs, 1) + "×",
			fmtF(gp.TimeNs/sd.TimeNs, 2) + "×",
			fmtF(am.TimeNs/sd.TimeNs, 2) + "×",
			fmtF(cp.EnergyPJ/sd.EnergyPJ, 0) + "×",
		})
	}
	return t, nil
}

// E5Reliability reproduces the process-variation figure: TRA failure
// rate vs cell-capacitance variation across technology nodes.
func E5Reliability(trials int) Table {
	t := Table{
		ID:     "E5",
		Title:  "TRA failure rate under process variation (Monte Carlo)",
		Header: []string{"node", "margin mV", "σ=0%", "σ=5%", "σ=10%", "σ=15%", "σ=20%", "σ=25%"},
		Notes: []string{
			"columns: cell-capacitance variation σ; sense-amplifier offset σ = 5 mV in all runs",
			"paper: correct operation maintained at realistic variation across scaled nodes",
		},
	}
	sigmas := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25}
	for _, node := range reliability.Nodes() {
		res := reliability.Sweep(node, sigmas, 5, trials, 1234)
		row := []string{node.Name, fmtF(reliability.SenseMarginMV(node), 1)}
		for _, r := range res {
			row = append(row, fmt.Sprintf("%.2e", r.FailureRate()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// E6Area reproduces the area-overhead table.
func E6Area() Table {
	t := Table{
		ID:     "E6",
		Title:  "DRAM die area overhead of SIMDRAM's added hardware",
		Header: []string{"component", "gates", "sram bits", "mm²"},
		Notes:  []string{"paper: total < 1% of the DRAM die"},
	}
	m := area.Default()
	o := area.Estimate(m, area.Components(16*64, 8))
	for _, it := range o.Items {
		t.Rows = append(t.Rows, []string{
			it.Component.Name,
			fmt.Sprint(it.Component.Gates),
			fmt.Sprint(it.Component.SRAMBits),
			fmtF(it.MM2, 4),
		})
	}
	t.Rows = append(t.Rows, []string{"total", "", "", fmt.Sprintf("%.4f (%.3f%% of %.0f mm² die)", o.TotalMM2, o.Fraction*100, m.DieMM2)})
	return t
}

// E7WidthScaling reproduces the element-width scaling figure: bit-serial
// latency grows linearly with width for linear-depth operations and
// quadratically for multiplication/division.
func E7WidthScaling() (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "μProgram latency vs element width (ns per subarray batch)",
		Header: []string{"operation", "8-bit", "16-bit", "32-bit", "64-bit", "64/32 ratio"},
		Notes: []string{
			"linear-time ops double per width doubling; division quadruples",
			"64-bit multiplication produces the low 64 bits only (the full product exceeds the layout), roughly halving its quadratic growth",
		},
	}
	tm := dram.DDR4_2400()
	for _, name := range []string{"addition", "greater", "bitcount", "multiplication", "division"} {
		d, err := ops.ByName(name)
		if err != nil {
			return t, err
		}
		row := []string{name}
		var l32, l64 float64
		for _, w := range []int{8, 16, 32, 64} {
			s, err := ops.SynthesizeCached(d, w, testN, ops.VariantSIMDRAM)
			if err != nil {
				return t, err
			}
			lat := s.Program.LatencyNs(tm)
			if w == 32 {
				l32 = lat
			}
			if w == 64 {
				l64 = lat
			}
			row = append(row, fmtF(lat, 0))
		}
		row = append(row, fmtF(l64/l32, 2))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// E8Transposition reproduces the store/load overhead analysis: the cost
// of transposing data on the way into and out of the vertical layout,
// relative to the in-DRAM computation it enables.
func E8Transposition() (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "transposition overhead for a store → addition → load pipeline (32-bit)",
		Header: []string{"elements", "transpose ns", "store+load ns", "compute ns", "transpose share"},
		Notes: []string{
			"transposition-unit pipeline cost vs DRAM row access and in-DRAM compute time",
			"paper: transposition overlaps with DRAM writes and is negligible",
		},
	}
	cfg := dram.PaperConfig()
	d, err := ops.ByName("addition")
	if err != nil {
		return t, err
	}
	s, err := ops.SynthesizeCached(d, 32, 0, ops.VariantSIMDRAM)
	if err != nil {
		return t, err
	}
	model := ctrl.PerfModel{Cfg: cfg, Banks: 16}
	timing := cfg.Timing
	for _, n := range []int{1 << 20, 1 << 23, 1 << 26} {
		// The swap network is pipelined at channel rate: each row write
		// pays only the pipeline-fill latency of one 64 B line, not a
		// serialized per-line cost — the per-line work overlaps with the
		// burst transfer (paper §4).
		rowsTouched := float64(3*32) * math.Ceil(float64(n)/float64(cfg.Cols))
		trans := rowsTouched * 0.85
		storeLoad := rowsTouched * timing.RowAccessLatency()
		compute := model.LatencyNs(s.Program, n)
		t.Rows = append(t.Rows, []string{
			fmtSI(float64(n)),
			fmtSI(trans), fmtSI(storeLoad), fmtSI(compute),
			fmtF(trans/(trans+storeLoad+compute)*100, 1) + "%",
		})
	}
	return t, nil
}

// All regenerates every experiment.
func All() ([]Table, error) {
	var tables []Table
	e1, err := E1CommandCounts([]int{8, 16, 32})
	if err != nil {
		return nil, err
	}
	tables = append(tables, e1)
	for _, w := range []int{16, 32} {
		e2, err := E2Throughput(w)
		if err != nil {
			return nil, err
		}
		tables = append(tables, e2)
	}
	e3, err := E3Energy(32)
	if err != nil {
		return nil, err
	}
	tables = append(tables, e3)
	e4, err := E4Kernels()
	if err != nil {
		return nil, err
	}
	tables = append(tables, e4)
	tables = append(tables, E5Reliability(40000), E6Area())
	e7, err := E7WidthScaling()
	if err != nil {
		return nil, err
	}
	tables = append(tables, e7)
	e8, err := E8Transposition()
	if err != nil {
		return nil, err
	}
	tables = append(tables, e8)
	e9, err := E9Ablation(16)
	if err != nil {
		return nil, err
	}
	tables = append(tables, e9)
	e9b, err := E9Groups(16)
	if err != nil {
		return nil, err
	}
	tables = append(tables, e9b)
	e10, err := E10RowHammer()
	if err != nil {
		return nil, err
	}
	tables = append(tables, e10)
	return tables, nil
}
