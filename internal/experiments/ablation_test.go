package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestE9AblationGains(t *testing.T) {
	tab, err := E9Ablation(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16 {
		t.Fatalf("expected 16 rows, have %d", len(tab.Rows))
	}
	step1Gains, step2Gains := 0, 0
	for _, row := range tab.Rows {
		step1 := parseRatio(t, row[5])
		step2 := parseRatio(t, row[6])
		if step1 < 0.99 || step2 < 0.99 {
			t.Errorf("%s: disabling an optimization must not speed things up (step1 %.2f, step2 %.2f)",
				row[0], step1, step2)
		}
		if step1 > 1.05 {
			step1Gains++
		}
		if step2 > 1.05 {
			step2Gains++
		}
	}
	// MAJ-native synthesis should pay off on most ops; row reuse on many.
	if step1Gains < 8 {
		t.Errorf("Step-1 MAJ synthesis helped only %d/16 ops", step1Gains)
	}
	if step2Gains < 4 {
		t.Errorf("Step-2 row reuse helped only %d/16 ops", step2Gains)
	}
}

func TestE9GroupsSecondGroupHelps(t *testing.T) {
	tab, err := E9Groups(16)
	if err != nil {
		t.Fatal(err)
	}
	helped := 0
	for _, row := range tab.Rows {
		gain := parseRatio(t, row[3])
		if gain < 0.99 {
			t.Errorf("%s: one group faster than two (%.2f×)?", row[0], gain)
		}
		if gain > 1.02 {
			helped++
		}
	}
	if helped < 4 {
		t.Errorf("the second TRA group should help several operations; helped %d", helped)
	}
}

func TestE10RowHammerShape(t *testing.T) {
	tab, err := E10RowHammer()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16 {
		t.Fatalf("expected 16 rows, have %d", len(tab.Rows))
	}
	exceeded := 0
	for _, row := range tab.Rows {
		if !strings.HasPrefix(row[1], "T") && !strings.HasPrefix(row[1], "dcc") {
			t.Errorf("%s: hottest row %q should be in the compute region", row[0], row[1])
		}
		acts, err := strconv.Atoi(row[2])
		if err != nil || acts <= 0 {
			t.Errorf("%s: bad acts/exec %q", row[0], row[2])
		}
		if row[4] == "yes" {
			exceeded++
		}
	}
	if exceeded == 0 {
		t.Error("back-to-back execution should exceed the DDR4 threshold for at least one op")
	}
}
