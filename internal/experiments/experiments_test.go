package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// parseRatio extracts the float from a "3.14×" cell.
func parseRatio(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "×"), 64)
	if err != nil {
		t.Fatalf("bad ratio cell %q: %v", cell, err)
	}
	return v
}

func TestE1SIMDRAMAlwaysAtLeastAsFast(t *testing.T) {
	tab, err := E1CommandCounts([]int{8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16*3 {
		t.Fatalf("expected 48 rows, have %d", len(tab.Rows))
	}
	maxRatio := 0.0
	for _, row := range tab.Rows {
		r := parseRatio(t, row[len(row)-1])
		if r < 1.0 {
			t.Errorf("%s/%s: SIMDRAM slower than Ambit (%.2f×)", row[0], row[1], r)
		}
		if r > maxRatio {
			maxRatio = r
		}
	}
	// Paper headline: up to 5.1× over Ambit. Accept the [2, 8] band.
	if maxRatio < 2 || maxRatio > 8 {
		t.Errorf("max speedup vs Ambit = %.2f×, want within [2, 8] (paper: 5.1×)", maxRatio)
	}
}

func TestE2ThroughputShape(t *testing.T) {
	tab, err := E2Throughput(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16 {
		t.Fatalf("expected 16 rows, have %d", len(tab.Rows))
	}
	geoCPU, geoAmbit := 1.0, 1.0
	for _, row := range tab.Rows {
		vsCPU := parseRatio(t, row[7])
		vsAmbit := parseRatio(t, row[9])
		geoCPU *= vsCPU
		geoAmbit *= vsAmbit
		if vsAmbit < 1.0 {
			t.Errorf("%s: slower than Ambit", row[0])
		}
	}
	geoCPU = math.Pow(geoCPU, 1.0/16)
	geoAmbit = math.Pow(geoAmbit, 1.0/16)
	if geoCPU < 10 {
		t.Errorf("geomean vs CPU = %.1f×, expected ≫ 10× at 16 banks", geoCPU)
	}
	if geoAmbit < 1.3 {
		t.Errorf("geomean vs Ambit = %.2f×, expected ≥ 1.3×", geoAmbit)
	}
}

func TestE3EnergyShape(t *testing.T) {
	tab, err := E3Energy(32)
	if err != nil {
		t.Fatal(err)
	}
	geoCPU, geoGPU := 1.0, 1.0
	for _, row := range tab.Rows {
		geoCPU *= parseRatio(t, row[5])
		geoGPU *= parseRatio(t, row[6])
	}
	geoCPU = math.Pow(geoCPU, 1.0/16)
	geoGPU = math.Pow(geoGPU, 1.0/16)
	// Paper: 257× vs CPU and 31× vs GPU. Accept the order of magnitude.
	if geoCPU < 50 {
		t.Errorf("geomean energy vs CPU = %.0f×, expected ≥ 50× (paper 257×)", geoCPU)
	}
	if geoGPU < 5 {
		t.Errorf("geomean energy vs GPU = %.1f×, expected ≥ 5× (paper 31×)", geoGPU)
	}
}

func TestE4KernelShape(t *testing.T) {
	tab, err := E4Kernels()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("expected 7 kernels, have %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if parseRatio(t, row[5]) < 1.0 {
			t.Errorf("%s: SIMDRAM slower than CPU", row[0])
		}
		vsAmbit := parseRatio(t, row[7])
		if vsAmbit < 1.0 || vsAmbit > 5.0 {
			t.Errorf("%s: vs Ambit = %.2f×, expected [1, 5] (paper: up to 2.5×)", row[0], vsAmbit)
		}
	}
}

func TestE5ReliabilityShape(t *testing.T) {
	tab := E5Reliability(20000)
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 nodes, have %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		zero, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if zero != 0 {
			t.Errorf("%s: nonzero failure rate at σ=0", row[0])
		}
		last, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		first, _ := strconv.ParseFloat(row[3], 64)
		if last < first {
			t.Errorf("%s: failure rate not increasing with σ", row[0])
		}
	}
}

func TestE6AreaUnderOnePercent(t *testing.T) {
	tab := E6Area()
	total := tab.Rows[len(tab.Rows)-1][3]
	if !strings.Contains(total, "%") {
		t.Fatalf("total row malformed: %q", total)
	}
	// Extract the percentage.
	i := strings.Index(total, "(")
	j := strings.Index(total, "%")
	pct, err := strconv.ParseFloat(total[i+1:j], 64)
	if err != nil {
		t.Fatal(err)
	}
	if pct >= 1.0 {
		t.Errorf("area overhead %.3f%% ≥ 1%%", pct)
	}
}

func TestE7WidthScalingShape(t *testing.T) {
	tab, err := E7WidthScaling()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ratio, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		switch row[0] {
		case "addition", "greater", "bitcount":
			if ratio < 1.5 || ratio > 3.5 {
				t.Errorf("%s: 64/32 ratio %.2f, expected ≈2 (linear)", row[0], ratio)
			}
		case "division":
			if ratio < 3 || ratio > 6 {
				t.Errorf("%s: 64/32 ratio %.2f, expected ≈4 (quadratic)", row[0], ratio)
			}
		case "multiplication":
			// 64-bit multiplication truncates to the low half, cutting
			// the quadratic growth roughly in two.
			if ratio < 1.4 || ratio > 4.5 {
				t.Errorf("%s: 64/32 ratio %.2f, expected in [1.4, 4.5]", row[0], ratio)
			}
		}
	}
}

func TestE8TranspositionSmall(t *testing.T) {
	tab, err := E8Transposition()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		share, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if share > 20 {
			t.Errorf("transposition share %.1f%% of pipeline, expected small", share)
		}
	}
}

func TestAllRendersEveryTable(t *testing.T) {
	tables, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 8 {
		t.Fatalf("expected ≥8 tables, have %d", len(tables))
	}
	for _, tab := range tables {
		s := tab.String()
		if !strings.Contains(s, tab.ID) || len(tab.Rows) == 0 {
			t.Errorf("table %s renders badly or is empty", tab.ID)
		}
	}
}
