package experiments

import (
	"fmt"

	"simdram/internal/dram"
	"simdram/internal/ops"
	"simdram/internal/rowhammer"
	"simdram/internal/uprog"
)

// E9Ablation quantifies each framework optimization (DESIGN.md §7): the
// Step-1 MIG rewriting, the Step-2 row reuse, and the two together
// against the Ambit baseline, per operation.
func E9Ablation(width int) (Table, error) {
	t := Table{
		ID:    "E9",
		Title: fmt.Sprintf("ablations at %d-bit: μProgram latency (ns) by disabled optimization", width),
		Header: []string{"operation", "full", "no MAJ synthesis", "no row reuse", "ambit",
			"step-1 gain", "step-2 gain"},
		Notes: []string{
			"step-1 gain = (basic AND/OR/NOT decomposition, SIMDRAM executor) / full",
			"step-2 gain = (no cross-node row reuse) / full",
		},
	}
	tm := dram.DDR4_2400()
	for _, d := range ops.PaperSet() {
		lat := map[ops.Variant]float64{}
		for _, v := range []ops.Variant{ops.VariantSIMDRAM, ops.VariantNoOptimize, ops.VariantNoReuse, ops.VariantAmbit} {
			s, err := ops.SynthesizeCached(d, width, testN, v)
			if err != nil {
				return t, err
			}
			lat[v] = s.Program.LatencyNs(tm)
		}
		t.Rows = append(t.Rows, []string{
			d.Name,
			fmtF(lat[ops.VariantSIMDRAM], 0),
			fmtF(lat[ops.VariantNoOptimize], 0),
			fmtF(lat[ops.VariantNoReuse], 0),
			fmtF(lat[ops.VariantAmbit], 0),
			fmtF(lat[ops.VariantNoOptimize]/lat[ops.VariantSIMDRAM], 2) + "×",
			fmtF(lat[ops.VariantNoReuse]/lat[ops.VariantSIMDRAM], 2) + "×",
		})
	}
	return t, nil
}

// E9Groups measures the benefit of the second triple-row-activation
// group (NumTRows 6 vs 3) — a hardware design choice DESIGN.md §7 calls
// out for ablation.
func E9Groups(width int) (Table, error) {
	t := Table{
		ID:     "E9b",
		Title:  fmt.Sprintf("TRA group ablation at %d-bit: one vs two groups", width),
		Header: []string{"operation", "2 groups ns", "1 group ns", "second-group gain"},
	}
	tm := dram.DDR4_2400()
	for _, d := range ops.PaperSet() {
		s2, err := ops.SynthesizeCached(d, width, testN, ops.VariantSIMDRAM)
		if err != nil {
			return t, err
		}
		// Re-generate with a single TRA group.
		arity := d.EffArity(testN)
		in, out := ops.RefsForWidths(d.SourceWidths(width, arity), d.DstWidth(width))
		opts := uprog.DefaultCodegen(d.Name + "-1group")
		opts.NumTRows = 3
		p1, err := uprog.Generate(s2.MIG, in, out, opts)
		if err != nil {
			return t, err
		}
		l2 := s2.Program.LatencyNs(tm)
		l1 := p1.LatencyNs(tm)
		t.Rows = append(t.Rows, []string{
			d.Name, fmtF(l2, 0), fmtF(l1, 0), fmtF(l1/l2, 2) + "×",
		})
	}
	return t, nil
}

// E10RowHammer reports RowHammer exposure per operation (paper §4,
// integration challenge 3): the hottest row's activations per 64 ms
// refresh window under back-to-back execution, against generational
// thresholds, plus the mitigation cost.
func E10RowHammer() (Table, error) {
	t := Table{
		ID:    "E10",
		Title: "RowHammer exposure of back-to-back μPrograms (hottest row, acts per 64 ms window)",
		Header: []string{"operation", "hottest row", "acts/exec", "acts/window",
			"exceeds DDR4 50k", "mitigation refreshes"},
		Notes: []string{
			"all hot rows sit in the fixed compute region, so the paper's buffer-row/neighbor-refresh mitigation applies",
		},
	}
	tm := dram.DDR4_2400()
	for _, d := range ops.PaperSet() {
		s, err := ops.SynthesizeCached(d, 16, testN, ops.VariantSIMDRAM)
		if err != nil {
			return t, err
		}
		rep := rowhammer.Analyze(s.Program, tm)
		hot := rep.Rows[0]
		exceeds := "no"
		if rep.Exceeds(rowhammer.ThresholdDDR4) {
			exceeds = "yes"
		}
		t.Rows = append(t.Rows, []string{
			d.Name,
			hot.Ref.String(),
			fmt.Sprint(hot.ActsPerExec),
			fmtSI(float64(hot.ActsPerWindow)),
			exceeds,
			fmtSI(float64(rep.MitigationRefreshes(rowhammer.ThresholdDDR4))),
		})
	}
	return t, nil
}
