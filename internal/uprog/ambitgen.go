package uprog

import (
	"fmt"

	"simdram/internal/mig"
)

// GenerateAmbit lowers a MIG using Ambit's canonical command sequences
// (Seshadri et al., MICRO 2017), the in-DRAM baseline SIMDRAM compares
// against. Every gate follows the fixed pattern
//
//	AAP(src1 → T0); AAP(src2 → T1); AAP(control → T2); MajCopy(TRA → out)
//
// where the final command activates the TRA group (computing the
// majority) and then the output row, fusing compute and copy-out. NOT is
// two AAPs through a dual-contact cell. Intermediates always round-trip
// through data (scratch) rows — Ambit has no cross-gate operand-to-row
// allocation, which is precisely the Step-2 optimization SIMDRAM adds.
//
// Materialized complements are cached per literal so shared NOTs (e.g. a
// broadcast !sign) are paid once, matching how Ambit programs were
// hand-written.
func GenerateAmbit(m *mig.MIG, inputRefs, outputRefs []Ref, name string) (*Program, error) {
	if len(inputRefs) != m.NumInputs() {
		return nil, fmt.Errorf("uprog: %d input refs for %d MIG inputs", len(inputRefs), m.NumInputs())
	}
	if len(outputRefs) != len(m.Outputs()) {
		return nil, fmt.Errorf("uprog: %d output refs for %d MIG outputs", len(outputRefs), len(m.Outputs()))
	}
	g := &ambitGen{
		m:        m,
		home:     make(map[mig.Lit]Ref),
		refCount: make([]int, m.NumNodes()),
	}
	maxSrc, srcWidths, width, dstWidth := inferShape(inputRefs, outputRefs)
	g.prog = &Program{Name: name, Width: width, SrcWidths: srcWidths, NumSrc: maxSrc, DstWidth: dstWidth}
	g.home[mig.ConstFalse] = Ref{Space: SpaceC0}
	g.home[mig.ConstTrue] = Ref{Space: SpaceC1}
	for i, r := range inputRefs {
		g.home[m.Input(i)] = r
	}
	if err := g.run(outputRefs); err != nil {
		return nil, err
	}
	return g.prog, nil
}

type ambitGen struct {
	m    *mig.MIG
	prog *Program

	home     map[mig.Lit]Ref // canonical data-row (or source) home per literal
	refCount []int           // remaining reads per node, for scratch recycling

	freeScratch []int
	nextScratch int
}

func (g *ambitGen) allocScratch() Ref {
	if n := len(g.freeScratch); n > 0 {
		idx := g.freeScratch[n-1]
		g.freeScratch = g.freeScratch[:n-1]
		return Ref{Space: SpaceScratch, Idx: idx}
	}
	idx := g.nextScratch
	g.nextScratch++
	return Ref{Space: SpaceScratch, Idx: idx}
}

func (g *ambitGen) aap(src, dst Ref) {
	g.prog.Ops = append(g.prog.Ops, MicroOp{Kind: OpAAP, Src: src, Dsts: []Ref{dst}})
}

// homeOf returns a data-row home for lit, materializing the complement
// through a DCC pair if only the opposite polarity exists.
func (g *ambitGen) homeOf(lit mig.Lit) (Ref, error) {
	if r, ok := g.home[lit]; ok {
		return r, nil
	}
	src, ok := g.home[lit.Not()]
	if !ok {
		return Ref{}, fmt.Errorf("uprog: ambit: literal %v has no home", lit)
	}
	// NOT: AAP(x → DCC0); AAP(DCC0N → fresh scratch row).
	g.aap(src, Ref{Space: SpaceDCC, Idx: 0})
	out := g.allocScratch()
	g.aap(Ref{Space: SpaceDCCN, Idx: 0}, out)
	g.home[lit] = out
	return out, nil
}

func (g *ambitGen) release(node int) {
	g.refCount[node]--
	if g.refCount[node] > 0 {
		return
	}
	for _, lit := range [2]mig.Lit{mig.MakeLit(node, false), mig.MakeLit(node, true)} {
		if r, ok := g.home[lit]; ok && r.Space == SpaceScratch {
			g.freeScratch = append(g.freeScratch, r.Idx)
			delete(g.home, lit)
		}
	}
}

func (g *ambitGen) run(outputRefs []Ref) error {
	outs := g.m.Outputs()
	// Count reads: each fanin and each output reference.
	for idx := g.m.NumInputs() + 1; idx < g.m.NumNodes(); idx++ {
		a, b, c := g.m.Children(idx)
		g.refCount[a.Node()]++
		g.refCount[b.Node()]++
		g.refCount[c.Node()]++
	}
	soleOutput := make(map[int]int) // MAJ node → output index when writable directly
	for i, o := range outs {
		g.refCount[o.Node()]++
		// Only MAJ nodes are produced by a MajCopy; inputs and constants
		// always go through the plain output-copy path.
		if !o.Neg() && o.Node() > g.m.NumInputs() {
			if _, dup := soleOutput[o.Node()]; !dup && g.refCount[o.Node()] == 1 {
				soleOutput[o.Node()] = i
			} else {
				delete(soleOutput, o.Node())
			}
		}
	}
	for idx := g.m.NumInputs() + 1; idx < g.m.NumNodes(); idx++ {
		if g.refCount[idx] == 0 {
			continue // dead node
		}
		a, b, c := g.m.Children(idx)
		for ti, child := range [3]mig.Lit{a, b, c} {
			src, err := g.homeOf(child)
			if err != nil {
				return err
			}
			g.aap(src, Ref{Space: SpaceT, Idx: ti})
		}
		// Fused TRA + copy-out: directly to the destination when this node
		// is exactly one positive output and nothing else reads it.
		result := mig.MakeLit(idx, false)
		var dst Ref
		if oi, ok := soleOutput[idx]; ok {
			dst = outputRefs[oi]
		} else {
			dst = g.allocScratch()
			g.home[result] = dst
		}
		g.prog.Ops = append(g.prog.Ops, MicroOp{
			Kind: OpMajCopy,
			T:    [3]int{0, 1, 2},
			Dsts: []Ref{dst},
		})
		g.release(a.Node())
		g.release(b.Node())
		g.release(c.Node())
	}
	// Remaining outputs (negated, shared, constants, passthroughs).
	for i, o := range outs {
		if oi, ok := soleOutput[o.Node()]; ok && oi == i && !o.Neg() {
			continue // already written by the fused MajCopy
		}
		src, err := g.homeOf(o)
		if err != nil {
			return fmt.Errorf("uprog: ambit output %d: %w", i, err)
		}
		g.aap(src, outputRefs[i])
	}
	g.prog.NumScratch = g.nextScratch
	return nil
}
