package uprog

import (
	"math/rand"
	"testing"

	"simdram/internal/dram"
)

func TestDeadScratchWriteRemoved(t *testing.T) {
	p := &Program{Name: "x", Width: 2, NumSrc: 1, DstWidth: 1, NumScratch: 2}
	p.Ops = []MicroOp{
		// Dead spill: written, never read.
		{Kind: OpAAP, Src: Ref{Space: SpaceSrc, Op: 0, Idx: 0}, Dsts: []Ref{{Space: SpaceScratch, Idx: 0}}},
		// Live spill: read below.
		{Kind: OpAAP, Src: Ref{Space: SpaceSrc, Op: 0, Idx: 1}, Dsts: []Ref{{Space: SpaceScratch, Idx: 1}}},
		{Kind: OpAAP, Src: Ref{Space: SpaceScratch, Idx: 1}, Dsts: []Ref{{Space: SpaceDst, Idx: 0}}},
	}
	removed := OptimizeProgram(p)
	if removed != 1 {
		t.Fatalf("removed %d ops, want 1", removed)
	}
	if len(p.Ops) != 2 {
		t.Fatalf("program has %d ops, want 2", len(p.Ops))
	}
	if p.Ops[0].Dsts[0].Idx != 1 {
		t.Error("wrong op removed")
	}
}

func TestDeadChainRemovedTransitively(t *testing.T) {
	// scratch0 feeds scratch1 which feeds nothing: both must go.
	p := &Program{Name: "x", Width: 1, NumSrc: 1, DstWidth: 1, NumScratch: 2}
	p.Ops = []MicroOp{
		{Kind: OpAAP, Src: Ref{Space: SpaceSrc, Op: 0, Idx: 0}, Dsts: []Ref{{Space: SpaceScratch, Idx: 0}}},
		{Kind: OpAAP, Src: Ref{Space: SpaceScratch, Idx: 0}, Dsts: []Ref{{Space: SpaceScratch, Idx: 1}}},
		{Kind: OpAAP, Src: Ref{Space: SpaceSrc, Op: 0, Idx: 0}, Dsts: []Ref{{Space: SpaceDst, Idx: 0}}},
	}
	if removed := OptimizeProgram(p); removed != 2 {
		t.Fatalf("removed %d ops, want 2 (transitive)", removed)
	}
}

func TestOverwrittenSpillIsDead(t *testing.T) {
	// scratch0 written, overwritten without a read, then read: the first
	// write is dead, the second is live.
	p := &Program{Name: "x", Width: 2, NumSrc: 1, DstWidth: 1, NumScratch: 1}
	p.Ops = []MicroOp{
		{Kind: OpAAP, Src: Ref{Space: SpaceSrc, Op: 0, Idx: 0}, Dsts: []Ref{{Space: SpaceScratch, Idx: 0}}},
		{Kind: OpAAP, Src: Ref{Space: SpaceSrc, Op: 0, Idx: 1}, Dsts: []Ref{{Space: SpaceScratch, Idx: 0}}},
		{Kind: OpAAP, Src: Ref{Space: SpaceScratch, Idx: 0}, Dsts: []Ref{{Space: SpaceDst, Idx: 0}}},
	}
	if removed := OptimizeProgram(p); removed != 1 {
		t.Fatalf("removed %d ops, want 1", removed)
	}
	if p.Ops[0].Src.Idx != 1 {
		t.Error("kept the wrong write")
	}
}

func TestMajCopyWithDeadScratchBecomesAP(t *testing.T) {
	p := &Program{Name: "x", Width: 1, NumSrc: 1, DstWidth: 1, NumScratch: 1}
	p.Ops = []MicroOp{
		{Kind: OpMajCopy, T: [3]int{0, 1, 2}, Dsts: []Ref{{Space: SpaceScratch, Idx: 0}}},
		{Kind: OpAAP, Src: Ref{Space: SpaceT, Idx: 0}, Dsts: []Ref{{Space: SpaceDst, Idx: 0}}},
	}
	OptimizeProgram(p)
	if p.Ops[0].Kind != OpAP {
		t.Errorf("MajCopy with dead destination should fall back to AP, got %v", p.Ops[0].Kind)
	}
}

// TestPeepholePreservesSemantics runs an adder program with and without
// the peephole on identical data.
func TestPeepholePreservesSemantics(t *testing.T) {
	m := buildAdderMIG(t, 12)
	in, out := stdRefs(12, 12)
	raw, err := Generate(m, in, out, DefaultCodegen("add12"))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Generate(m, in, out, DefaultCodegen("add12"))
	if err != nil {
		t.Fatal(err)
	}
	OptimizeProgram(opt)
	if len(opt.Ops) > len(raw.Ops) {
		t.Fatal("peephole grew the program")
	}
	rng := rand.New(rand.NewSource(3))
	av := make([]uint64, 100)
	bv := make([]uint64, 100)
	for i := range av {
		av[i] = rng.Uint64() & 0xFFF
		bv[i] = rng.Uint64() & 0xFFF
	}
	g1 := runOnSubarray(t, raw, 12, av, bv)
	g2 := runOnSubarray(t, opt, 12, av, bv)
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("lane %d: raw %d optimized %d", i, g1[i], g2[i])
		}
	}
	if err := opt.Validate(dram.TestConfig()); err != nil {
		t.Fatal(err)
	}
}
