package uprog

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Binary μProgram serialization: the format the SIMDRAM control unit's
// program store holds and the driver ships when installing a new
// operation (paper §3: new operations require no hardware changes —
// exactly because a μProgram is data). The encoding is little-endian:
//
//	magic "SDμP" (4 bytes) | version u8 | name len u8 | name bytes
//	width u8 | dstWidth u8 | numSrc u8 | srcWidths u8×numSrc
//	numScratch u16 | opCount u32
//	per op: kind u8 | payload
//	  AAP:     src ref | ndst u8 | dst refs
//	  AP:      t0 u8 | t1 u8 | t2 u8
//	  MajCopy: t0 u8 | t1 u8 | t2 u8 | ndst u8 | dst refs
//	ref: space u8 | op u8 | idx u16
var magic = [4]byte{'S', 'D', 0xCE, 0xBC} // "SD" + UTF-8 μ

const encodeVersion = 1

// Encode serializes the program.
func (p *Program) Encode() ([]byte, error) {
	if len(p.Name) > 255 {
		return nil, fmt.Errorf("uprog: program name too long (%d bytes)", len(p.Name))
	}
	if p.NumSrc > 255 || p.Width > 255 || p.DstWidth > 255 {
		return nil, fmt.Errorf("uprog: program shape exceeds encoding limits")
	}
	if p.NumScratch > 0xFFFF {
		return nil, fmt.Errorf("uprog: scratch count %d exceeds encoding limit", p.NumScratch)
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(encodeVersion)
	buf.WriteByte(byte(len(p.Name)))
	buf.WriteString(p.Name)
	buf.WriteByte(byte(p.Width))
	buf.WriteByte(byte(p.DstWidth))
	buf.WriteByte(byte(p.NumSrc))
	for k := 0; k < p.NumSrc; k++ {
		buf.WriteByte(byte(p.SrcWidth(k)))
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(p.NumScratch))
	buf.Write(u16[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(p.Ops)))
	buf.Write(u32[:])
	for _, op := range p.Ops {
		buf.WriteByte(byte(op.Kind))
		switch op.Kind {
		case OpAAP:
			if err := encodeRef(&buf, op.Src); err != nil {
				return nil, err
			}
			if err := encodeDsts(&buf, op.Dsts); err != nil {
				return nil, err
			}
		case OpAP:
			buf.WriteByte(byte(op.T[0]))
			buf.WriteByte(byte(op.T[1]))
			buf.WriteByte(byte(op.T[2]))
		case OpMajCopy:
			buf.WriteByte(byte(op.T[0]))
			buf.WriteByte(byte(op.T[1]))
			buf.WriteByte(byte(op.T[2]))
			if err := encodeDsts(&buf, op.Dsts); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("uprog: cannot encode op kind %d", op.Kind)
		}
	}
	return buf.Bytes(), nil
}

func encodeDsts(buf *bytes.Buffer, dsts []Ref) error {
	if len(dsts) == 0 || len(dsts) > 255 {
		return fmt.Errorf("uprog: %d destinations out of encodable range", len(dsts))
	}
	buf.WriteByte(byte(len(dsts)))
	for _, d := range dsts {
		if err := encodeRef(buf, d); err != nil {
			return err
		}
	}
	return nil
}

func encodeRef(buf *bytes.Buffer, r Ref) error {
	if r.Op > 255 || r.Idx > 0xFFFF || r.Op < 0 || r.Idx < 0 {
		return fmt.Errorf("uprog: ref %v out of encodable range", r)
	}
	buf.WriteByte(byte(r.Space))
	buf.WriteByte(byte(r.Op))
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(r.Idx))
	buf.Write(u16[:])
	return nil
}

// decoder walks the encoded bytes with bounds checking.
type decoder struct {
	b   []byte
	pos int
}

func (d *decoder) u8() (byte, error) {
	if d.pos >= len(d.b) {
		return 0, fmt.Errorf("uprog: truncated program at byte %d", d.pos)
	}
	v := d.b[d.pos]
	d.pos++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if d.pos+2 > len(d.b) {
		return 0, fmt.Errorf("uprog: truncated program at byte %d", d.pos)
	}
	v := binary.LittleEndian.Uint16(d.b[d.pos:])
	d.pos += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.b) {
		return 0, fmt.Errorf("uprog: truncated program at byte %d", d.pos)
	}
	v := binary.LittleEndian.Uint32(d.b[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) ref() (Ref, error) {
	space, err := d.u8()
	if err != nil {
		return Ref{}, err
	}
	op, err := d.u8()
	if err != nil {
		return Ref{}, err
	}
	idx, err := d.u16()
	if err != nil {
		return Ref{}, err
	}
	if Space(space) > SpaceC1 {
		return Ref{}, fmt.Errorf("uprog: invalid space %d", space)
	}
	return Ref{Space: Space(space), Op: int(op), Idx: int(idx)}, nil
}

// DecodeProgram deserializes a program encoded by Encode.
func DecodeProgram(b []byte) (*Program, error) {
	d := &decoder{b: b}
	if len(b) < 4 || !bytes.Equal(b[:4], magic[:]) {
		return nil, fmt.Errorf("uprog: bad magic")
	}
	d.pos = 4
	ver, err := d.u8()
	if err != nil {
		return nil, err
	}
	if ver != encodeVersion {
		return nil, fmt.Errorf("uprog: unsupported version %d", ver)
	}
	nameLen, err := d.u8()
	if err != nil {
		return nil, err
	}
	if d.pos+int(nameLen) > len(b) {
		return nil, fmt.Errorf("uprog: truncated name")
	}
	p := &Program{Name: string(b[d.pos : d.pos+int(nameLen)])}
	d.pos += int(nameLen)
	w, err := d.u8()
	if err != nil {
		return nil, err
	}
	dw, err := d.u8()
	if err != nil {
		return nil, err
	}
	ns, err := d.u8()
	if err != nil {
		return nil, err
	}
	p.Width, p.DstWidth, p.NumSrc = int(w), int(dw), int(ns)
	for k := 0; k < p.NumSrc; k++ {
		sw, err := d.u8()
		if err != nil {
			return nil, err
		}
		p.SrcWidths = append(p.SrcWidths, int(sw))
	}
	scratch, err := d.u16()
	if err != nil {
		return nil, err
	}
	p.NumScratch = int(scratch)
	opCount, err := d.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < opCount; i++ {
		kind, err := d.u8()
		if err != nil {
			return nil, err
		}
		var op MicroOp
		op.Kind = OpKind(kind)
		switch op.Kind {
		case OpAAP:
			if op.Src, err = d.ref(); err != nil {
				return nil, err
			}
			if op.Dsts, err = d.dsts(); err != nil {
				return nil, err
			}
		case OpAP, OpMajCopy:
			for j := 0; j < 3; j++ {
				tv, err := d.u8()
				if err != nil {
					return nil, err
				}
				op.T[j] = int(tv)
			}
			if op.Kind == OpMajCopy {
				if op.Dsts, err = d.dsts(); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("uprog: op %d: unknown kind %d", i, kind)
		}
		p.Ops = append(p.Ops, op)
	}
	if d.pos != len(b) {
		return nil, fmt.Errorf("uprog: %d trailing bytes", len(b)-d.pos)
	}
	return p, nil
}

func (d *decoder) dsts() ([]Ref, error) {
	n, err := d.u8()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("uprog: zero destinations")
	}
	out := make([]Ref, n)
	for i := range out {
		if out[i], err = d.ref(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EncodedSize returns the size in bytes the program occupies in the
// control unit's program store.
func (p *Program) EncodedSize() int {
	b, err := p.Encode()
	if err != nil {
		return 0
	}
	return len(b)
}
