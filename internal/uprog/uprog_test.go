package uprog

import (
	"math/rand"
	"testing"

	"simdram/internal/dram"
	"simdram/internal/logic"
	"simdram/internal/mig"
	"simdram/internal/vertical"
)

// buildAdderMIG returns an optimized W-bit ripple-carry adder MIG with
// inputs a[0..W-1], b[0..W-1] and outputs s[0..W-1].
func buildAdderMIG(t testing.TB, width int) *mig.MIG {
	t.Helper()
	c := logic.New()
	a := c.InputBus("a", width)
	b := c.InputBus("b", width)
	carry := c.Const(false)
	sum := make([]int, width)
	for i := 0; i < width; i++ {
		sum[i] = c.Xor(c.Xor(a[i], b[i]), carry)
		carry = c.Maj(a[i], b[i], carry)
	}
	c.OutputBus(sum, "s")
	m, err := mig.FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	m.Optimize(mig.DefaultOptimize())
	return m
}

// stdRefs builds the conventional input/output reference layout for a
// two-operand, width-bit operation.
func stdRefs(width, dstWidth int) (in, out []Ref) {
	for op := 0; op < 2; op++ {
		for i := 0; i < width; i++ {
			in = append(in, Ref{Space: SpaceSrc, Op: op, Idx: i})
		}
	}
	for i := 0; i < dstWidth; i++ {
		out = append(out, Ref{Space: SpaceDst, Idx: i})
	}
	return in, out
}

func TestGenerateAdderStructure(t *testing.T) {
	m := buildAdderMIG(t, 8)
	in, out := stdRefs(8, 8)
	p, err := Generate(m, in, out, DefaultCodegen("add8"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(dram.TestConfig()); err != nil {
		t.Fatal(err)
	}
	tras := p.NumAP()
	for _, op := range p.Ops {
		if op.Kind == OpMajCopy {
			tras++
		}
	}
	if tras != m.Size() {
		t.Errorf("TRA count %d should equal MIG size %d", tras, m.Size())
	}
	if p.NumAAP() == 0 {
		t.Error("expected some AAP copies")
	}
	if p.Width != 8 || p.NumSrc != 2 || p.DstWidth != 8 {
		t.Errorf("inferred shape wrong: %+v", p)
	}
}

// runOnSubarray loads two vertical operands, runs the program, and reads
// back the destination.
func runOnSubarray(t testing.TB, p *Program, width int, av, bv []uint64) []uint64 {
	t.Helper()
	cfg := dram.TestConfig()
	sa := dram.NewSubarray(&cfg)
	lanes := cfg.Cols
	rowsA, err := vertical.ToVertical(av, width, lanes)
	if err != nil {
		t.Fatal(err)
	}
	rowsB, err := vertical.ToVertical(bv, width, lanes)
	if err != nil {
		t.Fatal(err)
	}
	bind := Binding{
		SrcBase:     []int{0, width},
		DstBase:     2 * width,
		ScratchBase: 2*width + p.DstWidth,
	}
	for i := 0; i < width; i++ {
		sa.Poke(bind.SrcBase[0]+i, rowsA[i])
		sa.Poke(bind.SrcBase[1]+i, rowsB[i])
	}
	if err := Run(p, sa, bind); err != nil {
		t.Fatal(err)
	}
	dstRows := make([][]uint64, p.DstWidth)
	for i := 0; i < p.DstWidth; i++ {
		dstRows[i] = sa.Peek(bind.DstBase + i)
	}
	vals, err := vertical.ToHorizontal(dstRows, p.DstWidth, len(av))
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestAdderEndToEnd(t *testing.T) {
	for _, width := range []int{4, 8, 16} {
		m := buildAdderMIG(t, width)
		in, out := stdRefs(width, width)
		p, err := Generate(m, in, out, DefaultCodegen("add"))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(width)))
		n := 200
		mask := uint64(1)<<uint(width) - 1
		av := make([]uint64, n)
		bv := make([]uint64, n)
		for i := range av {
			av[i] = rng.Uint64() & mask
			bv[i] = rng.Uint64() & mask
		}
		got := runOnSubarray(t, p, width, av, bv)
		for i := range got {
			want := (av[i] + bv[i]) & mask
			if got[i] != want {
				t.Fatalf("width %d lane %d: %d + %d = %d, want %d", width, i, av[i], bv[i], got[i], want)
			}
		}
	}
}

func TestNaiveCodegenMatchesAndCostsMore(t *testing.T) {
	m := buildAdderMIG(t, 8)
	in, out := stdRefs(8, 8)
	optimized, err := Generate(m, in, out, DefaultCodegen("add"))
	if err != nil {
		t.Fatal(err)
	}
	naiveOpts := DefaultCodegen("add-naive")
	naiveOpts.ReuseRows = false
	naive, err := Generate(m, in, out, naiveOpts)
	if err != nil {
		t.Fatal(err)
	}
	if naive.NumAAP() <= optimized.NumAAP() {
		t.Errorf("naive codegen should need more AAPs: naive=%d optimized=%d", naive.NumAAP(), optimized.NumAAP())
	}
	// Both must be functionally identical.
	rng := rand.New(rand.NewSource(9))
	av := make([]uint64, 100)
	bv := make([]uint64, 100)
	for i := range av {
		av[i] = rng.Uint64() & 0xFF
		bv[i] = rng.Uint64() & 0xFF
	}
	g1 := runOnSubarray(t, optimized, 8, av, bv)
	g2 := runOnSubarray(t, naive, 8, av, bv)
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("lane %d: optimized %d naive %d", i, g1[i], g2[i])
		}
	}
}

func TestNegatedOutputsAndInputs(t *testing.T) {
	// out = NOT(a AND b): exercises the DCC complement path for outputs.
	c := logic.New()
	a := c.Input("a")
	b := c.Input("b")
	c.Output(c.Not(c.And(a, b)), "nand")
	m, err := mig.FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	in := []Ref{{Space: SpaceSrc, Op: 0, Idx: 0}, {Space: SpaceSrc, Op: 1, Idx: 0}}
	out := []Ref{{Space: SpaceDst, Idx: 0}}
	p, err := Generate(m, in, out, DefaultCodegen("nand"))
	if err != nil {
		t.Fatal(err)
	}
	av := []uint64{0, 0, 1, 1}
	bv := []uint64{0, 1, 0, 1}
	got := runOnSubarray(t, p, 1, av, bv)
	want := []uint64{1, 1, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NAND lane %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestConstantAndPassthroughOutputs(t *testing.T) {
	// Outputs: constant 1, constant 0, input a, NOT input b.
	c := logic.New()
	a := c.Input("a")
	b := c.Input("b")
	c.Output(c.Const(true), "one")
	c.Output(c.Const(false), "zero")
	c.Output(a, "a")
	c.Output(c.Not(b), "nb")
	m, err := mig.FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	in := []Ref{{Space: SpaceSrc, Op: 0, Idx: 0}, {Space: SpaceSrc, Op: 1, Idx: 0}}
	out := make([]Ref, 4)
	for i := range out {
		out[i] = Ref{Space: SpaceDst, Idx: i}
	}
	p, err := Generate(m, in, out, DefaultCodegen("misc"))
	if err != nil {
		t.Fatal(err)
	}
	av := []uint64{0, 1}
	bv := []uint64{1, 0}
	cfg := dram.TestConfig()
	sa := dram.NewSubarray(&cfg)
	rowsA, _ := vertical.ToVertical(av, 1, cfg.Cols)
	rowsB, _ := vertical.ToVertical(bv, 1, cfg.Cols)
	bind := Binding{SrcBase: []int{0, 1}, DstBase: 2, ScratchBase: 6}
	sa.Poke(0, rowsA[0])
	sa.Poke(1, rowsB[0])
	if err := Run(p, sa, bind); err != nil {
		t.Fatal(err)
	}
	read := func(row int) uint64 { return sa.Peek(row)[0] & 3 }
	if read(2) != 3 {
		t.Errorf("const-1 output wrong: %b", read(2))
	}
	if read(3) != 0 {
		t.Errorf("const-0 output wrong: %b", read(3))
	}
	if read(4) != 2 { // a = {lane0: 0, lane1: 1} → bit pattern 0b10
		t.Errorf("passthrough output wrong: %b", read(4))
	}
	if read(5) != 2 {
		t.Errorf("negated passthrough wrong: %b", read(5))
	}
}

func TestRandomMIGsEndToEnd(t *testing.T) {
	// Property test: arbitrary random MIGs over 6 single-bit inputs
	// (3 operands × 2 bits) must execute bit-exactly in DRAM.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		width := 2
		nOps := 3
		c := logic.New()
		var inputs []int
		for op := 0; op < nOps; op++ {
			inputs = append(inputs, c.InputBus("x", width)...)
		}
		nodes := append([]int(nil), inputs...)
		pick := func() int { return nodes[rng.Intn(len(nodes))] }
		for i := 0; i < 25; i++ {
			var n int
			switch rng.Intn(5) {
			case 0:
				n = c.And(pick(), pick())
			case 1:
				n = c.Or(pick(), pick())
			case 2:
				n = c.Xor(pick(), pick())
			case 3:
				n = c.Maj(pick(), pick(), pick())
			default:
				n = c.Not(pick())
			}
			nodes = append(nodes, n)
		}
		outs := make([]int, width)
		for i := range outs {
			outs[i] = nodes[len(nodes)-1-i]
		}
		c.OutputBus(outs, "y")
		m, err := mig.FromCircuit(c)
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			m.Optimize(mig.DefaultOptimize())
		}
		var in []Ref
		for op := 0; op < nOps; op++ {
			for i := 0; i < width; i++ {
				in = append(in, Ref{Space: SpaceSrc, Op: op, Idx: i})
			}
		}
		var out []Ref
		for i := 0; i < width; i++ {
			out = append(out, Ref{Space: SpaceDst, Idx: i})
		}
		p, err := Generate(m, in, out, DefaultCodegen("rand"))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Execute on DRAM.
		cfg := dram.TestConfig()
		sa := dram.NewSubarray(&cfg)
		n := 64
		vals := make([][]uint64, nOps)
		bind := Binding{DstBase: nOps * width, ScratchBase: (nOps + 1) * width}
		for op := 0; op < nOps; op++ {
			vals[op] = make([]uint64, n)
			for i := range vals[op] {
				vals[op][i] = rng.Uint64() & 3
			}
			rows, err := vertical.ToVertical(vals[op], width, cfg.Cols)
			if err != nil {
				t.Fatal(err)
			}
			base := op * width
			bind.SrcBase = append(bind.SrcBase, base)
			for i := 0; i < width; i++ {
				sa.Poke(base+i, rows[i])
			}
		}
		if err := Run(p, sa, bind); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dstRows := make([][]uint64, width)
		for i := range dstRows {
			dstRows[i] = sa.Peek(bind.DstBase + i)
		}
		got, err := vertical.ToHorizontal(dstRows, width, n)
		if err != nil {
			t.Fatal(err)
		}
		// Golden: evaluate the MIG directly per lane.
		for lane := 0; lane < n; lane++ {
			bits := make([]bool, nOps*width)
			for op := 0; op < nOps; op++ {
				for i := 0; i < width; i++ {
					bits[op*width+i] = (vals[op][lane]>>uint(i))&1 == 1
				}
			}
			wantBits := m.EvalBits(bits)
			var want uint64
			for i, wb := range wantBits {
				if wb {
					want |= 1 << uint(i)
				}
			}
			if got[lane] != want {
				t.Fatalf("trial %d lane %d: got %d want %d\n%s", trial, lane, got[lane], want, p)
			}
		}
	}
}

func TestBindingValidation(t *testing.T) {
	cfg := dram.TestConfig()
	p := &Program{Name: "x", Width: 8, NumSrc: 2, DstWidth: 8, NumScratch: 4}
	good := Binding{SrcBase: []int{0, 8}, DstBase: 16, ScratchBase: 24}
	if err := good.Validate(p, cfg); err != nil {
		t.Errorf("good binding rejected: %v", err)
	}
	overlap := Binding{SrcBase: []int{0, 8}, DstBase: 4, ScratchBase: 24}
	if err := overlap.Validate(p, cfg); err == nil {
		t.Error("dst overlapping src must be rejected")
	}
	outside := Binding{SrcBase: []int{0, 8}, DstBase: cfg.DataRows() - 2, ScratchBase: 24}
	if err := outside.Validate(p, cfg); err == nil {
		t.Error("dst outside data rows must be rejected")
	}
}

func TestProgramCostModels(t *testing.T) {
	m := buildAdderMIG(t, 8)
	in, out := stdRefs(8, 8)
	p, err := Generate(m, in, out, DefaultCodegen("add"))
	if err != nil {
		t.Fatal(err)
	}
	tm := dram.DDR4_2400()
	e := dram.DDR4Energy()
	lat := p.LatencyNs(tm)
	want := float64(p.NumAAP())*tm.AAPLatency() + float64(p.NumAP())*tm.APLatency()
	if lat != want {
		t.Errorf("latency model inconsistent: %f vs %f", lat, want)
	}
	if p.EnergyPJ(e) <= 0 {
		t.Error("energy must be positive")
	}
}

func TestGenerateRejectsBadShapes(t *testing.T) {
	m := mig.New(2)
	m.AddOutput(m.And(m.Input(0), m.Input(1)), "o")
	in := []Ref{{Space: SpaceSrc, Op: 0, Idx: 0}}
	out := []Ref{{Space: SpaceDst, Idx: 0}}
	if _, err := Generate(m, in, out, DefaultCodegen("bad")); err == nil {
		t.Error("wrong input ref count must error")
	}
	in = append(in, Ref{Space: SpaceSrc, Op: 1, Idx: 0})
	opts := DefaultCodegen("bad")
	opts.NumTRows = 4
	if _, err := Generate(m, in, out, opts); err == nil {
		t.Error("NumTRows=4 must error")
	}
}
