package uprog

import (
	"fmt"

	"simdram/internal/dram"
)

// Binding maps a μProgram's symbolic spaces onto physical rows of one
// subarray. Source operand k occupies rows SrcBase[k]..SrcBase[k]+W-1
// (bit i of every lane in row SrcBase[k]+i), and similarly for the
// destination and scratch regions.
type Binding struct {
	SrcBase     []int
	DstBase     int
	ScratchBase int
}

// Resolve maps a symbolic reference to a physical row index. Compute
// rows are a pure function of the geometry, so resolution needs only
// the configuration, not a materialized subarray.
func (b Binding) Resolve(r Ref, cfg dram.Config) (int, error) {
	switch r.Space {
	case SpaceSrc:
		if r.Op >= len(b.SrcBase) {
			return 0, fmt.Errorf("uprog: binding has no base for operand %d", r.Op)
		}
		return b.SrcBase[r.Op] + r.Idx, nil
	case SpaceDst:
		return b.DstBase + r.Idx, nil
	case SpaceScratch:
		return b.ScratchBase + r.Idx, nil
	case SpaceT:
		return cfg.TRow(r.Idx), nil
	case SpaceDCC:
		return cfg.DCCRow(r.Idx), nil
	case SpaceDCCN:
		return cfg.DCCNRow(r.Idx), nil
	case SpaceC0:
		return cfg.C0Row(), nil
	case SpaceC1:
		return cfg.C1Row(), nil
	default:
		return 0, fmt.Errorf("uprog: unknown space %v", r.Space)
	}
}

// regionKind classifies a binding region for the overlap check: source
// regions may alias each other (the same operand bound twice), anything
// else aliasing anything is an error.
type regionKind uint8

const (
	regionSrc regionKind = iota
	regionDst
	regionScratch
)

// bindRegion is one contiguous row range a binding claims.
type bindRegion struct {
	kind        regionKind
	op          int // operand index for regionSrc
	start, size int
}

func (r bindRegion) name() string {
	switch r.kind {
	case regionSrc:
		return fmt.Sprintf("src%d", r.op)
	case regionDst:
		return "dst"
	default:
		return "scratch"
	}
}

// Validate checks that the binding's regions fit in the subarray's data
// rows and do not overlap.
func (b Binding) Validate(p *Program, cfg dram.Config) error {
	if len(b.SrcBase) < p.NumSrc {
		return fmt.Errorf("uprog: binding supplies %d operand bases, program needs %d", len(b.SrcBase), p.NumSrc)
	}
	var regions []bindRegion
	for k, base := range b.SrcBase {
		regions = append(regions, bindRegion{kind: regionSrc, op: k, start: base, size: p.SrcWidth(k)})
	}
	regions = append(regions, bindRegion{kind: regionDst, start: b.DstBase, size: p.DstWidth})
	if p.NumScratch > 0 {
		regions = append(regions, bindRegion{kind: regionScratch, start: b.ScratchBase, size: p.NumScratch})
	}
	for _, r := range regions {
		if r.start < 0 || r.start+r.size > cfg.DataRows() {
			return fmt.Errorf("uprog: region %s [%d,%d) outside data rows [0,%d)", r.name(), r.start, r.start+r.size, cfg.DataRows())
		}
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, c := regions[i], regions[j]
			if a.start < c.start+c.size && c.start < a.start+a.size {
				// Sources may alias each other (same operand twice) but
				// nothing may alias the destination or scratch.
				if a.kind != regionSrc || c.kind != regionSrc {
					return fmt.Errorf("uprog: regions %s and %s overlap", a.name(), c.name())
				}
			}
		}
	}
	return nil
}

// Run executes the μProgram on one subarray under the binding. The caller
// is responsible for having loaded vertical operand data into the source
// rows; results appear in the destination rows.
//
// Reentrancy: Run is safe for concurrent use across *distinct*
// subarrays. It mutates only the subarray it is given (row data and that
// subarray's Stats); the Program is never written (programs come from
// the synthesis cache and are shared across goroutines) and the Binding
// is read-only. Two concurrent Runs on the same subarray race — the
// ctrl scheduler serializes those.
func Run(p *Program, sa *dram.Subarray, b Binding) error {
	cfg := *sa.Config()
	if err := b.Validate(p, cfg); err != nil {
		return err
	}
	for i, op := range p.Ops {
		switch op.Kind {
		case OpAAP:
			src, err := b.Resolve(op.Src, cfg)
			if err != nil {
				return fmt.Errorf("uprog: op %d: %w", i, err)
			}
			dsts := make([]int, len(op.Dsts))
			for j, d := range op.Dsts {
				if dsts[j], err = b.Resolve(d, cfg); err != nil {
					return fmt.Errorf("uprog: op %d: %w", i, err)
				}
			}
			sa.AAP(src, dsts...)
		case OpAP:
			sa.AP(sa.TRow(op.T[0]), sa.TRow(op.T[1]), sa.TRow(op.T[2]))
		case OpMajCopy:
			dsts := make([]int, len(op.Dsts))
			var err error
			for j, d := range op.Dsts {
				if dsts[j], err = b.Resolve(d, cfg); err != nil {
					return fmt.Errorf("uprog: op %d: %w", i, err)
				}
			}
			sa.MajCopy(sa.TRow(op.T[0]), sa.TRow(op.T[1]), sa.TRow(op.T[2]), dsts...)
		default:
			return fmt.Errorf("uprog: op %d: unknown kind %d", i, op.Kind)
		}
	}
	return nil
}
