package uprog

import (
	"fmt"

	"simdram/internal/mig"
)

// CodegenOptions configures μProgram generation.
type CodegenOptions struct {
	Name        string
	NumTRows    int // must be a positive multiple of 3
	NumDCCPairs int
	// ReuseRows enables SIMDRAM's allocation optimizations: values are
	// tracked across T rows, DCC pairs and scratch so redundant copies are
	// skipped, and dead values free their rows. Disabling it yields the
	// naive one-MAJ-at-a-time schedule (the Step-2 ablation baseline).
	ReuseRows bool
}

// DefaultCodegen returns options matching dram.PaperConfig.
func DefaultCodegen(name string) CodegenOptions {
	return CodegenOptions{Name: name, NumTRows: 6, NumDCCPairs: 2, ReuseRows: true}
}

// Generate lowers an MIG to a μProgram (SIMDRAM Step 2). inputRefs[i]
// binds MIG input i to a symbolic row; outputRefs[i] receives MIG output
// i. Width/NumSrc/DstWidth of the returned program are inferred from the
// refs.
func Generate(m *mig.MIG, inputRefs, outputRefs []Ref, opts CodegenOptions) (*Program, error) {
	if len(inputRefs) != m.NumInputs() {
		return nil, fmt.Errorf("uprog: %d input refs for %d MIG inputs", len(inputRefs), m.NumInputs())
	}
	if len(outputRefs) != len(m.Outputs()) {
		return nil, fmt.Errorf("uprog: %d output refs for %d MIG outputs", len(outputRefs), len(m.Outputs()))
	}
	if opts.NumTRows < 3 || opts.NumTRows%3 != 0 {
		return nil, fmt.Errorf("uprog: NumTRows must be a positive multiple of 3, have %d", opts.NumTRows)
	}
	if opts.NumDCCPairs < 1 {
		return nil, fmt.Errorf("uprog: need at least one DCC pair")
	}
	g := newCodegen(m, inputRefs, outputRefs, opts)
	if err := g.run(); err != nil {
		return nil, err
	}
	return g.prog, nil
}

type codegen struct {
	m    *mig.MIG
	opts CodegenOptions
	prog *Program

	inputRefs  []Ref
	outputRefs []Ref
	outDone    []bool // outputs already written by fused MajCopy

	uses []int // remaining references per node (fanins + outputs)

	locs map[mig.Lit][]Ref // rows and read-only sources holding each literal

	tHold  []mig.Lit
	tValid []bool

	dccHold  []mig.Lit // literal stored in the pair's true row
	dccValid []bool
	dccNext  int // round-robin victim pointer

	scratchHold map[int]mig.Lit
	freeScratch []int
	nextScratch int

	// pendingClob marks rows the in-flight computeNode is about to
	// overwrite (the chosen TRA group): eviction decisions must not count
	// them as surviving homes.
	pendingClob map[Ref]bool
}

// inferShape derives operand count and per-operand widths from refs.
func inferShape(inputRefs, outputRefs []Ref) (numSrc int, srcWidths []int, width, dstWidth int) {
	for _, r := range inputRefs {
		if r.Space == SpaceSrc && r.Op+1 > numSrc {
			numSrc = r.Op + 1
		}
	}
	srcWidths = make([]int, numSrc)
	for _, r := range inputRefs {
		if r.Space == SpaceSrc && r.Idx+1 > srcWidths[r.Op] {
			srcWidths[r.Op] = r.Idx + 1
		}
	}
	for _, w := range srcWidths {
		if w > width {
			width = w
		}
	}
	for _, r := range outputRefs {
		if r.Space == SpaceDst && r.Idx+1 > dstWidth {
			dstWidth = r.Idx + 1
		}
	}
	return numSrc, srcWidths, width, dstWidth
}

func newCodegen(m *mig.MIG, inputRefs, outputRefs []Ref, opts CodegenOptions) *codegen {
	maxSrc, srcWidths, width, dstWidth := inferShape(inputRefs, outputRefs)
	g := &codegen{
		m:    m,
		opts: opts,
		prog: &Program{
			Name:      opts.Name,
			Width:     width,
			SrcWidths: srcWidths,
			NumSrc:    maxSrc,
			DstWidth:  dstWidth,
		},
		inputRefs:   inputRefs,
		outputRefs:  outputRefs,
		outDone:     make([]bool, len(outputRefs)),
		uses:        make([]int, m.NumNodes()),
		locs:        make(map[mig.Lit][]Ref),
		tHold:       make([]mig.Lit, opts.NumTRows),
		tValid:      make([]bool, opts.NumTRows),
		dccHold:     make([]mig.Lit, opts.NumDCCPairs),
		dccValid:    make([]bool, opts.NumDCCPairs),
		scratchHold: make(map[int]mig.Lit),
	}
	// Permanent sources: constants and inputs.
	g.addLoc(mig.ConstFalse, Ref{Space: SpaceC0})
	g.addLoc(mig.ConstTrue, Ref{Space: SpaceC1})
	for i, r := range inputRefs {
		g.addLoc(g.m.Input(i), r)
	}
	return g
}

func (g *codegen) run() error {
	// Reference counting: every fanin and every output is one use.
	for idx := g.m.NumInputs() + 1; idx < g.m.NumNodes(); idx++ {
		a, b, c := g.m.Children(idx)
		g.uses[a.Node()]++
		g.uses[b.Node()]++
		g.uses[c.Node()]++
	}
	for _, o := range g.m.Outputs() {
		g.uses[o.Node()]++
	}
	for idx := g.m.NumInputs() + 1; idx < g.m.NumNodes(); idx++ {
		if g.uses[idx] == 0 {
			continue // dead node
		}
		if err := g.computeNode(idx); err != nil {
			return err
		}
	}
	for i, o := range g.m.Outputs() {
		if g.outDone[i] {
			continue // written by a fused MajCopy
		}
		if err := g.materialize(o, g.outputRefs[i]); err != nil {
			return fmt.Errorf("uprog: output %d: %w", i, err)
		}
		g.release(o.Node())
	}
	g.prog.NumScratch = g.nextScratch
	return nil
}

// --- location bookkeeping ---

func (g *codegen) addLoc(lit mig.Lit, ref Ref) {
	g.locs[lit] = append(g.locs[lit], ref)
}

func (g *codegen) removeLoc(lit mig.Lit, ref Ref) {
	list := g.locs[lit]
	for i, r := range list {
		if r == ref {
			list[i] = list[len(list)-1]
			g.locs[lit] = list[:len(list)-1]
			if len(g.locs[lit]) == 0 {
				delete(g.locs, lit)
			}
			return
		}
	}
}

// clearRow forgets the current content of a writable row.
func (g *codegen) clearRow(ref Ref) {
	switch ref.Space {
	case SpaceT:
		if g.tValid[ref.Idx] {
			g.removeLoc(g.tHold[ref.Idx], ref)
			g.tValid[ref.Idx] = false
		}
	case SpaceScratch:
		if lit, ok := g.scratchHold[ref.Idx]; ok {
			g.removeLoc(lit, ref)
			delete(g.scratchHold, ref.Idx)
		}
	case SpaceDCC, SpaceDCCN:
		p := ref.Idx
		if g.dccValid[p] {
			g.removeLoc(g.dccHold[p], Ref{Space: SpaceDCC, Idx: p})
			g.removeLoc(g.dccHold[p].Not(), Ref{Space: SpaceDCCN, Idx: p})
			g.dccValid[p] = false
		}
	case SpaceDst:
		// Destinations are write-only; nothing tracked.
	default:
		panic(fmt.Sprintf("uprog: clearRow on read-only space %v", ref.Space))
	}
}

// setRow records that ref now holds lit (after clearRow).
func (g *codegen) setRow(ref Ref, lit mig.Lit) {
	switch ref.Space {
	case SpaceT:
		g.tHold[ref.Idx] = lit
		g.tValid[ref.Idx] = true
		g.addLoc(lit, ref)
	case SpaceScratch:
		g.scratchHold[ref.Idx] = lit
		g.addLoc(lit, ref)
	case SpaceDCC:
		g.dccHold[ref.Idx] = lit
		g.dccValid[ref.Idx] = true
		g.addLoc(lit, Ref{Space: SpaceDCC, Idx: ref.Idx})
		g.addLoc(lit.Not(), Ref{Space: SpaceDCCN, Idx: ref.Idx})
	case SpaceDCCN:
		// Writing the complement row stores the complement in the pair.
		g.setRow(Ref{Space: SpaceDCC, Idx: ref.Idx}, lit.Not())
	case SpaceDst:
		// Not tracked.
	default:
		panic(fmt.Sprintf("uprog: setRow on read-only space %v", ref.Space))
	}
}

func (g *codegen) emitAAP(src, dst Ref, lit mig.Lit) {
	g.prog.Ops = append(g.prog.Ops, MicroOp{Kind: OpAAP, Src: src, Dsts: []Ref{dst}})
	g.clearRow(dst)
	g.setRow(dst, lit)
}

// findRow returns any row or source currently holding lit.
func (g *codegen) findRow(lit mig.Lit) (Ref, bool) {
	list := g.locs[lit]
	if len(list) == 0 {
		return Ref{}, false
	}
	// Prefer compute-region rows (cheapest to re-read is irrelevant; any
	// single source works, but deterministic choice aids testing).
	best := list[0]
	for _, r := range list {
		if r.Space == SpaceT {
			return r, true
		}
		if best.Space == SpaceSrc && r.Space != SpaceSrc {
			best = r
		}
	}
	return best, true
}

// --- liveness and spilling ---

// release drops one use of node and frees its rows when dead.
func (g *codegen) release(node int) {
	g.uses[node]--
	if g.uses[node] > 0 {
		return
	}
	for _, lit := range [2]mig.Lit{mig.MakeLit(node, false), mig.MakeLit(node, true)} {
		list := append([]Ref(nil), g.locs[lit]...)
		for _, ref := range list {
			switch ref.Space {
			case SpaceT, SpaceScratch, SpaceDCC, SpaceDCCN:
				g.clearRow(ref)
				if ref.Space == SpaceScratch {
					g.freeScratch = append(g.freeScratch, ref.Idx)
				}
			}
		}
	}
}

// onlyHome reports whether every location of node (either polarity) is
// inside clobbered.
func (g *codegen) onlyHome(node int, clobbered map[Ref]bool) bool {
	for _, lit := range [2]mig.Lit{mig.MakeLit(node, false), mig.MakeLit(node, true)} {
		for _, ref := range g.locs[lit] {
			if !clobbered[ref] {
				return false
			}
		}
	}
	return true
}

func (g *codegen) allocScratch() int {
	if n := len(g.freeScratch); n > 0 {
		idx := g.freeScratch[n-1]
		g.freeScratch = g.freeScratch[:n-1]
		return idx
	}
	idx := g.nextScratch
	g.nextScratch++
	return idx
}

// spillNode copies one live copy of node to a fresh scratch row.
func (g *codegen) spillNode(node int) error {
	pos := mig.MakeLit(node, false)
	lit := pos
	src, ok := g.findRow(lit)
	if !ok {
		lit = pos.Not()
		src, ok = g.findRow(lit)
	}
	if !ok {
		return fmt.Errorf("uprog: internal: spill of node %d with no home", node)
	}
	dst := Ref{Space: SpaceScratch, Idx: g.allocScratch()}
	g.emitAAP(src, dst, lit)
	return nil
}

// --- DCC management ---

// acquireDCC returns a DCC pair safe to overwrite, spilling live content.
func (g *codegen) acquireDCC() (int, error) {
	for p := 0; p < g.opts.NumDCCPairs; p++ {
		if !g.dccValid[p] {
			return p, nil
		}
	}
	for p := 0; p < g.opts.NumDCCPairs; p++ {
		if g.uses[g.dccHold[p].Node()] == 0 {
			return p, nil
		}
	}
	p := g.dccNext
	g.dccNext = (g.dccNext + 1) % g.opts.NumDCCPairs
	node := g.dccHold[p].Node()
	clob := map[Ref]bool{
		{Space: SpaceDCC, Idx: p}:  true,
		{Space: SpaceDCCN, Idx: p}: true,
	}
	for r := range g.pendingClob {
		clob[r] = true
	}
	if g.uses[node] > 0 && g.onlyHome(node, clob) {
		if err := g.spillNode(node); err != nil {
			return 0, err
		}
	}
	return p, nil
}

// materialize copies lit into dst, deriving the complement through a
// dual-contact cell pair when only the opposite polarity exists.
func (g *codegen) materialize(lit mig.Lit, dst Ref) error {
	if src, ok := g.findRow(lit); ok {
		if src == dst {
			return nil
		}
		g.emitAAP(src, dst, lit)
		return nil
	}
	srcN, ok := g.findRow(lit.Not())
	if !ok {
		return fmt.Errorf("uprog: internal: literal %v has no home", lit)
	}
	p, err := g.acquireDCC()
	if err != nil {
		return err
	}
	// Copy !lit into the pair's true row; the complement row now reads lit.
	g.emitAAP(srcN, Ref{Space: SpaceDCC, Idx: p}, lit.Not())
	g.emitAAP(Ref{Space: SpaceDCCN, Idx: p}, dst, lit)
	return nil
}

// --- node scheduling ---

// groups returns the TRA groups as triples of T-row indices.
func (g *codegen) groups() [][3]int {
	n := g.opts.NumTRows / 3
	out := make([][3]int, n)
	for i := 0; i < n; i++ {
		out[i] = [3]int{3 * i, 3*i + 1, 3*i + 2}
	}
	return out
}

// groupCost estimates the AAPs needed to stage children into group rows.
func (g *codegen) groupCost(rows [3]int, children [3]mig.Lit) int {
	cost := 0
	taken := map[int]bool{}
	for _, ch := range children {
		placed := false
		for _, r := range rows {
			if !taken[r] && g.tValid[r] && g.tHold[r] == ch {
				taken[r] = true
				placed = true
				break
			}
		}
		if placed {
			continue
		}
		if _, ok := g.findRow(ch); ok {
			cost++
		} else {
			cost += 2 // complement through a DCC pair
		}
	}
	// Penalize clobbering live values whose only home is this group.
	clob := map[Ref]bool{}
	for _, r := range rows {
		clob[Ref{Space: SpaceT, Idx: r}] = true
	}
	seen := map[int]bool{}
	for _, r := range rows {
		if !g.tValid[r] {
			continue
		}
		node := g.tHold[r].Node()
		if seen[node] {
			continue
		}
		seen[node] = true
		live := g.uses[node]
		for _, ch := range children {
			if ch.Node() == node {
				live--
			}
		}
		if live > 0 && g.onlyHome(node, clob) {
			cost++
		}
	}
	return cost
}

func (g *codegen) computeNode(idx int) error {
	a, b, c := g.m.Children(idx)
	children := [3]mig.Lit{a, b, c}

	if !g.opts.ReuseRows {
		return g.computeNodeNaive(idx, children)
	}

	// Choose the cheapest TRA group.
	groups := g.groups()
	best, bestCost := 0, int(1<<30)
	for gi, rows := range groups {
		if cost := g.groupCost(rows, children); cost < bestCost {
			best, bestCost = gi, cost
		}
	}
	rows := groups[best]

	// Assign children to rows: keep children already in place.
	assigned := [3]int{-1, -1, -1} // child index → T row
	taken := map[int]bool{}
	for ci, ch := range children {
		for _, r := range rows {
			if !taken[r] && g.tValid[r] && g.tHold[r] == ch {
				assigned[ci] = r
				taken[r] = true
				break
			}
		}
	}
	var freeRows []int
	for _, r := range rows {
		if !taken[r] {
			freeRows = append(freeRows, r)
		}
	}
	for ci := range children {
		if assigned[ci] == -1 {
			assigned[ci] = freeRows[0]
			freeRows = freeRows[1:]
		}
	}

	clob := map[Ref]bool{}
	for _, r := range rows {
		clob[Ref{Space: SpaceT, Idx: r}] = true
	}

	// Spill live values that would lose their only home: either they sit
	// in a row about to be overwritten, or (for this node's children with
	// remaining uses) they are consumed by the AP itself.
	seen := map[int]bool{}
	for _, r := range rows {
		if !g.tValid[r] {
			continue
		}
		node := g.tHold[r].Node()
		if seen[node] {
			continue
		}
		seen[node] = true
		live := g.uses[node]
		for _, ch := range children {
			if ch.Node() == node {
				live--
			}
		}
		if live > 0 && g.onlyHome(node, clob) {
			if err := g.spillNode(node); err != nil {
				return err
			}
		}
	}

	// Pre-copy sources that exist only inside rows this AP will overwrite
	// (including rows about to receive other children).
	writeTargets := map[Ref]bool{}
	for ci, ch := range children {
		r := Ref{Space: SpaceT, Idx: assigned[ci]}
		if !(g.tValid[assigned[ci]] && g.tHold[assigned[ci]] == ch) {
			writeTargets[r] = true
		}
	}
	for _, ch := range children {
		node := ch.Node()
		if g.m.IsConst(node) || g.m.IsInput(node) {
			continue
		}
		if g.onlyHome(node, writeTargets) {
			if err := g.spillNode(node); err != nil {
				return err
			}
		}
	}

	// Stage missing children. DCC evictions during staging must treat the
	// group rows as doomed (the AP overwrites them), so a value whose only
	// other home is in this group still gets spilled.
	g.pendingClob = clob
	for ci, ch := range children {
		r := assigned[ci]
		if g.tValid[r] && g.tHold[r] == ch {
			continue
		}
		if err := g.materialize(ch, Ref{Space: SpaceT, Idx: r}); err != nil {
			g.pendingClob = nil
			return fmt.Errorf("uprog: node %d child %v: %w", idx, ch, err)
		}
	}
	g.pendingClob = nil

	// Triple-row activation: all three rows now hold the majority. When
	// this node is a pending primary output, fuse the copy-out into the
	// activation (Ambit's AAP(TRA → dst) idiom): one command computes the
	// majority and writes up to three destination rows.
	result := mig.MakeLit(idx, false)
	var fused []Ref
	var fusedIdx []int
	for oi, o := range g.m.Outputs() {
		if !g.outDone[oi] && o == result && len(fused) < 3 {
			fused = append(fused, g.outputRefs[oi])
			fusedIdx = append(fusedIdx, oi)
		}
	}
	if len(fused) > 0 {
		g.prog.Ops = append(g.prog.Ops, MicroOp{Kind: OpMajCopy, T: rows, Dsts: fused})
		for _, oi := range fusedIdx {
			g.outDone[oi] = true
		}
	} else {
		g.prog.Ops = append(g.prog.Ops, MicroOp{Kind: OpAP, T: rows})
	}
	for _, r := range rows {
		ref := Ref{Space: SpaceT, Idx: r}
		g.clearRow(ref)
		g.setRow(ref, result)
	}
	for range fused {
		g.release(idx) // each fused output consumed one use of this node
	}

	for _, ch := range children {
		g.release(ch.Node())
	}
	return nil
}

// computeNodeNaive is the Step-2 ablation baseline: every MAJ copies its
// three children in, activates, and persists the result to scratch, with
// no cross-node row reuse.
func (g *codegen) computeNodeNaive(idx int, children [3]mig.Lit) error {
	rows := [3]int{0, 1, 2}
	for ci, ch := range children {
		tRef := Ref{Space: SpaceT, Idx: rows[ci]}
		if src, ok := g.findRow(ch); ok {
			g.emitAAP(src, tRef, ch)
			continue
		}
		srcN, ok := g.findRow(ch.Not())
		if !ok {
			return fmt.Errorf("uprog: internal: literal %v has no home", ch)
		}
		g.emitAAP(srcN, Ref{Space: SpaceDCC, Idx: 0}, ch.Not())
		g.emitAAP(Ref{Space: SpaceDCCN, Idx: 0}, tRef, ch)
	}
	g.prog.Ops = append(g.prog.Ops, MicroOp{Kind: OpAP, T: rows})
	result := mig.MakeLit(idx, false)
	for _, r := range rows {
		ref := Ref{Space: SpaceT, Idx: r}
		g.clearRow(ref)
		g.setRow(ref, result)
	}
	// Persist to a dedicated scratch row.
	dst := Ref{Space: SpaceScratch, Idx: g.allocScratch()}
	g.emitAAP(Ref{Space: SpaceT, Idx: rows[0]}, dst, result)
	for _, ch := range children {
		g.release(ch.Node())
	}
	return nil
}
