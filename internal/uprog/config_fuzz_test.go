package uprog

import (
	"math/rand"
	"testing"

	"simdram/internal/dram"
	"simdram/internal/logic"
	"simdram/internal/mig"
	"simdram/internal/vertical"
)

// TestCodegenConfigMatrix is the allocator's stress test: random MIGs are
// compiled under every supported compute-region geometry (one to three
// TRA groups, one to three DCC pairs) and executed in a DRAM model with a
// matching geometry; results must equal direct MIG evaluation bit for
// bit. This is the test that guards the spill/eviction corner cases —
// with a single DCC pair and a single TRA group, eviction pressure is
// maximal.
func TestCodegenConfigMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	geometries := []struct{ tRows, dccPairs int }{
		{3, 1},
		{3, 2},
		{6, 1},
		{6, 2},
		{9, 3},
	}
	for trial := 0; trial < 25; trial++ {
		width := 2
		nOps := 2
		c := logic.New()
		var inputs []int
		for op := 0; op < nOps; op++ {
			inputs = append(inputs, c.InputBus("x", width)...)
		}
		nodes := append([]int(nil), inputs...)
		pick := func() int { return nodes[rng.Intn(len(nodes))] }
		for i := 0; i < 30; i++ {
			var n int
			switch rng.Intn(6) {
			case 0:
				n = c.And(pick(), pick())
			case 1:
				n = c.Or(pick(), pick())
			case 2:
				n = c.Xor(pick(), pick())
			case 3:
				n = c.Xor(pick(), pick(), pick())
			case 4:
				n = c.Maj(pick(), pick(), pick())
			default:
				n = c.Not(pick())
			}
			nodes = append(nodes, n)
		}
		outs := make([]int, width)
		for i := range outs {
			outs[i] = nodes[len(nodes)-1-i]
		}
		c.OutputBus(outs, "y")
		m, err := mig.FromCircuit(c)
		if err != nil {
			t.Fatal(err)
		}
		if trial%2 == 0 {
			m.Optimize(mig.DefaultOptimize())
		}
		var in []Ref
		for op := 0; op < nOps; op++ {
			for i := 0; i < width; i++ {
				in = append(in, Ref{Space: SpaceSrc, Op: op, Idx: i})
			}
		}
		var out []Ref
		for i := 0; i < width; i++ {
			out = append(out, Ref{Space: SpaceDst, Idx: i})
		}

		for _, geo := range geometries {
			opts := CodegenOptions{
				Name:        "fuzz",
				NumTRows:    geo.tRows,
				NumDCCPairs: geo.dccPairs,
				ReuseRows:   trial%3 != 0, // exercise the naive path too
			}
			p, err := Generate(m, in, out, opts)
			if err != nil {
				t.Fatalf("trial %d geo %+v: %v", trial, geo, err)
			}
			OptimizeProgram(p)

			cfg := dram.TestConfig()
			cfg.NumTRows = geo.tRows
			cfg.NumDCCPairs = geo.dccPairs
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(cfg); err != nil {
				t.Fatalf("trial %d geo %+v: invalid program: %v", trial, geo, err)
			}
			sa := dram.NewSubarray(&cfg)
			n := 64
			vals := make([][]uint64, nOps)
			bind := Binding{DstBase: nOps * width, ScratchBase: cfg.DataRows() - p.NumScratch}
			for op := 0; op < nOps; op++ {
				vals[op] = make([]uint64, n)
				for i := range vals[op] {
					vals[op][i] = rng.Uint64() & 3
				}
				rows, err := vertical.ToVertical(vals[op], width, cfg.Cols)
				if err != nil {
					t.Fatal(err)
				}
				base := op * width
				bind.SrcBase = append(bind.SrcBase, base)
				for i := 0; i < width; i++ {
					sa.Poke(base+i, rows[i])
				}
			}
			if err := Run(p, sa, bind); err != nil {
				t.Fatalf("trial %d geo %+v: %v", trial, geo, err)
			}
			dstRows := make([][]uint64, width)
			for i := range dstRows {
				dstRows[i] = sa.Peek(bind.DstBase + i)
			}
			got, err := vertical.ToHorizontal(dstRows, width, n)
			if err != nil {
				t.Fatal(err)
			}
			for lane := 0; lane < n; lane++ {
				bits := make([]bool, nOps*width)
				for op := 0; op < nOps; op++ {
					for i := 0; i < width; i++ {
						bits[op*width+i] = (vals[op][lane]>>uint(i))&1 == 1
					}
				}
				wantBits := m.EvalBits(bits)
				var want uint64
				for i, wb := range wantBits {
					if wb {
						want |= 1 << uint(i)
					}
				}
				if got[lane] != want {
					t.Fatalf("trial %d geo %+v lane %d: got %d want %d\n%s",
						trial, geo, lane, got[lane], want, p)
				}
			}
		}
	}
}
