package uprog

// OptimizeProgram removes dead scratch writes: AAP copies into scratch
// rows that no later command reads before the row is overwritten (or the
// program ends). The allocator spills conservatively — a value spilled
// "just in case" may never be reloaded — and each removed command saves a
// full AAP (~78 ns and two activations) on every subarray, every
// execution. Returns the number of commands removed.
//
// The pass is a reverse liveness scan over the straight-line program,
// iterated to a fixpoint because removing a dead write can kill the last
// read of an earlier spill.
func OptimizeProgram(p *Program) int {
	totalRemoved := 0
	for {
		removed := removeDeadScratchWrites(p)
		totalRemoved += removed
		if removed == 0 {
			return totalRemoved
		}
	}
}

func removeDeadScratchWrites(p *Program) int {
	live := map[int]bool{} // scratch idx → read later
	dead := map[int]bool{} // op index → removable
	for i := len(p.Ops) - 1; i >= 0; i-- {
		op := p.Ops[i]
		// Writes first: a write is dead if nothing below reads the row;
		// either way it kills liveness of earlier values in that row.
		switch op.Kind {
		case OpAAP:
			if len(op.Dsts) == 1 && op.Dsts[0].Space == SpaceScratch {
				if !live[op.Dsts[0].Idx] {
					dead[i] = true
					continue // a removed op also doesn't read its source
				}
				live[op.Dsts[0].Idx] = false
			}
		case OpMajCopy:
			// MajCopy's TRA side effect on T rows is always meaningful to
			// the codegen's state tracking; only prune scratch dsts when
			// every destination is dead scratch AND the op can fall back
			// to a plain AP.
			allDeadScratch := len(op.Dsts) > 0
			for _, d := range op.Dsts {
				if d.Space != SpaceScratch || live[d.Idx] {
					allDeadScratch = false
				}
			}
			if allDeadScratch {
				p.Ops[i] = MicroOp{Kind: OpAP, T: op.T}
			} else {
				for _, d := range op.Dsts {
					if d.Space == SpaceScratch {
						live[d.Idx] = false
					}
				}
			}
		}
		// Reads.
		if op.Kind == OpAAP && op.Src.Space == SpaceScratch {
			live[op.Src.Idx] = true
		}
	}
	if len(dead) == 0 {
		return 0
	}
	kept := p.Ops[:0]
	for i, op := range p.Ops {
		if !dead[i] {
			kept = append(kept, op)
		}
	}
	p.Ops = kept
	return len(dead)
}
