// Package uprog implements SIMDRAM's Step 2: turning an optimized MIG
// into a μProgram — the sequence of AAP (activate-activate-precharge row
// copy) and AP (triple-row-activation majority) DRAM commands that
// evaluates the operation inside a subarray.
//
// μPrograms reference rows symbolically (source-operand bit i, destination
// bit i, scratch row k, compute row T[j], …); the control unit binds them
// to physical rows at issue time, so one μProgram serves every subarray
// and every operand placement. The code generator performs operand-to-row
// allocation with T-row reuse and liveness-driven spilling, minimizing the
// number of row activations — the metric that determines both latency and
// energy of in-DRAM execution.
package uprog

import (
	"fmt"
	"strings"

	"simdram/internal/dram"
)

// Space names a symbolic row region.
type Space uint8

// Row spaces. SpaceSrc rows are read-only operand bits; SpaceDst and
// SpaceScratch live in ordinary data rows; the rest are the compute
// region.
const (
	SpaceSrc Space = iota
	SpaceDst
	SpaceScratch
	SpaceT
	SpaceDCC  // true row of a dual-contact cell pair
	SpaceDCCN // complement row of a dual-contact cell pair
	SpaceC0   // all-zeros control row
	SpaceC1   // all-ones control row
)

func (s Space) String() string {
	switch s {
	case SpaceSrc:
		return "src"
	case SpaceDst:
		return "dst"
	case SpaceScratch:
		return "scr"
	case SpaceT:
		return "T"
	case SpaceDCC:
		return "dcc"
	case SpaceDCCN:
		return "dccN"
	case SpaceC0:
		return "C0"
	case SpaceC1:
		return "C1"
	default:
		return fmt.Sprintf("space(%d)", uint8(s))
	}
}

// Ref is a symbolic row reference. Op selects the source operand for
// SpaceSrc; Idx is the bit index (SpaceSrc/SpaceDst), scratch slot,
// T-row index, or DCC pair index.
type Ref struct {
	Space Space
	Op    int
	Idx   int
}

func (r Ref) String() string {
	switch r.Space {
	case SpaceSrc:
		return fmt.Sprintf("src%d[%d]", r.Op, r.Idx)
	case SpaceDst:
		return fmt.Sprintf("dst[%d]", r.Idx)
	case SpaceC0, SpaceC1:
		return r.Space.String()
	default:
		return fmt.Sprintf("%s%d", r.Space, r.Idx)
	}
}

// OpKind discriminates μOps.
type OpKind uint8

// μOp kinds.
const (
	OpAAP     OpKind = iota // copy Src row into Dsts rows
	OpAP                    // triple-row activation majority over T rows
	OpMajCopy               // Ambit fused op: TRA over T rows, copy result to Dsts
)

// MicroOp is one DRAM command of a μProgram.
type MicroOp struct {
	Kind OpKind
	Src  Ref    // OpAAP source
	Dsts []Ref  // OpAAP / OpMajCopy destinations (1-3 rows)
	T    [3]int // OpAP / OpMajCopy: T-row indices
}

func (op MicroOp) String() string {
	switch op.Kind {
	case OpAAP:
		parts := make([]string, len(op.Dsts))
		for i, d := range op.Dsts {
			parts[i] = d.String()
		}
		return fmt.Sprintf("AAP %s -> %s", op.Src, strings.Join(parts, ","))
	case OpAP:
		return fmt.Sprintf("AP  T%d,T%d,T%d", op.T[0], op.T[1], op.T[2])
	case OpMajCopy:
		parts := make([]string, len(op.Dsts))
		for i, d := range op.Dsts {
			parts[i] = d.String()
		}
		return fmt.Sprintf("MAJ T%d,T%d,T%d -> %s", op.T[0], op.T[1], op.T[2], strings.Join(parts, ","))
	default:
		return fmt.Sprintf("op(%d)", op.Kind)
	}
}

// Program is a complete μProgram for one SIMDRAM operation.
type Program struct {
	Name       string
	Width      int   // widest source element width in bits
	SrcWidths  []int // per-operand widths; nil means all Width
	DstWidth   int   // destination element width in bits
	NumSrc     int   // number of source operands
	NumScratch int   // peak scratch rows used
	Ops        []MicroOp
}

// SrcWidth returns the element width of source operand k.
func (p *Program) SrcWidth(k int) int {
	if k < len(p.SrcWidths) {
		return p.SrcWidths[k]
	}
	return p.Width
}

// NumAAP returns the number of AAP commands (including fused MajCopy,
// which has AAP latency).
func (p *Program) NumAAP() int {
	n := 0
	for _, op := range p.Ops {
		if op.Kind == OpAAP || op.Kind == OpMajCopy {
			n++
		}
	}
	return n
}

// NumAP returns the number of AP commands.
func (p *Program) NumAP() int {
	n := 0
	for _, op := range p.Ops {
		if op.Kind == OpAP {
			n++
		}
	}
	return n
}

// LatencyNs returns the μProgram's execution latency on one subarray
// under the given timing. Commands are strictly sequential inside a
// subarray (a single row buffer).
func (p *Program) LatencyNs(t dram.Timing) float64 {
	return float64(p.NumAAP())*t.AAPLatency() + float64(p.NumAP())*t.APLatency()
}

// EnergyPJ returns the energy of one execution on one subarray.
func (p *Program) EnergyPJ(e dram.Energy) float64 {
	var total float64
	for _, op := range p.Ops {
		switch op.Kind {
		case OpAAP:
			total += e.AAPEnergy(len(op.Dsts))
		case OpAP:
			total += e.APEnergy()
		case OpMajCopy:
			total += e.MajCopyEnergy()
		}
	}
	return total
}

// Validate checks internal consistency against a device configuration.
func (p *Program) Validate(cfg dram.Config) error {
	if p.Width < 1 || p.Width > 64 {
		return fmt.Errorf("uprog: width %d out of range", p.Width)
	}
	for i, op := range p.Ops {
		switch op.Kind {
		case OpAAP:
			if len(op.Dsts) < 1 || len(op.Dsts) > 3 {
				return fmt.Errorf("uprog: op %d: AAP with %d destinations", i, len(op.Dsts))
			}
			if err := p.checkRef(op.Src, cfg, true); err != nil {
				return fmt.Errorf("uprog: op %d src: %w", i, err)
			}
			for _, d := range op.Dsts {
				if err := p.checkRef(d, cfg, false); err != nil {
					return fmt.Errorf("uprog: op %d dst: %w", i, err)
				}
				if d.Space == SpaceSrc {
					return fmt.Errorf("uprog: op %d writes a source operand row", i)
				}
				if d.Space == SpaceC0 || d.Space == SpaceC1 {
					return fmt.Errorf("uprog: op %d writes a control row", i)
				}
			}
		case OpAP, OpMajCopy:
			seen := map[int]bool{}
			for _, tr := range op.T {
				if tr < 0 || tr >= cfg.NumTRows {
					return fmt.Errorf("uprog: op %d: T row %d out of range", i, tr)
				}
				if seen[tr] {
					return fmt.Errorf("uprog: op %d: duplicate T row %d", i, tr)
				}
				seen[tr] = true
			}
			if op.Kind == OpMajCopy {
				if len(op.Dsts) < 1 || len(op.Dsts) > 3 {
					return fmt.Errorf("uprog: op %d: MajCopy with %d destinations", i, len(op.Dsts))
				}
				for _, d := range op.Dsts {
					if err := p.checkRef(d, cfg, false); err != nil {
						return fmt.Errorf("uprog: op %d dst: %w", i, err)
					}
					if d.Space == SpaceSrc || d.Space == SpaceC0 || d.Space == SpaceC1 {
						return fmt.Errorf("uprog: op %d writes a read-only row", i)
					}
				}
			}
		default:
			return fmt.Errorf("uprog: op %d: unknown kind %d", i, op.Kind)
		}
	}
	return nil
}

func (p *Program) checkRef(r Ref, cfg dram.Config, isSrc bool) error {
	switch r.Space {
	case SpaceSrc:
		if r.Op < 0 || r.Op >= p.NumSrc {
			return fmt.Errorf("operand %d out of range [0,%d)", r.Op, p.NumSrc)
		}
		if r.Idx < 0 || r.Idx >= p.SrcWidth(r.Op) {
			return fmt.Errorf("source bit %d out of range [0,%d)", r.Idx, p.SrcWidth(r.Op))
		}
	case SpaceDst:
		if r.Idx < 0 || r.Idx >= p.DstWidth {
			return fmt.Errorf("destination bit %d out of range [0,%d)", r.Idx, p.DstWidth)
		}
	case SpaceScratch:
		if r.Idx < 0 || r.Idx >= p.NumScratch {
			return fmt.Errorf("scratch row %d out of range [0,%d)", r.Idx, p.NumScratch)
		}
	case SpaceT:
		if r.Idx < 0 || r.Idx >= cfg.NumTRows {
			return fmt.Errorf("T row %d out of range [0,%d)", r.Idx, cfg.NumTRows)
		}
	case SpaceDCC, SpaceDCCN:
		if r.Idx < 0 || r.Idx >= cfg.NumDCCPairs {
			return fmt.Errorf("DCC pair %d out of range [0,%d)", r.Idx, cfg.NumDCCPairs)
		}
	case SpaceC0, SpaceC1:
		if !isSrc {
			return fmt.Errorf("control row used as destination")
		}
	default:
		return fmt.Errorf("unknown space %d", r.Space)
	}
	return nil
}

// RowsNeeded returns the number of data rows the program needs beyond the
// compute region: operand bits, destination bits, and scratch.
func (p *Program) RowsNeeded() int {
	return p.NumSrc*p.Width + p.DstWidth + p.NumScratch
}

// String renders a human-readable listing.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "μprogram %s: width=%d srcs=%d dst=%d scratch=%d AAP=%d AP=%d\n",
		p.Name, p.Width, p.NumSrc, p.DstWidth, p.NumScratch, p.NumAAP(), p.NumAP())
	for i, op := range p.Ops {
		fmt.Fprintf(&sb, "  %4d: %s\n", i, op)
	}
	return sb.String()
}
