package uprog

import (
	"testing"

	"simdram/internal/logic"
	"simdram/internal/mig"
)

func encodeRoundTrip(t *testing.T, p *Program) *Program {
	t.Helper()
	b, err := p.Encode()
	if err != nil {
		t.Fatalf("%s: encode: %v", p.Name, err)
	}
	q, err := DecodeProgram(b)
	if err != nil {
		t.Fatalf("%s: decode: %v", p.Name, err)
	}
	return q
}

func programsEqual(a, b *Program) bool {
	if a.Name != b.Name || a.Width != b.Width || a.DstWidth != b.DstWidth ||
		a.NumSrc != b.NumSrc || a.NumScratch != b.NumScratch || len(a.Ops) != len(b.Ops) {
		return false
	}
	for k := 0; k < a.NumSrc; k++ {
		if a.SrcWidth(k) != b.SrcWidth(k) {
			return false
		}
	}
	for i := range a.Ops {
		x, y := a.Ops[i], b.Ops[i]
		if x.Kind != y.Kind || x.Src != y.Src || x.T != y.T || len(x.Dsts) != len(y.Dsts) {
			return false
		}
		for j := range x.Dsts {
			if x.Dsts[j] != y.Dsts[j] {
				return false
			}
		}
	}
	return true
}

func TestEncodeDecodeAdder(t *testing.T) {
	m := buildAdderMIG(t, 8)
	in, out := stdRefs(8, 8)
	p, err := Generate(m, in, out, DefaultCodegen("add8"))
	if err != nil {
		t.Fatal(err)
	}
	q := encodeRoundTrip(t, p)
	if !programsEqual(p, q) {
		t.Fatal("round trip changed the program")
	}
	if p.EncodedSize() == 0 {
		t.Fatal("EncodedSize must be positive")
	}
}

func TestEncodeDecodeAmbitVariant(t *testing.T) {
	// Exercises MajCopy encoding.
	c := logic.New()
	a := c.Input("a")
	b := c.Input("b")
	c.Output(c.And(a, b), "and")
	m, err := mig.FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	in := []Ref{{Space: SpaceSrc, Op: 0, Idx: 0}, {Space: SpaceSrc, Op: 1, Idx: 0}}
	out := []Ref{{Space: SpaceDst, Idx: 0}}
	p, err := GenerateAmbit(m, in, out, "and1")
	if err != nil {
		t.Fatal(err)
	}
	hasMajCopy := false
	for _, op := range p.Ops {
		if op.Kind == OpMajCopy {
			hasMajCopy = true
		}
	}
	if !hasMajCopy {
		t.Fatal("Ambit program should contain a MajCopy")
	}
	q := encodeRoundTrip(t, p)
	if !programsEqual(p, q) {
		t.Fatal("round trip changed the program")
	}
}

// TestDecodedProgramExecutes closes the control-unit loop: a μProgram
// shipped as bytes (as the driver would install it) must execute in DRAM
// identically to the in-memory original.
func TestDecodedProgramExecutes(t *testing.T) {
	m := buildAdderMIG(t, 8)
	in, out := stdRefs(8, 8)
	p, err := Generate(m, in, out, DefaultCodegen("add8"))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeProgram(blob)
	if err != nil {
		t.Fatal(err)
	}
	av := []uint64{1, 200, 55, 254}
	bv := []uint64{2, 100, 200, 3}
	got := runOnSubarray(t, q, 8, av, bv)
	for i := range got {
		want := (av[i] + bv[i]) & 0xFF
		if got[i] != want {
			t.Fatalf("lane %d: decoded program computed %d, want %d", i, got[i], want)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	m := buildAdderMIG(t, 4)
	in, out := stdRefs(4, 4)
	p, err := Generate(m, in, out, DefaultCodegen("add4"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeProgram(b[:len(b)-3]); err == nil {
		t.Error("truncated program must be rejected")
	}
	if _, err := DecodeProgram(append([]byte{}, b[1:]...)); err == nil {
		t.Error("bad magic must be rejected")
	}
	bad := append([]byte{}, b...)
	bad[4] = 99 // version
	if _, err := DecodeProgram(bad); err == nil {
		t.Error("bad version must be rejected")
	}
	if _, err := DecodeProgram(append(b, 0)); err == nil {
		t.Error("trailing bytes must be rejected")
	}
}
