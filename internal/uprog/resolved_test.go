package uprog_test

// Differential and allocation tests for the bind-once/run-many hot
// path: RunResolved must be bit- and trace-identical to the
// interpretive Run for every catalog operation under both synthesis
// variants, and the steady-state loop must not allocate.

import (
	"math/rand"
	"testing"

	"simdram/internal/dram"
	"simdram/internal/ops"
	"simdram/internal/raceflag"
	"simdram/internal/uprog"
)

// layoutBinding packs the program's operands, destination, and scratch
// into the data rows: sources first, then dst, scratch at the tail.
func layoutBinding(p *uprog.Program, cfg dram.Config) uprog.Binding {
	b := uprog.Binding{}
	base := 0
	for k := 0; k < p.NumSrc; k++ {
		b.SrcBase = append(b.SrcBase, base)
		base += p.SrcWidth(k)
	}
	b.DstBase = base
	b.ScratchBase = cfg.DataRows() - p.NumScratch
	return b
}

// seedSources fills both subarrays' source rows with identical random
// data.
func seedSources(rng *rand.Rand, p *uprog.Program, b uprog.Binding, cfg dram.Config, sas ...*dram.Subarray) {
	row := make([]uint64, cfg.WordsPerRow())
	for k := 0; k < p.NumSrc; k++ {
		for i := 0; i < p.SrcWidth(k); i++ {
			for w := range row {
				row[w] = rng.Uint64()
			}
			for _, sa := range sas {
				sa.Poke(b.SrcBase[k]+i, row)
			}
		}
	}
}

// catalogPrograms yields every catalog operation's μProgram under both
// synthesis variants at width 8 (reductions at three operands).
func catalogPrograms(t *testing.T, cfg dram.Config) map[string]*uprog.Program {
	t.Helper()
	progs := map[string]*uprog.Program{}
	for _, variant := range []ops.Variant{ops.VariantSIMDRAM, ops.VariantAmbit} {
		for _, d := range ops.Catalog() {
			n := d.Arity
			if n < 0 {
				n = 3
			}
			s, err := ops.SynthesizeCached(d, 8, n, variant)
			if err != nil {
				t.Fatalf("%s (variant %v): %v", d.Name, variant, err)
			}
			if s.Program.RowsNeeded() > cfg.DataRows() {
				t.Fatalf("%s: needs %d rows, test geometry has %d", d.Name, s.Program.RowsNeeded(), cfg.DataRows())
			}
			progs[d.Name+"/"+s.Program.Name] = s.Program
		}
	}
	return progs
}

func TestResolvedMatchesInterpretiveAllCatalogOps(t *testing.T) {
	cfg := dram.TestConfig()
	rng := rand.New(rand.NewSource(7))
	for name, p := range catalogPrograms(t, cfg) {
		b := layoutBinding(p, cfg)
		saI := dram.NewSubarray(&cfg)
		saR := dram.NewSubarray(&cfg)
		seedSources(rng, p, b, cfg, saI, saR)

		var traceI, traceR []dram.Command
		saI.OnCommand = func(c dram.Command) { traceI = append(traceI, c) }
		saR.OnCommand = func(c dram.Command) { traceR = append(traceR, c) }

		if err := uprog.Run(p, saI, b); err != nil {
			t.Fatalf("%s: interpretive run: %v", name, err)
		}
		st, err := uprog.Resolve(p, b, cfg)
		if err != nil {
			t.Fatalf("%s: resolve: %v", name, err)
		}
		if len(st.Ops) != len(p.Ops) {
			t.Fatalf("%s: stream has %d ops, program %d", name, len(st.Ops), len(p.Ops))
		}
		uprog.RunResolved(saR, st)

		if len(traceI) != len(traceR) {
			t.Fatalf("%s: interpretive issued %d commands, resolved %d", name, len(traceI), len(traceR))
		}
		for i := range traceI {
			if traceI[i] != traceR[i] {
				t.Fatalf("%s: command %d differs: interpretive %+v resolved %+v", name, i, traceI[i], traceR[i])
			}
		}
		for row := 0; row < cfg.RowsPerSubarray; row++ {
			ri, rr := saI.PeekRow(row), saR.PeekRow(row)
			for w := range ri {
				if ri[w] != rr[w] {
					t.Fatalf("%s: row %d word %d differs: interpretive %x resolved %x", name, row, w, ri[w], rr[w])
				}
			}
		}
		if saI.Stats != saR.Stats {
			t.Fatalf("%s: stats diverge: interpretive %+v resolved %+v", name, saI.Stats, saR.Stats)
		}
	}
}

func TestResolveRejectsBadBindings(t *testing.T) {
	cfg := dram.TestConfig()
	p := &uprog.Program{Name: "x", Width: 8, NumSrc: 2, DstWidth: 8, NumScratch: 4,
		Ops: []uprog.MicroOp{{Kind: uprog.OpAAP, Src: uprog.Ref{Space: uprog.SpaceSrc}, Dsts: []uprog.Ref{{Space: uprog.SpaceDst}}}}}
	if _, err := uprog.Resolve(p, uprog.Binding{SrcBase: []int{0, 8}, DstBase: 4, ScratchBase: 24}, cfg); err == nil {
		t.Error("dst overlapping src must be rejected at resolve time")
	}
	if _, err := uprog.Resolve(p, uprog.Binding{SrcBase: []int{0, 8}, DstBase: cfg.DataRows() - 2, ScratchBase: 24}, cfg); err == nil {
		t.Error("dst outside data rows must be rejected at resolve time")
	}
	if _, err := uprog.Resolve(p, uprog.Binding{SrcBase: []int{0}, DstBase: 16, ScratchBase: 24}, cfg); err == nil {
		t.Error("missing operand base must be rejected at resolve time")
	}
	if st, err := uprog.Resolve(p, uprog.Binding{SrcBase: []int{0, 8}, DstBase: 16, ScratchBase: 24}, cfg); err != nil || st == nil {
		t.Errorf("good binding rejected: %v", err)
	}
}

// TestValidateOverlapKinds pins the typed-region overlap rules: only
// source regions may alias each other.
func TestValidateOverlapKinds(t *testing.T) {
	cfg := dram.TestConfig()
	p := &uprog.Program{Name: "x", Width: 8, NumSrc: 2, DstWidth: 8, NumScratch: 4}
	cases := []struct {
		name string
		b    uprog.Binding
		ok   bool
	}{
		{"src aliases src", uprog.Binding{SrcBase: []int{0, 0}, DstBase: 16, ScratchBase: 32}, true},
		{"src overlaps src", uprog.Binding{SrcBase: []int{0, 4}, DstBase: 16, ScratchBase: 32}, true},
		{"dst overlaps src", uprog.Binding{SrcBase: []int{0, 8}, DstBase: 4, ScratchBase: 32}, false},
		{"scratch overlaps src", uprog.Binding{SrcBase: []int{0, 8}, DstBase: 16, ScratchBase: 4}, false},
		{"scratch overlaps dst", uprog.Binding{SrcBase: []int{0, 8}, DstBase: 16, ScratchBase: 18}, false},
		{"disjoint", uprog.Binding{SrcBase: []int{0, 8}, DstBase: 16, ScratchBase: 32}, true},
	}
	for _, tc := range cases {
		err := tc.b.Validate(p, cfg)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: overlap must be rejected", tc.name)
		}
	}
}

// additionStream builds the run-many fixture the allocation tests and
// benchmarks share.
func additionStream(tb testing.TB) (*dram.Subarray, *uprog.Program, uprog.Binding, *uprog.ResolvedStream, dram.Config) {
	tb.Helper()
	cfg := dram.TestConfig()
	d, err := ops.ByName("addition")
	if err != nil {
		tb.Fatal(err)
	}
	s, err := ops.SynthesizeCached(d, 8, 2, ops.VariantSIMDRAM)
	if err != nil {
		tb.Fatal(err)
	}
	p := s.Program
	b := layoutBinding(p, cfg)
	sa := dram.NewSubarray(&cfg)
	seedSources(rand.New(rand.NewSource(3)), p, b, cfg, sa)
	st, err := uprog.Resolve(p, b, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return sa, p, b, st, cfg
}

// TestRunResolvedZeroAlloc is the uprog-level zero-allocation gate: the
// steady-state run-many loop must not touch the heap.
func TestRunResolvedZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector allocates; gate runs in the non-race CI job")
	}
	sa, _, _, st, _ := additionStream(t)
	if allocs := testing.AllocsPerRun(20, func() { uprog.RunResolved(sa, st) }); allocs != 0 {
		t.Fatalf("RunResolved allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkResolvedRun(b *testing.B) {
	sa, _, _, st, _ := additionStream(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uprog.RunResolved(sa, st)
	}
}

func BenchmarkResolvedInterpretiveBaseline(b *testing.B) {
	sa, p, bind, _, _ := additionStream(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := uprog.Run(p, sa, bind); err != nil {
			b.Fatal(err)
		}
	}
}
