package uprog

import (
	"fmt"

	"simdram/internal/dram"
)

// ResolvedOp is one μOp flattened to physical row indices: no symbolic
// references, no slices, no failure modes. Destination rows live inline
// so a resolved program is one contiguous allocation.
type ResolvedOp struct {
	Kind OpKind
	Src  int    // OpAAP source row; -1 otherwise
	NDst int    // live entries of Dsts (OpAAP / OpMajCopy)
	Dsts [3]int // destination rows
	T    [3]int // OpAP / OpMajCopy: physical T rows
}

// ResolvedStream is a μProgram bound once to a concrete placement: the
// bind-once/run-many IR of the execution hot path. Resolve validates
// the (program, binding, geometry) triple and flattens every op, so
// RunResolved's loop has no error paths and performs no allocation. A
// stream is immutable after Resolve and safe to share across goroutines
// and runs.
type ResolvedStream struct {
	Name string
	Ops  []ResolvedOp
}

// Resolve validates the binding against the program and geometry, then
// flattens every op to physical row indices. The returned stream is the
// run-many artifact: execute it any number of times with RunResolved on
// any subarray of the same geometry holding operands at the bound rows.
func Resolve(p *Program, b Binding, cfg dram.Config) (*ResolvedStream, error) {
	if err := b.Validate(p, cfg); err != nil {
		return nil, err
	}
	resolveT := func(i, idx int) (int, error) {
		if idx < 0 || idx >= cfg.NumTRows {
			return 0, fmt.Errorf("uprog: op %d: T row %d out of range [0,%d)", i, idx, cfg.NumTRows)
		}
		return cfg.TRow(idx), nil
	}
	st := &ResolvedStream{Name: p.Name, Ops: make([]ResolvedOp, len(p.Ops))}
	for i, op := range p.Ops {
		ro := ResolvedOp{Kind: op.Kind, Src: -1}
		switch op.Kind {
		case OpAAP:
			src, err := b.Resolve(op.Src, cfg)
			if err != nil {
				return nil, fmt.Errorf("uprog: op %d: %w", i, err)
			}
			ro.Src = src
		case OpAP, OpMajCopy:
			for j := 0; j < 3; j++ {
				t, err := resolveT(i, op.T[j])
				if err != nil {
					return nil, err
				}
				ro.T[j] = t
			}
		default:
			return nil, fmt.Errorf("uprog: op %d: unknown kind %d", i, op.Kind)
		}
		if op.Kind == OpAAP || op.Kind == OpMajCopy {
			if len(op.Dsts) < 1 || len(op.Dsts) > 3 {
				return nil, fmt.Errorf("uprog: op %d: %d destinations, want 1-3", i, len(op.Dsts))
			}
			for j, d := range op.Dsts {
				row, err := b.Resolve(d, cfg)
				if err != nil {
					return nil, fmt.Errorf("uprog: op %d: %w", i, err)
				}
				ro.Dsts[j] = row
			}
			ro.NDst = len(op.Dsts)
		}
		st.Ops[i] = ro
	}
	return st, nil
}

// RunResolved executes a resolved command stream on one subarray: the
// tight run-many loop of the bind-once/run-many pipeline. All
// validation happened in Resolve, so the loop is branch-light,
// allocation-free, and cannot fail — it issues exactly the same DRAM
// command sequence as the interpretive Run under the stream's binding
// (pinned by the differential tests).
//
// Reentrancy matches Run: concurrent calls on distinct subarrays are
// safe; two concurrent runs on the same subarray race.
//
//simdram:zeroalloc
func RunResolved(sa *dram.Subarray, st *ResolvedStream) {
	for i := range st.Ops {
		op := &st.Ops[i]
		switch op.Kind {
		case OpAAP:
			sa.AAP(op.Src, op.Dsts[:op.NDst]...)
		case OpAP:
			sa.AP(op.T[0], op.T[1], op.T[2])
		case OpMajCopy:
			sa.MajCopy(op.T[0], op.T[1], op.T[2], op.Dsts[:op.NDst]...)
		}
	}
}
