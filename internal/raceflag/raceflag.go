// Package raceflag reports whether the race detector instruments this
// build. Allocation-gate tests consult it: the detector adds heap
// allocations of its own, so testing.AllocsPerRun assertions that must
// be exactly zero are skipped under -race (the functional content of
// those tests is covered by the differential suites, which do run under
// -race).
package raceflag
