// Package ctrl implements the SIMDRAM control unit (paper Step 3): the
// memory-controller logic that receives bbop instructions, looks up the
// operation's μProgram, binds symbolic rows to physical rows in every
// target subarray, and sequences the DRAM commands.
//
// Timing model: subarrays in different banks execute commands in lockstep
// (bank-level parallelism); subarrays within one bank share the bank's
// row-command bandwidth and serialize. Energy is fully additive and comes
// from the DRAM model's per-command accounting.
package ctrl

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"simdram/internal/dram"
	"simdram/internal/ops"
	"simdram/internal/uprog"
)

// Unit is a SIMDRAM control unit attached to one DRAM module.
type Unit struct {
	mod     *dram.Module
	variant ops.Variant

	mu      sync.Mutex // guards workers
	workers *Pool

	// sc caches resolved command streams per (program, binding) so
	// repeated jobs skip validation and symbolic resolution (see
	// resolved.go).
	sc streamCache

	Stats ExecStats
}

// ExecStats accumulates control-unit activity.
type ExecStats struct {
	Instructions int64
	Commands     int64
	BusyNs       float64 // wall-clock time the unit kept banks busy
	EnergyPJ     float64
}

// Add accumulates other into s.
func (s *ExecStats) Add(other ExecStats) {
	s.Instructions += other.Instructions
	s.Commands += other.Commands
	s.BusyNs += other.BusyNs
	s.EnergyPJ += other.EnergyPJ
}

// Sub returns s minus other — the activity between two snapshots of a
// unit's Stats, which is how a caller attributes a raw (non-prepared)
// execution window to whoever requested it.
func (s ExecStats) Sub(other ExecStats) ExecStats {
	return ExecStats{
		Instructions: s.Instructions - other.Instructions,
		Commands:     s.Commands - other.Commands,
		BusyNs:       s.BusyNs - other.BusyNs,
		EnergyPJ:     s.EnergyPJ - other.EnergyPJ,
	}
}

// New builds a control unit for the module using the given synthesis
// variant (VariantSIMDRAM for the paper's flow, VariantAmbit for the
// in-DRAM baseline).
func New(mod *dram.Module, variant ops.Variant) *Unit {
	u := &Unit{mod: mod, variant: variant}
	// Idle pool workers reference only the Pool, not the Unit, so an
	// abandoned Unit is collectable; this finalizer then shuts its pool
	// down. Callers that create many units should still Close explicitly
	// for deterministic reclamation.
	runtime.SetFinalizer(u, (*Unit).Close)
	return u
}

// Module returns the attached DRAM module.
func (u *Unit) Module() *dram.Module { return u.mod }

// pool returns the unit's persistent worker pool, starting it on first
// use so units that never execute (analytic PerfModel runs, encoding
// tests) cost no goroutines. Worker count is capped at the module's
// subarray count — the maximum number of concurrently executable
// groups — so small geometries on big hosts don't hold idle
// goroutines.
func (u *Unit) pool() *Pool {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.workers == nil {
		size := runtime.NumCPU()
		if max := u.mod.NumBanks() * u.mod.SubarraysPerBank(); size > max {
			size = max
		}
		u.workers = NewPool(size)
	}
	return u.workers
}

// Close stops the unit's worker pool and releases its goroutines. A
// later Execute transparently starts a fresh pool.
func (u *Unit) Close() {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.workers != nil {
		u.workers.Close()
		u.workers = nil
	}
}

// Variant returns the synthesis variant this unit executes.
func (u *Unit) Variant() ops.Variant { return u.variant }

// Program returns the (cached) μProgram for an operation at the given
// width and operand count.
func (u *Unit) Program(d ops.Def, width, n int) (*uprog.Program, error) {
	s, err := ops.SynthesizeCached(d, width, n, u.variant)
	if err != nil {
		return nil, err
	}
	return s.Program, nil
}

// Segment names one subarray's worth of work: which subarray, and how the
// program's symbolic spaces bind to its rows.
type Segment struct {
	Bank, Sub int
	Binding   uprog.Binding
}

// groupBySubarray buckets segments by their (bank, subarray) pair,
// validating coordinates, and returns the groups in deterministic
// bank-major order alongside the per-bank segment counts.
func (u *Unit) groupBySubarray(segs []Segment) ([][]Segment, map[int]int, error) {
	perBank := map[int]int{}
	bySub := map[[2]int][]Segment{}
	for _, seg := range segs {
		if seg.Bank < 0 || seg.Bank >= u.mod.NumBanks() || seg.Sub < 0 || seg.Sub >= u.mod.SubarraysPerBank() {
			return nil, nil, fmt.Errorf("ctrl: segment (%d,%d) out of range", seg.Bank, seg.Sub)
		}
		bySub[[2]int{seg.Bank, seg.Sub}] = append(bySub[[2]int{seg.Bank, seg.Sub}], seg)
		perBank[seg.Bank]++
	}
	keys := make([][2]int, 0, len(bySub))
	for k := range bySub {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	groups := make([][]Segment, len(keys))
	for i, k := range keys {
		groups[i] = bySub[k]
	}
	return groups, perBank, nil
}

// runGroups executes the μProgram over each subarray group on the
// persistent worker pool — one task per group, since distinct subarrays
// are independent state — and joins every failure (not just the first).
// Execution goes through the unit's resolved-stream cache unless the
// interpretive knob is set; errors surface identically either way.
func (u *Unit) runGroups(p *uprog.Program, groups [][]Segment) error {
	pool := u.pool()
	interp := u.interpretive()
	var wg sync.WaitGroup
	errs := make(chan error, len(groups))
	for _, group := range groups {
		group := group
		wg.Add(1)
		pool.Run(func() {
			defer wg.Done()
			for _, seg := range group {
				sa := u.mod.Subarray(seg.Bank, seg.Sub)
				if interp {
					if err := uprog.Run(p, sa, seg.Binding); err != nil {
						errs <- fmt.Errorf("ctrl: bank %d subarray %d: %w", seg.Bank, seg.Sub, err)
						return
					}
					continue
				}
				st, err := u.resolvedStream(p, seg.Binding)
				if err != nil {
					errs <- fmt.Errorf("ctrl: bank %d subarray %d: %w", seg.Bank, seg.Sub, err)
					return
				}
				uprog.RunResolved(sa, st)
			}
		})
	}
	wg.Wait()
	close(errs)
	var all []error
	for err := range errs {
		all = append(all, err)
	}
	return errors.Join(all...)
}

// jobCost is the timing and command model for one instruction shared by
// the serial (Execute) and batched (plan) paths: segments within one
// bank serialize on the bank's row-command bandwidth, banks overlap.
func (u *Unit) jobCost(p *uprog.Program, nSegs int, perBank map[int]int) (durNs float64, commands int64) {
	maxPerBank := 0
	for _, c := range perBank {
		if c > maxPerBank {
			maxPerBank = c
		}
	}
	return p.LatencyNs(u.mod.Config().Timing) * float64(maxPerBank), int64(len(p.Ops)) * int64(nSegs)
}

// Execute runs the μProgram on every segment, functionally and with full
// command accounting. In the modeled hardware, segments in distinct
// banks proceed in parallel and segments within one bank serialize; in
// the simulator, distinct subarrays are independent state, so their
// functional execution runs concurrently on the unit's persistent worker
// pool (serialized only when two segments share a subarray).
func (u *Unit) Execute(p *uprog.Program, segs []Segment) (ExecStats, error) {
	if len(segs) == 0 {
		return ExecStats{}, fmt.Errorf("ctrl: no segments to execute")
	}
	before := u.mod.Stats()
	groups, perBank, err := u.groupBySubarray(segs)
	if err != nil {
		return ExecStats{}, err
	}
	if err := u.runGroups(p, groups); err != nil {
		return ExecStats{}, err
	}
	durNs, commands := u.jobCost(p, len(segs), perBank)
	delta := u.mod.Stats().Sub(before)
	st := ExecStats{
		Instructions: 1,
		Commands:     commands,
		BusyNs:       durNs,
		EnergyPJ:     delta.EnergyPJ,
	}
	u.Stats.Add(st)
	return st, nil
}

// PerfModel computes paper-scale performance numbers for a μProgram
// analytically, without materializing DRAM arrays. It is the scaling path
// used by the benchmark harness: the same latency/energy constants govern
// both this model and functional execution, so small functional runs
// validate the model's inputs.
type PerfModel struct {
	Cfg   dram.Config
	Banks int // banks used in parallel (the paper sweeps 1, 4, 16)
}

// Throughput returns operations per second for bulk execution of p: all
// banks compute on full rows concurrently, one element per bitline, with
// the mandatory-refresh tax applied (sustained rate).
func (m PerfModel) Throughput(p *uprog.Program) float64 {
	lanes := float64(m.Cfg.Cols) * float64(m.Banks)
	return lanes / (p.LatencyNs(m.Cfg.Timing) * m.Cfg.Timing.RefreshFactor() * 1e-9)
}

// LatencyNs returns the sustained time to process n elements: subarray
// batches of Cols lanes, spread across banks, serialized within each
// bank, stretched by the refresh tax.
func (m PerfModel) LatencyNs(p *uprog.Program, n int) float64 {
	segments := (n + m.Cfg.Cols - 1) / m.Cfg.Cols
	rounds := (segments + m.Banks - 1) / m.Banks
	return p.LatencyNs(m.Cfg.Timing) * float64(rounds) * m.Cfg.Timing.RefreshFactor()
}

// EnergyPJ returns the energy to process n elements. Partially filled
// subarrays still activate full rows (the paper's accounting does the
// same: activation energy is per-row, not per-lane).
func (m PerfModel) EnergyPJ(p *uprog.Program, n int) float64 {
	segments := (n + m.Cfg.Cols - 1) / m.Cfg.Cols
	return p.EnergyPJ(m.Cfg.Energy) * float64(segments)
}

// OpsPerJoule returns operations per joule — the energy-efficiency
// metric the paper reports.
func (m PerfModel) OpsPerJoule(p *uprog.Program) float64 {
	perLane := p.EnergyPJ(m.Cfg.Energy) / float64(m.Cfg.Cols) // pJ per element
	return 1e12 / perLane
}
