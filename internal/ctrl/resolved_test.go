package ctrl

// Tests for the unit-level resolved-stream cache and the
// prepare-once/execute-many batch path.

import (
	"math/rand"
	"testing"

	"simdram/internal/ops"
	"simdram/internal/raceflag"
	"simdram/internal/uprog"
)

func TestStreamCacheReuse(t *testing.T) {
	r := newBatchRig(t)
	u := r.unit

	st1, err := u.resolvedStream(r.prog, r.bind)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := u.resolvedStream(r.prog, r.bind)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Error("same (program, binding) must return the cached stream pointer")
	}
	if got := u.StreamCacheSize(); got != 1 {
		t.Errorf("StreamCacheSize = %d, want 1", got)
	}

	other := r.bind
	other.DstBase += r.prog.DstWidth
	st3, err := u.resolvedStream(r.prog, other)
	if err != nil {
		t.Fatal(err)
	}
	if st3 == st1 {
		t.Error("distinct bindings must resolve to distinct streams")
	}
	if got := u.StreamCacheSize(); got != 2 {
		t.Errorf("StreamCacheSize = %d, want 2", got)
	}
}

func TestStreamCacheBypassesManySources(t *testing.T) {
	r := newBatchRig(t)
	u := r.unit
	var red *ops.Def
	for _, d := range ops.Catalog() {
		if d.Arity < 0 {
			d := d
			red = &d
			break
		}
	}
	if red == nil {
		t.Skip("no N-ary operation in the catalog")
	}
	p, err := u.Program(*red, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := uprog.Binding{SrcBase: []int{0, 4, 8, 12}, DstBase: 16, ScratchBase: 32}
	if _, err := u.resolvedStream(p, b); err != nil {
		t.Fatal(err)
	}
	if got := u.StreamCacheSize(); got != 0 {
		t.Errorf("binding with >3 sources must bypass the cache, size = %d", got)
	}
}

// TestStreamCacheHitZeroAlloc gates the steady-state lookup: a cache hit
// must not touch the heap.
func TestStreamCacheHitZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector allocates; gate runs in the non-race CI job")
	}
	r := newBatchRig(t)
	u := r.unit
	if _, err := u.resolvedStream(r.prog, r.bind); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := u.resolvedStream(r.prog, r.bind); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("stream-cache hit allocated %.1f times, want 0", allocs)
	}
}

// TestPreparedReuse pins the bind-once/run-many contract: one Prepare,
// many ExecutePrepared calls, identical results and stats every time.
func TestPreparedReuse(t *testing.T) {
	r := newBatchRig(t)
	rng := rand.New(rand.NewSource(11))
	want0 := r.seed(t, rng, 0, 0)
	want1 := r.seed(t, rng, 1, 0)
	jobs := []Job{
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: r.bind}}},
		{Program: r.prog, Segments: []Segment{{Bank: 1, Sub: 0, Binding: r.bind}}},
	}
	pb, err := r.unit.Prepare(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Jobs() != 2 {
		t.Fatalf("Jobs() = %d, want 2", pb.Jobs())
	}
	var prev BatchStats
	for run := 0; run < 3; run++ {
		st, durNs, err := r.unit.ExecutePrepared(pb, nil)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if len(durNs) != 2 {
			t.Fatalf("run %d: durNs has %d entries, want 2", run, len(durNs))
		}
		if run > 0 && st != prev {
			t.Fatalf("run %d stats %+v differ from first run %+v", run, st, prev)
		}
		prev = st
		r.checkDst(t, 0, 0, r.bind.DstBase, want0)
		r.checkDst(t, 1, 0, r.bind.DstBase, want1)
	}
}

// TestPreparedMatchesBatchProfile checks that the one-shot path is just
// Prepare + ExecutePrepared: identical stats either way.
func TestPreparedMatchesBatchProfile(t *testing.T) {
	r := newBatchRig(t)
	rng := rand.New(rand.NewSource(17))
	r.seed(t, rng, 0, 0)
	r.seed(t, rng, 0, 1)
	jobs := []Job{
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: r.bind}}},
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 1, Binding: r.bind}}, Deps: []int{0}},
	}
	st1, _, err := r.unit.ExecuteBatchProfile(jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := r.unit.Prepare(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st2, _, err := r.unit.ExecutePrepared(pb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatalf("ExecuteBatchProfile stats %+v != Prepare/ExecutePrepared stats %+v", st1, st2)
	}
}

// TestPreparedPlanZeroAllocPerRun is the acceptance gate from the
// issue: steady-state execution of a cached plan's μPrograms performs
// zero heap allocations per run. The per-μProgram kernel of a prepared
// batch is RunResolved over a cached stream; this replays exactly the
// stream a Prepare stored.
func TestPreparedPlanZeroAllocPerRun(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector allocates; gate runs in the non-race CI job")
	}
	r := newBatchRig(t)
	jobs := []Job{{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: r.bind}}}}
	pb, err := r.unit.Prepare(jobs)
	if err != nil {
		t.Fatal(err)
	}
	ss := pb.streams[0][0][0]
	if ss.err != nil {
		t.Fatal(ss.err)
	}
	sa := r.mod.Subarray(0, 0)
	allocs := testing.AllocsPerRun(20, func() { uprog.RunResolved(sa, ss.stream) })
	if allocs != 0 {
		t.Fatalf("cached-plan μProgram run allocated %.1f times, want 0", allocs)
	}
}

func BenchmarkResolvedExecutePrepared(b *testing.B) {
	r := newBatchRig(b)
	jobs := []Job{
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: r.bind}}},
		{Program: r.prog, Segments: []Segment{{Bank: 1, Sub: 0, Binding: r.bind}}},
	}
	pb, err := r.unit.Prepare(jobs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.unit.ExecutePrepared(pb, nil); err != nil {
			b.Fatal(err)
		}
	}
}
