package ctrl

// Tests for per-bank resource attribution and the allocation-free
// prepared-batch run path.

import (
	"math"
	"testing"

	"simdram/internal/raceflag"
)

// TestExecutePreparedAttribution checks the attribution sink against
// the batch's own aggregate stats: bank sums must equal the batch's
// commands and energy exactly and its serial-equivalent busy time up
// to float rounding, with the work landing on the banks that ran it.
func TestExecutePreparedAttribution(t *testing.T) {
	r := newBatchRig(t)
	jobs := []Job{
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: r.bind}}},
		{Program: r.prog, Segments: []Segment{{Bank: 1, Sub: 0, Binding: r.bind}, {Bank: 1, Sub: 1, Binding: r.bind}}},
	}
	pb, err := r.unit.Prepare(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var at Attribution
	st, _, err := r.unit.ExecutePreparedAttr(pb, nil, &at)
	if err != nil {
		t.Fatal(err)
	}
	if at.Banks() != r.mod.NumBanks() {
		t.Fatalf("Banks() = %d, want %d", at.Banks(), r.mod.NumBanks())
	}
	if got := at.TotalCommands(); got != st.Commands {
		t.Errorf("TotalCommands = %d, want batch Commands %d", got, st.Commands)
	}
	if got := at.TotalEnergyPJ(); got != st.EnergyPJ {
		t.Errorf("TotalEnergyPJ = %v, want batch EnergyPJ %v", got, st.EnergyPJ)
	}
	if got := at.TotalBusyNs(); math.Abs(got-st.BusyNs) > 1e-9*st.BusyNs {
		t.Errorf("TotalBusyNs = %v, want batch BusyNs %v", got, st.BusyNs)
	}
	if at.SpanNs != st.CriticalPathNs {
		t.Errorf("SpanNs = %v, want CriticalPathNs %v", at.SpanNs, st.CriticalPathNs)
	}
	// Job 0 put one segment on bank 0; job 1 put two on bank 1, so bank
	// 1 carries twice bank 0's busy time and commands, and banks >= 2
	// carry nothing.
	if at.BusyNs[0] <= 0 || at.BusyNs[1] != 2*at.BusyNs[0] {
		t.Errorf("bank busy = %v, want bank1 == 2×bank0 > 0", at.BusyNs[:2])
	}
	if at.Commands[1] != 2*at.Commands[0] {
		t.Errorf("bank commands = %v, want bank1 == 2×bank0", at.Commands[:2])
	}
	for b := 2; b < at.Banks(); b++ {
		if at.BusyNs[b] != 0 || at.Commands[b] != 0 || at.EnergyPJ[b] != 0 {
			t.Errorf("bank %d billed %v/%d/%v, want idle banks unbilled", b, at.BusyNs[b], at.Commands[b], at.EnergyPJ[b])
		}
	}
}

// TestAttributionAccumulatesAndResets pins the sink contract: repeated
// runs accumulate, Reset zeroes in place.
func TestAttributionAccumulatesAndResets(t *testing.T) {
	r := newBatchRig(t)
	jobs := []Job{{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: r.bind}}}}
	pb, err := r.unit.Prepare(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var at Attribution
	st, _, err := r.unit.ExecutePreparedAttr(pb, nil, &at)
	if err != nil {
		t.Fatal(err)
	}
	one := at.TotalEnergyPJ()
	if one != st.EnergyPJ || one <= 0 {
		t.Fatalf("first run billed %v, want %v > 0", one, st.EnergyPJ)
	}
	if _, _, err := r.unit.ExecutePreparedAttr(pb, nil, &at); err != nil {
		t.Fatal(err)
	}
	if got := at.TotalEnergyPJ(); got != 2*one {
		t.Errorf("two runs billed %v, want %v", got, 2*one)
	}
	if got := at.SpanNs; got != 2*st.CriticalPathNs {
		t.Errorf("two runs SpanNs %v, want %v", got, 2*st.CriticalPathNs)
	}
	at.Reset()
	if at.TotalBusyNs() != 0 || at.TotalEnergyPJ() != 0 || at.TotalCommands() != 0 || at.SpanNs != 0 {
		t.Error("Reset must zero the sink")
	}
	if at.Banks() != r.mod.NumBanks() {
		t.Error("Reset must keep capacity")
	}
}

// TestExecutePreparedZeroAlloc gates the full attribution-disabled run
// path — dependency dispatch, pool hand-off, stream replay, stats fold
// — at zero heap allocations per run. (The earlier
// TestPreparedPlanZeroAllocPerRun gates only the μProgram replay
// kernel; this covers everything around it.)
func TestExecutePreparedZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector allocates; gate runs in the non-race CI job")
	}
	r := newBatchRig(t)
	jobs := []Job{
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: r.bind}}},
		{Program: r.prog, Segments: []Segment{{Bank: 1, Sub: 0, Binding: r.bind}}},
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 1, Binding: r.bind}}, Deps: []int{0}},
	}
	pb, err := r.unit.Prepare(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool and the cancel plumbing before measuring.
	cancel := make(chan struct{})
	if _, _, err := r.unit.ExecutePrepared(pb, cancel); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := r.unit.ExecutePrepared(pb, cancel); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("attribution-disabled ExecutePrepared allocated %.1f times per run, want 0", allocs)
	}
}

// TestExecutePreparedAttrSteadyZeroAlloc: with a pre-grown sink, even
// the attributed path stays allocation-free — the serving layer reuses
// one sink per channel worker.
func TestExecutePreparedAttrSteadyZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector allocates; gate runs in the non-race CI job")
	}
	r := newBatchRig(t)
	jobs := []Job{{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: r.bind}}}}
	pb, err := r.unit.Prepare(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var at Attribution
	if _, _, err := r.unit.ExecutePreparedAttr(pb, nil, &at); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		at.Reset()
		if _, _, err := r.unit.ExecutePreparedAttr(pb, nil, &at); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state attributed run allocated %.1f times, want 0", allocs)
	}
}
