package ctrl

import (
	"math/rand"
	"testing"

	"simdram/internal/dram"
	"simdram/internal/ops"
	"simdram/internal/uprog"
	"simdram/internal/vertical"
)

func TestExecuteAcrossBanks(t *testing.T) {
	cfg := dram.TestConfig()
	mod, err := dram.NewModule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := New(mod, ops.VariantSIMDRAM)
	d, err := ops.ByName("addition")
	if err != nil {
		t.Fatal(err)
	}
	w := 8
	p, err := u.Program(d, w, 0)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	// Two segments in different banks, one extra in bank 0 (serializes).
	segs := []Segment{
		{Bank: 0, Sub: 0},
		{Bank: 1, Sub: 0},
		{Bank: 0, Sub: 1},
	}
	lanes := cfg.Cols
	type expected struct{ a, b []uint64 }
	exp := make([]expected, len(segs))
	bind := uprog.Binding{SrcBase: []int{0, w}, DstBase: 2 * w, ScratchBase: 3 * w}
	for i := range segs {
		segs[i].Binding = bind
		av := make([]uint64, lanes)
		bv := make([]uint64, lanes)
		for j := range av {
			av[j] = rng.Uint64() & 0xFF
			bv[j] = rng.Uint64() & 0xFF
		}
		exp[i] = expected{av, bv}
		ra, _ := vertical.ToVertical(av, w, lanes)
		rb, _ := vertical.ToVertical(bv, w, lanes)
		sa := mod.Subarray(segs[i].Bank, segs[i].Sub)
		for r := 0; r < w; r++ {
			sa.Poke(r, ra[r])
			sa.Poke(w+r, rb[r])
		}
	}
	st, err := u.Execute(p, segs)
	if err != nil {
		t.Fatal(err)
	}
	// Timing: bank 0 runs two segments serially → 2× program latency.
	want := 2 * p.LatencyNs(cfg.Timing)
	if st.BusyNs != want {
		t.Errorf("BusyNs = %f, want %f (bank-serialized)", st.BusyNs, want)
	}
	if st.EnergyPJ <= 0 || st.Commands != int64(3*len(p.Ops)) {
		t.Errorf("stats wrong: %+v", st)
	}
	// Functional check on every segment.
	for i, seg := range segs {
		sa := mod.Subarray(seg.Bank, seg.Sub)
		rows := make([][]uint64, w)
		for r := 0; r < w; r++ {
			rows[r] = sa.Peek(bind.DstBase + r)
		}
		got, err := vertical.ToHorizontal(rows, w, lanes)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			want := (exp[i].a[j] + exp[i].b[j]) & 0xFF
			if got[j] != want {
				t.Fatalf("segment %d lane %d: got %d want %d", i, j, got[j], want)
			}
		}
	}
}

func TestExecuteValidation(t *testing.T) {
	mod, _ := dram.NewModule(dram.TestConfig())
	u := New(mod, ops.VariantSIMDRAM)
	d, _ := ops.ByName("addition")
	p, err := u.Program(d, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Execute(p, nil); err == nil {
		t.Error("empty segment list must error")
	}
	bad := []Segment{{Bank: 99, Sub: 0, Binding: uprog.Binding{SrcBase: []int{0, 8}, DstBase: 16, ScratchBase: 24}}}
	if _, err := u.Execute(p, bad); err == nil {
		t.Error("out-of-range bank must error")
	}
}

func TestPerfModelScaling(t *testing.T) {
	cfg := dram.PaperConfig()
	d, _ := ops.ByName("addition")
	s, err := ops.SynthesizeCached(d, 32, 0, ops.VariantSIMDRAM)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Program
	m1 := PerfModel{Cfg: cfg, Banks: 1}
	m16 := PerfModel{Cfg: cfg, Banks: 16}
	if m16.Throughput(p) != 16*m1.Throughput(p) {
		t.Error("throughput must scale linearly with banks")
	}
	// Latency for one full 16-bank round must equal one program latency
	// plus the sustained refresh tax.
	n := cfg.Cols * 16
	want := p.LatencyNs(cfg.Timing) * cfg.Timing.RefreshFactor()
	if got := m16.LatencyNs(p, n); got != want {
		t.Errorf("latency for one round = %f, want %f", got, want)
	}
	// Energy does not depend on bank parallelism, only on work.
	if m1.EnergyPJ(p, n) != m16.EnergyPJ(p, n) {
		t.Error("energy must be parallelism-independent")
	}
	if m16.OpsPerJoule(p) <= 0 {
		t.Error("ops/J must be positive")
	}
}

func TestPerfModelRounding(t *testing.T) {
	cfg := dram.PaperConfig()
	d, _ := ops.ByName("greater")
	s, err := ops.SynthesizeCached(d, 16, 0, ops.VariantSIMDRAM)
	if err != nil {
		t.Fatal(err)
	}
	m := PerfModel{Cfg: cfg, Banks: 4}
	p := s.Program
	one := m.LatencyNs(p, 1)
	full := m.LatencyNs(p, cfg.Cols*4)
	if one != full {
		t.Errorf("1 element and one full round should cost the same: %f vs %f", one, full)
	}
	more := m.LatencyNs(p, cfg.Cols*4+1)
	if more != 2*full {
		t.Errorf("crossing the round boundary must double latency: %f vs %f", more, 2*full)
	}
}
