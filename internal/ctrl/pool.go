package ctrl

import (
	"runtime"
	"sync"
)

// Pool is a persistent worker pool: Size long-lived goroutines consume
// submitted functions from a shared queue. The control unit routes all
// functional execution through one Pool, so steady-state instruction
// streams reuse the same workers instead of paying a goroutine spawn per
// Execute call.
type Pool struct {
	jobs chan func()
	size int
	once sync.Once
}

// NewPool starts a pool with the given number of workers; size <= 0
// means one worker per CPU.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.NumCPU()
	}
	p := &Pool{jobs: make(chan func()), size: size}
	for i := 0; i < size; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for f := range p.jobs {
		f()
	}
}

// Size returns the number of workers.
func (p *Pool) Size() int { return p.size }

// Run submits f for execution, blocking until a worker accepts it. The
// caller is responsible for its own completion tracking (typically a
// sync.WaitGroup captured by f). Run must not be called after Close, and
// f must not call Run on the same pool (a worker waiting on a worker can
// deadlock when all workers are busy).
func (p *Pool) Run(f func()) { p.jobs <- f }

// Close stops the workers once queued work drains. Close is idempotent.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.jobs) })
}
