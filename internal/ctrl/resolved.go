package ctrl

import (
	"sync"

	"simdram/internal/uprog"
)

// streamKey identifies a (μProgram, binding) pair for resolved-stream
// caching. Programs come from the synthesis cache and are immutable, so
// pointer identity is a sound program key; the binding flattens to at
// most three source bases because the ISA encodes at most three source
// objects — bindings with more sources bypass the cache.
type streamKey struct {
	prog        *uprog.Program
	nSrc        int
	src         [3]int
	dstBase     int
	scratchBase int
}

// maxStreams bounds the Unit's resolved-stream cache. A served system
// cycles through far fewer (program, placement) pairs than this; if a
// pathological workload exceeds it, the whole map is dropped and warms
// back up, which only costs re-resolution.
const maxStreams = 4096

// streamCache memoizes resolved command streams on a Unit. The fast
// path is a read-locked map hit with a stack-allocated key — zero heap
// allocations — so steady-state served jobs skip binding validation and
// symbolic resolution entirely.
type streamCache struct {
	mu      sync.RWMutex
	streams map[streamKey]*uprog.ResolvedStream
	// interp forces the interpretive uprog.Run path — the measurement
	// and differential-testing knob. Toggling while jobs execute is not
	// supported.
	interp bool
	// verify makes Prepare fail eagerly on binding problems (resolution
	// errors, invalid interpretive-mode bindings) instead of deferring
	// them to issue time — the control unit's half of the plan-verifier
	// gate. Toggling while jobs execute is not supported.
	verify bool
}

// SetInterpretive switches the unit between cached resolved command
// streams (default, fast) and per-run interpretive execution. The two
// are bit- and trace-identical; the knob exists for differential tests
// and for measuring the host-side win. Do not toggle concurrently with
// executing jobs: batches prepared before the switch keep their mode.
func (u *Unit) SetInterpretive(on bool) {
	u.sc.mu.Lock()
	u.sc.interp = on
	u.sc.mu.Unlock()
}

// interpretive reports the current execution mode.
func (u *Unit) interpretive() bool {
	u.sc.mu.RLock()
	defer u.sc.mu.RUnlock()
	return u.sc.interp
}

// SetVerifyPlans switches Prepare between deferring binding problems
// to issue time (default — preserves ExecuteBatch's prefix-consistent
// fail-fast semantics) and failing them eagerly at Prepare, before any
// DRAM command executes. The facade's plan-verifier gate sets this
// alongside its own static program checks. Do not toggle concurrently
// with executing jobs.
func (u *Unit) SetVerifyPlans(on bool) {
	u.sc.mu.Lock()
	u.sc.verify = on
	u.sc.mu.Unlock()
}

// verifyPlans reports whether Prepare checks bindings eagerly.
func (u *Unit) verifyPlans() bool {
	u.sc.mu.RLock()
	defer u.sc.mu.RUnlock()
	return u.sc.verify
}

// resolvedStream returns the cached resolved stream for (p, b),
// resolving and caching on first use. Bindings with more than three
// source operands (impossible through the ISA) resolve uncached.
func (u *Unit) resolvedStream(p *uprog.Program, b uprog.Binding) (*uprog.ResolvedStream, error) {
	if len(b.SrcBase) > 3 {
		return uprog.Resolve(p, b, u.mod.Config())
	}
	key := streamKey{prog: p, nSrc: len(b.SrcBase), dstBase: b.DstBase, scratchBase: b.ScratchBase}
	copy(key.src[:], b.SrcBase)
	u.sc.mu.RLock()
	st := u.sc.streams[key]
	u.sc.mu.RUnlock()
	if st != nil {
		return st, nil
	}
	st, err := uprog.Resolve(p, b, u.mod.Config())
	if err != nil {
		return nil, err
	}
	u.sc.mu.Lock()
	if u.sc.streams == nil || len(u.sc.streams) >= maxStreams {
		u.sc.streams = make(map[streamKey]*uprog.ResolvedStream)
	}
	// Last writer wins on a racing double-resolve: both streams are
	// identical, so either pointer is fine for every waiter.
	u.sc.streams[key] = st
	u.sc.mu.Unlock()
	return st, nil
}

// StreamCacheSize reports the number of cached resolved streams.
func (u *Unit) StreamCacheSize() int {
	u.sc.mu.RLock()
	defer u.sc.mu.RUnlock()
	return len(u.sc.streams)
}
