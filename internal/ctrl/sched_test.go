package ctrl

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"simdram/internal/dram"
	"simdram/internal/ops"
	"simdram/internal/uprog"
	"simdram/internal/vertical"
)

// batchRig bundles a module, unit, and an 8-bit addition μProgram.
type batchRig struct {
	cfg  dram.Config
	mod  *dram.Module
	unit *Unit
	prog *uprog.Program
	w    int
	bind uprog.Binding
}

func newBatchRig(t testing.TB) *batchRig {
	t.Helper()
	cfg := dram.TestConfig()
	mod, err := dram.NewModule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := New(mod, ops.VariantSIMDRAM)
	t.Cleanup(u.Close)
	d, err := ops.ByName("addition")
	if err != nil {
		t.Fatal(err)
	}
	w := 8
	p, err := u.Program(d, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	bind := uprog.Binding{SrcBase: []int{0, w}, DstBase: 2 * w, ScratchBase: 3 * w}
	return &batchRig{cfg: cfg, mod: mod, unit: u, prog: p, w: w, bind: bind}
}

// seed fills the two source operands of one subarray with random bytes
// and returns the expected per-lane sums.
func (r *batchRig) seed(t *testing.T, rng *rand.Rand, bank, sub int) []uint64 {
	t.Helper()
	lanes := r.cfg.Cols
	av := make([]uint64, lanes)
	bv := make([]uint64, lanes)
	want := make([]uint64, lanes)
	for j := range av {
		av[j] = rng.Uint64() & 0xFF
		bv[j] = rng.Uint64() & 0xFF
		want[j] = (av[j] + bv[j]) & 0xFF
	}
	ra, _ := vertical.ToVertical(av, r.w, lanes)
	rb, _ := vertical.ToVertical(bv, r.w, lanes)
	sa := r.mod.Subarray(bank, sub)
	for row := 0; row < r.w; row++ {
		sa.Poke(row, ra[row])
		sa.Poke(r.w+row, rb[row])
	}
	return want
}

// checkDst verifies the destination rows of one subarray.
func (r *batchRig) checkDst(t *testing.T, bank, sub, base int, want []uint64) {
	t.Helper()
	sa := r.mod.Subarray(bank, sub)
	rows := make([][]uint64, r.w)
	for row := 0; row < r.w; row++ {
		rows[row] = sa.Peek(base + row)
	}
	got, err := vertical.ToHorizontal(rows, r.w, r.cfg.Cols)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("bank %d sub %d lane %d: got %d, want %d", bank, sub, j, got[j], want[j])
		}
	}
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestExecuteBatchDisjointBanksOverlap(t *testing.T) {
	r := newBatchRig(t)
	rng := rand.New(rand.NewSource(7))
	wantA := r.seed(t, rng, 0, 0)
	wantB := r.seed(t, rng, 1, 0)
	jobs := []Job{
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: r.bind}}},
		{Program: r.prog, Segments: []Segment{{Bank: 1, Sub: 0, Binding: r.bind}}},
	}
	st, err := r.unit.ExecuteBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	lat := r.prog.LatencyNs(r.cfg.Timing)
	if !approx(st.BusyNs, 2*lat) {
		t.Errorf("BusyNs = %f, want %f (serial-equivalent sum)", st.BusyNs, 2*lat)
	}
	if !approx(st.CriticalPathNs, lat) {
		t.Errorf("CriticalPathNs = %f, want %f (bank-disjoint jobs overlap)", st.CriticalPathNs, lat)
	}
	if !approx(st.Speedup(), 2) {
		t.Errorf("Speedup = %f, want 2", st.Speedup())
	}
	r.checkDst(t, 0, 0, r.bind.DstBase, wantA)
	r.checkDst(t, 1, 0, r.bind.DstBase, wantB)
}

func TestExecuteBatchSameBankSerializes(t *testing.T) {
	r := newBatchRig(t)
	rng := rand.New(rand.NewSource(8))
	wantA := r.seed(t, rng, 0, 0)
	wantB := r.seed(t, rng, 0, 1)
	jobs := []Job{
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: r.bind}}},
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 1, Binding: r.bind}}},
	}
	st, err := r.unit.ExecuteBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	lat := r.prog.LatencyNs(r.cfg.Timing)
	if !approx(st.CriticalPathNs, 2*lat) {
		t.Errorf("CriticalPathNs = %f, want %f (same bank serializes)", st.CriticalPathNs, 2*lat)
	}
	if !approx(st.BusyNs, st.CriticalPathNs) {
		t.Errorf("BusyNs %f != CriticalPathNs %f for fully serialized batch", st.BusyNs, st.CriticalPathNs)
	}
	r.checkDst(t, 0, 0, r.bind.DstBase, wantA)
	r.checkDst(t, 0, 1, r.bind.DstBase, wantB)
}

// TestExecuteBatchRAWChain runs sum = a+b then chain = sum+sum' where the
// second job's sources alias the first job's destination rows, in the
// same subarray. Both the declared dependency and the subarray-order
// constraint force serialization; the result must match sequential
// semantics.
func TestExecuteBatchRAWChain(t *testing.T) {
	r := newBatchRig(t)
	rng := rand.New(rand.NewSource(9))
	want := r.seed(t, rng, 0, 0)
	// Second job: dst2 = dst1 + dst1 (reads the rows job 0 writes).
	bind2 := uprog.Binding{
		SrcBase:     []int{r.bind.DstBase, r.bind.DstBase},
		DstBase:     r.bind.DstBase + r.w,
		ScratchBase: r.bind.DstBase + 2*r.w,
	}
	doubled := make([]uint64, len(want))
	for j := range want {
		doubled[j] = (2 * want[j]) & 0xFF
	}
	jobs := []Job{
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: r.bind}}},
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: bind2}}, Deps: []int{0}},
	}
	st, err := r.unit.ExecuteBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(st.CriticalPathNs, st.BusyNs) {
		t.Errorf("dependent chain must serialize: critical path %f, busy %f", st.CriticalPathNs, st.BusyNs)
	}
	r.checkDst(t, 0, 0, r.bind.DstBase, want)
	r.checkDst(t, 0, 0, bind2.DstBase, doubled)
}

func TestExecuteBatchRejectsForwardDeps(t *testing.T) {
	r := newBatchRig(t)
	jobs := []Job{
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: r.bind}}, Deps: []int{1}},
		{Program: r.prog, Segments: []Segment{{Bank: 1, Sub: 0, Binding: r.bind}}},
	}
	if _, err := r.unit.ExecuteBatch(jobs); err == nil {
		t.Error("forward dependency must be rejected")
	}
	if _, err := r.unit.ExecuteBatch(nil); err == nil {
		t.Error("empty batch must be rejected")
	}
}

// TestExecuteBatchJoinsErrors makes two independent jobs fail (bindings
// point outside the data rows) and checks both failures surface.
func TestExecuteBatchJoinsErrors(t *testing.T) {
	r := newBatchRig(t)
	bad := uprog.Binding{SrcBase: []int{1 << 20, 1 << 20}, DstBase: 0, ScratchBase: r.w}
	jobs := []Job{
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: bad}}},
		{Program: r.prog, Segments: []Segment{{Bank: 1, Sub: 0, Binding: bad}}},
	}
	_, err := r.unit.ExecuteBatch(jobs)
	if err == nil {
		t.Fatal("invalid bindings must fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "bank 0") || !strings.Contains(msg, "bank 1") {
		t.Errorf("joined error must name both failing banks, got: %v", msg)
	}
}

// TestExecuteBatchErrorSkipsLater drives a dependency chain into a
// failing middle job: the already-completed predecessor keeps its
// result, the dependent successor is never issued, and the error names
// the failing subarray.
func TestExecuteBatchErrorSkipsLater(t *testing.T) {
	r := newBatchRig(t)
	rng := rand.New(rand.NewSource(21))
	want := r.seed(t, rng, 0, 0)
	bad := uprog.Binding{SrcBase: []int{1 << 20, 1 << 20}, DstBase: 0, ScratchBase: r.w}
	skippedDst := r.bind.DstBase + r.w
	dependent := uprog.Binding{
		SrcBase:     []int{r.bind.DstBase, r.bind.DstBase},
		DstBase:     skippedDst,
		ScratchBase: skippedDst + r.w,
	}
	jobs := []Job{
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: r.bind}}},
		{Program: r.prog, Segments: []Segment{{Bank: 1, Sub: 0, Binding: bad}}, Deps: []int{0}},
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: dependent}}, Deps: []int{1}},
	}
	_, err := r.unit.ExecuteBatch(jobs)
	if err == nil {
		t.Fatal("failing middle job must surface")
	}
	if !strings.Contains(err.Error(), "bank 1") {
		t.Errorf("error must name the failing subarray, got: %v", err)
	}
	// Job 0 was in flight before the failure: its result stands.
	r.checkDst(t, 0, 0, r.bind.DstBase, want)
	// Job 2 depends on the failed job: it must never have been issued.
	sa := r.mod.Subarray(0, 0)
	for row := skippedDst; row < skippedDst+r.w; row++ {
		for _, w := range sa.Peek(row) {
			if w != 0 {
				t.Fatalf("dependent job ran after failure: row %d is nonzero", row)
			}
		}
	}
}

// TestExecuteBatchCancel closes the cancellation signal up front:
// nothing is issued, the DRAM stays untouched, and ErrCanceled reports
// how much of the batch completed.
func TestExecuteBatchCancel(t *testing.T) {
	r := newBatchRig(t)
	rng := rand.New(rand.NewSource(22))
	r.seed(t, rng, 0, 0)
	cancel := make(chan struct{})
	close(cancel)
	jobs := []Job{
		{Program: r.prog, Segments: []Segment{{Bank: 0, Sub: 0, Binding: r.bind}}},
		{Program: r.prog, Segments: []Segment{{Bank: 1, Sub: 0, Binding: r.bind}}},
	}
	_, err := r.unit.ExecuteBatchCancel(jobs, cancel)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled batch must report ErrCanceled, got: %v", err)
	}
	sa := r.mod.Subarray(0, 0)
	for row := r.bind.DstBase; row < r.bind.DstBase+r.w; row++ {
		for _, w := range sa.Peek(row) {
			if w != 0 {
				t.Fatal("canceled batch must not execute any instruction")
			}
		}
	}
	// A nil cancel channel behaves exactly like ExecuteBatch.
	if _, err := r.unit.ExecuteBatchCancel(jobs, nil); err != nil {
		t.Fatalf("nil cancel must execute normally: %v", err)
	}
}

// TestExecuteBatchManyIndependent stresses the scheduler with one job
// per subarray — useful under -race to exercise concurrent dispatch.
func TestExecuteBatchManyIndependent(t *testing.T) {
	r := newBatchRig(t)
	rng := rand.New(rand.NewSource(10))
	var jobs []Job
	type key struct{ bank, sub int }
	want := map[key][]uint64{}
	for bank := 0; bank < r.cfg.Banks; bank++ {
		for sub := 0; sub < r.cfg.SubarraysPerBank; sub++ {
			want[key{bank, sub}] = r.seed(t, rng, bank, sub)
			jobs = append(jobs, Job{Program: r.prog, Segments: []Segment{{Bank: bank, Sub: sub, Binding: r.bind}}})
		}
	}
	st, err := r.unit.ExecuteBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	lat := r.prog.LatencyNs(r.cfg.Timing)
	wantSpan := lat * float64(r.cfg.SubarraysPerBank)
	if !approx(st.CriticalPathNs, wantSpan) {
		t.Errorf("CriticalPathNs = %f, want %f (per-bank serialization only)", st.CriticalPathNs, wantSpan)
	}
	if st.EnergyPJ <= 0 {
		t.Error("batch must account energy")
	}
	for k, w := range want {
		r.checkDst(t, k.bank, k.sub, r.bind.DstBase, w)
	}
}

func TestPool(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	if p.Size() != 4 {
		t.Errorf("Size = %d, want 4", p.Size())
	}
	results := make(chan int, 100)
	for i := 0; i < 100; i++ {
		i := i
		p.Run(func() { results <- i })
	}
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[<-results] = true
	}
	if len(seen) != 100 {
		t.Errorf("ran %d distinct tasks, want 100", len(seen))
	}
	p.Close() // idempotent
}
