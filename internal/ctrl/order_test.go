package ctrl

import (
	"math"
	"testing"
)

// TestMergeParallelCompletionOrderInvariant pins the queue-era stats
// convention: per-channel (or per-job) batch stats merged in ANY
// completion order — jobs finish out of submission order all the time
// under a concurrent scheduler — produce the same aggregate, and
// Speedup keeps its conventions on the merged result. Additive fields
// (work, energy, counts) commute trivially; the makespan is a max, so
// it too must not depend on arrival order.
func TestMergeParallelCompletionOrderInvariant(t *testing.T) {
	parts := []BatchStats{
		{Instructions: 4, Commands: 40, BusyNs: 100, CriticalPathNs: 60, EnergyPJ: 7},
		{Instructions: 1, Commands: 9, BusyNs: 400, CriticalPathNs: 400, EnergyPJ: 1},
		{Instructions: 8, Commands: 81, BusyNs: 50, CriticalPathNs: 25, EnergyPJ: 19},
		{Instructions: 2, Commands: 17, BusyNs: 250, CriticalPathNs: 130, EnergyPJ: 3},
	}
	perms := [][]int{
		{0, 1, 2, 3}, // submission order
		{3, 2, 1, 0}, // fully reversed
		{2, 0, 3, 1}, // interleaved completion
		{1, 3, 0, 2},
	}
	var ref BatchStats
	for p, perm := range perms {
		var acc BatchStats
		for _, i := range perm {
			acc.MergeParallel(parts[i])
		}
		if p == 0 {
			ref = acc
			continue
		}
		if acc != ref {
			t.Fatalf("permutation %v merged to %+v, submission order gave %+v", perm, acc, ref)
		}
	}
	if ref.BusyNs != 800 || ref.CriticalPathNs != 400 || ref.Instructions != 15 || ref.Commands != 147 || ref.EnergyPJ != 30 {
		t.Fatalf("merged aggregate %+v: want additive work/energy/counts and max makespan", ref)
	}
	// Speedup on the merged stats: aggregate work over the shared
	// makespan, independent of completion order.
	if got, want := ref.Speedup(), 800.0/400.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("merged Speedup = %v, want %v", got, want)
	}
}

// TestMergeParallelSpeedupConventionsPreserved pins that merging
// cannot manufacture the degenerate Speedup cases: an all-zero batch
// merged with an all-zero batch still reports 1 (no work, no gain),
// and merging real work into it moves to the honest ratio — never to
// the 0 that flags inconsistent stats.
func TestMergeParallelSpeedupConventionsPreserved(t *testing.T) {
	var zero BatchStats
	zero.MergeParallel(BatchStats{})
	if got := zero.Speedup(); got != 1 {
		t.Fatalf("zero ⊕ zero Speedup = %v, want 1", got)
	}
	work := BatchStats{BusyNs: 90, CriticalPathNs: 30}
	zero.MergeParallel(work)
	if got := zero.Speedup(); got != 3 {
		t.Fatalf("zero ⊕ work Speedup = %v, want 3", got)
	}
	// Merge order symmetric for the same pair.
	other := BatchStats{BusyNs: 90, CriticalPathNs: 30}
	other.MergeParallel(BatchStats{})
	if got := other.Speedup(); got != 3 {
		t.Fatalf("work ⊕ zero Speedup = %v, want 3", got)
	}
}
