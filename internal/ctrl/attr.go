package ctrl

// Attribution is a per-bank resource-usage sink for prepared-batch
// execution: ExecutePreparedAttr *accumulates* into it, so one
// Attribution can bill a whole session of runs, or be Reset between
// jobs for per-job attribution. Slices are indexed by bank and grown
// on demand; a caller that reuses one Attribution per worker pays no
// steady-state allocations.
//
// Semantics of the fields, per bank b:
//   - BusyNs[b]: modeled time bank b spent executing (μProgram latency
//     × segments of each job placed on b) — the deterministic timing
//     model's per-bank bill, summing to the batch's serial-equivalent
//     BusyNs across banks.
//   - Commands[b]: DRAM commands issued to bank b.
//   - EnergyPJ[b]: energy of the commands that ran on bank b, measured
//     from the subarray stats deltas during the run; bank sums equal
//     the batch's EnergyPJ exactly.
//
// SpanNs accumulates the batches' modeled critical paths — the
// DRAM-time a tenant is billed for under the overlap-aware model.
type Attribution struct {
	BusyNs   []float64
	Commands []int64
	EnergyPJ []float64
	SpanNs   float64
}

// Reset zeroes the sink in place, keeping capacity.
func (a *Attribution) Reset() {
	for i := range a.BusyNs {
		a.BusyNs[i] = 0
	}
	for i := range a.Commands {
		a.Commands[i] = 0
	}
	for i := range a.EnergyPJ {
		a.EnergyPJ[i] = 0
	}
	a.SpanNs = 0
}

// Banks returns the number of banks the sink currently covers.
func (a *Attribution) Banks() int { return len(a.BusyNs) }

// TotalBusyNs returns the sum of the per-bank busy bills (the batches'
// serial-equivalent time).
func (a *Attribution) TotalBusyNs() float64 {
	var t float64
	for _, v := range a.BusyNs {
		t += v
	}
	return t
}

// TotalEnergyPJ returns the sum of the per-bank energy bills.
func (a *Attribution) TotalEnergyPJ() float64 {
	var t float64
	for _, v := range a.EnergyPJ {
		t += v
	}
	return t
}

// TotalCommands returns the sum of the per-bank command counts.
func (a *Attribution) TotalCommands() int64 {
	var t int64
	for _, v := range a.Commands {
		t += v
	}
	return t
}

// grow ensures the sink covers at least n banks, preserving totals.
func (a *Attribution) grow(n int) {
	if len(a.BusyNs) >= n {
		return
	}
	busy := make([]float64, n)
	copy(busy, a.BusyNs)
	cmds := make([]int64, n)
	copy(cmds, a.Commands)
	energy := make([]float64, n)
	copy(energy, a.EnergyPJ)
	a.BusyNs, a.Commands, a.EnergyPJ = busy, cmds, energy
}
