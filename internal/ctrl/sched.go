package ctrl

import (
	"errors"
	"fmt"

	"simdram/internal/uprog"
)

// Job is one bbop instruction resolved for batched execution: its
// μProgram, the subarray segments it runs on, and the indices of earlier
// jobs it must complete after (data hazards over the objects it touches,
// computed by the ISA layer). Deps must refer to earlier jobs only
// (every dep < the job's own index), which keeps the graph acyclic by
// construction.
type Job struct {
	Program  *uprog.Program
	Segments []Segment
	Deps     []int
}

// BatchStats reports the cost of an ExecuteBatch call under the paper's
// timing model.
type BatchStats struct {
	Instructions int64
	Commands     int64
	// BusyNs is the serial-equivalent latency: the sum of every
	// instruction's own busy time, i.e. what a one-at-a-time Exec loop
	// would accumulate.
	BusyNs float64
	// CriticalPathNs is the overlap-aware makespan: instructions whose
	// segments share a bank serialize on that bank's row-command
	// bandwidth, bank-disjoint instructions overlap, and the batch
	// finishes when the last bank goes idle.
	CriticalPathNs float64
	EnergyPJ       float64
}

// Speedup returns the modeled gain of batched over serial issue:
// BusyNs / CriticalPathNs. A zero critical path makes the ratio
// undefined; an all-zero batch (nothing executed) reports 1 — no work,
// no gain — while a zero path with nonzero busy time reports 0, so
// inconsistent stats surface as an impossible speedup instead of
// masquerading as neutral.
func (s BatchStats) Speedup() float64 {
	if s.CriticalPathNs == 0 {
		if s.BusyNs == 0 {
			return 1
		}
		return 0
	}
	return s.BusyNs / s.CriticalPathNs
}

// MergeParallel folds o into s as a batch that executed concurrently on
// an independent channel: instruction and command counts, energy, and
// the serial-equivalent time are additive, while the makespan of two
// concurrently running batches is the maximum of their critical paths.
// This is the aggregation rule a multi-channel cluster uses to report
// honest whole-fabric latency.
func (s *BatchStats) MergeParallel(o BatchStats) {
	s.Instructions += o.Instructions
	s.Commands += o.Commands
	s.BusyNs += o.BusyNs
	s.EnergyPJ += o.EnergyPJ
	if o.CriticalPathNs > s.CriticalPathNs {
		s.CriticalPathNs = o.CriticalPathNs
	}
}

// ErrCanceled reports that batch execution stopped because the caller's
// cancellation signal fired: in-flight work completed, unissued jobs
// were skipped.
var ErrCanceled = errors.New("ctrl: batch canceled")

// batchPlan is the scheduler's precomputed view of a batch: per-job
// subarray groups, the full constraint graph, and the deterministic
// timing solution.
type batchPlan struct {
	groups [][][]Segment // job → subarray groups (each group one subarray)
	preds  [][]int       // job → constraint predecessors (deps + subarray order)
	durNs  []float64     // job → busy time on its busiest bank
	finish []float64     // job → modeled completion time
	busyNs float64
	spanNs float64
	nCmds  int64
	// Per-bank attribution of the batch under the timing model: modeled
	// busy time (μProgram latency × segments placed on the bank) and
	// command counts. Static per plan — energy, which depends on the
	// executed commands, is measured per run instead.
	bankBusy []float64
	bankCmds []int64
}

// plan validates the jobs and computes the constraint graph and timing
// model. Timing is resolved deterministically in program order — an
// in-order dispatch greedy schedule — so batch latency never depends on
// the host's dynamic goroutine interleaving: job i starts when its
// hazard predecessors have finished and every bank it touches is free,
// runs for its μProgram latency times the segment count on its busiest
// bank, and occupies its banks until it finishes.
func (u *Unit) plan(jobs []Job) (*batchPlan, error) {
	n := len(jobs)
	pl := &batchPlan{
		groups:   make([][][]Segment, n),
		preds:    make([][]int, n),
		durNs:    make([]float64, n),
		finish:   make([]float64, n),
		bankBusy: make([]float64, u.mod.NumBanks()),
		bankCmds: make([]int64, u.mod.NumBanks()),
	}
	lastOnSub := map[[2]int]int{} // subarray → last job that touched it
	bankFree := map[int]float64{} // bank → time it goes idle
	for i, job := range jobs {
		if job.Program == nil || len(job.Segments) == 0 {
			return nil, fmt.Errorf("ctrl: job %d has no program or segments", i)
		}
		groups, perBank, err := u.groupBySubarray(job.Segments)
		if err != nil {
			return nil, fmt.Errorf("ctrl: job %d: %w", i, err)
		}
		pl.groups[i] = groups
		durNs, commands := u.jobCost(job.Program, len(job.Segments), perBank)
		pl.durNs[i] = durNs
		pl.nCmds += commands
		latNs := job.Program.LatencyNs(u.mod.Config().Timing)
		cmdsPerSeg := int64(len(job.Program.Ops))
		for b, segs := range perBank {
			pl.bankBusy[b] += latNs * float64(segs)
			pl.bankCmds[b] += cmdsPerSeg * int64(segs)
		}

		// Constraint predecessors: declared data hazards plus program-order
		// edges between jobs sharing a subarray (the simulator's state
		// hazard; in hardware the same pair also serializes on the bank).
		set := map[int]bool{}
		for _, d := range job.Deps {
			if d < 0 || d >= i {
				return nil, fmt.Errorf("ctrl: job %d: dep %d is not an earlier job", i, d)
			}
			set[d] = true
		}
		for _, g := range groups {
			key := [2]int{g[0].Bank, g[0].Sub}
			if prev, ok := lastOnSub[key]; ok {
				set[prev] = true
			}
		}
		for d := range set {
			pl.preds[i] = append(pl.preds[i], d)
		}
		for _, g := range groups {
			lastOnSub[[2]int{g[0].Bank, g[0].Sub}] = i
		}

		// Timing: the job starts once its predecessors finish and its
		// banks are free, then holds those banks for its duration.
		start := 0.0
		for _, d := range pl.preds[i] {
			if pl.finish[d] > start {
				start = pl.finish[d]
			}
		}
		for b := range perBank {
			if bankFree[b] > start {
				start = bankFree[b]
			}
		}
		pl.finish[i] = start + pl.durNs[i]
		for b := range perBank {
			bankFree[b] = pl.finish[i]
		}
		pl.busyNs += pl.durNs[i]
		if pl.finish[i] > pl.spanNs {
			pl.spanNs = pl.finish[i]
		}
	}
	return pl, nil
}

// ExecuteBatch runs a dependency-ordered batch of jobs, overlapping jobs
// whose constraints allow it. Functional execution dispatches at
// (job, subarray-group) granularity onto the unit's persistent worker
// pool: a job is issued as soon as every constraint predecessor has
// completed, so bank-disjoint independent instructions execute
// concurrently while hazards and shared subarrays serialize. Timing and
// the modeled critical path come from the deterministic plan, not from
// host scheduling.
//
// On error, issuing stops (fail-fast), in-flight work drains, and every
// failure is reported via errors.Join; jobs not yet issued are skipped,
// so DRAM state reflects a prefix-consistent subset of the batch.
func (u *Unit) ExecuteBatch(jobs []Job) (BatchStats, error) {
	return u.ExecuteBatchCancel(jobs, nil)
}

// ExecuteBatchCancel is ExecuteBatch with an external cancellation
// signal: once cancel is closed the unit stops issuing new jobs, drains
// in-flight work, and — if any job was thereby skipped — reports
// ErrCanceled. A cluster uses this to stop sibling channels after one
// channel fails. A nil cancel never fires.
func (u *Unit) ExecuteBatchCancel(jobs []Job, cancel <-chan struct{}) (BatchStats, error) {
	st, _, err := u.ExecuteBatchProfile(jobs, cancel)
	return st, err
}

// ExecuteBatchProfile is ExecuteBatchCancel surfacing the per-job
// modeled busy durations alongside the aggregate stats: opNs[i] is job
// i's latency under the timing model — μProgram latency times the
// segment count on its busiest bank. These are the per-op measured
// latencies a profile-guided scheduler folds back into its cost model
// (the static per-subarray model never sees the per-bank segment
// multiplier). opNs is nil when the batch errors.
func (u *Unit) ExecuteBatchProfile(jobs []Job, cancel <-chan struct{}) (BatchStats, []float64, error) {
	pb, err := u.Prepare(jobs)
	if err != nil {
		return BatchStats{}, nil, err
	}
	return u.ExecutePrepared(pb, cancel)
}

// segStream pairs one prepared segment with its resolved command
// stream, or with the resolution error to surface when its job issues.
type segStream struct {
	stream *uprog.ResolvedStream
	err    error
}

// groupResult is one subarray group's completion report, sent from a
// pool worker back to the dispatch loop.
type groupResult struct {
	job      int
	bank     int
	energyPJ float64
	err      error
}

// Prepared is a batch bound once for repeated execution: the validated
// schedule (constraint graph and deterministic timing) plus one
// resolved command stream per segment. ExecutePrepared runs it without
// re-planning or re-resolving anything — the run-many half of the
// bind-once/run-many pipeline, which a compiled graph caches alongside
// its plan. The schedule and streams are immutable; the dispatch
// scratch below makes each run allocation-free, which is also why a
// Prepared supports repeated *serial* ExecutePrepared calls only.
type Prepared struct {
	jobs    []Job
	pl      *batchPlan
	streams [][][]segStream // job → subarray group → segment; nil when interp
	// interp records the unit's execution mode at Prepare time: an
	// interpretive batch re-runs uprog.Run per segment instead of the
	// resolved streams.
	interp bool

	// Static dispatch structure, derived from pl.preds once at Prepare.
	succs  [][]int    // job → jobs unblocked by its completion
	indeg0 []int      // job → predecessor count
	tasks  [][]func() // job → one pool task per subarray group

	// Per-run scratch, reset at the top of every ExecutePrepared.
	indeg      []int
	remain     []int // outstanding subarray groups per job
	ready      []int
	results    chan groupResult
	bankEnergy []float64 // bank → energy measured this run
}

// Jobs returns the number of jobs in the prepared batch.
func (pb *Prepared) Jobs() int { return len(pb.jobs) }

// Prepare validates and schedules a batch and resolves every segment's
// command stream through the unit's cache. Structural errors (bad
// coordinates, bad deps) fail here; a segment whose *binding* fails to
// resolve is kept with its error attached and surfaces when its job
// issues — exactly where the interpretive path reports it — so a
// prepared batch preserves ExecuteBatch's fail-fast, prefix-consistent
// semantics.
func (u *Unit) Prepare(jobs []Job) (*Prepared, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("ctrl: empty batch")
	}
	pl, err := u.plan(jobs)
	if err != nil {
		return nil, err
	}
	pb := &Prepared{jobs: jobs, pl: pl, interp: u.interpretive()}
	eager := u.verifyPlans()
	if pb.interp {
		// Interpretive batches resolve per run, so an eager Prepare
		// validates each binding against the μProgram and geometry the
		// same way uprog.Run will.
		if eager {
			for i, job := range jobs {
				for _, seg := range job.Segments {
					if err := seg.Binding.Validate(job.Program, u.mod.Config()); err != nil {
						return nil, fmt.Errorf("ctrl: job %d: bank %d subarray %d: %w", i, seg.Bank, seg.Sub, err)
					}
				}
			}
		}
	} else {
		pb.streams = make([][][]segStream, len(jobs))
		for i := range jobs {
			groups := pl.groups[i]
			pb.streams[i] = make([][]segStream, len(groups))
			for gi, group := range groups {
				ss := make([]segStream, len(group))
				for si, seg := range group {
					st, err := u.resolvedStream(jobs[i].Program, seg.Binding)
					if err != nil {
						err = fmt.Errorf("ctrl: bank %d subarray %d: %w", seg.Bank, seg.Sub, err)
						if eager {
							return nil, fmt.Errorf("ctrl: job %d: %w", i, err)
						}
						ss[si] = segStream{err: err}
						continue
					}
					ss[si] = segStream{stream: st}
				}
				pb.streams[i][gi] = ss
			}
		}
	}
	u.bindDispatch(pb)
	return pb, nil
}

// bindDispatch precomputes everything ExecutePrepared needs per run —
// successor lists, initial in-degrees, the pool task closures, the
// result channel, and per-bank scratch — so the run itself touches no
// allocator.
func (u *Unit) bindDispatch(pb *Prepared) {
	pl := pb.pl
	n := len(pb.jobs)
	pb.succs = make([][]int, n)
	pb.indeg0 = make([]int, n)
	for i, ps := range pl.preds {
		pb.indeg0[i] = len(ps)
		for _, p := range ps {
			pb.succs[p] = append(pb.succs[p], i)
		}
	}
	pb.indeg = make([]int, n)
	pb.remain = make([]int, n)
	pb.ready = make([]int, 0, n)
	pb.results = make(chan groupResult, pl.totalGroups())
	pb.bankEnergy = make([]float64, u.mod.NumBanks())

	pb.tasks = make([][]func(), n)
	for i := range pb.jobs {
		groups := pl.groups[i]
		p := pb.jobs[i].Program
		pb.tasks[i] = make([]func(), len(groups))
		for gi, group := range groups {
			id, gi, group := i, gi, group
			bank := group[0].Bank
			// Only one worker touches this subarray at a time (the
			// constraint graph serializes same-subarray jobs), so its
			// stats delta is race-free and attributable to this group.
			sa := u.mod.Subarray(group[0].Bank, group[0].Sub)
			pb.tasks[i][gi] = func() {
				before := sa.Stats
				for si, seg := range group {
					if pb.interp {
						if err := uprog.Run(p, sa, seg.Binding); err != nil {
							pb.results <- groupResult{job: id, bank: bank, err: fmt.Errorf("ctrl: bank %d subarray %d: %w", seg.Bank, seg.Sub, err)}
							return
						}
						continue
					}
					ss := pb.streams[id][gi][si]
					if ss.err != nil {
						pb.results <- groupResult{job: id, bank: bank, err: ss.err}
						return
					}
					uprog.RunResolved(sa, ss.stream)
				}
				pb.results <- groupResult{job: id, bank: bank, energyPJ: sa.Stats.Sub(before).EnergyPJ}
			}
		}
	}
}

// ExecutePrepared runs a prepared batch. Semantics, stats, and errors
// match ExecuteBatchProfile; the per-run work is only the dependency
// dispatch and the resolved-stream loops — no validation, resolution,
// planning, or heap allocation (the dispatch state lives in the
// Prepared, which is why runs of one Prepared must be serial).
func (u *Unit) ExecutePrepared(pb *Prepared, cancel <-chan struct{}) (BatchStats, []float64, error) {
	return u.ExecutePreparedAttr(pb, cancel, nil)
}

// ExecutePreparedAttr is ExecutePrepared with an optional resource
// attribution sink: on success, the run's per-bank modeled busy time,
// command counts, and measured energy — plus the batch's critical
// path — are accumulated into at. A nil sink costs nothing; a failed
// or canceled run bills nothing (its partial DRAM effects are not
// attributed, matching the error contract that stats are not
// returned).
//
//simdram:zeroalloc
func (u *Unit) ExecutePreparedAttr(pb *Prepared, cancel <-chan struct{}, at *Attribution) (BatchStats, []float64, error) {
	jobs, pl := pb.jobs, pb.pl
	n := len(jobs)
	copy(pb.indeg, pb.indeg0)
	for i := range jobs {
		pb.remain[i] = len(pl.groups[i])
	}
	for i := range pb.bankEnergy {
		pb.bankEnergy[i] = 0
	}
	pool := u.pool()

	ready := pb.ready[:0]
	for i := range jobs {
		if pb.indeg[i] == 0 {
			ready = append(ready, i) //simdram:prealloc pb.ready holds every job
		}
	}
	var failures []error
	var energyPJ float64
	canceled := false
	doneJobs, inflight := 0, 0
	for doneJobs < n {
		if !canceled && cancel != nil {
			select {
			case <-cancel:
				canceled = true
			default:
			}
		}
		if len(failures) == 0 && !canceled {
			for _, id := range ready {
				for _, task := range pb.tasks[id] {
					pool.Run(task)
				}
				inflight += len(pb.tasks[id])
			}
		}
		ready = ready[:0]
		if inflight == 0 {
			break // fail-fast: nothing running, unissued jobs are skipped
		}
		r := <-pb.results
		inflight--
		if r.err != nil {
			failures = append(failures, r.err) //simdram:coldpath failed batch
		}
		energyPJ += r.energyPJ
		pb.bankEnergy[r.bank] += r.energyPJ
		pb.remain[r.job]--
		if pb.remain[r.job] == 0 {
			doneJobs++
			for _, s := range pb.succs[r.job] {
				pb.indeg[s]--
				if pb.indeg[s] == 0 {
					ready = append(ready, s) //simdram:prealloc pb.ready holds every job
				}
			}
		}
	}
	if canceled && doneJobs < n {
		//simdram:coldpath canceled batch
		failures = append(failures, fmt.Errorf("%w: %d of %d instructions completed", ErrCanceled, doneJobs, n))
	}
	if err := errors.Join(failures...); err != nil {
		return BatchStats{}, nil, err
	}
	st := BatchStats{
		Instructions:   int64(n),
		Commands:       pl.nCmds,
		BusyNs:         pl.busyNs,
		CriticalPathNs: pl.spanNs,
		EnergyPJ:       energyPJ,
	}
	u.Stats.Add(ExecStats{
		Instructions: st.Instructions,
		Commands:     st.Commands,
		BusyNs:       st.CriticalPathNs,
		EnergyPJ:     st.EnergyPJ,
	})
	if at != nil {
		at.grow(len(pl.bankBusy))
		for b := range pl.bankBusy {
			at.BusyNs[b] += pl.bankBusy[b]
			at.Commands[b] += pl.bankCmds[b]
			at.EnergyPJ[b] += pb.bankEnergy[b]
		}
		at.SpanNs += pl.spanNs
	}
	return st, pl.durNs, nil
}

func (pl *batchPlan) totalGroups() int {
	total := 0
	for _, gs := range pl.groups {
		total += len(gs)
	}
	return total
}
